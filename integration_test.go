package cloudsuite_test

// Integration tests: each test asserts one of the paper's headline
// findings end-to-end — workload models, OS model, simulator, and
// counters together. Budgets are small; the assertions are qualitative
// (directions and separations), matching the reproduction contract in
// DESIGN.md.

import (
	"testing"

	"cloudsuite"
)

func testOptions() cloudsuite.Options {
	o := cloudsuite.DefaultOptions()
	o.Cores = 2
	o.WarmupInsts = 100_000
	o.MeasureInsts = 25_000
	return o
}

func measure(t *testing.T, name string, o cloudsuite.Options) *cloudsuite.Measurement {
	t.Helper()
	b, ok := cloudsuite.FindBench(name)
	if !ok {
		t.Fatalf("bench %q not found", name)
	}
	m, err := cloudsuite.MeasureBench(b, o)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Section 4 / Figure 1: scale-out workloads stall the majority of their
// cycles, dominated by memory, while cpu-intensive desktop and parallel
// benchmarks do not.
func TestClaimScaleOutStallsOnMemory(t *testing.T) {
	o := testOptions()
	for _, name := range []string{"Data Serving", "Web Search", "SAT Solver"} {
		m := measure(t, name, o)
		if m.StallFrac() < 0.45 {
			t.Errorf("%s stalls only %.0f%% of cycles", name, 100*m.StallFrac())
		}
		if m.MemCycleFrac() < 0.4 {
			t.Errorf("%s memory cycles only %.0f%%", name, 100*m.MemCycleFrac())
		}
	}
	cpu := measure(t, "PARSEC (blackscholes)", o)
	if cpu.StallFrac() > 0.5 {
		t.Errorf("cpu-intensive PARSEC stalls %.0f%%, want < 50%%", 100*cpu.StallFrac())
	}
}

// Section 4.1 / Figure 2: scale-out instruction working sets far exceed
// the L1-I, unlike desktop/parallel benchmarks.
func TestClaimInstructionWorkingSets(t *testing.T) {
	o := testOptions()
	ws := measure(t, "Web Search", o)
	bs := measure(t, "PARSEC (blackscholes)", o)
	if ws.L1IMPKIUser() < 15 {
		t.Errorf("Web Search L1-I MPKI %.1f, want large", ws.L1IMPKIUser())
	}
	if bs.L1IMPKIUser() > 2 {
		t.Errorf("blackscholes L1-I MPKI %.1f, want ~0", bs.L1IMPKIUser())
	}
	if ws.L1IMPKIUser() < bs.L1IMPKIUser()*5 {
		t.Error("scale-out/desktop instruction-miss separation lost")
	}
	if ws.L2IMPKIUser() < 2 {
		t.Errorf("Web Search L2 instruction misses %.1f, want substantial", ws.L2IMPKIUser())
	}
}

// Section 4.2 / Figure 3: scale-out IPC is modest (well under the
// 4-wide peak) and MLP is low; cpu-intensive suites reach high IPC.
func TestClaimLowILPAndMLP(t *testing.T) {
	o := testOptions()
	for _, name := range []string{"Data Serving", "Web Search", "Web Frontend"} {
		m := measure(t, name, o)
		if ipc := m.IPC(); ipc > 1.6 {
			t.Errorf("%s IPC %.2f, scale-out should be well under 2", name, ipc)
		}
		if mlp := m.MLP(); mlp > 3.2 {
			t.Errorf("%s MLP %.2f, scale-out should be low", name, mlp)
		}
	}
	cpu := measure(t, "SPECint (bitops)", o)
	if cpu.IPC() < 1.8 {
		t.Errorf("cpu-bound SPECint IPC %.2f, want ~2+", cpu.IPC())
	}
}

// Section 4.2 / Figure 3: SMT delivers large IPC gains for the
// independent-request scale-out workloads.
func TestClaimSMTGains(t *testing.T) {
	o := testOptions()
	base := measure(t, "Data Serving", o)
	oSMT := o
	oSMT.SMT = true
	smt := measure(t, "Data Serving", oSMT)
	gain := smt.IPC() / base.IPC()
	if gain < 1.25 {
		t.Errorf("SMT gain %.2fx, paper reports 39-69%%", gain)
	}
	if smt.MLP() < base.MLP() {
		t.Errorf("SMT reduced MLP: %.2f -> %.2f", base.MLP(), smt.MLP())
	}
}

// Section 4.3 / Figure 4: scale-out performance is insensitive to LLC
// capacity above a few MB, while mcf keeps improving.
func TestClaimLLCInsensitivity(t *testing.T) {
	// The paper's 4-core configuration: polluter occupancy is calibrated
	// against four competing workload cores (Section 3.1).
	o := testOptions()
	o.Cores = 4
	check := func(name string) (full, at6 float64) {
		base := measure(t, name, o)
		op := o
		op.PolluteBytes = 6 << 20
		pol := measure(t, name, op)
		return base.UserIPC(), pol.UserIPC()
	}
	wsFull, ws6 := check("Web Search")
	mcfFull, mcf6 := check("SPECint (mcf)")
	wsLoss := 1 - ws6/wsFull
	mcfLoss := 1 - mcf6/mcfFull
	if wsLoss > 0.25 {
		t.Errorf("Web Search lost %.0f%% at 6MB; scale-out should be flat", 100*wsLoss)
	}
	if mcfLoss < wsLoss {
		t.Errorf("mcf (%.2f) should lose more than scale-out (%.2f)", mcfLoss, wsLoss)
	}
}

// Section 4.4 / Figure 6: scale-out application sharing is minimal;
// OLTP shares actively.
func TestClaimReadWriteSharing(t *testing.T) {
	o := testOptions()
	o.SplitSockets = true
	so := measure(t, "MapReduce", o)
	oltp := measure(t, "TPC-C", o)
	if so.SharedRWFracUser() > 0.01 {
		t.Errorf("MapReduce app sharing %.2f%%, want ~0", 100*so.SharedRWFracUser())
	}
	if oltp.SharedRWFracUser() < so.SharedRWFracUser()+0.005 {
		t.Errorf("TPC-C sharing (%.3f) should clearly exceed MapReduce (%.3f)",
			oltp.SharedRWFracUser(), so.SharedRWFracUser())
	}
}

// Section 4.4 / Figure 7: off-chip bandwidth is over-provisioned;
// Media Streaming is the heaviest scale-out consumer.
func TestClaimBandwidthOverProvisioning(t *testing.T) {
	o := testOptions()
	ms := measure(t, "Media Streaming", o)
	ws := measure(t, "Web Search", o)
	ds := measure(t, "Data Serving", o)
	if ms.DRAMUtilization() < 0.85*ws.DRAMUtilization() || ms.DRAMUtilization() < 0.85*ds.DRAMUtilization() {
		t.Errorf("Media Streaming (%.2f) should be among the top scale-out bandwidth consumers (ws %.2f, ds %.2f)",
			ms.DRAMUtilization(), ws.DRAMUtilization(), ds.DRAMUtilization())
	}
	if ds.DRAMUtilization() > 0.35 {
		t.Errorf("Data Serving uses %.0f%% of bandwidth; should be far from saturation",
			100*ds.DRAMUtilization())
	}
}

// Methodology: the TwoSocket configuration exposes sharing as remote
// hits without changing the workload.
func TestClaimSocketSplitMethodology(t *testing.T) {
	o := testOptions()
	same := measure(t, "TPC-C", o)
	split := o
	split.SplitSockets = true
	two := measure(t, "TPC-C", split)
	if two.RemoteSocketHit == 0 {
		t.Error("split-socket run shows no remote hits")
	}
	if same.RemoteSocketHit != 0 {
		t.Error("single-socket run cannot have remote hits")
	}
}
