// Quickstart: run one CloudSuite workload on the simulated Xeon X5670
// and print the headline counters the paper builds its argument on.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cloudsuite"
)

func main() {
	bench, ok := cloudsuite.FindBench("Web Search")
	if !ok {
		log.Fatal("Web Search benchmark not registered")
	}

	// The paper's methodology: four dedicated cores, a warm-up period
	// excluded from measurement, then a measured window.
	opts := cloudsuite.DefaultOptions()
	opts.WarmupInsts = 300_000
	opts.MeasureInsts = 80_000

	m, err := cloudsuite.MeasureBench(bench, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload:          %s\n", m.BenchName)
	fmt.Printf("instructions:      %d (%.1f%% OS)\n",
		m.Commits(), 100*float64(m.CommitOS)/float64(m.Commits()))
	fmt.Printf("IPC:               %.2f of a possible 4.0\n", m.IPC())
	fmt.Printf("MLP:               %.2f outstanding misses\n", m.MLP())
	fmt.Printf("stalled cycles:    %.0f%%\n", 100*m.StallFrac())
	fmt.Printf("memory cycles:     %.0f%%\n", 100*m.MemCycleFrac())
	fmt.Printf("L1-I misses:       %.1f per k-instruction\n", m.L1IMPKIUser())
	fmt.Printf("off-chip BW used:  %.1f%%\n", 100*m.DRAMUtilization())

	fmt.Println()
	fmt.Println("The mismatch the paper describes, in one run: a 4-wide")
	fmt.Println("out-of-order core committing well under half its slots,")
	fmt.Println("an instruction working set far beyond the L1-I, and an")
	fmt.Println("over-provisioned memory system running nearly idle.")
}
