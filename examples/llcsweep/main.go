// llcsweep reproduces the Figure-4 methodology on a custom workload
// mix: cache-polluting threads occupy part of the LLC while the
// workload runs on the remaining cores, sweeping the effective cache
// capacity. It contrasts an LLC-insensitive scale-out workload (Data
// Serving) against the LLC-sensitive mcf.
//
// The sweep is enumerated up front and submitted to a Runner, so the
// points measure in parallel on multicore hosts and the full-capacity
// baseline — which is also the 12MB sweep point — is simulated once
// and served from the memoization cache the second time.
//
//	go run ./examples/llcsweep
package main

import (
	"fmt"
	"log"
	"strings"

	"cloudsuite"
)

func main() {
	opts := cloudsuite.DefaultOptions()
	opts.WarmupInsts = 250_000
	opts.MeasureInsts = 50_000

	workloads := []string{"Data Serving", "SPECint (mcf)"}
	capacities := []int{4, 6, 8, 10, 12} // effective LLC MB

	// Enumerate the whole matrix: per workload, the baseline plus one
	// request per capacity point.
	runner := cloudsuite.NewRunner(0) // GOMAXPROCS workers
	var reqs []cloudsuite.MeasureRequest
	for _, name := range workloads {
		b, ok := cloudsuite.FindBench(name)
		if !ok {
			log.Fatalf("unknown bench %q", name)
		}
		reqs = append(reqs, cloudsuite.MeasureRequest{Bench: b, Options: opts})
		for _, mb := range capacities {
			o := opts
			if mb < 12 {
				o.PolluteBytes = uint64(12-mb) << 20
			}
			reqs = append(reqs, cloudsuite.MeasureRequest{Bench: b, Options: o})
		}
	}
	ms, err := runner.MeasureAll(reqs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-16s", "LLC MB")
	for _, mb := range capacities {
		fmt.Printf("%8d", mb)
	}
	fmt.Println()
	fmt.Println(strings.Repeat("-", 16+8*len(capacities)))

	pos := 0
	for _, name := range workloads {
		base := ms[pos]
		pos++
		fmt.Printf("%-16s", name)
		for range capacities {
			fmt.Printf("%8.2f", ms[pos].UserIPC()/base.UserIPC())
			pos++
		}
		fmt.Println()
	}
	stats := runner.Stats()
	fmt.Println("\nvalues: user-IPC normalized to the full 12MB LLC.")
	fmt.Println("Scale-out workloads flatten once the instruction working")
	fmt.Println("set fits (Section 4.3); mcf keeps paying for every megabyte.")
	fmt.Printf("(%d requests, %d simulated, %d from cache)\n",
		stats.Requests, stats.Runs, stats.CacheHits)
}
