// llcsweep reproduces the Figure-4 methodology on a custom workload
// mix: cache-polluting threads occupy part of the LLC while the
// workload runs on the remaining cores, sweeping the effective cache
// capacity. It contrasts an LLC-insensitive scale-out workload (Data
// Serving) against the LLC-sensitive mcf.
//
//	go run ./examples/llcsweep
package main

import (
	"fmt"
	"log"
	"strings"

	"cloudsuite"
)

func main() {
	opts := cloudsuite.DefaultOptions()
	opts.WarmupInsts = 250_000
	opts.MeasureInsts = 50_000

	workloads := []string{"Data Serving", "SPECint (mcf)"}
	capacities := []int{4, 6, 8, 10, 12} // effective LLC MB

	fmt.Printf("%-16s", "LLC MB")
	for _, mb := range capacities {
		fmt.Printf("%8d", mb)
	}
	fmt.Println()
	fmt.Println(strings.Repeat("-", 16+8*len(capacities)))

	for _, name := range workloads {
		b, ok := cloudsuite.FindBench(name)
		if !ok {
			log.Fatalf("unknown bench %q", name)
		}
		base, err := cloudsuite.MeasureBench(b, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s", name)
		for _, mb := range capacities {
			o := opts
			if mb < 12 {
				o.PolluteBytes = uint64(12-mb) << 20
			}
			m, err := cloudsuite.MeasureBench(b, o)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8.2f", m.UserIPC()/base.UserIPC())
		}
		fmt.Println()
	}
	fmt.Println("\nvalues: user-IPC normalized to the full 12MB LLC.")
	fmt.Println("Scale-out workloads flatten once the instruction working")
	fmt.Println("set fits (Section 4.3); mcf keeps paying for every megabyte.")
}
