// customworkload shows how to implement a new workload against the
// framework and characterize it like the paper characterizes
// CloudSuite. The example builds a small in-memory message queue
// (produce/consume over sharded ring buffers with a network front-end)
// and prints its micro-architectural profile next to Web Search's.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"cloudsuite"
	"cloudsuite/internal/addrspace"
	"cloudsuite/internal/oskern"
	"cloudsuite/internal/rng"
	"cloudsuite/internal/sim/checkpoint"
	"cloudsuite/internal/trace"
	"cloudsuite/internal/workloads"
)

// queueWorkload is a minimal scale-out-style service: producers append
// messages to sharded in-memory rings, consumers drain them, and every
// request arrives and is acknowledged over the simulated network.
type queueWorkload struct {
	kern   *oskern.Kernel
	heap   *addrspace.Heap
	bank   *workloads.CodeBank
	fnProd *trace.Func
	fnCons *trace.Func
	rings  []addrspace.Array // sharded message rings
	cursor []uint64
}

func newQueueWorkload() *queueWorkload {
	code := trace.NewCodeLayout(addrspace.UserCodeBase, addrspace.UserCodeSize)
	q := &queueWorkload{
		kern: oskern.New(oskern.DefaultConfig()),
		heap: addrspace.NewUserHeap(),
		bank: workloads.NewCodeBank(code, "broker", 80, 700),
	}
	q.fnProd = code.Func("produce", 500)
	q.fnCons = code.Func("consume", 450)
	// 16 shards x 4MB of messages: the data working set exceeds the LLC.
	for i := 0; i < 16; i++ {
		q.rings = append(q.rings, addrspace.NewArray(q.heap, 16<<10, 256))
		q.cursor = append(q.cursor, 0)
	}
	return q
}

func (q *queueWorkload) Name() string           { return "Message Queue" }
func (q *queueWorkload) Class() workloads.Class { return workloads.ScaleOut }
func (q *queueWorkload) Start(n int, seed int64) []*trace.StepGen {
	gens := make([]*trace.StepGen, n)
	for i := 0; i < n; i++ {
		cfg := workloads.EmitterConfigFor(seed+int64(i)*997, 0.08)
		gens[i] = trace.NewStepGen(cfg, q.newThread(i, seed+int64(i)))
	}
	return gens
}

// SaveShared/LoadShared make the workload live-point capable: with
// these (plus the thread SaveState below) a warm image restores by a
// pure load instead of replaying the warmup instruction stream.
func (q *queueWorkload) SaveShared(w *checkpoint.Writer) {
	w.Tag("mq.shared")
	q.kern.SaveState(w)
	q.heap.SaveState(w)
	w.U32(uint32(len(q.cursor)))
	for _, c := range q.cursor {
		w.U64(c)
	}
}

func (q *queueWorkload) LoadShared(rd *checkpoint.Reader) {
	rd.Expect("mq.shared")
	q.kern.LoadState(rd)
	q.heap.LoadState(rd)
	if n := rd.U32(); int(n) != len(q.cursor) {
		rd.Failf("mq: %d shards in image, have %d", n, len(q.cursor))
	}
	cur := make([]uint64, len(q.cursor))
	for i := range cur {
		cur[i] = rd.U64()
	}
	if rd.Err() != nil {
		return
	}
	q.cursor = cur
}

// qthread is one worker's resumable state: everything the request loop
// carries across steps.
type qthread struct {
	q     *queueWorkload //simlint:ok checkpointcov back-pointer to the shared workload, wired at construction
	tid   int            //simlint:ok checkpointcov thread identity, fixed at construction
	rnd   *rng.Rand
	conn  *oskern.Conn
	stack uint64 //simlint:ok checkpointcov derived from tid
	buf   uint64 //simlint:ok checkpointcov construction-time allocation
	reqs  uint64
}

func (q *queueWorkload) newThread(tid int, seed int64) *qthread {
	return &qthread{
		q:     q,
		tid:   tid,
		rnd:   rng.New(seed),
		conn:  q.kern.OpenConnOn(tid),
		stack: workloads.StackOf(tid),
		buf:   q.heap.AllocLines(4096),
	}
}

func (t *qthread) SaveState(w *checkpoint.Writer) {
	w.Tag("mq.thread")
	t.rnd.SaveState(w)
	t.conn.SaveState(w)
	w.U64(t.reqs)
}

func (t *qthread) LoadState(rd *checkpoint.Reader) {
	rd.Expect("mq.thread")
	t.rnd.LoadState(rd)
	t.conn.LoadState(rd)
	t.reqs = rd.U64()
}

// Step serves one queue request.
func (t *qthread) Step(e *trace.Emitter) bool {
	q := t.q
	q.kern.Recv(e, t.conn, t.buf, 256)
	q.bank.Exec(e, t.reqs*2654435761+uint64(t.tid), 14, 2200, t.stack, 3)
	shard := t.rnd.Intn(len(q.rings))
	ring := q.rings[shard]
	slot := q.cursor[shard] % ring.Len
	if t.rnd.Intn(2) == 0 { // produce
		e.InFunc(q.fnProd, func() {
			for off := uint64(0); off < 256; off += 64 {
				v := e.Load(t.buf+off%4096, 64, trace.NoVal, false)
				e.Store(ring.At(slot)+off, 64, v, trace.NoVal)
			}
			q.cursor[shard]++
		})
	} else { // consume
		e.InFunc(q.fnCons, func() {
			var v trace.Val = trace.NoVal
			for off := uint64(0); off < 256; off += 64 {
				v = e.Load(ring.At(slot)+off, 64, v, false)
				e.Store(t.buf+off%4096, 64, v, trace.NoVal)
			}
		})
	}
	q.kern.Send(e, t.conn, t.buf, 256)
	t.reqs++
	if t.reqs%256 == 0 {
		q.kern.SchedTick(e, t.tid)
	}
	return true
}

func profile(name string, m *cloudsuite.Measurement) {
	fmt.Printf("%-16s IPC %.2f  MLP %.2f  stall %4.0f%%  L1-I MPKI %5.1f  OS %4.1f%%  BW %4.1f%%\n",
		name, m.IPC(), m.MLP(), 100*m.StallFrac(), m.L1IMPKIUser(),
		100*float64(m.CommitOS)/float64(m.Commits()), 100*m.DRAMUtilization())
}

func main() {
	opts := cloudsuite.DefaultOptions()
	opts.WarmupInsts = 250_000
	opts.MeasureInsts = 60_000

	// Measure the custom workload through the same methodology.
	mq, err := cloudsuite.Measure(newQueueWorkload(), opts)
	if err != nil {
		log.Fatal(err)
	}
	// And a CloudSuite member for comparison.
	ws, _ := cloudsuite.FindBench("Web Search")
	ref, err := cloudsuite.MeasureBench(ws, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("custom workload characterized with the paper's methodology:")
	profile(mq.BenchName, mq)
	profile(ref.BenchName, ref)
}
