// customworkload shows how to implement a new workload against the
// framework and characterize it like the paper characterizes
// CloudSuite. The example builds a small in-memory message queue
// (produce/consume over sharded ring buffers with a network front-end)
// and prints its micro-architectural profile next to Web Search's.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cloudsuite"
	"cloudsuite/internal/addrspace"
	"cloudsuite/internal/oskern"
	"cloudsuite/internal/trace"
	"cloudsuite/internal/workloads"
)

// queueWorkload is a minimal scale-out-style service: producers append
// messages to sharded in-memory rings, consumers drain them, and every
// request arrives and is acknowledged over the simulated network.
type queueWorkload struct {
	kern   *oskern.Kernel
	heap   *addrspace.Heap
	bank   *workloads.CodeBank
	fnProd *trace.Func
	fnCons *trace.Func
	rings  []addrspace.Array // sharded message rings
	cursor []uint64
}

func newQueueWorkload() *queueWorkload {
	code := trace.NewCodeLayout(addrspace.UserCodeBase, addrspace.UserCodeSize)
	q := &queueWorkload{
		kern: oskern.New(oskern.DefaultConfig()),
		heap: addrspace.NewUserHeap(),
		bank: workloads.NewCodeBank(code, "broker", 80, 700),
	}
	q.fnProd = code.Func("produce", 500)
	q.fnCons = code.Func("consume", 450)
	// 16 shards x 4MB of messages: the data working set exceeds the LLC.
	for i := 0; i < 16; i++ {
		q.rings = append(q.rings, addrspace.NewArray(q.heap, 16<<10, 256))
		q.cursor = append(q.cursor, 0)
	}
	return q
}

func (q *queueWorkload) Name() string           { return "Message Queue" }
func (q *queueWorkload) Class() workloads.Class { return workloads.ScaleOut }
func (q *queueWorkload) Start(n int, seed int64) []*trace.ChanGen {
	gens := make([]*trace.ChanGen, n)
	for i := 0; i < n; i++ {
		tid := i
		cfg := workloads.EmitterConfigFor(seed+int64(i)*997, 0.08)
		gens[i] = trace.Start(cfg, func(e *trace.Emitter) { q.serve(e, tid, seed+int64(tid)) })
	}
	return gens
}

func (q *queueWorkload) serve(e *trace.Emitter, tid int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	conn := q.kern.OpenConnOn(tid)
	stack := workloads.StackOf(tid)
	buf := q.heap.AllocLines(4096)
	reqs := uint64(0)
	for {
		q.kern.Recv(e, conn, buf, 256)
		q.bank.Exec(e, reqs*2654435761+uint64(tid), 14, 2200, stack, 3)
		shard := rng.Intn(len(q.rings))
		ring := q.rings[shard]
		slot := q.cursor[shard] % ring.Len
		if rng.Intn(2) == 0 { // produce
			e.InFunc(q.fnProd, func() {
				for off := uint64(0); off < 256; off += 64 {
					v := e.Load(buf+off%4096, 64, trace.NoVal, false)
					e.Store(ring.At(slot)+off, 64, v, trace.NoVal)
				}
				q.cursor[shard]++
			})
		} else { // consume
			e.InFunc(q.fnCons, func() {
				var v trace.Val = trace.NoVal
				for off := uint64(0); off < 256; off += 64 {
					v = e.Load(ring.At(slot)+off, 64, v, false)
					e.Store(buf+off%4096, 64, v, trace.NoVal)
				}
			})
		}
		q.kern.Send(e, conn, buf, 256)
		reqs++
		if reqs%256 == 0 {
			q.kern.SchedTick(e, tid)
		}
	}
}

func profile(name string, m *cloudsuite.Measurement) {
	fmt.Printf("%-16s IPC %.2f  MLP %.2f  stall %4.0f%%  L1-I MPKI %5.1f  OS %4.1f%%  BW %4.1f%%\n",
		name, m.IPC(), m.MLP(), 100*m.StallFrac(), m.L1IMPKIUser(),
		100*float64(m.CommitOS)/float64(m.Commits()), 100*m.DRAMUtilization())
}

func main() {
	opts := cloudsuite.DefaultOptions()
	opts.WarmupInsts = 250_000
	opts.MeasureInsts = 60_000

	// Measure the custom workload through the same methodology.
	mq, err := cloudsuite.Measure(newQueueWorkload(), opts)
	if err != nil {
		log.Fatal(err)
	}
	// And a CloudSuite member for comparison.
	ws, _ := cloudsuite.FindBench("Web Search")
	ref, err := cloudsuite.MeasureBench(ws, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("custom workload characterized with the paper's methodology:")
	profile(mq.BenchName, mq)
	profile(ref.BenchName, ref)
}
