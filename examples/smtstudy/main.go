// smtstudy reproduces the Figure-3 SMT experiment: it measures IPC and
// MLP for each scale-out workload with one and with two hardware
// threads per core, showing the 39-69% SMT gains the paper reports for
// the independent-request scale-out class.
//
// Both configurations of all six workloads are submitted to a Runner
// as one batch, so they measure concurrently on multicore hosts while
// the printed table keeps its deterministic order.
//
//	go run ./examples/smtstudy
package main

import (
	"fmt"
	"log"

	"cloudsuite"
)

func main() {
	opts := cloudsuite.DefaultOptions()
	opts.WarmupInsts = 200_000
	opts.MeasureInsts = 40_000
	smtOpts := opts
	smtOpts.SMT = true

	benches := cloudsuite.ScaleOut()
	var reqs []cloudsuite.MeasureRequest
	for _, b := range benches {
		reqs = append(reqs,
			cloudsuite.MeasureRequest{Bench: b, Options: opts},
			cloudsuite.MeasureRequest{Bench: b, Options: smtOpts})
	}
	ms, err := cloudsuite.NewRunner(0).MeasureAll(reqs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-18s %6s %9s %6s %9s %8s\n",
		"workload", "IPC", "IPC(SMT)", "MLP", "MLP(SMT)", "gain")
	for i, b := range benches {
		base, smt := ms[2*i], ms[2*i+1]
		fmt.Printf("%-18s %6.2f %9.2f %6.2f %9.2f %7.0f%%\n",
			b.Name, base.IPC(), smt.IPC(), base.MLP(), smt.MLP(),
			100*(smt.IPC()/base.IPC()-1))
	}
	fmt.Println("\nIndependent requests make scale-out workloads ideal SMT")
	fmt.Println("candidates: the second context roughly doubles the")
	fmt.Println("exploitable memory-level parallelism (Section 4.2).")
}
