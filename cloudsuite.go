// Package cloudsuite is a from-scratch Go reproduction of "Clearing the
// Clouds: A Study of Emerging Scale-out Workloads on Modern Hardware"
// (Ferdman et al., ASPLOS 2012).
//
// It bundles three things:
//
//   - a cycle-approximate model of the paper's measured machine (a
//     Xeon X5670-class server: 4-wide out-of-order cores, a three-level
//     cache hierarchy with directory coherence and hardware
//     prefetchers, SMT, and DDR3 channels) with a performance-counter
//     layer standing in for VTune;
//
//   - the CloudSuite scale-out workloads (Data Serving, MapReduce,
//     Media Streaming, SAT Solver, Web Frontend, Web Search) and the
//     traditional comparison benchmarks (SPECint and PARSEC proxies,
//     SPECweb09, TPC-C, TPC-E, Web Backend), implemented as real
//     algorithms over a simulated address space, with an operating-
//     system model supplying the kernel side;
//
//   - the paper's measurement methodology and experiments: execution-
//     time breakdowns, instruction-miss characterization, IPC/MLP with
//     and without SMT, LLC capacity sweeps via cache-polluting threads,
//     prefetcher ablations, two-socket sharing analysis, and off-chip
//     bandwidth accounting (Figures 1-7 plus Table 1).
//
// This package is the public facade: it re-exports the measurement API
// from the internal packages. See README.md for a tour, DESIGN.md for
// the system inventory, and EXPERIMENTS.md for paper-vs-measured
// results. The cmd/cloudsuite and cmd/figures binaries and the
// examples/ directory show typical usage:
//
//	b, _ := cloudsuite.FindBench("Web Search")
//	m, err := cloudsuite.MeasureBench(b, cloudsuite.DefaultOptions())
//	fmt.Println(m.IPC(), m.MLP())
//
// Measurements are bit-reproducible per seed. Batch experiments go
// through a Runner, which fans requests out across a worker pool and
// memoizes results by (benchmark, canonicalized options), so identical
// configurations are simulated once no matter how many figures request
// them:
//
//	r := cloudsuite.NewRunner(4) // 4 workers
//	rows, err := r.Figure1(cloudsuite.ScaleOutEntries(), cloudsuite.DefaultOptions())
//
// Setting Options.Sampling replaces the contiguous measured window with
// SMARTS-style interval sampling: short timed windows spread across the
// same effective horizon, each preceded by functional warming, at ~1/5
// of the measured work. Sampled measurements carry per-interval counter
// vectors and report 95% confidence intervals:
//
//	o := cloudsuite.DefaultOptions()
//	o.Sampling = cloudsuite.DefaultSampling()
//	m, _ := cloudsuite.MeasureBench(b, o)
//	ci := m.CI(func(m *cloudsuite.Measurement) float64 { return m.IPC() })
//	fmt.Printf("IPC %.2f ± %.2f\n", ci.Mean, ci.Half)
//
// Parameter sweeps over the same warmed workloads can additionally
// share warm-state checkpoints: a CheckpointStore snapshots the
// machine at the warm->measure boundary and later runs fork from the
// image, byte-identically to warming from cold (DESIGN.md section 6):
//
//	cs, _ := cloudsuite.NewCheckpointStore(dir) // "" = in-memory
//	r.SetCheckpoints(cs)
package cloudsuite

import (
	"cloudsuite/internal/core"
	"cloudsuite/internal/workloads"
)

// Re-exported types: the measurement API.
type (
	// Machine is a simulated server configuration.
	Machine = core.Machine
	// Options configures one measurement run.
	Options = core.Options
	// Measurement is the counter outcome of one run.
	Measurement = core.Measurement
	// Sampling configures SMARTS-style interval sampling for a
	// measurement (see Options.Sampling).
	Sampling = core.Sampling
	// IntervalSample is one measurement interval of a sampled run.
	IntervalSample = core.IntervalSample
	// Estimate is a sampled metric statistic: mean, standard error, and
	// 95% confidence interval (Measurement.CI, EntryResult.CI).
	Estimate = core.Estimate
	// Bench is one benchmark of the suite.
	Bench = core.Bench
	// Entry is one bar position of the paper's figures.
	Entry = core.Entry
	// EntryResult aggregates measurements of an Entry's members.
	EntryResult = core.EntryResult
	// Workload is the interface new workloads implement.
	Workload = workloads.Workload
	// TableRow is one row of the Table-1 listing.
	TableRow = core.TableRow
	// Claim is one of the paper's findings checked by Validate.
	Claim = core.Claim

	// Implication row types.
	ImplicationRow = core.ImplicationRow
	IPrefRow       = core.IPrefRow

	// Figure row types.
	BreakdownRow = core.BreakdownRow
	InstrMissRow = core.InstrMissRow
	IPCMLPRow    = core.IPCMLPRow
	LLCSeries    = core.LLCSeries
	LLCPoint     = core.LLCPoint
	PrefetchRow  = core.PrefetchRow
	SharingRow   = core.SharingRow
	BandwidthRow = core.BandwidthRow

	// Experiment-orchestration types. Runner fans measurement requests
	// out across a worker pool and memoizes results; every figure
	// driver is also available as a Runner method.
	Runner         = core.Runner
	MeasureRequest = core.MeasureRequest
	RunnerStats    = core.RunnerStats
	ProgressEvent  = core.ProgressEvent
	ProgressFunc   = core.ProgressFunc

	// CheckpointStore caches warm-state machine snapshots so parameter
	// sweeps fork from one warm image instead of re-warming per
	// configuration (Options.Checkpoints, Runner.SetCheckpoints).
	CheckpointStore = core.CheckpointStore
	// CheckpointStats counts a CheckpointStore's activity.
	CheckpointStats = core.CheckpointStats
)

// Experiment orchestration.
var (
	// NewRunner returns a Runner with the given worker-pool width
	// (<= 0 selects GOMAXPROCS).
	NewRunner = core.NewRunner
	// NewCheckpointStore returns a warm-state checkpoint store backed
	// by a directory ("" = in-memory only).
	NewCheckpointStore = core.NewCheckpointStore
)

// Machine configurations.
var (
	// XeonX5670 returns the Table-1 machine.
	XeonX5670 = core.XeonX5670
	// TwoSocket returns the dual-socket sharing-measurement machine.
	TwoSocket = core.TwoSocket
	// Table1 lists a machine's architectural parameters.
	Table1 = core.Table1
)

// Suite access.
var (
	// ScaleOut returns the six CloudSuite benchmarks.
	ScaleOut = core.ScaleOut
	// Traditional returns the comparison benchmarks.
	Traditional = core.Traditional
	// AllBenches returns the full suite.
	AllBenches = core.AllBenches
	// FindBench looks a benchmark up by name.
	FindBench = core.FindBench
	// FigureEntries returns the bar positions of the paper's figures.
	FigureEntries = core.FigureEntries
	// ScaleOutEntries returns the six scale-out bar positions.
	ScaleOutEntries = core.ScaleOutEntries
)

// Measurement methodology.
var (
	// DefaultOptions is the paper's baseline setup (4 cores, warm-up,
	// measured window).
	DefaultOptions = core.DefaultOptions
	// DefaultSampling is an enabled interval-sampling spec with default
	// schedule (8 intervals spread over the MeasureInsts horizon).
	DefaultSampling = core.DefaultSampling
	// Measure runs one workload instance.
	Measure = core.Measure
	// MeasureBench creates and measures a fresh instance of a benchmark.
	MeasureBench = core.MeasureBench
	// MeasureEntry measures every member of an Entry.
	MeasureEntry = core.MeasureEntry
	// Validate checks the paper's headline claims against fresh runs.
	Validate = core.Validate
	// AllHold reports whether every claim holds.
	AllHold = core.AllHold
)

// Implications experiments (Section 4's architectural proposals).
var (
	// ScaleOutProcessor is the paper's proposed scale-out-optimized CMP.
	ScaleOutProcessor = core.ScaleOutProcessor
	// AreaUnits is the coarse die-area proxy used by Implications.
	AreaUnits = core.AreaUnits
	// Implications compares computational density across designs.
	Implications = core.Implications
	// InstructionPrefetchStudy compares instruction-prefetch front-ends.
	InstructionPrefetchStudy = core.InstructionPrefetchStudy
)

// Experiment drivers, one per paper figure.
var (
	Figure1       = core.Figure1
	Figure2       = core.Figure2
	Figure3       = core.Figure3
	Figure4       = core.Figure4
	Figure4Groups = core.Figure4Groups
	Figure5       = core.Figure5
	Figure6       = core.Figure6
	Figure7       = core.Figure7
)
