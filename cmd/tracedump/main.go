// Command tracedump inspects a workload's dynamic instruction stream
// without running the timing model: operation mix, code and data
// footprints, dependence-distance histogram, branch statistics, and
// kernel share. It answers "what does this workload look like to the
// micro-architecture" directly from the trace layer — handy when
// developing new workload models.
//
// Usage:
//
//	tracedump -bench "Data Serving" [-insts 500000] [-threads 1] [-seed 1] [-json]
//
// -json replaces the text tables with one machine-readable JSON object
// (full operation mix, footprints, and dependence histogram) for
// scripted comparisons across workloads.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cloudsuite/internal/core"
	"cloudsuite/internal/report"
	"cloudsuite/internal/trace"
)

func main() {
	var (
		bench   = flag.String("bench", "Data Serving", "benchmark name")
		insts   = flag.Int("insts", 500_000, "instructions to inspect per thread")
		threads = flag.Int("threads", 1, "software threads")
		seed    = flag.Int64("seed", 1, "random seed")
		jsonOut = flag.Bool("json", false, "machine-readable JSON output instead of text tables")
	)
	flag.Parse()

	b, ok := core.FindBench(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(1)
	}
	w := b.New()
	gens := w.Start(*threads, *seed)
	defer func() {
		for _, g := range gens {
			g.Close()
		}
	}()

	var s stats
	buf := make([]trace.Inst, 8192)
	for _, g := range gens {
		remaining := *insts
		for remaining > 0 {
			n := g.Next(buf)
			if n == 0 {
				break
			}
			if n > remaining {
				n = remaining
			}
			s.add(buf[:n])
			remaining -= n
		}
	}
	if *jsonOut {
		s.renderJSON(w.Name())
	} else {
		s.render(w.Name())
	}
}

type stats struct {
	total, loads, stores, branches, taken, fp, mul, kernel int
	chases                                                 int
	codeLines                                              map[uint64]bool
	kernCodeLines                                          map[uint64]bool
	dataLines                                              map[uint64]bool
	depHist                                                [8]int // distance buckets
	sizes                                                  map[uint8]int
}

func (s *stats) add(insts []trace.Inst) {
	if s.codeLines == nil {
		s.codeLines = map[uint64]bool{}
		s.kernCodeLines = map[uint64]bool{}
		s.dataLines = map[uint64]bool{}
		s.sizes = map[uint8]int{}
	}
	for i := range insts {
		in := &insts[i]
		s.total++
		if in.Kernel {
			s.kernel++
			s.kernCodeLines[in.PC>>6] = true
		} else {
			s.codeLines[in.PC>>6] = true
		}
		switch in.Op {
		case trace.OpLoad:
			s.loads++
			s.dataLines[in.Addr>>6] = true
			s.sizes[in.Size]++
			if in.AcquiresDep {
				s.chases++
			}
		case trace.OpStore:
			s.stores++
			s.dataLines[in.Addr>>6] = true
		case trace.OpBranch:
			s.branches++
			if in.Taken {
				s.taken++
			}
		case trace.OpFP:
			s.fp++
		case trace.OpMul:
			s.mul++
		}
		if d := in.DepA; d > 0 {
			s.depHist[bucket(d)]++
		}
		if d := in.DepB; d > 0 {
			s.depHist[bucket(d)]++
		}
	}
}

func bucket(d int32) int {
	switch {
	case d <= 1:
		return 0
	case d <= 2:
		return 1
	case d <= 4:
		return 2
	case d <= 8:
		return 3
	case d <= 16:
		return 4
	case d <= 48:
		return 5
	case d <= 128:
		return 6
	default:
		return 7
	}
}

// alu is the residual operation class: plain integer ALU and other
// non-memory, non-branch, non-FP/mul work.
func (s *stats) alu() int {
	return s.total - s.loads - s.stores - s.branches - s.fp - s.mul
}

// pctOf is a share of the total instruction count, in percent.
func (s *stats) pctOf(n int) float64 { return 100 * float64(n) / float64(max(1, s.total)) }

func (s *stats) render(name string) {
	pct := func(n int) string { return fmt.Sprintf("%.1f%%", s.pctOf(n)) }
	t := report.Table{Title: "Trace profile: " + name, Header: []string{"metric", "value"}}
	t.Add("instructions", fmt.Sprint(s.total))
	t.Add("kernel mode", pct(s.kernel))
	t.Add("pointer-chasing loads", fmt.Sprintf("%.1f%% of loads", 100*float64(s.chases)/float64(max(1, s.loads))))
	t.Add("user code footprint", kb(len(s.codeLines)*64))
	t.Add("kernel code footprint", kb(len(s.kernCodeLines)*64))
	t.Add("data footprint touched", kb(len(s.dataLines)*64))
	t.Render(os.Stdout)

	// Operation mix: every committed instruction lands in exactly one
	// class, so the shares sum to 100%.
	mix := report.Table{Title: "Operation mix", Header: []string{"op", "share", ""}}
	for _, row := range []struct {
		name string
		n    int
	}{
		{"load", s.loads}, {"store", s.stores}, {"branch", s.branches},
		{"fp", s.fp}, {"mul", s.mul}, {"alu/other", s.alu()},
	} {
		frac := float64(row.n) / float64(max(1, s.total))
		mix.Add(row.name, fmt.Sprintf("%.1f%%", 100*frac), report.Bar(frac, 1, 30))
	}
	mix.Add("  taken branches", fmt.Sprintf("%.1f%% of branches", 100*float64(s.taken)/float64(max(1, s.branches))), "")
	mix.Render(os.Stdout)

	labels := []string{"1", "2", "3-4", "5-8", "9-16", "17-48", "49-128", ">128"}
	var depTotal int
	for _, n := range s.depHist {
		depTotal += n
	}
	h := report.Table{Title: "Dependence-distance histogram", Header: []string{"distance", "share", ""}}
	for i, n := range s.depHist {
		frac := float64(n) / float64(max(1, depTotal))
		h.Add(labels[i], fmt.Sprintf("%.1f%%", 100*frac), report.Bar(frac, 0.5, 30))
	}
	h.Render(os.Stdout)
}

// jsonProfile is the -json output: one object per invocation with the
// complete operation mix (shares in percent of all instructions, except
// where named otherwise), footprints in bytes, and the
// dependence-distance histogram.
type jsonProfile struct {
	Bench        string  `json:"bench"`
	Instructions int     `json:"instructions"`
	LoadPct      float64 `json:"load_pct"`
	StorePct     float64 `json:"store_pct"`
	BranchPct    float64 `json:"branch_pct"`
	FPPct        float64 `json:"fp_pct"`
	MulPct       float64 `json:"mul_pct"`
	ALUPct       float64 `json:"alu_pct"`
	KernelPct    float64 `json:"kernel_pct"`
	TakenPct     float64 `json:"taken_pct_of_branches"`
	ChasePct     float64 `json:"pointer_chase_pct_of_loads"`
	UserCode     int     `json:"user_code_bytes"`
	KernelCode   int     `json:"kernel_code_bytes"`
	Data         int     `json:"data_bytes"`
	DepHist      []struct {
		Distance string `json:"distance"`
		Count    int    `json:"count"`
	} `json:"dep_hist"`
}

func (s *stats) renderJSON(name string) {
	doc := jsonProfile{
		Bench:        name,
		Instructions: s.total,
		LoadPct:      s.pctOf(s.loads),
		StorePct:     s.pctOf(s.stores),
		BranchPct:    s.pctOf(s.branches),
		FPPct:        s.pctOf(s.fp),
		MulPct:       s.pctOf(s.mul),
		ALUPct:       s.pctOf(s.alu()),
		KernelPct:    s.pctOf(s.kernel),
		TakenPct:     100 * float64(s.taken) / float64(max(1, s.branches)),
		ChasePct:     100 * float64(s.chases) / float64(max(1, s.loads)),
		UserCode:     len(s.codeLines) * 64,
		KernelCode:   len(s.kernCodeLines) * 64,
		Data:         len(s.dataLines) * 64,
	}
	labels := []string{"1", "2", "3-4", "5-8", "9-16", "17-48", "49-128", ">128"}
	for i, n := range s.depHist {
		doc.DepHist = append(doc.DepHist, struct {
			Distance string `json:"distance"`
			Count    int    `json:"count"`
		}{labels[i], n})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func kb(bytes int) string {
	if bytes >= 1<<20 {
		return fmt.Sprintf("%.1fMB", float64(bytes)/(1<<20))
	}
	return fmt.Sprintf("%dKB", bytes>>10)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
