// Command tracedump inspects a workload's dynamic instruction stream
// without running the timing model: operation mix, code and data
// footprints, dependence-distance histogram, branch statistics, and
// kernel share. It answers "what does this workload look like to the
// micro-architecture" directly from the trace layer — handy when
// developing new workload models.
//
// Usage:
//
//	tracedump -bench "Data Serving" [-insts 500000] [-threads 1] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudsuite/internal/core"
	"cloudsuite/internal/report"
	"cloudsuite/internal/trace"
)

func main() {
	var (
		bench   = flag.String("bench", "Data Serving", "benchmark name")
		insts   = flag.Int("insts", 500_000, "instructions to inspect per thread")
		threads = flag.Int("threads", 1, "software threads")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	b, ok := core.FindBench(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(1)
	}
	w := b.New()
	gens := w.Start(*threads, *seed)
	defer func() {
		for _, g := range gens {
			g.Close()
		}
	}()

	var s stats
	buf := make([]trace.Inst, 8192)
	for _, g := range gens {
		remaining := *insts
		for remaining > 0 {
			n := g.Next(buf)
			if n == 0 {
				break
			}
			if n > remaining {
				n = remaining
			}
			s.add(buf[:n])
			remaining -= n
		}
	}
	s.render(w.Name())
}

type stats struct {
	total, loads, stores, branches, taken, fp, mul, kernel int
	chases                                                 int
	codeLines                                              map[uint64]bool
	kernCodeLines                                          map[uint64]bool
	dataLines                                              map[uint64]bool
	depHist                                                [8]int // distance buckets
	sizes                                                  map[uint8]int
}

func (s *stats) add(insts []trace.Inst) {
	if s.codeLines == nil {
		s.codeLines = map[uint64]bool{}
		s.kernCodeLines = map[uint64]bool{}
		s.dataLines = map[uint64]bool{}
		s.sizes = map[uint8]int{}
	}
	for i := range insts {
		in := &insts[i]
		s.total++
		if in.Kernel {
			s.kernel++
			s.kernCodeLines[in.PC>>6] = true
		} else {
			s.codeLines[in.PC>>6] = true
		}
		switch in.Op {
		case trace.OpLoad:
			s.loads++
			s.dataLines[in.Addr>>6] = true
			s.sizes[in.Size]++
			if in.AcquiresDep {
				s.chases++
			}
		case trace.OpStore:
			s.stores++
			s.dataLines[in.Addr>>6] = true
		case trace.OpBranch:
			s.branches++
			if in.Taken {
				s.taken++
			}
		case trace.OpFP:
			s.fp++
		case trace.OpMul:
			s.mul++
		}
		if d := in.DepA; d > 0 {
			s.depHist[bucket(d)]++
		}
		if d := in.DepB; d > 0 {
			s.depHist[bucket(d)]++
		}
	}
}

func bucket(d int32) int {
	switch {
	case d <= 1:
		return 0
	case d <= 2:
		return 1
	case d <= 4:
		return 2
	case d <= 8:
		return 3
	case d <= 16:
		return 4
	case d <= 48:
		return 5
	case d <= 128:
		return 6
	default:
		return 7
	}
}

func (s *stats) render(name string) {
	pct := func(n int) string { return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(s.total)) }
	t := report.Table{Title: "Trace profile: " + name, Header: []string{"metric", "value"}}
	t.Add("instructions", fmt.Sprint(s.total))
	t.Add("loads", pct(s.loads))
	t.Add("stores", pct(s.stores))
	t.Add("branches", pct(s.branches))
	t.Add("  taken", fmt.Sprintf("%.1f%% of branches", 100*float64(s.taken)/float64(max(1, s.branches))))
	t.Add("floating point", pct(s.fp))
	t.Add("kernel mode", pct(s.kernel))
	t.Add("pointer-chasing loads", fmt.Sprintf("%.1f%% of loads", 100*float64(s.chases)/float64(max(1, s.loads))))
	t.Add("user code footprint", kb(len(s.codeLines)*64))
	t.Add("kernel code footprint", kb(len(s.kernCodeLines)*64))
	t.Add("data footprint touched", kb(len(s.dataLines)*64))
	t.Render(os.Stdout)

	labels := []string{"1", "2", "3-4", "5-8", "9-16", "17-48", "49-128", ">128"}
	var depTotal int
	for _, n := range s.depHist {
		depTotal += n
	}
	h := report.Table{Title: "Dependence-distance histogram", Header: []string{"distance", "share", ""}}
	for i, n := range s.depHist {
		frac := float64(n) / float64(max(1, depTotal))
		h.Add(labels[i], fmt.Sprintf("%.1f%%", 100*frac), report.Bar(frac, 0.5, 30))
	}
	h.Render(os.Stdout)
}

func kb(bytes int) string {
	if bytes >= 1<<20 {
		return fmt.Sprintf("%.1fMB", float64(bytes)/(1<<20))
	}
	return fmt.Sprintf("%dKB", bytes>>10)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
