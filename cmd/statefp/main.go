// Command statefp fingerprints the simulator's checkpointed state
// schema and gates it against the committed golden.
//
//	statefp            print the current schema
//	statefp -write     regenerate the golden (after a Version bump)
//	statefp -check     exit 1 if the schema drifted from the golden
//
// The gate enforces the checkpoint format contract statically: editing
// any SaveState/LoadState type (or a struct nested inside one) changes
// its fingerprint, and -check fails unless checkpoint.Version was
// bumped and the golden regenerated in the same change. See
// DESIGN.md §8.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cloudsuite/internal/analysis/statefp"
)

func main() {
	root := flag.String("root", ".", "module root directory")
	golden := flag.String("golden", filepath.Join("internal", "sim", "checkpoint", "testdata", "schema_golden.json"),
		"golden schema path, relative to -root unless absolute")
	write := flag.Bool("write", false, "regenerate the golden from the current tree")
	check := flag.Bool("check", false, "fail if the current schema differs from the golden")
	flag.Parse()

	goldenPath := *golden
	if !filepath.IsAbs(goldenPath) {
		goldenPath = filepath.Join(*root, goldenPath)
	}

	cur, err := statefp.Compute(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statefp:", err)
		os.Exit(2)
	}

	switch {
	case *write:
		data, err := statefp.Marshal(cur)
		if err != nil {
			fmt.Fprintln(os.Stderr, "statefp:", err)
			os.Exit(2)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "statefp:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(goldenPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "statefp:", err)
			os.Exit(2)
		}
		fmt.Printf("statefp: wrote %s (%d types, version %d)\n", goldenPath, len(cur.Types), cur.Version)
	case *check:
		old, err := statefp.Load(goldenPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "statefp:", err)
			os.Exit(2)
		}
		problems := statefp.Diff(old, cur)
		if len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "statefp:", p)
			}
			os.Exit(1)
		}
		fmt.Printf("statefp: schema matches golden (%d types, version %d)\n", len(cur.Types), cur.Version)
	default:
		data, err := statefp.Marshal(cur)
		if err != nil {
			fmt.Fprintln(os.Stderr, "statefp:", err)
			os.Exit(2)
		}
		os.Stdout.Write(data)
	}
}
