// Command figures regenerates every table and figure of the paper's
// evaluation section on the simulated machine and prints them as text
// tables (the EXPERIMENTS.md data source) or as JSON.
//
// Usage:
//
//	figures [-only 1,3,7] [-fig scaling] [-quick] [-seed 1] [-parallel 4] [-progress]
//	        [-sample] [-intervals 8] [-relerr 0.05] [-invariants 1000] [-json]
//	        [-checkpoint-dir DIR] [-pprof 127.0.0.1:6060] [-obs-out PREFIX]
//
// -only selects numbered figures; -fig selects named experiments beyond
// the paper's figures (currently "scaling", the NUMA scale-up study
// sweeping from a single core up to the 64-core four-socket scaled
// machine). The two compose: selecting anything runs only the
// selection. -invariants N audits the coherence state every N memory
// accesses during every run — a pure observer, so output bytes are
// unchanged.
// -quick shrinks the per-run instruction budgets ~4x for a fast pass.
// -sample switches every measurement from one contiguous window to
// SMARTS-style interval sampling: N short timed intervals spread over
// the same effective horizon, each preceded by functional warming, at
// roughly a fifth of the measured work. -intervals overrides N (default
// 8), -relerr enables adaptive stopping on the 95% CI of IPC; either
// implies -sample. Sampled tables carry ± columns (95% CI half-widths).
// -json emits the selected figures as machine-readable rows plus the
// runner's work statistics instead of text tables.
// -checkpoint-dir enables warm-state checkpointing: every measurement
// forks from a cached warm image when one exists for its warm-relevant
// configuration (benchmark, machine, placement, warm budget, seed) and
// contributes its own image otherwise, with images persisted in DIR
// across invocations. Restored runs are byte-identical to cold runs,
// so the flag changes wall-clock time, never output.
// -pprof ADDR serves net/http/pprof plus the live metrics registry
// (/metrics, /debug/vars) on ADDR for profiling a sweep in flight.
// -obs-out PREFIX arms the observability layer and, on exit, writes
// PREFIX.metrics.json (phase-timing and cache metrics) and
// PREFIX.trace.json (Chrome trace_event format — load it in
// chrome://tracing or https://ui.perfetto.dev). Either flag arms the
// observer; both are pure observers, so figure output stays
// byte-identical to an unobserved run (CI enforces this).
// All selected figures share one measurement Runner: -parallel sets its
// worker-pool width (0 = GOMAXPROCS) and configurations common to
// several figures are measured once and served from the memoization
// cache afterwards. Measurements are bit-reproducible per seed —
// sampled or not — so the output is byte-identical for every -parallel
// value.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cloudsuite/internal/core"
	"cloudsuite/internal/obs"
	"cloudsuite/internal/report"
)

// jsonDoc is the -json output: one field per selected artefact, the
// options behind them, and the runner's work accounting.
type jsonDoc struct {
	Seed         int64                 `json:"seed"`
	Quick        bool                  `json:"quick,omitempty"`
	Sampling     *core.Sampling        `json:"sampling,omitempty"`
	Table1       []core.TableRow       `json:"table1,omitempty"`
	Figure1      []core.BreakdownRow   `json:"figure1,omitempty"`
	Figure2      []core.InstrMissRow   `json:"figure2,omitempty"`
	Figure3      []core.IPCMLPRow      `json:"figure3,omitempty"`
	Figure4      []core.LLCSeries      `json:"figure4,omitempty"`
	Figure5      []core.PrefetchRow    `json:"figure5,omitempty"`
	Figure6      []core.SharingRow     `json:"figure6,omitempty"`
	Figure7      []core.BandwidthRow   `json:"figure7,omitempty"`
	Implications []core.ImplicationRow `json:"implications,omitempty"`
	IPrefetch    []core.IPrefRow       `json:"iprefetch,omitempty"`
	Scaling      []core.ScaleUpRow     `json:"scaling,omitempty"`
	Claims       []core.Claim          `json:"claims,omitempty"`
	Runner       core.RunnerStats      `json:"runner"`
}

func main() {
	var (
		only      = flag.String("only", "", "comma-separated figure numbers (default: all, 0 = Table 1, i = implications)")
		fig       = flag.String("fig", "", `comma-separated named experiments ("scaling" = NUMA scale-up study)`)
		quick     = flag.Bool("quick", false, "reduced instruction budgets")
		check     = flag.Bool("check", false, "validate the paper's claims and exit")
		seed      = flag.Int64("seed", 1, "random seed")
		parallel  = flag.Int("parallel", 0, "measurement worker-pool width (0 = GOMAXPROCS)")
		progress  = flag.Bool("progress", false, "report measurement progress on stderr")
		sampleF   = flag.Bool("sample", false, "SMARTS-style interval sampling instead of one contiguous window")
		intervals = flag.Int("intervals", 0, "measurement intervals per configuration (0 = default 8; implies -sample)")
		relerr    = flag.Float64("relerr", 0, "adaptive sampling: stop early once the 95% CI of IPC is within this relative error (implies -sample)")
		invar     = flag.Int("invariants", 0, "check coherence invariants every N memory accesses (0 = off; observer only, output unchanged)")
		jsonOut   = flag.Bool("json", false, "machine-readable JSON output (per-figure rows + runner stats)")
		ckptDir   = flag.String("checkpoint-dir", "", "warm-state checkpoint directory: fork runs from cached warm images and persist new ones")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof and live metrics on this address (e.g. 127.0.0.1:6060)")
		obsOut    = flag.String("obs-out", "", "write PREFIX.metrics.json and PREFIX.trace.json (Chrome trace_event) on exit")
	)
	flag.Parse()

	o, err := buildOptions(cliFlags{
		Quick: *quick, Seed: *seed, Invariants: *invar, Parallel: *parallel,
		Sample: *sampleF, Intervals: *intervals, RelErr: *relerr,
	})
	if err != nil {
		fail(err)
	}
	sampled := o.Sampling.Enabled()

	runner := core.NewRunner(*parallel)
	if *progress {
		runner.SetProgress(progressLine)
	}
	if *ckptDir != "" {
		cs, err := core.NewCheckpointStore(*ckptDir)
		if err != nil {
			fail(err)
		}
		runner.SetCheckpoints(cs)
	}
	// Observability: armed by either profiling flag, disarmed (nil, all
	// recording no-ops) otherwise. Pure observer — figure bytes are
	// identical either way.
	var ob *obs.Observer
	if *pprofAddr != "" || *obsOut != "" {
		ob = obs.New()
		runner.SetObserver(ob)
	}
	if *pprofAddr != "" {
		addr, err := obs.Serve(*pprofAddr, ob)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "obs: profiling endpoint on http://%s/debug/pprof/ (metrics at /metrics)\n", addr)
	}
	// dumpObs runs on every exit path that has results worth profiling —
	// including the -check failure exit, where the sweep still ran.
	dumpObs := func() {
		if *obsOut == "" {
			return
		}
		if err := ob.WriteFiles(*obsOut); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "obs: wrote %s.metrics.json and %s.trace.json\n", *obsOut, *obsOut)
	}

	want := map[string]bool{}
	for _, arg := range []string{*only, *fig} {
		if arg == "" {
			continue
		}
		for _, f := range strings.Split(arg, ",") {
			name := strings.TrimSpace(f)
			switch name {
			case "":
				// tolerate stray commas
			case "0", "1", "2", "3", "4", "5", "6", "7", "i", "scaling":
				want[name] = true
			default:
				fail(fmt.Errorf("unknown figure %q (valid: 0-7, i, scaling)", name))
			}
		}
	}
	// Named experiments run only when selected; numbered figures run by
	// default when nothing is selected.
	sel := func(n string) bool { return len(want) == 0 || want[n] }

	doc := &jsonDoc{Seed: *seed, Quick: *quick}
	if sampled {
		// Record the resolved schedule, not the flag spelling.
		s := o.Sampling.Normalize(o.MeasureInsts)
		doc.Sampling = &s
	}
	render := !*jsonOut

	if *check {
		ok := runCheck(runner, o, doc, render)
		if *jsonOut {
			doc.Runner = runner.Stats()
			emitJSON(doc)
		}
		if *progress {
			reportStats(runner)
		}
		dumpObs()
		if !ok {
			os.Exit(1)
		}
		return
	}

	entries := core.FigureEntries()

	if sel("0") {
		doc.Table1 = core.Table1(core.XeonX5670())
		if render {
			renderTable1(doc.Table1)
		}
	}
	if sel("1") {
		rows, err := runner.Figure1(entries, o)
		if err != nil {
			fail(err)
		}
		doc.Figure1 = rows
		if render {
			renderFigure1(rows, sampled)
		}
	}
	if sel("2") {
		rows, err := runner.Figure2(entries, o)
		if err != nil {
			fail(err)
		}
		doc.Figure2 = rows
		if render {
			renderFigure2(rows)
		}
	}
	if sel("3") {
		rows, err := runner.Figure3(entries, o)
		if err != nil {
			fail(err)
		}
		doc.Figure3 = rows
		if render {
			renderFigure3(rows, sampled)
		}
	}
	if sel("4") {
		series, err := runner.Figure4(core.Figure4Groups(), []int{4, 5, 6, 7, 8, 9, 10, 11}, o)
		if err != nil {
			fail(err)
		}
		doc.Figure4 = series
		if render {
			renderFigure4(series)
		}
	}
	if sel("5") {
		rows, err := runner.Figure5(entries, o)
		if err != nil {
			fail(err)
		}
		doc.Figure5 = rows
		if render {
			renderFigure5(rows)
		}
	}
	if sel("6") {
		rows, err := runner.Figure6(entries, o)
		if err != nil {
			fail(err)
		}
		doc.Figure6 = rows
		if render {
			renderFigure6(rows)
		}
	}
	if sel("7") {
		rows, err := runner.Figure7(entries, o)
		if err != nil {
			fail(err)
		}
		doc.Figure7 = rows
		if render {
			renderFigure7(rows, sampled)
		}
	}
	if want["i"] {
		implications(runner, o, doc, render)
	}
	if want["scaling"] {
		rows, err := runner.ScaleUpStudy(core.ScaleOutEntries(), core.ScaleUpPoints(), o)
		if err != nil {
			fail(err)
		}
		doc.Scaling = rows
		if render {
			renderScaling(rows)
		}
	}

	if *jsonOut {
		doc.Runner = runner.Stats()
		emitJSON(doc)
	}
	if *progress {
		reportStats(runner)
	}
	dumpObs()
}

// reportStats prints the runner's work accounting and, when a
// checkpoint store is installed, the warm-image cache activity on
// stderr (stderr only: -json output must stay byte-identical with and
// without a checkpoint dir, which the CI determinism job enforces).
func reportStats(runner *core.Runner) {
	s := runner.Stats()
	fmt.Fprintf(os.Stderr, "runner: %d measurements requested, %d simulated, %d served from cache, %d insts measured (%d workers)\n",
		s.Requests, s.Runs, s.CacheHits, s.MeasuredInsts, runner.Workers())
	cs := runner.Checkpoints()
	if cs == nil {
		return
	}
	c := cs.Stats()
	fmt.Fprintf(os.Stderr, "checkpoints: %d requests, %d memory hits, %d disk hits, %d saved, %d failures (%s)\n",
		c.Requests, c.MemoryHits, c.DiskHits, c.Saves, c.Failures, cs.Dir())
}

func emitJSON(doc *jsonDoc) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fail(err)
	}
}

// progressLine renders one in-place progress line on stderr, tagged
// with the request's provenance (memo hit, checkpoint fork, cold run)
// and wall-clock cost when known.
func progressLine(ev core.ProgressEvent) {
	tag := ""
	switch {
	case ev.Source != "":
		tag = fmt.Sprintf(" (%s, %s)", ev.Source, ev.Duration.Round(time.Millisecond))
	case ev.Cached:
		tag = " (cached)"
	}
	fmt.Fprintf(os.Stderr, "\r\033[K%4d/%-4d %s%s", ev.Done, ev.Total, ev.Bench, tag)
	if ev.Done == ev.Total {
		fmt.Fprintln(os.Stderr)
	}
}

func runCheck(runner *core.Runner, o core.Options, doc *jsonDoc, render bool) bool {
	claims, err := runner.Validate(o)
	if err != nil {
		fail(err)
	}
	doc.Claims = claims
	ok := core.AllHold(claims)
	if render {
		t := report.Table{Title: "Reproduction check", Header: []string{"claim", "verdict", "measured"}}
		for _, c := range claims {
			verdict := "HOLDS"
			if !c.Holds {
				verdict = "FAILS"
			}
			t.Add(c.ID+" "+c.Statement, verdict, c.Detail)
		}
		t.Render(os.Stdout)
	}
	return ok
}

func implications(runner *core.Runner, o core.Options, doc *jsonDoc, render bool) {
	so := core.ScaleOutEntries()
	rows, err := runner.Implications(so, o)
	if err != nil {
		fail(err)
	}
	doc.Implications = rows
	irows, err := runner.InstructionPrefetchStudy(so, o)
	if err != nil {
		fail(err)
	}
	doc.IPrefetch = irows
	if !render {
		return
	}
	t := report.Table{
		Title:  "Implications: conventional vs scale-out-optimized CMP",
		Header: []string{"Workload", "IPC(conv)", "IPC(opt,SMT)", "chip(conv)", "chip(opt)", "dens(conv)", "dens(opt)", "gain", "pJ/op(conv)", "pJ/op(opt)"},
	}
	for _, r := range rows {
		t.Add(r.Label, report.F2(r.ConvIPC), report.F2(r.OptIPC),
			report.F1(r.ConvChipThroughput), report.F1(r.OptChipThroughput),
			report.F2(r.ConvDensity), report.F2(r.OptDensity),
			fmt.Sprintf("%.1fx", r.OptDensity/r.ConvDensity),
			report.F1(r.ConvPJPerInstr), report.F1(r.OptPJPerInstr))
	}
	t.Render(os.Stdout)

	it := report.Table{
		Title:  "Implications: instruction-prefetcher study (L1-I MPKI / IPC)",
		Header: []string{"Workload", "none", "next-line", "stream", "IPC none", "IPC next", "IPC stream"},
	}
	for _, r := range irows {
		it.Add(r.Label, report.F1(r.MPKINone), report.F1(r.MPKINextLine), report.F1(r.MPKIStream),
			report.F2(r.IPCNone), report.F2(r.IPCNextLine), report.F2(r.IPCStream))
	}
	it.Render(os.Stdout)
}

func renderScaling(rows []core.ScaleUpRow) {
	t := report.Table{
		Title:  "Scale-up study: scale-out workloads vs cores and sockets",
		Header: []string{"Workload", "SxC", "chip IPC", "speedup", "MLP", "BW util", "rem-hit/KI", "rem-DRAM"},
	}
	for _, r := range rows {
		for _, c := range r.Cells {
			t.Add(r.Label, fmt.Sprintf("%dx%d", c.Sockets, c.Cores),
				report.F2(c.ChipIPC), fmt.Sprintf("%.2fx", c.Speedup),
				report.F2(c.MLP), report.Pct(c.BWUtil),
				report.F2(c.RemoteHitPKI), report.Pct(c.RemoteDRAMFrac))
		}
	}
	t.Render(os.Stdout)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func renderTable1(rows []core.TableRow) {
	t := report.Table{Title: "Table 1. Architectural parameters", Header: []string{"Parameter", "Value"}}
	for _, r := range rows {
		t.Add(r.Parameter, r.Value)
	}
	t.Render(os.Stdout)
}

func renderFigure1(rows []core.BreakdownRow, sampled bool) {
	t := report.Table{
		Title:  "Figure 1. Execution-time breakdown and memory cycles",
		Header: []string{"Workload", "Commit(App)", "Commit(OS)", "Stall(App)", "Stall(OS)", "Memory"},
	}
	if sampled {
		t.Header = append(t.Header, "Mem ±95")
	}
	for _, r := range rows {
		cells := []string{r.Label, report.Pct(r.CommittingUser), report.Pct(r.CommittingOS),
			report.Pct(r.StalledUser), report.Pct(r.StalledOS), report.Pct(r.Memory)}
		if sampled {
			cells = append(cells, report.PMPct(r.MemoryCI.Half))
		}
		t.Add(cells...)
	}
	t.Render(os.Stdout)
}

func renderFigure2(rows []core.InstrMissRow) {
	t := report.Table{
		Title:  "Figure 2. L1-I and L2 instruction misses per k-instruction",
		Header: []string{"Workload", "L1-I(App)", "L1-I(OS)", "L2(App)", "L2(OS)"},
	}
	for _, r := range rows {
		osL1, osL2 := report.F1(r.L1IOS), report.F1(r.L2IOS)
		if !r.ShowOS {
			osL1, osL2 = "-", "-"
		}
		t.Add(r.Label, report.F1(r.L1IApp), osL1, report.F1(r.L2IApp), osL2)
	}
	t.Render(os.Stdout)
}

func renderFigure3(rows []core.IPCMLPRow, sampled bool) {
	t := report.Table{
		Title:  "Figure 3. Application IPC (max 4) and MLP, baseline vs SMT",
		Header: []string{"Workload", "IPC", "IPC(SMT)", "IPC rng", "MLP", "MLP(SMT)", "MLP rng", "SMT gain"},
	}
	if sampled {
		t.Header = append(t.Header, "IPC ±95", "MLP ±95")
	}
	for _, r := range rows {
		rngIPC, rngMLP := "-", "-"
		if r.MembersCounted > 1 {
			rngIPC = fmt.Sprintf("%.2f-%.2f", r.IPCLo, r.IPCHi)
			rngMLP = fmt.Sprintf("%.2f-%.2f", r.MLPLo, r.MLPHi)
		}
		cells := []string{r.Label, report.F2(r.IPCBase), report.F2(r.IPCSMT), rngIPC,
			report.F2(r.MLPBase), report.F2(r.MLPSMT), rngMLP,
			fmt.Sprintf("%.0f%%", 100*(r.SMTSpeedup-1))}
		if sampled {
			cells = append(cells, report.PM(r.IPCCI.Half), report.PM(r.MLPCI.Half))
		}
		t.Add(cells...)
	}
	t.Render(os.Stdout)
}

func renderFigure4(series []core.LLCSeries) {
	t := report.Table{
		Title:  "Figure 4. User-IPC vs LLC capacity (normalized to 12MB baseline)",
		Header: []string{"Series", "4MB", "5MB", "6MB", "7MB", "8MB", "9MB", "10MB", "11MB"},
	}
	for _, s := range series {
		cells := []string{s.Label}
		for _, p := range s.Points {
			cells = append(cells, report.F2(p.Normalized))
		}
		t.Add(cells...)
	}
	t.Render(os.Stdout)
}

func renderFigure5(rows []core.PrefetchRow) {
	t := report.Table{
		Title:  "Figure 5. L2 hit ratio with prefetchers enabled/disabled",
		Header: []string{"Workload", "Baseline", "Adj-line off", "HW pref off"},
	}
	for _, r := range rows {
		t.Add(r.Label, report.Pct(r.Baseline), report.Pct(r.AdjacentDisabled), report.Pct(r.HWDisabled))
	}
	t.Render(os.Stdout)
}

func renderFigure6(rows []core.SharingRow) {
	t := report.Table{
		Title:  "Figure 6. Read-write shared LLC hits (normalized to LLC data refs)",
		Header: []string{"Workload", "Application", "OS"},
	}
	for _, r := range rows {
		t.Add(r.Label, report.Pct(r.App), report.Pct(r.OS))
	}
	t.Render(os.Stdout)
}

func renderFigure7(rows []core.BandwidthRow, sampled bool) {
	t := report.Table{
		Title:  "Figure 7. Off-chip memory bandwidth utilization",
		Header: []string{"Workload", "Application", "OS", "Total"},
	}
	if sampled {
		t.Header = append(t.Header, "Tot ±95")
	}
	for _, r := range rows {
		cells := []string{r.Label, report.Pct(r.App), report.Pct(r.OS), report.Pct(r.App + r.OS)}
		if sampled {
			cells = append(cells, report.PMPct(r.TotalCI.Half))
		}
		t.Add(cells...)
	}
	t.Render(os.Stdout)
}
