// Command figures regenerates every table and figure of the paper's
// evaluation section on the simulated machine and prints them as text
// tables (the EXPERIMENTS.md data source).
//
// Usage:
//
//	figures [-only 1,3,7] [-fig scaling] [-quick] [-seed 1] [-parallel 4] [-progress]
//
// -only selects numbered figures; -fig selects named experiments beyond
// the paper's figures (currently "scaling", the NUMA scale-up study
// sweeping 1-12 cores over 1-2 sockets). The two compose: selecting
// anything runs only the selection.
// -quick shrinks the per-run instruction budgets ~4x for a fast pass.
// All selected figures share one measurement Runner: -parallel sets its
// worker-pool width (0 = GOMAXPROCS) and configurations common to
// several figures are measured once and served from the memoization
// cache afterwards. Measurements are bit-reproducible per seed, so the
// tables are byte-identical for every -parallel value.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cloudsuite/internal/core"
	"cloudsuite/internal/report"
)

func main() {
	var (
		only     = flag.String("only", "", "comma-separated figure numbers (default: all, 0 = Table 1, i = implications)")
		fig      = flag.String("fig", "", `comma-separated named experiments ("scaling" = NUMA scale-up study)`)
		quick    = flag.Bool("quick", false, "reduced instruction budgets")
		check    = flag.Bool("check", false, "validate the paper's claims and exit")
		seed     = flag.Int64("seed", 1, "random seed")
		parallel = flag.Int("parallel", 0, "measurement worker-pool width (0 = GOMAXPROCS)")
		progress = flag.Bool("progress", false, "report measurement progress on stderr")
	)
	flag.Parse()

	o := core.DefaultOptions()
	o.Seed = *seed
	if *quick {
		o.WarmupInsts, o.MeasureInsts = 150_000, 40_000
	}

	runner := core.NewRunner(*parallel)
	if *progress {
		runner.SetProgress(progressLine)
	}

	want := map[string]bool{}
	for _, arg := range []string{*only, *fig} {
		if arg == "" {
			continue
		}
		for _, f := range strings.Split(arg, ",") {
			name := strings.TrimSpace(f)
			switch name {
			case "":
				// tolerate stray commas
			case "0", "1", "2", "3", "4", "5", "6", "7", "i", "scaling":
				want[name] = true
			default:
				fail(fmt.Errorf("unknown figure %q (valid: 0-7, i, scaling)", name))
			}
		}
	}
	// Named experiments run only when selected; numbered figures run by
	// default when nothing is selected.
	sel := func(n string) bool { return len(want) == 0 || want[n] }

	if *check {
		runCheck(runner, o)
		return
	}

	entries := core.FigureEntries()

	if sel("0") {
		table1()
	}
	if sel("1") {
		figure1(runner, entries, o)
	}
	if sel("2") {
		figure2(runner, entries, o)
	}
	if sel("3") {
		figure3(runner, entries, o)
	}
	if sel("4") {
		figure4(runner, o)
	}
	if sel("5") {
		figure5(runner, entries, o)
	}
	if sel("6") {
		figure6(runner, entries, o)
	}
	if sel("7") {
		figure7(runner, entries, o)
	}
	if want["i"] {
		implications(runner, o)
	}
	if want["scaling"] {
		figureScaling(runner, o)
	}

	if *progress {
		s := runner.Stats()
		fmt.Fprintf(os.Stderr, "runner: %d measurements requested, %d simulated, %d served from cache (%d workers)\n",
			s.Requests, s.Runs, s.CacheHits, runner.Workers())
	}
}

// progressLine renders one in-place progress line on stderr.
func progressLine(ev core.ProgressEvent) {
	tag := ""
	if ev.Cached {
		tag = " (cached)"
	}
	fmt.Fprintf(os.Stderr, "\r\033[K%4d/%-4d %s%s", ev.Done, ev.Total, ev.Bench, tag)
	if ev.Done == ev.Total {
		fmt.Fprintln(os.Stderr)
	}
}

func runCheck(runner *core.Runner, o core.Options) {
	claims, err := runner.Validate(o)
	if err != nil {
		fail(err)
	}
	t := report.Table{Title: "Reproduction check", Header: []string{"claim", "verdict", "measured"}}
	ok := true
	for _, c := range claims {
		verdict := "HOLDS"
		if !c.Holds {
			verdict = "FAILS"
			ok = false
		}
		t.Add(c.ID+" "+c.Statement, verdict, c.Detail)
	}
	t.Render(os.Stdout)
	if !ok {
		os.Exit(1)
	}
}

func implications(runner *core.Runner, o core.Options) {
	so := core.ScaleOutEntries()
	rows, err := runner.Implications(so, o)
	if err != nil {
		fail(err)
	}
	t := report.Table{
		Title:  "Implications: conventional vs scale-out-optimized CMP",
		Header: []string{"Workload", "IPC(conv)", "IPC(opt,SMT)", "chip(conv)", "chip(opt)", "dens(conv)", "dens(opt)", "gain", "pJ/op(conv)", "pJ/op(opt)"},
	}
	for _, r := range rows {
		t.Add(r.Label, report.F2(r.ConvIPC), report.F2(r.OptIPC),
			report.F1(r.ConvChipThroughput), report.F1(r.OptChipThroughput),
			report.F2(r.ConvDensity), report.F2(r.OptDensity),
			fmt.Sprintf("%.1fx", r.OptDensity/r.ConvDensity),
			report.F1(r.ConvPJPerInstr), report.F1(r.OptPJPerInstr))
	}
	t.Render(os.Stdout)

	irows, err := runner.InstructionPrefetchStudy(so, o)
	if err != nil {
		fail(err)
	}
	it := report.Table{
		Title:  "Implications: instruction-prefetcher study (L1-I MPKI / IPC)",
		Header: []string{"Workload", "none", "next-line", "stream", "IPC none", "IPC next", "IPC stream"},
	}
	for _, r := range irows {
		it.Add(r.Label, report.F1(r.MPKINone), report.F1(r.MPKINextLine), report.F1(r.MPKIStream),
			report.F2(r.IPCNone), report.F2(r.IPCNextLine), report.F2(r.IPCStream))
	}
	it.Render(os.Stdout)
}

func figureScaling(runner *core.Runner, o core.Options) {
	rows, err := runner.ScaleUpStudy(core.ScaleOutEntries(), core.ScaleUpPoints(), o)
	if err != nil {
		fail(err)
	}
	t := report.Table{
		Title:  "Scale-up study: scale-out workloads vs cores and sockets",
		Header: []string{"Workload", "SxC", "chip IPC", "speedup", "MLP", "BW util", "rem-hit/KI", "rem-DRAM"},
	}
	for _, r := range rows {
		for _, c := range r.Cells {
			t.Add(r.Label, fmt.Sprintf("%dx%d", c.Sockets, c.Cores),
				report.F2(c.ChipIPC), fmt.Sprintf("%.2fx", c.Speedup),
				report.F2(c.MLP), report.Pct(c.BWUtil),
				report.F2(c.RemoteHitPKI), report.Pct(c.RemoteDRAMFrac))
		}
	}
	t.Render(os.Stdout)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func table1() {
	t := report.Table{Title: "Table 1. Architectural parameters", Header: []string{"Parameter", "Value"}}
	for _, r := range core.Table1(core.XeonX5670()) {
		t.Add(r.Parameter, r.Value)
	}
	t.Render(os.Stdout)
}

func figure1(runner *core.Runner, entries []core.Entry, o core.Options) {
	rows, err := runner.Figure1(entries, o)
	if err != nil {
		fail(err)
	}
	t := report.Table{
		Title:  "Figure 1. Execution-time breakdown and memory cycles",
		Header: []string{"Workload", "Commit(App)", "Commit(OS)", "Stall(App)", "Stall(OS)", "Memory"},
	}
	for _, r := range rows {
		t.Add(r.Label, report.Pct(r.CommittingUser), report.Pct(r.CommittingOS),
			report.Pct(r.StalledUser), report.Pct(r.StalledOS), report.Pct(r.Memory))
	}
	t.Render(os.Stdout)
}

func figure2(runner *core.Runner, entries []core.Entry, o core.Options) {
	rows, err := runner.Figure2(entries, o)
	if err != nil {
		fail(err)
	}
	t := report.Table{
		Title:  "Figure 2. L1-I and L2 instruction misses per k-instruction",
		Header: []string{"Workload", "L1-I(App)", "L1-I(OS)", "L2(App)", "L2(OS)"},
	}
	for _, r := range rows {
		osL1, osL2 := report.F1(r.L1IOS), report.F1(r.L2IOS)
		if !r.ShowOS {
			osL1, osL2 = "-", "-"
		}
		t.Add(r.Label, report.F1(r.L1IApp), osL1, report.F1(r.L2IApp), osL2)
	}
	t.Render(os.Stdout)
}

func figure3(runner *core.Runner, entries []core.Entry, o core.Options) {
	rows, err := runner.Figure3(entries, o)
	if err != nil {
		fail(err)
	}
	t := report.Table{
		Title:  "Figure 3. Application IPC (max 4) and MLP, baseline vs SMT",
		Header: []string{"Workload", "IPC", "IPC(SMT)", "IPC rng", "MLP", "MLP(SMT)", "MLP rng", "SMT gain"},
	}
	for _, r := range rows {
		rngIPC, rngMLP := "-", "-"
		if r.MembersCounted > 1 {
			rngIPC = fmt.Sprintf("%.2f-%.2f", r.IPCLo, r.IPCHi)
			rngMLP = fmt.Sprintf("%.2f-%.2f", r.MLPLo, r.MLPHi)
		}
		t.Add(r.Label, report.F2(r.IPCBase), report.F2(r.IPCSMT), rngIPC,
			report.F2(r.MLPBase), report.F2(r.MLPSMT), rngMLP,
			fmt.Sprintf("%.0f%%", 100*(r.SMTSpeedup-1)))
	}
	t.Render(os.Stdout)
}

func figure4(runner *core.Runner, o core.Options) {
	series, err := runner.Figure4(core.Figure4Groups(), []int{4, 5, 6, 7, 8, 9, 10, 11}, o)
	if err != nil {
		fail(err)
	}
	t := report.Table{
		Title:  "Figure 4. User-IPC vs LLC capacity (normalized to 12MB baseline)",
		Header: []string{"Series", "4MB", "5MB", "6MB", "7MB", "8MB", "9MB", "10MB", "11MB"},
	}
	for _, s := range series {
		cells := []string{s.Label}
		for _, p := range s.Points {
			cells = append(cells, report.F2(p.Normalized))
		}
		t.Add(cells...)
	}
	t.Render(os.Stdout)
}

func figure5(runner *core.Runner, entries []core.Entry, o core.Options) {
	rows, err := runner.Figure5(entries, o)
	if err != nil {
		fail(err)
	}
	t := report.Table{
		Title:  "Figure 5. L2 hit ratio with prefetchers enabled/disabled",
		Header: []string{"Workload", "Baseline", "Adj-line off", "HW pref off"},
	}
	for _, r := range rows {
		t.Add(r.Label, report.Pct(r.Baseline), report.Pct(r.AdjacentDisabled), report.Pct(r.HWDisabled))
	}
	t.Render(os.Stdout)
}

func figure6(runner *core.Runner, entries []core.Entry, o core.Options) {
	rows, err := runner.Figure6(entries, o)
	if err != nil {
		fail(err)
	}
	t := report.Table{
		Title:  "Figure 6. Read-write shared LLC hits (normalized to LLC data refs)",
		Header: []string{"Workload", "Application", "OS"},
	}
	for _, r := range rows {
		t.Add(r.Label, report.Pct(r.App), report.Pct(r.OS))
	}
	t.Render(os.Stdout)
}

func figure7(runner *core.Runner, entries []core.Entry, o core.Options) {
	rows, err := runner.Figure7(entries, o)
	if err != nil {
		fail(err)
	}
	t := report.Table{
		Title:  "Figure 7. Off-chip memory bandwidth utilization",
		Header: []string{"Workload", "Application", "OS", "Total"},
	}
	for _, r := range rows {
		t.Add(r.Label, report.Pct(r.App), report.Pct(r.OS), report.Pct(r.App+r.OS))
	}
	t.Render(os.Stdout)
}
