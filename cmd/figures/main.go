// Command figures regenerates every table and figure of the paper's
// evaluation section on the simulated machine and prints them as text
// tables (the EXPERIMENTS.md data source).
//
// Usage:
//
//	figures [-only 1,3,7] [-quick] [-seed 1]
//
// -quick shrinks the per-run instruction budgets ~4x for a fast pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cloudsuite/internal/core"
	"cloudsuite/internal/report"
)

func main() {
	var (
		only  = flag.String("only", "", "comma-separated figure numbers (default: all, 0 = Table 1, i = implications)")
		quick = flag.Bool("quick", false, "reduced instruction budgets")
		check = flag.Bool("check", false, "validate the paper's claims and exit")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	o := core.DefaultOptions()
	o.Seed = *seed
	if *quick {
		o.WarmupInsts, o.MeasureInsts = 150_000, 40_000
	}

	want := map[string]bool{}
	if *only != "" {
		for _, f := range strings.Split(*only, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}
	sel := func(n string) bool { return len(want) == 0 || want[n] }

	if *check {
		runCheck(o)
		return
	}

	entries := core.FigureEntries()

	if sel("0") {
		table1()
	}
	if sel("1") {
		figure1(entries, o)
	}
	if sel("2") {
		figure2(entries, o)
	}
	if sel("3") {
		figure3(entries, o)
	}
	if sel("4") {
		figure4(o)
	}
	if sel("5") {
		figure5(entries, o)
	}
	if sel("6") {
		figure6(entries, o)
	}
	if sel("7") {
		figure7(entries, o)
	}
	if want["i"] {
		implications(o)
	}
}

func runCheck(o core.Options) {
	claims, err := core.Validate(o)
	if err != nil {
		fail(err)
	}
	t := report.Table{Title: "Reproduction check", Header: []string{"claim", "verdict", "measured"}}
	ok := true
	for _, c := range claims {
		verdict := "HOLDS"
		if !c.Holds {
			verdict = "FAILS"
			ok = false
		}
		t.Add(c.ID+" "+c.Statement, verdict, c.Detail)
	}
	t.Render(os.Stdout)
	if !ok {
		os.Exit(1)
	}
}

func implications(o core.Options) {
	so := core.ScaleOutEntries()
	rows, err := core.Implications(so, o)
	if err != nil {
		fail(err)
	}
	t := report.Table{
		Title:  "Implications: conventional vs scale-out-optimized CMP",
		Header: []string{"Workload", "IPC(conv)", "IPC(opt,SMT)", "chip(conv)", "chip(opt)", "dens(conv)", "dens(opt)", "gain", "pJ/op(conv)", "pJ/op(opt)"},
	}
	for _, r := range rows {
		t.Add(r.Label, report.F2(r.ConvIPC), report.F2(r.OptIPC),
			report.F1(r.ConvChipThroughput), report.F1(r.OptChipThroughput),
			report.F2(r.ConvDensity), report.F2(r.OptDensity),
			fmt.Sprintf("%.1fx", r.OptDensity/r.ConvDensity),
			report.F1(r.ConvPJPerInstr), report.F1(r.OptPJPerInstr))
	}
	t.Render(os.Stdout)

	irows, err := core.InstructionPrefetchStudy(so, o)
	if err != nil {
		fail(err)
	}
	it := report.Table{
		Title:  "Implications: instruction-prefetcher study (L1-I MPKI / IPC)",
		Header: []string{"Workload", "none", "next-line", "stream", "IPC none", "IPC next", "IPC stream"},
	}
	for _, r := range irows {
		it.Add(r.Label, report.F1(r.MPKINone), report.F1(r.MPKINextLine), report.F1(r.MPKIStream),
			report.F2(r.IPCNone), report.F2(r.IPCNextLine), report.F2(r.IPCStream))
	}
	it.Render(os.Stdout)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func table1() {
	t := report.Table{Title: "Table 1. Architectural parameters", Header: []string{"Parameter", "Value"}}
	for _, r := range core.Table1(core.XeonX5670()) {
		t.Add(r.Parameter, r.Value)
	}
	t.Render(os.Stdout)
}

func figure1(entries []core.Entry, o core.Options) {
	rows, err := core.Figure1(entries, o)
	if err != nil {
		fail(err)
	}
	t := report.Table{
		Title:  "Figure 1. Execution-time breakdown and memory cycles",
		Header: []string{"Workload", "Commit(App)", "Commit(OS)", "Stall(App)", "Stall(OS)", "Memory"},
	}
	for _, r := range rows {
		t.Add(r.Label, report.Pct(r.CommittingUser), report.Pct(r.CommittingOS),
			report.Pct(r.StalledUser), report.Pct(r.StalledOS), report.Pct(r.Memory))
	}
	t.Render(os.Stdout)
}

func figure2(entries []core.Entry, o core.Options) {
	rows, err := core.Figure2(entries, o)
	if err != nil {
		fail(err)
	}
	t := report.Table{
		Title:  "Figure 2. L1-I and L2 instruction misses per k-instruction",
		Header: []string{"Workload", "L1-I(App)", "L1-I(OS)", "L2(App)", "L2(OS)"},
	}
	for _, r := range rows {
		osL1, osL2 := report.F1(r.L1IOS), report.F1(r.L2IOS)
		if !r.ShowOS {
			osL1, osL2 = "-", "-"
		}
		t.Add(r.Label, report.F1(r.L1IApp), osL1, report.F1(r.L2IApp), osL2)
	}
	t.Render(os.Stdout)
}

func figure3(entries []core.Entry, o core.Options) {
	rows, err := core.Figure3(entries, o)
	if err != nil {
		fail(err)
	}
	t := report.Table{
		Title:  "Figure 3. Application IPC (max 4) and MLP, baseline vs SMT",
		Header: []string{"Workload", "IPC", "IPC(SMT)", "IPC rng", "MLP", "MLP(SMT)", "MLP rng", "SMT gain"},
	}
	for _, r := range rows {
		rngIPC, rngMLP := "-", "-"
		if r.MembersCounted > 1 {
			rngIPC = fmt.Sprintf("%.2f-%.2f", r.IPCLo, r.IPCHi)
			rngMLP = fmt.Sprintf("%.2f-%.2f", r.MLPLo, r.MLPHi)
		}
		t.Add(r.Label, report.F2(r.IPCBase), report.F2(r.IPCSMT), rngIPC,
			report.F2(r.MLPBase), report.F2(r.MLPSMT), rngMLP,
			fmt.Sprintf("%.0f%%", 100*(r.SMTSpeedup-1)))
	}
	t.Render(os.Stdout)
}

func figure4(o core.Options) {
	series, err := core.Figure4(core.Figure4Groups(), []int{4, 5, 6, 7, 8, 9, 10, 11}, o)
	if err != nil {
		fail(err)
	}
	t := report.Table{
		Title:  "Figure 4. User-IPC vs LLC capacity (normalized to 12MB baseline)",
		Header: []string{"Series", "4MB", "5MB", "6MB", "7MB", "8MB", "9MB", "10MB", "11MB"},
	}
	for _, s := range series {
		cells := []string{s.Label}
		for _, p := range s.Points {
			cells = append(cells, report.F2(p.Normalized))
		}
		t.Add(cells...)
	}
	t.Render(os.Stdout)
}

func figure5(entries []core.Entry, o core.Options) {
	rows, err := core.Figure5(entries, o)
	if err != nil {
		fail(err)
	}
	t := report.Table{
		Title:  "Figure 5. L2 hit ratio with prefetchers enabled/disabled",
		Header: []string{"Workload", "Baseline", "Adj-line off", "HW pref off"},
	}
	for _, r := range rows {
		t.Add(r.Label, report.Pct(r.Baseline), report.Pct(r.AdjacentDisabled), report.Pct(r.HWDisabled))
	}
	t.Render(os.Stdout)
}

func figure6(entries []core.Entry, o core.Options) {
	rows, err := core.Figure6(entries, o)
	if err != nil {
		fail(err)
	}
	t := report.Table{
		Title:  "Figure 6. Read-write shared LLC hits (normalized to LLC data refs)",
		Header: []string{"Workload", "Application", "OS"},
	}
	for _, r := range rows {
		t.Add(r.Label, report.Pct(r.App), report.Pct(r.OS))
	}
	t.Render(os.Stdout)
}

func figure7(entries []core.Entry, o core.Options) {
	rows, err := core.Figure7(entries, o)
	if err != nil {
		fail(err)
	}
	t := report.Table{
		Title:  "Figure 7. Off-chip memory bandwidth utilization",
		Header: []string{"Workload", "Application", "OS", "Total"},
	}
	for _, r := range rows {
		t.Add(r.Label, report.Pct(r.App), report.Pct(r.OS), report.Pct(r.App+r.OS))
	}
	t.Render(os.Stdout)
}
