package main

import (
	"strings"
	"testing"
)

func TestBuildOptionsDefaults(t *testing.T) {
	o, err := buildOptions(cliFlags{Seed: 1})
	if err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if o.Seed != 1 {
		t.Errorf("Seed = %d, want 1", o.Seed)
	}
	if o.Sampling.Enabled() {
		t.Errorf("sampling enabled without any sampling flag")
	}
}

func TestBuildOptionsQuickAndSampling(t *testing.T) {
	o, err := buildOptions(cliFlags{Seed: 1, Quick: true, Intervals: 16, RelErr: 0.1})
	if err != nil {
		t.Fatalf("quick+sampling rejected: %v", err)
	}
	if o.WarmupInsts != 200_000 || o.MeasureInsts != 40_000 {
		t.Errorf("quick budgets not applied: warmup=%d measure=%d", o.WarmupInsts, o.MeasureInsts)
	}
	if !o.Sampling.Enabled() || o.Sampling.Intervals != 16 || o.Sampling.TargetRelErr != 0.1 {
		t.Errorf("sampling spec not carried through: %+v", o.Sampling)
	}
}

func TestBuildOptionsRejects(t *testing.T) {
	tests := []struct {
		name  string
		flags cliFlags
		want  string
	}{
		{"negative invariants", cliFlags{Invariants: -1}, "-invariants -1: must be >= 0"},
		{"negative parallel", cliFlags{Parallel: -2}, "-parallel -2: must be >= 0"},
		{"negative intervals", cliFlags{Intervals: -8}, "-intervals -8: must be >= 0"},
		{"oversized intervals", cliFlags{Intervals: maxIntervals + 1}, "interval cap"},
		{"negative relerr", cliFlags{RelErr: -0.05}, "-relerr -0.05: must be >= 0"},
		{"relerr of one", cliFlags{RelErr: 1}, "must be below 1"},
		{"oversized relerr", cliFlags{RelErr: 3}, "must be below 1"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := buildOptions(tt.flags)
			if err == nil {
				t.Fatalf("accepted %+v, want error containing %q", tt.flags, tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}
