package main

import (
	"fmt"

	"cloudsuite/internal/core"
)

// maxIntervals caps the sampling schedule: more intervals than measured
// instructions cannot be scheduled, and absurd counts signal a typo.
const maxIntervals = 1_000_000

// cliFlags carries the measurement-shaping flag values into validation.
type cliFlags struct {
	Quick      bool
	Seed       int64
	Invariants int
	Parallel   int
	Sample     bool
	Intervals  int
	RelErr     float64
}

// buildOptions validates the flag values and assembles the shared
// core.Options every selected figure runs with. Rejections happen here,
// before any simulation starts: a negative budget or interval count
// surviving to the engine historically wrapped a uint64 and hung.
func buildOptions(v cliFlags) (core.Options, error) {
	switch {
	case v.Invariants < 0:
		return core.Options{}, fmt.Errorf("-invariants %d: must be >= 0 (0 = off)", v.Invariants)
	case v.Parallel < 0:
		return core.Options{}, fmt.Errorf("-parallel %d: must be >= 0 (0 = GOMAXPROCS)", v.Parallel)
	case v.Intervals < 0:
		return core.Options{}, fmt.Errorf("-intervals %d: must be >= 0 (0 = default)", v.Intervals)
	case v.Intervals > maxIntervals:
		return core.Options{}, fmt.Errorf("-intervals %d: exceeds the %d-interval cap", v.Intervals, maxIntervals)
	case v.RelErr < 0:
		return core.Options{}, fmt.Errorf("-relerr %g: must be >= 0 (0 = fixed interval count)", v.RelErr)
	case v.RelErr >= 1:
		return core.Options{}, fmt.Errorf("-relerr %g: must be below 1 (it is a relative error target)", v.RelErr)
	}
	o := core.DefaultOptions()
	o.Seed = v.Seed
	o.InvariantChecks = v.Invariants
	if v.Quick {
		// Quick warming still has to cover a useful fraction of the
		// largest workload's working set (Data Serving: 128MB), or the
		// measured window sits on a cold-miss transient and claim
		// margins evaporate.
		o.WarmupInsts, o.MeasureInsts = 200_000, 40_000
	}
	if v.Sample || v.Intervals > 0 || v.RelErr > 0 {
		o.Sampling = core.DefaultSampling()
		if v.Intervals > 0 {
			o.Sampling.Intervals = v.Intervals
		}
		o.Sampling.TargetRelErr = v.RelErr
	}
	return o, nil
}
