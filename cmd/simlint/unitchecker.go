package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"cloudsuite/internal/analysis"
)

// vetConfig mirrors cmd/go/internal/work.vetConfig — the JSON the go
// command writes for each package when this binary runs as
// `go vet -vettool=simlint`. Fields we do not consume are kept so the
// full file round-trips during debugging.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// runUnitchecker analyzes the single package described by cfgPath and
// returns the process exit code (0 clean, 1 driver error, 2 findings).
func runUnitchecker(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "simlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The go command asks for facts-only passes on dependencies. The
	// suite defines no facts, so the vetx output is an empty marker —
	// written in every mode so results cache.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			_ = os.WriteFile(cfg.VetxOutput, []byte("simlint has no facts\n"), 0o666)
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Dependencies resolve through the export data the go command
	// compiled for us: ImportMap rewrites source import paths to
	// canonical package paths, PackageFile locates each package's
	// export data.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(importPath)
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tconf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, build()),
		GoVersion: goVersion(cfg.GoVersion),
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "simlint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags := analysis.Run(&analysis.Package{Fset: fset, Files: files, Pkg: pkg, Info: info}, analyzers)
	writeVetx()
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return 2
}

func build() string {
	if arch := os.Getenv("GOARCH"); arch != "" {
		return arch
	}
	return defaultGOARCH
}

// goVersion sanitizes the config's Go version for types.Config, which
// rejects anything it cannot parse as "go1.N[.M]".
func goVersion(v string) string {
	if strings.HasPrefix(v, "go1.") {
		return v
	}
	return ""
}
