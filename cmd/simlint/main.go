// Command simlint runs the project's static-analysis suite
// (internal/analysis): maporder, globalrand, checkpointcov, and
// memokey — the vet-time enforcement of the determinism, checkpoint-
// coverage, and memo-key contracts.
//
// Usage:
//
//	go run ./cmd/simlint ./...          # standalone over package patterns
//	go vet -vettool=$(which simlint) ./...
//	simlint -maporder ./...             # run a subset of analyzers
//	simlint -suppressions [dir]         # audit table of all annotations
//
// Standalone invocations re-exec through `go vet -vettool=<self>`, so
// both entry points share one code path: the go command compiles the
// packages, supplies export data for dependencies, and invokes this
// binary once per package with a vet.cfg JSON file (the unpublished vet
// driver protocol, implemented in unitchecker.go on the standard
// library only). Selecting analyzer flags narrows the run: if any
// analyzer flag is set true, only those analyzers run; -name=false
// removes one from the full suite.
//
// Exit status: 0 clean, 2 when diagnostics were reported, 1 on driver
// errors.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"cloudsuite/internal/analysis"
)

func main() {
	// The go command's tool handshake: `-V=full` must print a version
	// line; content-hashing the executable makes go's action cache
	// invalidate vet results whenever the analyzers change.
	versionFlag := flag.String("V", "", "print version (go command tool protocol)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
	suppressionsFlag := flag.Bool("suppressions", false,
		"print the audit table of every //simlint:ok and //simlint:replay annotation under the argument directory (default .) and exit")
	enabled := map[string]*bool{}
	for _, a := range analysis.All {
		enabled[a.Name] = flag.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+firstLine(a.Doc))
	}
	flag.Parse()

	switch {
	case *versionFlag != "":
		fmt.Printf("simlint version %s\n", selfID())
		return
	case *flagsFlag:
		printFlagsJSON()
		return
	case *suppressionsFlag:
		os.Exit(printSuppressions(flag.Args()))
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnitchecker(args[0], selectAnalyzers(enabled)))
	}
	os.Exit(runStandalone())
}

// selectAnalyzers applies vet's flag semantics: any analyzer flag
// explicitly set true selects exactly the true set; otherwise the full
// suite runs minus any explicitly disabled.
func selectAnalyzers(enabled map[string]*bool) []*analysis.Analyzer {
	explicitTrue := false
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) {
		if _, ok := enabled[f.Name]; ok {
			set[f.Name] = true
			if *enabled[f.Name] {
				explicitTrue = true
			}
		}
	})
	var out []*analysis.Analyzer
	for _, a := range analysis.All {
		switch {
		case explicitTrue && *enabled[a.Name] && set[a.Name]:
			out = append(out, a)
		case !explicitTrue && *enabled[a.Name]:
			out = append(out, a)
		}
	}
	return out
}

// printSuppressions answers `simlint -suppressions [dir]`: the
// purely-syntactic annotation audit (no type checking, no go command),
// rendered as the markdown table DESIGN.md §8 embeds.
func printSuppressions(args []string) int {
	root := "."
	if len(args) > 0 {
		root = args[0]
	}
	sups, err := analysis.ListSuppressions(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 1
	}
	fmt.Print(analysis.FormatSuppressions(sups))
	return 0
}

// runStandalone re-executes as a go vet backend so package loading,
// export data, and caching all come from the go command.
func runStandalone() int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 1
	}
	args := append([]string{"vet", "-vettool=" + exe}, os.Args[1:]...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "simlint: running go vet: %v\n", err)
		return 1
	}
	return 0
}

// selfID returns a content hash of this executable for the go
// command's tool-version cache key.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// printFlagsJSON answers `simlint -flags`: the go vet flag handshake.
func printFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	for _, a := range analysis.All {
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: firstLine(a.Doc)})
	}
	data, _ := json.Marshal(out)
	fmt.Printf("%s\n", data)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
