package main

import "runtime"

// defaultGOARCH sizes type-checking when the go command does not set
// GOARCH in the environment (it normally does for cross builds).
const defaultGOARCH = runtime.GOARCH
