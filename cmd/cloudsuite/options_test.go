package main

import (
	"strings"
	"testing"

	"cloudsuite/internal/sim/cache"
)

// validFlags mirrors the CLI defaults, which must always build.
func validFlags() cliFlags {
	return cliFlags{Cores: 4, Sockets: 1, Warmup: 400_000, Measure: 120_000, Seed: 1}
}

func TestBuildOptionsDefaults(t *testing.T) {
	o, err := buildOptions(validFlags())
	if err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if o.Cores != 4 || o.Sockets != 1 || o.WarmupInsts != 400_000 || o.MeasureInsts != 120_000 {
		t.Errorf("defaults mangled: %+v", o)
	}
	if o.Sampling.Enabled() {
		t.Errorf("sampling enabled without any sampling flag")
	}
}

func TestBuildOptionsSampling(t *testing.T) {
	v := validFlags()
	v.Intervals = 12
	v.RelErr = 0.05
	o, err := buildOptions(v)
	if err != nil {
		t.Fatalf("sampling flags rejected: %v", err)
	}
	if !o.Sampling.Enabled() || o.Sampling.Intervals != 12 || o.Sampling.TargetRelErr != 0.05 {
		t.Errorf("sampling spec not carried through: %+v", o.Sampling)
	}
}

func TestBuildOptionsPollute(t *testing.T) {
	v := validFlags()
	v.PolluteMB = 6
	o, err := buildOptions(v)
	if err != nil {
		t.Fatalf("pollute rejected: %v", err)
	}
	if o.PolluteBytes != 6<<20 {
		t.Errorf("PolluteBytes = %d, want %d", o.PolluteBytes, 6<<20)
	}
}

func TestBuildOptionsRejects(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*cliFlags)
		want   string
	}{
		{"zero cores", func(v *cliFlags) { v.Cores = 0 }, "-cores 0: must be positive"},
		{"negative cores", func(v *cliFlags) { v.Cores = -1 }, "-cores -1: must be positive"},
		{"oversized cores", func(v *cliFlags) { v.Cores = cache.MaxCores + 1 }, "directory limit"},
		{"negative sockets", func(v *cliFlags) { v.Sockets = -2 }, "-sockets -2: must be >= 0"},
		{"oversized sockets", func(v *cliFlags) { v.Sockets = cache.MaxCores + 1 }, "directory limit"},
		{"negative cores-per-socket", func(v *cliFlags) { v.CoresPerSocket = -6 }, "-cores-per-socket -6: must be >= 0"},
		{"oversized cores-per-socket", func(v *cliFlags) { v.CoresPerSocket = cache.MaxCores + 1 }, "directory limit"},
		{"negative pollute", func(v *cliFlags) { v.PolluteMB = -1 }, "-pollute -1: must be >= 0"},
		{"negative warmup", func(v *cliFlags) { v.Warmup = -1 }, "-warmup -1: must be >= 0"},
		{"oversized warmup", func(v *cliFlags) { v.Warmup = maxBudgetInsts + 1 }, "budget cap"},
		{"zero measure", func(v *cliFlags) { v.Measure = 0 }, "-measure 0: must be positive"},
		{"negative measure", func(v *cliFlags) { v.Measure = -120_000 }, "-measure -120000: must be positive"},
		{"oversized measure", func(v *cliFlags) { v.Measure = maxBudgetInsts + 1 }, "budget cap"},
		{"negative invariants", func(v *cliFlags) { v.Invariants = -1 }, "-invariants -1: must be >= 0"},
		{"negative parallel", func(v *cliFlags) { v.Parallel = -4 }, "-parallel -4: must be >= 0"},
		{"negative intervals", func(v *cliFlags) { v.Intervals = -8 }, "-intervals -8: must be >= 0"},
		{"oversized intervals", func(v *cliFlags) { v.Intervals = maxIntervals + 1 }, "interval cap"},
		{"negative relerr", func(v *cliFlags) { v.RelErr = -0.05 }, "-relerr -0.05: must be >= 0"},
		{"relerr of one", func(v *cliFlags) { v.RelErr = 1 }, "must be below 1"},
		{"oversized relerr", func(v *cliFlags) { v.RelErr = 2.5 }, "must be below 1"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := validFlags()
			tt.mutate(&v)
			_, err := buildOptions(v)
			if err == nil {
				t.Fatalf("accepted %+v, want error containing %q", v, tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}
