// Command cloudsuite runs one benchmark of the suite on the simulated
// Xeon X5670 and prints its performance-counter characterization, the
// equivalent of one VTune measurement run from the paper.
//
// Usage:
//
//	cloudsuite -list
//	cloudsuite -bench "Web Search" [-cores 4] [-smt] [-split] [-pollute 6]
//	           [-warmup 400000] [-measure 120000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudsuite/internal/core"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list benchmarks and exit")
		bench   = flag.String("bench", "Web Search", "benchmark name")
		cores   = flag.Int("cores", 4, "workload cores")
		smt     = flag.Bool("smt", false, "two threads per core")
		split   = flag.Bool("split", false, "split cores across two sockets")
		pollute = flag.Int("pollute", 0, "LLC MB occupied by polluter threads")
		warmup  = flag.Int64("warmup", 400_000, "per-thread warm-up instructions")
		measure = flag.Int64("measure", 120_000, "per-thread measured instructions")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if *list {
		for _, b := range core.AllBenches() {
			fmt.Printf("%-28s %s\n", b.Name, b.Class)
		}
		return
	}

	b, ok := core.FindBench(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (use -list)\n", *bench)
		os.Exit(1)
	}
	o := core.Options{
		Cores: *cores, SMT: *smt, SplitSockets: *split,
		PolluteBytes: uint64(*pollute) << 20,
		WarmupInsts:  *warmup, MeasureInsts: *measure, Seed: *seed,
	}
	m, err := core.MeasureBench(b, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	c := &m.Counters
	fmt.Printf("benchmark        %s\n", m.BenchName)
	fmt.Printf("cycles           %d (window)\n", m.Cycles)
	fmt.Printf("instructions     %d user, %d OS (%.1f%% OS)\n",
		c.CommitUser, c.CommitOS, 100*float64(c.CommitOS)/float64(c.Commits()))
	fmt.Printf("IPC              %.3f total, %.3f user\n", c.IPC(), c.UserIPC())
	fmt.Printf("MLP              %.2f\n", c.MLP())
	fmt.Printf("cycle breakdown  commit %.1f%% (user %.1f%%, OS %.1f%%), stall %.1f%% (user %.1f%%, OS %.1f%%)\n",
		100-100*c.StallFrac(),
		100*float64(c.CommitCyclesUser)/float64(c.Cycles),
		100*float64(c.CommitCyclesOS)/float64(c.Cycles),
		100*c.StallFrac(),
		100*float64(c.StallCyclesUser)/float64(c.Cycles),
		100*float64(c.StallCyclesOS)/float64(c.Cycles))
	fmt.Printf("memory cycles    %.1f%%\n", 100*c.MemCycleFrac())
	fmt.Printf("L1-I MPKI        %.1f user, %.1f OS\n", c.L1IMPKIUser(), c.L1IMPKIOS())
	fmt.Printf("L2-I MPKI        %.1f user, %.1f OS\n", c.L2IMPKIUser(), c.L2IMPKIOS())
	fmt.Printf("L2 hit ratio     %.1f%%\n", 100*c.L2HitRatio())
	fmt.Printf("LLC hit ratio    %.1f%% (%d accesses)\n", 100*c.LLCHitRatio(), c.LLCAccess)
	fmt.Printf("RW-shared hits   %.2f%% app, %.2f%% OS (of LLC data refs)\n",
		100*c.SharedRWFracUser(), 100*c.SharedRWFracOS())
	fmt.Printf("off-chip BW      %.1f%% utilization (%d KB read, %d KB written)\n",
		100*c.DRAMUtilization(), (c.OffchipReadUser+c.OffchipReadOS)>>10, c.OffchipWriteback>>10)
	fmt.Printf("branches         %.2f%% mispredicted\n", 100*c.MispredictRate())
	fmt.Printf("prefetch         %d issued, %d useful, %d evicted unused\n",
		c.PrefIssued, c.PrefUseful, c.PrefEvicted)
	fmt.Printf("L2 demand        %d accesses, %d hits\n", c.L2Access, c.L2Hit)
}
