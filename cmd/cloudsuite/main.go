// Command cloudsuite runs benchmarks of the suite on the simulated
// Xeon X5670 and prints their performance-counter characterization, the
// equivalent of VTune measurement runs from the paper.
//
// Usage:
//
//	cloudsuite -list
//	cloudsuite -bench "Web Search" [-cores 4] [-sockets 2] [-cores-per-socket 16]
//	           [-smt] [-split] [-pollute 6] [-warmup 400000] [-measure 120000]
//	           [-seed 1] [-sample] [-intervals 8] [-relerr 0.05]
//	           [-invariants 1000] [-checkpoint-dir DIR]
//	           [-pprof 127.0.0.1:6060] [-obs-out PREFIX]
//	cloudsuite -bench "Web Search,Data Serving" [-parallel 4] [-progress]
//	cloudsuite -bench all
//
// -bench accepts a single name, a comma-separated list, or "all"; with
// more than one benchmark the measurements are fanned out across a
// worker pool (-parallel, 0 = GOMAXPROCS) and reported in the order
// given. -sample replaces the contiguous measured window with
// SMARTS-style interval sampling (-intervals windows spread over the
// -measure horizon, each preceded by functional warming) and reports
// 95% confidence intervals; -relerr additionally stops sampling early
// once the CI of IPC is within the requested relative error. Results
// are bit-reproducible per seed — sampled or not — so the output is
// identical for every -parallel value.
// -checkpoint-dir enables warm-state checkpointing: runs fork from
// cached warm images (persisted in DIR across invocations) instead of
// re-executing functional warming, byte-identically to a cold run.
// -sockets and -cores-per-socket select the machine grid: the directory
// tracks up to 256 cores, so scaled machines like 4x16 or 8x32 run
// directly. -invariants N audits the full coherence state (directory
// consistency, inclusion, socket locality) every N memory accesses —
// an observer only, measurements are unchanged.
// -pprof ADDR serves net/http/pprof and the live metrics registry on
// ADDR; -obs-out PREFIX writes PREFIX.metrics.json and
// PREFIX.trace.json (Chrome trace_event format) on exit. Either flag
// arms the observability layer, a pure observer: measured output is
// byte-identical with or without it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cloudsuite/internal/core"
	"cloudsuite/internal/obs"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list benchmarks and exit")
		bench     = flag.String("bench", "Web Search", `benchmark name, comma-separated names, or "all"`)
		cores     = flag.Int("cores", 4, "workload cores")
		sockets   = flag.Int("sockets", 1, "sockets to spread the cores over (NUMA machine; >= 2 implies -split placement)")
		cps       = flag.Int("cores-per-socket", 0, "cores per socket (0 = the Table-1 six; larger values scale the chip)")
		invar     = flag.Int("invariants", 0, "check coherence invariants every N memory accesses (0 = off)")
		smt       = flag.Bool("smt", false, "two threads per core")
		split     = flag.Bool("split", false, "split cores across two sockets")
		pollute   = flag.Int("pollute", 0, "LLC MB occupied by polluter threads")
		warmup    = flag.Int64("warmup", 400_000, "per-thread warm-up instructions")
		measure   = flag.Int64("measure", 120_000, "per-thread measured instructions")
		seed      = flag.Int64("seed", 1, "random seed")
		parallel  = flag.Int("parallel", 0, "measurement worker-pool width (0 = GOMAXPROCS)")
		progress  = flag.Bool("progress", false, "report measurement progress on stderr")
		sampleF   = flag.Bool("sample", false, "SMARTS-style interval sampling instead of one contiguous window")
		intervals = flag.Int("intervals", 0, "measurement intervals (0 = default 8; implies -sample)")
		relerr    = flag.Float64("relerr", 0, "adaptive sampling: stop once the 95% CI of IPC is within this relative error (implies -sample)")
		ckptDir   = flag.String("checkpoint-dir", "", "warm-state checkpoint directory: fork runs from cached warm images and persist new ones")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof and live metrics on this address (e.g. 127.0.0.1:6060)")
		obsOut    = flag.String("obs-out", "", "write PREFIX.metrics.json and PREFIX.trace.json (Chrome trace_event) on exit")
	)
	flag.Parse()

	if *list {
		for _, b := range core.AllBenches() {
			fmt.Printf("%-28s %s\n", b.Name, b.Class)
		}
		return
	}

	benches, err := resolveBenches(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	o, err := buildOptions(cliFlags{
		Cores: *cores, Sockets: *sockets, CoresPerSocket: *cps,
		SMT: *smt, Split: *split, PolluteMB: *pollute,
		Warmup: *warmup, Measure: *measure, Seed: *seed,
		Invariants: *invar, Parallel: *parallel,
		Sample: *sampleF, Intervals: *intervals, RelErr: *relerr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	runner := core.NewRunner(*parallel)
	if *progress {
		runner.SetProgress(func(ev core.ProgressEvent) {
			tag := ""
			if ev.Source != "" {
				tag = fmt.Sprintf(" (%s, %s)", ev.Source, ev.Duration.Round(time.Millisecond))
			}
			fmt.Fprintf(os.Stderr, "%4d/%-4d %s%s\n", ev.Done, ev.Total, ev.Bench, tag)
		})
	}
	if *ckptDir != "" {
		cs, err := core.NewCheckpointStore(*ckptDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runner.SetCheckpoints(cs)
	}
	var ob *obs.Observer
	if *pprofAddr != "" || *obsOut != "" {
		ob = obs.New()
		runner.SetObserver(ob)
	}
	if *pprofAddr != "" {
		addr, err := obs.Serve(*pprofAddr, ob)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "obs: profiling endpoint on http://%s/debug/pprof/ (metrics at /metrics)\n", addr)
	}
	reqs := make([]core.MeasureRequest, len(benches))
	for i, b := range benches {
		reqs[i] = core.MeasureRequest{Bench: b, Options: o}
	}
	ms, err := runner.MeasureAll(reqs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i, m := range ms {
		if i > 0 {
			fmt.Println()
		}
		printMeasurement(m)
	}
	if *obsOut != "" {
		if err := ob.WriteFiles(*obsOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "obs: wrote %s.metrics.json and %s.trace.json\n", *obsOut, *obsOut)
	}
}

// resolveBenches parses the -bench argument: one name, a comma list,
// or "all".
func resolveBenches(arg string) ([]core.Bench, error) {
	if strings.EqualFold(strings.TrimSpace(arg), "all") {
		return core.AllBenches(), nil
	}
	var out []core.Bench
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, ok := core.FindBench(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q (use -list)", name)
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark named (use -list)")
	}
	return out, nil
}

func printMeasurement(m *core.Measurement) {
	c := &m.Counters
	fmt.Printf("benchmark        %s\n", m.BenchName)
	fmt.Printf("cycles           %d (window)\n", m.Cycles)
	fmt.Printf("instructions     %d user, %d OS (%.1f%% OS)\n",
		c.CommitUser, c.CommitOS, 100*float64(c.CommitOS)/float64(c.Commits()))
	fmt.Printf("IPC              %.3f total, %.3f user\n", c.IPC(), c.UserIPC())
	fmt.Printf("MLP              %.2f\n", c.MLP())
	fmt.Printf("cycle breakdown  commit %.1f%% (user %.1f%%, OS %.1f%%), stall %.1f%% (user %.1f%%, OS %.1f%%)\n",
		100-100*c.StallFrac(),
		100*float64(c.CommitCyclesUser)/float64(c.Cycles),
		100*float64(c.CommitCyclesOS)/float64(c.Cycles),
		100*c.StallFrac(),
		100*float64(c.StallCyclesUser)/float64(c.Cycles),
		100*float64(c.StallCyclesOS)/float64(c.Cycles))
	fmt.Printf("memory cycles    %.1f%%\n", 100*c.MemCycleFrac())
	fmt.Printf("L1-I MPKI        %.1f user, %.1f OS\n", c.L1IMPKIUser(), c.L1IMPKIOS())
	fmt.Printf("L2-I MPKI        %.1f user, %.1f OS\n", c.L2IMPKIUser(), c.L2IMPKIOS())
	fmt.Printf("L2 hit ratio     %.1f%%\n", 100*c.L2HitRatio())
	fmt.Printf("LLC hit ratio    %.1f%% (%d accesses)\n", 100*c.LLCHitRatio(), c.LLCAccess)
	fmt.Printf("RW-shared hits   %.2f%% app, %.2f%% OS (of LLC data refs)\n",
		100*c.SharedRWFracUser(), 100*c.SharedRWFracOS())
	fmt.Printf("remote socket    %d cache hits, %.1f%% of DRAM reads remote\n",
		c.RemoteSocketHit, 100*c.RemoteDRAMFrac())
	fmt.Printf("off-chip BW      %.1f%% utilization (%d KB read, %d KB written)\n",
		100*c.DRAMUtilization(), (c.OffchipReadUser+c.OffchipReadOS)>>10, c.OffchipWriteback>>10)
	fmt.Printf("branches         %.2f%% mispredicted\n", 100*c.MispredictRate())
	fmt.Printf("prefetch         %d issued, %d useful, %d evicted unused\n",
		c.PrefIssued, c.PrefUseful, c.PrefEvicted)
	fmt.Printf("L2 demand        %d accesses, %d hits\n", c.L2Access, c.L2Hit)
	if m.Sampled() {
		ipc := m.CI(func(m *core.Measurement) float64 { return m.IPC() })
		mlp := m.CI(func(m *core.Measurement) float64 { return m.MLP() })
		mem := m.CI(func(m *core.Measurement) float64 { return m.MemCycleFrac() })
		bw := m.CI(func(m *core.Measurement) float64 { return m.DRAMUtilization() })
		fmt.Printf("sampling         %d intervals, %d measured insts\n", len(m.Samples), c.Commits())
		fmt.Printf("95%% CI           IPC %.3f±%.3f (rel ±%.1f%%), MLP %.2f±%.2f, mem cycles %.1f%%±%.1f%%, BW util %.1f%%±%.1f%%\n",
			ipc.Mean, ipc.Half, 100*ipc.RelErr(), mlp.Mean, mlp.Half,
			100*mem.Mean, 100*mem.Half, 100*bw.Mean, 100*bw.Half)
	}
}
