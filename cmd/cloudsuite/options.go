package main

import (
	"fmt"

	"cloudsuite/internal/core"
	"cloudsuite/internal/sim/cache"
)

// maxBudgetInsts caps per-thread instruction budgets at a value far
// beyond any sensible simulation (a single thread at ~1M simulated
// insts/sec would run for days): a mistyped exponent should be a flag
// error, not a day-long hang.
const maxBudgetInsts = 1_000_000_000

// maxIntervals caps the sampling schedule: more intervals than measured
// instructions cannot be scheduled, and absurd counts signal a typo.
const maxIntervals = 1_000_000

// cliFlags carries the measurement-shaping flag values into validation.
type cliFlags struct {
	Cores          int
	Sockets        int
	CoresPerSocket int
	SMT            bool
	Split          bool
	PolluteMB      int
	Warmup         int64
	Measure        int64
	Seed           int64
	Invariants     int
	Parallel       int
	Sample         bool
	Intervals      int
	RelErr         float64
}

// buildOptions validates the flag values and assembles core.Options.
// Every rejection happens here, before any simulation starts: the
// historical bug class is a negative budget surviving to the engine's
// timed loop, wrapping a uint64, and hanging — guards must answer with
// a clear error instead.
func buildOptions(v cliFlags) (core.Options, error) {
	switch {
	case v.Cores <= 0:
		return core.Options{}, fmt.Errorf("-cores %d: must be positive", v.Cores)
	case v.Cores > cache.MaxCores:
		return core.Options{}, fmt.Errorf("-cores %d: exceeds the %d-core directory limit", v.Cores, cache.MaxCores)
	case v.Sockets < 0:
		return core.Options{}, fmt.Errorf("-sockets %d: must be >= 0", v.Sockets)
	case v.Sockets > cache.MaxCores:
		return core.Options{}, fmt.Errorf("-sockets %d: exceeds the %d-core directory limit", v.Sockets, cache.MaxCores)
	case v.CoresPerSocket < 0:
		return core.Options{}, fmt.Errorf("-cores-per-socket %d: must be >= 0 (0 = the Table-1 six)", v.CoresPerSocket)
	case v.CoresPerSocket > cache.MaxCores:
		return core.Options{}, fmt.Errorf("-cores-per-socket %d: exceeds the %d-core directory limit", v.CoresPerSocket, cache.MaxCores)
	case v.PolluteMB < 0:
		return core.Options{}, fmt.Errorf("-pollute %d: must be >= 0", v.PolluteMB)
	case v.Warmup < 0:
		return core.Options{}, fmt.Errorf("-warmup %d: must be >= 0", v.Warmup)
	case v.Warmup > maxBudgetInsts:
		return core.Options{}, fmt.Errorf("-warmup %d: exceeds the %d per-thread budget cap", v.Warmup, int64(maxBudgetInsts))
	case v.Measure <= 0:
		return core.Options{}, fmt.Errorf("-measure %d: must be positive", v.Measure)
	case v.Measure > maxBudgetInsts:
		return core.Options{}, fmt.Errorf("-measure %d: exceeds the %d per-thread budget cap", v.Measure, int64(maxBudgetInsts))
	case v.Invariants < 0:
		return core.Options{}, fmt.Errorf("-invariants %d: must be >= 0 (0 = off)", v.Invariants)
	case v.Parallel < 0:
		return core.Options{}, fmt.Errorf("-parallel %d: must be >= 0 (0 = GOMAXPROCS)", v.Parallel)
	}
	if err := validateSamplingFlags(v.Intervals, v.RelErr); err != nil {
		return core.Options{}, err
	}
	o := core.Options{
		Cores: v.Cores, Sockets: v.Sockets, CoresPerSocket: v.CoresPerSocket,
		SMT: v.SMT, SplitSockets: v.Split,
		PolluteBytes: uint64(v.PolluteMB) << 20,
		WarmupInsts:  v.Warmup, MeasureInsts: v.Measure, Seed: v.Seed,
		InvariantChecks: v.Invariants,
	}
	if v.Sample || v.Intervals > 0 || v.RelErr > 0 {
		o.Sampling = core.DefaultSampling()
		if v.Intervals > 0 {
			o.Sampling.Intervals = v.Intervals
		}
		o.Sampling.TargetRelErr = v.RelErr
	}
	return o, nil
}

// validateSamplingFlags guards the sampling shape shared by cloudsuite
// and figures: non-positive or oversized interval counts and relative
// errors outside (0,1) are flag errors, not downstream surprises.
func validateSamplingFlags(intervals int, relerr float64) error {
	switch {
	case intervals < 0:
		return fmt.Errorf("-intervals %d: must be >= 0 (0 = default)", intervals)
	case intervals > maxIntervals:
		return fmt.Errorf("-intervals %d: exceeds the %d-interval cap", intervals, maxIntervals)
	case relerr < 0:
		return fmt.Errorf("-relerr %g: must be >= 0 (0 = fixed interval count)", relerr)
	case relerr >= 1:
		return fmt.Errorf("-relerr %g: must be below 1 (it is a relative error target)", relerr)
	}
	return nil
}
