module cloudsuite

go 1.24
