package cloudsuite_test

// The benchmark harness: one testing.B benchmark per table and figure
// of the paper's evaluation section. Each benchmark regenerates its
// artefact on the simulated machine and reports the headline numbers as
// custom benchmark metrics, printing the full rows once per run so that
// `go test -bench=.` reproduces the entire evaluation.
//
// Budgets are reduced relative to cmd/figures so the whole suite runs
// in minutes; the shapes are stable at these budgets (EXPERIMENTS.md
// records full-budget results).

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"cloudsuite"
	"cloudsuite/internal/report"
)

func benchOptions() cloudsuite.Options {
	o := cloudsuite.DefaultOptions()
	o.WarmupInsts = 120_000
	o.MeasureInsts = 30_000
	return o
}

var printOnce sync.Map

// once prints body a single time per key across benchmark iterations.
func once(key string, body func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		body()
	}
}

// BenchmarkTable1Parameters regenerates Table 1.
func BenchmarkTable1Parameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := cloudsuite.Table1(cloudsuite.XeonX5670())
		if len(rows) == 0 {
			b.Fatal("empty table")
		}
	}
	once("table1", func() {
		t := report.Table{Title: "Table 1. Architectural parameters", Header: []string{"Parameter", "Value"}}
		for _, r := range cloudsuite.Table1(cloudsuite.XeonX5670()) {
			t.Add(r.Parameter, r.Value)
		}
		t.Render(os.Stdout)
	})
}

// BenchmarkFigure1ExecutionBreakdown regenerates Figure 1 over the
// scale-out suite and reports the average stall fraction.
func BenchmarkFigure1ExecutionBreakdown(b *testing.B) {
	o := benchOptions()
	entries := cloudsuite.ScaleOutEntries()
	var rows []cloudsuite.BreakdownRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = cloudsuite.Figure1(entries, o)
		if err != nil {
			b.Fatal(err)
		}
	}
	var stall, mem float64
	for _, r := range rows {
		stall += r.StalledUser + r.StalledOS
		mem += r.Memory
	}
	b.ReportMetric(stall/float64(len(rows)), "stallfrac")
	b.ReportMetric(mem/float64(len(rows)), "memfrac")
	once("fig1", func() {
		t := report.Table{Title: "Figure 1 (bench budgets)", Header: []string{"Workload", "Commit(App)", "Commit(OS)", "Stall(App)", "Stall(OS)", "Memory"}}
		for _, r := range rows {
			t.Add(r.Label, report.Pct(r.CommittingUser), report.Pct(r.CommittingOS),
				report.Pct(r.StalledUser), report.Pct(r.StalledOS), report.Pct(r.Memory))
		}
		t.Render(os.Stdout)
	})
}

// BenchmarkFigure2InstructionMisses regenerates Figure 2 over the
// scale-out suite and reports the mean L1-I MPKI.
func BenchmarkFigure2InstructionMisses(b *testing.B) {
	o := benchOptions()
	entries := cloudsuite.ScaleOutEntries()
	var rows []cloudsuite.InstrMissRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = cloudsuite.Figure2(entries, o)
		if err != nil {
			b.Fatal(err)
		}
	}
	var l1 float64
	for _, r := range rows {
		l1 += r.L1IApp
	}
	b.ReportMetric(l1/float64(len(rows)), "L1I-MPKI")
	once("fig2", func() {
		t := report.Table{Title: "Figure 2 (bench budgets)", Header: []string{"Workload", "L1-I(App)", "L1-I(OS)", "L2(App)", "L2(OS)"}}
		for _, r := range rows {
			t.Add(r.Label, report.F1(r.L1IApp), report.F1(r.L1IOS), report.F1(r.L2IApp), report.F1(r.L2IOS))
		}
		t.Render(os.Stdout)
	})
}

// BenchmarkFigure3IPCMLP regenerates Figure 3 (baseline + SMT) for the
// scale-out suite and reports mean IPC, MLP and SMT speedup.
func BenchmarkFigure3IPCMLP(b *testing.B) {
	o := benchOptions()
	entries := cloudsuite.ScaleOutEntries()
	var rows []cloudsuite.IPCMLPRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = cloudsuite.Figure3(entries, o)
		if err != nil {
			b.Fatal(err)
		}
	}
	var ipc, mlp, smt float64
	for _, r := range rows {
		ipc += r.IPCBase
		mlp += r.MLPBase
		smt += r.SMTSpeedup
	}
	n := float64(len(rows))
	b.ReportMetric(ipc/n, "IPC")
	b.ReportMetric(mlp/n, "MLP")
	b.ReportMetric(smt/n, "SMT-speedup")
	once("fig3", func() {
		t := report.Table{Title: "Figure 3 (bench budgets)", Header: []string{"Workload", "IPC", "IPC(SMT)", "MLP", "MLP(SMT)"}}
		for _, r := range rows {
			t.Add(r.Label, report.F2(r.IPCBase), report.F2(r.IPCSMT), report.F2(r.MLPBase), report.F2(r.MLPSMT))
		}
		t.Render(os.Stdout)
	})
}

// BenchmarkFigure4LLCSensitivity regenerates a reduced Figure 4 (three
// capacities) and reports scale-out IPC retention at 6MB.
func BenchmarkFigure4LLCSensitivity(b *testing.B) {
	o := benchOptions()
	groups := cloudsuite.Figure4Groups()
	var series []cloudsuite.LLCSeries
	for i := 0; i < b.N; i++ {
		var err error
		series, err = cloudsuite.Figure4(groups, []int{4, 6, 8, 10}, o)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		if s.Label == "Scale-out" {
			for _, p := range s.Points {
				if p.CacheMB == 6 {
					b.ReportMetric(p.Normalized, "scaleout-6MB-retention")
				}
			}
		}
	}
	once("fig4", func() {
		t := report.Table{Title: "Figure 4 (bench budgets)", Header: []string{"Series", "4MB", "6MB", "8MB", "10MB"}}
		for _, s := range series {
			cells := []string{s.Label}
			for _, p := range s.Points {
				cells = append(cells, report.F2(p.Normalized))
			}
			t.Add(cells...)
		}
		t.Render(os.Stdout)
	})
}

// BenchmarkFigure5Prefetchers regenerates Figure 5 for the scale-out
// suite and reports MapReduce's HW-prefetcher benefit.
func BenchmarkFigure5Prefetchers(b *testing.B) {
	o := benchOptions()
	entries := cloudsuite.ScaleOutEntries()
	var rows []cloudsuite.PrefetchRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = cloudsuite.Figure5(entries, o)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Label == "MapReduce" {
			b.ReportMetric(r.Baseline-r.HWDisabled, "mapreduce-HW-benefit")
		}
		if r.Label == "Media Streaming" {
			b.ReportMetric(r.AdjacentDisabled-r.Baseline, "streaming-adjoff-gain")
		}
	}
	once("fig5", func() {
		t := report.Table{Title: "Figure 5 (bench budgets)", Header: []string{"Workload", "Baseline", "Adj off", "HW off"}}
		for _, r := range rows {
			t.Add(r.Label, report.Pct(r.Baseline), report.Pct(r.AdjacentDisabled), report.Pct(r.HWDisabled))
		}
		t.Render(os.Stdout)
	})
}

// BenchmarkFigure6Sharing regenerates Figure 6 for scale-out plus the
// OLTP workloads and reports the scale-out vs OLTP application-sharing
// contrast.
func BenchmarkFigure6Sharing(b *testing.B) {
	o := benchOptions()
	var entries []cloudsuite.Entry
	for _, e := range cloudsuite.FigureEntries() {
		switch e.Label {
		case "Data Serving", "MapReduce", "Media Streaming", "SAT Solver",
			"Web Frontend", "Web Search", "TPC-C", "TPC-E", "Web Backend":
			entries = append(entries, e)
		}
	}
	var rows []cloudsuite.SharingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = cloudsuite.Figure6(entries, o)
		if err != nil {
			b.Fatal(err)
		}
	}
	var so, oltp float64
	var nso, noltp int
	for _, r := range rows {
		switch r.Label {
		case "TPC-C", "TPC-E", "Web Backend":
			oltp += r.App
			noltp++
		default:
			so += r.App
			nso++
		}
	}
	b.ReportMetric(so/float64(nso), "scaleout-app-sharing")
	b.ReportMetric(oltp/float64(noltp), "oltp-app-sharing")
	once("fig6", func() {
		t := report.Table{Title: "Figure 6 (bench budgets)", Header: []string{"Workload", "Application", "OS"}}
		for _, r := range rows {
			t.Add(r.Label, report.Pct(r.App), report.Pct(r.OS))
		}
		t.Render(os.Stdout)
	})
}

// BenchmarkFigure7Bandwidth regenerates Figure 7 for the scale-out
// suite and reports Media Streaming's utilisation (the paper's maximum
// among scale-out workloads).
func BenchmarkFigure7Bandwidth(b *testing.B) {
	o := benchOptions()
	entries := cloudsuite.ScaleOutEntries()
	var rows []cloudsuite.BandwidthRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = cloudsuite.Figure7(entries, o)
		if err != nil {
			b.Fatal(err)
		}
	}
	var maxUtil float64
	maxLabel := ""
	for _, r := range rows {
		if u := r.App + r.OS; u > maxUtil {
			maxUtil, maxLabel = u, r.Label
		}
	}
	b.ReportMetric(maxUtil, "max-utilization")
	once("fig7", func() {
		fmt.Printf("Figure 7: peak scale-out bandwidth consumer: %s\n", maxLabel)
		t := report.Table{Title: "Figure 7 (bench budgets)", Header: []string{"Workload", "Application", "OS"}}
		for _, r := range rows {
			t.Add(r.Label, report.Pct(r.App), report.Pct(r.OS))
		}
		t.Render(os.Stdout)
	})
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (instructions simulated per second) on the Web Search workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	o := benchOptions()
	ws, _ := cloudsuite.FindBench("Web Search")
	var insts uint64
	for i := 0; i < b.N; i++ {
		m, err := cloudsuite.MeasureBench(ws, o)
		if err != nil {
			b.Fatal(err)
		}
		insts += m.Commits()
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-insts/s")
}

// BenchmarkAblationLLCDirectSizing is the ablation DESIGN.md calls for:
// it compares the paper's polluter-thread methodology against directly
// shrinking the LLC, for the LLC-sensitive mcf workload.
func BenchmarkAblationLLCDirectSizing(b *testing.B) {
	o := benchOptions()
	mcf, _ := cloudsuite.FindBench("SPECint (mcf)")
	var viaPolluters, viaSizing float64
	for i := 0; i < b.N; i++ {
		base, err := cloudsuite.MeasureBench(mcf, o)
		if err != nil {
			b.Fatal(err)
		}
		op := o
		op.PolluteBytes = 6 << 20
		pol, err := cloudsuite.MeasureBench(mcf, op)
		if err != nil {
			b.Fatal(err)
		}
		small := cloudsuite.XeonX5670()
		small.Mem.LLC.SizeBytes = 6 << 20
		od := o
		od.Machine = &small
		direct, err := cloudsuite.MeasureBench(mcf, od)
		if err != nil {
			b.Fatal(err)
		}
		viaPolluters = pol.UserIPC() / base.UserIPC()
		viaSizing = direct.UserIPC() / base.UserIPC()
	}
	b.ReportMetric(viaPolluters, "retention-polluters")
	b.ReportMetric(viaSizing, "retention-direct")
	once("ablation-llc", func() {
		fmt.Printf("LLC ablation (mcf @6MB): polluters %.2f vs direct sizing %.2f\n",
			viaPolluters, viaSizing)
	})
}

// BenchmarkAblationSMTPartitioning quantifies the cost of splitting the
// ROB between SMT contexts for a dependence-limited workload (the
// design choice behind the paper's "two narrower cores beat one wide
// SMT core" implication).
func BenchmarkAblationSMTPartitioning(b *testing.B) {
	o := benchOptions()
	ds, _ := cloudsuite.FindBench("Data Serving")
	var gain float64
	for i := 0; i < b.N; i++ {
		base, err := cloudsuite.MeasureBench(ds, o)
		if err != nil {
			b.Fatal(err)
		}
		os := o
		os.SMT = true
		smt, err := cloudsuite.MeasureBench(ds, os)
		if err != nil {
			b.Fatal(err)
		}
		gain = smt.IPC() / base.IPC()
	}
	b.ReportMetric(gain, "smt-ipc-gain")
}

// BenchmarkImplicationsDensity regenerates the Section-6 implications
// comparison: chip-level computational density of the conventional vs
// the scale-out-optimized design, on Web Search.
func BenchmarkImplicationsDensity(b *testing.B) {
	o := benchOptions()
	entries := cloudsuite.ScaleOutEntries()[5:6] // Web Search
	var rows []cloudsuite.ImplicationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = cloudsuite.Implications(entries, o)
		if err != nil {
			b.Fatal(err)
		}
	}
	r := rows[0]
	b.ReportMetric(r.OptDensity/r.ConvDensity, "density-gain")
	once("implications", func() {
		fmt.Printf("Implications: %s density %.2f -> %.2f (%.1fx)\n",
			r.Label, r.ConvDensity, r.OptDensity, r.OptDensity/r.ConvDensity)
	})
}

// BenchmarkInstructionPrefetchStudy regenerates the Section-4.1
// instruction-prefetcher implication on Data Serving.
func BenchmarkInstructionPrefetchStudy(b *testing.B) {
	o := benchOptions()
	entries := cloudsuite.ScaleOutEntries()[0:1] // Data Serving
	var rows []cloudsuite.IPrefRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = cloudsuite.InstructionPrefetchStudy(entries, o)
		if err != nil {
			b.Fatal(err)
		}
	}
	r := rows[0]
	b.ReportMetric(r.MPKINone-r.MPKIStream, "stream-MPKI-saved")
	b.ReportMetric(r.IPCStream/r.IPCNone, "stream-IPC-gain")
	once("ipref", func() {
		fmt.Printf("I-prefetch: %s MPKI none %.1f, next-line %.1f, stream %.1f\n",
			r.Label, r.MPKINone, r.MPKINextLine, r.MPKIStream)
	})
}

// BenchmarkScalingThroughput measures simulator throughput (simulated
// committed instructions per wall-clock second) as the machine grows
// from 8 to 64 cores on the scaled 16-core-per-socket grid — the
// BENCH_scaling.json data source. Coherence invariants are audited
// during every run, so a passing benchmark doubles as a directory
// health check at scale.
func BenchmarkScalingThroughput(b *testing.B) {
	wb, ok := cloudsuite.FindBench("Web Search")
	if !ok {
		b.Fatal("Web Search bench missing")
	}
	for _, cores := range []int{8, 16, 32, 48, 64} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			o := benchOptions()
			o.Cores = cores
			o.CoresPerSocket = 16
			o.Sockets = (cores + 15) / 16
			o.InvariantChecks = 5000
			var simInsts uint64
			for i := 0; i < b.N; i++ {
				m, err := cloudsuite.MeasureBench(wb, o)
				if err != nil {
					b.Fatal(err)
				}
				simInsts += m.Commits()
			}
			b.ReportMetric(float64(simInsts)/b.Elapsed().Seconds(), "sim-insts/s")
		})
	}
}
