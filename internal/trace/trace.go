// Package trace defines the dynamic instruction stream representation that
// connects workload models to the micro-architectural simulator.
//
// A workload produces a stream of Inst records through the Generator
// interface. Each record carries the information the simulator needs to
// model the front-end (program counter, branch outcome), the out-of-order
// back-end (register dependence distances), and the memory hierarchy
// (effective address, access size, kernel/user mode).
//
// Dependences are encoded as backward distances in the dynamic stream:
// DepA == 3 means this instruction consumes the value produced by the
// instruction three slots earlier. Distance 0 means "no dependence".
// This representation is position-independent, so generators can be
// buffered, split into batches, and replayed without fix-ups.
package trace

// Op classifies a dynamic instruction for the purposes of the timing model.
type Op uint8

// Instruction classes. The simulator assigns execution latencies and
// structural resources (load/store queue slots, branch predictor lookups)
// based on the class.
const (
	// OpALU is a simple integer operation with single-cycle latency.
	OpALU Op = iota
	// OpMul is an integer multiply or other medium-latency operation.
	OpMul
	// OpFP is a floating-point operation.
	OpFP
	// OpBranch is a conditional or unconditional control transfer.
	OpBranch
	// OpLoad reads Size bytes from Addr.
	OpLoad
	// OpStore writes Size bytes to Addr.
	OpStore
	// OpNop occupies a pipeline slot but has no dependences or effects.
	OpNop

	numOps
)

// String returns a short mnemonic for the op class.
func (o Op) String() string {
	switch o {
	case OpALU:
		return "alu"
	case OpMul:
		return "mul"
	case OpFP:
		return "fp"
	case OpBranch:
		return "br"
	case OpLoad:
		return "ld"
	case OpStore:
		return "st"
	case OpNop:
		return "nop"
	default:
		return "op?"
	}
}

// IsMem reports whether the op accesses data memory.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// Inst is one dynamic instruction.
type Inst struct {
	// PC is the virtual address of the instruction. The front-end model
	// derives instruction-cache accesses from the PC sequence.
	PC uint64
	// Addr is the effective address for OpLoad/OpStore.
	Addr uint64
	// Target is the branch target for OpBranch when Taken.
	Target uint64
	// DepA and DepB are backward dependence distances (0 = none).
	DepA, DepB int32
	// Size is the access size in bytes for memory ops.
	Size uint8
	// Op is the instruction class.
	Op Op
	// Kernel marks instructions executed in operating-system mode.
	Kernel bool
	// Taken is the branch outcome for OpBranch.
	Taken bool
	// Uncond marks unconditional control transfers (calls, returns,
	// direct jumps); the front-end predicts these with the BTB/RAS and
	// they effectively never mispredict.
	Uncond bool
	// AcquiresDep marks a load whose address depends on a previous load's
	// value (pointer chasing). It is advisory: DepA/DepB already encode the
	// dependence; this flag lets tools compute chasing statistics cheaply.
	AcquiresDep bool
}

// Generator produces batches of dynamic instructions.
//
// Next fills out with up to len(out) instructions and returns the number
// written. A return of 0 means the stream is exhausted. Generators are not
// required to be safe for concurrent use.
type Generator interface {
	Next(out []Inst) int
}

// Closer is implemented by generators that own background resources
// (for example a goroutine running the workload kernel). The simulator
// closes generators when a run finishes.
type Closer interface {
	Close()
}

// SliceGen replays a fixed slice of instructions once.
type SliceGen struct {
	Insts []Inst
	pos   int
}

// Next implements Generator.
func (g *SliceGen) Next(out []Inst) int {
	n := copy(out, g.Insts[g.pos:])
	g.pos += n
	return n
}

// Reset rewinds the generator to the beginning of its slice.
func (g *SliceGen) Reset() { g.pos = 0 }

// LoopGen replays a fixed slice of instructions forever.
type LoopGen struct {
	Insts []Inst
	pos   int
}

// Next implements Generator.
func (g *LoopGen) Next(out []Inst) int {
	if len(g.Insts) == 0 {
		return 0
	}
	total := 0
	for total < len(out) {
		n := copy(out[total:], g.Insts[g.pos:])
		g.pos += n
		total += n
		if g.pos == len(g.Insts) {
			g.pos = 0
		}
	}
	return total
}
