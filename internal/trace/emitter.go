package trace

import (
	"fmt"

	"cloudsuite/internal/rng"
	"cloudsuite/internal/sim/checkpoint"
)

// Val identifies a value produced earlier in the dynamic instruction
// stream. Workload kernels thread Vals through their code to express the
// data-flow the out-of-order model should see. The zero of the type is not
// meaningful; use NoVal for "no dependence".
type Val int64

// NoVal marks the absence of a dependence.
const NoVal Val = -1

// Func is a static code region (one function) in the simulated program.
// Instructions emitted while the function is active receive consecutive
// PCs inside [Entry, Entry+4*Size), wrapping around like a loop body when
// the dynamic instruction count exceeds the static size.
type Func struct {
	// Entry is the virtual address of the first instruction.
	Entry uint64
	// Size is the static size in instructions.
	Size uint64
	// Name is used in diagnostics only.
	Name string
	// BranchEntropy overrides the emitter default when >= 0: the
	// probability that an automatically inserted branch in this function
	// is data-dependent (hard to predict) rather than strongly biased.
	BranchEntropy float64
}

// InstBytes is the size of one instruction in the simulated ISA. A fixed
// 4-byte encoding keeps PC arithmetic trivial; with 64-byte cache lines
// this yields 16 instructions per line, close to x86 server code density.
const InstBytes = 4

// CodeLayout allocates static code regions from a contiguous address
// range. One layout is typically shared by all functions of a program
// (user code) and a second one by the OS model (kernel code).
type CodeLayout struct {
	next uint64
	end  uint64
}

// NewCodeLayout returns a layout allocating from [base, base+size).
func NewCodeLayout(base, size uint64) *CodeLayout {
	return &CodeLayout{next: base, end: base + size}
}

// Func carves a function of size instructions out of the layout.
// It panics if the region is exhausted, which indicates a workload
// configuration bug rather than a runtime condition.
func (l *CodeLayout) Func(name string, size int) *Func {
	if size <= 0 {
		panic("trace: function size must be positive")
	}
	bytes := uint64(size) * InstBytes
	// Align functions to cache lines like a real linker would; this makes
	// instruction-cache footprints honest.
	const lineMask = 63
	l.next = (l.next + lineMask) &^ uint64(lineMask)
	if l.next+bytes > l.end {
		panic(fmt.Sprintf("trace: code layout exhausted allocating %s (%d insts)", name, size))
	}
	f := &Func{Entry: l.next, Size: uint64(size), Name: name, BranchEntropy: -1}
	l.next += bytes
	return f
}

// Used reports the number of code bytes allocated so far.
func (l *CodeLayout) Used() uint64 { return l.next }

// EmitterConfig tunes the synthetic control-flow the emitter weaves
// around the data-flow provided by the workload kernel.
type EmitterConfig struct {
	// BlockLen is the mean number of instructions between automatically
	// inserted branches. Typical compiled code has a branch every 5-7
	// instructions. Zero selects the default of 6.
	BlockLen int
	// BranchEntropy is the probability that an auto-inserted branch is
	// data-dependent (50% taken, unpredictable) instead of strongly
	// biased. Predictable code (tight loops) has low entropy; interpreter
	// dispatch and search heuristics have high entropy.
	BranchEntropy float64
	// Seed initialises the emitter's private random stream.
	Seed int64
}

// Emitter converts workload-level events (loads, stores, compute,
// function calls) into the dynamic instruction stream consumed by the
// simulator. It maintains the program counter, inserts realistic
// control flow, and converts Val handles into dependence distances.
//
// Emitters run synchronously on the simulator goroutine: a Program's
// Step method emits into the buffer and returns, and the owning StepGen
// drains the buffer into the consumer. There is no workload goroutine,
// which is what makes the whole generator — RNG, call stack, buffered
// residue — serializable through SaveState/LoadState for live-point
// checkpoints (checkpoint format v3).
type Emitter struct {
	cfg   EmitterConfig
	rng   *rng.Rand
	buf   []Inst // pending instructions, grown as a Step emits
	pos   int    // read cursor: buf[pos:] is not yet consumed
	seq   int64  // absolute index of the next instruction
	funcs []frame
	// untilBranch counts down instructions until the next auto branch.
	untilBranch int
	kernelDepth int
}

type frame struct {
	fn  *Func
	pc  uint64 // next PC to assign inside fn
	ret frameRet
}

type frameRet struct {
	fn *Func
	pc uint64
}

// NewEmitter returns an emitter with an empty call stack. Most callers
// want NewStepGen, which pairs the emitter with a Program.
func NewEmitter(cfg EmitterConfig) *Emitter {
	if cfg.BlockLen <= 0 {
		cfg.BlockLen = 6
	}
	e := &Emitter{
		cfg: cfg,
		rng: rng.New(cfg.Seed),
	}
	e.untilBranch = e.nextBlockLen()
	return e
}

func (e *Emitter) nextBlockLen() int {
	// Jitter block length between half and 1.5x the mean.
	bl := e.cfg.BlockLen
	return bl/2 + 1 + e.rng.Intn(bl)
}

// Seq returns the absolute dynamic index of the next instruction.
// Workloads rarely need it directly; it is exposed for tests.
func (e *Emitter) Seq() int64 { return e.seq }

// Rand returns the emitter's private random stream, for workloads that
// need reproducible randomness tied to the thread seed. The stream is
// part of the emitter's checkpointed state.
func (e *Emitter) Rand() *rng.Rand { return e.rng }

// pending reports how many emitted instructions await consumption.
func (e *Emitter) pending() int { return len(e.buf) - e.pos }

// drain copies pending instructions into out and advances the cursor.
func (e *Emitter) drain(out []Inst) int {
	n := copy(out, e.buf[e.pos:])
	e.pos += n
	if e.pos == len(e.buf) {
		// Fully consumed: recycle the buffer so steady state allocates
		// nothing. Consumers copy out of the batch before the next Step.
		e.buf = e.buf[:0]
		e.pos = 0
	}
	return n
}

func (e *Emitter) dist(v Val) int32 {
	if v < 0 {
		return 0
	}
	d := e.seq - int64(v)
	if d <= 0 {
		panic("trace: dependence on a not-yet-emitted value")
	}
	const maxDist = 1 << 24
	if d > maxDist {
		return 0 // far outside any realistic instruction window
	}
	return int32(d)
}

// curFrame panics if no function is active: every instruction must belong
// to a Func so the instruction cache sees a meaningful PC.
func (e *Emitter) curFrame() *frame {
	if len(e.funcs) == 0 {
		panic("trace: emitting outside any function; use Call first")
	}
	return &e.funcs[len(e.funcs)-1]
}

func (e *Emitter) nextPC() uint64 {
	fr := e.curFrame()
	pc := fr.pc
	fr.pc += InstBytes
	limit := fr.fn.Entry + fr.fn.Size*InstBytes
	if fr.pc >= limit {
		// Wrap like a loop: re-execute the body from shortly after entry.
		fr.pc = fr.fn.Entry
	}
	return pc
}

func (e *Emitter) push(i Inst) Val {
	i.Kernel = e.kernelDepth > 0
	e.buf = append(e.buf, i)
	v := Val(e.seq)
	e.seq++

	// Interleave synthetic control flow. The branch belongs to the same
	// function and usually falls through; sometimes it jumps backwards a
	// short distance (loop) which keeps the footprint identical.
	if i.Op != OpBranch {
		e.untilBranch--
		if e.untilBranch <= 0 {
			e.untilBranch = e.nextBlockLen()
			e.autoBranch()
		}
	}
	return v
}

func (e *Emitter) autoBranch() {
	fr := e.curFrame()
	entropy := e.cfg.BranchEntropy
	if fr.fn.BranchEntropy >= 0 {
		entropy = fr.fn.BranchEntropy
	}
	pc := e.nextPC()
	var taken bool
	var dep int32
	if e.rng.Float64() < entropy {
		// Data-dependent branch: weakly biased outcome that depends on a
		// recent value (real data-dependent branches are rarely 50/50).
		taken = e.rng.Float64() < 0.3
		dep = 1
	} else {
		// Strongly biased branch, mostly not taken (fall through a check).
		taken = e.rng.Float64() < 0.04
	}
	target := pc
	if taken {
		// Short jump within the function; the target is a fixed function
		// of the branch PC (real branches have static targets, so the
		// BTB can learn them).
		span := int64(fr.fn.Size) * InstBytes
		h := pc * 0x9e3779b97f4a7c15
		off := (int64(h>>33)%8 + 1) * InstBytes
		if h&(1<<32) != 0 {
			off = -off
		}
		t := int64(pc) + off
		lo, hi := int64(fr.fn.Entry), int64(fr.fn.Entry)+span-InstBytes
		if t < lo {
			t = lo
		}
		if t > hi {
			t = hi
		}
		target = uint64(t)
		fr.pc = target + InstBytes
		limit := fr.fn.Entry + fr.fn.Size*InstBytes
		if fr.pc >= limit {
			fr.pc = fr.fn.Entry
		}
	}
	e.buf = append(e.buf, Inst{PC: pc, Op: OpBranch, Taken: taken, Target: target, DepA: dep, Kernel: e.kernelDepth > 0})
	e.seq++
}

// Call enters fn: it emits the call branch and redirects the PC stream to
// the function body. Every Call must be paired with Ret.
func (e *Emitter) Call(fn *Func) {
	if len(e.funcs) > 0 {
		fr := e.curFrame()
		pc := e.nextPC()
		e.buf = append(e.buf, Inst{PC: pc, Op: OpBranch, Taken: true, Uncond: true, Target: fn.Entry, Kernel: e.kernelDepth > 0})
		e.seq++
		e.funcs = append(e.funcs, frame{fn: fn, pc: fn.Entry, ret: frameRet{fn: fr.fn, pc: fr.pc}})
		return
	}
	e.funcs = append(e.funcs, frame{fn: fn, pc: fn.Entry})
}

// Ret leaves the current function, emitting the return branch.
func (e *Emitter) Ret() {
	if len(e.funcs) == 0 {
		panic("trace: Ret without Call")
	}
	fr := e.funcs[len(e.funcs)-1]
	e.funcs = e.funcs[:len(e.funcs)-1]
	if fr.ret.fn != nil {
		pc := fr.pc
		e.buf = append(e.buf, Inst{PC: pc, Op: OpBranch, Taken: true, Uncond: true, Target: fr.ret.pc, Kernel: e.kernelDepth > 0})
		e.seq++
	}
}

// InFunc runs body inside fn, handling the Call/Ret pairing.
func (e *Emitter) InFunc(fn *Func, body func()) {
	e.Call(fn)
	body()
	e.Ret()
}

// InKernel runs body in kernel mode inside fn. The OS model uses this for
// syscall handlers, interrupt paths, and kernel threads.
func (e *Emitter) InKernel(fn *Func, body func()) {
	e.kernelDepth++
	e.InFunc(fn, body)
	e.kernelDepth--
}

// Kernel reports whether the emitter is currently in kernel mode.
func (e *Emitter) Kernel() bool { return e.kernelDepth > 0 }

// Load emits a load of size bytes from addr. dep is the value the address
// computation consumes (NoVal for none); chase marks address-generating
// dependences (pointer chasing), which serialise memory-level parallelism.
func (e *Emitter) Load(addr uint64, size int, dep Val, chase bool) Val {
	return e.push(Inst{
		PC: e.nextPC(), Op: OpLoad, Addr: addr, Size: uint8(size),
		DepA: e.dist(dep), AcquiresDep: chase && dep >= 0,
	})
}

// Store emits a store of size bytes to addr, consuming up to two values.
func (e *Emitter) Store(addr uint64, size int, a, b Val) {
	e.push(Inst{
		PC: e.nextPC(), Op: OpStore, Addr: addr, Size: uint8(size),
		DepA: e.dist(a), DepB: e.dist(b),
	})
}

// ALU emits one integer op consuming a and b.
func (e *Emitter) ALU(a, b Val) Val {
	return e.push(Inst{PC: e.nextPC(), Op: OpALU, DepA: e.dist(a), DepB: e.dist(b)})
}

// FP emits one floating-point op consuming a and b.
func (e *Emitter) FP(a, b Val) Val {
	return e.push(Inst{PC: e.nextPC(), Op: OpFP, DepA: e.dist(a), DepB: e.dist(b)})
}

// Mul emits one multiply consuming a and b.
func (e *Emitter) Mul(a, b Val) Val {
	return e.push(Inst{PC: e.nextPC(), Op: OpMul, DepA: e.dist(a), DepB: e.dist(b)})
}

// ALUChain emits n serially dependent integer ops seeded by dep and
// returns the final value. It models address arithmetic, comparisons and
// other short dependent computations.
func (e *Emitter) ALUChain(n int, dep Val) Val {
	v := dep
	for i := 0; i < n; i++ {
		v = e.ALU(v, NoVal)
	}
	return v
}

// ALUIndep emits n mutually independent integer ops (abundant ILP) and
// returns the last one.
func (e *Emitter) ALUIndep(n int) Val {
	v := NoVal
	for i := 0; i < n; i++ {
		v = e.ALU(NoVal, NoVal)
	}
	return v
}

// FPChain emits n serially dependent floating-point ops.
func (e *Emitter) FPChain(n int, dep Val) Val {
	v := dep
	for i := 0; i < n; i++ {
		v = e.FP(v, NoVal)
	}
	return v
}

// Branch emits an explicit conditional branch whose outcome the workload
// controls (taken), consuming dep. Explicit branches express data-
// dependent control flow such as comparison results during a tree search.
func (e *Emitter) Branch(taken bool, dep Val) {
	fr := e.curFrame()
	pc := e.nextPC()
	target := pc
	if taken {
		h := pc * 0x9e3779b97f4a7c15
		t := int64(pc) + (int64(h>>40)%6+1)*InstBytes
		hi := int64(fr.fn.Entry) + int64(fr.fn.Size-1)*InstBytes
		if t > hi {
			t = hi
		}
		target = uint64(t)
		fr.pc = target + InstBytes
		limit := fr.fn.Entry + fr.fn.Size*InstBytes
		if fr.pc >= limit {
			fr.pc = fr.fn.Entry
		}
	}
	e.push(Inst{PC: pc, Op: OpBranch, Taken: taken, Target: target, DepA: e.dist(dep)})
}

// SaveState serializes the complete emitter state: configuration, RNG
// position, call stack (with per-frame code-region geometry), and the
// buffered residue of the last Step that the consumer has not drained
// yet. Restoring from this state continues the instruction stream at
// exactly the next instruction, with no replay.
func (e *Emitter) SaveState(w *checkpoint.Writer) {
	w.Tag("emitter")
	w.U32(uint32(e.cfg.BlockLen))
	w.F64(e.cfg.BranchEntropy)
	w.I64(e.cfg.Seed)
	e.rng.SaveState(w)
	w.I64(e.seq)
	w.U32(uint32(e.untilBranch))
	w.U32(uint32(e.kernelDepth))
	w.U32(uint32(len(e.funcs)))
	for i := range e.funcs {
		fr := &e.funcs[i]
		w.U64(fr.fn.Entry)
		w.U64(fr.fn.Size)
		w.F64(fr.fn.BranchEntropy)
		w.U64(fr.pc)
		w.Bool(fr.ret.fn != nil)
		if fr.ret.fn != nil {
			w.U64(fr.ret.fn.Entry)
			w.U64(fr.ret.fn.Size)
			w.F64(fr.ret.fn.BranchEntropy)
			w.U64(fr.ret.pc)
		}
	}
	residual := e.buf[e.pos:]
	w.U32(uint32(len(residual)))
	w.Struct(residual)
}

// LoadState restores state written by SaveState. The call stack is
// rebuilt with fresh Func values carrying the saved geometry — the
// emitter only ever reads Entry/Size/BranchEntropy from a frame's
// function, so pointer identity with the workload's own Func values is
// not required (Name is diagnostics-only and restored frames carry a
// placeholder).
func (e *Emitter) LoadState(rd *checkpoint.Reader) {
	rd.Expect("emitter")
	e.cfg.BlockLen = int(rd.U32())
	e.cfg.BranchEntropy = rd.F64()
	e.cfg.Seed = rd.I64()
	e.rng.LoadState(rd)
	e.seq = rd.I64()
	e.untilBranch = int(rd.U32())
	e.kernelDepth = int(rd.U32())
	n := int(rd.U32())
	if rd.Err() != nil {
		return
	}
	e.funcs = make([]frame, n)
	for i := range e.funcs {
		fn := &Func{Name: "restored"}
		fn.Entry = rd.U64()
		fn.Size = rd.U64()
		fn.BranchEntropy = rd.F64()
		fr := frame{fn: fn, pc: rd.U64()}
		if rd.Bool() {
			ret := &Func{Name: "restored-ret"}
			ret.Entry = rd.U64()
			ret.Size = rd.U64()
			ret.BranchEntropy = rd.F64()
			fr.ret = frameRet{fn: ret, pc: rd.U64()}
		}
		e.funcs[i] = fr
	}
	k := int(rd.U32())
	if rd.Err() != nil {
		return
	}
	e.buf = make([]Inst, k)
	e.pos = 0
	rd.Struct(e.buf)
}

// Program is a resumable workload thread. Step emits one bounded unit of
// work into the emitter (typically one request, one transaction, or one
// chunk of a long sweep — aim for well under 100k instructions per step)
// and returns false when the thread has nothing further to produce.
//
// Steps run synchronously on the goroutine that pulls from the StepGen,
// in exactly the order the (single-threaded) simulator drains
// generators. That ordering, plus the seeded emitter RNG, makes a run a
// deterministic function of its seeds even when threads share data
// structures — the same property the earlier goroutine-based generator
// obtained through lockstep channels, now structural instead of
// protocol-enforced.
type Program interface {
	Step(e *Emitter) bool
}

// ProgFunc adapts a plain step function to Program.
type ProgFunc func(e *Emitter) bool

// Step implements Program.
func (f ProgFunc) Step(e *Emitter) bool { return f(e) }

// Initer is implemented by programs that need to set up the emitter once
// before the first Step — typically pushing the base call frame (a Call
// with an empty stack emits no instruction). Init must only touch the
// emitter: restoring a checkpoint rebuilds the emitter state wholesale
// after Init runs, so side effects on the program itself would diverge.
type Initer interface {
	Init(e *Emitter)
}

// Stateful is implemented by programs whose complete per-thread state
// can be serialized. When every thread of a workload is Stateful (and
// the workload's shared structures serialize too), a warm image stores
// the generator side of the machine and restore is a pure load with no
// replay; otherwise the engine falls back to replay-based restore.
type Stateful interface {
	SaveState(w *checkpoint.Writer)
	LoadState(rd *checkpoint.Reader)
}

// StepGen adapts a Program to the Generator interface, owning the
// emitter the program emits into. It replaces the goroutine-per-thread
// generator: there is no background goroutine, no channel protocol, and
// the whole generator state is serializable when the program is
// Stateful.
type StepGen struct {
	e    *Emitter
	prog Program
	done bool
}

// NewStepGen returns a generator running prog with a fresh emitter. If
// prog implements Initer, its Init hook runs immediately.
func NewStepGen(cfg EmitterConfig, prog Program) *StepGen {
	e := NewEmitter(cfg)
	if init, ok := prog.(Initer); ok {
		init.Init(e)
	}
	return &StepGen{e: e, prog: prog}
}

// Emitter exposes the generator's emitter, for tests.
func (g *StepGen) Emitter() *Emitter { return g.e }

// Next implements Generator.
func (g *StepGen) Next(out []Inst) int {
	total := 0
	for total < len(out) {
		if g.e.pending() == 0 {
			if g.done {
				break
			}
			if !g.prog.Step(g.e) {
				g.done = true
			}
			continue // drain whatever the (possibly final) step emitted
		}
		total += g.e.drain(out[total:])
	}
	return total
}

// Close implements Closer: it ends the stream and discards any buffered
// instructions. There is no goroutine to unwind.
func (g *StepGen) Close() {
	g.done = true
	g.e.buf, g.e.pos = nil, 0
}

// CanSave reports whether the full generator state — emitter plus
// program — is serializable, making the thread eligible for live-point
// (pure-load) checkpoints.
func (g *StepGen) CanSave() bool {
	_, ok := g.prog.(Stateful)
	return ok
}

// SaveState serializes the generator: progress flag, emitter, and the
// program's own per-thread state. It panics if CanSave is false; the
// engine checks eligibility before choosing the live format.
func (g *StepGen) SaveState(w *checkpoint.Writer) {
	w.Tag("stepgen")
	w.Bool(g.done)
	g.e.SaveState(w)
	g.prog.(Stateful).SaveState(w)
}

// LoadState restores state written by SaveState onto a freshly
// constructed generator for the same program and configuration.
func (g *StepGen) LoadState(rd *checkpoint.Reader) {
	rd.Expect("stepgen")
	g.done = rd.Bool()
	g.e.LoadState(rd)
	g.prog.(Stateful).LoadState(rd)
}
