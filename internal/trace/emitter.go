package trace

import (
	"fmt"
	"math/rand"
)

// Val identifies a value produced earlier in the dynamic instruction
// stream. Workload kernels thread Vals through their code to express the
// data-flow the out-of-order model should see. The zero of the type is not
// meaningful; use NoVal for "no dependence".
type Val int64

// NoVal marks the absence of a dependence.
const NoVal Val = -1

// Func is a static code region (one function) in the simulated program.
// Instructions emitted while the function is active receive consecutive
// PCs inside [Entry, Entry+4*Size), wrapping around like a loop body when
// the dynamic instruction count exceeds the static size.
type Func struct {
	// Entry is the virtual address of the first instruction.
	Entry uint64
	// Size is the static size in instructions.
	Size uint64
	// Name is used in diagnostics only.
	Name string
	// BranchEntropy overrides the emitter default when >= 0: the
	// probability that an automatically inserted branch in this function
	// is data-dependent (hard to predict) rather than strongly biased.
	BranchEntropy float64
}

// InstBytes is the size of one instruction in the simulated ISA. A fixed
// 4-byte encoding keeps PC arithmetic trivial; with 64-byte cache lines
// this yields 16 instructions per line, close to x86 server code density.
const InstBytes = 4

// CodeLayout allocates static code regions from a contiguous address
// range. One layout is typically shared by all functions of a program
// (user code) and a second one by the OS model (kernel code).
type CodeLayout struct {
	next uint64
	end  uint64
}

// NewCodeLayout returns a layout allocating from [base, base+size).
func NewCodeLayout(base, size uint64) *CodeLayout {
	return &CodeLayout{next: base, end: base + size}
}

// Func carves a function of size instructions out of the layout.
// It panics if the region is exhausted, which indicates a workload
// configuration bug rather than a runtime condition.
func (l *CodeLayout) Func(name string, size int) *Func {
	if size <= 0 {
		panic("trace: function size must be positive")
	}
	bytes := uint64(size) * InstBytes
	// Align functions to cache lines like a real linker would; this makes
	// instruction-cache footprints honest.
	const lineMask = 63
	l.next = (l.next + lineMask) &^ uint64(lineMask)
	if l.next+bytes > l.end {
		panic(fmt.Sprintf("trace: code layout exhausted allocating %s (%d insts)", name, size))
	}
	f := &Func{Entry: l.next, Size: uint64(size), Name: name, BranchEntropy: -1}
	l.next += bytes
	return f
}

// Used reports the number of code bytes allocated so far.
func (l *CodeLayout) Used() uint64 { return l.next }

// EmitterConfig tunes the synthetic control-flow the emitter weaves
// around the data-flow provided by the workload kernel.
type EmitterConfig struct {
	// BlockLen is the mean number of instructions between automatically
	// inserted branches. Typical compiled code has a branch every 5-7
	// instructions. Zero selects the default of 6.
	BlockLen int
	// BranchEntropy is the probability that an auto-inserted branch is
	// data-dependent (50% taken, unpredictable) instead of strongly
	// biased. Predictable code (tight loops) has low entropy; interpreter
	// dispatch and search heuristics have high entropy.
	BranchEntropy float64
	// Seed initialises the emitter's private random stream.
	Seed int64
	// BatchLen is the channel batch size used by Start. Zero selects 2048.
	BatchLen int
}

// Emitter converts workload-level events (loads, stores, compute,
// function calls) into the dynamic instruction stream consumed by the
// simulator. It maintains the program counter, inserts realistic
// control flow, and converts Val handles into dependence distances.
//
// Emitters are created by Start and must only be used from the workload
// goroutine that Start runs.
type Emitter struct {
	cfg   EmitterConfig
	rng   *rand.Rand
	buf   []Inst
	alt   []Inst // spare batch buffer, swapped with buf at flush
	n     int
	seq   int64 // absolute index of the next instruction
	ch    chan<- []Inst
	gate  <-chan struct{}
	stop  <-chan struct{}
	funcs []frame // call stack
	// untilBranch counts down instructions until the next auto branch.
	untilBranch int
	kernelDepth int
}

type frame struct {
	fn  *Func
	pc  uint64 // next PC to assign inside fn
	ret frameRet
}

type frameRet struct {
	fn *Func
	pc uint64
}

// stopEmit unwinds the workload goroutine when the generator is closed.
type stopEmit struct{}

func newEmitter(cfg EmitterConfig, ch chan<- []Inst, gate, stop <-chan struct{}) *Emitter {
	if cfg.BlockLen <= 0 {
		cfg.BlockLen = 6
	}
	if cfg.BatchLen <= 0 {
		cfg.BatchLen = 2048
	}
	e := &Emitter{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		buf:  make([]Inst, cfg.BatchLen),
		alt:  make([]Inst, cfg.BatchLen),
		ch:   ch,
		gate: gate,
		stop: stop,
	}
	e.untilBranch = e.nextBlockLen()
	return e
}

// await blocks until the consumer requests the next batch. It is the
// lockstep half of the generator protocol (see Start): workload code
// only executes between a batch request and its delivery, so the
// interleaving of workload goroutines is a deterministic function of
// the simulator's pull order and runs with the same seed are
// bit-identical.
func (e *Emitter) await() {
	select {
	case <-e.gate:
	case <-e.stop:
		panic(stopEmit{})
	}
}

func (e *Emitter) nextBlockLen() int {
	// Jitter block length between half and 1.5x the mean.
	bl := e.cfg.BlockLen
	return bl/2 + 1 + e.rng.Intn(bl)
}

// Seq returns the absolute dynamic index of the next instruction.
// Workloads rarely need it directly; it is exposed for tests.
func (e *Emitter) Seq() int64 { return e.seq }

// Rand returns the emitter's private random stream, for workloads that
// need reproducible randomness tied to the thread seed.
func (e *Emitter) Rand() *rand.Rand { return e.rng }

func (e *Emitter) flush() {
	if e.n == 0 {
		return
	}
	batch := e.buf[:e.n:e.n]
	select {
	case e.ch <- batch:
	case <-e.stop:
		panic(stopEmit{})
	}
	// Lockstep: pause until the next batch is requested so no workload
	// code runs ahead of the simulator.
	e.await()
	// Double buffering instead of a fresh allocation per batch: the
	// consumer requests batch k+1 only after exhausting batch k, so by
	// the time this flush returns (a k+1 request arrived) the buffer of
	// batch k-1 — the one swapped out here — is no longer referenced.
	// Batch k itself stays untouched in the other buffer.
	e.buf, e.alt = e.alt, e.buf
	e.n = 0
}

func (e *Emitter) dist(v Val) int32 {
	if v < 0 {
		return 0
	}
	d := e.seq - int64(v)
	if d <= 0 {
		panic("trace: dependence on a not-yet-emitted value")
	}
	const maxDist = 1 << 24
	if d > maxDist {
		return 0 // far outside any realistic instruction window
	}
	return int32(d)
}

// curFrame panics if no function is active: every instruction must belong
// to a Func so the instruction cache sees a meaningful PC.
func (e *Emitter) curFrame() *frame {
	if len(e.funcs) == 0 {
		panic("trace: emitting outside any function; use Call first")
	}
	return &e.funcs[len(e.funcs)-1]
}

func (e *Emitter) nextPC() uint64 {
	fr := e.curFrame()
	pc := fr.pc
	fr.pc += InstBytes
	limit := fr.fn.Entry + fr.fn.Size*InstBytes
	if fr.pc >= limit {
		// Wrap like a loop: re-execute the body from shortly after entry.
		fr.pc = fr.fn.Entry
	}
	return pc
}

func (e *Emitter) push(i Inst) Val {
	if e.n == len(e.buf) {
		e.flush()
	}
	i.Kernel = e.kernelDepth > 0
	e.buf[e.n] = i
	e.n++
	v := Val(e.seq)
	e.seq++

	// Interleave synthetic control flow. The branch belongs to the same
	// function and usually falls through; sometimes it jumps backwards a
	// short distance (loop) which keeps the footprint identical.
	if i.Op != OpBranch {
		e.untilBranch--
		if e.untilBranch <= 0 {
			e.untilBranch = e.nextBlockLen()
			e.autoBranch()
		}
	}
	return v
}

func (e *Emitter) autoBranch() {
	fr := e.curFrame()
	entropy := e.cfg.BranchEntropy
	if fr.fn.BranchEntropy >= 0 {
		entropy = fr.fn.BranchEntropy
	}
	pc := e.nextPC()
	var taken bool
	var dep int32
	if e.rng.Float64() < entropy {
		// Data-dependent branch: weakly biased outcome that depends on a
		// recent value (real data-dependent branches are rarely 50/50).
		taken = e.rng.Float64() < 0.3
		dep = 1
	} else {
		// Strongly biased branch, mostly not taken (fall through a check).
		taken = e.rng.Float64() < 0.04
	}
	target := pc
	if taken {
		// Short jump within the function; the target is a fixed function
		// of the branch PC (real branches have static targets, so the
		// BTB can learn them).
		span := int64(fr.fn.Size) * InstBytes
		h := pc * 0x9e3779b97f4a7c15
		off := (int64(h>>33)%8 + 1) * InstBytes
		if h&(1<<32) != 0 {
			off = -off
		}
		t := int64(pc) + off
		lo, hi := int64(fr.fn.Entry), int64(fr.fn.Entry)+span-InstBytes
		if t < lo {
			t = lo
		}
		if t > hi {
			t = hi
		}
		target = uint64(t)
		fr.pc = target + InstBytes
		limit := fr.fn.Entry + fr.fn.Size*InstBytes
		if fr.pc >= limit {
			fr.pc = fr.fn.Entry
		}
	}
	if e.n == len(e.buf) {
		e.flush()
	}
	e.buf[e.n] = Inst{PC: pc, Op: OpBranch, Taken: taken, Target: target, DepA: dep, Kernel: e.kernelDepth > 0}
	e.n++
	e.seq++
}

// Call enters fn: it emits the call branch and redirects the PC stream to
// the function body. Every Call must be paired with Ret.
func (e *Emitter) Call(fn *Func) {
	if len(e.funcs) > 0 {
		fr := e.curFrame()
		pc := e.nextPC()
		if e.n == len(e.buf) {
			e.flush()
		}
		e.buf[e.n] = Inst{PC: pc, Op: OpBranch, Taken: true, Uncond: true, Target: fn.Entry, Kernel: e.kernelDepth > 0}
		e.n++
		e.seq++
		e.funcs = append(e.funcs, frame{fn: fn, pc: fn.Entry, ret: frameRet{fn: fr.fn, pc: fr.pc}})
		return
	}
	e.funcs = append(e.funcs, frame{fn: fn, pc: fn.Entry})
}

// Ret leaves the current function, emitting the return branch.
func (e *Emitter) Ret() {
	if len(e.funcs) == 0 {
		panic("trace: Ret without Call")
	}
	fr := e.funcs[len(e.funcs)-1]
	e.funcs = e.funcs[:len(e.funcs)-1]
	if fr.ret.fn != nil {
		pc := fr.pc
		if e.n == len(e.buf) {
			e.flush()
		}
		e.buf[e.n] = Inst{PC: pc, Op: OpBranch, Taken: true, Uncond: true, Target: fr.ret.pc, Kernel: e.kernelDepth > 0}
		e.n++
		e.seq++
	}
}

// InFunc runs body inside fn, handling the Call/Ret pairing.
func (e *Emitter) InFunc(fn *Func, body func()) {
	e.Call(fn)
	body()
	e.Ret()
}

// InKernel runs body in kernel mode inside fn. The OS model uses this for
// syscall handlers, interrupt paths, and kernel threads.
func (e *Emitter) InKernel(fn *Func, body func()) {
	e.kernelDepth++
	e.InFunc(fn, body)
	e.kernelDepth--
}

// Kernel reports whether the emitter is currently in kernel mode.
func (e *Emitter) Kernel() bool { return e.kernelDepth > 0 }

// Load emits a load of size bytes from addr. dep is the value the address
// computation consumes (NoVal for none); chase marks address-generating
// dependences (pointer chasing), which serialise memory-level parallelism.
func (e *Emitter) Load(addr uint64, size int, dep Val, chase bool) Val {
	return e.push(Inst{
		PC: e.nextPC(), Op: OpLoad, Addr: addr, Size: uint8(size),
		DepA: e.dist(dep), AcquiresDep: chase && dep >= 0,
	})
}

// Store emits a store of size bytes to addr, consuming up to two values.
func (e *Emitter) Store(addr uint64, size int, a, b Val) {
	e.push(Inst{
		PC: e.nextPC(), Op: OpStore, Addr: addr, Size: uint8(size),
		DepA: e.dist(a), DepB: e.dist(b),
	})
}

// ALU emits one integer op consuming a and b.
func (e *Emitter) ALU(a, b Val) Val {
	return e.push(Inst{PC: e.nextPC(), Op: OpALU, DepA: e.dist(a), DepB: e.dist(b)})
}

// FP emits one floating-point op consuming a and b.
func (e *Emitter) FP(a, b Val) Val {
	return e.push(Inst{PC: e.nextPC(), Op: OpFP, DepA: e.dist(a), DepB: e.dist(b)})
}

// Mul emits one multiply consuming a and b.
func (e *Emitter) Mul(a, b Val) Val {
	return e.push(Inst{PC: e.nextPC(), Op: OpMul, DepA: e.dist(a), DepB: e.dist(b)})
}

// ALUChain emits n serially dependent integer ops seeded by dep and
// returns the final value. It models address arithmetic, comparisons and
// other short dependent computations.
func (e *Emitter) ALUChain(n int, dep Val) Val {
	v := dep
	for i := 0; i < n; i++ {
		v = e.ALU(v, NoVal)
	}
	return v
}

// ALUIndep emits n mutually independent integer ops (abundant ILP) and
// returns the last one.
func (e *Emitter) ALUIndep(n int) Val {
	v := NoVal
	for i := 0; i < n; i++ {
		v = e.ALU(NoVal, NoVal)
	}
	return v
}

// FPChain emits n serially dependent floating-point ops.
func (e *Emitter) FPChain(n int, dep Val) Val {
	v := dep
	for i := 0; i < n; i++ {
		v = e.FP(v, NoVal)
	}
	return v
}

// Branch emits an explicit conditional branch whose outcome the workload
// controls (taken), consuming dep. Explicit branches express data-
// dependent control flow such as comparison results during a tree search.
func (e *Emitter) Branch(taken bool, dep Val) {
	fr := e.curFrame()
	pc := e.nextPC()
	target := pc
	if taken {
		h := pc * 0x9e3779b97f4a7c15
		t := int64(pc) + (int64(h>>40)%6+1)*InstBytes
		hi := int64(fr.fn.Entry) + int64(fr.fn.Size-1)*InstBytes
		if t > hi {
			t = hi
		}
		target = uint64(t)
		fr.pc = target + InstBytes
		limit := fr.fn.Entry + fr.fn.Size*InstBytes
		if fr.pc >= limit {
			fr.pc = fr.fn.Entry
		}
	}
	e.push(Inst{PC: pc, Op: OpBranch, Taken: taken, Target: target, DepA: e.dist(dep)})
}

// ChanGen adapts a channel of batches to the Generator interface.
// It is produced by Start and owns the background workload goroutine.
//
// Generation is lockstep: the workload goroutine only executes between
// a Next call that needs a batch and the delivery of that batch. At
// most one workload goroutine of a simulation therefore runs at a
// time, in exactly the order the (single-threaded) simulator pulls
// batches, which makes a run a deterministic function of its seeds
// even when threads share data structures.
type ChanGen struct {
	ch   chan []Inst
	gate chan struct{}
	stop chan struct{}
	cur  []Inst
	pos  int
	done bool
}

// Next implements Generator.
func (g *ChanGen) Next(out []Inst) int {
	total := 0
	for total < len(out) {
		if g.pos == len(g.cur) {
			if g.done {
				break
			}
			// Wake the producer for exactly one batch. The gate holds one
			// buffered token; after the stream ends extra tokens are
			// dropped here rather than blocking.
			select {
			case g.gate <- struct{}{}:
			default:
			}
			batch, ok := <-g.ch
			if !ok {
				g.done = true
				break
			}
			g.cur, g.pos = batch, 0
		}
		n := copy(out[total:], g.cur[g.pos:])
		g.pos += n
		total += n
	}
	return total
}

// Close terminates the workload goroutine, drains the channel, and
// discards any buffered instructions.
func (g *ChanGen) Close() {
	select {
	case <-g.stop:
	default:
		close(g.stop)
	}
	for range g.ch {
	}
	g.cur, g.pos = nil, 0
	g.done = true
}

// Start launches run on its own goroutine with a fresh Emitter and
// returns the generator producing its instruction stream. When run
// returns, the stream ends. When the generator is closed, the goroutine
// is unwound at its next emission.
//
// The goroutine runs in lockstep with the consumer (see ChanGen): it
// computes one batch per request and is parked otherwise, so runs are
// reproducible and concurrent simulations do not interfere.
//
// Because any emitter call can park the goroutine at a batch boundary,
// workload code must NOT hold a Go lock across emitter calls: a parked
// lock holder would deadlock every other thread of the workload that
// contends for the lock (their batches can never be delivered while
// they block on it). Record the data needed under the lock, release
// it, then emit — see the dataserving skiplist paths for the pattern.
// Plain atomics are fine.
func Start(cfg EmitterConfig, run func(*Emitter)) *ChanGen {
	ch := make(chan []Inst)
	gate := make(chan struct{}, 1)
	stop := make(chan struct{})
	g := &ChanGen{ch: ch, gate: gate, stop: stop}
	go func() {
		defer close(ch)
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stopEmit); ok {
					return // generator closed; normal shutdown
				}
				panic(r)
			}
		}()
		e := newEmitter(cfg, ch, gate, stop)
		e.await() // do not run workload code before the first request
		run(e)
		e.flush()
	}()
	return g
}
