package trace

import (
	"testing"
	"testing/quick"

	"cloudsuite/internal/sim/checkpoint"
)

func TestOpString(t *testing.T) {
	for op := OpALU; op < numOps; op++ {
		if op.String() == "op?" {
			t.Errorf("op %d has no mnemonic", op)
		}
	}
	if Op(200).String() != "op?" {
		t.Errorf("unknown op should stringify to op?")
	}
}

func TestIsMem(t *testing.T) {
	if !OpLoad.IsMem() || !OpStore.IsMem() {
		t.Fatal("loads and stores are memory ops")
	}
	if OpALU.IsMem() || OpBranch.IsMem() {
		t.Fatal("ALU/branch are not memory ops")
	}
}

func TestSliceGen(t *testing.T) {
	insts := []Inst{{PC: 1}, {PC: 2}, {PC: 3}}
	g := &SliceGen{Insts: insts}
	out := make([]Inst, 2)
	if n := g.Next(out); n != 2 || out[0].PC != 1 || out[1].PC != 2 {
		t.Fatalf("first batch wrong: n=%d out=%v", n, out[:n])
	}
	if n := g.Next(out); n != 1 || out[0].PC != 3 {
		t.Fatalf("second batch wrong: n=%d", n)
	}
	if n := g.Next(out); n != 0 {
		t.Fatalf("exhausted generator returned %d", n)
	}
	g.Reset()
	if n := g.Next(out); n != 2 {
		t.Fatalf("reset did not rewind: n=%d", n)
	}
}

func TestLoopGenWrapsForever(t *testing.T) {
	g := &LoopGen{Insts: []Inst{{PC: 10}, {PC: 20}}}
	out := make([]Inst, 5)
	if n := g.Next(out); n != 5 {
		t.Fatalf("loop generator should always fill: n=%d", n)
	}
	want := []uint64{10, 20, 10, 20, 10}
	for i, w := range want {
		if out[i].PC != w {
			t.Errorf("out[%d].PC = %d, want %d", i, out[i].PC, w)
		}
	}
}

func TestLoopGenEmpty(t *testing.T) {
	g := &LoopGen{}
	if n := g.Next(make([]Inst, 4)); n != 0 {
		t.Fatalf("empty loop generator returned %d", n)
	}
}

func TestCodeLayoutAllocation(t *testing.T) {
	l := NewCodeLayout(0x400000, 1<<20)
	f1 := l.Func("a", 100)
	f2 := l.Func("b", 10)
	if f1.Entry%64 != 0 || f2.Entry%64 != 0 {
		t.Errorf("functions must be line aligned: %x %x", f1.Entry, f2.Entry)
	}
	if f2.Entry < f1.Entry+f1.Size*InstBytes {
		t.Errorf("functions overlap: f1=[%x,+%d) f2=%x", f1.Entry, f1.Size*InstBytes, f2.Entry)
	}
}

func TestCodeLayoutExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on exhausted layout")
		}
	}()
	l := NewCodeLayout(0, 128)
	l.Func("too-big", 1000)
}

// oneShot wraps a run-once body as a single-step generator.
func oneShot(cfg EmitterConfig, body func(e *Emitter)) *StepGen {
	return NewStepGen(cfg, ProgFunc(func(e *Emitter) bool {
		body(e)
		return false
	}))
}

// collect drains up to n instructions from a one-shot workload body.
func collect(t *testing.T, n int, body func(e *Emitter)) []Inst {
	t.Helper()
	g := oneShot(EmitterConfig{Seed: 1}, body)
	defer g.Close()
	out := make([]Inst, n)
	got := 0
	for got < n {
		k := g.Next(out[got:])
		if k == 0 {
			break
		}
		got += k
	}
	return out[:got]
}

func TestEmitterPCsStayInFunction(t *testing.T) {
	l := NewCodeLayout(0x400000, 1<<20)
	f := l.Func("f", 64)
	insts := collect(t, 500, func(e *Emitter) {
		e.InFunc(f, func() {
			for i := 0; i < 600; i++ {
				e.ALU(NoVal, NoVal)
			}
		})
	})
	if len(insts) < 400 {
		t.Fatalf("too few instructions: %d", len(insts))
	}
	lo, hi := f.Entry, f.Entry+f.Size*InstBytes
	for i, in := range insts {
		if in.PC < lo || in.PC >= hi {
			t.Fatalf("inst %d PC %#x outside function [%#x,%#x)", i, in.PC, lo, hi)
		}
	}
}

func TestEmitterDependenceDistances(t *testing.T) {
	l := NewCodeLayout(0x400000, 1<<20)
	f := l.Func("f", 64)
	// Use a huge block length to suppress auto branches so distances are
	// exactly deterministic.
	g := oneShot(EmitterConfig{Seed: 1, BlockLen: 1 << 20}, func(e *Emitter) {
		e.InFunc(f, func() {
			v := e.Load(0x1000, 8, NoVal, false)
			e.ALU(v, NoVal) // distance 1
			e.ALU(v, NoVal) // distance 2
		})
	})
	defer g.Close()
	out := make([]Inst, 16)
	n := g.Next(out)
	if n < 3 {
		t.Fatalf("expected at least 3 insts, got %d", n)
	}
	if out[0].Op != OpLoad {
		t.Fatalf("first inst should be the load, got %v", out[0].Op)
	}
	if out[1].DepA != 1 {
		t.Errorf("second inst DepA = %d, want 1", out[1].DepA)
	}
	if out[2].DepA != 2 {
		t.Errorf("third inst DepA = %d, want 2", out[2].DepA)
	}
}

func TestEmitterKernelMode(t *testing.T) {
	ul := NewCodeLayout(0x400000, 1<<20)
	kl := NewCodeLayout(0xffff0000, 1<<20)
	uf := ul.Func("user", 64)
	kf := kl.Func("kern", 64)
	insts := collect(t, 200, func(e *Emitter) {
		e.InFunc(uf, func() {
			e.ALUIndep(20)
			e.InKernel(kf, func() {
				e.ALUIndep(50)
			})
			e.ALUIndep(20)
		})
	})
	sawKernel, sawUser := false, false
	for _, in := range insts {
		if in.Kernel {
			sawKernel = true
			if in.PC < 0xffff0000 && in.Op != OpBranch {
				t.Fatalf("kernel inst with user PC %#x", in.PC)
			}
		} else {
			sawUser = true
		}
	}
	if !sawKernel || !sawUser {
		t.Fatalf("expected both modes: kernel=%v user=%v", sawKernel, sawUser)
	}
}

func TestEmitterBranchRate(t *testing.T) {
	l := NewCodeLayout(0x400000, 1<<20)
	f := l.Func("f", 256)
	insts := collect(t, 4000, func(e *Emitter) {
		e.InFunc(f, func() {
			for i := 0; i < 8000; i++ {
				e.ALU(NoVal, NoVal)
			}
		})
	})
	branches := 0
	for _, in := range insts {
		if in.Op == OpBranch {
			branches++
		}
	}
	frac := float64(branches) / float64(len(insts))
	if frac < 0.08 || frac > 0.30 {
		t.Errorf("auto-branch fraction %.3f outside [0.08,0.30]", frac)
	}
}

// endlessProg steps forever, emitting a small burst of ALU work per step.
type endlessProg struct {
	fn *Func
}

func (p *endlessProg) Init(e *Emitter) { e.Call(p.fn) }

func (p *endlessProg) Step(e *Emitter) bool {
	e.ALUIndep(16)
	return true
}

func TestStepGenEndlessProgramAndClose(t *testing.T) {
	l := NewCodeLayout(0x400000, 1<<20)
	f := l.Func("f", 64)
	g := NewStepGen(EmitterConfig{Seed: 1}, &endlessProg{fn: f})
	out := make([]Inst, 100)
	if n := g.Next(out); n != 100 {
		t.Fatalf("expected 100 insts, got %d", n)
	}
	g.Close()
	if n := g.Next(out); n != 0 {
		t.Fatalf("closed generator returned %d insts", n)
	}
}

func TestStepGenDrainsFinalStep(t *testing.T) {
	l := NewCodeLayout(0x400000, 1<<20)
	f := l.Func("f", 64)
	// A program whose only step emits and immediately reports exhaustion:
	// its instructions must still come out.
	g := oneShot(EmitterConfig{Seed: 1, BlockLen: 1 << 20}, func(e *Emitter) {
		e.InFunc(f, func() { e.ALUIndep(5) })
	})
	out := make([]Inst, 64)
	if n := g.Next(out); n < 5 {
		t.Fatalf("final-step instructions lost: got %d", n)
	}
	if n := g.Next(out); n != 0 {
		t.Fatalf("exhausted generator returned %d", n)
	}
}

func TestEmitterBranchTargetsInsideFunction(t *testing.T) {
	l := NewCodeLayout(0x400000, 1<<20)
	f := l.Func("f", 128)
	insts := collect(t, 3000, func(e *Emitter) {
		e.InFunc(f, func() {
			for i := 0; i < 6000; i++ {
				v := e.ALU(NoVal, NoVal)
				if i%7 == 0 {
					e.Branch(i%2 == 0, v)
				}
			}
		})
	})
	lo, hi := f.Entry, f.Entry+f.Size*InstBytes
	for i, in := range insts {
		if in.Op == OpBranch && in.Taken {
			if in.Target < lo || in.Target >= hi {
				t.Fatalf("inst %d: taken branch target %#x outside function", i, in.Target)
			}
		}
	}
}

// statefulProg is an endless program with serializable per-thread state:
// a counter mixed into the emitted addresses, so divergence after a
// restore is visible in the stream.
type statefulProg struct {
	fn *Func
	n  uint64
}

func (p *statefulProg) Init(e *Emitter) { e.Call(p.fn) }

func (p *statefulProg) Step(e *Emitter) bool {
	for i := 0; i < 8; i++ {
		p.n++
		addr := 0x2000_0000 + (p.n%512)*64
		v := e.Load(addr, 8, NoVal, false)
		e.ALUChain(int(e.Rand().Intn(4)), v)
		e.Store(addr+8, 8, v, NoVal)
	}
	return true
}

func (p *statefulProg) SaveState(w *checkpoint.Writer) {
	w.Tag("statefulProg")
	w.U64(p.n)
}

func (p *statefulProg) LoadState(rd *checkpoint.Reader) {
	rd.Expect("statefulProg")
	p.n = rd.U64()
}

// TestStepGenSaveLoadResume is the live-points property at the trace
// layer: draining K instructions, saving, and restoring onto a fresh
// generator must continue the stream bit-identically to the original —
// including mid-step residue (K deliberately not a multiple of the
// per-step emission count).
func TestStepGenSaveLoadResume(t *testing.T) {
	l := NewCodeLayout(0x400000, 1<<20)
	f := l.Func("f", 128)
	cfg := EmitterConfig{Seed: 7, BranchEntropy: 0.1}
	orig := NewStepGen(cfg, &statefulProg{fn: f})
	if !orig.CanSave() {
		t.Fatal("stateful program should be saveable")
	}

	// Drain an odd number of instructions so the emitter holds residue.
	warm := make([]Inst, 777)
	for got := 0; got < len(warm); {
		got += orig.Next(warm[got:])
	}

	w := checkpoint.NewWriter()
	orig.SaveState(w)
	snap := w.Snapshot("trace-test")

	l2 := NewCodeLayout(0x400000, 1<<20)
	f2 := l2.Func("f", 128)
	restored := NewStepGen(cfg, &statefulProg{fn: f2})
	rd := snap.Reader()
	restored.LoadState(rd)
	if err := rd.Err(); err != nil {
		t.Fatalf("load failed: %v", err)
	}

	// Save-load-save byte equality.
	w2 := checkpoint.NewWriter()
	restored.SaveState(w2)
	if snap.Hash() != w2.Snapshot("trace-test").Hash() {
		t.Fatal("save -> load -> save is not byte-identical")
	}

	a, b := make([]Inst, 4096), make([]Inst, 4096)
	for got := 0; got < len(a); {
		got += orig.Next(a[got:])
	}
	for got := 0; got < len(b); {
		got += restored.Next(b[got:])
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("restored stream diverged at inst %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestStepGenCanSaveFalseForPlainProg(t *testing.T) {
	g := oneShot(EmitterConfig{Seed: 1}, func(e *Emitter) {})
	if g.CanSave() {
		t.Fatal("ProgFunc has no state; CanSave must be false")
	}
}

// Property: dependence distances never reference the future and are
// always representable.
func TestQuickDependenceDistanceValid(t *testing.T) {
	l := NewCodeLayout(0x400000, 1<<26)
	f := l.Func("f", 512)
	check := func(seed int64, loads uint8) bool {
		nloads := int(loads%32) + 1
		g := oneShot(EmitterConfig{Seed: seed}, func(e *Emitter) {
			e.InFunc(f, func() {
				var v Val = NoVal
				for i := 0; i < nloads; i++ {
					v = e.Load(uint64(0x1000+i*64), 8, v, true)
					v = e.ALUChain(i%4, v)
				}
			})
		})
		defer g.Close()
		out := make([]Inst, 4096)
		n := g.Next(out)
		for i := 0; i < n; i++ {
			if out[i].DepA < 0 || out[i].DepB < 0 {
				return false
			}
			if int64(out[i].DepA) > int64(i)+1<<24 {
				return false
			}
		}
		return n > 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
