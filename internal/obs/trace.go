package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// This file implements the structured trace emitter. Output is the
// Chrome trace_event JSON object format — {"traceEvents": [...]} with
// complete ("X") duration events and thread-name metadata ("M") — so a
// sweep's trace loads directly in chrome://tracing or Perfetto
// (ui.perfetto.dev, "Open trace file"). Spans are named by benchmark,
// configuration, and engine phase; each concurrently-executing run
// occupies one track (trace "tid"), so a parallel sweep renders as one
// lane per worker slot.
//
// Emission is not on the simulation hot path: spans are per run-phase
// (a handful per measurement), appended under a mutex. The per-batch
// trace-generation timings go to the metrics registry only — tens of
// thousands of sub-millisecond spans would bloat the trace file
// without making it more legible.

// traceEvent is one Chrome trace_event record. Timestamps and
// durations are microseconds (the format's unit) since the tracer
// epoch.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceDoc is the emitted file: the object form of the trace_event
// format (extensible, unlike the bare-array form).
type traceDoc struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// tracePID is the single "process" the simulator reports as.
const tracePID = 1

// Tracer accumulates trace events. All methods are safe for concurrent
// use; a nil Tracer no-ops.
type Tracer struct {
	epoch time.Time

	mu     sync.Mutex
	events []traceEvent
	free   []int // released track ids, reused smallest-first
	next   int   // smallest never-issued track id
}

func newTracer() *Tracer {
	t := &Tracer{
		epoch: time.Now(), //simlint:ok globalrand obs is the audited wall-clock boundary; the epoch anchors trace timestamps only
	}
	t.events = append(t.events, traceEvent{
		Name: "process_name", Ph: "M", PID: tracePID,
		Args: map[string]any{"name": "cloudsuite simulator"},
	})
	return t
}

// acquire reserves the smallest free track id. The first issue of an
// id also emits its thread-name metadata so the viewer labels the
// lane.
func (t *Tracer) acquire() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.free); n > 0 {
		// Smallest-first keeps lane assignment compact and stable.
		sort.Ints(t.free)
		id := t.free[0]
		t.free = t.free[1:]
		return id
	}
	id := t.next
	t.next++
	t.events = append(t.events, traceEvent{
		Name: "thread_name", Ph: "M", PID: tracePID, TID: id,
		Args: map[string]any{"name": "worker"},
	})
	return id
}

// release returns a track id to the pool.
func (t *Tracer) release(id int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.free = append(t.free, id)
	t.mu.Unlock()
}

// span appends one complete duration event on the given track.
// startNS/endNS are nanoseconds since the tracer epoch (the stamps the
// Observer hands out).
func (t *Tracer) span(track int, name, cat string, startNS, endNS int64, args map[string]any) {
	if t == nil {
		return
	}
	ev := traceEvent{
		Name: name, Cat: cat, Ph: "X",
		TS:  float64(startNS) / 1e3,
		Dur: float64(endNS-startNS) / 1e3,
		PID: tracePID, TID: track,
		Args: args,
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Events reports the number of accumulated events (metadata included).
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteJSON writes the accumulated trace in Chrome trace_event object
// format, events sorted by timestamp (viewers do not require the
// order, but sorted files diff and inspect better).
func (t *Tracer) WriteJSON(w io.Writer) error {
	doc := traceDoc{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}
	if t != nil {
		t.mu.Lock()
		doc.TraceEvents = append(doc.TraceEvents, t.events...)
		t.mu.Unlock()
		sort.SliceStable(doc.TraceEvents, func(i, j int) bool {
			// Metadata first, then by start time.
			mi, mj := doc.TraceEvents[i].Ph == "M", doc.TraceEvents[j].Ph == "M"
			if mi != mj {
				return mi
			}
			return doc.TraceEvents[i].TS < doc.TraceEvents[j].TS
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
