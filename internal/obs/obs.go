// Package obs is the simulator's observability layer: a lightweight
// metrics registry (counters, gauges, wall-time histograms), a
// structured trace emitter producing Chrome trace_event JSON, and the
// profiling plumbing behind the CLIs' -pprof/-obs-out flags.
//
// The package exists under one hard contract: observability is a PURE
// OBSERVER. An armed run must produce byte-identical results to an
// unarmed one — obs reads wall-clock time and simulator counters, and
// writes only to its own registry, its own trace buffer, and stderr/
// file outputs that never feed back into a measurement. Nothing in this
// package may influence scheduling, randomness, or any simulated state.
// The armed-vs-unarmed differential tests in internal/core and the CI
// obs job gate that property.
//
// Wall-clock reads are banned everywhere else in the simulator tree
// (the globalrand analyzer enforces it: simulated time lives in cycle
// counters). This package is the single audited exception — every
// time.Now/time.Since call here carries a //simlint:ok suppression, and
// internal/obs is inside the analyzer's scope precisely so that any new
// clock read must be annotated and reviewed. Code in internal/core or
// internal/sim that needs a wall-clock duration (progress reporting,
// phase timing) calls Now/Since here instead of the time package.
//
// All entry points are nil-safe: a nil *Observer (observability
// disarmed, the default) makes every handle a no-op, so instrumented
// call sites need no arming branches and the disarmed hot path costs a
// nil check.
package obs

import "time"

// Time is a wall-clock stamp handed out by Now. Callers outside obs
// treat it as opaque: its only use is Since.
type Time = time.Time

// Now returns the current wall-clock time. This is the simulator
// tree's single sanctioned clock read (see the package comment);
// callers use it exclusively for observer-side durations that never
// feed back into simulation.
func Now() Time {
	return time.Now() //simlint:ok globalrand obs is the audited wall-clock boundary; durations never feed back into simulation
}

// Since returns the wall-clock time elapsed since t.
func Since(t Time) time.Duration {
	return time.Since(t) //simlint:ok globalrand obs is the audited wall-clock boundary; durations never feed back into simulation
}

// Observer bundles one process's observability state: the metrics
// registry and the trace emitter, plus pre-resolved handles for the
// engine's phase histograms (resolved once here so the engine's phase
// transitions are map-lookup-free). A nil Observer disarms everything.
type Observer struct {
	reg    *Registry
	tracer *Tracer
	phases [numPhases]*Histogram
}

// New returns an armed Observer with an empty registry and trace
// buffer. The trace epoch (timestamp zero of the emitted trace) is the
// moment of creation.
func New() *Observer {
	o := &Observer{reg: NewRegistry(), tracer: newTracer()}
	for p := Phase(0); p < numPhases; p++ {
		o.phases[p] = o.reg.Histogram("engine.phase." + p.String())
	}
	return o
}

// Registry returns the observer's metrics registry (nil when the
// observer is nil; Registry handles are themselves nil-safe, so
// `ob.Registry().Counter("x")` is a valid no-op chain when disarmed).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the observer's trace emitter (nil when disarmed).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// stamp returns nanoseconds since the trace epoch — the observer's
// internal monotonic clock, used for both phase attribution and trace
// timestamps so metrics and spans line up exactly.
func (o *Observer) stamp() int64 {
	return int64(time.Since(o.tracer.epoch)) //simlint:ok globalrand obs is the audited wall-clock boundary; durations never feed back into simulation
}
