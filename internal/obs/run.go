package obs

import "time"

// This file implements per-run phase attribution: the engine's answer
// to "where does wall time go inside one measurement".
//
// The mechanism is a single cursor, not nested timers. A RunObs holds
// the current phase and the stamp of the last boundary; Enter(p)
// attributes everything since that boundary to the CURRENT phase,
// records the segment in that phase's histogram, and makes p current.
// Every nanosecond between StartRun and Finish therefore lands in
// exactly one phase — attribution is exclusive and exhaustive by
// construction, which is what lets the CI obs job assert that the
// phase breakdown sums to (at least 95% of) the measured wall time
// instead of trusting hand-placed timer pairs.
//
// The interleaved trace-generation attribution falls out of the same
// mechanism: the engine's batch-pull site brackets the generator call
// with Enter(PhaseTraceGen)/Enter(prev), so generation time is carved
// out of whatever phase it happens inside (functional warming, a timed
// window, or checkpoint replay) and attributed to trace_gen. Metrics
// are therefore exclusive; the coarse trace SPANS (warm, window,
// restore...) are inclusive wall intervals — the two views answer
// different questions and both are emitted.

// Phase names one exclusive wall-time attribution class of a run.
type Phase uint8

const (
	// PhaseSetup is everything not otherwise attributed: workload
	// startup, machine construction, result aggregation.
	PhaseSetup Phase = iota
	// PhaseTraceGen is time inside trace-generator batch pulls
	// (workload goroutine lockstep execution), wherever they occur.
	PhaseTraceGen
	// PhaseFuncWarm is functional warming: cold warm-up plus the
	// between-interval warming of sampled runs.
	PhaseFuncWarm
	// PhaseDetailWarm is the detailed-warming quantum before each
	// sampled window.
	PhaseDetailWarm
	// PhaseTimedWindow is the contiguous timed measurement window.
	PhaseTimedWindow
	// PhaseSampleInterval is a sampled run's timed window.
	PhaseSampleInterval
	// PhaseCkptSave is warm-image capture (serialization plus the
	// store's commit, including the disk write).
	PhaseCkptSave
	// PhaseCkptRestore is warm-image deserialization into the machine.
	PhaseCkptRestore
	// PhaseCkptReplay is the generator fast-forward of a restored run
	// (minus the generation itself, which lands in PhaseTraceGen —
	// the split that shows replay cost IS trace generation).
	PhaseCkptReplay
	numPhases
)

// phaseNames indexes Phase; these are the "engine.phase.<name>" metric
// suffixes and the span names in the emitted trace.
//
//simlint:ok globalrand immutable name lookup table, written only at init
var phaseNames = [numPhases]string{
	"setup", "trace_gen", "func_warm", "detail_warm",
	"timed_window", "sample_interval",
	"ckpt_save", "ckpt_restore", "ckpt_replay",
}

func (p Phase) String() string {
	if p >= numPhases {
		return "invalid"
	}
	return phaseNames[p]
}

// RunObs observes one measurement run: phase attribution into the
// observer's registry plus one trace track for the run's spans. It is
// single-goroutine (the engine runs a simulation on one goroutine);
// a nil RunObs — observability disarmed — no-ops everywhere.
type RunObs struct {
	ob     *Observer
	bench  string
	config string
	source string
	track  int
	start  int64
	last   int64
	cur    Phase
	done   bool
}

// StartRun opens a run observation: acquires a trace track and starts
// the attribution cursor in PhaseSetup. Callers must Finish it.
func (o *Observer) StartRun(bench, config string) *RunObs {
	if o == nil {
		return nil
	}
	now := o.stamp()
	return &RunObs{
		ob: o, bench: bench, config: config,
		track: o.tracer.acquire(),
		start: now, last: now, cur: PhaseSetup,
	}
}

// Enter attributes the wall time since the last boundary to the
// current phase and makes p current, returning the previous phase so
// nested carve-outs (trace generation) can restore it.
func (r *RunObs) Enter(p Phase) Phase {
	if r == nil {
		return PhaseSetup
	}
	now := r.ob.stamp()
	r.ob.phases[r.cur].Observe(now - r.last)
	r.last = now
	prev := r.cur
	r.cur = p
	return prev
}

// SpanStart stamps the opening of a coarse trace span; pass the stamp
// to SpanEnd. (Stamps are nanoseconds on the observer clock; a
// disarmed RunObs returns 0 and SpanEnd ignores it.)
func (r *RunObs) SpanStart() int64 {
	if r == nil {
		return 0
	}
	return r.ob.stamp()
}

// SpanEnd emits one complete span on the run's track, from the
// SpanStart stamp to now. Coarse engine spans are inclusive wall
// intervals (see the file comment).
func (r *RunObs) SpanEnd(name string, start int64) {
	if r == nil {
		return
	}
	r.ob.tracer.span(r.track, name, "engine", start, r.ob.stamp(), nil)
}

// SetSource records where the run's warm state came from ("cold",
// "checkpoint-fork"); it becomes an argument of the run-level span.
func (r *RunObs) SetSource(s string) {
	if r != nil {
		r.source = s
	}
}

// Finish attributes the tail segment, emits the run-level span
// (named by benchmark, with the configuration and warm source as
// arguments), releases the track, and returns the run's total
// observed wall time. Safe to call once; a nil RunObs returns 0.
func (r *RunObs) Finish() time.Duration {
	if r == nil || r.done {
		return 0
	}
	r.done = true
	now := r.ob.stamp()
	r.ob.phases[r.cur].Observe(now - r.last)
	args := map[string]any{"config": r.config}
	if r.source != "" {
		args["source"] = r.source
	}
	r.ob.tracer.span(r.track, r.bench, "run", r.start, now, args)
	r.ob.tracer.release(r.track)
	return time.Duration(now - r.start)
}
