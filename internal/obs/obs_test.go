package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	h := r.Histogram("h")
	for _, v := range []int64{100, 300, 200, -50} {
		h.Observe(v)
	}
	s := r.Snapshot()
	hs := s.Histograms["h"]
	if hs.Count != 4 || hs.SumNS != 600 {
		t.Fatalf("hist count/sum = %d/%d, want 4/600", hs.Count, hs.SumNS)
	}
	if hs.MinNS != 0 || hs.MaxNS != 300 {
		t.Fatalf("hist min/max = %d/%d, want 0/300 (negative clamps to zero)", hs.MinNS, hs.MaxNS)
	}
	if got := hs.Mean(); got != 150 {
		t.Fatalf("hist mean = %g, want 150", got)
	}
	var bucketTotal int64
	for _, b := range hs.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != 4 {
		t.Fatalf("bucket counts sum to %d, want 4", bucketTotal)
	}
}

func TestBucketOf(t *testing.T) {
	for _, tc := range []struct {
		v    int64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10}, {math.MaxInt64, 62}} {
		if got := bucketOf(tc.v); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	c.Add(3)
	h.Observe(10)
	base := r.Snapshot()
	c.Add(2)
	h.Observe(20)
	h.Observe(30)
	d := r.Snapshot().Diff(base)
	if d.Counters["c"] != 2 {
		t.Fatalf("diffed counter = %d, want 2", d.Counters["c"])
	}
	dh := d.Histograms["h"]
	if dh.Count != 2 || dh.SumNS != 50 {
		t.Fatalf("diffed hist count/sum = %d/%d, want 2/50", dh.Count, dh.SumNS)
	}
	var n int64
	for _, b := range dh.Buckets {
		n += b.Count
	}
	if n != 2 {
		t.Fatalf("diffed bucket counts sum to %d, want 2", n)
	}
}

// Snapshot JSON must be deterministic: the -obs-out metrics file is
// diffed in CI.
func TestSnapshotJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"z", "a", "m"} {
		r.Counter(name).Inc()
		r.Histogram("h." + name).Observe(42)
	}
	var a, b bytes.Buffer
	if err := r.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two snapshots of an idle registry marshal differently")
	}
	var s Snapshot
	if err := json.Unmarshal(a.Bytes(), &s); err != nil {
		t.Fatalf("metrics JSON does not round-trip: %v", err)
	}
	if len(s.Counters) != 3 || len(s.Histograms) != 3 {
		t.Fatalf("round-tripped snapshot has %d counters / %d hists, want 3/3", len(s.Counters), len(s.Histograms))
	}
}

// Everything must be nil-safe: disarmed call sites record
// unconditionally.
func TestNilSafety(t *testing.T) {
	var o *Observer
	var r *Registry
	o.Registry().Counter("x").Inc()
	o.Registry().Gauge("x").Set(1)
	o.Registry().Histogram("x").Observe(1)
	r.Counter("x").Add(1)
	_ = r.Snapshot()
	ro := o.StartRun("bench", "cfg")
	if ro != nil {
		t.Fatal("nil observer must hand out a nil RunObs")
	}
	ro.Enter(PhaseFuncWarm)
	ro.SpanEnd("warm", ro.SpanStart())
	ro.SetSource("cold")
	if d := ro.Finish(); d != 0 {
		t.Fatalf("nil RunObs Finish = %v, want 0", d)
	}
	var tr *Tracer
	tr.span(0, "x", "y", 0, 1, nil)
	tr.release(tr.acquire())
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil tracer WriteJSON: %v", err)
	}
}

// Phase attribution is exclusive and exhaustive: the per-phase sums of
// one run partition its total wall time exactly.
func TestRunObsAttributionPartitionsWallTime(t *testing.T) {
	o := New()
	ro := o.StartRun("bench", "cfg")
	ro.Enter(PhaseFuncWarm)
	spin()
	prev := ro.Enter(PhaseTraceGen) // carve-out inside warming
	spin()
	ro.Enter(prev)
	spin()
	ro.Enter(PhaseTimedWindow)
	spin()
	total := ro.Finish()
	var attributed int64
	s := o.Registry().Snapshot()
	for name, h := range s.Histograms {
		if _, ok := cutPrefix(name, "engine.phase."); ok {
			attributed += h.SumNS
		}
	}
	if attributed != total.Nanoseconds() {
		t.Fatalf("phases sum to %dns, run total is %dns — attribution must be exact", attributed, total.Nanoseconds())
	}
	for _, phase := range []string{"func_warm", "trace_gen", "timed_window"} {
		if s.Histograms["engine.phase."+phase].SumNS == 0 {
			t.Errorf("phase %s recorded no time", phase)
		}
	}
	if got := s.Histograms["engine.phase.func_warm"].Count; got != 2 {
		t.Errorf("func_warm segments = %d, want 2 (split around the trace_gen carve-out)", got)
	}
	// Finish is idempotent.
	if d := ro.Finish(); d != 0 {
		t.Fatalf("second Finish = %v, want 0", d)
	}
}

func TestPhaseBreakdown(t *testing.T) {
	o := New()
	ro := o.StartRun("b", "c")
	ro.Enter(PhaseFuncWarm)
	spin()
	ro.Enter(PhaseTimedWindow)
	spin()
	total := ro.Finish()
	gotNS, share := o.Registry().Snapshot().PhaseBreakdown()
	if gotNS != total.Nanoseconds() {
		t.Fatalf("breakdown total %dns != run total %dns", gotNS, total.Nanoseconds())
	}
	var sum float64
	for _, f := range share {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("phase shares sum to %g, want 1", sum)
	}
}

// Concurrent recording through shared handles must be race-free (this
// test is meaningful under -race, which CI always uses).
func TestConcurrentRecording(t *testing.T) {
	o := New()
	c := o.Registry().Counter("c")
	h := o.Registry().Histogram("h")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ro := o.StartRun("bench", "cfg")
			ro.Enter(PhaseFuncWarm)
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i))
			}
			ro.Enter(PhaseTimedWindow)
			ro.Finish()
		}()
	}
	wg.Wait()
	s := o.Registry().Snapshot()
	if s.Counters["c"] != 8000 {
		t.Fatalf("counter = %d, want 8000", s.Counters["c"])
	}
	if s.Histograms["h"].Count != 8000 {
		t.Fatalf("hist count = %d, want 8000", s.Histograms["h"].Count)
	}
}

// spin burns a little CPU so attributed segments are non-zero even on
// coarse clocks.
func spin() {
	x := 0
	for i := 0; i < 20000; i++ {
		x += i * i
	}
	_ = x
}
