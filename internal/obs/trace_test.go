package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

// schemaEvent mirrors the trace_event fields the viewers require; the
// validation here is the same shape the CI obs job asserts with jq.
type schemaEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   *float64       `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  *int           `json:"pid"`
	TID  *int           `json:"tid"`
	Args map[string]any `json:"args"`
}

func TestTraceJSONSchema(t *testing.T) {
	o := New()
	ro := o.StartRun("Web Search", "cores=4")
	ro.Enter(PhaseFuncWarm)
	st := ro.SpanStart()
	time.Sleep(time.Millisecond)
	ro.SpanEnd("warm", st)
	ro.Enter(PhaseTimedWindow)
	ro.SetSource("cold")
	ro.Finish()

	var buf bytes.Buffer
	if err := o.Tracer().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents     []schemaEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var spans, meta int
	var sawRun, sawWarm, sawThreadName bool
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.PID == nil {
			t.Fatalf("event %d missing required fields: %+v", i, ev)
		}
		switch ev.Ph {
		case "X":
			spans++
			if ev.TS == nil || ev.TID == nil {
				t.Fatalf("X event %d missing ts/tid: %+v", i, ev)
			}
			if ev.Dur < 0 {
				t.Fatalf("X event %d has negative duration", i)
			}
			if ev.Name == "Web Search" {
				sawRun = true
				if ev.Args["config"] != "cores=4" || ev.Args["source"] != "cold" {
					t.Fatalf("run span args = %v, want config and source", ev.Args)
				}
			}
			if ev.Name == "warm" {
				sawWarm = true
			}
		case "M":
			meta++
			if ev.Name == "thread_name" {
				sawThreadName = true
			}
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if spans < 2 || !sawRun || !sawWarm {
		t.Fatalf("expected run + warm spans, got %d spans (run=%t warm=%t)", spans, sawRun, sawWarm)
	}
	if meta < 2 || !sawThreadName {
		t.Fatalf("expected process_name + thread_name metadata, got %d", meta)
	}
}

// Concurrent runs get distinct tracks; released tracks are reused so a
// sweep renders one lane per worker slot, not one per run.
func TestTracerTrackPool(t *testing.T) {
	o := New()
	a := o.StartRun("a", "")
	b := o.StartRun("b", "")
	if a.track == b.track {
		t.Fatal("concurrent runs share a track")
	}
	aTrack := a.track
	a.Finish()
	c := o.StartRun("c", "")
	if c.track != aTrack {
		t.Fatalf("released track %d not reused (got %d)", aTrack, c.track)
	}
	b.Finish()
	c.Finish()
}

func TestServe(t *testing.T) {
	o := New()
	o.Registry().Counter("served").Add(9)
	addr, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) []byte {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	var s Snapshot
	if err := json.Unmarshal(get("/metrics"), &s); err != nil {
		t.Fatalf("/metrics is not a Snapshot: %v", err)
	}
	if s.Counters["served"] != 9 {
		t.Fatalf("/metrics counter = %d, want 9", s.Counters["served"])
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["simobs"]; !ok {
		t.Fatal("/debug/vars does not publish simobs")
	}
	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Fatal("/debug/pprof/cmdline returned nothing")
	}
}
