package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
)

// This file implements the CLIs' -pprof endpoint: net/http/pprof's
// profiling handlers plus the metrics registry published through
// expvar, served from a dedicated mux (nothing global leaks into
// DefaultServeMux). The server is an observer-side convenience and has
// no interaction with simulation state.

// publishOnce guards the process-global expvar registration: expvar
// panics on duplicate names, and tests may Serve more than once.
//
//simlint:ok globalrand write-once guard for the process-global expvar namespace; no simulation state
var publishOnce sync.Once

// served is the observer whose registry expvar exposes (the first one
// Serve is called with; a process serves one observer).
//
//simlint:ok globalrand set once under publishOnce before the listener starts; read-only afterwards
var served *Observer

// Serve starts an HTTP listener on addr exposing:
//
//	/debug/pprof/...  net/http/pprof (CPU, heap, goroutine, ...)
//	/debug/vars       expvar, including "simobs" = the registry snapshot
//	/metrics          the registry snapshot as plain JSON
//
// It returns the bound address (useful with ":0") and serves in a
// background goroutine until the process exits.
func Serve(addr string, o *Observer) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	publishOnce.Do(func() {
		served = o
		expvar.Publish("simobs", expvar.Func(func() any {
			return served.Registry().Snapshot()
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := o.Registry().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintf(os.Stderr, "obs: pprof server: %v\n", err)
		}
	}()
	return ln.Addr().String(), nil
}

// WriteFiles dumps the observer's state for -obs-out: the registry
// snapshot to prefix.metrics.json and the trace to prefix.trace.json
// (Chrome trace_event format — loads in chrome://tracing / Perfetto).
func (o *Observer) WriteFiles(prefix string) error {
	if o == nil {
		return nil
	}
	mf, err := os.Create(prefix + ".metrics.json")
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := o.reg.WriteJSON(mf); err != nil {
		mf.Close()
		return fmt.Errorf("obs: writing metrics: %w", err)
	}
	if err := mf.Close(); err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	tf, err := os.Create(prefix + ".trace.json")
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := o.tracer.WriteJSON(tf); err != nil {
		tf.Close()
		return fmt.Errorf("obs: writing trace: %w", err)
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	return nil
}
