package obs

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// This file implements the metrics registry. Design constraints:
//
//   - Zero-allocation hot path. Recording (Counter.Add, Gauge.Set,
//     Histogram.Observe) touches only pre-allocated atomics — no maps,
//     no locks, no interface boxing. Handles are resolved once by name
//     (a locked map lookup) and then held by the instrumented layer.
//   - Nil-safe handles. A nil Counter/Gauge/Histogram no-ops, so call
//     sites record unconditionally and disarmed runs pay one nil check.
//   - Snapshot/diff. A Snapshot is a plain-data copy of every metric;
//     Diff subtracts a baseline so a caller can isolate one sweep's
//     activity out of a long-lived process. Snapshots marshal to
//     deterministic JSON (encoding/json sorts map keys).

// Counter is a monotonically-increasing count.
type Counter struct{ v atomic.Int64 }

// Add increases the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 when nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins instantaneous measurement.
type Gauge struct{ v atomic.Int64 }

// Set records the gauge's current value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by n (e.g. live in-flight counts).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 when nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the histogram resolution: power-of-two buckets over
// the observed value (nanoseconds for wall-time histograms), bucket k
// holding values in [2^k, 2^(k+1)). 63 buckets cover every positive
// int64; bucket 0 also absorbs zero.
const histBuckets = 63

// Histogram records a distribution of non-negative int64 observations
// — by convention wall-time durations in nanoseconds. Count, sum,
// min/max, and log2 buckets are all maintained with atomics.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// newHistogram returns a histogram ready to observe; min starts at
// MaxInt64 so the first observation always publishes it.
func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one value. Negative values (a clock anomaly —
// impossible with the monotonic stamps obs hands out, but guarded
// anyway) are clamped to zero so the histogram stays well-formed.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if cur <= v || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// bucketOf maps a non-negative value to its power-of-two bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v)) - 1
}

// Registry holds named metrics. Handle resolution (Counter, Gauge,
// Histogram) is get-or-create under a lock; the returned handles are
// stable for the registry's lifetime and record lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Bucket is one non-empty histogram bucket: values in
// [Lo, 2*Lo) — Lo is 2^k, except bucket zero where Lo is 0.
type Bucket struct {
	Lo    int64 `json:"lo_ns"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the plain-data copy of one histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	SumNS   int64    `json:"sum_ns"`
	MinNS   int64    `json:"min_ns"`
	MaxNS   int64    `json:"max_ns"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the average observed value (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.SumNS) / float64(h.Count)
}

// Snapshot is a point-in-time copy of a registry's metrics. It
// marshals to deterministic JSON (map keys sort) — the -obs-out
// metrics file and the BENCH_phases.json artifact are Snapshots.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every metric. Individual metrics are read
// atomically; the snapshot as a whole is not a cross-metric atomic cut
// (concurrent recording may land between reads), which is fine for the
// monotonic counters and histograms this registry holds.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	//simlint:ok maporder builds a map; order-insensitive, and JSON emission sorts keys
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	//simlint:ok maporder builds a map; order-insensitive, and JSON emission sorts keys
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	//simlint:ok maporder builds a map; order-insensitive, and JSON emission sorts keys
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count: h.count.Load(),
			SumNS: h.sum.Load(),
		}
		if hs.Count > 0 {
			hs.MinNS = h.min.Load()
			hs.MaxNS = h.max.Load()
		}
		for k := 0; k < histBuckets; k++ {
			if n := h.buckets[k].Load(); n > 0 {
				lo := int64(0)
				if k > 0 {
					lo = int64(1) << k
				}
				hs.Buckets = append(hs.Buckets, Bucket{Lo: lo, Count: n})
			}
		}
		s.Histograms[name] = hs
	}
	return s
}

// Diff returns the activity between base and s: counters and histogram
// counts/sums/buckets subtract, gauges keep s's current value, and
// histogram min/max keep s's values (extrema are not differentiable).
// Metrics absent from base diff against zero.
func (s Snapshot) Diff(base Snapshot) Snapshot {
	d := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	//simlint:ok maporder builds a map; order-insensitive, and JSON emission sorts keys
	for name, v := range s.Counters {
		d.Counters[name] = v - base.Counters[name]
	}
	//simlint:ok maporder builds a map; order-insensitive, and JSON emission sorts keys
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	//simlint:ok maporder builds a map; order-insensitive, and JSON emission sorts keys
	for name, h := range s.Histograms {
		b := base.Histograms[name]
		dh := HistogramSnapshot{
			Count: h.Count - b.Count,
			SumNS: h.SumNS - b.SumNS,
			MinNS: h.MinNS,
			MaxNS: h.MaxNS,
		}
		baseBuckets := map[int64]int64{}
		for _, bk := range b.Buckets {
			baseBuckets[bk.Lo] = bk.Count
		}
		for _, bk := range h.Buckets {
			if n := bk.Count - baseBuckets[bk.Lo]; n > 0 {
				dh.Buckets = append(dh.Buckets, Bucket{Lo: bk.Lo, Count: n})
			}
		}
		d.Histograms[name] = dh
	}
	return d
}

// PhaseBreakdown sums the engine phase histograms of the snapshot and
// returns the total attributed nanoseconds plus the per-phase share of
// that total. It is the legibility product the registry exists for:
// "where does wall time go inside a run".
func (s Snapshot) PhaseBreakdown() (totalNS int64, share map[string]float64) {
	share = map[string]float64{}
	//simlint:ok maporder commutative sum into a map; order-insensitive
	for name, h := range s.Histograms {
		if phaseName, ok := cutPrefix(name, "engine.phase."); ok {
			totalNS += h.SumNS
			share[phaseName] = float64(h.SumNS)
		}
	}
	//simlint:ok maporder in-place normalization of a map; order-insensitive
	for name := range share {
		if totalNS > 0 {
			share[name] /= float64(totalNS)
		} else {
			share[name] = math.NaN()
		}
	}
	return totalNS, share
}

// cutPrefix is strings.CutPrefix without pulling strings into the
// record path's import graph. (Snapshot-side only.)
func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return s, false
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
