// Package addrspace provides the simulated virtual address space that
// workload models allocate their data structures in.
//
// Workload kernels are real Go algorithms, but their data lives at
// simulated addresses: a skiplist node is a Go struct whose simulated
// address was handed out by a Heap. Loads and stores emitted through
// trace.Emitter reference those addresses, so the cache hierarchy sees
// honest layouts — object sizes, field offsets, allocation order and
// fragmentation all carry through to the miss patterns.
package addrspace

import (
	"fmt"
	"sync"

	"cloudsuite/internal/sim/checkpoint"
)

// Standard layout of the simulated address space. User code, user data
// and kernel regions are widely separated so that instruction and data
// streams never alias.
const (
	// UserCodeBase is where user program text is laid out.
	UserCodeBase uint64 = 0x0000_0000_0040_0000
	// UserCodeSize caps the user text segment (256MB, far beyond any
	// workload's footprint; the emitter panics if exceeded).
	UserCodeSize uint64 = 256 << 20

	// HeapBase is where user data allocations start.
	HeapBase uint64 = 0x0000_0000_4000_0000
	// HeapSize caps the simulated user heap (64GB of address space).
	HeapSize uint64 = 64 << 30

	// StackBase is the top of the first thread's stack; stacks grow down
	// and successive threads are offset by StackStride.
	StackBase   uint64 = 0x0000_7fff_f000_0000
	StackStride uint64 = 8 << 20

	// KernelCodeBase is where kernel text is laid out.
	KernelCodeBase uint64 = 0xffff_ffff_8000_0000
	// KernelCodeSize caps kernel text.
	KernelCodeSize uint64 = 64 << 20

	// KernelDataBase is where kernel data structures live.
	KernelDataBase uint64 = 0xffff_8880_0000_0000
	// KernelDataSize caps kernel data.
	KernelDataSize uint64 = 16 << 30

	// PageSize is the simulated page size used by the TLB model.
	PageSize uint64 = 4096

	// CacheLine is the cache line size used throughout the simulator.
	CacheLine uint64 = 64
)

// Heap is a concurrency-safe bump allocator for a region of the
// simulated address space. It never frees: workloads model steady-state
// heaps by allocating once and reusing, which matches how the measured
// applications pre-size their datasets.
type Heap struct {
	mu   sync.Mutex
	base uint64
	next uint64
	end  uint64
	name string
}

// NewHeap returns a heap allocating from [base, base+size).
func NewHeap(name string, base, size uint64) *Heap {
	return &Heap{base: base, next: base, end: base + size, name: name}
}

// NewUserHeap returns a heap over the standard user data region.
func NewUserHeap() *Heap { return NewHeap("user", HeapBase, HeapSize) }

// NewKernelHeap returns a heap over the standard kernel data region.
func NewKernelHeap() *Heap { return NewHeap("kernel", KernelDataBase, KernelDataSize) }

// Alloc returns the simulated address of a new object of the given size,
// aligned to align bytes (align must be a power of two; 0 means 8).
func (h *Heap) Alloc(size uint64, align uint64) uint64 {
	if align == 0 {
		align = 8
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("addrspace: alignment %d is not a power of two", align))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	addr := (h.next + align - 1) &^ (align - 1)
	if addr+size > h.end {
		panic(fmt.Sprintf("addrspace: heap %q exhausted (%d bytes requested)", h.name, size))
	}
	h.next = addr + size
	return addr
}

// AllocLines allocates size bytes aligned to a cache line.
func (h *Heap) AllocLines(size uint64) uint64 { return h.Alloc(size, CacheLine) }

// AllocPage allocates one page-aligned page.
func (h *Heap) AllocPage() uint64 { return h.Alloc(PageSize, PageSize) }

// Used reports the number of bytes allocated (including alignment waste).
func (h *Heap) Used() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.next - h.base
}

// Remaining reports the bytes left in the region.
func (h *Heap) Remaining() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.end - h.next
}

// SaveState serializes the allocation cursor. The region geometry is
// construction-time configuration; only the bump cursor moves at run
// time (workloads that allocate per request, like the dataserving
// memtable, advance it), so it is the only field a warm image carries.
func (h *Heap) SaveState(w *checkpoint.Writer) {
	h.mu.Lock()
	defer h.mu.Unlock()
	w.Tag("heap")
	w.U64(h.base)
	w.U64(h.end)
	w.U64(h.next)
}

// LoadState restores the cursor, validating that the heap geometry
// matches the one the snapshot was taken under.
func (h *Heap) LoadState(rd *checkpoint.Reader) {
	h.mu.Lock()
	defer h.mu.Unlock()
	rd.Expect("heap")
	base, end := rd.U64(), rd.U64()
	next := rd.U64()
	if rd.Err() != nil {
		return
	}
	if base != h.base || end != h.end {
		rd.Failf("heap %q geometry mismatch: snapshot [%#x,%#x), state [%#x,%#x)", h.name, base, end, h.base, h.end)
		return
	}
	if next < h.next {
		// The snapshot predates some of this instance's construction-time
		// allocations: the workload was rebuilt differently.
		rd.Failf("heap %q cursor %#x precedes construction watermark %#x", h.name, next, h.next)
		return
	}
	h.next = next
}

// Array is a convenience view over a contiguous simulated allocation with
// fixed-size elements.
type Array struct {
	Base   uint64
	Elem   uint64
	Len    uint64
	stride uint64
}

// NewArray allocates an array of n elements of elemSize bytes, padding
// each element to its natural alignment within the array.
func NewArray(h *Heap, n, elemSize uint64) Array {
	stride := elemSize
	base := h.AllocLines(n * stride)
	return Array{Base: base, Elem: elemSize, Len: n, stride: stride}
}

// At returns the simulated address of element i.
func (a Array) At(i uint64) uint64 {
	if i >= a.Len {
		panic(fmt.Sprintf("addrspace: array index %d out of range %d", i, a.Len))
	}
	return a.Base + i*a.stride
}

// Bytes reports the total footprint of the array.
func (a Array) Bytes() uint64 { return a.Len * a.stride }

// StackFor returns the initial stack pointer for software thread tid.
func StackFor(tid int) uint64 {
	return StackBase - uint64(tid)*StackStride
}

// LineOf returns the cache-line base address containing addr.
func LineOf(addr uint64) uint64 { return addr &^ (CacheLine - 1) }

// PageOf returns the page base address containing addr.
func PageOf(addr uint64) uint64 { return addr &^ (PageSize - 1) }
