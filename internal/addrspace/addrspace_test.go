package addrspace

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestHeapAlloc(t *testing.T) {
	h := NewHeap("t", 0x1000, 0x1000)
	a := h.Alloc(100, 0)
	b := h.Alloc(100, 0)
	if a < 0x1000 || b < a+100 {
		t.Fatalf("allocations overlap: a=%#x b=%#x", a, b)
	}
	if h.Used() < 200 {
		t.Fatalf("used = %d, want >= 200", h.Used())
	}
}

func TestHeapAlignment(t *testing.T) {
	h := NewHeap("t", 0x1001, 0x10000)
	a := h.Alloc(10, 64)
	if a%64 != 0 {
		t.Fatalf("alloc not aligned: %#x", a)
	}
	p := h.AllocPage()
	if p%PageSize != 0 {
		t.Fatalf("page not aligned: %#x", p)
	}
}

func TestHeapExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h := NewHeap("t", 0, 64)
	h.Alloc(128, 0)
}

func TestHeapBadAlignmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h := NewHeap("t", 0, 1024)
	h.Alloc(8, 3)
}

func TestHeapConcurrentAllocationsDisjoint(t *testing.T) {
	h := NewUserHeap()
	const goroutines, per = 8, 200
	addrs := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				addrs[g] = append(addrs[g], h.Alloc(64, 64))
			}
		}(g)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for _, as := range addrs {
		for _, a := range as {
			if seen[a] {
				t.Fatalf("duplicate allocation %#x", a)
			}
			seen[a] = true
		}
	}
}

func TestArray(t *testing.T) {
	h := NewUserHeap()
	a := NewArray(h, 10, 24)
	if a.At(0)%CacheLine != 0 {
		t.Fatalf("array base not line aligned: %#x", a.At(0))
	}
	if a.At(3)-a.At(2) != 24 {
		t.Fatalf("stride = %d, want 24", a.At(3)-a.At(2))
	}
	if a.Bytes() != 240 {
		t.Fatalf("bytes = %d", a.Bytes())
	}
}

func TestArrayOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h := NewUserHeap()
	a := NewArray(h, 4, 8)
	a.At(4)
}

func TestStacksDisjoint(t *testing.T) {
	if StackFor(0)-StackFor(1) != StackStride {
		t.Fatal("stacks must be StackStride apart")
	}
}

func TestLineAndPageHelpers(t *testing.T) {
	if LineOf(0x1234) != 0x1200 {
		t.Fatalf("LineOf(0x1234) = %#x", LineOf(0x1234))
	}
	if PageOf(0x12345) != 0x12000 {
		t.Fatalf("PageOf(0x12345) = %#x", PageOf(0x12345))
	}
}

// Property: allocations are disjoint and within the heap region.
func TestQuickAllocDisjoint(t *testing.T) {
	check := func(sizes []uint16) bool {
		h := NewHeap("q", 0x10000, 1<<24)
		var prevEnd uint64 = 0x10000
		for _, s := range sizes {
			size := uint64(s%2048) + 1
			a := h.Alloc(size, 8)
			if a < prevEnd || a+size > 0x10000+(1<<24) {
				return false
			}
			prevEnd = a + size
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
