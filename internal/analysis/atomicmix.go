package analysis

import (
	"go/types"
)

// AtomicMix enforces all-or-nothing atomicity per field: a struct field
// accessed through sync/atomic anywhere (atomic.AddInt64(&s.n, 1), ...)
// must be accessed that way everywhere. A plain read racing an atomic
// write is just as much a data race as two plain accesses — the atomic
// call only protects its own side — and the mixed pattern routinely
// survives review because each site looks locally correct.
//
// The access facts come from the same interprocedural walk lockfield
// uses, so the constructor exemption applies: a plain initialization of
// an atomic field through a freshly-allocated local (the object is not
// published yet) is fine. A plain access under a mutex is still flagged
// — mutex-vs-atomic on the same field does not synchronize either side.
//
// The modern typed wrappers (atomic.Int64, atomic.Uint64 fields) are
// immune by construction — the type system already forces every access
// through Load/Store/Add — and are what new code should use; this
// analyzer exists for the &field call-style API where the discipline is
// only conventional.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flags plain accesses to struct fields that are accessed via sync/atomic elsewhere (mixed-discipline data race)",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	if !simPackagePath(pass.Pkg.Path()) {
		return nil
	}
	cg := buildCallGraph(pass)
	facts := collectAccessFacts(pass, cg)

	byField := map[*types.Var][]*fieldAccess{}
	var order []*types.Var
	for _, acc := range facts.accesses {
		if byField[acc.field] == nil {
			order = append(order, acc.field)
		}
		byField[acc.field] = append(byField[acc.field], acc)
	}

	for _, fv := range order {
		accs := byField[fv]
		var firstAtomic *fieldAccess
		for _, acc := range accs {
			if acc.atomic {
				firstAtomic = acc
				break
			}
		}
		if firstAtomic == nil {
			continue
		}
		for _, acc := range accs {
			if acc.atomic || acc.fresh {
				continue
			}
			verb := "read"
			if acc.write {
				verb = "written"
			}
			pass.Reportf(acc.pos,
				"%s is accessed via sync/atomic (%s) but %s plainly here; a plain access races the atomic ones — use atomic ops everywhere or annotate //simlint:ok atomicmix <reason>",
				fv.Name(), pass.Fset.Position(firstAtomic.pos), verb)
		}
	}
	return nil
}
