package statefp

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// loader type-checks the module rooted at root from source. Imports
// inside the module resolve to their source directories; everything
// else (stdlib) goes through the compiler's source importer. This keeps
// statefp independent of build caches and usable against any directory
// that has a go.mod — including the throwaway modules the unit tests
// construct.
type loader struct {
	fset   *token.FileSet
	root   string
	module string
	std    types.Importer
	pkgs   map[string]*pkgInfo
}

// pkgInfo is one loaded package: its types plus the comment-bearing
// syntax needed to read //simlint annotations off struct fields.
type pkgInfo struct {
	path  string
	pkg   *types.Package
	files []*ast.File
}

func newLoader(root string) (*loader, error) {
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &loader{
		fset:   fset,
		root:   root,
		module: module,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   map[string]*pkgInfo{},
	}, nil
}

// modulePath reads the module line out of root's go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("statefp: %w (root must be a module directory)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("statefp: no module line in %s/go.mod", root)
}

// inModule reports whether path names a package of the loaded module.
func (l *loader) inModule(path string) bool {
	return path == l.module || strings.HasPrefix(path, l.module+"/")
}

// Import implements types.Importer over the module's source tree.
func (l *loader) Import(path string) (*types.Package, error) {
	if !l.inModule(path) {
		return l.std.Import(path)
	}
	info, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return info.pkg, nil
}

// load parses and type-checks one module package (cached).
func (l *loader) load(path string) (*pkgInfo, error) {
	if info, ok := l.pkgs[path]; ok {
		return info, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module)))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("statefp: import %q: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("statefp: import %q: no Go files in %s", path, dir)
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("statefp: type-checking %q: %w", path, err)
	}
	info := &pkgInfo{path: path, pkg: pkg, files: files}
	l.pkgs[path] = info
	return info, nil
}

// loadAll walks the module tree and loads every package in it,
// returning them sorted by import path. testdata, vendor, hidden, and
// underscore-prefixed directories are skipped, as are directories
// holding only test files.
func (l *loader) loadAll() ([]*pkgInfo, error) {
	var paths []string
	err := filepath.WalkDir(l.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(l.root, filepath.Dir(p))
		if err != nil {
			return err
		}
		path := l.module
		if rel != "." {
			path = l.module + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []*pkgInfo
	seen := map[string]bool{}
	for _, p := range paths {
		if seen[p] {
			continue
		}
		seen[p] = true
		info, err := l.load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, info)
	}
	return out, nil
}
