// Package statefp computes a static fingerprint of the simulator's
// checkpointed state schema.
//
// Every type that implements the snapshot protocol (SaveState and
// LoadState methods) contributes one fingerprint: a SHA-256 over the
// canonical description of its serialized fields, with in-module named
// struct types expanded transitively so a field added three levels down
// still changes the hash. Fields excluded from serialization —
// `//simlint:replay` (re-derived by replay fast-forward) and
// `//simlint:ok checkpointcov` (construction-time configuration) — are
// excluded from the fingerprint too: they are not part of the on-disk
// format.
//
// The fingerprints are diffed against a committed golden
// (internal/sim/checkpoint/testdata/schema_golden.json). Schema drift
// without a checkpoint.Version bump fails the gate; a Version bump
// without regenerating the golden fails it too. The golden is the
// reviewable artifact: a checkpoint-format change shows up in the PR
// diff as changed field lists, not as a silent byte-level divergence
// discovered by the whole-simulation differential long after the edit.
package statefp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"sort"
	"strings"
)

// versionPackage is the module-relative package whose Version constant
// names the checkpoint format revision.
const versionPackage = "internal/sim/checkpoint"

// Schema is the full state-schema snapshot: the checkpoint format
// version plus one fingerprint per checkpointed type.
type Schema struct {
	Version int64                 `json:"version"`
	Types   map[string]TypeSchema `json:"types"`
}

// TypeSchema describes one checkpointed type.
type TypeSchema struct {
	// Fingerprint is hex SHA-256 over the canonical (transitively
	// expanded) serialized-field description.
	Fingerprint string `json:"fingerprint"`
	// Fields is the human-readable serialized field list, in declaration
	// order, for reviewing golden diffs.
	Fields []string `json:"fields"`
}

// Compute loads the module rooted at root and fingerprints every
// checkpointed type in it.
func Compute(root string) (*Schema, error) {
	l, err := newLoader(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.loadAll()
	if err != nil {
		return nil, err
	}
	s := &Schema{Types: map[string]TypeSchema{}}
	if ver, ok := checkpointVersion(l); ok {
		s.Version = ver
	}
	for _, info := range pkgs {
		scope := info.pkg.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok || !isCheckpointed(tn.Type()) {
				continue
			}
			key := info.path + "." + tn.Name()
			s.Types[key] = fingerprintType(l, info, tn, st)
		}
	}
	return s, nil
}

// checkpointVersion reads the Version constant out of the module's
// checkpoint package, if it has one.
func checkpointVersion(l *loader) (int64, bool) {
	info, err := l.load(l.module + "/" + versionPackage)
	if err != nil {
		return 0, false
	}
	c, ok := info.pkg.Scope().Lookup("Version").(*types.Const)
	if !ok {
		return 0, false
	}
	v, ok := constant.Int64Val(constant.ToInt(c.Val()))
	return v, ok
}

// isCheckpointed reports whether *T implements the snapshot protocol.
func isCheckpointed(t types.Type) bool {
	ms := types.NewMethodSet(types.NewPointer(t))
	var save, load bool
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "SaveState":
			save = true
		case "LoadState":
			load = true
		}
	}
	return save && load
}

// fingerprintType builds the canonical description of tn's serialized
// fields and hashes it.
func fingerprintType(l *loader, info *pkgInfo, tn *types.TypeName, st *types.Struct) TypeSchema {
	excluded := excludedFields(info, tn, st)
	var canon strings.Builder
	fmt.Fprintf(&canon, "type %s.%s\n", info.path, tn.Name())
	var fields []string
	for i := 0; i < st.NumFields(); i++ {
		fv := st.Field(i)
		if excluded[fv] {
			continue
		}
		fields = append(fields, fv.Name()+" "+types.TypeString(fv.Type(), pkgPathQualifier))
		fmt.Fprintf(&canon, "%s %s\n", fv.Name(), l.canonType(fv.Type(), map[*types.Named]bool{}))
	}
	sum := sha256.Sum256([]byte(canon.String()))
	return TypeSchema{Fingerprint: hex.EncodeToString(sum[:]), Fields: fields}
}

func pkgPathQualifier(p *types.Package) string { return p.Path() }

// canonType renders t canonically for hashing: in-module named struct
// types are expanded structurally (so nested field changes propagate
// into every containing fingerprint), cycles fall back to the qualified
// name, everything else uses the fully-qualified type string.
func (l *loader) canonType(t types.Type, seen map[*types.Named]bool) string {
	switch u := t.(type) {
	case *types.Pointer:
		return "*" + l.canonType(u.Elem(), seen)
	case *types.Slice:
		return "[]" + l.canonType(u.Elem(), seen)
	case *types.Array:
		return fmt.Sprintf("[%d]%s", u.Len(), l.canonType(u.Elem(), seen))
	case *types.Map:
		return fmt.Sprintf("map[%s]%s", l.canonType(u.Key(), seen), l.canonType(u.Elem(), seen))
	case *types.Named:
		name := types.TypeString(u, pkgPathQualifier)
		pkg := u.Obj().Pkg()
		if pkg == nil || !l.inModule(pkg.Path()) || seen[u] {
			return name
		}
		st, ok := u.Underlying().(*types.Struct)
		if !ok {
			return name + "=" + l.canonType(u.Underlying(), seen)
		}
		seen[u] = true
		var b strings.Builder
		b.WriteString(name)
		b.WriteString("{")
		for i := 0; i < st.NumFields(); i++ {
			fv := st.Field(i)
			if i > 0 {
				b.WriteString("; ")
			}
			b.WriteString(fv.Name())
			b.WriteString(" ")
			b.WriteString(l.canonType(fv.Type(), seen))
		}
		b.WriteString("}")
		delete(seen, u)
		return b.String()
	case *types.Struct:
		var b strings.Builder
		b.WriteString("struct{")
		for i := 0; i < u.NumFields(); i++ {
			fv := u.Field(i)
			if i > 0 {
				b.WriteString("; ")
			}
			b.WriteString(fv.Name())
			b.WriteString(" ")
			b.WriteString(l.canonType(fv.Type(), seen))
		}
		b.WriteString("}")
		return b.String()
	default:
		return types.TypeString(t, pkgPathQualifier)
	}
}

// excludedFields maps tn's fields that are annotated out of
// serialization: //simlint:replay and //simlint:ok checkpointcov.
func excludedFields(info *pkgInfo, tn *types.TypeName, st *types.Struct) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	for _, f := range info.files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != tn.Name() || ts.Name.Pos() != tn.Pos() {
				return true
			}
			astSt, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range astSt.Fields.List {
				if !fieldExcluded(field) {
					continue
				}
				for i := 0; i < st.NumFields(); i++ {
					fv := st.Field(i)
					if fv.Pos() >= field.Pos() && fv.Pos() <= field.End() {
						out[fv] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// fieldExcluded reports whether the field carries a serialization
// exclusion annotation in its doc or line comment.
func fieldExcluded(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if strings.HasPrefix(text, "simlint:replay") ||
				strings.HasPrefix(text, "simlint:ok checkpointcov") {
				return true
			}
		}
	}
	return false
}

// Diff compares the current schema against the committed golden and
// returns human-readable gate failures, empty when the golden is
// faithful. The rule: any schema change requires both a
// checkpoint.Version bump and a regenerated golden in the same change.
func Diff(golden, cur *Schema) []string {
	var changes []string
	keys := map[string]bool{}
	for k := range golden.Types {
		keys[k] = true
	}
	for k := range cur.Types {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		g, inGolden := golden.Types[k]
		c, inCur := cur.Types[k]
		switch {
		case !inGolden:
			changes = append(changes, fmt.Sprintf("new checkpointed type %s (fields: %s)", k, strings.Join(c.Fields, ", ")))
		case !inCur:
			changes = append(changes, fmt.Sprintf("checkpointed type %s removed", k))
		case g.Fingerprint != c.Fingerprint:
			changes = append(changes, fmt.Sprintf("schema of %s changed: golden fields [%s], current fields [%s]",
				k, strings.Join(g.Fields, ", "), strings.Join(c.Fields, ", ")))
		}
	}
	var problems []string
	switch {
	case len(changes) > 0 && cur.Version == golden.Version:
		problems = append(problems,
			fmt.Sprintf("checkpointed state schema drifted without a checkpoint.Version bump (still %d): bump Version and regenerate the golden (statefp -write)", cur.Version))
		problems = append(problems, changes...)
	case len(changes) > 0:
		problems = append(problems,
			fmt.Sprintf("checkpoint.Version bumped (%d -> %d) but the schema golden was not regenerated: run statefp -write and commit it", golden.Version, cur.Version))
		problems = append(problems, changes...)
	case cur.Version != golden.Version:
		problems = append(problems,
			fmt.Sprintf("checkpoint.Version changed (%d -> %d) with no schema change: regenerate the golden (statefp -write) so it records the live version", golden.Version, cur.Version))
	}
	return problems
}

// Load reads a golden schema file.
func Load(path string) (*Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Schema
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("statefp: parsing golden %s: %w", path, err)
	}
	if s.Types == nil {
		s.Types = map[string]TypeSchema{}
	}
	return &s, nil
}

// Marshal renders a schema as the canonical golden file contents.
func Marshal(s *Schema) ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
