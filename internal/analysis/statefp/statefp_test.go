package statefp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module with one checkpointed type
// and a checkpoint package carrying the given Version. extraField is
// spliced into the struct to simulate schema drift.
func writeModule(t *testing.T, dir string, version int, extraField string) {
	t.Helper()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.24\n",
		"internal/sim/checkpoint/checkpoint.go": "package checkpoint\n\nconst Version = " +
			itoa(version) + "\n",
		"state/state.go": `package state

type Core struct {
	Cycles uint64
	PC     uint64
` + extraField + `
	scratch int //simlint:replay re-derived by replay fast-forward
}

func (c *Core) SaveState() {}
func (c *Core) LoadState() {}
`,
	}
	for name, content := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func compute(t *testing.T, dir string) *Schema {
	t.Helper()
	s, err := Compute(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestComputeFindsCheckpointedTypes(t *testing.T) {
	dir := t.TempDir()
	writeModule(t, dir, 3, "")
	s := compute(t, dir)
	if s.Version != 3 {
		t.Fatalf("version = %d, want 3", s.Version)
	}
	ts, ok := s.Types["tmpmod/state.Core"]
	if !ok {
		t.Fatalf("tmpmod/state.Core not fingerprinted; have %v", s.Types)
	}
	// The replay-annotated field is not part of the on-disk format.
	for _, f := range ts.Fields {
		if strings.Contains(f, "scratch") {
			t.Fatalf("replay-excluded field in schema: %v", ts.Fields)
		}
	}
	if len(ts.Fields) != 2 {
		t.Fatalf("fields = %v, want [Cycles uint64, PC uint64]", ts.Fields)
	}
}

func TestDriftWithoutVersionBumpFails(t *testing.T) {
	dir := t.TempDir()
	writeModule(t, dir, 3, "")
	golden := compute(t, dir)

	// Add a field, keep the version: the gate must fire.
	writeModule(t, dir, 3, "\tRetired uint64")
	cur := compute(t, dir)
	problems := Diff(golden, cur)
	if len(problems) == 0 {
		t.Fatal("schema drift with unchanged Version passed the gate")
	}
	if !strings.Contains(problems[0], "without a checkpoint.Version bump") {
		t.Fatalf("wrong failure: %v", problems)
	}
}

func TestVersionBumpWithoutRegenFails(t *testing.T) {
	dir := t.TempDir()
	writeModule(t, dir, 3, "")
	golden := compute(t, dir)

	// Field added AND version bumped, but golden (computed before) is stale.
	writeModule(t, dir, 4, "\tRetired uint64")
	cur := compute(t, dir)
	problems := Diff(golden, cur)
	if len(problems) == 0 {
		t.Fatal("stale golden after Version bump passed the gate")
	}
	if !strings.Contains(problems[0], "not regenerated") {
		t.Fatalf("wrong failure: %v", problems)
	}
}

func TestBumpAndRegenPasses(t *testing.T) {
	dir := t.TempDir()
	writeModule(t, dir, 4, "\tRetired uint64")
	golden := compute(t, dir)
	cur := compute(t, dir)
	if problems := Diff(golden, cur); len(problems) != 0 {
		t.Fatalf("clean regen reported problems: %v", problems)
	}
}

func TestNestedStructChangePropagates(t *testing.T) {
	dir := t.TempDir()
	writeModule(t, dir, 3, "")
	// Core embeds a nested in-module struct type via a new file; changing
	// the nested type's fields must change Core's fingerprint even though
	// Core's own field list is unchanged.
	nested := filepath.Join(dir, "state", "nested.go")
	write := func(body string) {
		t.Helper()
		if err := os.WriteFile(nested, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("package state\n\ntype ROB struct{ Head int }\n\ntype Wide struct {\n\tR ROB\n}\n\nfunc (w *Wide) SaveState() {}\nfunc (w *Wide) LoadState() {}\n")
	before := compute(t, dir).Types["tmpmod/state.Wide"]
	write("package state\n\ntype ROB struct {\n\tHead int\n\tTail int\n}\n\ntype Wide struct {\n\tR ROB\n}\n\nfunc (w *Wide) SaveState() {}\nfunc (w *Wide) LoadState() {}\n")
	after := compute(t, dir).Types["tmpmod/state.Wide"]
	if before.Fingerprint == after.Fingerprint {
		t.Fatal("nested struct field addition did not change the containing fingerprint")
	}
}

// TestRepoGolden is the in-tree gate: the committed golden must match
// the live schema, so `go test ./...` catches checkpoint-format drift
// even without the vet wiring.
func TestRepoGolden(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found at %s", root)
	}
	cur, err := Compute(root)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := Load(filepath.Join(root, "internal", "sim", "checkpoint", "testdata", "schema_golden.json"))
	if err != nil {
		t.Fatalf("golden missing — run `go run ./cmd/statefp -write`: %v", err)
	}
	for _, p := range Diff(golden, cur) {
		t.Error(p)
	}
}
