package analysis

import (
	"go/ast"
	"go/types"
)

// ClockTaint upgrades the wall-clock half of globalrand from call-site
// matching to taint tracking. globalrand flags the time.Now() call
// itself; this analyzer follows the value — through helper returns,
// struct fields, arithmetic, and conversions (the interprocedural taint
// engine in dataflow.go) — and reports only where it reaches a place
// that makes the simulation nondeterministic:
//
//   - a seed argument of a math/rand generator constructor
//     (rand.NewSource(someField) where someField once held
//     time.Now().UnixNano() — the classic laundering);
//   - a store into a field of a checkpointed type (SaveState/LoadState
//     implementor): wall time frozen into a warm image diverges every
//     restore;
//   - an if/for condition or switch tag: control flow steered by the
//     host's clock is a different execution every run;
//   - a map index: a wall-clock-derived cache or memo key aliases or
//     misses differently per process.
//
// Sources are time.Now/Since/Until plus the sanctioned boundary —
// obs.Now, obs.Since, and obs methods returning time.Time/Duration
// (RunObs.Finish). The boundary functions are *allowed* reads (that is
// the point of internal/obs); what stays forbidden is their value
// steering simulation behavior, which is exactly the sink set above.
// internal/obs itself is out of scope: it is the audited clock edge,
// and every raw read there already carries a //simlint:ok globalrand.
var ClockTaint = &Analyzer{
	Name: "clocktaint",
	Doc:  "taint-tracks wall-clock reads into rand seeds, checkpointed state, control flow, and map keys",
	Run:  runClockTaint,
}

func runClockTaint(pass *Pass) error {
	if !simStatePath(pass.Pkg.Path()) {
		return nil
	}
	cg := buildCallGraph(pass)
	eng := newTaintEngine(pass, cg, func(call *ast.CallExpr) *taintSource {
		return clockSource(pass, call)
	})
	ckptFields := checkpointedFields(pass)

	for _, node := range cg.order {
		if node.decl.Body == nil {
			continue
		}
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				// Seeding a generator from the clock.
				if fn := externalCallee(pass, v); fn != nil && fn.Pkg() != nil {
					switch fn.Pkg().Path() {
					case "math/rand", "math/rand/v2":
						for _, arg := range v.Args {
							if src := eng.ExprTaint(arg); src != nil {
								pass.Reportf(arg.Pos(),
									"%s.%s is seeded with a wall-clock-derived value (from %s at %s); seeds must come from the run configuration (determinism contract)",
									fn.Pkg().Name(), fn.Name(), src.desc, pass.Fset.Position(src.pos))
							}
						}
					}
				}
			case *ast.AssignStmt:
				// Wall time frozen into checkpointed state.
				if len(v.Lhs) == len(v.Rhs) {
					for i, lhs := range v.Lhs {
						if fv := storedField(pass, lhs); fv != nil && ckptFields[fv] {
							if src := eng.ExprTaint(v.Rhs[i]); src != nil {
								pass.Reportf(v.Rhs[i].Pos(),
									"wall-clock-derived value (from %s at %s) is stored into checkpointed field %s; a restored image would replay the save-time clock",
									src.desc, pass.Fset.Position(src.pos), fv.Name())
							}
						}
					}
				}
			case *ast.IfStmt:
				reportClockCond(pass, eng, v.Cond)
			case *ast.ForStmt:
				reportClockCond(pass, eng, v.Cond)
			case *ast.SwitchStmt:
				reportClockCond(pass, eng, v.Tag)
			case *ast.IndexExpr:
				// Map keys: a clock-derived memo/cache key aliases per run.
				if t := pass.TypesInfo.TypeOf(v.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						if src := eng.ExprTaint(v.Index); src != nil {
							pass.Reportf(v.Index.Pos(),
								"map key derives from the wall clock (from %s at %s); clock-derived memo keys alias differently every process (determinism contract)",
								src.desc, pass.Fset.Position(src.pos))
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

func reportClockCond(pass *Pass, eng *taintEngine, cond ast.Expr) {
	if cond == nil {
		return
	}
	if src := eng.ExprTaint(cond); src != nil {
		pass.Reportf(cond.Pos(),
			"control flow depends on a wall-clock-derived value (from %s at %s); the host's clock must not steer the simulation (determinism contract)",
			src.desc, pass.Fset.Position(src.pos))
	}
}

// clockSource classifies a call as a wall-clock read: the time package's
// Now/Since/Until, the obs boundary's Now/Since, or an obs method
// returning time.Time/time.Duration.
func clockSource(pass *Pass, call *ast.CallExpr) *taintSource {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if sig.Recv() == nil {
		switch {
		case fn.Pkg().Path() == "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				return &taintSource{pos: sel.Pos(), desc: "time." + fn.Name()}
			}
		case obsPackagePath(fn.Pkg().Path()):
			switch fn.Name() {
			case "Now", "Since":
				return &taintSource{pos: sel.Pos(), desc: "obs." + fn.Name()}
			}
		}
		return nil
	}
	if obsPackagePath(fn.Pkg().Path()) && signatureReturnsTime(sig) {
		return &taintSource{pos: sel.Pos(), desc: "obs method " + fn.Name()}
	}
	return nil
}

// signatureReturnsTime reports whether any result is time.Time or
// time.Duration.
func signatureReturnsTime(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		named, ok := res.At(i).Type().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "time" &&
			(obj.Name() == "Time" || obj.Name() == "Duration") {
			return true
		}
	}
	return false
}

// storedField resolves an assignment target to the struct field it
// stores into (directly or through index/star), nil otherwise.
func storedField(pass *Pass, lhs ast.Expr) *types.Var {
	switch v := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if fv, ok := pass.TypesInfo.ObjectOf(v.Sel).(*types.Var); ok && fv.IsField() {
			return fv
		}
	case *ast.IndexExpr:
		return storedField(pass, v.X)
	case *ast.StarExpr:
		return storedField(pass, v.X)
	}
	return nil
}

// checkpointedFields collects the struct fields of every in-package type
// implementing the snapshot protocol (a SaveState or LoadState method).
func checkpointedFields(pass *Pass) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		if !hasSnapshotMethod(named) {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			out[st.Field(i)] = true
		}
	}
	return out
}

func hasSnapshotMethod(named *types.Named) bool {
	for i := 0; i < named.NumMethods(); i++ {
		switch named.Method(i).Name() {
		case "SaveState", "LoadState":
			return true
		}
	}
	return false
}
