package analysis

import (
	"go/ast"
	"go/types"
)

// GlobalRand flags ambient nondeterminism and package-global mutable
// state in non-test simulator code:
//
//   - calls through math/rand's (or math/rand/v2's) top-level
//     process-global generator (rand.Intn, rand.Float64, rand.Seed,
//     ...). Randomness must flow from a seeded per-run *rand.Rand so a
//     seed maps to exactly one trace; the global generator is both
//     unseeded-by-default and shared across goroutines, so the parallel
//     Runner would interleave draws. Constructors (rand.New,
//     rand.NewSource, rand.NewZipf) are allowed — they are how the
//     seeded per-run generators get built.
//   - time.Now, time.Since, time.Until: wall-clock reads cannot appear
//     in measured paths; simulated time lives in the engine's cycle
//     counters.
//   - new package-level `var` declarations: mutable state must live in
//     the System/engine object so concurrent simulations cannot share
//     it. The historical instance: DebugSharing was a package-level map
//     in internal/sim/cache, raced on by every System under the
//     parallel Runner until PR 5 moved it into the System struct.
//     Genuinely immutable package-level values (a format magic, a
//     lookup table written once) carry //simlint:ok globalrand <reason>.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "flags process-global randomness, wall-clock reads, and package-level mutable state in simulator packages",
	Run:  runGlobalRand,
}

// globalRandAllowed are the math/rand functions that construct seeded
// generators rather than touching the process-global one.
var globalRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2 seeded source
	"NewChaCha8": true,
}

func runGlobalRand(pass *Pass) error {
	if !determinismScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		// Package-level vars.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok.String() != "var" {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					pass.Reportf(name.Pos(),
						"package-level var %s is shared by every concurrent simulation (the DebugSharing data race); move it into the owning struct or annotate //simlint:ok globalrand <reason>",
						name.Name)
				}
			}
		}
		// Uses of forbidden functions.
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are fine
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if !globalRandAllowed[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"%s.%s uses the process-global generator; draw from a seeded per-run *rand.Rand instead (determinism contract)",
						fn.Pkg().Name(), fn.Name())
				}
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock; simulated time lives in cycle counters (determinism contract)",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
