// Package analysis is the project's static-analysis suite (simlint):
// four analyzers that enforce, at vet time, the contracts every result
// in this repository rests on — bit-determinism of measurements
// (serial == parallel), checkpoint field coverage (restore == cold),
// and memo-key completeness (no cache aliasing between distinct
// configurations).
//
// The analyzers run from cmd/simlint, both standalone
// (go run ./cmd/simlint ./...) and as a `go vet -vettool` backend, so
// CI enforces the contracts on every change. Each analyzer documents
// the historical bug class that motivated it; the suite exists because
// all three contract breaks to date (the StreamI randomized
// map-iteration eviction, the DebugSharing package-global data race,
// the negative-budget uint64-wrap hang) were mechanically detectable
// and found late.
//
// The framework below is a deliberately small, dependency-free subset
// of golang.org/x/tools/go/analysis: an Analyzer runs over one
// type-checked package and reports position-tagged diagnostics. It
// exists so the suite builds with the standard library only (the
// module vendors nothing); the shapes mirror x/tools so a future
// migration is mechanical.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one simlint check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, command-line flags,
	// and //simlint:ok annotations.
	Name string
	// Doc is the analyzer's help text; the first line is a summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a single type-checked package
// and a sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's syntax trees, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds type information for Files.
	TypesInfo *types.Info
	// Report receives diagnostics; the driver applies //simlint:ok
	// suppression downstream, so analyzers report unconditionally.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the driver
}

// A Package is the driver-side unit of work: one parsed and
// type-checked package, however it was loaded (from a vet.cfg in
// -vettool mode, or from source in tests).
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Run applies the analyzers to pkg and returns the surviving
// diagnostics in file/line order. Suppression is applied centrally:
// a diagnostic is dropped when a well-formed
// `//simlint:ok <analyzer> <reason>` annotation covers its line (see
// annotations.go), so individual analyzers never re-implement the
// annotation grammar. Malformed annotations (missing the mandatory
// reason) are themselves reported, attributed to the annotation line.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	anns := collectAnnotations(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d Diagnostic) {
			d.Analyzer = a.Name
			if anns.suppresses(pkg.Fset, d.Pos, a.Name) {
				return
			}
			out = append(out, d)
		}
		if err := a.Run(pass); err != nil {
			out = append(out, Diagnostic{
				Pos:      token.NoPos,
				Message:  fmt.Sprintf("internal error: %v", err),
				Analyzer: a.Name,
			})
		}
	}
	out = append(out, anns.malformed...)
	out = append(out, anns.staleSuppressions(analyzers)...)
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(out[i].Pos), pkg.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return out
}

// simPackagePath reports whether path belongs to the simulator proper —
// the packages whose behavior feeds measured results and therefore
// falls under the determinism contract. Matching is by path fragment so
// the same rule covers the real module ("cloudsuite/internal/sim/...")
// and test fixtures ("internal/sim/streami").
func simPackagePath(path string) bool {
	for _, frag := range []string{
		"internal/sim",
		"internal/trace",
		"internal/workloads",
		"internal/core",
		"internal/oskern",
		// internal/obs is the audited wall-clock boundary: it is inside
		// the analyzer's scope precisely so every clock read there must
		// carry a reviewed //simlint:ok suppression.
		"internal/obs",
	} {
		if path == frag || strings.Contains(path, frag+"/") ||
			strings.HasSuffix(path, "/"+frag) || strings.Contains(path, "/"+frag+"/") {
			return true
		}
	}
	return false
}

// cmdPackagePath reports whether path is a command package (a cmd/
// directory anywhere in the path). The CLIs are outside the measured
// path but still feed bytes into published results, so the determinism
// analyzers cover them too; their legitimate wall-clock and randomness
// uses (progress display, listen addresses) carry audited suppressions.
func cmdPackagePath(path string) bool {
	return path == "cmd" || strings.HasPrefix(path, "cmd/") ||
		strings.Contains(path, "/cmd/") || strings.HasSuffix(path, "/cmd")
}

// determinismScope is the scope of the determinism analyzers (maporder,
// globalrand): the simulator proper plus the command packages.
func determinismScope(path string) bool {
	return simPackagePath(path) || cmdPackagePath(path)
}

// isTestFile reports whether the file at pos is a _test.go file; the
// determinism analyzers cover non-test code only (tests may freely use
// wall clocks, global randomness, and unordered iteration).
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// receiverType resolves a method receiver expression to its named type,
// unwrapping a pointer; nil when the expression is not a plain (possibly
// pointed-to) named receiver.
func receiverType(info *types.Info, recv *ast.Field) *types.Named {
	if recv == nil {
		return nil
	}
	t := info.TypeOf(recv.Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
