package analysis

import (
	"go/types"
)

// LockField infers each struct's mutex→fields guarding discipline from
// the code's own majority behavior, then flags the minority accesses
// that break it — the DebugSharing/RunnerStats race class, where a
// field consistently guarded by a mutex picks up one new access site
// that forgets the lock.
//
// Inference, per struct declared in a simulator package: a field F is
// considered guarded by mutex field M of the same struct when at least
// two accesses of F hold M and strictly more accesses hold M than not.
// Every access of F made without M is then a diagnostic. Accesses
// counted come from the interprocedural lockset walk in accessfacts.go,
// so helpers called with the lock held (the paired-transition shape:
// statsMu.Lock(); noteRun(); statsMu.Unlock()) count as guarded, an
// early-return unlock does not poison the fall-through path, and a
// deferred Unlock holds to function end. Two exemptions keep honest
// code quiet: accesses through a freshly-allocated local (constructors
// initializing an unpublished object) and function literals' bodies
// are analyzed with an empty lockset, so a goroutine body never
// inherits its spawner's locks.
//
// The historical instance: RunnerStats transitions were paired under
// statsMu everywhere except one late-added cache-hit path, and the
// Requests == Runs + CacheHits invariant only failed under -race with
// the right interleaving. This analyzer rejects the unpaired site at
// vet time.
var LockField = &Analyzer{
	Name: "lockfield",
	Doc:  "flags struct field accesses that skip the mutex guarding every other access of the field",
	Run:  runLockField,
}

func runLockField(pass *Pass) error {
	if !simPackagePath(pass.Pkg.Path()) {
		return nil
	}
	cg := buildCallGraph(pass)
	facts := collectAccessFacts(pass, cg)

	// Bucket accesses per field, in the deterministic order the walker
	// recorded them.
	byField := map[*types.Var][]*fieldAccess{}
	for _, acc := range facts.accesses {
		byField[acc.field] = append(byField[acc.field], acc)
	}

	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		// The struct's own mutex fields are the guard candidates.
		var mutexes []*types.Var
		for i := 0; i < st.NumFields(); i++ {
			if fv := st.Field(i); facts.mutexFields[fv] == tn {
				mutexes = append(mutexes, fv)
			}
		}
		if len(mutexes) == 0 {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			fv := st.Field(i)
			if facts.mutexFields[fv] == tn {
				continue
			}
			accs := byField[fv]
			guard, lockedN := inferGuard(accs, mutexes)
			if guard == nil {
				continue
			}
			for _, acc := range accs {
				if acc.fresh || acc.locks[guard] {
					continue
				}
				verb := "read"
				if acc.write {
					verb = "written"
				}
				pass.Reportf(acc.pos,
					"%s.%s is %s without %s.%s, which guards it at %d of %d accesses; hold the mutex or annotate //simlint:ok lockfield <reason>",
					tn.Name(), fv.Name(), verb, tn.Name(), guard.Name(), lockedN, len(accs))
			}
		}
	}
	return nil
}

// inferGuard picks the mutex that guards a field's accesses: the
// candidate held at the most (fresh-exempt) accesses, provided it is
// held at two or more and at strictly more accesses than it is missing
// from. Returns nil when no candidate qualifies — a field never (or
// only sporadically) accessed under a lock has no inferred discipline.
func inferGuard(accs []*fieldAccess, mutexes []*types.Var) (*types.Var, int) {
	var best *types.Var
	bestN := 0
	for _, mu := range mutexes {
		n := 0
		total := 0
		for _, acc := range accs {
			if acc.fresh {
				continue
			}
			total++
			if acc.locks[mu] {
				n++
			}
		}
		if n >= 2 && n > total-n && n > bestN {
			best, bestN = mu, n
		}
	}
	if best == nil {
		return nil, 0
	}
	return best, bestN
}
