package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `for range` over a map in non-test simulator code.
//
// Map iteration order is randomized per run, so any map range whose
// body's effect depends on visit order breaks the bit-determinism
// contract (serial == parallel == re-run byte-identical). The
// historical instance: StreamI's bounded-history prefetcher evicted
// "one arbitrary entry" by ranging a map and breaking after the first
// key — a different victim every process, a different miss stream every
// run, caught only by the PR-5 checkpoint differential.
//
// Two idioms are recognized as order-independent and allowed:
//
//   - collect-then-sort: a range whose body is exactly
//     `keys = append(keys, k)` — ordering happens downstream, so the
//     visit order cannot leak into results;
//   - full clear: a range whose body is exactly `delete(m, k)` on the
//     ranged map — every key goes, order irrelevant. (Evicting ONE
//     entry this way — delete plus break — is the StreamI bug and is
//     flagged.)
//
// Anything else needs `//simlint:ok maporder <reason>`.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags map iteration in simulator packages: visit order is randomized and breaks bit-determinism unless the body is provably order-independent",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	if !determinismScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if blankRange(rng) || sortedKeysIdiom(pass, rng) || clearIdiom(pass, rng) {
				return true
			}
			pass.Reportf(rng.Pos(),
				"map iteration order is randomized and breaks bit-determinism; collect keys and sort, or annotate //simlint:ok maporder <reason>")
			return true
		})
	}
	return nil
}

// blankRange reports a range that never binds the key or value
// (`for range m` / `for _ = range m`): the body cannot observe the
// iteration element, so N identical executions are order-independent.
func blankRange(rng *ast.RangeStmt) bool {
	blank := func(e ast.Expr) bool {
		if e == nil {
			return true
		}
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "_"
	}
	return blank(rng.Key) && blank(rng.Value)
}

// sortedKeysIdiom recognizes the collect-then-sort prologue: the loop
// body is exactly one statement appending the range key to a slice
// (`keys = append(keys, k)`). The append order still follows map order,
// but the slice is sorted (or otherwise ordered) before any
// order-sensitive use, which is the reviewer-checkable property; what
// the analyzer pins down is that the body has no other effect.
func sortedKeysIdiom(pass *Pass, rng *ast.RangeStmt) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || rng.Value != nil || len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || !isBuiltin(pass, fn) {
		return false
	}
	// append's first arg must be the assignment target, the second the
	// range key — anything fancier falls back to the annotation.
	lhs, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	if !ok || pass.TypesInfo.ObjectOf(arg0) != pass.TypesInfo.ObjectOf(lhs) {
		return false
	}
	arg1, ok := call.Args[1].(*ast.Ident)
	return ok && pass.TypesInfo.ObjectOf(arg1) == pass.TypesInfo.ObjectOf(key)
}

// clearIdiom recognizes the full-clear loop: the body is exactly
// `delete(m, k)` on the ranged map with the range key. With no break
// every entry is removed, so visit order cannot matter. (The spec
// guarantees entries not yet reached may be skipped only when deleted —
// here they all are.)
func clearIdiom(pass *Pass, rng *ast.RangeStmt) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || rng.Value != nil || len(rng.Body.List) != 1 {
		return false
	}
	expr, ok := rng.Body.List[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := expr.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "delete" || !isBuiltin(pass, fn) {
		return false
	}
	arg1, ok := call.Args[1].(*ast.Ident)
	if !ok || pass.TypesInfo.ObjectOf(arg1) != pass.TypesInfo.ObjectOf(key) {
		return false
	}
	// The deleted map must be the ranged map: a plain identifier or a
	// one-level selection (s.hist) resolving to the same objects; deeper
	// structure falls back to the annotation.
	return sameSimpleExpr(pass, rng.X, call.Args[0])
}

// sameSimpleExpr reports whether a and b are the same identifier or the
// same one-level field selection on the same base object.
func sameSimpleExpr(pass *Pass, a, b ast.Expr) bool {
	switch av := a.(type) {
	case *ast.Ident:
		bv, ok := b.(*ast.Ident)
		return ok && pass.TypesInfo.ObjectOf(av) == pass.TypesInfo.ObjectOf(bv) &&
			pass.TypesInfo.ObjectOf(av) != nil
	case *ast.SelectorExpr:
		bv, ok := b.(*ast.SelectorExpr)
		return ok &&
			pass.TypesInfo.ObjectOf(av.Sel) == pass.TypesInfo.ObjectOf(bv.Sel) &&
			pass.TypesInfo.ObjectOf(av.Sel) != nil &&
			sameSimpleExpr(pass, av.X, bv.X)
	}
	return false
}

func isBuiltin(pass *Pass, id *ast.Ident) bool {
	_, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return ok
}
