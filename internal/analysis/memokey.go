package analysis

import (
	"go/ast"
	"go/types"
)

// MemoKey verifies memo-key completeness: every field of the
// measurement-options struct must flow into the canonical memo-key
// construction, or carry an explicit exemption.
//
// The Runner memoizes Measurements keyed on canonicalize(Options) — two
// requests with equal canonical forms share one cache slot and one
// simulation. A field that changes measured results but is missing from
// canonicalize makes two DIFFERENT configurations alias the same slot:
// the second silently gets the first one's numbers. That is the worst
// failure mode this repository has — wrong data that looks right — and
// nothing downstream can detect it.
//
// The analyzer fires in any package that declares both a struct type
// named Options and a function named canonicalize; in this module that
// is internal/core. A field is covered when it is selected inside
// canonicalize or inside any same-package function reachable from it
// through static calls. Fields that genuinely cannot affect results
// (pure observers like InvariantChecks, wall-clock-only plumbing like
// Checkpoints) carry `//simlint:ok memokey <reason>` — the annotation
// is the audited claim that result-equality is preserved.
var MemoKey = &Analyzer{
	Name: "memokey",
	Doc:  "verifies every Options field reaches the canonical memo-key construction (canonicalize) or is explicitly memo-excluded",
	Run:  runMemoKey,
}

func runMemoKey(pass *Pass) error {
	var optionsTN *types.TypeName
	funcs := map[string]*ast.FuncDecl{} // package-level functions by name
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil {
					funcs[d.Name.Name] = d
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || ts.Name.Name != "Options" {
						continue
					}
					if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
						if _, isStruct := tn.Type().Underlying().(*types.Struct); isStruct {
							optionsTN = tn
						}
					}
				}
			}
		}
	}
	canon := funcs["canonicalize"]
	if optionsTN == nil || canon == nil {
		return nil
	}
	st := optionsTN.Type().Underlying().(*types.Struct)

	// Fields selected in canonicalize or any package-level function it
	// (transitively) calls.
	covered := map[*types.Var]bool{}
	seen := map[*ast.FuncDecl]bool{}
	work := []*ast.FuncDecl{canon}
	for len(work) > 0 {
		fd := work[len(work)-1]
		work = work[:len(work)-1]
		if fd == nil || seen[fd] || fd.Body == nil {
			continue
		}
		seen[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if s := pass.TypesInfo.Selections[e]; s != nil {
					if fv, ok := s.Obj().(*types.Var); ok && fv.IsField() {
						covered[fv] = true
					}
				}
			case *ast.CallExpr:
				if id, ok := e.Fun.(*ast.Ident); ok {
					if next := funcs[id.Name]; next != nil {
						work = append(work, next)
					}
				}
			}
			return true
		})
	}

	fieldDecl := structFieldDecls(pass, optionsTN, st)
	for i := 0; i < st.NumFields(); i++ {
		fv := st.Field(i)
		if covered[fv] {
			continue
		}
		pos := optionsTN.Pos()
		if af := fieldDecl[fv]; af != nil {
			pos = af.Pos()
		}
		pass.Reportf(pos,
			"Options.%s does not reach canonicalize: two configurations differing only in it would alias one memo slot; key it or annotate //simlint:ok memokey <reason>",
			fv.Name())
	}
	return nil
}
