package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

func loadSrc(t *testing.T, path, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
}

// A reason-less //simlint:ok is not a suppression — it is a diagnostic
// of its own, and the underlying finding still fires.
func TestMalformedAnnotationReported(t *testing.T) {
	pkg := loadSrc(t, "internal/sim/x", `package x

//simlint:ok globalrand
var leaked = map[int]int{}
`)
	diags := Run(pkg, []*Analyzer{GlobalRand})
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics (malformed annotation + finding), got %d: %v", len(diags), diags)
	}
	var haveAnn, haveVar bool
	for _, d := range diags {
		if d.Analyzer == "annotation" && strings.Contains(d.Message, "needs an analyzer name and a reason") {
			haveAnn = true
		}
		if d.Analyzer == "globalrand" && strings.Contains(d.Message, "leaked") {
			haveVar = true
		}
	}
	if !haveAnn || !haveVar {
		t.Fatalf("missing expected diagnostics: %v", diags)
	}
}

// A well-formed annotation suppresses only its own analyzer, on its own
// line or the line below.
func TestSuppressionScope(t *testing.T) {
	pkg := loadSrc(t, "internal/sim/x", `package x

//simlint:ok globalrand immutable lookup table, written by nobody
var table = [2]int{1, 2}

var unexcused = map[int]int{}
`)
	diags := Run(pkg, []*Analyzer{GlobalRand})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unexcused") {
		t.Fatalf("want exactly the unexcused finding, got %v", diags)
	}
	// The same annotation must not silence a different analyzer.
	if got := Run(pkg, []*Analyzer{MapOrder}); len(got) != 0 {
		t.Fatalf("maporder should have nothing to say here, got %v", got)
	}
}

// A reason-less //simlint:replay is reported even when no analyzer in
// the run consumes replay markers.
func TestMalformedReplayReported(t *testing.T) {
	pkg := loadSrc(t, "p", `package p

type T struct {
	//simlint:replay
	mask uint64
}
`)
	diags := Run(pkg, []*Analyzer{CheckpointCov})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "simlint:replay annotation needs a reason") {
		t.Fatalf("want the malformed-replay diagnostic, got %v", diags)
	}
}
