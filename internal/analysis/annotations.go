package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Annotation grammar
//
// Two comment forms opt code out of a check, both requiring a stated
// reason so every exemption is an auditable decision rather than a
// silent hole:
//
//	//simlint:ok <analyzer> <reason>
//	    Suppresses diagnostics of <analyzer> on the annotation's own
//	    line and on the line directly below it (so the annotation can
//	    sit either at the end of the offending line or on its own line
//	    above it, doc-comment style).
//
//	//simlint:replay <reason>
//	    Field-level marker consumed by the checkpointcov analyzer: the
//	    field's post-warm-up value is re-derived by deterministic replay
//	    (the skipThread fast-forward) rather than serialized.
//
// An annotation with a missing reason is itself a diagnostic: an
// unexplained exemption is exactly the kind of drift the suite exists
// to prevent.

const (
	okPrefix     = "//simlint:ok"
	replayPrefix = "//simlint:replay"
)

type okAnn struct {
	analyzer string
	line     int
	file     string
	pos      token.Pos
	// used is set when the annotation suppresses at least one diagnostic
	// of a run; an unused annotation is stale and itself reported (see
	// staleSuppressions), so suppressions cannot outlive the code they
	// excuse.
	used bool
}

type annotations struct {
	ok        []okAnn
	malformed []Diagnostic
}

// collectAnnotations scans every comment of every file for simlint
// annotations, recording well-formed //simlint:ok markers and
// reporting malformed ones (either form, missing its reason).
func collectAnnotations(fset *token.FileSet, files []*ast.File) *annotations {
	anns := &annotations{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				switch {
				case strings.HasPrefix(text, okPrefix):
					rest := strings.TrimPrefix(text, okPrefix)
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						anns.malformed = append(anns.malformed, Diagnostic{
							Pos:      c.Pos(),
							Message:  "simlint:ok annotation needs an analyzer name and a reason: //simlint:ok <analyzer> <reason>",
							Analyzer: "annotation",
						})
						continue
					}
					pos := fset.Position(c.Pos())
					anns.ok = append(anns.ok, okAnn{
						analyzer: fields[0],
						line:     pos.Line,
						file:     pos.Filename,
						pos:      c.Pos(),
					})
				case strings.HasPrefix(text, replayPrefix):
					if len(strings.Fields(strings.TrimPrefix(text, replayPrefix))) == 0 {
						anns.malformed = append(anns.malformed, Diagnostic{
							Pos:      c.Pos(),
							Message:  "simlint:replay annotation needs a reason: //simlint:replay <reason>",
							Analyzer: "annotation",
						})
					}
				}
			}
		}
	}
	return anns
}

// suppresses reports whether a well-formed //simlint:ok annotation for
// the named analyzer covers the diagnostic position, marking the
// annotation used.
func (a *annotations) suppresses(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	if !pos.IsValid() {
		return false
	}
	p := fset.Position(pos)
	hit := false
	for i := range a.ok {
		ann := &a.ok[i]
		if ann.file != p.Filename || ann.analyzer != analyzer {
			continue
		}
		if ann.line == p.Line || ann.line == p.Line-1 {
			ann.used = true
			hit = true
		}
	}
	return hit
}

// staleSuppressions reports the //simlint:ok annotations that excused
// nothing: ones naming an analyzer the suite does not have (typo, or an
// analyzer since removed), and — for analyzers that actually ran —
// annotations that suppressed no diagnostic. Both are drift: a stale
// suppression is a standing claim that unsafe code exists where none
// does, and it silently re-arms if the unsafe code comes back in a
// different spot. The nolintlint discipline, applied to simlint:ok.
func (a *annotations) staleSuppressions(ran []*Analyzer) []Diagnostic {
	inRun := map[string]bool{}
	for _, an := range ran {
		inRun[an.Name] = true
	}
	var out []Diagnostic
	for _, ann := range a.ok {
		switch {
		case ByName(ann.analyzer) == nil:
			out = append(out, Diagnostic{
				Pos:      ann.pos,
				Message:  fmt.Sprintf("simlint:ok names unknown analyzer %q; it suppresses nothing", ann.analyzer),
				Analyzer: "annotation",
			})
		case inRun[ann.analyzer] && !ann.used:
			out = append(out, Diagnostic{
				Pos:      ann.pos,
				Message:  fmt.Sprintf("stale suppression: no %s diagnostic is reported here anymore; delete the //simlint:ok", ann.analyzer),
				Analyzer: "annotation",
			})
		}
	}
	return out
}

// replayAnnotated reports whether the comment group carries a
// well-formed //simlint:replay marker (checkpointcov's re-derived-by-
// replay exemption).
func replayAnnotated(groups ...*ast.CommentGroup) bool {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if strings.HasPrefix(text, replayPrefix) &&
				len(strings.Fields(strings.TrimPrefix(text, replayPrefix))) > 0 {
				return true
			}
		}
	}
	return false
}
