package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotation grammar
//
// Two comment forms opt code out of a check, both requiring a stated
// reason so every exemption is an auditable decision rather than a
// silent hole:
//
//	//simlint:ok <analyzer> <reason>
//	    Suppresses diagnostics of <analyzer> on the annotation's own
//	    line and on the line directly below it (so the annotation can
//	    sit either at the end of the offending line or on its own line
//	    above it, doc-comment style).
//
//	//simlint:replay <reason>
//	    Field-level marker consumed by the checkpointcov analyzer: the
//	    field's post-warm-up value is re-derived by deterministic replay
//	    (the skipThread fast-forward) rather than serialized.
//
// An annotation with a missing reason is itself a diagnostic: an
// unexplained exemption is exactly the kind of drift the suite exists
// to prevent.

const (
	okPrefix     = "//simlint:ok"
	replayPrefix = "//simlint:replay"
)

type okAnn struct {
	analyzer string
	line     int
	file     string
}

type annotations struct {
	ok        []okAnn
	malformed []Diagnostic
}

// collectAnnotations scans every comment of every file for simlint
// annotations, recording well-formed //simlint:ok markers and
// reporting malformed ones (either form, missing its reason).
func collectAnnotations(fset *token.FileSet, files []*ast.File) *annotations {
	anns := &annotations{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				switch {
				case strings.HasPrefix(text, okPrefix):
					rest := strings.TrimPrefix(text, okPrefix)
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						anns.malformed = append(anns.malformed, Diagnostic{
							Pos:      c.Pos(),
							Message:  "simlint:ok annotation needs an analyzer name and a reason: //simlint:ok <analyzer> <reason>",
							Analyzer: "annotation",
						})
						continue
					}
					pos := fset.Position(c.Pos())
					anns.ok = append(anns.ok, okAnn{
						analyzer: fields[0],
						line:     pos.Line,
						file:     pos.Filename,
					})
				case strings.HasPrefix(text, replayPrefix):
					if len(strings.Fields(strings.TrimPrefix(text, replayPrefix))) == 0 {
						anns.malformed = append(anns.malformed, Diagnostic{
							Pos:      c.Pos(),
							Message:  "simlint:replay annotation needs a reason: //simlint:replay <reason>",
							Analyzer: "annotation",
						})
					}
				}
			}
		}
	}
	return anns
}

// suppresses reports whether a well-formed //simlint:ok annotation for
// the named analyzer covers the diagnostic position.
func (a *annotations) suppresses(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	if !pos.IsValid() {
		return false
	}
	p := fset.Position(pos)
	for _, ann := range a.ok {
		if ann.file != p.Filename || ann.analyzer != analyzer {
			continue
		}
		if ann.line == p.Line || ann.line == p.Line-1 {
			return true
		}
	}
	return false
}

// replayAnnotated reports whether the comment group carries a
// well-formed //simlint:replay marker (checkpointcov's re-derived-by-
// replay exemption).
func replayAnnotated(groups ...*ast.CommentGroup) bool {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if strings.HasPrefix(text, replayPrefix) &&
				len(strings.Fields(strings.TrimPrefix(text, replayPrefix))) > 0 {
				return true
			}
		}
	}
	return false
}
