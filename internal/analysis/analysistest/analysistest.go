// Package analysistest runs simlint analyzers over fixture packages and
// checks their diagnostics against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// only.
//
// Fixtures live under testdata/src/<import/path>/*.go; the import path
// is the directory's path relative to testdata/src, so fixtures can
// place themselves inside the path roots an analyzer guards (e.g.
// testdata/src/internal/sim/streami). A line expecting diagnostics
// carries one `// want` comment with one or more quoted or backquoted
// regular expressions, each of which must match a distinct diagnostic
// reported on that line:
//
//	for k := range m { // want `map iteration order`
//
// Every unmatched expectation and every unexpected diagnostic is a test
// failure, so a fixture demonstrably fails without its analyzer.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"cloudsuite/internal/analysis"
)

// Run loads each fixture package under testdata/src and applies the
// analyzer, comparing diagnostics to // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, path := range pkgPaths {
		t.Run(path, func(t *testing.T) {
			t.Helper()
			pkg, err := LoadPackage(filepath.Join(testdata, "src", path), path)
			if err != nil {
				t.Fatalf("loading fixture %s: %v", path, err)
			}
			diags := analysis.Run(pkg, []*analysis.Analyzer{a})
			check(t, pkg.Fset, pkg.Files, diags)
		})
	}
}

// LoadPackage parses and type-checks the fixture package in dir under
// the given import path. Imports resolve first against sibling fixture
// packages under the same testdata/src root (so fixtures can model
// cross-package contracts like the obs boundary), then against the
// standard library (type-checked from GOROOT source), which keeps the
// harness dependency-free.
func LoadPackage(dir, path string) (*analysis.Package, error) {
	root := strings.TrimSuffix(filepath.ToSlash(dir), "/"+path)
	fset := token.NewFileSet()
	im := &fixtureImporter{
		fset: fset,
		root: filepath.FromSlash(root),
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*types.Package{},
	}
	files, info, tpkg, err := im.load(dir, path)
	if err != nil {
		return nil, err
	}
	return &analysis.Package{Fset: fset, Files: files, Pkg: tpkg, Info: info}, nil
}

// fixtureImporter resolves import paths to fixture directories under
// testdata/src, falling back to the source importer for everything else
// (the standard library).
type fixtureImporter struct {
	fset *token.FileSet
	root string
	std  types.Importer
	pkgs map[string]*types.Package
}

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	if p := im.pkgs[path]; p != nil {
		return p, nil
	}
	dir := filepath.Join(im.root, filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		_, _, tpkg, err := im.load(dir, path)
		if err != nil {
			return nil, err
		}
		return tpkg, nil
	}
	return im.std.Import(path)
}

// load parses and type-checks one fixture directory, caching the result
// for diamond imports.
func (im *fixtureImporter) load(dir, path string) ([]*ast.File, *types.Info, *types.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: im}
	tpkg, err := conf.Check(path, im.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	im.pkgs[path] = tpkg
	return files, info, tpkg, nil
}

// expectation is one // want regexp at a file:line.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[string][]*expectation{} // "file:line" -> expectations
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, raw := range splitPatterns(m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, raw, err)
					}
					wants[key] = append(wants[key], &expectation{re: re, raw: raw})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", key, d.Message, d.Analyzer)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.raw)
			}
		}
	}
}

// splitPatterns parses the payload of a want comment: a sequence of
// double-quoted or backquoted regexps.
func splitPatterns(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				out = append(out, s[1:])
				return out
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			// Walk to the closing quote honoring escapes, then Unquote.
			i := 1
			for i < len(s) && (s[i] != '"' || s[i-1] == '\\') {
				i++
			}
			if i >= len(s) {
				out = append(out, s[1:])
				return out
			}
			unq, err := strconv.Unquote(s[:i+1])
			if err != nil {
				unq = s[1:i]
			}
			out = append(out, unq)
			s = strings.TrimSpace(s[i+1:])
		default:
			// Bare token (no spaces).
			sp := strings.IndexByte(s, ' ')
			if sp < 0 {
				out = append(out, s)
				return out
			}
			out = append(out, s[:sp])
			s = strings.TrimSpace(s[sp:])
		}
	}
	return out
}
