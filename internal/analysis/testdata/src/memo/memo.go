// Package memo is the memokey fixture: an Options struct and its
// canonicalize memo-key construction with one field that silently
// misses the key — the cache-aliasing bug where two configurations
// differing only in that field would share a memo slot and the second
// would get the first one's results.
package memo

// Machine stands in for the resolved machine description.
type Machine struct{ Name string }

// Options mirrors core.Options in miniature.
type Options struct {
	Cores int
	Seed  int64
	// Machine reaches the key through the resolveMachine helper.
	Machine *Machine
	// Debug changes measured behavior but was never keyed — the bug.
	Debug bool // want `Options.Debug does not reach canonicalize`
	// Observer is a pure observer: it can veto a run but never change
	// its counters, so exclusion is deliberate and audited.
	Observer int //simlint:ok memokey pure observer, cannot change measured results
}

type canonicalOptions struct {
	cores   int
	seed    int64
	machine Machine
}

func canonicalize(o Options) canonicalOptions {
	c := canonicalOptions{cores: o.Cores, seed: o.Seed}
	c.machine = resolveMachine(o)
	return c
}

// resolveMachine covers the Machine field one call level down.
func resolveMachine(o Options) Machine {
	if o.Machine != nil {
		return *o.Machine
	}
	return Machine{Name: "default"}
}
