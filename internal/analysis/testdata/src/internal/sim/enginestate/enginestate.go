// Package enginestate is a fixture stub of simulator state: the kind of
// package internal/obs must never write into or call.
package enginestate

type System struct {
	Cycles int64
}

func Tick(s *System) {
	s.Cycles++
}
