// Package clockrepro seeds clock-laundering bugs for the clocktaint
// analyzer: wall-clock reads washed through helper returns and struct
// fields before reaching a rand seed, a memo key, control flow, and
// checkpointed state. globalrand's call-site match sees only the
// time.Now itself; catching these requires following the value.
package clockrepro

import (
	"math/rand"
	"time"
)

// stampNS launders the clock through a helper return: callers never
// mention the time package.
func stampNS() int64 {
	return time.Now().UnixNano() //simlint:ok globalrand fixture source: clocktaint must catch the flows, not the read
}

type Sampler struct {
	seed  int64
	rng   *rand.Rand
	cache map[int64]int
}

func New() *Sampler {
	s := &Sampler{cache: map[int64]int{}}
	// Two-step laundering: clock -> field -> seed.
	s.seed = stampNS()
	src := rand.NewSource(s.seed) // want `rand\.NewSource is seeded with a wall-clock-derived value`
	s.rng = rand.New(src)         // want `rand\.New is seeded with a wall-clock-derived value`
	return s
}

func (s *Sampler) Pick() int {
	if stampNS()%2 == 0 { // want `control flow depends on a wall-clock-derived value`
		return 0
	}
	return s.cache[s.seed] // want `map key derives from the wall clock`
}

// Warm is checkpointed state: freezing wall time into it makes every
// restore replay the save-time clock.
type Warm struct {
	Cycles int64
	Stamp  int64
}

func (w *Warm) SaveState() {}
func (w *Warm) LoadState() {}

func (w *Warm) Mark() {
	w.Stamp = stampNS() // want `stored into checkpointed field Stamp`
}

// Deterministic uses stay silent: seeds from configuration, keys from
// inputs.
func Configured(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
