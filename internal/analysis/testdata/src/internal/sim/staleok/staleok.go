// Package staleok exercises stale-suppression detection: a
// //simlint:ok that excuses nothing is itself a diagnostic, so
// suppressions cannot outlive the code they were written for.
package staleok

// Evict's suppression is live — the bounded eviction below is a real
// maporder finding — so it must NOT be reported as stale.
func Evict(m map[string]bool) {
	for k := range m { //simlint:ok maporder single-victim eviction audited as order-insensitive (fixture)
		delete(m, k)
		break
	}
}

// Clear's loop is the recognized full-clear idiom, so maporder reports
// nothing here and the suppression is dead weight.
func Clear(m map[string]bool) {
	for k := range m { //simlint:ok maporder full clear // want `stale suppression: no maporder diagnostic`
		delete(m, k)
	}
}

// A typo'd analyzer name suppresses nothing, whatever it was meant for.
func Keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m { //simlint:ok maprder sorted downstream // want `unknown analyzer "maprder"`
		out = append(out, k)
	}
	return out
}
