// Package streami is the maporder fixture: a seeded reproduction of
// the historical StreamI bug. The temporal-stream prefetcher's bounded
// history evicted "one arbitrary entry" by ranging a map and breaking
// after the first key — a different victim every process, so the miss
// stream (and therefore every downstream counter) differed run to run.
// PR 5's checkpoint differential caught it; this analyzer catches it at
// vet time.
package streami

import "sort"

// StreamTable mimics the prefetcher's bounded history.
type StreamTable struct {
	hist map[uint64]int
	max  int
}

// evictOne is the StreamI bug pattern: delete-one-arbitrary via map
// iteration. Which entry dies depends on the randomized visit order.
func (s *StreamTable) evictOne() {
	for k := range s.hist { // want `map iteration order is randomized`
		delete(s.hist, k)
		break
	}
}

// liveKeys leaks visit order into a result slice through a filter.
func (s *StreamTable) liveKeys() []uint64 {
	var out []uint64
	for k, v := range s.hist { // want `map iteration order is randomized`
		if v > 0 {
			out = append(out, k)
		}
	}
	return out
}

// sortedKeys is the allowed collect-then-sort idiom: the range body
// only appends keys; ordering happens in sort.Slice below.
func (s *StreamTable) sortedKeys() []uint64 {
	keys := make([]uint64, 0, len(s.hist))
	for k := range s.hist {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// clear is the allowed full-clear idiom: every key is deleted, so the
// visit order cannot matter.
func (s *StreamTable) clear() {
	for k := range s.hist {
		delete(s.hist, k)
	}
}

// size uses a keyless range: the body cannot observe the element.
func (s *StreamTable) size() int {
	n := 0
	for range s.hist {
		n++
	}
	return n
}

// total is order-dependent by the analyzer's conservative rule but
// carries the audited exemption (integer addition commutes).
func (s *StreamTable) total() int {
	n := 0
	//simlint:ok maporder integer sum commutes, visit order cannot leak
	for _, v := range s.hist {
		n += v
	}
	return n
}
