// Package obsuser exercises the simulator side of the pure-observer
// contract: engine code may use the nil-safe obs handles freely but
// must never construct, serve, or flush an observer — the armed-side
// API belongs to cmd/ alone.
package obsuser

import "internal/obs"

type Engine struct {
	ob *obs.Observer
}

func (e *Engine) Run() {
	// The nil-safe boundary: fine whether or not an observer is armed.
	t := obs.Now()
	_ = obs.Since(t)
	e.ob.Counter("runs").Add(1)

	e.ob = obs.New()               // want `obs\.New is armed-side API`
	_, _ = obs.Serve("addr", e.ob) // want `obs\.Serve is armed-side API`
	_ = e.ob.WriteFiles("out")     // want `WriteFiles is armed-side API`
}
