// Package atomix seeds the mixed atomic/plain access bug class for the
// atomicmix analyzer: a field reached through sync/atomic in one place
// and plainly in another races, even though each site looks locally
// correct.
package atomix

import "sync/atomic"

type Counters struct {
	hits  int64
	total int64
}

func New() *Counters {
	c := &Counters{}
	// Fresh local: plain initialization before publication is fine.
	c.hits = 0
	return c
}

func (c *Counters) Hit()        { atomic.AddInt64(&c.hits, 1) }
func (c *Counters) Load() int64 { return atomic.LoadInt64(&c.hits) }

// Reset is the seeded bug: a plain store to an atomically-accessed
// field, racing every concurrent Hit.
func (c *Counters) Reset() {
	c.hits = 0 // want `hits is accessed via sync/atomic .* but written plainly here`
}

// Sum's plain read races too — atomicity is all-or-nothing per field.
func (c *Counters) Sum() int64 {
	return c.hits + c.total // want `hits is accessed via sync/atomic .* but read plainly here`
}

// Total is plain-only: no atomic access anywhere, so no discipline to
// mix with.
func (c *Counters) Total() int64 {
	c.total++
	return c.total
}
