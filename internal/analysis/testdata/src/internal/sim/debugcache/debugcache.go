// Package debugcache is the globalrand fixture: a seeded reproduction
// of the historical DebugSharing bug plus the ambient-nondeterminism
// patterns the analyzer rejects. DebugSharing was a package-level map
// in internal/sim/cache; every System mutated it, which was a data race
// the moment the parallel Runner ran two simulations at once — found by
// -race long after the code landed, moved into the System struct in
// PR 5.
package debugcache

import (
	"math/rand"
	"time"
)

// The DebugSharing pattern: package-global mutable state shared by
// every concurrent simulation.
var debugSharing = map[uint64][]int{} // want `package-level var debugSharing is shared by every concurrent simulation`

// A genuinely immutable package-level value carries the audited
// exemption.
var magic = [4]byte{'S', 'I', 'M', '1'} //simlint:ok globalrand write-once format constant, never mutated

// Track is the racy global-state access the analyzer exists to stop.
func Track(line uint64, core int) {
	debugSharing[line] = append(debugSharing[line], core)
}

// pickVictim draws from the process-global generator: unseeded by
// default and shared across goroutines, so the parallel Runner
// interleaves draws nondeterministically.
func pickVictim(n int) int {
	return rand.Intn(n) // want `uses the process-global generator`
}

// stamp reads the wall clock.
func stamp() int64 {
	return time.Now().UnixNano() // want `reads the wall clock`
}

// elapsed reads the wall clock through the Since shorthand.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `reads the wall clock`
}

// seededVictim is the approved pattern: a constructor builds a seeded
// per-run generator and draws are methods on it.
func seededVictim(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}
