// Package obs is a fixture stub of the observability layer: the
// nil-safe handle API (Now, Since, Counter methods) plus the armed-side
// API (New, Serve, WriteFiles) that only cmd/ may touch.
package obs

import "time"

type Time int64

func Now() Time {
	return Time(time.Now().UnixNano()) //simlint:ok globalrand audited wall-clock boundary (fixture)
}

func Since(t Time) time.Duration {
	return time.Duration(int64(Now()) - int64(t))
}

type Counter struct{ n int64 }

func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.n += d
}

type Observer struct {
	counters map[string]*Counter
}

func New() *Observer {
	return &Observer{counters: map[string]*Counter{}}
}

func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	c := o.counters[name]
	if c == nil {
		c = &Counter{}
		o.counters[name] = c
	}
	return c
}

func (o *Observer) WriteFiles(prefix string) error {
	return nil
}

func Serve(addr string, o *Observer) (string, error) {
	return addr, nil
}
