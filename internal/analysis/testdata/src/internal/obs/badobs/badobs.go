// Package badobs seeds the synthetic obs→engine write for the obspure
// analyzer: observer code that imports simulator state, mutates it, and
// calls back into it — the feedback channel the pure-observer contract
// forbids.
package badobs

import "internal/sim/enginestate" // want `internal/obs is a pure observer and must not import simulator package`

type Hook struct {
	sys *enginestate.System
}

// Publish is the exported observer API; the violations below live in an
// innocently-named helper, so the diagnostic must name Publish as the
// reachable entry point.
func (h *Hook) Publish() {
	h.flush()
}

func (h *Hook) flush() {
	h.sys.Cycles = 0        // want `observer code writes simulator state enginestate\.Cycles \(reachable from Publish\)`
	enginestate.Tick(h.sys) // want `observer code calls simulator function enginestate\.Tick \(reachable from Publish\)`
}
