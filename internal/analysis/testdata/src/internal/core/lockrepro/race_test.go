package lockrepro

import (
	"sync"
	"testing"
)

// TestSeededRaceUnderHammer drives the seeded unpaired-transition bug
// hard enough for the race detector: RecordHit mutates the stats block
// without statsMu while Snapshot reads it under the lock. Under -race
// this test MUST fail — CI inverts the exit status
// (`! go test -race ...`), proving the access lockfield flags
// statically is a real dynamic race, not analyzer pedantry. Without
// -race it passes, so the fixture stays green in plain test runs.
func TestSeededRaceUnderHammer(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.RecordHit()
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
}
