// Package lockrepro seeds the historical RunnerStats unpaired-transition
// race for the lockfield analyzer: stats transitions are paired under
// statsMu everywhere except one late-added path, which only -race with
// the right interleaving used to catch.
package lockrepro

import "sync"

// Stats mirrors RunnerStats: counters bound by the
// Requests == Runs + CacheHits invariant, so every transition must be
// atomic under one mutex.
type Stats struct {
	Requests  int64
	Runs      int64
	CacheHits int64
}

type Runner struct {
	statsMu sync.Mutex
	stats   Stats

	mu    sync.Mutex
	cache map[string]int

	limit int
}

func New() *Runner {
	r := &Runner{cache: map[string]int{}}
	// Fresh local: the object is unpublished, so no lock is needed.
	r.stats.Requests = 0
	r.limit = 4
	return r
}

// noteRun is only ever called with statsMu held; the interprocedural
// entry-lockset inference must see these accesses as guarded.
func (r *Runner) noteRun() {
	r.stats.Requests++
	r.stats.Runs++
}

func (r *Runner) Measure(key string) int {
	r.statsMu.Lock()
	r.noteRun()
	r.statsMu.Unlock()

	r.mu.Lock()
	v, ok := r.cache[key]
	if ok {
		// Early-return path: mu released, statsMu reacquired. The
		// fall-through below must still count as mu-guarded.
		r.mu.Unlock()
		r.statsMu.Lock()
		r.stats.CacheHits++
		r.statsMu.Unlock()
		return v
	}
	r.cache[key] = r.limit
	r.mu.Unlock()
	return r.limit
}

func (r *Runner) Hits() int64 {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.stats.CacheHits
}

func (r *Runner) Done() {
	r.statsMu.Lock()
	r.stats.Runs++
	r.statsMu.Unlock()
}

func (r *Runner) Snapshot() Stats {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.stats
}

// RecordHit is the seeded bug: the CacheHits transition added without
// its pairing, breaking Requests == Runs + CacheHits under concurrency.
// Every r.stats.* access must go through the stats field, so the
// unpaired transition is caught as an unguarded stats access.
func (r *Runner) RecordHit() {
	r.stats.CacheHits++ // want `Runner\.stats is read without Runner\.statsMu`
}

// Async spawns a goroutine: the closure body runs concurrently, so it
// must not inherit the spawner's lockset.
func (r *Runner) Async() {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	go func() {
		r.stats.Runs++ // want `Runner\.stats is read without Runner\.statsMu`
	}()
}
