// Package ckpt is the checkpointcov fixture: types implementing the
// SaveState/LoadState snapshot protocol with one forgotten field (the
// "field added, checkpoint forgot" drift the analyzer exists to catch),
// one replay-derived field, one construction-time exemption, and
// coverage that flows through a helper method.
package ckpt

// Writer and Reader are local stand-ins for checkpoint.Writer/Reader;
// the analyzer keys on the SaveState/LoadState method names, not the
// parameter types.
type Writer struct{ buf []byte }

func (w *Writer) U64(v uint64) {}
func (w *Writer) Struct(v any) {}

type Reader struct{ off int }

func (r *Reader) U64() uint64  { return 0 }
func (r *Reader) Struct(v any) {}

// Table has every coverage class the analyzer distinguishes.
type Table struct {
	hist uint64
	// mask is rebuilt from the configured size at construction; replay
	// fast-forward re-derives it, so it is deliberately not serialized.
	mask uint64 //simlint:replay re-derived from configuration at construction
	// pos was added after SaveState was written — the drift bug.
	pos     int // want `field Table.pos is not covered by SaveState/LoadState`
	entries []uint64
}

func (t *Table) SaveState(w *Writer) {
	w.U64(t.hist)
	t.saveEntries(w)
}

// saveEntries covers the entries field one call level down from
// SaveState.
func (t *Table) saveEntries(w *Writer) {
	for _, e := range t.entries {
		w.U64(e)
	}
}

func (t *Table) LoadState(r *Reader) {
	t.hist = r.U64()
}

// Meta shows the //simlint:ok exemption for configuration fixed at
// construction and checked for mismatch rather than restored.
type Meta struct {
	cfg int //simlint:ok checkpointcov construction-time configuration, geometry-checked not restored
	v   uint64
}

func (m *Meta) SaveState(w *Writer) { w.U64(m.v) }
func (m *Meta) LoadState(r *Reader) { m.v = r.U64() }

// Block hands the whole receiver to the writer's reflective encoder
// (the counters.Counters pattern): every field is covered at once.
type Block struct {
	a uint64
	b uint64
}

func (b *Block) SaveState(w *Writer) { w.Struct(b) }
func (b *Block) LoadState(r *Reader) { r.Struct(b) }

// Plain has the method names but is not a struct-backed saver pair —
// Writer/Reader themselves have no SaveState, so none of their fields
// are checked.
type Plain int

func (p Plain) SaveState(w *Writer) {}
func (p Plain) LoadState(r *Reader) {}

// Sparse serializes through shared same-package free functions (the
// writeSparse pattern). The analyzer must follow the receiver into the
// helpers and see which fields they actually touch — treating the call
// as whole-receiver reflective coverage would silently hide the
// forgotten gen field.
type Sparse struct {
	keys []uint64
	vals []uint64
	gen  int // want `field Sparse.gen is not covered by SaveState/LoadState`
}

func (s *Sparse) SaveState(w *Writer) { writeSparse(w, s) }
func (s *Sparse) LoadState(r *Reader) { readSparse(r, s) }

func writeSparse(w *Writer, s *Sparse) {
	w.U64(uint64(len(s.keys)))
	for i := range s.keys {
		w.U64(s.keys[i])
		w.U64(s.vals[i])
	}
}

func readSparse(r *Reader, s *Sparse) {
	n := r.U64()
	s.keys = make([]uint64, n)
	s.vals = make([]uint64, n)
	for i := range s.keys {
		s.keys[i] = r.U64()
		s.vals[i] = r.U64()
	}
}
