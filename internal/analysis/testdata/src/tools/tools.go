// Package tools sits outside the guarded simulator path roots, so the
// determinism analyzers must stay silent here even on patterns they
// would flag elsewhere (reporting tooling may iterate maps freely —
// its output never feeds measured results).
package tools

import "time"

var cache = map[string]int{}

func Dump() []string {
	var out []string
	for k, v := range cache {
		if v != 0 {
			out = append(out, k)
		}
	}
	return out
}

func Stamp() time.Time { return time.Now() }
