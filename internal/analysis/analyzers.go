package analysis

// All is the simlint suite in reporting order: the analyzers cmd/simlint
// runs by default, standalone and under `go vet -vettool`.
var All = []*Analyzer{
	MapOrder, GlobalRand, CheckpointCov, MemoKey,
	LockField, AtomicMix, ObsPure, ClockTaint,
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}
