package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ObsPure proves the PR-8 pure-observer contract in both directions:
//
// Observer side (internal/obs packages): obs must never feed back into
// simulation state. Importing a simulator package from obs is flagged
// at the import, and — for the paths an import ban alone cannot excuse
// (state smuggled in through an interface or pointer) — any write to a
// field declared in a simulator package, and any call into one, is
// flagged at the site, with the exported observer entry point it is
// reachable from named as the witness (the call path that makes an
// innocently-named helper an armed feedback channel).
//
// Simulator side (internal/{sim,core,trace,workloads,oskern}): engine
// code may reach obs only through the nil-safe handle API — obs.Now,
// obs.Since, and methods on handle types (Counter.Add, RunObs.Enter,
// ...), all of which are no-ops on a nil receiver so the unarmed run
// stays zero-cost and byte-identical. The armed-side API (obs.New,
// obs.Serve, Observer.WriteFiles) belongs to cmd/ alone: an engine
// that constructs or serves its own observer has made observability a
// simulation input.
//
// This analyzer replaces the hand-maintained suppression audit that
// DESIGN.md §9 used to carry for the observer boundary.
var ObsPure = &Analyzer{
	Name: "obspure",
	Doc:  "enforces the pure-observer contract: obs never writes simulation state; sim code uses only the nil-safe obs handle API",
	Run:  runObsPure,
}

// obsPackagePath reports whether path is the observability layer,
// matched by fragment like simPackagePath so fixtures participate.
func obsPackagePath(path string) bool {
	frag := "internal/obs"
	return path == frag || strings.Contains(path, frag+"/") ||
		strings.HasSuffix(path, "/"+frag) || strings.Contains(path, "/"+frag+"/")
}

// simStatePath is the simulator-proper scope minus the observer itself:
// the packages whose state obs must never touch.
func simStatePath(path string) bool {
	return simPackagePath(path) && !obsPackagePath(path)
}

// obsArmedFuncs is the armed-side package-level API, callable from cmd/
// only.
var obsArmedFuncs = map[string]bool{
	"New":   true,
	"Serve": true,
}

// obsArmedMethods is the armed-side method API, callable from cmd/ only.
var obsArmedMethods = map[string]bool{
	"WriteFiles": true,
}

func runObsPure(pass *Pass) error {
	switch {
	case obsPackagePath(pass.Pkg.Path()):
		return runObsSide(pass)
	case simStatePath(pass.Pkg.Path()):
		return runSimSide(pass)
	}
	return nil
}

// runObsSide checks the observer package itself: no simulator imports,
// no writes into simulator-declared state, no calls into simulator
// packages.
func runObsSide(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if simStatePath(path) {
				pass.Reportf(imp.Pos(),
					"internal/obs is a pure observer and must not import simulator package %q (pure-observer contract)", path)
			}
		}
	}

	cg := buildCallGraph(pass)
	for _, node := range cg.order {
		if node.decl.Body == nil {
			continue
		}
		entry := reachableEntry(node)
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range v.Lhs {
					if fv := simStateField(pass, lhs); fv != nil {
						pass.Reportf(lhs.Pos(),
							"observer code writes simulator state %s.%s (reachable from %s); observers must never feed back into the simulation",
							fv.Pkg().Name(), fv.Name(), entry)
					}
				}
			case *ast.IncDecStmt:
				if fv := simStateField(pass, v.X); fv != nil {
					pass.Reportf(v.X.Pos(),
						"observer code writes simulator state %s.%s (reachable from %s); observers must never feed back into the simulation",
						fv.Pkg().Name(), fv.Name(), entry)
				}
			case *ast.CallExpr:
				if fn := externalCallee(pass, v); fn != nil && fn.Pkg() != nil && simStatePath(fn.Pkg().Path()) {
					pass.Reportf(v.Pos(),
						"observer code calls simulator function %s.%s (reachable from %s); observers must never feed back into the simulation",
						fn.Pkg().Name(), fn.Name(), entry)
				}
			}
			return true
		})
	}
	return nil
}

// simStateField resolves an assignment target to a struct field declared
// in a simulator (non-obs) package, nil otherwise.
func simStateField(pass *Pass, lhs ast.Expr) *types.Var {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fv, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Var)
	if !ok || !fv.IsField() || fv.Pkg() == nil {
		return nil
	}
	if !simStatePath(fv.Pkg().Path()) {
		return nil
	}
	return fv
}

// externalCallee returns the called *types.Func when the call leaves the
// current package, nil for in-package, builtin, or dynamic calls.
func externalCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == pass.Pkg {
		return nil
	}
	return fn
}

// reachableEntry walks callers backwards from node to the first exported
// function that reaches it — the observer API surface a violation is
// live through. Falls back to the node's own name.
func reachableEntry(node *funcNode) string {
	seen := map[*funcNode]bool{node: true}
	queue := []*funcNode{node}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.obj.Exported() {
			return cur.obj.Name()
		}
		for _, site := range cur.callers {
			if !seen[site.caller] {
				seen[site.caller] = true
				queue = append(queue, site.caller)
			}
		}
	}
	return node.obj.Name()
}

// runSimSide checks engine code: every use of the obs package must go
// through the nil-safe handle API.
func runSimSide(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !obsPackagePath(fn.Pkg().Path()) {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			if sig.Recv() == nil {
				if obsArmedFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"obs.%s is armed-side API (cmd/ only); simulator code may reach obs only through the nil-safe handles (obs.Now, obs.Since, handle methods)",
						fn.Name())
				}
			} else if obsArmedMethods[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"(%s).%s is armed-side API (cmd/ only); simulator code may reach obs only through the nil-safe handles",
					sig.Recv().Type(), fn.Name())
			}
			return true
		})
	}
	return nil
}
