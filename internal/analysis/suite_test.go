package analysis_test

import (
	"testing"

	"cloudsuite/internal/analysis"
	"cloudsuite/internal/analysis/analysistest"
)

// Each analyzer must fail its fixture without the check: the fixtures
// carry // want expectations (including the seeded StreamI and
// DebugSharing bug reproductions), and analysistest fails on both
// missing and unexpected diagnostics.

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MapOrder,
		"internal/sim/streami", // seeded StreamI map-iteration eviction bug
		"tools",                // outside the guarded roots: must stay silent
	)
}

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.GlobalRand,
		"internal/sim/debugcache", // seeded DebugSharing package-global bug
		"tools",                   // outside the guarded roots: must stay silent
	)
}

func TestCheckpointCov(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.CheckpointCov, "ckpt")
}

func TestMemoKey(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MemoKey, "memo")
}

func TestLockField(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.LockField,
		"internal/core/lockrepro", // seeded RunnerStats unpaired-transition race
	)
}

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.AtomicMix,
		"internal/sim/atomix",
	)
}

func TestObsPure(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ObsPure,
		"internal/obs/badobs",  // synthetic obs→engine write
		"internal/sim/obsuser", // armed-side API reached from engine code
	)
}

func TestClockTaint(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ClockTaint,
		"internal/sim/clockrepro", // laundered time.Now into seed/key/branch/checkpoint
	)
}

func TestStaleSuppressions(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MapOrder,
		"internal/sim/staleok", // dead and typo'd //simlint:ok annotations
	)
}
