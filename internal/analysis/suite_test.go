package analysis_test

import (
	"testing"

	"cloudsuite/internal/analysis"
	"cloudsuite/internal/analysis/analysistest"
)

// Each analyzer must fail its fixture without the check: the fixtures
// carry // want expectations (including the seeded StreamI and
// DebugSharing bug reproductions), and analysistest fails on both
// missing and unexpected diagnostics.

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MapOrder,
		"internal/sim/streami", // seeded StreamI map-iteration eviction bug
		"tools",                // outside the guarded roots: must stay silent
	)
}

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.GlobalRand,
		"internal/sim/debugcache", // seeded DebugSharing package-global bug
		"tools",                   // outside the guarded roots: must stay silent
	)
}

func TestCheckpointCov(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.CheckpointCov, "ckpt")
}

func TestMemoKey(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MemoKey, "memo")
}
