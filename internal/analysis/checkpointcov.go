package analysis

import (
	"go/ast"
	"go/types"
)

// CheckpointCov verifies checkpoint field coverage: for every type that
// implements the snapshot protocol (methods named SaveState and
// LoadState), each struct field must be
//
//   - touched by SaveState or LoadState (directly, or through another
//     method of the same type that they call — helpers and nested
//     component SaveState fan-out both count), or
//   - marked `//simlint:replay <reason>`: the field's post-warm value
//     is re-derived by the deterministic replay fast-forward
//     (skipThread) rather than serialized, or
//   - exempted with `//simlint:ok checkpointcov <reason>` (typically
//     configuration fixed at construction, checked for geometry
//     mismatch instead of being restored).
//
// This is the "field added, checkpoint forgot" guard: before it, a new
// field silently diverged the restored image and only the PR-5 golden
// differential — a whole-simulation byte comparison, run in CI, long
// after the edit — could notice, without saying which field. The
// analyzer moves that failure to vet time and names the field.
var CheckpointCov = &Analyzer{
	Name: "checkpointcov",
	Doc:  "verifies every field of a SaveState/LoadState type is serialized, replay-derived (//simlint:replay), or exempted",
	Run:  runCheckpointCov,
}

func runCheckpointCov(pass *Pass) error {
	// Group the package's methods by receiver type.
	methods := map[*types.TypeName]map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			named := receiverType(pass.TypesInfo, fd.Recv.List[0])
			if named == nil {
				continue
			}
			tn := named.Obj()
			if methods[tn] == nil {
				methods[tn] = map[string]*ast.FuncDecl{}
			}
			methods[tn][fd.Name.Name] = fd
		}
	}

	for tn, ms := range methods {
		if ms["SaveState"] == nil || ms["LoadState"] == nil {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		covered := fieldsTouched(pass, tn, ms)
		fieldDecl := structFieldDecls(pass, tn, st)
		for i := 0; i < st.NumFields(); i++ {
			fv := st.Field(i)
			if covered[fv] {
				continue
			}
			af := fieldDecl[fv]
			if af != nil && replayAnnotated(af.Doc, af.Comment) {
				continue
			}
			pos := tn.Pos()
			if af != nil {
				pos = af.Pos()
			}
			pass.Reportf(pos,
				"field %s.%s is not covered by SaveState/LoadState: serialize it, mark it //simlint:replay <reason>, or annotate //simlint:ok checkpointcov <reason>",
				tn.Name(), fv.Name())
		}
	}
	return nil
}

// fieldsTouched returns the struct fields of tn selected anywhere in
// SaveState, LoadState, or any method of tn reachable from them through
// static method calls on the same type. Passing the whole receiver to a
// call (`w.Struct(c)` — the checkpoint Writer's reflective whole-struct
// encoder) covers every field at once.
func fieldsTouched(pass *Pass, tn *types.TypeName, ms map[string]*ast.FuncDecl) map[*types.Var]bool {
	covered := map[*types.Var]bool{}
	seen := map[*ast.FuncDecl]bool{}
	work := []*ast.FuncDecl{ms["SaveState"], ms["LoadState"]}
	coverAll := func() {
		st := tn.Type().Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			covered[st.Field(i)] = true
		}
	}
	for len(work) > 0 {
		fd := work[len(work)-1]
		work = work[:len(work)-1]
		if fd == nil || seen[fd] || fd.Body == nil {
			continue
		}
		seen[fd] = true
		recv := receiverObj(pass, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if s := pass.TypesInfo.Selections[e]; s != nil {
					if fv, ok := s.Obj().(*types.Var); ok && fv.IsField() {
						covered[fv] = true
					}
					// Calls to methods of the same type extend the search.
					if fn, ok := s.Obj().(*types.Func); ok {
						if next := ms[fn.Name()]; next != nil && sameReceiver(pass, next, tn) {
							work = append(work, next)
						}
					}
				}
			case *ast.CallExpr:
				// The receiver handed to a call wholesale (w.Struct(c),
				// binary.Write(buf, order, c), &c, *c) serializes every
				// field reflectively.
				for _, arg := range e.Args {
					if exprIsObj(pass, arg, recv) {
						coverAll()
					}
				}
			}
			return true
		})
	}
	return covered
}

// receiverObj returns the object of fd's receiver variable, nil for an
// anonymous receiver.
func receiverObj(pass *Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.ObjectOf(fd.Recv.List[0].Names[0])
}

// exprIsObj reports whether e is obj, possibly behind & or *.
func exprIsObj(pass *Pass, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	switch v := e.(type) {
	case *ast.Ident:
		return pass.TypesInfo.ObjectOf(v) == obj
	case *ast.UnaryExpr:
		return exprIsObj(pass, v.X, obj)
	case *ast.StarExpr:
		return exprIsObj(pass, v.X, obj)
	}
	return false
}

func sameReceiver(pass *Pass, fd *ast.FuncDecl, tn *types.TypeName) bool {
	named := receiverType(pass.TypesInfo, fd.Recv.List[0])
	return named != nil && named.Obj() == tn
}

// structFieldDecls maps tn's field objects to their declaring ast.Field
// so annotations and positions can be read off the syntax. Matching is
// by source position — a field *Var's Pos lies inside its declaring
// ast.Field for named and embedded fields alike.
func structFieldDecls(pass *Pass, tn *types.TypeName, st *types.Struct) map[*types.Var]*ast.Field {
	out := map[*types.Var]*ast.Field{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || pass.TypesInfo.Defs[ts.Name] != tn {
				return true
			}
			astSt, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range astSt.Fields.List {
				for i := 0; i < st.NumFields(); i++ {
					fv := st.Field(i)
					if fv.Pos() >= field.Pos() && fv.Pos() <= field.End() {
						out[fv] = field
					}
				}
			}
			return true
		})
	}
	return out
}
