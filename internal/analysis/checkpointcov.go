package analysis

import (
	"go/ast"
	"go/types"
)

// CheckpointCov verifies checkpoint field coverage: for every type that
// implements the snapshot protocol (methods named SaveState and
// LoadState), each struct field must be
//
//   - touched by SaveState or LoadState (directly, or through another
//     method of the same type that they call — helpers and nested
//     component SaveState fan-out both count), or
//   - marked `//simlint:replay <reason>`: the field's post-warm value
//     is re-derived by the deterministic replay fast-forward
//     (skipThread) rather than serialized, or
//   - exempted with `//simlint:ok checkpointcov <reason>` (typically
//     configuration fixed at construction, checked for geometry
//     mismatch instead of being restored).
//
// This is the "field added, checkpoint forgot" guard: before it, a new
// field silently diverged the restored image and only the PR-5 golden
// differential — a whole-simulation byte comparison, run in CI, long
// after the edit — could notice, without saying which field. The
// analyzer moves that failure to vet time and names the field.
var CheckpointCov = &Analyzer{
	Name: "checkpointcov",
	Doc:  "verifies every field of a SaveState/LoadState type is serialized, replay-derived (//simlint:replay), or exempted",
	Run:  runCheckpointCov,
}

func runCheckpointCov(pass *Pass) error {
	// Group the package's methods by receiver type, and index the
	// package-level free functions: shared serialization helpers
	// (writeSparse-style) are free functions the transitive search must
	// follow too.
	methods := map[*types.TypeName]map[string]*ast.FuncDecl{}
	freeFuncs := map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Recv == nil || len(fd.Recv.List) == 0 {
				freeFuncs[fd.Name.Name] = fd
				continue
			}
			named := receiverType(pass.TypesInfo, fd.Recv.List[0])
			if named == nil {
				continue
			}
			tn := named.Obj()
			if methods[tn] == nil {
				methods[tn] = map[string]*ast.FuncDecl{}
			}
			methods[tn][fd.Name.Name] = fd
		}
	}

	for tn, ms := range methods {
		if ms["SaveState"] == nil || ms["LoadState"] == nil {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		covered := fieldsTouched(pass, tn, ms, freeFuncs)
		fieldDecl := structFieldDecls(pass, tn, st)
		for i := 0; i < st.NumFields(); i++ {
			fv := st.Field(i)
			if covered[fv] {
				continue
			}
			af := fieldDecl[fv]
			if af != nil && replayAnnotated(af.Doc, af.Comment) {
				continue
			}
			pos := tn.Pos()
			if af != nil {
				pos = af.Pos()
			}
			pass.Reportf(pos,
				"field %s.%s is not covered by SaveState/LoadState: serialize it, mark it //simlint:replay <reason>, or annotate //simlint:ok checkpointcov <reason>",
				tn.Name(), fv.Name())
		}
	}
	return nil
}

// covWork is one unit of the transitive coverage search: a function
// body plus the object that stands for the receiver inside it (the
// method receiver, or the parameter a free function was handed the
// receiver through).
type covWork struct {
	fd   *ast.FuncDecl
	recv types.Object
}

// fieldsTouched returns the struct fields of tn selected anywhere in
// SaveState, LoadState, or any function reachable from them through
// static calls: methods of the same type, and same-package free
// functions the receiver is passed to (the shared writeSparse-style
// helper — following only methods used to blanket-cover those calls,
// marking fields the helper never serializes as covered). Passing the
// whole receiver to an unresolvable call (`w.Struct(c)` — the
// checkpoint Writer's reflective whole-struct encoder, binary.Write)
// still covers every field at once.
func fieldsTouched(pass *Pass, tn *types.TypeName, ms, freeFuncs map[string]*ast.FuncDecl) map[*types.Var]bool {
	covered := map[*types.Var]bool{}
	seen := map[*ast.FuncDecl]map[types.Object]bool{}
	var work []covWork
	for _, name := range []string{"SaveState", "LoadState"} {
		if fd := ms[name]; fd != nil {
			work = append(work, covWork{fd, receiverObj(pass, fd)})
		}
	}
	coverAll := func() {
		st := tn.Type().Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			covered[st.Field(i)] = true
		}
	}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		if it.fd == nil || it.fd.Body == nil {
			continue
		}
		if seen[it.fd] == nil {
			seen[it.fd] = map[types.Object]bool{}
		}
		if seen[it.fd][it.recv] {
			continue
		}
		seen[it.fd][it.recv] = true
		recv := it.recv
		ast.Inspect(it.fd.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if s := pass.TypesInfo.Selections[e]; s != nil {
					if fv, ok := s.Obj().(*types.Var); ok && fv.IsField() {
						covered[fv] = true
					}
					// Calls to methods of the same type extend the search.
					if fn, ok := s.Obj().(*types.Func); ok {
						if next := ms[fn.Name()]; next != nil && sameReceiver(pass, next, tn) {
							work = append(work, covWork{next, receiverObj(pass, next)})
						}
					}
				}
			case *ast.CallExpr:
				// A same-package free function handed the receiver is
				// followed precisely: the receiver's role transfers to the
				// corresponding parameter. Everything else that takes the
				// receiver wholesale (w.Struct(c), binary.Write(buf, order,
				// c), &c, *c) serializes reflectively and covers all fields.
				next := freeCallee(pass, freeFuncs, e)
				for i, arg := range e.Args {
					if !exprIsObj(pass, arg, recv) {
						continue
					}
					if next != nil {
						if p := declParam(pass, next, i); p != nil {
							work = append(work, covWork{next, p})
							continue
						}
					}
					coverAll()
				}
			}
			return true
		})
	}
	return covered
}

// freeCallee resolves a call to a same-package free-function
// declaration, nil for methods, builtins, externals, and dynamic calls.
func freeCallee(pass *Pass, freeFuncs map[string]*ast.FuncDecl, call *ast.CallExpr) *ast.FuncDecl {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() != pass.Pkg {
		return nil
	}
	return freeFuncs[fn.Name()]
}

// receiverObj returns the object of fd's receiver variable, nil for an
// anonymous receiver.
func receiverObj(pass *Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.ObjectOf(fd.Recv.List[0].Names[0])
}

// exprIsObj reports whether e is obj, possibly behind & or *.
func exprIsObj(pass *Pass, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	switch v := e.(type) {
	case *ast.Ident:
		return pass.TypesInfo.ObjectOf(v) == obj
	case *ast.UnaryExpr:
		return exprIsObj(pass, v.X, obj)
	case *ast.StarExpr:
		return exprIsObj(pass, v.X, obj)
	}
	return false
}

func sameReceiver(pass *Pass, fd *ast.FuncDecl, tn *types.TypeName) bool {
	named := receiverType(pass.TypesInfo, fd.Recv.List[0])
	return named != nil && named.Obj() == tn
}

// structFieldDecls maps tn's field objects to their declaring ast.Field
// so annotations and positions can be read off the syntax. Matching is
// by source position — a field *Var's Pos lies inside its declaring
// ast.Field for named and embedded fields alike.
func structFieldDecls(pass *Pass, tn *types.TypeName, st *types.Struct) map[*types.Var]*ast.Field {
	out := map[*types.Var]*ast.Field{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || pass.TypesInfo.Defs[ts.Name] != tn {
				return true
			}
			astSt, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range astSt.Fields.List {
				for i := 0; i < st.NumFields(); i++ {
					fv := st.Field(i)
					if fv.Pos() >= field.Pos() && fv.Pos() <= field.End() {
						out[fv] = field
					}
				}
			}
			return true
		})
	}
	return out
}
