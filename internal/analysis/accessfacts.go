package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file computes per-field access-context facts: for every struct
// field access in a package's non-test code, which mutexes are held,
// whether the access is a read or a write, and whether it goes through
// sync/atomic. The lockfield and atomicmix analyzers are queries over
// these facts.
//
// Lock tracking is a forward walk over each function body: x.mu.Lock()
// adds the mutex *field* (identified by its types.Var, shared across
// instances) to the held set, x.mu.Unlock() removes it, and a deferred
// Unlock keeps the mutex held to the end of the function. Branches are
// handled path-sensitively enough for the repository's idioms: an
// early-return (or continue/break) branch that unlocks does not poison
// the fall-through path, and the post-state of a conditional is the
// intersection of its live exits. The walk is interprocedural through
// the call graph: an unexported function whose every in-package call
// site holds mutex M is analyzed with M in its entry set, so helpers
// called under a lock inherit the critical section (the classic
// "paired-transition helper" shape).
//
// Two escape hatches keep constructors quiet: accesses through a local
// variable that the function itself freshly allocated (composite
// literal or new) are marked fresh — an object not yet published needs
// no lock — and function literals are walked with an empty held set,
// since a closure may run on another goroutine.

// lockset is the set of mutex fields currently held.
type lockset map[*types.Var]bool

func (l lockset) clone() lockset {
	c := make(lockset, len(l))
	for k := range l {
		c[k] = true
	}
	return c
}

func (l lockset) intersect(o lockset) lockset {
	c := lockset{}
	for k := range l {
		if o[k] {
			c[k] = true
		}
	}
	return c
}

func (l lockset) equal(o lockset) bool {
	if len(l) != len(o) {
		return false
	}
	for k := range l {
		if !o[k] {
			return false
		}
	}
	return true
}

// A fieldAccess is one read or write of a struct field.
type fieldAccess struct {
	field  *types.Var
	pos    token.Pos
	write  bool
	atomic bool    // performed through a sync/atomic call on &field
	locks  lockset // mutex fields held at the access
	node   *funcNode
	fresh  bool // base object is freshly allocated in this function
}

// accessFacts is the package-wide fact base.
type accessFacts struct {
	accesses []*fieldAccess
	// mutexFields maps each sync.Mutex/sync.RWMutex struct field to its
	// declaring struct type.
	mutexFields map[*types.Var]*types.TypeName
	// fieldOwner maps every other field of a package-declared struct to
	// its declaring struct type.
	fieldOwner map[*types.Var]*types.TypeName
}

// collectAccessFacts computes the fact base for the pass's non-test
// files over the given call graph.
func collectAccessFacts(pass *Pass, cg *callGraph) *accessFacts {
	facts := &accessFacts{
		mutexFields: map[*types.Var]*types.TypeName{},
		fieldOwner:  map[*types.Var]*types.TypeName{},
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			fv := st.Field(i)
			if isMutexType(fv.Type()) {
				facts.mutexFields[fv] = tn
			} else {
				facts.fieldOwner[fv] = tn
			}
		}
	}

	// Entry-lockset fixpoint: unexported functions with known callers
	// start at the full mutex universe and shrink to the intersection of
	// their call sites' held sets; exported functions (callable from
	// outside the package) and uncalled functions start and stay empty.
	universe := lockset{}
	for fv := range facts.mutexFields {
		universe[fv] = true
	}
	entry := map[*funcNode]lockset{}
	for _, node := range cg.order {
		if !node.obj.Exported() && len(node.callers) > 0 {
			entry[node] = universe.clone()
		} else {
			entry[node] = lockset{}
		}
	}
	for iter := 0; iter <= len(cg.order); iter++ {
		w := &lockWalker{pass: pass, facts: facts, cg: cg, siteLocks: map[*ast.CallExpr]lockset{}}
		for _, node := range cg.order {
			if node.decl.Body != nil {
				w.node = node
				w.fresh = freshLocals(pass, node.decl)
				w.stmts(node.decl.Body.List, entry[node].clone())
			}
		}
		stable := true
		for _, node := range cg.order {
			if node.obj.Exported() || len(node.callers) == 0 {
				continue
			}
			next := universe.clone()
			for _, site := range node.callers {
				held, ok := w.siteLocks[site.call]
				if !ok {
					held = lockset{}
				}
				next = next.intersect(held)
			}
			if !next.equal(entry[node]) {
				entry[node] = next
				stable = false
			}
		}
		if stable {
			break
		}
	}

	// Final pass with converged entry sets records the accesses.
	w := &lockWalker{pass: pass, facts: facts, cg: cg, record: true, siteLocks: map[*ast.CallExpr]lockset{}}
	for _, node := range cg.order {
		if node.decl.Body != nil {
			w.node = node
			w.fresh = freshLocals(pass, node.decl)
			w.stmts(node.decl.Body.List, entry[node].clone())
		}
	}
	return facts
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// freshLocals returns the local variables fd assigns from a fresh
// allocation (composite literal, &composite, or new): objects the
// function created itself and may initialize without holding locks.
func freshLocals(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i := range asg.Lhs {
			id, ok := asg.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if isFreshAlloc(asg.Rhs[i]) {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

func isFreshAlloc(e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			_, ok := ast.Unparen(v.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// lockWalker walks statements tracking the held lockset.
type lockWalker struct {
	pass      *Pass
	facts     *accessFacts
	cg        *callGraph
	node      *funcNode
	record    bool
	fresh     map[types.Object]bool
	siteLocks map[*ast.CallExpr]lockset
}

func (w *lockWalker) stmts(list []ast.Stmt, held lockset) lockset {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

func (w *lockWalker) stmt(s ast.Stmt, held lockset) lockset {
	switch v := s.(type) {
	case nil:
		return held
	case *ast.ExprStmt:
		if call, ok := v.X.(*ast.CallExpr); ok {
			if mu, locks := w.lockCall(call); mu != nil {
				if locks {
					held = held.clone()
					held[mu] = true
				} else {
					held = held.clone()
					delete(held, mu)
				}
				return held
			}
		}
		w.expr(v.X, held, false)
	case *ast.DeferStmt:
		if mu, locks := w.lockCall(v.Call); mu != nil && !locks {
			// defer x.mu.Unlock(): the mutex stays held to function end.
			return held
		}
		w.expr(v.Call, held, false)
	case *ast.AssignStmt:
		for _, rhs := range v.Rhs {
			w.expr(rhs, held, false)
		}
		for _, lhs := range v.Lhs {
			w.expr(lhs, held, true)
		}
	case *ast.IncDecStmt:
		w.expr(v.X, held, true)
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						w.expr(val, held, false)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, res := range v.Results {
			w.expr(res, held, false)
		}
	case *ast.SendStmt:
		w.expr(v.Chan, held, false)
		w.expr(v.Value, held, false)
	case *ast.GoStmt:
		w.expr(v.Call, held, false)
	case *ast.LabeledStmt:
		return w.stmt(v.Stmt, held)
	case *ast.BlockStmt:
		return w.stmts(v.List, held)
	case *ast.IfStmt:
		held = w.stmt(v.Init, held)
		w.expr(v.Cond, held, false)
		bodyExit := w.stmts(v.Body.List, held.clone())
		bodyTerm := terminates(v.Body.List)
		var elseExit lockset
		elseTerm := false
		switch e := v.Else.(type) {
		case nil:
			elseExit = held
		case *ast.BlockStmt:
			elseExit = w.stmts(e.List, held.clone())
			elseTerm = terminates(e.List)
		case *ast.IfStmt:
			elseExit = w.stmt(e, held.clone())
			elseTerm = stmtTerminates(e)
		}
		switch {
		case bodyTerm && elseTerm:
			return held
		case bodyTerm:
			return elseExit
		case elseTerm:
			return bodyExit
		default:
			return bodyExit.intersect(elseExit)
		}
	case *ast.ForStmt:
		held = w.stmt(v.Init, held)
		if v.Cond != nil {
			w.expr(v.Cond, held, false)
		}
		bodyExit := w.stmts(v.Body.List, held.clone())
		w.stmt(v.Post, bodyExit)
		return held.intersect(bodyExit)
	case *ast.RangeStmt:
		w.expr(v.X, held, false)
		bodyExit := w.stmts(v.Body.List, held.clone())
		return held.intersect(bodyExit)
	case *ast.SwitchStmt:
		held = w.stmt(v.Init, held)
		if v.Tag != nil {
			w.expr(v.Tag, held, false)
		}
		return w.clauses(v.Body, held)
	case *ast.TypeSwitchStmt:
		held = w.stmt(v.Init, held)
		w.stmt(v.Assign, held)
		return w.clauses(v.Body, held)
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				h := held.clone()
				if cc.Comm != nil {
					h = w.stmt(cc.Comm, h)
				}
				w.stmts(cc.Body, h)
			}
		}
		return held
	}
	return held
}

// clauses walks a switch body: every clause starts from the same entry
// set; the post-state is the intersection of the live clause exits.
func (w *lockWalker) clauses(body *ast.BlockStmt, held lockset) lockset {
	exit := held
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.expr(e, held, false)
		}
		clauseExit := w.stmts(cc.Body, held.clone())
		if !terminates(cc.Body) {
			exit = exit.intersect(clauseExit)
		}
	}
	return exit
}

// lockCall classifies a call as mu.Lock/RLock/TryLock (locks=true) or
// mu.Unlock/RUnlock (locks=false) on a struct mutex field, returning
// the mutex field object (nil for anything else).
func (w *lockWalker) lockCall(call *ast.CallExpr) (mu *types.Var, locks bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock":
		locks = true
	case "Unlock", "RUnlock":
		locks = false
	default:
		return nil, false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	fv, ok := w.pass.TypesInfo.ObjectOf(inner.Sel).(*types.Var)
	if !ok || !fv.IsField() {
		return nil, false
	}
	if _, isMutex := w.facts.mutexFields[fv]; !isMutex && !isMutexType(fv.Type()) {
		return nil, false
	}
	return fv, locks
}

// atomicCallee returns the sync/atomic function a call invokes, if any.
func atomicCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	return fn
}

func (w *lockWalker) expr(e ast.Expr, held lockset, write bool) {
	switch v := e.(type) {
	case nil:
		return
	case *ast.Ident, *ast.BasicLit:
		return
	case *ast.ParenExpr:
		w.expr(v.X, held, write)
	case *ast.SelectorExpr:
		if fv, ok := w.pass.TypesInfo.ObjectOf(v.Sel).(*types.Var); ok && fv.IsField() {
			if _, isMutex := w.facts.mutexFields[fv]; !isMutex && !isMutexType(fv.Type()) {
				w.recordAccess(fv, v.Sel.Pos(), write, false, held, v)
			}
		}
		w.expr(v.X, held, false)
	case *ast.StarExpr:
		w.expr(v.X, held, write)
	case *ast.IndexExpr:
		// A store through an index writes the container element, which
		// for facts purposes is a write of the container field.
		w.expr(v.X, held, write)
		w.expr(v.Index, held, false)
	case *ast.SliceExpr:
		w.expr(v.X, held, false)
		w.expr(v.Low, held, false)
		w.expr(v.High, held, false)
		w.expr(v.Max, held, false)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			// Taking a field's address lets the holder mutate it.
			w.expr(v.X, held, true)
			return
		}
		w.expr(v.X, held, false)
	case *ast.BinaryExpr:
		w.expr(v.X, held, false)
		w.expr(v.Y, held, false)
	case *ast.KeyValueExpr:
		w.expr(v.Value, held, false)
	case *ast.CompositeLit:
		for _, elt := range v.Elts {
			w.expr(elt, held, false)
		}
	case *ast.TypeAssertExpr:
		w.expr(v.X, held, false)
	case *ast.CallExpr:
		if w.cg != nil {
			if callee := w.cg.resolve(w.pass, v); callee != nil {
				if prev, ok := w.siteLocks[v]; !ok {
					w.siteLocks[v] = held.clone()
				} else {
					w.siteLocks[v] = prev.intersect(held)
				}
			}
		}
		if fn := atomicCallee(w.pass, v); fn != nil {
			isStore := strings.HasPrefix(fn.Name(), "Store") ||
				strings.HasPrefix(fn.Name(), "Add") ||
				strings.HasPrefix(fn.Name(), "Swap") ||
				strings.HasPrefix(fn.Name(), "CompareAnd") ||
				strings.HasPrefix(fn.Name(), "Or") ||
				strings.HasPrefix(fn.Name(), "And")
			for _, arg := range v.Args {
				if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && un.Op == token.AND {
					if sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
						if fv, ok := w.pass.TypesInfo.ObjectOf(sel.Sel).(*types.Var); ok && fv.IsField() {
							w.recordAccess(fv, sel.Sel.Pos(), isStore, true, held, sel)
							w.expr(sel.X, held, false)
							continue
						}
					}
				}
				w.expr(arg, held, false)
			}
			w.expr(v.Fun, held, false)
			return
		}
		w.expr(v.Fun, held, false)
		for _, arg := range v.Args {
			w.expr(arg, held, false)
		}
	case *ast.FuncLit:
		// A closure may run on another goroutine; analyze its body with
		// nothing held.
		if v.Body != nil {
			w.stmts(v.Body.List, lockset{})
		}
	}
}

func (w *lockWalker) recordAccess(fv *types.Var, pos token.Pos, write, atomicAcc bool, held lockset, sel *ast.SelectorExpr) {
	if !w.record {
		return
	}
	fresh := false
	if id := baseIdent(sel.X); id != nil {
		if obj := w.pass.TypesInfo.ObjectOf(id); obj != nil && w.fresh[obj] {
			fresh = true
		}
	}
	w.facts.accesses = append(w.facts.accesses, &fieldAccess{
		field:  fv,
		pos:    pos,
		write:  write,
		atomic: atomicAcc,
		locks:  held.clone(),
		node:   w.node,
		fresh:  fresh,
	})
}

// terminates reports whether a statement list always transfers control
// out of the enclosing block (return, branch, panic, or an if whose
// branches all do).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return stmtTerminates(list[len(list)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch v := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := v.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(v.List)
	case *ast.LabeledStmt:
		return stmtTerminates(v.Stmt)
	case *ast.IfStmt:
		if v.Else == nil {
			return false
		}
		return terminates(v.Body.List) && stmtTerminates(v.Else)
	}
	return false
}
