package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file implements the forward taint/reachability engine: given a
// source predicate over call expressions (e.g. "this call reads the
// wall clock"), it computes which objects — locals, parameters, struct
// fields — can hold a source-derived value anywhere in the package, and
// answers per-expression taint queries afterwards.
//
// The lattice is the simplest one that catches laundering: an object is
// either untainted (bottom) or tainted-with-witness (top, carrying the
// position of the first source that reached it, for diagnostics).
// Propagation is flow-insensitive (one taint set for the whole package)
// but field-sensitive (a struct field is its own object, shared across
// instances) and interprocedural over the package-closure call graph:
// tainted arguments taint callee parameters, tainted returns taint call
// results, and calls that leave the package propagate taint from any
// operand to their result — the conservative choice that makes
// `time.Now().UnixNano()` tainted without modeling the time package.
// Instance-insensitivity and flow-insensitivity both over-approximate;
// the audited //simlint:ok escape hatch absorbs the (rare) false
// positive, which is the right trade for a determinism contract.

// A taintSource is the witness carried by a tainted object: where the
// value originally came from.
type taintSource struct {
	pos  token.Pos
	desc string
}

// taintEngine computes and answers taint queries for one package.
type taintEngine struct {
	pass *Pass
	cg   *callGraph
	// isSource classifies call expressions; a non-nil result marks the
	// call's value as a taint source.
	isSource func(*ast.CallExpr) *taintSource
	// obj holds the taint state of every object known tainted.
	obj map[types.Object]*taintSource
	// ret holds per-result-index taint for each function: collapsing a
	// signature to one bit would let a tainted runResult poison the error
	// returned beside it, flagging every `if err != nil` downstream.
	ret     map[*funcNode][]*taintSource
	changed bool
}

// newTaintEngine builds and solves the taint state for the pass's
// non-test files.
func newTaintEngine(pass *Pass, cg *callGraph, isSource func(*ast.CallExpr) *taintSource) *taintEngine {
	t := &taintEngine{
		pass:     pass,
		cg:       cg,
		isSource: isSource,
		obj:      map[types.Object]*taintSource{},
		ret:      map[*funcNode][]*taintSource{},
	}
	t.solve()
	return t
}

// solve iterates transfer over every function body to a fixpoint. The
// taint sets only grow, so termination is bounded by the object count.
func (t *taintEngine) solve() {
	for {
		t.changed = false
		for _, node := range t.cg.order {
			if node.decl.Body != nil {
				t.transferBody(node)
			}
		}
		if !t.changed {
			return
		}
	}
}

// transferBody applies one propagation pass over a function body.
func (t *taintEngine) transferBody(node *funcNode) {
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			t.transferAssign(s)
		case *ast.ValueSpec:
			for i, val := range s.Values {
				if src := t.ExprTaint(val); src != nil {
					if len(s.Values) == len(s.Names) {
						t.taintObj(t.pass.TypesInfo.ObjectOf(s.Names[i]), src)
					} else {
						for _, name := range s.Names {
							t.taintObj(t.pass.TypesInfo.ObjectOf(name), src)
						}
					}
				}
			}
		case *ast.RangeStmt:
			if src := t.ExprTaint(s.X); src != nil {
				t.taintLValue(s.Key, src)
				t.taintLValue(s.Value, src)
			}
		case *ast.CallExpr:
			t.transferCall(s)
		case *ast.ReturnStmt:
			// Attribute returns to the declaration, not to an enclosing
			// function literal: a closure's return value is not the
			// host's. (Closure results flow through the variable the
			// literal is assigned to only when called at an in-package
			// site we can resolve, which resolve() cannot; the
			// conservative external-call rule covers those calls.)
			if enclosesReturn(node.decl.Body, s) {
				t.transferReturn(node, s)
			}
		}
		return true
	})
}

// transferReturn propagates tainted results into the function's
// per-index return state.
func (t *taintEngine) transferReturn(node *funcNode, s *ast.ReturnStmt) {
	sig, ok := node.obj.Type().(*types.Signature)
	if !ok {
		return
	}
	n := sig.Results().Len()
	switch {
	case len(s.Results) == n:
		for i, res := range s.Results {
			if src := t.ExprTaint(res); src != nil {
				t.taintReturn(node, i, n, src)
			}
		}
	case len(s.Results) == 1 && n > 1:
		// return f() pass-through of a multi-result call.
		if call, ok := ast.Unparen(s.Results[0]).(*ast.CallExpr); ok {
			if callee := t.cg.resolve(t.pass, call); callee != nil {
				for i, src := range t.ret[callee] {
					if src != nil {
						t.taintReturn(node, i, n, src)
					}
				}
				return
			}
		}
		if src := t.ExprTaint(s.Results[0]); src != nil {
			for i := 0; i < n; i++ {
				t.taintReturn(node, i, n, src)
			}
		}
	case len(s.Results) == 0 && n > 0:
		// Naked return: the named result objects carry the taint.
		for i := 0; i < n; i++ {
			if src := t.obj[sig.Results().At(i)]; src != nil {
				t.taintReturn(node, i, n, src)
			}
		}
	}
}

// transferAssign propagates right-hand taint into assignment targets.
func (t *taintEngine) transferAssign(s *ast.AssignStmt) {
	switch {
	case len(s.Lhs) == len(s.Rhs):
		for i := range s.Lhs {
			if src := t.ExprTaint(s.Rhs[i]); src != nil {
				t.taintLValue(s.Lhs[i], src)
			}
		}
	case len(s.Rhs) == 1:
		// x, y := f() — taint flows per result index for an in-package
		// call; an unresolvable multi-value source taints every target.
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if callee := t.cg.resolve(t.pass, call); callee != nil {
				for i, src := range t.ret[callee] {
					if src != nil && i < len(s.Lhs) {
						t.taintLValue(s.Lhs[i], src)
					}
				}
				return
			}
		}
		if src := t.ExprTaint(s.Rhs[0]); src != nil {
			for _, lhs := range s.Lhs {
				t.taintLValue(lhs, src)
			}
		}
	}
}

// transferCall propagates tainted arguments into in-package callee
// parameters.
func (t *taintEngine) transferCall(call *ast.CallExpr) {
	callee := t.cg.resolve(t.pass, call)
	if callee == nil {
		return
	}
	for i, arg := range call.Args {
		if src := t.ExprTaint(arg); src != nil {
			if p := calleeParam(t.pass, &callSite{callee: callee}, i); p != nil {
				t.taintObj(p, src)
			}
		}
	}
}

// taintLValue marks the object behind an assignment target: a variable
// for identifiers, the field object for selector stores (shared across
// instances), the container object for index stores.
func (t *taintEngine) taintLValue(e ast.Expr, src *taintSource) {
	switch lv := ast.Unparen(e).(type) {
	case *ast.Ident:
		t.taintObj(t.pass.TypesInfo.ObjectOf(lv), src)
	case *ast.SelectorExpr:
		t.taintObj(t.pass.TypesInfo.ObjectOf(lv.Sel), src)
	case *ast.IndexExpr:
		t.taintLValue(lv.X, src)
	case *ast.StarExpr:
		t.taintLValue(lv.X, src)
	}
}

func (t *taintEngine) taintObj(obj types.Object, src *taintSource) {
	if obj == nil || obj.Name() == "_" || isErrorType(obj.Type()) {
		return
	}
	if _, ok := t.obj[obj]; ok {
		return
	}
	t.obj[obj] = src
	t.changed = true
}

func (t *taintEngine) taintReturn(node *funcNode, i, n int, src *taintSource) {
	if t.ret[node] == nil {
		t.ret[node] = make([]*taintSource, n)
	}
	if i >= len(t.ret[node]) || t.ret[node][i] != nil {
		return
	}
	sig, _ := node.obj.Type().(*types.Signature)
	if sig != nil && i < sig.Results().Len() && isErrorType(sig.Results().At(i).Type()) {
		return
	}
	t.ret[node][i] = src
	t.changed = true
}

// isErrorType reports whether t is the error interface. Errors are
// status, not payload: `return nil, rr, cell.err` beside a tainted
// runResult must not make every downstream `if err != nil` look
// clock-dependent.
func isErrorType(typ types.Type) bool {
	named, ok := typ.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() == nil && obj.Name() == "error"
}

// ExprTaint reports whether e can evaluate to a source-derived value,
// returning the witness (nil = untainted).
func (t *taintEngine) ExprTaint(e ast.Expr) *taintSource {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return t.obj[t.pass.TypesInfo.ObjectOf(v)]
	case *ast.SelectorExpr:
		return t.obj[t.pass.TypesInfo.ObjectOf(v.Sel)]
	case *ast.CallExpr:
		return t.callTaint(v)
	case *ast.BinaryExpr:
		if src := t.ExprTaint(v.X); src != nil {
			return src
		}
		return t.ExprTaint(v.Y)
	case *ast.UnaryExpr:
		return t.ExprTaint(v.X)
	case *ast.StarExpr:
		return t.ExprTaint(v.X)
	case *ast.IndexExpr:
		if src := t.ExprTaint(v.X); src != nil {
			return src
		}
		return t.ExprTaint(v.Index)
	case *ast.SliceExpr:
		return t.ExprTaint(v.X)
	case *ast.TypeAssertExpr:
		return t.ExprTaint(v.X)
	case *ast.CompositeLit:
		for _, elt := range v.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if src := t.ExprTaint(elt); src != nil {
				return src
			}
		}
	}
	return nil
}

// callTaint classifies a call expression: a source, a resolved
// in-package call with a tainted return, a conversion of a tainted
// operand, or an external call with a tainted operand (conservative
// pass-through).
func (t *taintEngine) callTaint(call *ast.CallExpr) *taintSource {
	if src := t.isSource(call); src != nil {
		return src
	}
	if typ := t.pass.TypesInfo.TypeOf(call); typ != nil && isErrorType(typ) {
		return nil
	}
	if callee := t.cg.resolve(t.pass, call); callee != nil {
		for _, src := range t.ret[callee] {
			if src != nil {
				return src
			}
		}
		return nil
	}
	// External or dynamic call (also covers conversions like
	// int64(tainted)): tainted operands taint the result. The receiver
	// of a method call is an operand too — time.Now().UnixNano() stays
	// tainted through the method chain.
	for _, arg := range call.Args {
		if src := t.ExprTaint(arg); src != nil {
			return src
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// Only treat the selector base as an operand for method calls;
		// pkg.Func(...) has a package name there, never a value.
		if _, isPkg := t.pass.TypesInfo.ObjectOf(baseIdent(sel.X)).(*types.PkgName); !isPkg {
			return t.ExprTaint(sel.X)
		}
	}
	return nil
}

// baseIdent unwraps an expression to its root identifier (nil when the
// root is not a plain identifier).
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// enclosesReturn reports whether ret belongs to body's function itself
// rather than to a nested function literal.
func enclosesReturn(body *ast.BlockStmt, ret *ast.ReturnStmt) bool {
	owned := true
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			// Returns inside the literal belong to the literal.
			if v.Body != nil && v.Body.Pos() <= ret.Pos() && ret.End() <= v.Body.End() {
				owned = false
			}
			return false
		}
		return true
	})
	return owned
}
