package analysis

import (
	"go/ast"
	"go/types"
)

// This file builds the package-closure call graph the interprocedural
// analyzers stand on. The unit of analysis is still one type-checked
// package (the vettool protocol hands us exactly that), so the graph's
// nodes are the package's own function and method declarations and its
// edges are the statically-resolvable calls between them: direct calls
// to package-level functions, method calls whose receiver has a named
// type declared in this package, and calls made from inside function
// literals (attributed to the enclosing declaration — a closure runs
// with its host's context as far as our analyses care). Dynamic calls
// (interface dispatch, function values) have no edge; analyzers that
// need soundness against them must treat missing edges conservatively.

// A funcNode is one declared function or method plus its resolved edges.
type funcNode struct {
	decl *ast.FuncDecl
	obj  *types.Func
	// callees are the in-package calls made (transitively through
	// function literals) inside decl's body, in source order.
	callees []*callSite
	// callers are the sites calling decl from elsewhere in the package.
	callers []*callSite
}

// A callSite is one statically-resolved in-package call.
type callSite struct {
	caller *funcNode
	callee *funcNode
	call   *ast.CallExpr
}

// A callGraph indexes a package's declared functions and the
// statically-resolved calls between them.
type callGraph struct {
	nodes  map[*types.Func]*funcNode
	byDecl map[*ast.FuncDecl]*funcNode
	// order preserves declaration order for deterministic iteration.
	order []*funcNode
}

// buildCallGraph constructs the package-closure call graph for the
// pass's files. Test files are excluded: the analyzers built on the
// graph cover non-test code only.
func buildCallGraph(pass *Pass) *callGraph {
	cg := &callGraph{
		nodes:  map[*types.Func]*funcNode{},
		byDecl: map[*ast.FuncDecl]*funcNode{},
	}
	// First pass: index every declaration so edges can resolve forward
	// references.
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &funcNode{decl: fd, obj: fn}
			cg.nodes[fn] = node
			cg.byDecl[fd] = node
			cg.order = append(cg.order, node)
		}
	}
	// Second pass: resolve call sites. Calls inside function literals
	// belong to the enclosing declaration.
	for _, node := range cg.order {
		if node.decl.Body == nil {
			continue
		}
		caller := node
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := cg.resolve(pass, call)
			if callee == nil {
				return true
			}
			site := &callSite{caller: caller, callee: callee, call: call}
			caller.callees = append(caller.callees, site)
			callee.callers = append(callee.callers, site)
			return true
		})
	}
	return cg
}

// resolve maps a call expression to the in-package declaration it
// invokes, or nil for calls that leave the package (or cannot be
// resolved statically).
func (cg *callGraph) resolve(pass *Pass, call *ast.CallExpr) *funcNode {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return cg.nodes[fn]
}

// calleeParam returns the callee parameter object bound to argument
// index i of site, or nil when the callee is variadic past its fixed
// parameters or the declaration carries no parameter names.
func calleeParam(pass *Pass, site *callSite, i int) types.Object {
	return declParam(pass, site.callee.decl, i)
}

// declParam resolves argument index i to fd's parameter object.
func declParam(pass *Pass, fd *ast.FuncDecl, i int) types.Object {
	params := fd.Type.Params
	if params == nil {
		return nil
	}
	idx := 0
	for _, field := range params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter still occupies a slot
		}
		if i < idx+n {
			if len(field.Names) == 0 {
				return nil
			}
			return pass.TypesInfo.ObjectOf(field.Names[i-idx])
		}
		idx += n
	}
	return nil
}
