package analysis

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Suppression is one standing annotation in the tree: a //simlint:ok
// exemption or a //simlint:replay field marker. The list is the audit
// surface behind `simlint -suppressions`, which regenerates the
// DESIGN.md §8/§9 suppression tables — every exemption is a reviewed
// decision with a stated reason, enumerable on demand.
type Suppression struct {
	// File is the path relative to the walk root, Line the 1-based
	// annotation line.
	File string
	Line int
	// Kind is "ok" or "replay".
	Kind string
	// Analyzer is the suppressed analyzer for Kind "ok"; "-" for replay
	// markers (consumed by checkpointcov).
	Analyzer string
	// Reason is the annotation's mandatory justification text.
	Reason string
}

// ListSuppressions syntactically walks every non-test Go file under
// root (skipping testdata, vendor, and hidden directories) and returns
// its simlint annotations sorted by file and line. It parses comments
// only — no type checking — so it runs anywhere, including on trees
// that do not currently compile.
func ListSuppressions(root string) ([]Suppression, error) {
	var out []Suppression
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			rel = p
		}
		rel = filepath.ToSlash(rel)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				line := fset.Position(c.Pos()).Line
				switch {
				case strings.HasPrefix(text, okPrefix):
					fields := strings.Fields(strings.TrimPrefix(text, okPrefix))
					s := Suppression{File: rel, Line: line, Kind: "ok", Analyzer: "?", Reason: "(missing)"}
					if len(fields) > 0 {
						s.Analyzer = fields[0]
					}
					if len(fields) > 1 {
						s.Reason = strings.Join(fields[1:], " ")
					}
					out = append(out, s)
				case strings.HasPrefix(text, replayPrefix):
					reason := strings.TrimSpace(strings.TrimPrefix(text, replayPrefix))
					if reason == "" {
						reason = "(missing)"
					}
					out = append(out, Suppression{File: rel, Line: line, Kind: "replay", Analyzer: "-", Reason: reason})
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out, nil
}

// FormatSuppressions renders the audit list as the markdown table
// embedded in DESIGN.md.
func FormatSuppressions(sups []Suppression) string {
	var b strings.Builder
	b.WriteString("| Location | Kind | Analyzer | Reason |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, s := range sups {
		loc := s.File + ":" + strconv.Itoa(s.Line)
		b.WriteString("| `" + loc + "` | " + s.Kind + " | `" + s.Analyzer + "` | " + s.Reason + " |\n")
	}
	return b.String()
}
