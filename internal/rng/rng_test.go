package rng

import (
	"math"
	"testing"

	"cloudsuite/internal/sim/checkpoint"
)

func TestDeterministicPerSeed(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
	c := New(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if New(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("nearby seeds look correlated: %d/1000 equal draws", same)
	}
}

func TestBoundsAndPanics(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Int63n(1e12); v < 0 || v >= 1e12 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63 negative: %d", v)
		}
	}
	for _, f := range []func(){
		func() { r.Intn(0) },
		func() { r.Int63n(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("non-positive bound must panic")
				}
			}()
			f()
		}()
	}
}

func TestUniformity(t *testing.T) {
	r := New(1)
	const buckets, draws = 16, 160000
	var hist [buckets]int
	for i := 0; i < draws; i++ {
		hist[r.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for b, n := range hist {
		if math.Abs(float64(n)-want) > want*0.05 {
			t.Fatalf("bucket %d has %d draws, want ~%.0f", b, n, want)
		}
	}
}

// saveHash serializes a stream position and returns its content hash.
func saveHash(r *Rand) [32]byte {
	w := checkpoint.NewWriter()
	r.SaveState(w)
	return w.Snapshot("t").Hash()
}

// TestSaveLoadSaveByteEquality is the round-trip property the live-
// points format rests on: save -> load -> save is byte-identical, and
// the restored stream continues exactly where the saved one stood.
func TestSaveLoadSaveByteEquality(t *testing.T) {
	r := New(99)
	for i := 0; i < 1234; i++ {
		r.Uint64()
	}
	first := saveHash(r)

	w := checkpoint.NewWriter()
	r.SaveState(w)
	fresh := New(0)
	fresh.LoadState(w.Snapshot("t").Reader())
	if got := saveHash(fresh); got != first {
		t.Fatal("save -> load -> save is not byte-identical")
	}
	for i := 0; i < 1000; i++ {
		if fresh.Uint64() != r.Uint64() {
			t.Fatalf("restored stream diverged at draw %d", i)
		}
	}
}

func TestZipfSkewAndRange(t *testing.T) {
	r := New(5)
	z := NewZipf(r, 1.001, 9999)
	const draws = 200000
	counts := map[uint64]int{}
	for i := 0; i < draws; i++ {
		k := z.Next()
		if k > 9999 {
			t.Fatalf("draw %d out of range", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[10] {
		t.Fatalf("distribution not monotonically skewed: c0=%d c1=%d c10=%d",
			counts[0], counts[1], counts[10])
	}
	// Head mass: a Zipf(~1) over 10k keys concentrates heavily up front.
	head := 0
	for k := uint64(0); k < 100; k++ {
		head += counts[k]
	}
	if frac := float64(head) / draws; frac < 0.3 {
		t.Fatalf("head-100 mass %.2f, want >= 0.3", frac)
	}
}

func TestZipfDeterministicThroughRand(t *testing.T) {
	za := NewZipf(New(3), 1.1, 1000)
	zb := NewZipf(New(3), 1.1, 1000)
	for i := 0; i < 1000; i++ {
		if za.Next() != zb.Next() {
			t.Fatalf("equal-seed zipf streams diverged at draw %d", i)
		}
	}
}
