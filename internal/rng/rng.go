// Package rng provides the deterministic random stream used by trace
// emitters and workload models.
//
// It exists because checkpointed live-points need the generator half of
// the machine to be serializable: math/rand.Rand hides its state, so a
// warm image could only re-derive stream positions by replaying the
// workload to the warm point. This Rand exposes SaveState/LoadState
// over the checkpoint Writer/Reader, making the RNG a first-class part
// of the warm-image format (checkpoint format v3).
//
// The core generator is xoshiro256** (Blackman/Vigna): 256 bits of
// state, four uint64 words, equidistributed in 4 dimensions and far
// stronger than the linear-congruential streams these workload models
// statistically need. Seeding runs the 64-bit seed through SplitMix64
// so nearby seeds (thread seeds differ by small offsets) land in
// uncorrelated regions of the state space.
package rng

import (
	"math/bits"

	"cloudsuite/internal/sim/checkpoint"
)

// Rand is a deterministic, serializable random stream. It implements
// the subset of math/rand.Rand the workload models use, with identical
// method contracts (but different streams — swapping the generator
// changes every workload's instruction stream, which is why the
// goldens were regenerated when this package was introduced).
//
// The zero value is not valid; use New.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances x and returns the next SplitMix64 output. It is
// the canonical seeding PRNG for xoshiro-family generators.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from seed. Streams with equal seeds are
// identical; the whole simulation's determinism contract rests on that.
func New(seed int64) *Rand {
	r := &Rand{}
	x := uint64(seed)
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state; SplitMix64 of any
	// seed cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive bound")
	}
	// Unbiased rejection sampling over the top 63 bits.
	max := uint64(1)<<63 - 1
	limit := max - max%uint64(n)
	for {
		v := r.Uint64() >> 1
		if v < limit {
			return int64(v % uint64(n))
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive bound")
	}
	return int(r.Int63n(int64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// SaveState serializes the stream position.
func (r *Rand) SaveState(w *checkpoint.Writer) {
	w.Tag("rng")
	for _, v := range r.s {
		w.U64(v)
	}
}

// LoadState restores a stream position written by SaveState.
func (r *Rand) LoadState(rd *checkpoint.Reader) {
	rd.Expect("rng")
	for i := range r.s {
		r.s[i] = rd.U64()
	}
}
