package rng

import "math"

// Zipf draws uint64 keys in [0, Imax] with probability proportional to
// (1+k)^-S, the skew the YCSB client popularizes for key-value request
// streams. The sampler uses rejection-inversion over the flattened
// distribution function (Hörmann/Derflinger), the same construction
// math/rand uses, so draws cost O(1) with a small rejection rate.
//
// All fields of the sampler are derived once from (S, Imax) and never
// change; the only mutable state of a draw sequence is the underlying
// *Rand, which serializes through its own SaveState. The sampler itself
// therefore needs no checkpoint section.
type Zipf struct {
	rnd *Rand

	exp   float64 // S: the skew exponent, > 1
	imax  float64 // largest key, as float
	oneMQ float64 // 1 - exp
	inv1Q float64 // 1 / (1 - exp)
	hTail float64 // flat CDF at the tail boundary imax+0.5
	hSpan float64 // flat CDF mass between 0.5 and the tail
	guard float64 // acceptance threshold avoiding the h(k+0.5) eval
}

// flat is the integral of the flattened density: (1+x)^(1-q) / (1-q).
func (z *Zipf) flat(x float64) float64 {
	return math.Exp(z.oneMQ*math.Log(1+x)) * z.inv1Q
}

// flatInv inverts flat.
func (z *Zipf) flatInv(y float64) float64 {
	return math.Exp(z.inv1Q*math.Log(z.oneMQ*y)) - 1
}

// NewZipf returns a sampler over [0, imax] with exponent s drawing from
// rnd. It panics if s <= 1 or rnd is nil, mirroring math/rand.NewZipf's
// contract (callers normalize YCSB's 0.99 to just above 1).
func NewZipf(rnd *Rand, s float64, imax uint64) *Zipf {
	if rnd == nil || s <= 1 {
		panic("rng: NewZipf requires a stream and exponent > 1")
	}
	z := &Zipf{rnd: rnd, exp: s, imax: float64(imax)}
	z.oneMQ = 1 - s
	z.inv1Q = 1 / z.oneMQ
	z.hTail = z.flat(z.imax + 0.5)
	z.hSpan = z.flat(0.5) - 1 - z.hTail // -1 == -(1+0)^-q, the k=0 mass
	z.guard = 1 - z.flatInv(z.flat(1.5)-math.Exp(-s*math.Log(2)))
	return z
}

// Next draws the next key.
func (z *Zipf) Next() uint64 {
	for {
		u := z.hTail + z.rnd.Float64()*z.hSpan
		x := z.flatInv(u)
		k := math.Floor(x + 0.5)
		if k-x <= z.guard {
			return uint64(k)
		}
		if u >= z.flat(k+0.5)-math.Exp(-z.exp*math.Log(k+1)) {
			return uint64(k)
		}
	}
}
