package oskern

import (
	"testing"

	"cloudsuite/internal/addrspace"
	"cloudsuite/internal/sim/checkpoint"
	"cloudsuite/internal/trace"
)

// runKernel drains n instructions from a body that uses the kernel.
func runKernel(t *testing.T, n int, body func(k *Kernel, e *trace.Emitter)) []trace.Inst {
	t.Helper()
	k := New(DefaultConfig())
	ul := trace.NewCodeLayout(addrspace.UserCodeBase, 1<<20)
	main := ul.Func("main", 64)
	started := false
	g := trace.NewStepGen(trace.EmitterConfig{Seed: 1}, trace.ProgFunc(func(e *trace.Emitter) bool {
		if !started {
			e.Call(main)
			started = true
		}
		body(k, e)
		return true
	}))
	defer g.Close()
	out := make([]trace.Inst, n)
	got := 0
	for got < n {
		m := g.Next(out[got:])
		if m == 0 {
			break
		}
		got += m
	}
	return out[:got]
}

func kernelShare(insts []trace.Inst) float64 {
	k := 0
	for _, in := range insts {
		if in.Kernel {
			k++
		}
	}
	return float64(k) / float64(len(insts))
}

func TestSendEmitsKernelInstructions(t *testing.T) {
	var conn *Conn
	insts := runKernel(t, 20000, func(k *Kernel, e *trace.Emitter) {
		if conn == nil {
			conn = k.OpenConn()
		}
		k.Send(e, conn, 0x4000_0000, 1460)
	})
	if s := kernelShare(insts); s < 0.95 {
		t.Fatalf("send loop kernel share %.2f, want ~1", s)
	}
	for i, in := range insts {
		if in.Kernel && in.Op != trace.OpBranch && in.PC < addrspace.KernelCodeBase {
			t.Fatalf("inst %d: kernel inst with user PC %#x", i, in.PC)
		}
	}
}

func TestSendSegmentsBySize(t *testing.T) {
	count := func(bytes int) int {
		var conn *Conn
		insts := runKernel(t, 30000, func(k *Kernel, e *trace.Emitter) {
			if conn == nil {
				conn = k.OpenConn()
			}
			k.Send(e, conn, 0x4000_0000, bytes)
		})
		stores := 0
		for _, in := range insts {
			if in.Op == trace.OpStore {
				stores++
			}
		}
		return stores
	}
	small, big := count(100), count(8*1460)
	if big < small*3 {
		t.Fatalf("large sends should store far more: small=%d big=%d", small, big)
	}
}

func TestRecvTouchesUserBuffer(t *testing.T) {
	userBuf := uint64(0x5000_0000)
	var conn *Conn
	insts := runKernel(t, 20000, func(k *Kernel, e *trace.Emitter) {
		if conn == nil {
			conn = k.OpenConn()
		}
		k.Recv(e, conn, userBuf, 1460)
	})
	wrote := false
	for _, in := range insts {
		if in.Op == trace.OpStore && in.Addr >= userBuf && in.Addr < userBuf+1460 {
			wrote = true
		}
	}
	if !wrote {
		t.Fatal("recv never copied into the user buffer")
	}
}

func TestFileReadHitsPageCache(t *testing.T) {
	insts := runKernel(t, 20000, func(k *Kernel, e *trace.Emitter) {
		k.FileRead(e, 7, 4096, 0x6000_0000, 8192)
	})
	kernelLoads := 0
	for _, in := range insts {
		if in.Kernel && in.Op == trace.OpLoad && in.Addr >= addrspace.KernelDataBase {
			kernelLoads++
		}
	}
	if kernelLoads == 0 {
		t.Fatal("file read never touched kernel page-cache data")
	}
}

func TestSkbPoolsArePerCPU(t *testing.T) {
	k := New(DefaultConfig())
	// Connections on different CPUs must never exchange buffers
	// (per-CPU slab caches), while connections on the same CPU recycle
	// the same hot window.
	a, b := k.OpenConnOn(0), k.OpenConnOn(1)
	seen := map[uint64]bool{}
	for i := 0; i < int(a.skbN); i++ {
		seen[a.nextSkb(k)] = true
	}
	for i := 0; i < int(b.skbN); i++ {
		if seen[b.nextSkb(k)] {
			t.Fatal("CPUs share socket buffers")
		}
	}
	c := k.OpenConnOn(0)
	shared := false
	for i := 0; i < int(c.skbN); i++ {
		if seen[c.nextSkb(k)] {
			shared = true
		}
	}
	if !shared {
		t.Fatal("same-CPU connections should recycle the same slab window")
	}
}

func TestConnControlBlocksDisjoint(t *testing.T) {
	k := New(DefaultConfig())
	a, b := k.OpenConn(), k.OpenConn()
	// The generic kernel work walks 6 lines from the hot address; the
	// control blocks must be padded at least that far apart.
	if b.tcb-a.tcb < 384 && a.tcb-b.tcb < 384 {
		t.Fatalf("tcbs too close: %#x %#x", a.tcb, b.tcb)
	}
}

func TestSchedTickIsKernelMode(t *testing.T) {
	insts := runKernel(t, 5000, func(k *Kernel, e *trace.Emitter) {
		k.SchedTick(e, 2)
	})
	if s := kernelShare(insts); s < 0.9 {
		t.Fatalf("sched tick kernel share %.2f", s)
	}
}

func TestFutexWritesLockWord(t *testing.T) {
	lock := uint64(0x7000_0040)
	insts := runKernel(t, 5000, func(k *Kernel, e *trace.Emitter) {
		k.Futex(e, lock)
	})
	wrote := false
	for _, in := range insts {
		if in.Op == trace.OpStore && in.Addr == lock {
			wrote = true
		}
	}
	if !wrote {
		t.Fatal("futex never wrote the lock word")
	}
}

func TestKernelSaveLoadRoundTrip(t *testing.T) {
	cfg := Config{NICs: 2, PageCacheMB: 1}
	k := New(cfg)
	conns := []*Conn{k.OpenConnOn(0), k.OpenConnOn(1)}
	for i, c := range conns {
		for j := 0; j < 5+i; j++ {
			c.nextSkb(k)
			c.calls++
		}
	}
	k.skbNext.Store(17)
	k.ringCur[1].Store(9)

	var w checkpoint.Writer
	k.SaveState(&w)
	for _, c := range conns {
		c.SaveState(&w)
	}
	snap := w.Snapshot("t")

	k2 := New(cfg)
	conns2 := []*Conn{k2.OpenConnOn(0), k2.OpenConnOn(1)}
	rd := snap.Reader()
	k2.LoadState(rd)
	for _, c := range conns2 {
		c.LoadState(rd)
	}
	if err := rd.Err(); err != nil {
		t.Fatalf("load: %v", err)
	}
	if got := k2.connSeq.Load(); got != k.connSeq.Load() {
		t.Fatalf("connSeq %d, want %d", got, k.connSeq.Load())
	}
	if got := k2.skbNext.Load(); got != 17 {
		t.Fatalf("skbNext %d, want 17", got)
	}
	if got := k2.ringCur[1].Load(); got != 9 {
		t.Fatalf("ringCur[1] %d, want 9", got)
	}
	for i := range conns {
		if conns2[i].skbCur != conns[i].skbCur || conns2[i].calls != conns[i].calls {
			t.Fatalf("conn %d cursors not restored", i)
		}
	}
	// A kernel built with different geometry must be rejected.
	k3 := New(Config{NICs: 1, PageCacheMB: 1})
	rd3 := snap.Reader()
	k3.LoadState(rd3)
	if rd3.Err() == nil {
		t.Fatal("ring-count mismatch not detected")
	}
}

func TestExtraCodeWidensSyscallFootprint(t *testing.T) {
	narrow := New(Config{NICs: 1, PageCacheMB: 1})
	wide := New(Config{NICs: 1, PageCacheMB: 1, ExtraCodeKB: 256})
	if wide.fnSyscall.Size <= narrow.fnSyscall.Size {
		t.Fatalf("extra code did not widen syscall entry: %d vs %d",
			wide.fnSyscall.Size, narrow.fnSyscall.Size)
	}
}
