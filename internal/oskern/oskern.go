// Package oskern models the operating-system side of the workloads: a
// kernel with its own code footprint and data structures that workload
// threads enter through syscalls. The paper attributes execution cycles,
// instruction misses, sharing and bandwidth to OS vs application
// (Figures 1, 2, 6, 7); this model is what generates the OS share.
//
// The model concentrates on what the paper observes matters: the network
// subsystem. Sending and receiving data traverses a realistic call chain
// (syscall entry, socket lookup, TCP segmentation, IP, device xmit) with
// per-packet touches of connection control blocks, a shared socket-buffer
// pool, per-device rings, and global statistics — the kernel-side shared
// read-write lines that dominate OS sharing in Figure 6. A page-cache
// file-read path and a scheduler tick are provided for the disk-flavoured
// workloads.
package oskern

import (
	"sync/atomic"

	"cloudsuite/internal/addrspace"
	"cloudsuite/internal/sim/checkpoint"
	"cloudsuite/internal/trace"
)

// Kernel is one simulated operating-system instance, shared by all the
// threads of a workload. The emission helpers are safe for concurrent
// use by multiple emitter goroutines: mutable cursors are atomics and
// all other state is read-only after construction.
type Kernel struct {
	heap *addrspace.Heap

	// Code regions (functions) of the modelled kernel paths.
	fnSyscall   *trace.Func //simlint:ok checkpointcov construction-time code layout
	fnSysRet    *trace.Func //simlint:ok checkpointcov construction-time code layout
	fnSockLook  *trace.Func //simlint:ok checkpointcov construction-time code layout
	fnTCPSend   *trace.Func //simlint:ok checkpointcov construction-time code layout
	fnTCPRecv   *trace.Func //simlint:ok checkpointcov construction-time code layout
	fnIPOut     *trace.Func //simlint:ok checkpointcov construction-time code layout
	fnIPIn      *trace.Func //simlint:ok checkpointcov construction-time code layout
	fnDevXmit   *trace.Func //simlint:ok checkpointcov construction-time code layout
	fnSoftirq   *trace.Func //simlint:ok checkpointcov construction-time code layout
	fnCopy      *trace.Func //simlint:ok checkpointcov construction-time code layout
	fnSkbAlloc  *trace.Func //simlint:ok checkpointcov construction-time code layout
	fnVFSRead   *trace.Func //simlint:ok checkpointcov construction-time code layout
	fnPageCache *trace.Func //simlint:ok checkpointcov construction-time code layout
	fnSched     *trace.Func //simlint:ok checkpointcov construction-time code layout
	fnPageFault *trace.Func //simlint:ok checkpointcov construction-time code layout
	fnSelect    *trace.Func //simlint:ok checkpointcov construction-time code layout
	fnLockPath  *trace.Func //simlint:ok checkpointcov construction-time code layout

	// Shared kernel data.
	skbPool  addrspace.Array //simlint:ok checkpointcov socket-buffer pool geometry, fixed at construction
	skbNext  atomic.Uint64
	rings    []addrspace.Array //simlint:ok checkpointcov construction-time allocation geometry
	ringCur  []atomic.Uint64
	stats    uint64   //simlint:ok checkpointcov construction-time allocation address
	nicTail  []uint64 //simlint:ok checkpointcov construction-time allocation addresses
	sockHash addrspace.Array //simlint:ok checkpointcov construction-time allocation geometry
	runq     addrspace.Array //simlint:ok checkpointcov construction-time allocation geometry
	pgCache  addrspace.Array //simlint:ok checkpointcov construction-time allocation geometry
	pcpu     addrspace.Array //simlint:ok checkpointcov construction-time allocation geometry
	connSeq  atomic.Uint64
}

// SaveState serializes the kernel's mutable cursors and its heap cursor.
// Code layout and the shared data arrays are construction-time state that
// New rebuilds identically (the kernel's construction is deterministic in
// its Config), so only the moving parts are written.
func (k *Kernel) SaveState(w *checkpoint.Writer) {
	w.Tag("oskern")
	w.U64(k.connSeq.Load())
	w.U64(k.skbNext.Load())
	w.U32(uint32(len(k.ringCur)))
	for i := range k.ringCur {
		w.U64(k.ringCur[i].Load())
	}
	k.heap.SaveState(w)
}

// LoadState restores cursors written by SaveState onto a freshly
// constructed kernel with the same Config.
func (k *Kernel) LoadState(rd *checkpoint.Reader) {
	rd.Expect("oskern")
	connSeq := rd.U64()
	skbNext := rd.U64()
	n := int(rd.U32())
	if rd.Err() != nil {
		return
	}
	if n != len(k.ringCur) {
		rd.Failf("oskern: snapshot has %d NIC rings, kernel has %d", n, len(k.ringCur))
		return
	}
	cur := make([]uint64, n)
	for i := range cur {
		cur[i] = rd.U64()
	}
	k.heap.LoadState(rd)
	if rd.Err() != nil {
		return
	}
	k.connSeq.Store(connSeq)
	k.skbNext.Store(skbNext)
	for i := range cur {
		k.ringCur[i].Store(cur[i])
	}
}

// Config scales the kernel model.
type Config struct {
	// NICs is the number of network devices (the measured machine used
	// two gigabit NICs for bandwidth-heavy workloads).
	NICs int
	// PageCacheMB sizes the page cache backing file reads.
	PageCacheMB int
	// ExtraCodeKB adds additional kernel text exercised per syscall,
	// modelling workloads that use wider kernel functionality
	// (traditional databases exercise more of the kernel than scale-out
	// network paths; Section 4.1).
	ExtraCodeKB int
}

// DefaultConfig returns a kernel scaled for the scale-out workloads.
func DefaultConfig() Config { return Config{NICs: 2, PageCacheMB: 16} }

// Conn is one network connection's kernel state.
type Conn struct {
	tcb    uint64 //simlint:ok checkpointcov TCP control block address, construction-time allocation
	sock   uint64 //simlint:ok checkpointcov socket struct address, construction-time allocation
	bucket uint64 //simlint:ok checkpointcov hash bucket the lookup chases through, construction-time allocation
	skbLo  uint64 //simlint:ok checkpointcov private skb-pool window (per-CPU-cache-like), construction-time placement
	skbN   uint64 //simlint:ok checkpointcov construction-time window size
	skbCur uint64
	pcpu   uint64 //simlint:ok checkpointcov per-CPU statistics lines (flushed to globals rarely), construction-time allocation
	calls  uint64
}

// SaveState serializes the connection's moving cursors. The control-block
// addresses are construction-time allocations that OpenConnOn reproduces
// when the owning thread is rebuilt in the same order.
func (c *Conn) SaveState(w *checkpoint.Writer) {
	w.Tag("conn")
	w.U64(c.skbCur)
	w.U64(c.calls)
}

// LoadState restores cursors written by SaveState.
func (c *Conn) LoadState(rd *checkpoint.Reader) {
	rd.Expect("conn")
	c.skbCur = rd.U64()
	c.calls = rd.U64()
}

// New builds a kernel instance.
func New(cfg Config) *Kernel {
	if cfg.NICs <= 0 {
		cfg.NICs = 2
	}
	if cfg.PageCacheMB <= 0 {
		cfg.PageCacheMB = 16
	}
	code := trace.NewCodeLayout(addrspace.KernelCodeBase, addrspace.KernelCodeSize)
	k := &Kernel{heap: addrspace.NewKernelHeap()}

	k.fnSyscall = code.Func("syscall_entry", 160)
	k.fnSysRet = code.Func("syscall_return", 110)
	k.fnSockLook = code.Func("sock_lookup", 220)
	k.fnTCPSend = code.Func("tcp_sendmsg", 900)
	k.fnTCPRecv = code.Func("tcp_recvmsg", 850)
	k.fnIPOut = code.Func("ip_output", 450)
	k.fnIPIn = code.Func("ip_input", 420)
	k.fnDevXmit = code.Func("dev_queue_xmit", 380)
	k.fnSoftirq = code.Func("net_rx_softirq", 700)
	k.fnCopy = code.Func("copy_user_generic", 90)
	k.fnSkbAlloc = code.Func("skb_alloc", 240)
	k.fnVFSRead = code.Func("vfs_read", 600)
	k.fnPageCache = code.Func("page_cache_lookup", 300)
	k.fnSched = code.Func("schedule_tick", 500)
	k.fnPageFault = code.Func("handle_page_fault", 450)
	k.fnSelect = code.Func("sys_epoll_wait", 420)
	k.fnLockPath = code.Func("futex_path", 260)
	if cfg.ExtraCodeKB > 0 {
		// Extra kernel surface is modelled as a wider syscall-entry
		// dispatch region that fetch walks through.
		k.fnSyscall = code.Func("syscall_entry_wide", cfg.ExtraCodeKB*1024/trace.InstBytes)
	}

	k.skbPool = addrspace.NewArray(k.heap, 1024, 2048) // per-CPU slab windows
	k.pcpu = addrspace.NewArray(k.heap, 64, 512)
	k.sockHash = addrspace.NewArray(k.heap, 16384, 64)          // hash buckets
	k.runq = addrspace.NewArray(k.heap, 64, 512)                // per-core runqueues (padded)
	k.stats = k.heap.AllocLines(256)                            // global stats lines
	pages := uint64(cfg.PageCacheMB) << 20 / addrspace.PageSize // page cache
	k.pgCache = addrspace.NewArray(k.heap, pages, addrspace.PageSize)
	k.rings = make([]addrspace.Array, cfg.NICs)
	k.ringCur = make([]atomic.Uint64, cfg.NICs)
	k.nicTail = make([]uint64, cfg.NICs)
	for i := range k.rings {
		k.rings[i] = addrspace.NewArray(k.heap, 512, 16)
		k.nicTail[i] = k.heap.AllocLines(64)
	}
	return k
}

// OpenConn allocates kernel state for one connection, recycling socket
// buffers from CPU pool 0. Prefer OpenConnOn for multi-threaded
// workloads.
func (k *Kernel) OpenConn() *Conn { return k.OpenConnOn(0) }

// OpenConnOn allocates kernel state for one connection whose syscalls
// run on the given CPU (software thread). Socket buffers recycle from a
// small per-CPU slab window, like the kernel's per-CPU caches: the hot
// set stays cache-resident and buffers never migrate between cores.
func (k *Kernel) OpenConnOn(cpu int) *Conn {
	id := k.connSeq.Add(1)
	const win = 16
	lo := (uint64(cpu) * win) % k.skbPool.Len
	return &Conn{
		// Control blocks are padded to cover the span the generic kernel
		// work walks (6 lines), so adjacent connections never overlap.
		tcb:    k.heap.AllocLines(512),
		sock:   k.heap.AllocLines(512),
		bucket: k.sockHash.At(id % k.sockHash.Len),
		skbLo:  lo,
		skbN:   win,
		pcpu:   k.pcpuStats(cpu),
	}
}

// pcpuStats returns the per-CPU statistics block for cpu.
func (k *Kernel) pcpuStats(cpu int) uint64 {
	return k.pcpu.At(uint64(cpu) % k.pcpu.Len)
}

// nextSkb returns the next socket buffer of the connection's private
// window. Real kernels recycle buffers from per-CPU caches, so cross-
// core skb sharing is rare; modelling it that way keeps the kernel's
// read-write sharing dominated by rings and statistics, as observed.
func (c *Conn) nextSkb(k *Kernel) uint64 {
	c.skbCur++
	return k.skbPool.At(c.skbLo + c.skbCur%c.skbN)
}

// work emits n instructions of generic kernel compute: dependent ALU
// work sprinkled with stack and control-structure accesses.
func (k *Kernel) work(e *trace.Emitter, n int, hot uint64) trace.Val {
	v := trace.NoVal
	for n > 0 {
		step := 12
		if step > n {
			step = n
		}
		v = e.ALUChain(step-2, v)
		v = e.Load(hot+uint64(n%6)*64, 8, v, false)
		n -= step
	}
	return v
}

// copyLines emits a line-granular memory copy of n bytes from src to
// dst, the kernel's copy_user path.
func (k *Kernel) copyLines(e *trace.Emitter, src, dst uint64, n int) {
	e.InFunc(k.fnCopy, func() {
		lines := (n + 63) / 64
		for i := 0; i < lines; i++ {
			off := uint64(i) * 64
			v := e.Load(src+off, 64, trace.NoVal, false)
			e.Store(dst+off, 64, v, trace.NoVal)
		}
	})
}

// Send emits the kernel path of sending n bytes on conn from the user
// buffer at userBuf: syscall entry, socket lookup, TCP/IP processing,
// skb allocation from the shared pool, the data copy, device-ring
// insertion and global statistics updates.
func (k *Kernel) Send(e *trace.Emitter, c *Conn, userBuf uint64, n int) {
	e.InKernel(k.fnSyscall, func() {
		k.work(e, 120, c.sock)
		e.InFunc(k.fnSockLook, func() {
			b := e.Load(c.bucket, 8, trace.NoVal, false)
			s := e.Load(c.sock, 8, b, true) // pointer chase to socket
			e.ALUChain(8, s)
		})
		e.InFunc(k.fnTCPSend, func() {
			t := e.Load(c.tcb, 8, trace.NoVal, false)
			k.work(e, 350, c.tcb)
			e.Store(c.tcb+64, 8, t, trace.NoVal) // advance send seq

			for seg := 0; seg < (n+1459)/1460; seg++ {
				segBytes := n - seg*1460
				if segBytes > 1460 {
					segBytes = 1460
				}
				var skb uint64
				e.InFunc(k.fnSkbAlloc, func() {
					skb = c.nextSkb(k)
					h := e.Load(skb, 8, trace.NoVal, false)
					e.Store(skb+8, 8, h, trace.NoVal)
					e.ALUChain(10, h)
				})
				k.copyLines(e, userBuf+uint64(seg)*1460, skb+64, segBytes)
				e.InFunc(k.fnIPOut, func() {
					k.work(e, 160, skb)
					e.Store(skb+16, 8, trace.NoVal, trace.NoVal)
				})
				e.InFunc(k.fnDevXmit, func() {
					// Multi-queue NIC: each connection hashes to a TX queue
					// region, so descriptor lines rarely bounce between
					// cores (receive-side scaling, Section 3).
					nic := int(c.tcb>>6) % len(k.rings)
					slot := ((c.tcb*0x9e3779b97f4a7c15)>>40 + c.skbCur*4) % k.rings[nic].Len
					d := e.Load(k.rings[nic].At(slot), 8, trace.NoVal, false)
					e.Store(k.rings[nic].At(slot), 16, d, trace.NoVal)
					k.work(e, 90, skb)
				})
			}
		})
		e.InFunc(k.fnSysRet, func() { k.work(e, 70, c.sock) })
	})
}

// Recv emits the kernel path of receiving n bytes on conn into userBuf:
// softirq protocol processing on the device ring, socket demux, and the
// copy to user space.
func (k *Kernel) Recv(e *trace.Emitter, c *Conn, userBuf uint64, n int) {
	e.InKernel(k.fnSoftirq, func() {
		nic := int(c.tcb>>6) % len(k.rings)
		slot := ((c.tcb*0x9e3779b97f4a7c15)>>40 + c.skbCur*4) % k.rings[nic].Len
		d := e.Load(k.rings[nic].At(slot), 16, trace.NoVal, false)
		e.ALUChain(12, d)
		e.InFunc(k.fnIPIn, func() { k.work(e, 150, c.sock) })
		e.InFunc(k.fnSockLook, func() {
			b := e.Load(c.bucket, 8, trace.NoVal, false)
			s := e.Load(c.sock, 8, b, true)
			e.ALUChain(8, s)
		})
	})
	e.InKernel(k.fnSyscall, func() {
		k.work(e, 110, c.sock)
		e.InFunc(k.fnTCPRecv, func() {
			t := e.Load(c.tcb, 8, trace.NoVal, false)
			k.work(e, 300, c.tcb)
			e.Store(c.tcb+128, 8, t, trace.NoVal)
			for seg := 0; seg < (n+1459)/1460; seg++ {
				segBytes := n - seg*1460
				if segBytes > 1460 {
					segBytes = 1460
				}
				skb := c.nextSkb(k)
				k.copyLines(e, skb+64, userBuf+uint64(seg)*1460, segBytes)
			}
			c.calls++
			pv := e.Load(c.pcpu+64, 8, trace.NoVal, false)
			e.Store(c.pcpu+64, 8, pv, trace.NoVal)
			if c.calls%24 == 0 {
				sv := e.Load(k.stats+128, 8, trace.NoVal, false)
				e.Store(k.stats+128, 8, sv, trace.NoVal)
			}
		})
		e.InFunc(k.fnSysRet, func() { k.work(e, 70, c.sock) })
	})
}

// Poll emits an epoll_wait-style readiness check.
func (k *Kernel) Poll(e *trace.Emitter, c *Conn) {
	e.InKernel(k.fnSelect, func() {
		k.work(e, 180, c.sock)
		v := e.Load(c.sock+64, 8, trace.NoVal, false)
		e.ALUChain(6, v)
	})
}

// FileRead emits the page-cache read path for n bytes at offset off of
// a file, copying into userBuf. The experimental setup backs storage
// with remote RAM disks (Section 3.4), so reads always hit the page
// cache; cache lines still miss if the page fell out of the CPU caches.
func (k *Kernel) FileRead(e *trace.Emitter, fileID uint64, off uint64, userBuf uint64, n int) {
	e.InKernel(k.fnSyscall, func() {
		inode := k.sockHash.At(fileID % k.sockHash.Len)
		k.work(e, 100, inode)
		e.InFunc(k.fnVFSRead, func() {
			k.work(e, 220, inode)
			read := 0
			for read < n {
				pageIdx := (fileID*131 + (off+uint64(read))/addrspace.PageSize) % k.pgCache.Len
				page := k.pgCache.At(pageIdx)
				e.InFunc(k.fnPageCache, func() {
					r := e.Load(page, 8, trace.NoVal, false)
					e.ALUChain(12, r)
				})
				chunk := n - read
				if int(addrspace.PageSize) < chunk {
					chunk = int(addrspace.PageSize)
				}
				k.copyLines(e, page+(off+uint64(read))%addrspace.PageSize, userBuf+uint64(read), chunk)
				read += chunk
			}
		})
		e.InFunc(k.fnSysRet, func() { k.work(e, 70, inode) })
	})
}

// SchedTick emits one timer-interrupt/scheduler pass on core's runqueue.
func (k *Kernel) SchedTick(e *trace.Emitter, core int) {
	e.InKernel(k.fnSched, func() {
		rq := k.runq.At(uint64(core) % k.runq.Len)
		v := e.Load(rq, 8, trace.NoVal, false)
		k.work(e, 260, rq)
		e.Store(rq+8, 8, v, trace.NoVal)
	})
}

// Futex emits a contended-lock kernel path on the given lock address,
// used by the lock-heavy traditional database workloads.
func (k *Kernel) Futex(e *trace.Emitter, lockAddr uint64) {
	e.InKernel(k.fnLockPath, func() {
		v := e.Load(lockAddr, 8, trace.NoVal, false)
		e.Store(lockAddr, 8, v, trace.NoVal)
		k.work(e, 140, lockAddr)
	})
}

// PageFault emits a minor page-fault handling path.
func (k *Kernel) PageFault(e *trace.Emitter, addr uint64) {
	e.InKernel(k.fnPageFault, func() {
		k.work(e, 320, addrspace.PageOf(addr))
	})
}
