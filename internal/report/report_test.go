package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := Table{Title: "T", Header: []string{"a", "metric"}}
	tab.Add("row-one", "1.5")
	tab.AddF("row-two", "%.2f", 3.14159)
	var b strings.Builder
	tab.Render(&b)
	out := b.String()
	for _, want := range []string{"T", "row-one", "row-two", "3.14", "metric"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns align: the header separator row must exist.
	if !strings.Contains(out, "---") {
		t.Error("no separator row")
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); got != "#####" {
		t.Errorf("Bar = %q", got)
	}
	if got := Bar(20, 10, 10); len(got) != 10 {
		t.Errorf("Bar overflow not clamped: %q", got)
	}
	if Bar(1, 0, 10) != "" || Bar(-1, 10, 10) != "" {
		t.Error("degenerate inputs must render empty")
	}
}

func TestStackedBar(t *testing.T) {
	got := StackedBar(10, 10, Segment{Val: 5, Glyph: 'A'}, Segment{Val: 5, Glyph: 'B'})
	if got != "AAAAABBBBB" {
		t.Errorf("StackedBar = %q", got)
	}
	over := StackedBar(10, 10, Segment{Val: 8, Glyph: 'A'}, Segment{Val: 8, Glyph: 'B'})
	if len(over) > 10 {
		t.Errorf("stacked bar exceeds width: %q", over)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.123) != "12.3%" {
		t.Errorf("Pct = %q", Pct(0.123))
	}
	if F2(1.234) != "1.23" || F1(1.26) != "1.3" {
		t.Errorf("float formatters wrong: %q %q", F2(1.234), F1(1.26))
	}
}
