// Package report renders experiment results as aligned text tables and
// ASCII bar charts, the output format of the figure-regeneration
// harness (cmd/figures and the benchmark suite).
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table renders rows of cells with a header, aligning columns.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends one row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddF appends one row with a label and formatted float cells.
func (t *Table) AddF(label string, format string, vals ...float64) {
	cells := []string{label}
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf(format, v))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
		fmt.Fprintf(w, "%s\n", strings.Repeat("=", len(t.Title)))
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len(c)
			if i == 0 {
				b.WriteString(c + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		fmt.Fprintln(w, b.String())
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// Bar renders a horizontal ASCII bar of val against max using width
// characters.
func Bar(val, max float64, width int) string {
	if max <= 0 || val < 0 {
		return ""
	}
	n := int(val / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// StackedBar renders segments (each with a rune) against max.
func StackedBar(max float64, width int, segs ...Segment) string {
	if max <= 0 {
		return ""
	}
	var b strings.Builder
	used := 0
	for _, s := range segs {
		n := int(s.Val / max * float64(width))
		if used+n > width {
			n = width - used
		}
		if n < 0 {
			n = 0
		}
		b.WriteString(strings.Repeat(string(s.Glyph), n))
		used += n
	}
	return b.String()
}

// Segment is one component of a stacked bar.
type Segment struct {
	Val   float64
	Glyph rune
}

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// PM formats a 95% CI half-width as a ± annotation ("±0.03").
func PM(half float64) string { return fmt.Sprintf("±%.2f", half) }

// PMPct formats a fractional 95% CI half-width as a ± percentage
// ("±1.5%").
func PMPct(half float64) string { return fmt.Sprintf("±%.1f%%", 100*half) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// F1 formats a float with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }
