// Package checkpoint implements warm-state snapshots of the simulated
// machine: a versioned binary container that serializes the complete
// microarchitectural state at the warm->measure boundary — cache arrays
// with directory state, TLBs, branch predictors, prefetcher state, DRAM
// controller queues and counters, and per-core performance counters —
// so parameter sweeps over the same warmed workload can fork from one
// warm image instead of re-executing functional warming from a cold
// machine (checkpointed sampling in the SMARTS/TurboSMARTS live-points
// tradition).
//
// Since format v3 a warm image also carries the generator half of the
// machine when the workload supports it (the "live" flavor, in the
// live-points sense): emitter RNG and call-stack state, per-thread
// program state, the workload's shared structures, and the engine's
// undrained fetch buffers. Restoring a live image is a pure load — no
// part of the warmup instruction stream is re-executed. Workloads
// without save support (the traditional-benchmark proxies) fall back
// to the "replay" flavor: fresh generators fast-forward through the
// identical pull sequence, re-deriving workload state by replay while
// the machine state loads from the snapshot (see
// engine.RunConfig.Restore). The differential test harness proves both
// compositions byte-identical to a cold run.
//
// Container layout (all little-endian):
//
//	magic   [8]byte  "CSCKPT01"
//	version uint32   format version (Version)
//	keyLen  uint32   followed by the identity key string
//	paylen  uint64   payload length in bytes
//	hash    [32]byte SHA-256 of the payload
//	payload []byte   tagged component sections
//
// The payload is a sequence of sections written by the component
// Save/Load methods through Writer and Reader. Every section starts
// with a length-prefixed tag string and every fixed-size block is
// length-prefixed, so a snapshot taken under a different machine
// geometry (or a stale format) fails to decode with a clear error
// instead of silently corrupting state. The SHA-256 content hash makes
// on-disk integrity checkable without decoding.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Version is the snapshot format version. Bump it whenever any
// component's serialized layout changes; snapshots of other versions
// are rejected at decode time (a disk cache then simply re-warms).
//
// History: v1 stored the LLC directory's sharers as a flat uint32
// bitmask; v2 stores the sparse sharer-set encoding that tracks up to
// 256 cores; v3 appends the generator section (live/replay flavor
// byte, workload shared state, per-thread generator state, residual
// fetch buffers) so live images restore by a pure load.
const Version = 3

//simlint:ok globalrand write-once file-format magic, read-only after initialization
var magic = [8]byte{'C', 'S', 'C', 'K', 'P', 'T', '0', '1'}

// Snapshot is one immutable warm-state image: a version, an identity
// key naming the warm-relevant configuration it was taken under, the
// serialized payload, and the payload's SHA-256 content hash.
type Snapshot struct {
	version uint32
	key     string
	payload []byte
	hash    [32]byte
}

// Key returns the identity string the snapshot was saved under.
func (s *Snapshot) Key() string { return s.key }

// Hash returns the SHA-256 content hash of the payload.
func (s *Snapshot) Hash() [32]byte { return s.hash }

// HashString returns the content hash as lowercase hex.
func (s *Snapshot) HashString() string { return hex.EncodeToString(s.hash[:]) }

// Size returns the payload size in bytes.
func (s *Snapshot) Size() int { return len(s.payload) }

// Writer accumulates a snapshot payload. All integers are encoded
// little-endian; writes cannot fail (the buffer grows in memory).
type Writer struct {
	buf bytes.Buffer
	tmp [8]byte
}

// NewWriter returns an empty payload writer.
func NewWriter() *Writer { return &Writer{} }

// Tag starts a named section. Reader.Expect verifies tags in order, so
// a mis-sequenced or mis-shaped decode fails at the first boundary.
func (w *Writer) Tag(name string) {
	w.U32(uint32(len(name)))
	w.buf.WriteString(name)
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.buf.WriteByte(v) }

// Bool writes a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U16 writes a uint16.
func (w *Writer) U16(v uint16) {
	binary.LittleEndian.PutUint16(w.tmp[:2], v)
	w.buf.Write(w.tmp[:2])
}

// U32 writes a uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.tmp[:4], v)
	w.buf.Write(w.tmp[:4])
}

// U64 writes a uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.tmp[:8], v)
	w.buf.Write(w.tmp[:8])
}

// I64 writes an int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 writes a float64 as its IEEE-754 bit pattern. Bit-exact round
// trips matter here: generator state (branch-entropy overrides, Zipf
// parameters) feeds back into instruction streams, so even one ULP of
// drift would break restore determinism.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// U64s writes a length-prefixed []uint64.
func (w *Writer) U64s(vs []uint64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.U64(v)
	}
}

// I64s writes a length-prefixed []int64.
func (w *Writer) I64s(vs []int64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.I64(v)
	}
}

// U8s writes a length-prefixed byte slice.
func (w *Writer) U8s(vs []uint8) {
	w.U32(uint32(len(vs)))
	w.buf.Write(vs)
}

// Struct writes v (a value or slice of fixed-size types, per
// encoding/binary) as a length-prefixed little-endian block. It panics
// on a non-fixed-size type: that is a programming error, not a runtime
// condition. Intended for small bookkeeping structs; hot arrays should
// be hand-encoded with the scalar helpers.
func (w *Writer) Struct(v any) {
	var b bytes.Buffer
	if err := binary.Write(&b, binary.LittleEndian, v); err != nil {
		panic(fmt.Sprintf("checkpoint: non-serializable type %T: %v", v, err))
	}
	w.U32(uint32(b.Len()))
	w.buf.Write(b.Bytes())
}

// Snapshot finalizes the payload under the given identity key.
func (w *Writer) Snapshot(key string) *Snapshot {
	payload := append([]byte(nil), w.buf.Bytes()...)
	return &Snapshot{
		version: Version,
		key:     key,
		payload: payload,
		hash:    sha256.Sum256(payload),
	}
}

// Reader decodes a snapshot payload. The first error sticks: subsequent
// reads return zero values, so component Load methods can decode
// straight-line and check Err once.
type Reader struct {
	buf []byte
	pos int
	err error
}

// Reader returns a payload reader positioned at the start.
func (s *Snapshot) Reader() *Reader { return &Reader{buf: s.payload} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Failf records a semantic decode failure (e.g. a geometry mismatch a
// component detects itself). Like internal errors, the first one
// sticks.
func (r *Reader) Failf(format string, args ...any) { r.fail(format, args...) }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("checkpoint: "+format, args...)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.pos+n > len(r.buf) {
		r.fail("truncated payload (want %d bytes at offset %d of %d)", n, r.pos, len(r.buf))
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// Expect consumes a section tag and fails unless it matches name.
func (r *Reader) Expect(name string) {
	n := int(r.U32())
	b := r.take(n)
	if r.err == nil && string(b) != name {
		r.fail("section tag mismatch: have %q, want %q", string(b), name)
	}
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U16 reads a uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64 written by Writer.F64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// U64s reads a length-prefixed []uint64 into dst, failing on a length
// mismatch (the snapshot was taken under a different geometry).
func (r *Reader) U64s(dst []uint64) {
	n := int(r.U32())
	if r.err == nil && n != len(dst) {
		r.fail("slice length mismatch: snapshot has %d elements, state wants %d", n, len(dst))
		return
	}
	for i := range dst {
		dst[i] = r.U64()
	}
}

// I64s reads a length-prefixed []int64 into dst.
func (r *Reader) I64s(dst []int64) {
	n := int(r.U32())
	if r.err == nil && n != len(dst) {
		r.fail("slice length mismatch: snapshot has %d elements, state wants %d", n, len(dst))
		return
	}
	for i := range dst {
		dst[i] = r.I64()
	}
}

// U8s reads a length-prefixed byte slice into dst.
func (r *Reader) U8s(dst []uint8) {
	n := int(r.U32())
	if r.err == nil && n != len(dst) {
		r.fail("slice length mismatch: snapshot has %d bytes, state wants %d", n, len(dst))
		return
	}
	copy(dst, r.take(len(dst)))
}

// Struct reads a length-prefixed block written by Writer.Struct into v
// (a pointer or slice of fixed-size types), failing on a size mismatch.
func (r *Reader) Struct(v any) {
	n := int(r.U32())
	want := binary.Size(v)
	if r.err == nil && n != want {
		r.fail("struct size mismatch for %T: snapshot has %d bytes, state wants %d", v, n, want)
		return
	}
	b := r.take(n)
	if b == nil {
		return
	}
	if err := binary.Read(bytes.NewReader(b), binary.LittleEndian, v); err != nil {
		r.fail("decoding %T: %v", v, err)
	}
}

// --- container encoding ---------------------------------------------------

// Encode writes the snapshot container (header, key, hash, payload).
func (s *Snapshot) Encode(w io.Writer) error {
	var hdr bytes.Buffer
	hdr.Write(magic[:])
	var u32 [4]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint32(u32[:], s.version)
	hdr.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(len(s.key)))
	hdr.Write(u32[:])
	hdr.WriteString(s.key)
	binary.LittleEndian.PutUint64(u64[:], uint64(len(s.payload)))
	hdr.Write(u64[:])
	hdr.Write(s.hash[:])
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return err
	}
	_, err := w.Write(s.payload)
	return err
}

// Decode reads a snapshot container, verifying magic, version, and the
// SHA-256 content hash.
func Decode(r io.Reader) (*Snapshot, error) {
	var m [8]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", m[:])
	}
	var u32 [4]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: reading version: %w", err)
	}
	version := binary.LittleEndian.Uint32(u32[:])
	if version != Version {
		return nil, fmt.Errorf("checkpoint: version %d not supported (want %d)", version, Version)
	}
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: reading key length: %w", err)
	}
	keyLen := binary.LittleEndian.Uint32(u32[:])
	const maxKeyLen = 1 << 20
	if keyLen > maxKeyLen {
		return nil, fmt.Errorf("checkpoint: key length %d exceeds limit", keyLen)
	}
	key := make([]byte, keyLen)
	if _, err := io.ReadFull(r, key); err != nil {
		return nil, fmt.Errorf("checkpoint: reading key: %w", err)
	}
	var u64 [8]byte
	if _, err := io.ReadFull(r, u64[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: reading payload length: %w", err)
	}
	payLen := binary.LittleEndian.Uint64(u64[:])
	const maxPayload = 1 << 32
	if payLen > maxPayload {
		return nil, fmt.Errorf("checkpoint: payload length %d exceeds limit", payLen)
	}
	var hash [32]byte
	if _, err := io.ReadFull(r, hash[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: reading hash: %w", err)
	}
	payload := make([]byte, payLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("checkpoint: reading payload: %w", err)
	}
	if got := sha256.Sum256(payload); got != hash {
		return nil, fmt.Errorf("checkpoint: content hash mismatch (snapshot corrupt)")
	}
	return &Snapshot{version: version, key: string(key), payload: payload, hash: hash}, nil
}

// SaveFile writes the snapshot to path atomically and durably: the
// temp file is fsynced before the rename and the directory after it,
// so concurrent readers never observe a torn image and a crash right
// after SaveFile returns cannot leave a zero-length or half-written
// file under the final name (which a later run would have to detect
// and repair).
func (s *Snapshot) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: creating temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := s.Encode(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Persist the rename itself. Directory fsync is best-effort on
	// filesystems that do not support it; the image contents are already
	// durable either way.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadFile reads and verifies a snapshot from path.
func LoadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
