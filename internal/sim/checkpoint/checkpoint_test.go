package checkpoint

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func sampleSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	w := NewWriter()
	w.Tag("head")
	w.U8(7)
	w.Bool(true)
	w.U16(0xBEEF)
	w.U32(0xDEADBEEF)
	w.U64(1<<63 + 5)
	w.I64(-42)
	w.U64s([]uint64{1, 2, 3})
	w.I64s([]int64{-1, 0, 9})
	w.U8s([]byte{0xAA, 0xBB})
	w.Tag("tail")
	return w.Snapshot("bench=Test sockets=2")
}

func TestWriterReaderRoundTrip(t *testing.T) {
	s := sampleSnapshot(t)
	r := s.Reader()
	r.Expect("head")
	if v := r.U8(); v != 7 {
		t.Fatalf("U8 = %d", v)
	}
	if !r.Bool() {
		t.Fatal("Bool = false")
	}
	if v := r.U16(); v != 0xBEEF {
		t.Fatalf("U16 = %#x", v)
	}
	if v := r.U32(); v != 0xDEADBEEF {
		t.Fatalf("U32 = %#x", v)
	}
	if v := r.U64(); v != 1<<63+5 {
		t.Fatalf("U64 = %d", v)
	}
	if v := r.I64(); v != -42 {
		t.Fatalf("I64 = %d", v)
	}
	u := make([]uint64, 3)
	r.U64s(u)
	if u[2] != 3 {
		t.Fatalf("U64s = %v", u)
	}
	i := make([]int64, 3)
	r.I64s(i)
	if i[0] != -1 || i[2] != 9 {
		t.Fatalf("I64s = %v", i)
	}
	b := make([]byte, 2)
	r.U8s(b)
	if b[0] != 0xAA || b[1] != 0xBB {
		t.Fatalf("U8s = %v", b)
	}
	r.Expect("tail")
	if err := r.Err(); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

func TestReaderTagMismatch(t *testing.T) {
	s := sampleSnapshot(t)
	r := s.Reader()
	r.Expect("wrong")
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "tag mismatch") {
		t.Fatalf("want tag mismatch error, got %v", err)
	}
	// The first error sticks; later reads stay inert.
	if v := r.U64(); v != 0 {
		t.Fatalf("read after error = %d, want 0", v)
	}
}

func TestReaderLengthMismatch(t *testing.T) {
	w := NewWriter()
	w.U64s([]uint64{1, 2, 3})
	s := w.Snapshot("k")
	r := s.Reader()
	dst := make([]uint64, 4)
	r.U64s(dst)
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "length mismatch") {
		t.Fatalf("want length mismatch error, got %v", err)
	}
}

func TestReaderTruncation(t *testing.T) {
	w := NewWriter()
	w.U32(1)
	s := w.Snapshot("k")
	r := s.Reader()
	r.U64()
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("want truncation error, got %v", err)
	}
}

func TestEncodeDecode(t *testing.T) {
	s := sampleSnapshot(t)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Key() != s.Key() {
		t.Fatalf("key = %q, want %q", d.Key(), s.Key())
	}
	if d.Hash() != s.Hash() {
		t.Fatalf("hash mismatch after decode")
	}
	if d.Size() != s.Size() {
		t.Fatalf("size = %d, want %d", d.Size(), s.Size())
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	s := sampleSnapshot(t)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xFF // flip a payload byte
	if _, err := Decode(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "hash mismatch") {
		t.Fatalf("want hash mismatch, got %v", err)
	}
}

func TestDecodeRejectsBadMagicAndVersion(t *testing.T) {
	s := sampleSnapshot(t)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	raw[0] = 'X'
	if _, err := Decode(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("want magic error, got %v", err)
	}
	raw = append([]byte(nil), buf.Bytes()...)
	raw[8] = 99 // version field
	if _, err := Decode(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	s := sampleSnapshot(t)
	path := filepath.Join(t.TempDir(), "warm.ckpt")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	d, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Key() != s.Key() || d.Hash() != s.Hash() {
		t.Fatal("file round trip altered the snapshot")
	}
}

func TestSnapshotHashIsContentHash(t *testing.T) {
	w1 := NewWriter()
	w1.U64(1)
	w2 := NewWriter()
	w2.U64(1)
	a, b := w1.Snapshot("ka"), w2.Snapshot("kb")
	if a.Hash() != b.Hash() {
		t.Fatal("identical payloads must hash identically (key is not part of the content hash)")
	}
	w3 := NewWriter()
	w3.U64(2)
	if c := w3.Snapshot("ka"); c.Hash() == a.Hash() {
		t.Fatal("different payloads must hash differently")
	}
}
