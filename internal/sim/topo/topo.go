// Package topo models the socket-level interconnect as a point-to-point
// link topology. The cache system uses it to scale cross-socket latency
// with hop distance: the first hop is priced by the cache configuration
// (RemoteHitCycles / RemoteMemCycles, the measured QPI numbers), and
// every additional hop adds a fixed per-hop cost. On one- and
// two-socket machines every remote pair is one hop away under every
// topology, so the generalisation is exactly the original QPI model
// there.
package topo

import "fmt"

// Kind selects the link topology between sockets.
type Kind uint8

const (
	// FullMesh links every socket pair directly (glueless QPI): every
	// remote socket is one hop away regardless of socket count.
	FullMesh Kind = iota
	// Ring links each socket to two neighbours; hop distance is the
	// shorter way around the ring, so the diameter grows with the
	// socket count.
	Ring

	numKinds
)

// Valid reports whether k names a known topology.
func (k Kind) Valid() bool { return k < numKinds }

func (k Kind) String() string {
	switch k {
	case FullMesh:
		return "mesh"
	case Ring:
		return "ring"
	}
	return fmt.Sprintf("topo.Kind(%d)", uint8(k))
}

// ParseKind resolves a topology name as spelled by Kind.String.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "mesh", "fullmesh", "":
		return FullMesh, nil
	case "ring":
		return Ring, nil
	}
	return 0, fmt.Errorf("topo: unknown topology %q (mesh, ring)", name)
}

// Hops returns the link distance from socket a to socket b on a
// machine of the given socket count. Same-socket distance is zero.
func Hops(k Kind, a, b, sockets int) int {
	if a == b {
		return 0
	}
	switch k {
	case Ring:
		d := a - b
		if d < 0 {
			d = -d
		}
		if wrap := sockets - d; wrap < d {
			d = wrap
		}
		return d
	default: // FullMesh and anything unknown: direct link.
		return 1
	}
}

// Diameter returns the largest pairwise hop distance on the machine.
func Diameter(k Kind, sockets int) int {
	if sockets <= 1 {
		return 0
	}
	switch k {
	case Ring:
		return sockets / 2
	default:
		return 1
	}
}
