package topo

import "testing"

func TestHops(t *testing.T) {
	cases := []struct {
		kind    Kind
		a, b    int
		sockets int
		want    int
	}{
		// Same socket is always zero hops.
		{FullMesh, 0, 0, 4, 0},
		{Ring, 3, 3, 8, 0},
		// Full mesh: every remote pair is one hop.
		{FullMesh, 0, 1, 2, 1},
		{FullMesh, 0, 3, 4, 1},
		{FullMesh, 1, 7, 8, 1},
		// Ring: the shorter way around.
		{Ring, 0, 1, 2, 1},
		{Ring, 0, 1, 4, 1},
		{Ring, 0, 2, 4, 2},
		{Ring, 0, 3, 4, 1}, // wraps
		{Ring, 1, 6, 8, 3}, // wraps: 1->0->7->6
		{Ring, 0, 4, 8, 4},
	}
	for _, c := range cases {
		if got := Hops(c.kind, c.a, c.b, c.sockets); got != c.want {
			t.Errorf("Hops(%v, %d, %d, %d) = %d, want %d",
				c.kind, c.a, c.b, c.sockets, got, c.want)
		}
		// Distance is symmetric.
		if got := Hops(c.kind, c.b, c.a, c.sockets); got != c.want {
			t.Errorf("Hops(%v, %d, %d, %d) = %d, want %d (asymmetric)",
				c.kind, c.b, c.a, c.sockets, got, c.want)
		}
	}
}

func TestDiameter(t *testing.T) {
	for sockets := 1; sockets <= 8; sockets++ {
		for _, k := range []Kind{FullMesh, Ring} {
			want := 0
			for a := 0; a < sockets; a++ {
				for b := 0; b < sockets; b++ {
					if h := Hops(k, a, b, sockets); h > want {
						want = h
					}
				}
			}
			if got := Diameter(k, sockets); got != want {
				t.Errorf("Diameter(%v, %d) = %d, want %d (max pairwise Hops)",
					k, sockets, got, want)
			}
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, c := range []struct {
		name string
		want Kind
	}{{"mesh", FullMesh}, {"fullmesh", FullMesh}, {"", FullMesh}, {"ring", Ring}} {
		got, err := ParseKind(c.name)
		if err != nil || got != c.want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", c.name, got, err, c.want)
		}
	}
	if _, err := ParseKind("torus"); err == nil {
		t.Error("ParseKind accepted an unknown topology")
	}
	if !FullMesh.Valid() || !Ring.Valid() || Kind(250).Valid() {
		t.Error("Kind.Valid misclassifies")
	}
	if FullMesh.String() != "mesh" || Ring.String() != "ring" {
		t.Error("Kind.String names drifted from ParseKind spellings")
	}
}
