package dram

import (
	"testing"
	"testing/quick"
)

func TestIdleReadLatency(t *testing.T) {
	c := New(Config{Channels: 2, AccessCycles: 100, TransferCycles: 10})
	done := c.Read(0, 1000)
	if done != 1100 {
		t.Fatalf("idle read completes at %d, want 1100", done)
	}
}

func TestChannelQueueing(t *testing.T) {
	c := New(Config{Channels: 1, AccessCycles: 100, TransferCycles: 10})
	d1 := c.Read(0, 0)
	d2 := c.Read(1, 0) // same channel (1 channel): queues behind
	if d2 <= d1 {
		t.Fatalf("second read must queue: d1=%d d2=%d", d1, d2)
	}
	if d2 != d1+10 {
		t.Fatalf("queueing delay = %d, want transfer time 10", d2-d1)
	}
}

func TestChannelInterleave(t *testing.T) {
	c := New(Config{Channels: 2, AccessCycles: 100, TransferCycles: 10})
	d1 := c.Read(0, 0) // channel 0
	d2 := c.Read(1, 0) // channel 1: independent
	if d1 != d2 {
		t.Fatalf("parallel channels should finish together: %d vs %d", d1, d2)
	}
}

func TestUtilization(t *testing.T) {
	c := New(Config{Channels: 2, AccessCycles: 100, TransferCycles: 10})
	c.SetSpanStart(0)
	for i := uint64(0); i < 10; i++ {
		c.Read(i, int64(i*20))
	}
	// 10 transfers x 10 cycles over 2 channels x 200 cycles = 25%.
	u := c.Utilization(200)
	if u < 0.24 || u > 0.26 {
		t.Fatalf("utilization = %f, want 0.25", u)
	}
}

func TestWritesArePosted(t *testing.T) {
	c := New(Config{Channels: 1, AccessCycles: 100, TransferCycles: 10})
	start := c.Write(0, 50)
	if start != 50 {
		t.Fatalf("posted write accepted at %d, want 50", start)
	}
	if c.Writes() != 1 || c.Reads() != 0 {
		t.Fatalf("write/read counts wrong: %d/%d", c.Writes(), c.Reads())
	}
}

// Property: completion time never precedes request time + access
// latency, and busy cycles grow monotonically.
func TestQuickReadLatencyBound(t *testing.T) {
	check := func(lines []uint64) bool {
		c := New(Config{Channels: 3, AccessCycles: 100, TransferCycles: 10})
		now := int64(0)
		prevBusy := uint64(0)
		for _, l := range lines {
			done := c.Read(l, now)
			if done < now+100 {
				return false
			}
			if c.BusyCycles() < prevBusy {
				return false
			}
			prevBusy = c.BusyCycles()
			now += 5
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResetQueuesClearsBacklog(t *testing.T) {
	c := New(Config{Channels: 1, AccessCycles: 100, TransferCycles: 10})
	// Build a backlog far into the future.
	for i := uint64(0); i < 100; i++ {
		c.Read(i, 0)
	}
	c.ResetQueues(50)
	done := c.Read(0, 50)
	if done != 150 {
		t.Fatalf("read after reset completes at %d, want idle latency 150", done)
	}
}

// The observation span must extend to the completion of the last
// transfer, not its arrival: a span that ends at the last request's
// start overstates busy/span utilization (beyond 1.0 under backlog).
func TestSpanCoversTransferCompletion(t *testing.T) {
	c := New(Config{Channels: 1, AccessCycles: 100, TransferCycles: 10})
	c.SetSpanStart(0)
	// Ten back-to-back requests all arriving at cycle 0: the channel
	// drains them serially until cycle 100.
	for i := uint64(0); i < 10; i++ {
		c.Read(i, 0)
	}
	if got := c.Span(); got != 100 {
		t.Fatalf("Span = %d, want 100 (last transfer completion)", got)
	}
	if got, span := c.BusyCycles(), c.Span(); got > span {
		t.Fatalf("busy %d exceeds span %d: utilization above 1.0", got, span)
	}
}
