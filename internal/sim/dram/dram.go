// Package dram models the off-chip memory system: independent DDR3
// channels with a fixed access latency plus a bandwidth-occupancy model.
// Each 64-byte transfer occupies its channel for a fixed number of core
// cycles; requests to a busy channel queue behind it. Channel busy time
// is the basis of Figure 7 (off-chip bandwidth utilisation).
package dram

import "cloudsuite/internal/sim/checkpoint"

// Config describes the memory system.
type Config struct {
	// Channels is the number of independent DDR3 channels.
	Channels int
	// AccessCycles is the idle-channel latency of a line fetch in core
	// cycles (row activation + CAS + transfer start).
	AccessCycles int
	// TransferCycles is the channel occupancy of one 64-byte transfer in
	// core cycles. At 2.93GHz and ~10.7GB/s per DDR3-1333 channel, a
	// 64-byte line occupies the channel for ~17.5 core cycles.
	TransferCycles int
}

// DefaultConfig matches the measured machine: three DDR3 channels
// delivering up to 32GB/s total (Table 1).
func DefaultConfig() Config {
	return Config{Channels: 3, AccessCycles: 190, TransferCycles: 18}
}

// Controller is the memory controller. It is used single-threaded by the
// simulator's cycle loop.
type Controller struct {
	cfg       Config  //simlint:ok checkpointcov construction-time configuration; LoadState geometry-checks channel count instead of restoring it
	freeAt    []int64 // per-channel time the channel becomes free
	busy      []int64 // per-channel cumulative busy cycles
	start     int64
	lastCycle int64
	reads     uint64
	writes    uint64
}

// New returns an idle controller.
func New(cfg Config) *Controller {
	if cfg.Channels <= 0 {
		cfg = DefaultConfig()
	}
	return &Controller{
		cfg:    cfg,
		freeAt: make([]int64, cfg.Channels),
		busy:   make([]int64, cfg.Channels),
	}
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// SaveState serializes the controller's queues (per-channel free
// times), busy-cycle accounting, observation span, and read/write
// counts into a checkpoint.
func (c *Controller) SaveState(w *checkpoint.Writer) {
	w.Tag("dram")
	w.I64s(c.freeAt)
	w.I64s(c.busy)
	w.I64(c.start)
	w.I64(c.lastCycle)
	w.U64(c.reads)
	w.U64(c.writes)
}

// LoadState restores state saved by SaveState into a controller of
// identical channel count; a mismatch is reported through the reader.
func (c *Controller) LoadState(r *checkpoint.Reader) {
	r.Expect("dram")
	r.I64s(c.freeAt)
	r.I64s(c.busy)
	c.start = r.I64()
	c.lastCycle = r.I64()
	c.reads = r.U64()
	c.writes = r.U64()
}

func (c *Controller) channel(line uint64) int {
	// Interleave consecutive lines across channels, like BIOS channel
	// interleaving on the measured machine.
	return int(line % uint64(c.cfg.Channels))
}

// Read schedules a line fetch at time now and returns the completion
// time. line is the cache-line address (addr >> 6).
func (c *Controller) Read(line uint64, now int64) int64 {
	return c.transfer(line, now, true)
}

// Write schedules a line writeback at time now and returns the time the
// channel accepted it. Writebacks are posted: callers need not wait.
func (c *Controller) Write(line uint64, now int64) int64 {
	return c.transfer(line, now, false)
}

func (c *Controller) transfer(line uint64, now int64, read bool) int64 {
	ch := c.channel(line)
	start := now
	if c.freeAt[ch] > start {
		start = c.freeAt[ch]
	}
	end := start + int64(c.cfg.TransferCycles)
	c.freeAt[ch] = end
	c.busy[ch] += int64(c.cfg.TransferCycles)
	// The observation span extends to the transfer's completion, not
	// its arrival: ending the span at the last request's start would
	// overstate busy/span utilization (beyond 1.0 under backlog).
	if end > c.lastCycle {
		c.lastCycle = end
	}
	if read {
		c.reads++
		return start + int64(c.cfg.AccessCycles)
	}
	c.writes++
	return start
}

// BusyCycles returns cumulative busy cycles summed over channels.
func (c *Controller) BusyCycles() uint64 {
	var t uint64
	for _, b := range c.busy {
		t += uint64(b)
	}
	return t
}

// Span returns the number of cycles the controller has been observed
// over (the completion time of the latest transfer minus the
// observation start).
func (c *Controller) Span() uint64 {
	if c.lastCycle <= c.start {
		return 0
	}
	return uint64(c.lastCycle - c.start)
}

// SetSpanStart marks the beginning of a measurement window.
func (c *Controller) SetSpanStart(cycle int64) { c.start = cycle }

// ResetQueues discards channel backlog, making every channel free at
// the given cycle. The simulator calls this between the functional
// warm-up (whose pseudo-clock timing is meaningless) and the timed
// window, so warm-up traffic cannot queue into the measurement.
func (c *Controller) ResetQueues(cycle int64) {
	for i := range c.freeAt {
		if c.freeAt[i] > cycle {
			c.freeAt[i] = cycle
		}
	}
}

// Reads returns the number of line reads serviced.
func (c *Controller) Reads() uint64 { return c.reads }

// Writes returns the number of line writebacks accepted.
func (c *Controller) Writes() uint64 { return c.writes }

// Utilization returns busy share across channels over the window ending
// at cycle now.
func (c *Controller) Utilization(now int64) float64 {
	span := now - c.start
	if span <= 0 {
		return 0
	}
	return float64(c.BusyCycles()) / (float64(span) * float64(c.cfg.Channels))
}
