package engine

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"cloudsuite/internal/sim/cache"
	"cloudsuite/internal/sim/checkpoint"
	"cloudsuite/internal/trace"
)

// mixedStream builds a looped stream with loads, stores, branches, and
// kernel instructions so warming exercises the caches, TLBs, branch
// predictor, prefetchers, and DRAM controllers.
func mixedStream(seed int64, span uint64, n int) trace.Generator {
	rng := rand.New(rand.NewSource(seed))
	insts := make([]trace.Inst, n)
	lines := span / 64
	for i := range insts {
		pc := 0x400000 + uint64(i%512)*4
		kernel := i%7 == 0
		switch i % 5 {
		case 0, 1:
			insts[i] = trace.Inst{
				PC: pc, Op: trace.OpLoad,
				Addr: 0x4000_0000 + uint64(rng.Int63n(int64(lines)))*64,
				Size: 8, Kernel: kernel,
			}
		case 2:
			insts[i] = trace.Inst{
				PC: pc, Op: trace.OpStore,
				Addr: 0x4000_0000 + uint64(rng.Int63n(int64(lines)))*64,
				Size: 8, Kernel: kernel,
			}
		case 3:
			taken := rng.Intn(3) == 0
			insts[i] = trace.Inst{PC: pc, Op: trace.OpBranch, Taken: taken, Target: pc + 16, Kernel: kernel}
		default:
			insts[i] = trace.Inst{PC: pc, Op: trace.OpALU, DepA: 1, Kernel: kernel}
		}
	}
	return &trace.LoopGen{Insts: insts}
}

// twoSocketThreads builds a fresh, deterministic 2-socket thread set.
// Threads share part of their address span so warming leaves directory
// state (sharers, owners) behind for the snapshot to carry.
func twoSocketThreads() []Thread {
	return []Thread{
		{Gen: mixedStream(1, 1<<22, 4096), Core: 0, Measured: true},
		{Gen: mixedStream(2, 1<<22, 4096), Core: 1, Measured: true},
		{Gen: mixedStream(3, 1<<22, 4096), Core: 6, Measured: true},
		{Gen: mixedStream(4, 1<<22, 4096), Core: 7, Measured: true},
	}
}

func twoSocketConfig() RunConfig {
	mem := cache.DefaultSystemConfig()
	mem.Sockets = 2
	return RunConfig{
		Core:         DefaultCoreConfig(),
		Mem:          mem,
		WarmupInsts:  30_000,
		MeasureInsts: 8_000,
		MaxCycles:    20_000_000,
	}
}

func TestCheckpointRestoreMatchesWarmRun(t *testing.T) {
	cold, err := Run(twoSocketConfig(), twoSocketThreads())
	if err != nil {
		t.Fatal(err)
	}

	var snap *checkpoint.Snapshot
	cfg := twoSocketConfig()
	cfg.Checkpoint = func(s *checkpoint.Snapshot) { snap = s }
	cfg.CheckpointKey = "engine-test"
	saved, err := Run(cfg, twoSocketThreads())
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("Checkpoint callback never fired")
	}
	if snap.Key() != "engine-test" {
		t.Fatalf("snapshot key = %q", snap.Key())
	}
	if !reflect.DeepEqual(cold, saved) {
		t.Fatal("taking a checkpoint changed the measurement")
	}

	rcfg := twoSocketConfig()
	rcfg.Restore = snap
	restored, err := Run(rcfg, twoSocketThreads())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, restored) {
		t.Fatalf("restored run differs from cold run:\ncold     = %+v\nrestored = %+v", cold.Total, restored.Total)
	}
}

func TestCheckpointRestoreMatchesSampledRun(t *testing.T) {
	sampled := func(c RunConfig) RunConfig {
		c.Intervals = 3
		c.IntervalWarmInsts = 4_000
		c.DetailWarmInsts = 500
		c.MeasureInsts = 2_000
		return c
	}

	cold, err := Run(sampled(twoSocketConfig()), twoSocketThreads())
	if err != nil {
		t.Fatal(err)
	}

	var snap *checkpoint.Snapshot
	cfg := sampled(twoSocketConfig())
	cfg.Checkpoint = func(s *checkpoint.Snapshot) { snap = s }
	if _, err := Run(cfg, twoSocketThreads()); err != nil {
		t.Fatal(err)
	}

	rcfg := sampled(twoSocketConfig())
	rcfg.Restore = snap
	restored, err := Run(rcfg, twoSocketThreads())
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.Intervals) != len(cold.Intervals) {
		t.Fatalf("restored run has %d intervals, cold has %d", len(restored.Intervals), len(cold.Intervals))
	}
	if !reflect.DeepEqual(cold, restored) {
		t.Fatal("restored sampled run differs from cold sampled run")
	}
}

func TestCheckpointSnapshotIsDeterministic(t *testing.T) {
	take := func() *checkpoint.Snapshot {
		var snap *checkpoint.Snapshot
		cfg := twoSocketConfig()
		cfg.Checkpoint = func(s *checkpoint.Snapshot) { snap = s }
		if _, err := Run(cfg, twoSocketThreads()); err != nil {
			t.Fatal(err)
		}
		return snap
	}
	a, b := take(), take()
	if a.Hash() != b.Hash() {
		t.Fatal("identical warm runs produced different snapshot content hashes")
	}
}

func TestRestoreRejectsMismatchedConfiguration(t *testing.T) {
	var snap *checkpoint.Snapshot
	cfg := twoSocketConfig()
	cfg.Checkpoint = func(s *checkpoint.Snapshot) { snap = s }
	if _, err := Run(cfg, twoSocketThreads()); err != nil {
		t.Fatal(err)
	}

	// Warm budget mismatch.
	bad := twoSocketConfig()
	bad.WarmupInsts = 10_000
	bad.Restore = snap
	if _, err := Run(bad, twoSocketThreads()); err == nil || !strings.Contains(err.Error(), "warmed") {
		t.Fatalf("warm-budget mismatch not rejected: %v", err)
	}

	// Machine geometry mismatch (different LLC size changes line counts).
	bad = twoSocketConfig()
	bad.Mem.LLC.SizeBytes = 6 << 20
	bad.Restore = snap
	if _, err := Run(bad, twoSocketThreads()); err == nil {
		t.Fatal("LLC geometry mismatch not rejected")
	}

	// Thread-set mismatch (fewer active cores).
	bad = twoSocketConfig()
	bad.Restore = snap
	if _, err := Run(bad, twoSocketThreads()[:2]); err == nil || !strings.Contains(err.Error(), "cores") {
		t.Fatalf("core-count mismatch not rejected: %v", err)
	}
}
