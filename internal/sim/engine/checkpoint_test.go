package engine

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"cloudsuite/internal/sim/cache"
	"cloudsuite/internal/sim/checkpoint"
	"cloudsuite/internal/trace"
)

// mixedStream builds a looped stream with loads, stores, branches, and
// kernel instructions so warming exercises the caches, TLBs, branch
// predictor, prefetchers, and DRAM controllers.
func mixedStream(seed int64, span uint64, n int) trace.Generator {
	rng := rand.New(rand.NewSource(seed))
	insts := make([]trace.Inst, n)
	lines := span / 64
	for i := range insts {
		pc := 0x400000 + uint64(i%512)*4
		kernel := i%7 == 0
		switch i % 5 {
		case 0, 1:
			insts[i] = trace.Inst{
				PC: pc, Op: trace.OpLoad,
				Addr: 0x4000_0000 + uint64(rng.Int63n(int64(lines)))*64,
				Size: 8, Kernel: kernel,
			}
		case 2:
			insts[i] = trace.Inst{
				PC: pc, Op: trace.OpStore,
				Addr: 0x4000_0000 + uint64(rng.Int63n(int64(lines)))*64,
				Size: 8, Kernel: kernel,
			}
		case 3:
			taken := rng.Intn(3) == 0
			insts[i] = trace.Inst{PC: pc, Op: trace.OpBranch, Taken: taken, Target: pc + 16, Kernel: kernel}
		default:
			insts[i] = trace.Inst{PC: pc, Op: trace.OpALU, DepA: 1, Kernel: kernel}
		}
	}
	return &trace.LoopGen{Insts: insts}
}

// twoSocketThreads builds a fresh, deterministic 2-socket thread set.
// Threads share part of their address span so warming leaves directory
// state (sharers, owners) behind for the snapshot to carry.
func twoSocketThreads() []Thread {
	return []Thread{
		{Gen: mixedStream(1, 1<<22, 4096), Core: 0, Measured: true},
		{Gen: mixedStream(2, 1<<22, 4096), Core: 1, Measured: true},
		{Gen: mixedStream(3, 1<<22, 4096), Core: 6, Measured: true},
		{Gen: mixedStream(4, 1<<22, 4096), Core: 7, Measured: true},
	}
}

func twoSocketConfig() RunConfig {
	mem := cache.DefaultSystemConfig()
	mem.Sockets = 2
	return RunConfig{
		Core:         DefaultCoreConfig(),
		Mem:          mem,
		WarmupInsts:  30_000,
		MeasureInsts: 8_000,
		MaxCycles:    20_000_000,
	}
}

func TestCheckpointRestoreMatchesWarmRun(t *testing.T) {
	cold, err := Run(twoSocketConfig(), twoSocketThreads())
	if err != nil {
		t.Fatal(err)
	}

	var snap *checkpoint.Snapshot
	cfg := twoSocketConfig()
	cfg.Checkpoint = func(s *checkpoint.Snapshot) { snap = s }
	cfg.CheckpointKey = "engine-test"
	saved, err := Run(cfg, twoSocketThreads())
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("Checkpoint callback never fired")
	}
	if snap.Key() != "engine-test" {
		t.Fatalf("snapshot key = %q", snap.Key())
	}
	if !reflect.DeepEqual(cold, saved) {
		t.Fatal("taking a checkpoint changed the measurement")
	}

	rcfg := twoSocketConfig()
	rcfg.Restore = snap
	restored, err := Run(rcfg, twoSocketThreads())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, restored) {
		t.Fatalf("restored run differs from cold run:\ncold     = %+v\nrestored = %+v", cold.Total, restored.Total)
	}
}

func TestCheckpointRestoreMatchesSampledRun(t *testing.T) {
	sampled := func(c RunConfig) RunConfig {
		c.Intervals = 3
		c.IntervalWarmInsts = 4_000
		c.DetailWarmInsts = 500
		c.MeasureInsts = 2_000
		return c
	}

	cold, err := Run(sampled(twoSocketConfig()), twoSocketThreads())
	if err != nil {
		t.Fatal(err)
	}

	var snap *checkpoint.Snapshot
	cfg := sampled(twoSocketConfig())
	cfg.Checkpoint = func(s *checkpoint.Snapshot) { snap = s }
	if _, err := Run(cfg, twoSocketThreads()); err != nil {
		t.Fatal(err)
	}

	rcfg := sampled(twoSocketConfig())
	rcfg.Restore = snap
	restored, err := Run(rcfg, twoSocketThreads())
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.Intervals) != len(cold.Intervals) {
		t.Fatalf("restored run has %d intervals, cold has %d", len(restored.Intervals), len(cold.Intervals))
	}
	if !reflect.DeepEqual(cold, restored) {
		t.Fatal("restored sampled run differs from cold sampled run")
	}
}

func TestCheckpointSnapshotIsDeterministic(t *testing.T) {
	take := func() *checkpoint.Snapshot {
		var snap *checkpoint.Snapshot
		cfg := twoSocketConfig()
		cfg.Checkpoint = func(s *checkpoint.Snapshot) { snap = s }
		if _, err := Run(cfg, twoSocketThreads()); err != nil {
			t.Fatal(err)
		}
		return snap
	}
	a, b := take(), take()
	if a.Hash() != b.Hash() {
		t.Fatal("identical warm runs produced different snapshot content hashes")
	}
}

func TestRestoreRejectsMismatchedConfiguration(t *testing.T) {
	var snap *checkpoint.Snapshot
	cfg := twoSocketConfig()
	cfg.Checkpoint = func(s *checkpoint.Snapshot) { snap = s }
	if _, err := Run(cfg, twoSocketThreads()); err != nil {
		t.Fatal(err)
	}

	// Warm budget mismatch.
	bad := twoSocketConfig()
	bad.WarmupInsts = 10_000
	bad.Restore = snap
	if _, err := Run(bad, twoSocketThreads()); err == nil || !strings.Contains(err.Error(), "warmed") {
		t.Fatalf("warm-budget mismatch not rejected: %v", err)
	}

	// Machine geometry mismatch (different LLC size changes line counts).
	bad = twoSocketConfig()
	bad.Mem.LLC.SizeBytes = 6 << 20
	bad.Restore = snap
	if _, err := Run(bad, twoSocketThreads()); err == nil {
		t.Fatal("LLC geometry mismatch not rejected")
	}

	// Thread-set mismatch (fewer active cores).
	bad = twoSocketConfig()
	bad.Restore = snap
	if _, err := Run(bad, twoSocketThreads()[:2]); err == nil || !strings.Contains(err.Error(), "cores") {
		t.Fatalf("core-count mismatch not rejected: %v", err)
	}
}

// finiteThreads builds a thread set whose streams end after exactly n
// instructions each (deterministic per seed).
func finiteThreads(n int) []Thread {
	take := func(seed int64) trace.Generator {
		loop := mixedStream(seed, 1<<22, 4096).(*trace.LoopGen)
		insts := make([]trace.Inst, n)
		for i := range insts {
			insts[i] = loop.Insts[i%len(loop.Insts)]
		}
		return &trace.SliceGen{Insts: insts}
	}
	return []Thread{
		{Gen: take(1), Core: 0, Measured: true},
		{Gen: take(2), Core: 1, Measured: true},
	}
}

// TestReplayShortfallFailsRestore: a replay-flavor restore whose
// generator stream ends before the warm point must fail with an error
// reporting the shortfall — a short stream means the restored run would
// measure a different execution than the one the image was taken from,
// so it must never be passed off as a warm machine.
func TestReplayShortfallFailsRestore(t *testing.T) {
	cfg := twoSocketConfig()
	cfg.WarmupInsts = 30_000
	var snap *checkpoint.Snapshot
	cfg.Checkpoint = func(s *checkpoint.Snapshot) { snap = s }
	if _, err := Run(cfg, finiteThreads(50_000)); err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("Checkpoint callback never fired")
	}

	rcfg := twoSocketConfig()
	rcfg.WarmupInsts = 30_000
	rcfg.Restore = snap
	_, err := Run(rcfg, finiteThreads(10_000))
	if err == nil {
		t.Fatal("restore with a short generator stream must fail, not silently diverge")
	}
	for _, want := range []string{"10000", "30000"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("shortfall error %q does not report %s", err, want)
		}
	}
}

// ctrShared is the trivially-serializable shared half of the live-image
// test workload below.
type ctrShared struct {
	fn   *trace.Func // construction-time code layout
	hits uint64
}

func newCtrShared() *ctrShared {
	code := trace.NewCodeLayout(0x40_0000, 1<<20)
	return &ctrShared{fn: code.Func("ctr_main", 400)}
}

func (s *ctrShared) SaveShared(w *checkpoint.Writer) {
	w.Tag("ctr.shared")
	w.U64(s.hits)
}

func (s *ctrShared) LoadShared(rd *checkpoint.Reader) {
	rd.Expect("ctr.shared")
	s.hits = rd.U64()
}

// ctrProg is a minimal Stateful program: its emitted stream depends on
// both per-thread state (n) and shared state (hits), so a pure-load
// restore that missed either would diverge from the cold run.
type ctrProg struct {
	s *ctrShared // shared half, serialized via SaveShared
	n uint64
}

func (p *ctrProg) Init(e *trace.Emitter) { e.Call(p.s.fn) }

func (p *ctrProg) Step(e *trace.Emitter) bool {
	addr := 0x4000_0000 + ((p.n*97+p.s.hits*31)%(1<<16))*64
	v := e.Load(addr, 8, trace.NoVal, false)
	e.Store(addr+8, 8, v, trace.NoVal)
	e.ALUIndep(3)
	p.n++
	p.s.hits++
	return true
}

func (p *ctrProg) SaveState(w *checkpoint.Writer) {
	w.Tag("ctr.prog")
	w.U64(p.n)
}

func (p *ctrProg) LoadState(rd *checkpoint.Reader) {
	rd.Expect("ctr.prog")
	p.n = rd.U64()
}

// liveSetup builds a fresh shared state plus two StepGen threads, and a
// config wired for live-flavor checkpoints.
func liveSetup() (RunConfig, []Thread) {
	s := newCtrShared()
	mk := func(seed int64) *trace.StepGen {
		return trace.NewStepGen(trace.EmitterConfig{Seed: seed, BlockLen: 8}, &ctrProg{s: s})
	}
	cfg := twoSocketConfig()
	cfg.SaveShared = s.SaveShared
	cfg.LoadShared = s.LoadShared
	return cfg, []Thread{
		{Gen: mk(11), Core: 0, Measured: true},
		{Gen: mk(12), Core: 1, Measured: true},
	}
}

// TestLiveImageRestoresByPureLoad: with serializable generators and
// shared state, the image carries the generator half, and a restored
// run — whose fresh generators are never advanced — reproduces the cold
// run exactly. The warm budget deliberately leaves a partial batch in
// the engine's fetch buffers so the residual-buffer path is exercised.
func TestLiveImageRestoresByPureLoad(t *testing.T) {
	coldCfg, coldThreads := liveSetup()
	cold, err := Run(coldCfg, coldThreads)
	if err != nil {
		t.Fatal(err)
	}

	var snap *checkpoint.Snapshot
	saveCfg, saveThreads := liveSetup()
	saveCfg.Checkpoint = func(s *checkpoint.Snapshot) { snap = s }
	saved, err := Run(saveCfg, saveThreads)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("Checkpoint callback never fired")
	}
	if !reflect.DeepEqual(cold, saved) {
		t.Fatal("taking a live checkpoint changed the measurement")
	}

	restCfg, restThreads := liveSetup()
	restCfg.Restore = snap
	restored, err := Run(restCfg, restThreads)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, restored) {
		t.Fatalf("pure-load restore differs from cold run:\ncold     = %+v\nrestored = %+v",
			cold.Total, restored.Total)
	}
}

// TestLiveImageNeedsLoader: restoring a live image into a run that
// cannot load shared state must fail loudly, not fall through to a
// replay that was never recorded.
func TestLiveImageNeedsLoader(t *testing.T) {
	var snap *checkpoint.Snapshot
	saveCfg, saveThreads := liveSetup()
	saveCfg.Checkpoint = func(s *checkpoint.Snapshot) { snap = s }
	if _, err := Run(saveCfg, saveThreads); err != nil {
		t.Fatal(err)
	}

	restCfg, restThreads := liveSetup()
	restCfg.Restore = snap
	restCfg.LoadShared = nil
	if _, err := Run(restCfg, restThreads); err == nil || !strings.Contains(err.Error(), "live image") {
		t.Fatalf("live image without a loader not rejected: %v", err)
	}
}
