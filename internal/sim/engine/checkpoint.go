package engine

import (
	"fmt"

	"cloudsuite/internal/sim/cache"
	"cloudsuite/internal/sim/checkpoint"
)

// This file implements warm-state checkpointing for the engine: the
// machine half of a warm image is serialized at the warm->measure
// boundary, and a restored run reaches the identical execution point by
// loading that state while fast-forwarding the trace generators.
//
// The generator side is NOT serialized. Workload goroutines run in
// lockstep with the simulator's pull order (see internal/trace), so the
// emitters' RNG and stream positions — and all workload and OS-kernel
// state behind them — are a pure function of the sequence of batch
// pulls. The restore path therefore replays warmThread's exact pull
// pattern (same per-thread order, same per-instruction peek/advance,
// same buffer geometry) without touching the machine; after the skip,
// every generator, buffer, and emitter sits precisely where it sat when
// the snapshot was taken. The differential harness in internal/core
// proves restore(save(warm)) + measure == warm + measure byte-for-byte.

// saveMachine serializes the complete simulated-machine state at the
// warm->measure boundary: the engine clock and per-context fetch-stream
// state, each core's branch predictor and TLB hierarchy, and the whole
// memory system (caches with directory state, prefetchers, per-core
// counters, DRAM controllers).
func saveMachine(cfg RunConfig, clock int64, cores []*core, mem *cache.System) *checkpoint.Snapshot {
	w := checkpoint.NewWriter()
	w.Tag("engine")
	w.I64(cfg.WarmupInsts)
	w.I64(clock)
	w.U32(uint32(len(cores)))
	for _, co := range cores {
		w.U32(uint32(co.id))
		w.U32(uint32(len(co.ctxs)))
		for _, ctx := range co.ctxs {
			w.U64(ctx.warmLine)
			w.U64(ctx.warmPage)
		}
		co.bp.SaveState(w)
		co.tlbs.SaveState(w)
	}
	mem.SaveState(w)
	return w.Snapshot(cfg.CheckpointKey)
}

// restoreMachine loads a snapshot written by saveMachine into a
// freshly-built machine of identical configuration. The caller is
// responsible for fast-forwarding the generators (skipThread); this
// function only restores machine state.
func restoreMachine(snap *checkpoint.Snapshot, cfg RunConfig, cores []*core, mem *cache.System, clock *int64) error {
	r := snap.Reader()
	r.Expect("engine")
	if wi := r.I64(); r.Err() == nil && wi != cfg.WarmupInsts {
		return fmt.Errorf("engine: snapshot warmed %d instructions per thread, run wants %d", wi, cfg.WarmupInsts)
	}
	*clock = r.I64()
	if n := int(r.U32()); r.Err() == nil && n != len(cores) {
		return fmt.Errorf("engine: snapshot has %d active cores, run has %d", n, len(cores))
	}
	for _, co := range cores {
		if id := int(r.U32()); r.Err() == nil && id != co.id {
			return fmt.Errorf("engine: snapshot core id %d does not match run core %d", id, co.id)
		}
		if n := int(r.U32()); r.Err() == nil && n != len(co.ctxs) {
			return fmt.Errorf("engine: snapshot has %d contexts on core %d, run has %d", n, co.id, len(co.ctxs))
		}
		for _, ctx := range co.ctxs {
			ctx.warmLine = r.U64()
			ctx.warmPage = r.U64()
		}
		co.bp.LoadState(r)
		co.tlbs.LoadState(r)
	}
	if err := mem.LoadState(r); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	return r.Err()
}

// skipThread fast-forwards ctx by insts instructions without touching
// any machine state. It mirrors warmThread's consumption pattern
// exactly — one peek/advance per instruction through the same buffer —
// so the sequence of batch pulls (and therefore the deterministic
// workload-goroutine interleaving) is identical to the warm run the
// snapshot was taken from, leaving the generator, its buffer, and the
// emitter behind it in precisely the checkpointed position.
func skipThread(ctx *context, insts int64) {
	for fetched := int64(0); fetched < insts; fetched++ {
		if _, ok := ctx.peek(); !ok {
			return
		}
		ctx.advance()
	}
}
