package engine

import (
	"fmt"

	"cloudsuite/internal/obs"
	"cloudsuite/internal/sim/cache"
	"cloudsuite/internal/sim/checkpoint"
)

// This file implements warm-state checkpointing for the engine. A warm
// image has two halves:
//
// Machine half — serialized at the warm->measure boundary: the engine
// clock and per-context fetch-stream state, each core's branch
// predictor and TLB hierarchy, and the whole memory system (caches
// with directory state, prefetchers, per-core counters, DRAM
// controllers).
//
// Generator half — one of two flavors, chosen at save time:
//
//   - live (flavorLive): the workload supports serialization
//     (RunConfig.SaveShared is set and every generator CanSave), so the
//     image stores the workload's shared structures, every thread's
//     generator state (emitter RNG, call stack, program state, buffered
//     residue), and the engine's undrained per-context fetch buffers.
//     Restore is a pure load: no part of the warmup instruction stream
//     is re-executed, so fork cost is independent of WarmupInsts.
//
//   - replay (flavorReplay): nothing is stored. Workload goroutineless
//     generators are deterministic in the simulator's pull order, so a
//     restored run replays warmThread's exact pull pattern (same
//     per-thread order, same per-instruction peek/advance, same buffer
//     geometry) against fresh generators, re-deriving the workload and
//     OS-kernel state while the machine state loads from the snapshot.
//     This is the v2-compatible path; the traditional-benchmark proxies
//     keep it exercised.
//
// The differential harness in internal/core proves restore(save(warm))
// + measure == warm + measure byte-for-byte for both flavors.

const (
	flavorReplay uint8 = 0
	flavorLive   uint8 = 1
)

// statefulGen is the generator side of a live-point checkpoint:
// trace.StepGen implements it when its program is Stateful.
type statefulGen interface {
	CanSave() bool
	SaveState(w *checkpoint.Writer)
	LoadState(rd *checkpoint.Reader)
}

// liveCapable reports whether every context's generator can serialize
// its full state.
func liveCapable(cores []*core) bool {
	for _, co := range cores {
		for _, ctx := range co.ctxs {
			sg, ok := ctx.gen.(statefulGen)
			if !ok || !sg.CanSave() {
				return false
			}
		}
	}
	return true
}

// saveMachine serializes the complete warm image: machine half, then
// the generator half in the richest flavor the run supports.
func saveMachine(cfg RunConfig, clock int64, cores []*core, mem *cache.System) *checkpoint.Snapshot {
	w := checkpoint.NewWriter()
	w.Tag("engine")
	w.I64(cfg.WarmupInsts)
	w.I64(clock)
	w.U32(uint32(len(cores)))
	for _, co := range cores {
		w.U32(uint32(co.id))
		w.U32(uint32(len(co.ctxs)))
		for _, ctx := range co.ctxs {
			w.U64(ctx.warmLine)
			w.U64(ctx.warmPage)
		}
		co.bp.SaveState(w)
		co.tlbs.SaveState(w)
	}
	mem.SaveState(w)

	w.Tag("generators")
	if cfg.SaveShared == nil || !liveCapable(cores) {
		w.U8(flavorReplay)
		return w.Snapshot(cfg.CheckpointKey)
	}
	w.U8(flavorLive)
	cfg.SaveShared(w)
	for _, co := range cores {
		for _, ctx := range co.ctxs {
			ctx.gen.(statefulGen).SaveState(w)
			// The engine-side fetch buffer: instructions already pulled
			// from the generator but not yet consumed by warming.
			residual := ctx.buf[ctx.bufPos:ctx.bufLen]
			w.U32(uint32(len(residual)))
			if len(residual) > 0 {
				w.Struct(residual)
			}
			w.Bool(ctx.eof)
		}
	}
	return w.Snapshot(cfg.CheckpointKey)
}

// restoreRun loads a snapshot written by saveMachine into a
// freshly-built machine of identical configuration, then brings the
// generators to the warm point: by pure load for a live image, by
// deterministic replay for a replay image.
func restoreRun(snap *checkpoint.Snapshot, cfg RunConfig, cores []*core, mem *cache.System, clock *int64) error {
	r := snap.Reader()
	r.Expect("engine")
	if wi := r.I64(); r.Err() == nil && wi != cfg.WarmupInsts {
		return fmt.Errorf("engine: snapshot warmed %d instructions per thread, run wants %d", wi, cfg.WarmupInsts)
	}
	*clock = r.I64()
	if n := int(r.U32()); r.Err() == nil && n != len(cores) {
		return fmt.Errorf("engine: snapshot has %d active cores, run has %d", n, len(cores))
	}
	for _, co := range cores {
		if id := int(r.U32()); r.Err() == nil && id != co.id {
			return fmt.Errorf("engine: snapshot core id %d does not match run core %d", id, co.id)
		}
		if n := int(r.U32()); r.Err() == nil && n != len(co.ctxs) {
			return fmt.Errorf("engine: snapshot has %d contexts on core %d, run has %d", n, co.id, len(co.ctxs))
		}
		for _, ctx := range co.ctxs {
			ctx.warmLine = r.U64()
			ctx.warmPage = r.U64()
		}
		co.bp.LoadState(r)
		co.tlbs.LoadState(r)
	}
	if err := mem.LoadState(r); err != nil {
		return fmt.Errorf("engine: %w", err)
	}

	r.Expect("generators")
	flavor := r.U8()
	if err := r.Err(); err != nil {
		return err
	}
	switch flavor {
	case flavorLive:
		return restoreLive(r, cfg, cores)
	case flavorReplay:
		return replayGenerators(cfg, cores)
	default:
		return fmt.Errorf("engine: unknown generator flavor %d in snapshot", flavor)
	}
}

// restoreLive loads the generator half of a live image: workload shared
// state, per-thread generator state, and the engine's fetch buffers.
// Nothing executes; fork cost is a deserialization, not a replay.
func restoreLive(r *checkpoint.Reader, cfg RunConfig, cores []*core) error {
	if cfg.LoadShared == nil {
		return fmt.Errorf("engine: snapshot is a live image but the run has no shared-state loader")
	}
	if !liveCapable(cores) {
		return fmt.Errorf("engine: snapshot is a live image but a generator cannot load state")
	}
	cfg.LoadShared(r)
	if err := r.Err(); err != nil {
		return err
	}
	for _, co := range cores {
		for _, ctx := range co.ctxs {
			ctx.gen.(statefulGen).LoadState(r)
			n := int(r.U32())
			if r.Err() == nil && n > len(ctx.buf) {
				return fmt.Errorf("engine: snapshot fetch buffer (%d insts) exceeds context capacity (%d)", n, len(ctx.buf))
			}
			if r.Err() != nil {
				return r.Err()
			}
			if n > 0 {
				r.Struct(ctx.buf[:n])
			}
			ctx.bufPos, ctx.bufLen = 0, n
			ctx.eof = r.Bool()
		}
	}
	return r.Err()
}

// replayGenerators fast-forwards every context through the warm pull
// sequence (the replay-flavor restore). A generator that runs dry
// before reaching the warm point is a workload/image mismatch: the
// restored run would measure a different execution, so it fails loudly
// instead of silently diverging.
func replayGenerators(cfg RunConfig, cores []*core) error {
	span := cfg.Obs.SpanStart()
	prev := cfg.Obs.Enter(obs.PhaseCkptReplay)
	defer func() {
		cfg.Obs.SpanEnd("ckpt-replay", span)
		cfg.Obs.Enter(prev)
	}()
	for _, co := range cores {
		for _, ctx := range co.ctxs {
			if skipped := skipThread(ctx, cfg.WarmupInsts); skipped < cfg.WarmupInsts {
				return fmt.Errorf("engine: replay fast-forward of thread %d ended after %d of %d instructions (snapshot does not match this workload)",
					ctx.tid, skipped, cfg.WarmupInsts)
			}
		}
	}
	return nil
}

// skipThread fast-forwards ctx by up to insts instructions without
// touching any machine state, returning how many it skipped. It mirrors
// warmThread's consumption pattern exactly — one peek/advance per
// instruction through the same buffer — so the sequence of batch pulls
// (and therefore the deterministic workload interleaving) is identical
// to the warm run the snapshot was taken from, leaving the generator,
// its buffer, and the emitter behind it in precisely the checkpointed
// position. A short count means the stream ended early; callers must
// treat that as a failed restore, not a warm machine.
func skipThread(ctx *context, insts int64) int64 {
	for fetched := int64(0); fetched < insts; fetched++ {
		if _, ok := ctx.peek(); !ok {
			return fetched
		}
		ctx.advance()
	}
	return insts
}
