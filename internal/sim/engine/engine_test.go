package engine

import (
	"math/rand"
	"testing"

	"cloudsuite/internal/sim/cache"
	"cloudsuite/internal/sim/topo"
	"cloudsuite/internal/trace"
)

// mkRun executes threads with a small measurement budget.
func mkRun(t *testing.T, threads []Thread, measure int64) *Result {
	t.Helper()
	cfg := RunConfig{
		Core:         DefaultCoreConfig(),
		Mem:          cache.DefaultSystemConfig(),
		WarmupInsts:  0,
		MeasureInsts: measure,
		MaxCycles:    20_000_000,
	}
	res, err := Run(cfg, threads)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// aluStream builds a looped stream of ALU ops with the given dependence
// distance (0 = independent). A single PC line avoids I-cache effects.
func aluStream(dep int32, n int) trace.Generator {
	insts := make([]trace.Inst, n)
	for i := range insts {
		d := dep
		if int32(i) < dep {
			d = 0
		}
		insts[i] = trace.Inst{PC: 0x400000, Op: trace.OpALU, DepA: d}
	}
	return &trace.LoopGen{Insts: insts}
}

// loadStream builds a looped stream of loads over span bytes; dep=1
// chains each load's address on the previous one (pointer chasing).
func loadStream(seed int64, span uint64, chained bool, n int) trace.Generator {
	rng := rand.New(rand.NewSource(seed))
	insts := make([]trace.Inst, n)
	lines := span / 64
	for i := range insts {
		var d int32
		if chained && i > 0 {
			d = 1
		}
		insts[i] = trace.Inst{
			PC: 0x400000, Op: trace.OpLoad,
			Addr: 0x4000_0000 + uint64(rng.Int63n(int64(lines)))*64,
			Size: 8, DepA: d, AcquiresDep: chained,
		}
	}
	return &trace.LoopGen{Insts: insts}
}

func TestIndependentALUReachesFullWidth(t *testing.T) {
	res := mkRun(t, []Thread{{Gen: aluStream(0, 1000), Core: 0, Measured: true}}, 40_000)
	ipc := res.Total.IPC()
	if ipc < 3.5 {
		t.Fatalf("independent ALU IPC = %.2f, want near width 4", ipc)
	}
}

func TestDependentChainSerializes(t *testing.T) {
	res := mkRun(t, []Thread{{Gen: aluStream(1, 1000), Core: 0, Measured: true}}, 40_000)
	ipc := res.Total.IPC()
	if ipc < 0.7 || ipc > 1.4 {
		t.Fatalf("dependent chain IPC = %.2f, want near 1", ipc)
	}
}

func TestPointerChasingHasLowMLP(t *testing.T) {
	res := mkRun(t, []Thread{{Gen: loadStream(1, 256<<20, true, 100_000), Core: 0, Measured: true}}, 30_000)
	mlp := res.Total.MLP()
	if mlp > 1.6 {
		t.Fatalf("chained loads MLP = %.2f, want near 1", mlp)
	}
	if res.Total.StallFrac() < 0.5 {
		t.Fatalf("memory-bound chain stalls only %.2f of cycles", res.Total.StallFrac())
	}
	if res.Total.MemCycleFrac() < 0.5 {
		t.Fatalf("memory cycles %.2f, want majority", res.Total.MemCycleFrac())
	}
}

func TestIndependentLoadsSaturateMLP(t *testing.T) {
	res := mkRun(t, []Thread{{Gen: loadStream(2, 256<<20, false, 100_000), Core: 0, Measured: true}}, 30_000)
	mlp := res.Total.MLP()
	if mlp < 4 {
		t.Fatalf("independent loads MLP = %.2f, want >= 4", mlp)
	}
}

func TestSMTImprovesThroughputOfDependentThreads(t *testing.T) {
	solo := mkRun(t, []Thread{{Gen: aluStream(2, 1000), Core: 0, Measured: true}}, 40_000)
	smt := mkRun(t, []Thread{
		{Gen: aluStream(2, 1000), Core: 0, Measured: true},
		{Gen: aluStream(2, 1000), Core: 0, Measured: true},
	}, 40_000)
	// Per-core IPC with two contexts should clearly exceed one context.
	if smt.Total.IPC() < solo.Total.IPC()*1.3 {
		t.Fatalf("SMT IPC %.2f vs solo %.2f: no benefit", smt.Total.IPC(), solo.Total.IPC())
	}
}

func TestKernelInstructionsAttributeToOS(t *testing.T) {
	insts := make([]trace.Inst, 100)
	for i := range insts {
		insts[i] = trace.Inst{PC: 0xffff_ffff_8000_0000, Op: trace.OpALU, Kernel: true}
	}
	res := mkRun(t, []Thread{{Gen: &trace.LoopGen{Insts: insts}, Core: 0, Measured: true}}, 10_000)
	if res.Total.CommitOS == 0 || res.Total.CommitUser != 0 {
		t.Fatalf("attribution wrong: user=%d os=%d", res.Total.CommitUser, res.Total.CommitOS)
	}
	if res.Total.CommitCyclesOS == 0 {
		t.Fatal("no OS committing cycles recorded")
	}
}

func TestLargeCodeFootprintMissesICache(t *testing.T) {
	// Walk a 4MB code region: every line is new until wrap, far beyond
	// the 32KB L1-I.
	var insts []trace.Inst
	for pc := uint64(0x40_0000); pc < 0x40_0000+4<<20; pc += 64 {
		for k := uint64(0); k < 16; k++ {
			insts = append(insts, trace.Inst{PC: pc + k*4, Op: trace.OpALU})
		}
	}
	res := mkRun(t, []Thread{{Gen: &trace.LoopGen{Insts: insts}, Core: 0, Measured: true}}, 50_000)
	if mpki := res.Total.L1IMPKIUser(); mpki < 30 {
		t.Fatalf("L1-I MPKI = %.1f, want large (code sweep)", mpki)
	}
	if res.Total.L2IMPKIUser() < 10 {
		t.Fatalf("L2-I MPKI = %.1f, want large (4MB exceeds L2)", res.Total.L2IMPKIUser())
	}
}

func TestTinyLoopHitsICache(t *testing.T) {
	insts := make([]trace.Inst, 64)
	for i := range insts {
		insts[i] = trace.Inst{PC: 0x400000 + uint64(i)*4, Op: trace.OpALU}
	}
	res := mkRun(t, []Thread{{Gen: &trace.LoopGen{Insts: insts}, Core: 0, Measured: true}}, 50_000)
	if mpki := res.Total.L1IMPKIUser(); mpki > 1 {
		t.Fatalf("tiny loop L1-I MPKI = %.2f, want ~0", mpki)
	}
}

func TestPerThreadBudgetsHonored(t *testing.T) {
	res := mkRun(t, []Thread{
		{Gen: aluStream(0, 1000), Core: 0, Measured: true},
		{Gen: aluStream(0, 1000), Core: 1, Measured: true},
	}, 20_000)
	for i, n := range res.PerThread {
		if n < 20_000 {
			t.Errorf("thread %d committed %d, want >= 20000", i, n)
		}
	}
}

func TestUnmeasuredThreadDoesNotGateCompletion(t *testing.T) {
	res := mkRun(t, []Thread{
		{Gen: aluStream(0, 1000), Core: 0, Measured: true},
		{Gen: loadStream(3, 64<<20, true, 100_000), Core: 1, Measured: false},
	}, 20_000)
	if res.PerThread[0] < 20_000 {
		t.Fatalf("measured thread committed %d", res.PerThread[0])
	}
}

func TestFiniteStreamTerminates(t *testing.T) {
	insts := make([]trace.Inst, 5000)
	for i := range insts {
		insts[i] = trace.Inst{PC: 0x400000, Op: trace.OpALU}
	}
	res := mkRun(t, []Thread{{Gen: &trace.SliceGen{Insts: insts}, Core: 0, Measured: true}}, 1_000_000)
	if res.PerThread[0] != 5000 {
		t.Fatalf("committed %d, want exactly 5000", res.PerThread[0])
	}
}

func TestMispredictsSlowRandomBranches(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	mk := func(random bool) trace.Generator {
		insts := make([]trace.Inst, 10000)
		for i := range insts {
			taken := i%2 == 0
			if random {
				taken = rng.Intn(2) == 0
			}
			tgt := uint64(0x400000)
			insts[i] = trace.Inst{PC: 0x400000 + uint64(i%16)*4, Op: trace.OpBranch, Taken: taken, Target: tgt}
		}
		return &trace.LoopGen{Insts: insts}
	}
	pred := mkRun(t, []Thread{{Gen: mk(false), Core: 0, Measured: true}}, 30_000)
	rand_ := mkRun(t, []Thread{{Gen: mk(true), Core: 0, Measured: true}}, 30_000)
	if rand_.Total.MispredictRate() < pred.Total.MispredictRate()+0.2 {
		t.Fatalf("random branches mispredict %.2f vs patterned %.2f",
			rand_.Total.MispredictRate(), pred.Total.MispredictRate())
	}
	if rand_.Total.IPC() >= pred.Total.IPC() {
		t.Fatalf("mispredictions should cost IPC: random %.2f vs patterned %.2f",
			rand_.Total.IPC(), pred.Total.IPC())
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{}, nil); err == nil {
		t.Fatal("no threads should error")
	}
	g := aluStream(0, 10)
	if _, err := Run(RunConfig{}, []Thread{{Gen: g, Core: 99}}); err == nil {
		t.Fatal("out of range core should error")
	}
	if _, err := Run(RunConfig{}, []Thread{{Gen: g, Core: 0}, {Gen: g, Core: 0}, {Gen: g, Core: 0}}); err == nil {
		t.Fatal("three threads on one core should error")
	}
}

func TestWarmupExcludedFromCounters(t *testing.T) {
	// A stream over a 1MB data span: with warm-up, the measured window
	// should see far fewer cold misses than without.
	cold := mkRun(t, []Thread{{Gen: loadStream(5, 1<<20, false, 16384), Core: 0, Measured: true}}, 16_384)
	cfg := RunConfig{
		Core: DefaultCoreConfig(), Mem: cache.DefaultSystemConfig(),
		WarmupInsts: 40_000, MeasureInsts: 16_384, MaxCycles: 20_000_000,
	}
	warm, err := Run(cfg, []Thread{{Gen: loadStream(5, 1<<20, false, 16384), Core: 0, Measured: true}})
	if err != nil {
		t.Fatal(err)
	}
	coldMiss := float64(cold.Total.LLCMiss) / float64(cold.Total.Commits())
	warmMiss := float64(warm.Total.LLCMiss) / float64(warm.Total.Commits())
	if warmMiss > coldMiss*0.5 {
		t.Fatalf("warm-up ineffective: cold %.4f vs warm %.4f LLC misses/inst", coldMiss, warmMiss)
	}
}

// TestWarmupTrafficDoesNotQueueIntoWindow guards against warm-up DRAM
// traffic leaving channel backlog that inflates measured latencies
// (a bug found while reproducing Figure 4).
func TestWarmupTrafficDoesNotQueueIntoWindow(t *testing.T) {
	// A hungry co-runner whose warm-up floods DRAM.
	flood := loadStream(9, 64<<20, false, 200_000)
	victim := aluStream(0, 1000)
	cfg := RunConfig{
		Core: DefaultCoreConfig(), Mem: cache.DefaultSystemConfig(),
		WarmupInsts: 150_000, MeasureInsts: 20_000, MaxCycles: 10_000_000,
	}
	res, err := Run(cfg, []Thread{
		{Gen: victim, Core: 0, Measured: true},
		{Gen: flood, Core: 1, Measured: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The ALU victim never touches memory: its IPC must stay near the
	// machine width regardless of the co-runner's warm-up traffic.
	victimIPC := res.PerCore[0].IPC()
	if victimIPC < 3 {
		t.Fatalf("victim IPC %.2f: warm-up backlog leaked into the window", victimIPC)
	}
}

// TestSMTSharesStructuresFairly: two identical SMT contexts must make
// comparable progress (round-robin fetch/commit).
func TestSMTSharesStructuresFairly(t *testing.T) {
	res := mkRun(t, []Thread{
		{Gen: aluStream(1, 1000), Core: 0, Measured: true},
		{Gen: aluStream(1, 1000), Core: 0, Measured: true},
	}, 30_000)
	a, b := float64(res.PerThread[0]), float64(res.PerThread[1])
	if a/b > 1.2 || b/a > 1.2 {
		t.Fatalf("SMT contexts diverged: %v vs %v commits", a, b)
	}
}

// TestMSHRLimitBoundsMLP: the super queue caps outstanding misses.
func TestMSHRLimitBoundsMLP(t *testing.T) {
	cfg := RunConfig{
		Core: DefaultCoreConfig(), Mem: cache.DefaultSystemConfig(),
		MeasureInsts: 20_000, MaxCycles: 10_000_000,
	}
	cfg.Core.MSHRs = 4
	res, err := Run(cfg, []Thread{{Gen: loadStream(3, 256<<20, false, 100_000), Core: 0, Measured: true}})
	if err != nil {
		t.Fatal(err)
	}
	if mlp := res.Total.MLP(); mlp > 4.2 {
		t.Fatalf("MLP %.2f exceeds the 4-entry super queue", mlp)
	}
}

// TestSampledRunProducesIntervals: the sampling gate yields one counter
// delta per interval, and their sums are the run totals.
func TestSampledRunProducesIntervals(t *testing.T) {
	cfg := RunConfig{
		Core: DefaultCoreConfig(), Mem: cache.DefaultSystemConfig(),
		WarmupInsts: 10_000, MeasureInsts: 2_000, MaxCycles: 10_000_000,
		Intervals: 6, IntervalWarmInsts: 8_000,
	}
	res, err := Run(cfg, []Thread{{Gen: loadStream(7, 8<<20, false, 100_000), Core: 0, Measured: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) != 6 {
		t.Fatalf("got %d intervals, want 6", len(res.Intervals))
	}
	var cyc int64
	var commits, busy uint64
	for i, iv := range res.Intervals {
		if iv.Cycles <= 0 {
			t.Fatalf("interval %d has %d cycles", i, iv.Cycles)
		}
		pc := iv.PerCore[0]
		if pc == nil {
			t.Fatalf("interval %d missing core 0 delta", i)
		}
		if pc.Commits() < 2_000 {
			t.Fatalf("interval %d committed %d, want >= budget 2000", i, pc.Commits())
		}
		cyc += iv.Cycles
		commits += pc.Commits()
		busy += iv.DRAMBusyCycles
	}
	if cyc != res.Cycles {
		t.Fatalf("interval cycles sum %d != total %d", cyc, res.Cycles)
	}
	if commits != res.PerCore[0].Commits() {
		t.Fatalf("interval commits sum %d != total %d", commits, res.PerCore[0].Commits())
	}
	if busy != res.Total.DRAMBusyCycles {
		t.Fatalf("interval DRAM busy sum %d != total %d", busy, res.Total.DRAMBusyCycles)
	}
	// Warming between intervals is excluded from the measured totals:
	// the run commits ~6 x 2000 timed instructions, far below the
	// warming volume it streamed.
	if got := res.PerCore[0].Commits(); got > 13_000 {
		t.Fatalf("measured commits %d include warming activity", got)
	}
}

// TestSampledMatchesContiguousShape: sampled and contiguous measurements
// of the same stream must agree on coarse metrics (same workload, warm
// state) while the sampled run measures far fewer instructions.
func TestSampledMatchesContiguousShape(t *testing.T) {
	mk := func() []Thread {
		return []Thread{{Gen: loadStream(11, 4<<20, false, 100_000), Core: 0, Measured: true}}
	}
	contig, err := Run(RunConfig{
		Core: DefaultCoreConfig(), Mem: cache.DefaultSystemConfig(),
		WarmupInsts: 20_000, MeasureInsts: 40_000, MaxCycles: 20_000_000,
	}, mk())
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Run(RunConfig{
		Core: DefaultCoreConfig(), Mem: cache.DefaultSystemConfig(),
		WarmupInsts: 20_000, MeasureInsts: 1_000, MaxCycles: 20_000_000,
		Intervals: 8, IntervalWarmInsts: 4_000,
	}, mk())
	if err != nil {
		t.Fatal(err)
	}
	ci, si := contig.Total.IPC(), sampled.Total.IPC()
	if si < ci*0.8 || si > ci*1.2 {
		t.Fatalf("sampled IPC %.3f strays from contiguous %.3f", si, ci)
	}
	if sampled.PerCore[0].Commits() > contig.PerCore[0].Commits()/4 {
		t.Fatalf("sampled run measured %d insts vs contiguous %d: no reduction",
			sampled.PerCore[0].Commits(), contig.PerCore[0].Commits())
	}
}

// TestAdaptiveStopCallback: StopSampling ends the run early and the
// result carries only the measured intervals.
func TestAdaptiveStopCallback(t *testing.T) {
	calls := 0
	cfg := RunConfig{
		Core: DefaultCoreConfig(), Mem: cache.DefaultSystemConfig(),
		MeasureInsts: 1_000, MaxCycles: 10_000_000,
		Intervals: 10, IntervalWarmInsts: 1_000,
		StopSampling: func(done []IntervalResult) bool {
			calls++
			return len(done) >= 3
		},
	}
	res, err := Run(cfg, []Thread{{Gen: aluStream(0, 1000), Core: 0, Measured: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) != 3 {
		t.Fatalf("adaptive run measured %d intervals, want 3", len(res.Intervals))
	}
	if calls != 3 {
		t.Fatalf("callback ran %d times, want 3", calls)
	}
}

// TestFiniteStreamStopsSampling: a drained trace ends the schedule
// instead of spinning through empty intervals.
func TestFiniteStreamStopsSampling(t *testing.T) {
	insts := make([]trace.Inst, 3_000)
	for i := range insts {
		insts[i] = trace.Inst{PC: 0x400000, Op: trace.OpALU}
	}
	cfg := RunConfig{
		Core: DefaultCoreConfig(), Mem: cache.DefaultSystemConfig(),
		MeasureInsts: 1_000, MaxCycles: 10_000_000,
		Intervals: 10, IntervalWarmInsts: 500,
	}
	res, err := Run(cfg, []Thread{{Gen: &trace.SliceGen{Insts: insts}, Core: 0, Measured: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) >= 10 {
		t.Fatalf("drained stream still ran %d intervals", len(res.Intervals))
	}
	if res.PerThread[0] > 3_000 {
		t.Fatalf("committed %d of a 3000-inst stream", res.PerThread[0])
	}
}

// TestBudgetGuards: non-positive budgets are rejected with clear errors
// instead of hanging the timed loop on a wrapped uint64 target.
func TestBudgetGuards(t *testing.T) {
	g := aluStream(0, 10)
	for _, cfg := range []RunConfig{
		{MeasureInsts: 0},
		{MeasureInsts: -5},
		{MeasureInsts: 100, WarmupInsts: -1},
		{MeasureInsts: 100, Intervals: -2},
		{MeasureInsts: 100, Intervals: 4, IntervalWarmInsts: -1},
	} {
		if _, err := Run(cfg, []Thread{{Gen: g, Core: 0, Measured: true}}); err == nil {
			t.Errorf("config %+v accepted, want budget error", cfg)
		}
	}
}

// The LLC directory's sharers bitmask is 32 bits of global core ids;
// larger machines must be rejected, not silently corrupted.
func TestRunRejectsMoreThan32Cores(t *testing.T) {
	cfg := RunConfig{Mem: cache.DefaultSystemConfig()}
	cfg.Mem.Sockets, cfg.Mem.CoresPerSocket = 6, 6
	fn := trace.NewCodeLayout(0x40_0000, 0x1_0000).Func("f", 64)
	started := false
	gen := trace.NewStepGen(trace.EmitterConfig{Seed: 1, BlockLen: 4}, trace.ProgFunc(func(e *trace.Emitter) bool {
		if !started {
			e.Call(fn)
			started = true
		}
		e.ALUIndep(4)
		return true
	}))
	defer gen.Close()
	_, err := Run(cfg, []Thread{{Gen: gen, Core: 0, Measured: true}})
	if err == nil {
		t.Fatal("36-core machine must be rejected (32-bit sharers mask)")
	}
}

// TestRunTopologyValidation covers the topology validation that
// replaced the old blanket 32-core directory limit: malformed grids are
// rejected with real errors, and grids past the old ceiling run.
func TestRunTopologyValidation(t *testing.T) {
	g := aluStream(0, 10)
	run := func(mutate func(*cache.SystemConfig), core int) error {
		cfg := RunConfig{
			Core: DefaultCoreConfig(), Mem: cache.DefaultSystemConfig(),
			MeasureInsts: 500, MaxCycles: 1_000_000,
		}
		mutate(&cfg.Mem)
		_, err := Run(cfg, []Thread{{Gen: g, Core: core, Measured: true}})
		return err
	}
	if err := run(func(m *cache.SystemConfig) { m.Sockets = -1 }, 0); err == nil {
		t.Error("negative socket count must be rejected")
	}
	if err := run(func(m *cache.SystemConfig) { m.CoresPerSocket = 0 }, 0); err == nil {
		t.Error("zero cores per socket with nonzero sockets must be rejected")
	}
	if err := run(func(m *cache.SystemConfig) { m.Sockets, m.CoresPerSocket = 8, 64 }, 0); err == nil {
		t.Errorf("a %d-core grid must exceed the %d-core sharer vector", 8*64, cache.MaxCores)
	}
	if err := run(func(m *cache.SystemConfig) { m.Interconnect = topo.Kind(200) }, 0); err == nil {
		t.Error("unknown interconnect kind must be rejected")
	}
	// The old engine refused any machine beyond 32 cores; a 4x16 grid
	// with a thread on core 40 must now simply run.
	if err := run(func(m *cache.SystemConfig) { m.Sockets, m.CoresPerSocket = 4, 16 }, 40); err != nil {
		t.Errorf("4x16-core grid rejected: %v", err)
	}
}
