// Package engine implements the cycle-approximate out-of-order core
// model and the chip-level simulation loop. Together with the memory
// system (internal/sim/cache) it is the stand-in for the Xeon X5670 of
// Table 1: 4-wide issue and retire, a 128-entry reorder buffer, 36
// reservation stations, 48/32-entry load/store queues, and optional
// two-way simultaneous multi-threading.
//
// The model tracks what the paper's counters measure — commit slots,
// stall cycles and their user/OS attribution, super-queue (off-core
// request) occupancy for memory cycles and MLP, branch mispredictions,
// and all cache-hierarchy events — without simulating wrong-path
// execution or detailed scheduler ports. Section 3.1's measurement
// definitions are implemented verbatim in the cycle loop.
package engine

import (
	"errors"
	"fmt"

	"cloudsuite/internal/obs"
	"cloudsuite/internal/sim/bpred"
	"cloudsuite/internal/sim/cache"
	"cloudsuite/internal/sim/checkpoint"
	"cloudsuite/internal/sim/counters"
	"cloudsuite/internal/sim/tlb"
	"cloudsuite/internal/trace"
)

// CoreConfig sizes one core (Table 1 values by default).
type CoreConfig struct {
	// Width is the issue/retire width.
	Width int
	// ROB is the reorder-buffer capacity (shared between SMT contexts).
	ROB int
	// RS is the reservation-station count.
	RS int
	// LoadQ and StoreQ are load/store queue capacities.
	LoadQ, StoreQ int
	// MSHRs is the super-queue size: the maximum number of outstanding
	// L1 data misses.
	MSHRs int
	// MispredictPenalty is the front-end refill time after a resolved
	// mispredicted branch.
	MispredictPenalty int
	// ALULatency, MulLatency, FPLatency are execution latencies.
	ALULatency, MulLatency, FPLatency int
}

// DefaultCoreConfig returns the Table-1 core: 4-wide, 128-entry ROB,
// 36 reservation stations, 48/32 load/store buffers.
func DefaultCoreConfig() CoreConfig {
	return CoreConfig{
		Width: 4, ROB: 128, RS: 36, LoadQ: 48, StoreQ: 32,
		MSHRs: 16, MispredictPenalty: 14,
		ALULatency: 1, MulLatency: 3, FPLatency: 4,
	}
}

// Thread binds an instruction stream to a core. Placing two threads on
// the same core models SMT.
type Thread struct {
	// Gen produces the thread's dynamic instruction stream.
	Gen trace.Generator
	// Core is the global core id the thread runs on.
	Core int
	// Measured threads count toward the measurement-window stop
	// condition; helper threads (e.g. cache polluters) do not.
	Measured bool
}

// RunConfig configures one simulation.
type RunConfig struct {
	Core CoreConfig
	Mem  cache.SystemConfig
	// WarmupInsts is the per-thread functional warm-up length: caches,
	// TLBs and predictors are trained without timing, mirroring the
	// paper's ramp-up period before the measurement window.
	WarmupInsts int64
	// MeasureInsts is the per-measured-thread instruction budget of each
	// timed window (the whole measurement in contiguous mode, one
	// interval in sampled mode). Must be positive.
	MeasureInsts int64
	// MaxCycles bounds each timed window as a safety net (0 = no bound).
	MaxCycles int64

	// Intervals selects SMARTS-style interval sampling when >= 1: the
	// run executes Intervals timed windows of MeasureInsts each, every
	// window after the first preceded by IntervalWarmInsts of functional
	// warming (caches, TLBs and predictors updated, counters frozen).
	// Per-window counter deltas land in Result.Intervals. 0 runs the
	// classic single contiguous window.
	Intervals int
	// IntervalWarmInsts is the per-thread functional-warming budget
	// between consecutive measurement intervals.
	IntervalWarmInsts int64
	// DetailWarmInsts, in sampled mode, runs an aggregate quantum of
	// DetailWarmInsts x measured-threads through the detailed timing
	// model immediately before each window's counters are snapshotted:
	// the window then opens on steady-state pipeline occupancy instead
	// of the commit burst a functionally-refilled window would produce.
	DetailWarmInsts int64
	// StopSampling, when non-nil, is consulted after each completed
	// interval with the windows measured so far; returning true ends the
	// run early (adaptive sampling). The callback sees deterministic
	// inputs, so early stopping keeps runs bit-reproducible per seed.
	StopSampling func(done []IntervalResult) bool

	// Checkpoint, when non-nil, is invoked once at the warm->measure
	// boundary (after WarmupInsts of functional warming, before the
	// first timed window) with a snapshot of the complete simulated-
	// machine state — and, when SaveShared is set and every generator
	// supports it, the complete generator state too (a "live" image
	// that restores by a pure load). It is not invoked on restored
	// runs. The callback runs on the simulation goroutine; a slow
	// callback delays the measurement but cannot change its result.
	Checkpoint func(*checkpoint.Snapshot)
	// SaveShared and LoadShared, when non-nil, serialize and restore
	// the workload's shared structures (data-store contents, kernel
	// state, allocator cursors — everything the per-thread generators
	// reference but do not own). Setting SaveShared upgrades snapshots
	// taken by this run to the live flavor if every thread's generator
	// is also serializable; a live image restores without replaying
	// any of the warmup instruction stream. LoadShared must accept
	// exactly what SaveShared wrote (signatures match
	// workloads.Stateful; errors flow through the Reader).
	SaveShared func(*checkpoint.Writer)
	LoadShared func(*checkpoint.Reader)
	// CheckpointKey is the identity string recorded in snapshots taken
	// by this run; restore-side caches use it to name the warm-relevant
	// configuration the image belongs to.
	CheckpointKey string
	// Restore, when non-nil, starts the run from the given warm
	// snapshot instead of warming from cold. A live image restores by
	// a pure load: machine state, workload shared state (via
	// LoadShared), and every thread's generator state deserialize
	// directly, with no instruction replay. A replay image instead
	// fast-forwards the trace generators WarmupInsts per thread —
	// re-running the workload deterministically so the emitters' RNG,
	// stream positions, and all workload/OS-model state reach the warm
	// point — while the machine state loads from the snapshot. The
	// snapshot must come from a run with identical warm-relevant
	// configuration (machine, threads, and WarmupInsts); mismatches —
	// including a generator stream that ends before the warm point —
	// fail with an error. A restored run is byte-identical to the warm
	// run it forked from.
	Restore *checkpoint.Snapshot

	// CheckInvariantsEvery, when positive, arms the memory system's
	// coherence invariant checker on every n-th access (1 = every
	// access). A violation panics. Checking is a pure observer: it
	// never changes a measurement, only vetoes an incoherent one, so
	// smoke runs at new scales can assert the directory's correctness
	// in-line.
	CheckInvariantsEvery int

	// Obs, when non-nil, observes the run: wall time is attributed to
	// phases (functional warming, detailed warming, timed windows,
	// trace generation, checkpoint save/restore/replay) in the
	// observer's registry, and coarse spans land on the run's trace
	// track. Observation is a pure observer — it reads the wall clock
	// and writes only observer state, so an armed run is byte-identical
	// to an unarmed one (differential-tested). Attribution is exclusive
	// at phase boundaries only: the per-cycle simulation loop never
	// touches it.
	Obs *obs.RunObs
}

// IntervalResult is one timed measurement window of a sampled run: the
// per-core counter deltas of that window only (functional-warming
// activity between windows is excluded by construction).
type IntervalResult struct {
	// PerCore holds each used core's counter delta over this window,
	// indexed by global core id (nil for unused cores). DRAM busy/span
	// fields are zeroed here; the chip-wide values are below.
	PerCore []*counters.Counters
	// Cycles is this window's length in cycles.
	Cycles int64
	// DRAMBusyCycles is the chip-wide DRAM busy-cycle delta of this
	// window (summed over channels and sockets).
	DRAMBusyCycles uint64
}

// Result carries the outcome of a run.
type Result struct {
	// Total sums the per-core counter blocks of all cores that ran a
	// measured or helper thread.
	Total counters.Counters
	// PerCore holds each used core's counter block, indexed by global
	// core id (nil for unused cores).
	PerCore []*counters.Counters
	// PerThread holds committed-instruction counts per thread.
	PerThread []uint64
	// Cycles is the timed length in cycles (summed over windows in
	// sampled mode).
	Cycles int64
	// Intervals holds the per-window deltas of a sampled run (nil in
	// contiguous mode). Total and PerCore are their sums.
	Intervals []IntervalResult
}

const (
	stWaiting uint8 = iota
	stIssued
	stDone
)

type entry struct {
	inst    trace.Inst
	doneAt  int64
	status  uint8
	offcore bool
	l1Miss  bool
}

type context struct {
	gen      trace.Generator
	buf      []trace.Inst
	bufPos   int
	bufLen   int
	eof      bool
	measured bool
	tid      int

	window  []entry
	head    int
	tail    int
	count   int
	baseSeq int64 // dynamic seq of window head

	fetchBlockedUntil int64
	imissUntil        int64 // off-core or L2 instruction-stall window
	redirectUntil     int64
	pendingBranch     int64 // absolute seq of unresolved mispredict, -1
	lastFetchLine     uint64
	lastFetchPage     uint64
	lastMode          bool // kernel flag of last dispatched inst
	committed         uint64
	committedUser     uint64

	// Functional-warming fetch state, kept across warming phases so a
	// sampled run's later warm intervals do not re-touch lines the
	// stream already sits on.
	warmLine uint64
	warmPage uint64
	// target is the cumulative commit count that ends the current timed
	// window for this context.
	target uint64

	// ro observes batch pulls: time inside gen.Next is carved out of
	// the ambient phase and attributed to trace generation. Nil when
	// observability is disarmed (the nil check costs once per
	// 4096-instruction batch, never per instruction).
	ro *obs.RunObs
}

type core struct {
	id   int
	cfg  CoreConfig
	ctxs []*context
	bp   *bpred.Predictor
	tlbs *tlb.Hierarchy

	rsUsed int
	lqUsed int
	sqUsed int

	superQ  []int64 // completion times of outstanding L1-D misses
	offcore []int64 // completion times of outstanding off-core data reqs
	tlbBusy int64

	nextCtx int // round-robin pointer for SMT fairness
}

func (c *context) peek() (*trace.Inst, bool) {
	if c.bufPos == c.bufLen {
		if c.eof {
			return nil, false
		}
		if c.ro != nil {
			prev := c.ro.Enter(obs.PhaseTraceGen)
			c.bufLen = c.gen.Next(c.buf)
			c.ro.Enter(prev)
		} else {
			c.bufLen = c.gen.Next(c.buf)
		}
		c.bufPos = 0
		if c.bufLen == 0 {
			c.eof = true
			return nil, false
		}
	}
	return &c.buf[c.bufPos], true
}

func (c *context) advance() { c.bufPos++ }

func (c *context) windowAt(i int) *entry { return &c.window[i%len(c.window)] }

// depReady reports whether the dependence at backward distance d from
// the instruction about to occupy absolute index seq is satisfied.
func (c *context) depReady(seq int64, d int32, now int64) bool {
	if d == 0 {
		return true
	}
	p := seq - int64(d)
	if p < c.baseSeq {
		return true // producer already committed
	}
	idx := c.head + int(p-c.baseSeq)
	e := c.windowAt(idx)
	return e.status == stDone || (e.status == stIssued && e.doneAt <= now)
}

// Run simulates threads under cfg and returns the measured counters.
func Run(cfg RunConfig, threads []Thread) (*Result, error) {
	if len(threads) == 0 {
		return nil, errors.New("engine: no threads")
	}
	// Budget guards: a zero or negative measured budget would convert to
	// a huge uint64 commit target and spin the timed loop until the trace
	// ends (never, for the suite's unbounded generators).
	if cfg.MeasureInsts <= 0 {
		return nil, fmt.Errorf("engine: MeasureInsts %d must be positive", cfg.MeasureInsts)
	}
	if cfg.WarmupInsts < 0 {
		return nil, fmt.Errorf("engine: WarmupInsts %d must be >= 0", cfg.WarmupInsts)
	}
	if cfg.Intervals < 0 || cfg.IntervalWarmInsts < 0 || cfg.DetailWarmInsts < 0 {
		return nil, fmt.Errorf("engine: sampling schedule (%d intervals, %d warm insts, %d detail insts) must be non-negative",
			cfg.Intervals, cfg.IntervalWarmInsts, cfg.DetailWarmInsts)
	}
	if cfg.Core.Width == 0 {
		cfg.Core = DefaultCoreConfig()
	}
	// An entirely-unspecified core grid selects the Table-1 machine; a
	// partially- or badly-specified one is an error, not a silent
	// fallback.
	if cfg.Mem.Sockets == 0 && cfg.Mem.CoresPerSocket == 0 {
		cfg.Mem = cache.DefaultSystemConfig()
	}
	if err := cfg.Mem.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	mem := cache.NewSystem(cfg.Mem)
	if cfg.CheckInvariantsEvery > 0 {
		mem.EnableInvariantChecks(cfg.CheckInvariantsEvery)
	}

	perCore := map[int][]int{} // core id -> indices into threads
	for i, t := range threads {
		if t.Core < 0 || t.Core >= cfg.Mem.TotalCores() {
			return nil, fmt.Errorf("engine: thread core %d out of range (%d cores)", t.Core, cfg.Mem.TotalCores())
		}
		perCore[t.Core] = append(perCore[t.Core], i)
		if len(perCore[t.Core]) > 2 {
			return nil, fmt.Errorf("engine: more than two threads on core %d", t.Core)
		}
	}

	var cores []*core
	for id := 0; id < cfg.Mem.TotalCores(); id++ {
		ts, ok := perCore[id]
		if !ok {
			continue
		}
		co := &core{id: id, cfg: cfg.Core, bp: bpred.New(bpred.DefaultConfig()), tlbs: tlb.NewHierarchy()}
		winPer := cfg.Core.ROB / len(ts)
		for _, ti := range ts {
			t := threads[ti]
			ctx := &context{
				gen: t.Gen, buf: make([]trace.Inst, 4096),
				measured: t.Measured, tid: ti,
				window:        make([]entry, winPer),
				pendingBranch: -1,
				ro:            cfg.Obs,
			}
			co.ctxs = append(co.ctxs, ctx)
		}
		cores = append(cores, co)
	}

	// Functional warm-up: stream instructions through caches, TLBs and
	// the branch predictor with a coarse pseudo-clock, then snapshot
	// counters so the measured windows report deltas only. A sampled run
	// (cfg.Intervals >= 1) repeats the warm/measure alternation per
	// interval; the contiguous mode is the one-window special case of
	// the same loop, cycle-for-cycle identical to the pre-sampling
	// engine. A restored run skips the machine side of warming entirely:
	// generators fast-forward through the identical pull sequence and
	// the warmed machine state loads from the snapshot.
	clock := int64(0)
	if cfg.Restore != nil {
		// Load the warm image instead of warming. The whole restore is
		// ckpt_restore; only a replay-flavor image enters ckpt_replay
		// (for its generator fast-forward), so live forks report
		// ckpt_replay ~ 0. Metric attribution inside replay: generation
		// lands in trace_gen (the carve-out in peek) — deliberately, so
		// the breakdown shows that replay cost IS trace generation. The
		// coarse spans are inclusive wall intervals.
		span := cfg.Obs.SpanStart()
		prev := cfg.Obs.Enter(obs.PhaseCkptRestore)
		err := restoreRun(cfg.Restore, cfg, cores, mem, &clock)
		cfg.Obs.SpanEnd("ckpt-restore", span)
		cfg.Obs.Enter(prev)
		if err != nil {
			return nil, err
		}
	} else {
		span := cfg.Obs.SpanStart()
		prev := cfg.Obs.Enter(obs.PhaseFuncWarm)
		for _, co := range cores {
			for _, ctx := range co.ctxs {
				co.warmThread(ctx, mem, cfg.WarmupInsts, &clock)
			}
		}
		cfg.Obs.SpanEnd("warm", span)
		if cfg.Checkpoint != nil {
			span = cfg.Obs.SpanStart()
			cfg.Obs.Enter(obs.PhaseCkptSave)
			cfg.Checkpoint(saveMachine(cfg, clock, cores, mem))
			cfg.Obs.SpanEnd("ckpt-save", span)
		}
		cfg.Obs.Enter(prev)
	}

	nWindows := cfg.Intervals
	if nWindows < 1 {
		nWindows = 1
	}
	nMeasured := 0
	for _, t := range threads {
		if t.Measured {
			nMeasured++
		}
	}
	totalCores := cfg.Mem.TotalCores()
	res := &Result{
		PerCore:   make([]*counters.Counters, totalCores),
		PerThread: make([]uint64, len(threads)),
	}
	totals := make([]counters.Counters, totalCores)
	snapshots := make([]counters.Counters, totalCores)
	var totalBusy uint64

	windowPhase := obs.PhaseTimedWindow
	windowSpan := "window"
	if cfg.Intervals >= 1 {
		windowPhase = obs.PhaseSampleInterval
		windowSpan = "interval"
	}
	for iv := 0; iv < nWindows; iv++ {
		if iv > 0 {
			span := cfg.Obs.SpanStart()
			prev := cfg.Obs.Enter(obs.PhaseFuncWarm)
			for _, co := range cores {
				for _, ctx := range co.ctxs {
					co.warmThread(ctx, mem, cfg.IntervalWarmInsts, &clock)
				}
			}
			cfg.Obs.Enter(prev)
			cfg.Obs.SpanEnd("interval-warm", span)
		}
		if cfg.Intervals >= 1 && cfg.DetailWarmInsts > 0 {
			// Detailed warming: execute a pre-window quantum under full
			// timing before the snapshot, so the measured window starts
			// from steady-state pipeline state.
			span := cfg.Obs.SpanStart()
			prev := cfg.Obs.Enter(obs.PhaseDetailWarm)
			clock = runQuantum(cores, mem, cfg, clock, uint64(cfg.DetailWarmInsts)*uint64(nMeasured))
			cfg.Obs.Enter(prev)
			cfg.Obs.SpanEnd("detail-warm", span)
		}
		// Window stop condition. Contiguous mode preserves the paper's
		// per-thread contract: the window ends when every measured thread
		// has committed its budget. Sampled windows instead measure a
		// chip-wide instruction quantum (the SMARTS sampling unit):
		// MeasureInsts x measured-threads committed in aggregate. A
		// per-thread budget would overshoot badly on short windows when
		// thread progress is uneven (e.g. split-socket runs) — the fast
		// threads keep committing until the slowest reaches its budget,
		// once per interval.
		var quantumGoal uint64
		for _, co := range cores {
			snapshots[co.id] = *mem.Ctr(co.id)
			for _, ctx := range co.ctxs {
				ctx.target = ctx.committed + uint64(cfg.MeasureInsts)
				if ctx.measured {
					quantumGoal += ctx.committed
				}
			}
		}
		quantumGoal += uint64(cfg.MeasureInsts) * uint64(nMeasured)
		mem.DRAMSetSpanStart(clock)
		mem.DRAMResetQueues(clock)
		dramBusyStart := mem.DRAMBusyCycles()

		wspan := cfg.Obs.SpanStart()
		wprev := cfg.Obs.Enter(windowPhase)
		now := clock
		start := now
		active := true
		for active {
			now++
			if cfg.MaxCycles > 0 && now-start > cfg.MaxCycles {
				break
			}
			for _, co := range cores {
				co.cycle(now, mem, cfg)
			}
			if cfg.Intervals >= 1 {
				// Sampled window: stop once the aggregate quantum is
				// committed (or every measured thread has drained).
				var sum uint64
				live := false
				for _, co := range cores {
					for _, ctx := range co.ctxs {
						if ctx.measured {
							sum += ctx.committed
							if !ctx.drained() {
								live = true
							}
						}
					}
				}
				active = sum < quantumGoal && live
			} else {
				// Contiguous window: stop when every measured thread has
				// committed its budget.
				active = false
				for _, co := range cores {
					for _, ctx := range co.ctxs {
						if ctx.measured && ctx.committed < ctx.target && !ctx.drained() {
							active = true
						}
					}
				}
			}
		}
		cfg.Obs.Enter(wprev)
		cfg.Obs.SpanEnd(windowSpan, wspan)
		clock = now
		res.Cycles += now - start

		busy := mem.DRAMBusyCycles() - dramBusyStart
		totalBusy += busy
		window := IntervalResult{
			PerCore:        make([]*counters.Counters, totalCores),
			Cycles:         now - start,
			DRAMBusyCycles: busy,
		}
		drainedAll := true
		for _, co := range cores {
			d := mem.Ctr(co.id).Sub(&snapshots[co.id])
			d.DRAMBusyCycles = 0 // chip-wide; reported per window and in Total
			d.DRAMTotalCycles = 0
			window.PerCore[co.id] = &d
			totals[co.id].Add(&d)
			for _, ctx := range co.ctxs {
				res.PerThread[ctx.tid] = ctx.committed
				if ctx.measured && !ctx.drained() {
					drainedAll = false
				}
			}
		}
		if cfg.Intervals >= 1 {
			res.Intervals = append(res.Intervals, window)
		}
		if drainedAll {
			break // finite traces: no instructions left to sample
		}
		if cfg.StopSampling != nil && cfg.StopSampling(res.Intervals) {
			break
		}
	}

	for _, co := range cores {
		t := totals[co.id]
		res.PerCore[co.id] = &t
		res.Total.Add(&t)
	}
	// DRAM busy/span are chip-wide quantities, not per-core sums.
	res.Total.DRAMBusyCycles = totalBusy
	res.Total.DRAMTotalCycles = uint64(res.Cycles)
	res.Total.DRAMChannels = uint64(mem.DRAMTotalChannels())
	return res, nil
}

// runQuantum advances the detailed timing model from clock until the
// measured threads commit an aggregate quantum of instructions (or all
// drain, or the MaxCycles safety net trips) and returns the new clock.
// Counter effects land in the live counter blocks; callers exclude them
// by snapshotting afterwards.
func runQuantum(cores []*core, mem *cache.System, cfg RunConfig, clock int64, quantum uint64) int64 {
	var goal uint64
	live := false
	for _, co := range cores {
		for _, ctx := range co.ctxs {
			if ctx.measured {
				goal += ctx.committed
				if !ctx.drained() {
					live = true
				}
			}
		}
	}
	goal += quantum
	now, start := clock, clock
	for active := live && quantum > 0; active; {
		now++
		if cfg.MaxCycles > 0 && now-start > cfg.MaxCycles {
			break
		}
		for _, co := range cores {
			co.cycle(now, mem, cfg)
		}
		var sum uint64
		live = false
		for _, co := range cores {
			for _, ctx := range co.ctxs {
				if ctx.measured {
					sum += ctx.committed
					if !ctx.drained() {
						live = true
					}
				}
			}
		}
		active = sum < goal && live
	}
	return now
}

// warmThread streams up to insts instructions of ctx through the
// caches, TLBs, and branch predictor with a coarse pseudo-clock and no
// timing: microarchitectural state observes every instruction while the
// measured windows' counter deltas exclude this activity (functional
// warming). The shared clock advances so DRAM-queue and span bookkeeping
// stay ordered with the timed windows around it.
func (co *core) warmThread(ctx *context, mem *cache.System, insts int64, clock *int64) {
	for fetched := int64(0); fetched < insts; fetched++ {
		in, ok := ctx.peek()
		if !ok {
			return
		}
		line := in.PC >> cache.LineShift
		if line != ctx.warmLine {
			page := in.PC >> 12
			if page != ctx.warmPage {
				co.tlbs.TranslateI(in.PC)
				ctx.warmPage = page
			}
			mem.FetchInstr(co.id, in.PC, *clock, in.Kernel)
			ctx.warmLine = line
		}
		switch in.Op {
		case trace.OpLoad, trace.OpStore:
			co.tlbs.TranslateD(in.Addr)
			mem.AccessData(co.id, in.Addr, in.Op == trace.OpStore, in.Kernel, *clock)
		case trace.OpBranch:
			co.bp.Update(in.PC, in.Taken, in.Target)
		}
		ctx.advance()
		*clock += 2
	}
}

// drained reports whether the context has no more work: stream ended and
// window empty.
func (c *context) drained() bool { return c.eof && c.count == 0 && c.bufPos == c.bufLen }

// cycle advances one core by one clock.
func (co *core) cycle(now int64, mem *cache.System, cfg RunConfig) {
	ctr := mem.Ctr(co.id)
	ctr.Cycles++

	co.expireMisses(now)

	committedMode, committedAny := co.commit(now, mem)
	co.issue(now, mem, ctr)
	co.frontend(now, mem, ctr)

	// Cycle classification (Figure 1). A cycle is Committing if at least
	// one instruction retired; otherwise it is Stalled and attributed to
	// the mode of the instruction blocking the head of the window (or
	// the last fetched mode when the window is empty).
	if committedAny {
		if committedMode {
			ctr.CommitCyclesOS++
		} else {
			ctr.CommitCyclesUser++
		}
	} else {
		mode, empty := co.headMode()
		if empty {
			ctr.FetchStallCycles++
		}
		if mode {
			ctr.StallCyclesOS++
		} else {
			ctr.StallCyclesUser++
		}
	}

	// Memory cycles (Section 3.1): at least one off-core data request
	// outstanding, instruction fetch stalled past the L1-I, or a TLB
	// walk in progress.
	if len(co.offcore) > 0 || co.tlbBusy > now || co.imissActive(now) {
		ctr.MemCycles++
	}
	// Super-queue occupancy for MLP (Figure 3, right).
	if n := len(co.superQ); n > 0 {
		ctr.MLPSum += uint64(n)
		ctr.MLPCycles++
	}
}

func (co *core) imissActive(now int64) bool {
	for _, ctx := range co.ctxs {
		if ctx.imissUntil > now {
			return true
		}
	}
	return false
}

func (co *core) headMode() (kernel bool, windowEmpty bool) {
	// Prefer the oldest head across contexts for attribution.
	var found *context
	for _, ctx := range co.ctxs {
		if ctx.count == 0 {
			continue
		}
		if found == nil || ctx.baseSeq < found.baseSeq {
			found = ctx
		}
	}
	if found == nil {
		for _, ctx := range co.ctxs {
			if ctx.lastMode {
				return true, true
			}
		}
		return false, true
	}
	return found.windowAt(found.head).inst.Kernel, false
}

func (co *core) expireMisses(now int64) {
	co.superQ = expire(co.superQ, now)
	co.offcore = expire(co.offcore, now)
}

func expire(q []int64, now int64) []int64 {
	w := 0
	for _, t := range q {
		if t > now {
			q[w] = t
			w++
		}
	}
	return q[:w]
}

// commit retires up to Width instructions across contexts, oldest head
// first, and returns the mode of the first retiree.
func (co *core) commit(now int64, mem *cache.System) (kernelMode bool, any bool) {
	budget := co.cfg.Width
	for budget > 0 {
		// Pick the context whose head is ready, preferring round-robin
		// fairness between SMT contexts.
		var pick *context
		for i := 0; i < len(co.ctxs); i++ {
			ctx := co.ctxs[(co.nextCtx+i)%len(co.ctxs)]
			if ctx.count == 0 {
				continue
			}
			h := ctx.windowAt(ctx.head)
			if h.status == stIssued && h.doneAt <= now {
				h.status = stDone
			}
			if h.status == stDone {
				pick = ctx
				break
			}
		}
		if pick == nil {
			break
		}
		h := pick.windowAt(pick.head)
		if h.inst.Op == trace.OpStore {
			// Stores update the cache at retirement (store buffer drain).
			mem.AccessData(co.id, h.inst.Addr, true, h.inst.Kernel, now)
			co.sqUsed--
		}
		if h.inst.Op == trace.OpLoad {
			co.lqUsed--
		}
		ctr := mem.Ctr(co.id)
		if h.inst.Kernel {
			ctr.CommitOS++
		} else {
			ctr.CommitUser++
			pick.committedUser++
		}
		if !any {
			any = true
			kernelMode = h.inst.Kernel
		}
		pick.committed++
		pick.head++
		if pick.head >= len(pick.window) {
			pick.head -= len(pick.window)
		}
		pick.count--
		pick.baseSeq++
		budget--
	}
	co.nextCtx++
	return kernelMode, any
}

// issue wakes up to Width ready instructions and starts execution.
func (co *core) issue(now int64, mem *cache.System, ctr *counters.Counters) {
	budget := co.cfg.Width
	for i := 0; i < len(co.ctxs) && budget > 0; i++ {
		ctx := co.ctxs[(co.nextCtx+i)%len(co.ctxs)]
		if ctx.count == 0 {
			continue
		}
		idx := ctx.head
		for n := 0; n < ctx.count && budget > 0; n++ {
			e := ctx.windowAt(idx)
			seq := ctx.baseSeq + int64(n)
			idx++
			if e.status != stWaiting {
				continue
			}
			if !ctx.depReady(seq, e.inst.DepA, now) || !ctx.depReady(seq, e.inst.DepB, now) {
				continue
			}
			switch e.inst.Op {
			case trace.OpLoad:
				if len(co.superQ) >= co.cfg.MSHRs {
					continue // super queue full: cannot start the miss
				}
				lat, tres := co.tlbs.TranslateD(e.inst.Addr)
				if tres == tlb.Walk {
					ctr.STLBMiss++
					if end := now + int64(lat); end > co.tlbBusy {
						co.tlbBusy = end
					}
				} else if tres == tlb.HitL2 {
					ctr.DTLBMiss++
				}
				r := mem.AccessData(co.id, e.inst.Addr, false, e.inst.Kernel, now)
				e.doneAt = r.Done + int64(lat)
				e.l1Miss = r.L1Miss
				e.offcore = r.OffCore
				if r.L1Miss {
					co.superQ = append(co.superQ, e.doneAt)
				}
				if r.OffCore {
					co.offcore = append(co.offcore, e.doneAt)
				}
			case trace.OpStore:
				// Address+data ready; completion is immediate (the write
				// happens at retirement through the store buffer).
				e.doneAt = now + 1
			case trace.OpBranch:
				e.doneAt = now + 1
				if ctx.pendingBranch == seq {
					ctx.redirectUntil = e.doneAt + int64(co.cfg.MispredictPenalty)
					ctx.pendingBranch = -1
				}
			case trace.OpMul:
				e.doneAt = now + int64(co.cfg.MulLatency)
			case trace.OpFP:
				e.doneAt = now + int64(co.cfg.FPLatency)
			default:
				e.doneAt = now + int64(co.cfg.ALULatency)
			}
			e.status = stIssued
			co.rsUsed--
			budget--
		}
	}
}

// frontend fetches and dispatches up to Width instructions into the
// window, honouring I-cache stalls, branch-mispredict redirects, and
// structural limits (ROB, RS, LQ/SQ).
func (co *core) frontend(now int64, mem *cache.System, ctr *counters.Counters) {
	budget := co.cfg.Width
	for i := 0; i < len(co.ctxs) && budget > 0; i++ {
		ctx := co.ctxs[(co.nextCtx+i)%len(co.ctxs)]
		for budget > 0 {
			if ctx.fetchBlockedUntil > now || ctx.redirectUntil > now || ctx.pendingBranch >= 0 {
				break
			}
			if ctx.count == len(ctx.window) || co.rsUsed >= co.cfg.RS {
				break
			}
			in, ok := ctx.peek()
			if !ok {
				break
			}
			switch in.Op {
			case trace.OpLoad:
				if co.lqUsed >= co.cfg.LoadQ {
					budget = 0
					continue
				}
			case trace.OpStore:
				if co.sqUsed >= co.cfg.StoreQ {
					budget = 0
					continue
				}
			}

			// Instruction fetch: access the I-side on line transitions.
			line := in.PC >> cache.LineShift
			if line != ctx.lastFetchLine {
				page := in.PC >> 12
				if page != ctx.lastFetchPage {
					lat, tres := co.tlbs.TranslateI(in.PC)
					if tres != tlb.HitL1 {
						ctr.ITLBMiss++
						ctx.fetchBlockedUntil = now + int64(lat)
						if end := now + int64(lat); end > co.tlbBusy {
							co.tlbBusy = end
						}
					}
					ctx.lastFetchPage = page
				}
				fr := mem.FetchInstr(co.id, in.PC, now, in.Kernel)
				ctx.lastFetchLine = line
				if fr.L1Miss {
					if fr.Done > ctx.fetchBlockedUntil {
						ctx.fetchBlockedUntil = fr.Done
					}
					if fr.Done > ctx.imissUntil {
						ctx.imissUntil = fr.Done
					}
					break
				}
				if ctx.fetchBlockedUntil > now {
					break
				}
			}

			// Dispatch into the window.
			slot := ctx.tail
			e := ctx.windowAt(slot)
			*e = entry{inst: *in, status: stWaiting}
			ctx.tail++
			if ctx.tail >= len(ctx.window) {
				ctx.tail -= len(ctx.window)
			}
			ctx.count++
			co.rsUsed++
			ctx.lastMode = in.Kernel
			switch in.Op {
			case trace.OpLoad:
				co.lqUsed++
			case trace.OpStore:
				co.sqUsed++
			case trace.OpBranch:
				ctr.Branches++
				// Unconditional transfers (calls, returns, jumps) are
				// handled by the BTB/RAS and never redirect late.
				if !in.Uncond && co.bp.Predict(in.PC, in.Taken, in.Target) {
					ctr.Mispredicts++
					ctx.pendingBranch = ctx.baseSeq + int64(ctx.count) - 1
				}
			}
			ctx.advance()
			budget--
		}
	}
}
