// Package engine implements the cycle-approximate out-of-order core
// model and the chip-level simulation loop. Together with the memory
// system (internal/sim/cache) it is the stand-in for the Xeon X5670 of
// Table 1: 4-wide issue and retire, a 128-entry reorder buffer, 36
// reservation stations, 48/32-entry load/store queues, and optional
// two-way simultaneous multi-threading.
//
// The model tracks what the paper's counters measure — commit slots,
// stall cycles and their user/OS attribution, super-queue (off-core
// request) occupancy for memory cycles and MLP, branch mispredictions,
// and all cache-hierarchy events — without simulating wrong-path
// execution or detailed scheduler ports. Section 3.1's measurement
// definitions are implemented verbatim in the cycle loop.
package engine

import (
	"errors"
	"fmt"

	"cloudsuite/internal/sim/bpred"
	"cloudsuite/internal/sim/cache"
	"cloudsuite/internal/sim/counters"
	"cloudsuite/internal/sim/tlb"
	"cloudsuite/internal/trace"
)

// CoreConfig sizes one core (Table 1 values by default).
type CoreConfig struct {
	// Width is the issue/retire width.
	Width int
	// ROB is the reorder-buffer capacity (shared between SMT contexts).
	ROB int
	// RS is the reservation-station count.
	RS int
	// LoadQ and StoreQ are load/store queue capacities.
	LoadQ, StoreQ int
	// MSHRs is the super-queue size: the maximum number of outstanding
	// L1 data misses.
	MSHRs int
	// MispredictPenalty is the front-end refill time after a resolved
	// mispredicted branch.
	MispredictPenalty int
	// ALULatency, MulLatency, FPLatency are execution latencies.
	ALULatency, MulLatency, FPLatency int
}

// DefaultCoreConfig returns the Table-1 core: 4-wide, 128-entry ROB,
// 36 reservation stations, 48/32 load/store buffers.
func DefaultCoreConfig() CoreConfig {
	return CoreConfig{
		Width: 4, ROB: 128, RS: 36, LoadQ: 48, StoreQ: 32,
		MSHRs: 16, MispredictPenalty: 14,
		ALULatency: 1, MulLatency: 3, FPLatency: 4,
	}
}

// Thread binds an instruction stream to a core. Placing two threads on
// the same core models SMT.
type Thread struct {
	// Gen produces the thread's dynamic instruction stream.
	Gen trace.Generator
	// Core is the global core id the thread runs on.
	Core int
	// Measured threads count toward the measurement-window stop
	// condition; helper threads (e.g. cache polluters) do not.
	Measured bool
}

// RunConfig configures one simulation.
type RunConfig struct {
	Core CoreConfig
	Mem  cache.SystemConfig
	// WarmupInsts is the per-thread functional warm-up length: caches,
	// TLBs and predictors are trained without timing, mirroring the
	// paper's ramp-up period before the measurement window.
	WarmupInsts int64
	// MeasureInsts is the per-measured-thread instruction budget of the
	// timed window.
	MeasureInsts int64
	// MaxCycles bounds the timed window as a safety net (0 = no bound).
	MaxCycles int64
}

// Result carries the outcome of a run.
type Result struct {
	// Total sums the per-core counter blocks of all cores that ran a
	// measured or helper thread.
	Total counters.Counters
	// PerCore holds each used core's counter block, indexed by global
	// core id (nil for unused cores).
	PerCore []*counters.Counters
	// PerThread holds committed-instruction counts per thread.
	PerThread []uint64
	// Cycles is the timed-window length in cycles.
	Cycles int64
}

const (
	stWaiting uint8 = iota
	stIssued
	stDone
)

type entry struct {
	inst    trace.Inst
	doneAt  int64
	status  uint8
	offcore bool
	l1Miss  bool
}

type context struct {
	gen      trace.Generator
	buf      []trace.Inst
	bufPos   int
	bufLen   int
	eof      bool
	measured bool
	tid      int

	window  []entry
	head    int
	tail    int
	count   int
	baseSeq int64 // dynamic seq of window head

	fetchBlockedUntil int64
	imissUntil        int64 // off-core or L2 instruction-stall window
	redirectUntil     int64
	pendingBranch     int64 // absolute seq of unresolved mispredict, -1
	lastFetchLine     uint64
	lastFetchPage     uint64
	lastMode          bool // kernel flag of last dispatched inst
	committed         uint64
	committedUser     uint64
}

type core struct {
	id   int
	cfg  CoreConfig
	ctxs []*context
	bp   *bpred.Predictor
	tlbs *tlb.Hierarchy

	rsUsed int
	lqUsed int
	sqUsed int

	superQ  []int64 // completion times of outstanding L1-D misses
	offcore []int64 // completion times of outstanding off-core data reqs
	tlbBusy int64

	nextCtx int // round-robin pointer for SMT fairness
}

func (c *context) peek() (*trace.Inst, bool) {
	if c.bufPos == c.bufLen {
		if c.eof {
			return nil, false
		}
		c.bufLen = c.gen.Next(c.buf)
		c.bufPos = 0
		if c.bufLen == 0 {
			c.eof = true
			return nil, false
		}
	}
	return &c.buf[c.bufPos], true
}

func (c *context) advance() { c.bufPos++ }

func (c *context) windowAt(i int) *entry { return &c.window[i%len(c.window)] }

// depReady reports whether the dependence at backward distance d from
// the instruction about to occupy absolute index seq is satisfied.
func (c *context) depReady(seq int64, d int32, now int64) bool {
	if d == 0 {
		return true
	}
	p := seq - int64(d)
	if p < c.baseSeq {
		return true // producer already committed
	}
	idx := c.head + int(p-c.baseSeq)
	e := c.windowAt(idx)
	return e.status == stDone || (e.status == stIssued && e.doneAt <= now)
}

// Run simulates threads under cfg and returns the measured counters.
func Run(cfg RunConfig, threads []Thread) (*Result, error) {
	if len(threads) == 0 {
		return nil, errors.New("engine: no threads")
	}
	if cfg.Core.Width == 0 {
		cfg.Core = DefaultCoreConfig()
	}
	if cfg.Mem.TotalCores() == 0 {
		cfg.Mem = cache.DefaultSystemConfig()
	}
	// The LLC directory tracks private copies in a 32-bit global-core
	// bitmask; a larger machine would silently drop sharers and corrupt
	// coherence.
	if cfg.Mem.TotalCores() > 32 {
		return nil, fmt.Errorf("engine: %d cores exceed the 32-core directory limit (%d sockets x %d)",
			cfg.Mem.TotalCores(), cfg.Mem.Sockets, cfg.Mem.CoresPerSocket)
	}
	mem := cache.NewSystem(cfg.Mem)

	perCore := map[int][]int{} // core id -> indices into threads
	for i, t := range threads {
		if t.Core < 0 || t.Core >= cfg.Mem.TotalCores() {
			return nil, fmt.Errorf("engine: thread core %d out of range (%d cores)", t.Core, cfg.Mem.TotalCores())
		}
		perCore[t.Core] = append(perCore[t.Core], i)
		if len(perCore[t.Core]) > 2 {
			return nil, fmt.Errorf("engine: more than two threads on core %d", t.Core)
		}
	}

	var cores []*core
	for id := 0; id < cfg.Mem.TotalCores(); id++ {
		ts, ok := perCore[id]
		if !ok {
			continue
		}
		co := &core{id: id, cfg: cfg.Core, bp: bpred.New(bpred.DefaultConfig()), tlbs: tlb.NewHierarchy()}
		winPer := cfg.Core.ROB / len(ts)
		for _, ti := range ts {
			t := threads[ti]
			ctx := &context{
				gen: t.Gen, buf: make([]trace.Inst, 4096),
				measured: t.Measured, tid: ti,
				window:        make([]entry, winPer),
				pendingBranch: -1,
			}
			co.ctxs = append(co.ctxs, ctx)
		}
		cores = append(cores, co)
	}

	// Functional warm-up: stream instructions through caches, TLBs and
	// the branch predictor with a coarse pseudo-clock, then snapshot
	// counters so the measured window reports deltas only.
	warmClock := int64(0)
	for _, co := range cores {
		for _, ctx := range co.ctxs {
			var fetched int64
			var lastLine, lastPage uint64
			for fetched < cfg.WarmupInsts {
				in, ok := ctx.peek()
				if !ok {
					break
				}
				line := in.PC >> cache.LineShift
				if line != lastLine {
					page := in.PC >> 12
					if page != lastPage {
						co.tlbs.TranslateI(in.PC)
						lastPage = page
					}
					mem.FetchInstr(co.id, in.PC, warmClock, in.Kernel)
					lastLine = line
				}
				switch in.Op {
				case trace.OpLoad, trace.OpStore:
					co.tlbs.TranslateD(in.Addr)
					mem.AccessData(co.id, in.Addr, in.Op == trace.OpStore, in.Kernel, warmClock)
				case trace.OpBranch:
					co.bp.Update(in.PC, in.Taken, in.Target)
				}
				ctx.advance()
				fetched++
				warmClock += 2
			}
		}
	}

	snapshots := make([]counters.Counters, cfg.Mem.TotalCores())
	for _, co := range cores {
		snapshots[co.id] = *mem.Ctr(co.id)
	}
	mem.DRAMSetSpanStart(warmClock)
	mem.DRAMResetQueues(warmClock)
	dramBusyStart := mem.DRAMBusyCycles()

	now := warmClock
	start := now
	active := true
	for active {
		now++
		if cfg.MaxCycles > 0 && now-start > cfg.MaxCycles {
			break
		}
		for _, co := range cores {
			co.cycle(now, mem, cfg)
		}
		// Stop when every measured thread has committed its budget.
		active = false
		for _, co := range cores {
			for _, ctx := range co.ctxs {
				if ctx.measured && ctx.committed < uint64(cfg.MeasureInsts) && !ctx.drained() {
					active = true
				}
			}
		}
	}

	res := &Result{
		PerCore:   make([]*counters.Counters, cfg.Mem.TotalCores()),
		PerThread: make([]uint64, len(threads)),
		Cycles:    now - start,
	}
	for _, co := range cores {
		d := mem.Ctr(co.id).Sub(&snapshots[co.id])
		d.DRAMBusyCycles = 0 // chip-wide; reported in Total only
		d.DRAMTotalCycles = 0
		res.PerCore[co.id] = &d
		res.Total.Add(&d)
		for _, ctx := range co.ctxs {
			res.PerThread[ctx.tid] = ctx.committed
		}
	}
	// DRAM busy/span are chip-wide quantities, not per-core sums.
	res.Total.DRAMBusyCycles = mem.DRAMBusyCycles() - dramBusyStart
	res.Total.DRAMTotalCycles = uint64(now - start)
	res.Total.DRAMChannels = uint64(mem.DRAMTotalChannels())
	return res, nil
}

// drained reports whether the context has no more work: stream ended and
// window empty.
func (c *context) drained() bool { return c.eof && c.count == 0 && c.bufPos == c.bufLen }

// cycle advances one core by one clock.
func (co *core) cycle(now int64, mem *cache.System, cfg RunConfig) {
	ctr := mem.Ctr(co.id)
	ctr.Cycles++

	co.expireMisses(now)

	committedMode, committedAny := co.commit(now, mem)
	co.issue(now, mem, ctr)
	co.frontend(now, mem, ctr)

	// Cycle classification (Figure 1). A cycle is Committing if at least
	// one instruction retired; otherwise it is Stalled and attributed to
	// the mode of the instruction blocking the head of the window (or
	// the last fetched mode when the window is empty).
	if committedAny {
		if committedMode {
			ctr.CommitCyclesOS++
		} else {
			ctr.CommitCyclesUser++
		}
	} else {
		mode, empty := co.headMode()
		if empty {
			ctr.FetchStallCycles++
		}
		if mode {
			ctr.StallCyclesOS++
		} else {
			ctr.StallCyclesUser++
		}
	}

	// Memory cycles (Section 3.1): at least one off-core data request
	// outstanding, instruction fetch stalled past the L1-I, or a TLB
	// walk in progress.
	if len(co.offcore) > 0 || co.tlbBusy > now || co.imissActive(now) {
		ctr.MemCycles++
	}
	// Super-queue occupancy for MLP (Figure 3, right).
	if n := len(co.superQ); n > 0 {
		ctr.MLPSum += uint64(n)
		ctr.MLPCycles++
	}
}

func (co *core) imissActive(now int64) bool {
	for _, ctx := range co.ctxs {
		if ctx.imissUntil > now {
			return true
		}
	}
	return false
}

func (co *core) headMode() (kernel bool, windowEmpty bool) {
	// Prefer the oldest head across contexts for attribution.
	var found *context
	for _, ctx := range co.ctxs {
		if ctx.count == 0 {
			continue
		}
		if found == nil || ctx.baseSeq < found.baseSeq {
			found = ctx
		}
	}
	if found == nil {
		for _, ctx := range co.ctxs {
			if ctx.lastMode {
				return true, true
			}
		}
		return false, true
	}
	return found.windowAt(found.head).inst.Kernel, false
}

func (co *core) expireMisses(now int64) {
	co.superQ = expire(co.superQ, now)
	co.offcore = expire(co.offcore, now)
}

func expire(q []int64, now int64) []int64 {
	w := 0
	for _, t := range q {
		if t > now {
			q[w] = t
			w++
		}
	}
	return q[:w]
}

// commit retires up to Width instructions across contexts, oldest head
// first, and returns the mode of the first retiree.
func (co *core) commit(now int64, mem *cache.System) (kernelMode bool, any bool) {
	budget := co.cfg.Width
	for budget > 0 {
		// Pick the context whose head is ready, preferring round-robin
		// fairness between SMT contexts.
		var pick *context
		for i := 0; i < len(co.ctxs); i++ {
			ctx := co.ctxs[(co.nextCtx+i)%len(co.ctxs)]
			if ctx.count == 0 {
				continue
			}
			h := ctx.windowAt(ctx.head)
			if h.status == stIssued && h.doneAt <= now {
				h.status = stDone
			}
			if h.status == stDone {
				pick = ctx
				break
			}
		}
		if pick == nil {
			break
		}
		h := pick.windowAt(pick.head)
		if h.inst.Op == trace.OpStore {
			// Stores update the cache at retirement (store buffer drain).
			mem.AccessData(co.id, h.inst.Addr, true, h.inst.Kernel, now)
			co.sqUsed--
		}
		if h.inst.Op == trace.OpLoad {
			co.lqUsed--
		}
		ctr := mem.Ctr(co.id)
		if h.inst.Kernel {
			ctr.CommitOS++
		} else {
			ctr.CommitUser++
			pick.committedUser++
		}
		if !any {
			any = true
			kernelMode = h.inst.Kernel
		}
		pick.committed++
		pick.head++
		if pick.head >= len(pick.window) {
			pick.head -= len(pick.window)
		}
		pick.count--
		pick.baseSeq++
		budget--
	}
	co.nextCtx++
	return kernelMode, any
}

// issue wakes up to Width ready instructions and starts execution.
func (co *core) issue(now int64, mem *cache.System, ctr *counters.Counters) {
	budget := co.cfg.Width
	for i := 0; i < len(co.ctxs) && budget > 0; i++ {
		ctx := co.ctxs[(co.nextCtx+i)%len(co.ctxs)]
		if ctx.count == 0 {
			continue
		}
		idx := ctx.head
		for n := 0; n < ctx.count && budget > 0; n++ {
			e := ctx.windowAt(idx)
			seq := ctx.baseSeq + int64(n)
			idx++
			if e.status != stWaiting {
				continue
			}
			if !ctx.depReady(seq, e.inst.DepA, now) || !ctx.depReady(seq, e.inst.DepB, now) {
				continue
			}
			switch e.inst.Op {
			case trace.OpLoad:
				if len(co.superQ) >= co.cfg.MSHRs {
					continue // super queue full: cannot start the miss
				}
				lat, tres := co.tlbs.TranslateD(e.inst.Addr)
				if tres == tlb.Walk {
					ctr.STLBMiss++
					if end := now + int64(lat); end > co.tlbBusy {
						co.tlbBusy = end
					}
				} else if tres == tlb.HitL2 {
					ctr.DTLBMiss++
				}
				r := mem.AccessData(co.id, e.inst.Addr, false, e.inst.Kernel, now)
				e.doneAt = r.Done + int64(lat)
				e.l1Miss = r.L1Miss
				e.offcore = r.OffCore
				if r.L1Miss {
					co.superQ = append(co.superQ, e.doneAt)
				}
				if r.OffCore {
					co.offcore = append(co.offcore, e.doneAt)
				}
			case trace.OpStore:
				// Address+data ready; completion is immediate (the write
				// happens at retirement through the store buffer).
				e.doneAt = now + 1
			case trace.OpBranch:
				e.doneAt = now + 1
				if ctx.pendingBranch == seq {
					ctx.redirectUntil = e.doneAt + int64(co.cfg.MispredictPenalty)
					ctx.pendingBranch = -1
				}
			case trace.OpMul:
				e.doneAt = now + int64(co.cfg.MulLatency)
			case trace.OpFP:
				e.doneAt = now + int64(co.cfg.FPLatency)
			default:
				e.doneAt = now + int64(co.cfg.ALULatency)
			}
			e.status = stIssued
			co.rsUsed--
			budget--
		}
	}
}

// frontend fetches and dispatches up to Width instructions into the
// window, honouring I-cache stalls, branch-mispredict redirects, and
// structural limits (ROB, RS, LQ/SQ).
func (co *core) frontend(now int64, mem *cache.System, ctr *counters.Counters) {
	budget := co.cfg.Width
	for i := 0; i < len(co.ctxs) && budget > 0; i++ {
		ctx := co.ctxs[(co.nextCtx+i)%len(co.ctxs)]
		for budget > 0 {
			if ctx.fetchBlockedUntil > now || ctx.redirectUntil > now || ctx.pendingBranch >= 0 {
				break
			}
			if ctx.count == len(ctx.window) || co.rsUsed >= co.cfg.RS {
				break
			}
			in, ok := ctx.peek()
			if !ok {
				break
			}
			switch in.Op {
			case trace.OpLoad:
				if co.lqUsed >= co.cfg.LoadQ {
					budget = 0
					continue
				}
			case trace.OpStore:
				if co.sqUsed >= co.cfg.StoreQ {
					budget = 0
					continue
				}
			}

			// Instruction fetch: access the I-side on line transitions.
			line := in.PC >> cache.LineShift
			if line != ctx.lastFetchLine {
				page := in.PC >> 12
				if page != ctx.lastFetchPage {
					lat, tres := co.tlbs.TranslateI(in.PC)
					if tres != tlb.HitL1 {
						ctr.ITLBMiss++
						ctx.fetchBlockedUntil = now + int64(lat)
						if end := now + int64(lat); end > co.tlbBusy {
							co.tlbBusy = end
						}
					}
					ctx.lastFetchPage = page
				}
				fr := mem.FetchInstr(co.id, in.PC, now, in.Kernel)
				ctx.lastFetchLine = line
				if fr.L1Miss {
					if fr.Done > ctx.fetchBlockedUntil {
						ctx.fetchBlockedUntil = fr.Done
					}
					if fr.Done > ctx.imissUntil {
						ctx.imissUntil = fr.Done
					}
					break
				}
				if ctx.fetchBlockedUntil > now {
					break
				}
			}

			// Dispatch into the window.
			slot := ctx.tail
			e := ctx.windowAt(slot)
			*e = entry{inst: *in, status: stWaiting}
			ctx.tail++
			if ctx.tail >= len(ctx.window) {
				ctx.tail -= len(ctx.window)
			}
			ctx.count++
			co.rsUsed++
			ctx.lastMode = in.Kernel
			switch in.Op {
			case trace.OpLoad:
				co.lqUsed++
			case trace.OpStore:
				co.sqUsed++
			case trace.OpBranch:
				ctr.Branches++
				// Unconditional transfers (calls, returns, jumps) are
				// handled by the BTB/RAS and never redirect late.
				if !in.Uncond && co.bp.Predict(in.PC, in.Taken, in.Target) {
					ctr.Mispredicts++
					ctx.pendingBranch = ctx.baseSeq + int64(ctx.count) - 1
				}
			}
			ctx.advance()
			budget--
		}
	}
}
