// Package power is an event-based energy model: it converts the
// performance-counter record of a run into energy, so designs can be
// compared on the paper's own terms — per-operation energy and power
// efficiency (the abstract's "improvements in the computational
// density per server and in the per-operation energy").
//
// The model is deliberately coarse: each architectural event carries a
// fixed energy cost, and each structure a leakage power proportional
// to its size, with per-event costs scaled by the aggressiveness of
// the core (a 4-wide out-of-order issue slot costs more than a 2-wide
// one, reflecting the super-linear growth of scheduler, bypass and
// ROB energy the paper describes in Section 2.1). Absolute joules are
// not meaningful; ratios between machines are.
package power

import (
	"cloudsuite/internal/sim/counters"
)

// Params carries the per-event energies (picojoules) and static powers
// (milliwatts) of one machine configuration.
type Params struct {
	// PJPerCommit is the pipeline energy of committing one instruction
	// (fetch, decode, rename, issue, writeback shares).
	PJPerCommit float64
	// PJPerL1 is the energy of one L1 (I or D) access.
	PJPerL1 float64
	// PJPerL2 is the energy of one L2 access.
	PJPerL2 float64
	// PJPerLLC is the energy of one LLC access.
	PJPerLLC float64
	// PJPerDRAMLine is the energy of transferring one 64B line off-chip.
	PJPerDRAMLine float64
	// MWLeakCore is per-core leakage+clock power.
	MWLeakCore float64
	// MWLeakLLCPerMB is LLC leakage per megabyte.
	MWLeakLLCPerMB float64
	// CoreCount and LLCMB describe the chip for leakage accounting.
	CoreCount int
	LLCMB     int
	// GHz converts cycles to time for leakage energy.
	GHz float64
}

// ConventionalParams models an aggressive 4-wide OoO server core
// (Westmere-class) at 2.93GHz.
func ConventionalParams(cores, llcMB int) Params {
	return Params{
		PJPerCommit: 220, PJPerL1: 25, PJPerL2: 60, PJPerLLC: 260,
		PJPerDRAMLine: 3200,
		MWLeakCore:    1400, MWLeakLLCPerMB: 180,
		CoreCount: cores, LLCMB: llcMB, GHz: 2.93,
	}
}

// ModestParams models a 2-wide out-of-order core: the paper's
// Section 2.1 argument is that window and width costs grow
// super-linearly, so the narrow core spends well under half the
// per-instruction pipeline energy.
func ModestParams(cores, llcMB int) Params {
	return Params{
		PJPerCommit: 80, PJPerL1: 25, PJPerL2: 45, PJPerLLC: 140,
		PJPerDRAMLine: 3200,
		MWLeakCore:    500, MWLeakLLCPerMB: 180,
		CoreCount: cores, LLCMB: llcMB, GHz: 2.93,
	}
}

// Report is the energy accounting of one measured window.
type Report struct {
	// DynamicPJ is the event (switching) energy in picojoules.
	DynamicPJ float64
	// LeakagePJ is the static energy over the window.
	LeakagePJ float64
	// Instructions is the committed-instruction count.
	Instructions uint64
	// Cycles is the window length in core cycles (per core).
	Cycles uint64
}

// TotalPJ returns dynamic plus leakage energy.
func (r Report) TotalPJ() float64 { return r.DynamicPJ + r.LeakagePJ }

// PJPerInstruction returns the paper's per-operation energy metric.
func (r Report) PJPerInstruction() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return r.TotalPJ() / float64(r.Instructions)
}

// Estimate converts a counter block into an energy report. The counter
// block's Cycles field is the sum over cores; leakage uses the
// wall-clock window (Cycles / active cores) times the whole chip.
func Estimate(p Params, c *counters.Counters, activeCores int) Report {
	if activeCores <= 0 {
		activeCores = 1
	}
	var r Report
	r.Instructions = c.Commits()
	r.Cycles = c.Cycles / uint64(activeCores)

	l1 := float64(c.L1DAccess + c.FetchL1IAccessUser + c.FetchL1IAccessOS)
	l2 := float64(c.L2Access)
	llc := float64(c.LLCAccess)
	lines := float64(c.OffchipBytes()) / 64

	r.DynamicPJ = p.PJPerCommit*float64(r.Instructions) +
		p.PJPerL1*l1 + p.PJPerL2*l2 + p.PJPerLLC*llc +
		p.PJPerDRAMLine*lines

	// Leakage: whole chip (all cores + LLC) over the window.
	seconds := float64(r.Cycles) / (p.GHz * 1e9)
	leakMW := p.MWLeakCore*float64(p.CoreCount) + p.MWLeakLLCPerMB*float64(p.LLCMB)
	r.LeakagePJ = leakMW * 1e-3 * seconds * 1e12 // mW * s -> pJ
	return r
}
