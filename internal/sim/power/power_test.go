package power

import (
	"testing"

	"cloudsuite/internal/sim/counters"
)

func sampleCounters() *counters.Counters {
	return &counters.Counters{
		Cycles: 4 * 100_000, CommitUser: 300_000, CommitOS: 20_000,
		L1DAccess: 90_000, FetchL1IAccessUser: 280_000, FetchL1IAccessOS: 20_000,
		L2Access: 20_000, LLCAccess: 5_000,
		OffchipReadUser: 64 * 2000, OffchipWriteback: 64 * 500,
	}
}

func TestEstimatePositiveComponents(t *testing.T) {
	p := ConventionalParams(6, 12)
	r := Estimate(p, sampleCounters(), 4)
	if r.DynamicPJ <= 0 || r.LeakagePJ <= 0 {
		t.Fatalf("energy components must be positive: %+v", r)
	}
	if r.PJPerInstruction() <= 0 {
		t.Fatal("per-instruction energy must be positive")
	}
	if r.Cycles != 100_000 {
		t.Fatalf("window cycles = %d, want per-core 100000", r.Cycles)
	}
}

func TestModestCoreUsesLessEnergyPerOp(t *testing.T) {
	c := sampleCounters()
	conv := Estimate(ConventionalParams(6, 12), c, 4)
	modest := Estimate(ModestParams(12, 4), c, 4)
	// Same work, modest design: lower pipeline energy and less LLC
	// leakage despite more cores.
	if modest.PJPerInstruction() >= conv.PJPerInstruction() {
		t.Fatalf("modest core should spend less per op: %.1f vs %.1f pJ",
			modest.PJPerInstruction(), conv.PJPerInstruction())
	}
}

func TestLeakageScalesWithWindow(t *testing.T) {
	p := ConventionalParams(6, 12)
	c := sampleCounters()
	short := Estimate(p, c, 4)
	c2 := *c
	c2.Cycles *= 2
	long := Estimate(p, &c2, 4)
	if long.LeakagePJ <= short.LeakagePJ {
		t.Fatal("leakage must grow with window length")
	}
	if long.DynamicPJ != short.DynamicPJ {
		t.Fatal("dynamic energy must not depend on window length")
	}
}

func TestZeroSafe(t *testing.T) {
	var c counters.Counters
	r := Estimate(ConventionalParams(6, 12), &c, 0)
	if r.PJPerInstruction() != 0 {
		t.Fatal("zero work must report zero per-op energy")
	}
}
