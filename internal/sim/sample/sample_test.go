package sample

import (
	"math"
	"testing"
)

func TestSpecEnabledAndNormalize(t *testing.T) {
	if (Spec{}).Enabled() {
		t.Error("zero Spec must be disabled")
	}
	if got := (Spec{}).Normalize(120_000); got != (Spec{}) {
		t.Errorf("disabled Spec normalized to %+v", got)
	}
	n := Spec{Intervals: 8}.Normalize(120_000)
	if n.Intervals != 8 || n.IntervalInsts != 2_500 || n.WarmInsts != 12_500 {
		t.Errorf("default schedule = %+v, want 8 x (12500 warm + 2500 measured)", n)
	}
	// The default schedule spans the contiguous horizon while measuring
	// a sixth of it by schedule.
	if n.HorizonInsts() != 120_000 {
		t.Errorf("horizon %d, want 120000", n.HorizonInsts())
	}
	if n.MeasuredInsts() != 20_000 {
		t.Errorf("measured %d, want 20000", n.MeasuredInsts())
	}
	// TargetRelErr alone enables sampling with defaults.
	a := Spec{TargetRelErr: 0.05}.Normalize(120_000)
	if a.Intervals != DefaultIntervals || a.IntervalInsts == 0 {
		t.Errorf("adaptive-only Spec normalized to %+v", a)
	}
	// Explicit fields survive.
	e := Spec{Intervals: 4, IntervalInsts: 1000, WarmInsts: 2000}.Normalize(120_000)
	if e.Intervals != 4 || e.IntervalInsts != 1000 || e.WarmInsts != 2000 {
		t.Errorf("explicit Spec changed by Normalize: %+v", e)
	}
	// A tiny budget still yields a schedulable interval.
	small := Spec{Intervals: 8}.Normalize(10)
	if small.IntervalInsts < 1 {
		t.Errorf("tiny budget produced IntervalInsts %d", small.IntervalInsts)
	}
}

func TestSpecValidate(t *testing.T) {
	for _, bad := range []Spec{
		{Intervals: -1},
		{IntervalInsts: -5},
		{WarmInsts: -1},
		{TargetRelErr: -0.1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", bad)
		}
	}
	if err := (Spec{Intervals: 8, TargetRelErr: 0.05}).Validate(); err != nil {
		t.Errorf("valid Spec rejected: %v", err)
	}
}

func TestFromSamples(t *testing.T) {
	if e := FromSamples(nil); e.N != 0 || e.Mean != 0 {
		t.Errorf("empty input gave %+v", e)
	}
	if e := FromSamples([]float64{2.5}); e.N != 1 || e.Mean != 2.5 || e.Half != 0 {
		t.Errorf("single sample gave %+v", e)
	}
	// Known case: {1,2,3,4,5} has mean 3, sd sqrt(2.5), se sqrt(0.5).
	e := FromSamples([]float64{1, 2, 3, 4, 5})
	if e.Mean != 3 {
		t.Errorf("mean %g, want 3", e.Mean)
	}
	wantSE := math.Sqrt(0.5)
	if math.Abs(e.StdErr-wantSE) > 1e-12 {
		t.Errorf("stderr %g, want %g", e.StdErr, wantSE)
	}
	wantHalf := 2.776 * wantSE // t(0.975, df=4)
	if math.Abs(e.Half-wantHalf) > 1e-9 {
		t.Errorf("half %g, want %g", e.Half, wantHalf)
	}
	if !e.Contains(3) || e.Contains(3+wantHalf+0.01) {
		t.Error("Contains disagrees with Lo/Hi")
	}
	if math.Abs(e.RelErr()-wantHalf/3) > 1e-12 {
		t.Errorf("relerr %g, want %g", e.RelErr(), wantHalf/3)
	}
	// Constant samples: zero spread, zero relative error.
	c := FromSamples([]float64{7, 7, 7, 7})
	if c.Half != 0 || c.RelErr() != 0 {
		t.Errorf("constant samples gave %+v", c)
	}
}

// TestCINarrowsWithN checks the 1/sqrt(n) contraction on synthetic
// samples with a fixed per-sample spread: quadrupling n should halve
// the standard error and shrink the CI by more (the t critical value
// falls as well).
func TestCINarrowsWithN(t *testing.T) {
	mk := func(n int) []float64 {
		vals := make([]float64, n)
		for i := range vals {
			// Deterministic alternating spread around 10.
			vals[i] = 10 + float64(i%2)*2 - 1
		}
		return vals
	}
	e4, e16 := FromSamples(mk(4)), FromSamples(mk(16))
	// The n-1 variance denominator perturbs the exact 0.5; the 1/sqrt(n)
	// trend must still dominate.
	if r := e16.StdErr / e4.StdErr; math.Abs(r-0.5) > 0.06 {
		t.Errorf("stderr ratio %g, want ~0.5", r)
	}
	if e16.Half >= e4.Half*0.5 {
		t.Errorf("CI half did not contract: %g -> %g", e4.Half, e16.Half)
	}
}

func TestStop(t *testing.T) {
	tight := []float64{1.00, 1.01, 0.99, 1.00}
	loose := []float64{0.5, 1.5, 0.7, 1.3}
	if Stop(tight[:2], 0.5) {
		t.Error("stopped below MinAdaptiveIntervals")
	}
	if !Stop(tight, 0.05) {
		t.Errorf("tight samples (relerr %g) should stop at 5%%", FromSamples(tight).RelErr())
	}
	if Stop(loose, 0.05) {
		t.Error("loose samples must not stop at 5%")
	}
	if Stop(tight, 0) {
		t.Error("zero target must never stop")
	}
}

func TestCombine(t *testing.T) {
	if e := Combine(nil); e.N != 0 {
		t.Errorf("empty combine gave %+v", e)
	}
	a := Estimate{N: 8, Mean: 1.0, StdErr: 0.1, Half: 0.2}
	b := Estimate{N: 8, Mean: 3.0, StdErr: 0.1, Half: 0.2}
	c := Combine([]Estimate{a, b})
	if c.Mean != 2.0 || c.N != 16 {
		t.Errorf("combined mean/N = %g/%d", c.Mean, c.N)
	}
	wantHalf := math.Sqrt(0.08) / 2
	if math.Abs(c.Half-wantHalf) > 1e-12 {
		t.Errorf("combined half %g, want %g", c.Half, wantHalf)
	}
}

func TestTCrit(t *testing.T) {
	if tCrit95(0) != 0 {
		t.Error("df 0 must yield 0")
	}
	// Monotone non-increasing toward the normal limit.
	prev := tCrit95(1)
	for df := 2; df <= 40; df++ {
		v := tCrit95(df)
		if v > prev {
			t.Fatalf("tCrit95 not monotone at df %d: %g > %g", df, v, prev)
		}
		prev = v
	}
	if tCrit95(1000) != 1.960 {
		t.Errorf("large-df limit %g, want 1.960", tCrit95(1000))
	}
}
