// Package sample implements the statistical-sampling methodology the
// measurement layer offers as an alternative to one contiguous window:
// SMARTS-style systematic interval sampling (Wunderlich et al., ISCA'03,
// the methodology DAMOV-scale characterization studies rely on).
//
// A sampled run replaces the single measured window with N short
// measurement intervals spread across a much longer execution. Each
// interval is preceded by functional warming — caches, TLBs, and branch
// predictors observe every instruction, but counters stay frozen — so
// the detailed windows see warm microarchitectural state. Per-metric
// sample means, standard errors, and 95% confidence intervals come out
// of the interval vector; an adaptive mode stops spawning intervals
// once the CI of a target metric is within a requested relative error.
//
// The package is deliberately free of simulator dependencies: the
// engine consumes a Spec's schedule, the measurement layer feeds metric
// values per interval back into Estimate. Everything here is
// deterministic — a Spec fully determines the schedule, so a sampled
// measurement remains bit-reproducible per seed (the property the
// Runner's memoization and the serial==parallel guarantee stand on).
package sample

import (
	"fmt"
	"math"
)

// Spec configures interval sampling for one measurement. The zero value
// means "disabled" (one contiguous window).
type Spec struct {
	// Intervals is the number of measurement intervals (the maximum in
	// adaptive mode). 0 selects the default count when any other field
	// enables sampling (see Enabled); the all-zero Spec disables it.
	Intervals int
	// IntervalInsts is the per-thread measured instruction budget of
	// each interval. 0 selects a default derived from the contiguous
	// budget (see Normalize).
	IntervalInsts int64
	// WarmInsts is the per-thread functional-warming budget preceding
	// each interval: instructions stream through caches, TLBs and
	// predictors with counters frozen. 0 selects the default warming
	// ratio (see Normalize).
	WarmInsts int64
	// TargetRelErr, when positive, enables adaptive stopping: after each
	// interval beyond MinAdaptiveIntervals the 95% CI of the target
	// metric (IPC) is checked, and sampling stops once its half-width
	// divided by the mean is at or below this value.
	TargetRelErr float64
}

// DefaultIntervals is the interval count a Spec gets when sampling is
// requested without an explicit N.
const DefaultIntervals = 8

// MinAdaptiveIntervals is the floor before adaptive stopping may
// trigger: a CI from fewer samples is too unstable to act on.
const MinAdaptiveIntervals = 4

// WarmRatio is the default functional-warming budget per interval,
// expressed as a multiple of the interval's measured budget. The
// default schedule spreads the sampled windows over the same effective
// horizon as the contiguous window they replace while measuring 1/6 of
// it by schedule: 8 x (5w + 1m) = 48 units of execution, 8 units
// measured. Timed windows overshoot their budget slightly (a window
// ends when its slowest thread reaches the budget; faster threads keep
// committing until then), so the realized measured share lands near
// 1/5 — a >= 5x reduction in measured work per configuration.
const WarmRatio = 5

// Enabled reports whether the Spec requests sampling.
func (s Spec) Enabled() bool {
	return s.Intervals > 0 || s.IntervalInsts > 0 || s.WarmInsts > 0 || s.TargetRelErr > 0
}

// Validate rejects specs that cannot be scheduled. Zero fields are
// legal (they select defaults in Normalize); negatives are not.
func (s Spec) Validate() error {
	if s.Intervals < 0 {
		return fmt.Errorf("sample: Intervals %d must be >= 0", s.Intervals)
	}
	if s.IntervalInsts < 0 {
		return fmt.Errorf("sample: IntervalInsts %d must be >= 0", s.IntervalInsts)
	}
	if s.WarmInsts < 0 {
		return fmt.Errorf("sample: WarmInsts %d must be >= 0", s.WarmInsts)
	}
	if s.TargetRelErr < 0 {
		return fmt.Errorf("sample: TargetRelErr %g must be >= 0", s.TargetRelErr)
	}
	return nil
}

// Normalize resolves an enabled Spec's defaults against the contiguous
// per-thread budget it replaces: the interval budget defaults so that
// the full schedule (warming plus measurement) spans the same effective
// horizon as contiguousInsts, measuring 1/(WarmRatio+1) of it. A
// disabled Spec normalizes to the zero value.
func (s Spec) Normalize(contiguousInsts int64) Spec {
	if !s.Enabled() {
		return Spec{}
	}
	n := s
	if n.Intervals == 0 {
		n.Intervals = DefaultIntervals
	}
	if n.IntervalInsts == 0 {
		n.IntervalInsts = contiguousInsts / (int64(n.Intervals) * (WarmRatio + 1))
		if n.IntervalInsts < 1 {
			n.IntervalInsts = 1
		}
	}
	if n.WarmInsts == 0 {
		n.WarmInsts = WarmRatio * n.IntervalInsts
	}
	return n
}

// MeasuredInsts is the per-thread instruction total spent in timed
// windows when all Intervals run.
func (s Spec) MeasuredInsts() int64 { return int64(s.Intervals) * s.IntervalInsts }

// DetailWarmInsts is the detailed-warming quantum preceding each
// measured window: the tail of the warming budget runs through the
// detailed timing model with counters still frozen, so a window does
// not open on a pipeline artificially refilled by functional warming
// (whose in-flight work would otherwise commit in a burst and bias
// stall and IPC metrics on short windows). Half the interval budget is
// enough to clear the reorder-buffer-sized boundary artifact.
func (s Spec) DetailWarmInsts() int64 { return s.IntervalInsts / 2 }

// FunctionalWarmInsts is the warming budget left to pure functional
// warming once the detailed-warming tail is carved out of WarmInsts.
func (s Spec) FunctionalWarmInsts() int64 {
	f := s.WarmInsts - s.DetailWarmInsts()
	if f < 0 {
		return 0
	}
	return f
}

// HorizonInsts is the per-thread execution span the schedule covers:
// warming plus measurement over all intervals (excluding the initial
// ramp-up, which both modes share).
func (s Spec) HorizonInsts() int64 {
	return int64(s.Intervals) * (s.WarmInsts + s.IntervalInsts)
}

// Estimate is a sample statistic of one metric over the measurement
// intervals: the mean, its standard error, and the half-width of the
// 95% confidence interval (Student's t, n-1 degrees of freedom).
type Estimate struct {
	// N is the number of samples behind the estimate.
	N int
	// Mean is the sample mean.
	Mean float64
	// StdErr is the standard error of the mean (s / sqrt(n)).
	StdErr float64
	// Half is the 95% CI half-width (t_{0.975,n-1} x StdErr). Zero when
	// N < 2 — a single sample carries no spread information.
	Half float64
}

// Point wraps a single deterministic value (a contiguous measurement)
// as a degenerate estimate with no spread.
func Point(v float64) Estimate { return Estimate{N: 1, Mean: v} }

// FromSamples computes the mean, standard error, and 95% CI half-width
// of vals.
func FromSamples(vals []float64) Estimate {
	n := len(vals)
	if n == 0 {
		return Estimate{}
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(n)
	if n < 2 {
		return Estimate{N: n, Mean: mean}
	}
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	se := math.Sqrt(ss/float64(n-1)) / math.Sqrt(float64(n))
	return Estimate{N: n, Mean: mean, StdErr: se, Half: tCrit95(n-1) * se}
}

// Lo returns the lower bound of the 95% CI.
func (e Estimate) Lo() float64 { return e.Mean - e.Half }

// Hi returns the upper bound of the 95% CI.
func (e Estimate) Hi() float64 { return e.Mean + e.Half }

// RelErr returns the CI half-width relative to the mean — the quantity
// adaptive stopping drives below TargetRelErr. It is +Inf for a zero
// mean with spread, and 0 for a degenerate (single-sample) estimate.
func (e Estimate) RelErr() float64 {
	if e.Half == 0 {
		return 0
	}
	if e.Mean == 0 {
		return math.Inf(1)
	}
	return math.Abs(e.Half / e.Mean)
}

// Contains reports whether v lies inside the 95% CI.
func (e Estimate) Contains(v float64) bool { return v >= e.Lo() && v <= e.Hi() }

// Combine merges independent per-member estimates into a group
// estimate: the mean of means, with the half-widths combined in
// quadrature (the members are measured independently). This is how an
// Entry's bar gets its error bar from its members' interval vectors.
func Combine(ests []Estimate) Estimate {
	if len(ests) == 0 {
		return Estimate{}
	}
	var mean, varSE, varHalf float64
	n := 0
	for _, e := range ests {
		mean += e.Mean
		varSE += e.StdErr * e.StdErr
		varHalf += e.Half * e.Half
		n += e.N
	}
	k := float64(len(ests))
	return Estimate{
		N:      n,
		Mean:   mean / k,
		StdErr: math.Sqrt(varSE) / k,
		Half:   math.Sqrt(varHalf) / k,
	}
}

// Stop reports whether adaptive sampling may stop: at least
// MinAdaptiveIntervals samples and a relative 95% CI half-width at or
// below target.
func Stop(vals []float64, target float64) bool {
	if target <= 0 || len(vals) < MinAdaptiveIntervals {
		return false
	}
	return FromSamples(vals).RelErr() <= target
}

// tCrit95 returns the two-sided 97.5th-percentile Student-t critical
// value for df degrees of freedom (exact table through 30, the normal
// approximation beyond).
func tCrit95(df int) float64 {
	table := [...]float64{
		1:  12.706,
		2:  4.303,
		3:  3.182,
		4:  2.776,
		5:  2.571,
		6:  2.447,
		7:  2.365,
		8:  2.306,
		9:  2.262,
		10: 2.228,
		11: 2.201,
		12: 2.179,
		13: 2.160,
		14: 2.145,
		15: 2.131,
		16: 2.120,
		17: 2.110,
		18: 2.101,
		19: 2.093,
		20: 2.086,
		21: 2.080,
		22: 2.074,
		23: 2.069,
		24: 2.064,
		25: 2.060,
		26: 2.056,
		27: 2.052,
		28: 2.048,
		29: 2.045,
		30: 2.042,
	}
	switch {
	case df < 1:
		return 0
	case df < len(table):
		return table[df]
	default:
		return 1.960
	}
}
