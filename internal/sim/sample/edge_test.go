package sample

import (
	"math"
	"testing"
)

// Edge cases of the estimator API: degenerate sample counts,
// zero-variance vectors, heterogeneous Combine inputs, and adaptive
// stopping that never converges. These are the inputs the measurement
// layer produces at the boundaries (single-interval runs, perfectly
// deterministic metrics, entries mixing sampled and contiguous
// members, adaptive sweeps over noisy metrics).

func TestEstimateSingleSample(t *testing.T) {
	e := FromSamples([]float64{4.2})
	if e.N != 1 || e.Mean != 4.2 {
		t.Fatalf("n=1 estimate = %+v", e)
	}
	// A single sample carries no spread information: the CI must be a
	// point, not NaN (the n-1 variance denominator would divide by 0).
	if e.StdErr != 0 || e.Half != 0 {
		t.Fatalf("n=1 estimate claims spread: %+v", e)
	}
	if e.RelErr() != 0 {
		t.Fatalf("n=1 RelErr = %g, want 0", e.RelErr())
	}
	if !e.Contains(4.2) || e.Contains(4.2000001) {
		t.Fatal("n=1 CI must degenerate to exactly the point")
	}
	if p := Point(4.2); p != e {
		t.Fatalf("Point(4.2) = %+v != FromSamples([4.2]) = %+v", p, e)
	}
}

func TestEstimateZeroVariance(t *testing.T) {
	vals := []float64{3, 3, 3, 3, 3, 3}
	e := FromSamples(vals)
	if e.N != 6 || e.Mean != 3 {
		t.Fatalf("estimate = %+v", e)
	}
	if e.StdErr != 0 || e.Half != 0 {
		t.Fatalf("zero-variance samples claim spread: %+v", e)
	}
	if e.Lo() != 3 || e.Hi() != 3 {
		t.Fatalf("CI = [%g, %g], want point at 3", e.Lo(), e.Hi())
	}
	// Zero variance at zero mean: RelErr must be 0 (converged), not NaN.
	z := FromSamples([]float64{0, 0, 0, 0})
	if z.RelErr() != 0 {
		t.Fatalf("all-zero RelErr = %g, want 0", z.RelErr())
	}
	if !Stop([]float64{3, 3, 3, 3}, 1e-9) {
		t.Fatal("zero-variance samples satisfy every positive target")
	}
}

func TestCombineEmptyAndSingle(t *testing.T) {
	if e := Combine(nil); e != (Estimate{}) {
		t.Fatalf("Combine(nil) = %+v, want zero", e)
	}
	if e := Combine([]Estimate{}); e != (Estimate{}) {
		t.Fatalf("Combine(empty) = %+v, want zero", e)
	}
	a := Estimate{N: 5, Mean: 2, StdErr: 0.3, Half: 0.7}
	if e := Combine([]Estimate{a}); e != a {
		t.Fatalf("Combine of one = %+v, want the input %+v", e, a)
	}
}

// TestCombineMismatchedInputs mixes a contiguous member (a zero-spread
// point) with sampled members of different interval counts — the shape
// EntryResult.CI produces when an entry's members use different
// measurement modes.
func TestCombineMismatchedInputs(t *testing.T) {
	point := Point(2)
	sampled := Estimate{N: 8, Mean: 4, StdErr: 0.3, Half: 0.6}
	short := Estimate{N: 2, Mean: 6, StdErr: 0.4, Half: 0.8}
	c := Combine([]Estimate{point, sampled, short})
	if c.N != 11 {
		t.Fatalf("combined N = %d, want 11", c.N)
	}
	if c.Mean != 4 {
		t.Fatalf("combined mean = %g, want mean of means 4", c.Mean)
	}
	wantHalf := math.Sqrt(0.6*0.6+0.8*0.8) / 3
	if math.Abs(c.Half-wantHalf) > 1e-12 {
		t.Fatalf("combined half = %g, want %g (point contributes nothing)", c.Half, wantHalf)
	}
	wantSE := math.Sqrt(0.3*0.3+0.4*0.4) / 3
	if math.Abs(c.StdErr-wantSE) > 1e-12 {
		t.Fatalf("combined stderr = %g, want %g", c.StdErr, wantSE)
	}
}

// TestStopNeverReached: adaptive sampling over a persistently noisy
// metric must keep refusing to stop no matter how many intervals
// accumulate (the schedule's Intervals cap is the only bound), and
// pathological means must not trick it.
func TestStopNeverReached(t *testing.T) {
	// Alternating spread keeps RelErr roughly constant (~CI/mean of the
	// alternating pattern) as n grows; a 0.1% target is never met.
	vals := make([]float64, 0, 64)
	for n := 1; n <= 64; n++ {
		vals = append(vals, 10+float64(n%2)*4-2)
		if Stop(vals, 0.001) {
			t.Fatalf("stopped at n=%d on persistently noisy samples (relerr %g)", n, FromSamples(vals).RelErr())
		}
	}
	// Zero mean with spread: RelErr is +Inf, so no positive target is
	// ever reached.
	zeroMean := []float64{-1, 1, -1, 1, -1, 1}
	if !math.IsInf(FromSamples(zeroMean).RelErr(), 1) {
		t.Fatalf("zero-mean RelErr = %g, want +Inf", FromSamples(zeroMean).RelErr())
	}
	if Stop(zeroMean, 0.5) {
		t.Fatal("stopped on a zero-mean metric with spread")
	}
	// Negative targets behave like disabled adaptive mode.
	if Stop([]float64{5, 5, 5, 5}, -0.1) {
		t.Fatal("negative target must never stop")
	}
}
