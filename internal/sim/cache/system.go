package cache

import (
	"fmt"

	"cloudsuite/internal/sim/counters"
	"cloudsuite/internal/sim/dram"
	"cloudsuite/internal/sim/prefetch"
	"cloudsuite/internal/sim/topo"
)

// SystemConfig describes the full memory system of the simulated
// machine: per-core private caches, one shared LLC per socket, the
// socket interconnect, the prefetcher enable bits, and the DRAM
// controller.
type SystemConfig struct {
	// Sockets x CoresPerSocket is the machine's core grid. The LLC
	// directory tracks private copies in a per-line sharer vector wide
	// enough for MaxCores cores; Validate rejects grids beyond it.
	Sockets        int
	CoresPerSocket int

	L1I Config
	L1D Config
	L2  Config
	LLC Config

	// Prefetcher enables, named after the BIOS knobs of the measured
	// machine (Figure 5 toggles these).
	AdjacentLine bool
	HWPrefetcher bool
	DCUStreamer  bool

	// IPrefetch selects the instruction prefetcher (Section 4.1's
	// implications experiment): IPrefNone, IPrefNextLine (the
	// conventional front-end), or IPrefStream (a temporal-stream
	// instruction prefetcher).
	IPrefetch IPrefMode

	// LLCInstrLatencyCycles, when non-zero, is the latency of LLC
	// instruction accesses, modelling the partitioned organisation the
	// paper's Section 4.1 implications describe: instruction blocks
	// replicated in LLC slices close to the requesting cores (in the
	// spirit of Reactive NUCA), so instruction fetches avoid the full
	// uniform LLC latency. Data accesses are unaffected.
	LLCInstrLatencyCycles int

	// RemoteHitCycles is the latency of servicing a miss from a
	// one-hop remote socket's cache (interconnect hop + remote LLC).
	RemoteHitCycles int

	// RemoteMemCycles is the extra latency of a line fetch serviced by
	// a one-hop remote socket's memory controller (the interconnect hop
	// to remote DRAM). Each socket owns its own controller; physical
	// pages are interleaved across sockets at 4KB granularity.
	RemoteMemCycles int

	// Interconnect selects the point-to-point socket topology. The
	// zero value is topo.FullMesh — every remote socket one hop away —
	// which on one- and two-socket machines is exactly the original
	// QPI model.
	Interconnect topo.Kind

	// HopCycles is the extra latency per interconnect hop beyond the
	// first on a multi-hop route (forwarding through an intermediate
	// socket: link traversal plus router). The first hop is already
	// priced into RemoteHitCycles / RemoteMemCycles, so this only
	// matters past two sockets on non-mesh topologies.
	HopCycles int

	// DRAM configures one socket's memory controller. A multi-socket
	// system instantiates one controller per socket, so aggregate
	// channel count and bandwidth scale with the socket count, as on
	// the measured machine.
	DRAM dram.Config
}

// IPrefMode selects the instruction-prefetch model.
type IPrefMode int

// Instruction prefetcher choices.
const (
	// IPrefNextLine is the conventional sequential prefetcher present
	// in the measured machine.
	IPrefNextLine IPrefMode = iota
	// IPrefNone disables instruction prefetching.
	IPrefNone
	// IPrefStream replays recorded instruction-miss streams, the kind
	// of predictor the paper argues scale-out workloads need.
	IPrefStream
)

// TotalCores returns the number of cores in the system.
func (c SystemConfig) TotalCores() int { return c.Sockets * c.CoresPerSocket }

// Validate checks that the core grid and interconnect describe a
// machine the directory can track. It replaces the old blanket
// "32-core limit" rejection with real topology validation.
func (c SystemConfig) Validate() error {
	if c.Sockets <= 0 {
		return fmt.Errorf("cache: %d sockets; a machine needs at least one", c.Sockets)
	}
	if c.CoresPerSocket <= 0 {
		return fmt.Errorf("cache: %d cores per socket; a socket needs at least one core", c.CoresPerSocket)
	}
	if n := c.TotalCores(); n > MaxCores {
		return fmt.Errorf("cache: %d cores (%d sockets x %d) exceed the %d-core directory sharer vector",
			n, c.Sockets, c.CoresPerSocket, MaxCores)
	}
	if !c.Interconnect.Valid() {
		return fmt.Errorf("cache: unknown interconnect %s", c.Interconnect)
	}
	if c.HopCycles < 0 {
		return fmt.Errorf("cache: negative HopCycles %d", c.HopCycles)
	}
	return nil
}

// DefaultSystemConfig returns the Table-1 memory system: one socket
// exposed with six cores (experiments enable four), 32KB L1s, 256KB L2,
// 12MB LLC, all prefetchers on, three DDR3 channels.
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{
		Sockets:         1,
		CoresPerSocket:  6,
		L1I:             Config{SizeBytes: 32 << 10, Assoc: 4, LatencyCycles: 4},
		L1D:             Config{SizeBytes: 32 << 10, Assoc: 8, LatencyCycles: 4},
		L2:              Config{SizeBytes: 256 << 10, Assoc: 8, LatencyCycles: 11},
		LLC:             Config{SizeBytes: 12 << 20, Assoc: 16, LatencyCycles: 29},
		AdjacentLine:    true,
		HWPrefetcher:    true,
		DCUStreamer:     true,
		RemoteHitCycles: 110,
		RemoteMemCycles: 90,
		// An extra forwarding hop re-pays roughly the link share of the
		// 110-cycle remote hit (110 = 29 LLC + ~80 link and snoop).
		HopCycles: 70,
		DRAM:      dram.DefaultConfig(),
	}
}

type coreCaches struct {
	l1i     *Cache
	l1d     *Cache
	l2      *Cache
	stride  *prefetch.Stride
	dcu     prefetch.DCU
	nextI   prefetch.NextLineI
	streamI *prefetch.StreamI
}

// System is the memory system instance. It is driven single-threaded by
// the simulator's cycle loop.
type System struct {
	cfg   SystemConfig
	cores []coreCaches
	llcs  []*Cache
	mems  []*dram.Controller // one controller per socket
	ctrs  []*counters.Counters
	//simlint:ok checkpointcov precomputed from cfg's topology at construction, identical for equal configs
	hops [][]int // pairwise socket hop distances (Interconnect)

	// checkEvery, when positive, runs CheckInvariants after every n-th
	// access (see invariants.go).
	checkEvery int //simlint:ok checkpointcov observer configuration armed per run, never part of warm state
	accesses   uint64

	// debugSharing, when non-nil, histograms read-write-shared lines
	// (see EnableDebugSharing).
	debugSharing map[uint64]uint64 //simlint:ok checkpointcov debug observer enabled per run, excluded from measured state
}

// NewSystem builds the memory system.
func NewSystem(cfg SystemConfig) *System {
	n := cfg.TotalCores()
	s := &System{cfg: cfg}
	s.mems = make([]*dram.Controller, cfg.Sockets)
	for i := range s.mems {
		s.mems[i] = dram.New(cfg.DRAM)
	}
	s.cores = make([]coreCaches, n)
	s.ctrs = make([]*counters.Counters, n)
	for i := range s.cores {
		s.cores[i] = coreCaches{
			l1i:    New(cfg.L1I),
			l1d:    New(cfg.L1D),
			l2:     New(cfg.L2),
			stride: prefetch.NewStride(16),
		}
		if cfg.IPrefetch == IPrefStream {
			s.cores[i].streamI = prefetch.NewStreamI(8192)
		}
		s.ctrs[i] = &counters.Counters{DRAMChannels: uint64(s.DRAMTotalChannels())}
	}
	s.llcs = make([]*Cache, cfg.Sockets)
	for i := range s.llcs {
		s.llcs[i] = New(cfg.LLC)
	}
	s.hops = make([][]int, cfg.Sockets)
	for a := range s.hops {
		s.hops[a] = make([]int, cfg.Sockets)
		for b := range s.hops[a] {
			s.hops[a][b] = topo.Hops(cfg.Interconnect, a, b, cfg.Sockets)
		}
	}
	return s
}

// hopPenalty converts a hop distance into the extra cycles beyond the
// one-hop latencies already priced into the remote costs.
func (s *System) hopPenalty(hops int) int64 {
	if hops <= 1 {
		return 0
	}
	return int64(hops-1) * int64(s.cfg.HopCycles)
}

// Config returns the system configuration.
func (s *System) Config() SystemConfig { return s.cfg }

// Ctr returns the counter block events triggered by core are charged to.
func (s *System) Ctr(core int) *counters.Counters { return s.ctrs[core] }

// DRAM exposes socket 0's memory controller (the whole machine's on a
// single-socket system).
func (s *System) DRAM() *dram.Controller { return s.mems[0] }

// DRAMOf exposes one socket's memory controller.
func (s *System) DRAMOf(socket int) *dram.Controller { return s.mems[socket] }

// DRAMTotalChannels counts memory channels across all sockets.
func (s *System) DRAMTotalChannels() int {
	return s.mems[0].Config().Channels * len(s.mems)
}

// DRAMBusyCycles sums channel busy cycles over every socket's
// controller.
func (s *System) DRAMBusyCycles() uint64 {
	var t uint64
	for _, m := range s.mems {
		t += m.BusyCycles()
	}
	return t
}

// DRAMSetSpanStart marks the beginning of a measurement window on every
// controller.
func (s *System) DRAMSetSpanStart(cycle int64) {
	for _, m := range s.mems {
		m.SetSpanStart(cycle)
	}
}

// DRAMResetQueues discards channel backlog on every controller.
func (s *System) DRAMResetQueues(cycle int64) {
	for _, m := range s.mems {
		m.ResetQueues(cycle)
	}
}

func (s *System) socketOf(core int) int { return core / s.cfg.CoresPerSocket }

func (s *System) llcOf(core int) *Cache { return s.llcs[s.socketOf(core)] }

// homeSocket maps a line to the socket whose memory controller owns it:
// physical pages (64 lines) interleave across sockets.
func (s *System) homeSocket(lineAddr uint64) int {
	return int((lineAddr >> 6) % uint64(len(s.mems)))
}

// memRead fetches a line from its home socket's memory controller,
// charging the interconnect route when the requesting core is on
// another socket: the first hop at RemoteMemCycles, each further hop
// at HopCycles.
func (s *System) memRead(core int, lineAddr uint64, now int64) int64 {
	home := s.homeSocket(lineAddr)
	done := s.mems[home].Read(lineAddr, now)
	if my := s.socketOf(core); home == my {
		s.ctrs[core].DRAMReadLocal++
	} else {
		s.ctrs[core].DRAMReadRemote++
		done += int64(s.cfg.RemoteMemCycles) + s.hopPenalty(s.hops[my][home])
	}
	return done
}

// memWrite posts a line writeback to its home socket's controller.
func (s *System) memWrite(lineAddr uint64, now int64) {
	s.mems[s.homeSocket(lineAddr)].Write(lineAddr, now)
}

// --- fill helpers -----------------------------------------------------

// fillLLC inserts lineAddr into core's socket LLC, handling inclusive
// back-invalidation and dirty writeback of the victim.
func (s *System) fillLLC(core int, lineAddr uint64, fl lineFlags, now int64) *line {
	llc := s.llcOf(core)
	victim, evicted, slot := llc.insert(lineAddr, fl)
	if evicted {
		s.evictLLCVictim(core, victim, now)
	}
	return slot
}

func (s *System) evictLLCVictim(core int, victim line, now int64) {
	ctr := s.ctrs[core]
	victimAddr := victim.tag - 1
	dirty := victim.flags&flagDirty != 0
	// Inclusive hierarchy: remove all private copies; a modified private
	// copy makes the line dirty regardless of the LLC's own dirty bit.
	if s.invalidateSharers(victim.sharers, -1, victimAddr) {
		dirty = true
	}
	if victim.owner >= 0 {
		dirty = true
	}
	if victim.flags&flagPrefetched != 0 {
		ctr.PrefEvicted++
	}
	if dirty {
		s.memWrite(victimAddr, now)
		ctr.OffchipWriteback += LineBytes
	}
}

// invalidateSharers removes lineAddr from the private caches of every
// core named in the sharer set except the given one (-1 = none),
// reporting whether any removed copy was dirty.
func (s *System) invalidateSharers(set sharerSet, except int, lineAddr uint64) (dirty bool) {
	for c := set.next(0); c >= 0; c = set.next(c + 1) {
		if c == except {
			continue
		}
		cc := &s.cores[c]
		if was, ok := cc.l1d.invalidate(lineAddr); ok && was.flags&flagDirty != 0 {
			dirty = true
		}
		if was, ok := cc.l2.invalidate(lineAddr); ok && was.flags&flagDirty != 0 {
			dirty = true
		}
		cc.l1i.invalidate(lineAddr)
	}
	return dirty
}

// fillL2 inserts into core's L2; a dirty victim is absorbed by the
// inclusive LLC (its dirty bit is set) or written back if the LLC has
// already dropped it.
func (s *System) fillL2(core int, lineAddr uint64, fl lineFlags, now int64) {
	cc := &s.cores[core]
	victim, evicted, _ := cc.l2.insert(lineAddr, fl)
	if evicted && victim.flags&flagDirty != 0 {
		victimAddr := victim.tag - 1
		if l := s.llcOf(core).probe(victimAddr, false); l != nil {
			l.flags |= flagDirty
			if l.owner == int16(core) {
				l.owner = -1
				// The L1-D (non-inclusive with the L2) may still hold
				// the line; demote its write permission along with the
				// lapsed ownership, or a later store would skip the
				// directory claim the owner-less line now requires.
				if dl := cc.l1d.probe(victimAddr, false); dl != nil {
					dl.flags &^= flagExcl | flagDirty
				}
			}
		} else {
			s.memWrite(victimAddr, now)
			s.ctrs[core].OffchipWriteback += LineBytes
		}
	}
}

// fillL1D inserts into core's L1D; dirty victims spill to the L2.
func (s *System) fillL1D(core int, lineAddr uint64, fl lineFlags, now int64) {
	cc := &s.cores[core]
	victim, evicted, _ := cc.l1d.insert(lineAddr, fl)
	if evicted && victim.flags&flagDirty != 0 {
		s.fillL2(core, victim.tag-1, flagDirty, now)
	}
}

func (s *System) fillL1I(core int, lineAddr uint64) {
	// Instruction lines are never dirty; victims drop silently.
	s.cores[core].l1i.insert(lineAddr, flagInstr)
}

// --- coherence helpers --------------------------------------------------

// claimOwnership makes core the exclusive modified owner of lineAddr in
// its socket's directory, invalidating all other private copies — on
// its own socket and, because writing requires chip-wide exclusivity,
// any copy held by another socket's LLC (and that socket's private
// caches). It returns true when another core previously held the line
// Modified (a read-write sharing event).
func (s *System) claimOwnership(core int, lineAddr uint64, llcLine *line) (stolenFromOther bool) {
	prevOwner := llcLine.owner
	if s.invalidateSharers(llcLine.sharers, core, lineAddr) {
		llcLine.flags |= flagDirty
	}
	home := s.socketOf(core)
	for so := range s.llcs {
		if so == home {
			continue
		}
		rl := s.llcs[so].probe(lineAddr, false)
		if rl == nil {
			continue
		}
		victim := *rl
		s.llcs[so].invalidate(lineAddr)
		s.invalidateSharers(victim.sharers, -1, lineAddr)
		// A dirty remote copy (owned, or downgraded-but-dirty) means a
		// remote core modified the line most recently: count it like
		// the write-miss snoop path does, so the sharing metric is
		// independent of whether the writer's private copy survived.
		if victim.owner >= 0 || victim.flags&flagDirty != 0 {
			stolenFromOther = true
		}
	}
	llcLine.sharers = onlySharer(core)
	llcLine.owner = int16(core)
	llcLine.flags |= flagDirty
	return stolenFromOther || (prevOwner >= 0 && prevOwner != int16(core))
}

// upgradeOwnership services a store that hit a private cache without
// write permission: the RFO (read-for-ownership) consults the LLC
// directory, so it counts as an LLC data reference like on real
// hardware, and claiming the line from a modified holder is a sharing
// event — the same accounting as a demand miss that finds remotely-
// modified data, so the Figure-6 metric does not depend on whether the
// writer's private copy survived.
func (s *System) upgradeOwnership(core int, lineAddr uint64, kernel bool) {
	llcLine := s.llcOf(core).probe(lineAddr, false)
	if llcLine == nil {
		return
	}
	ctr := s.ctrs[core]
	ctr.LLCAccess++
	ctr.LLCDataRefs++
	ctr.LLCHit++
	if kernel {
		ctr.LLCDataRefsOS++
		ctr.LLCHitOS++
	} else {
		ctr.LLCHitUser++
	}
	if s.claimOwnership(core, lineAddr, llcLine) {
		s.countSharedRW(core, lineAddr, kernel)
	}
}

// countSharedRW records one read-write sharing event by core (the
// Figure-6 probe), attributed to the requesting mode.
func (s *System) countSharedRW(core int, lineAddr uint64, kernel bool) {
	if kernel {
		s.ctrs[core].SharedRWHitOS++
	} else {
		s.ctrs[core].SharedRWHitUser++
	}
	if s.debugSharing != nil {
		s.debugSharing[lineAddr]++
	}
}

// downgradeOwner services a read to a line another core holds Modified:
// the owner's private copies lose write permission (their dirty data is
// absorbed by the LLC line) and the directory entry drops the owner, so
// the owner's next store must re-claim exclusivity through the
// directory — the event the read-write sharing counters observe.
func (s *System) downgradeOwner(lineAddr uint64, llcLine *line) {
	if o := llcLine.owner; o >= 0 {
		oc := &s.cores[o]
		if l := oc.l1d.probe(lineAddr, false); l != nil {
			l.flags &^= flagExcl | flagDirty
		}
		if l := oc.l2.probe(lineAddr, false); l != nil {
			l.flags &^= flagExcl | flagDirty
		}
	}
	llcLine.owner = -1
	llcLine.flags |= flagDirty
}

// --- instruction fetch ---------------------------------------------------

// FetchResult describes where an instruction fetch was serviced.
type FetchResult struct {
	// Done is the completion time.
	Done int64
	// L1Miss reports that the fetch missed the L1-I.
	L1Miss bool
	// OffCore reports that the fetch missed the L2 as well.
	OffCore bool
}

// FetchInstr fetches the line containing pc for core at time now.
func (s *System) FetchInstr(core int, pc uint64, now int64, kernel bool) FetchResult {
	if s.checkEvery > 0 {
		defer s.maybeCheck()
	}
	lineAddr := pc >> LineShift
	cc := &s.cores[core]
	ctr := s.ctrs[core]
	if kernel {
		ctr.FetchL1IAccessOS++
	} else {
		ctr.FetchL1IAccessUser++
	}
	if cc.l1i.probe(lineAddr, true) != nil {
		return FetchResult{Done: now}
	}
	if kernel {
		ctr.L1IMissOS++
	} else {
		ctr.L1IMissUser++
	}
	switch s.cfg.IPrefetch {
	case IPrefNextLine:
		for _, p := range cc.nextI.OnMiss(lineAddr) {
			s.prefetchInstr(core, p, kernel, now)
		}
	case IPrefStream:
		for _, p := range cc.streamI.OnMiss(lineAddr) {
			s.prefetchInstr(core, p, kernel, now)
		}
	}
	ctr.L2Access++
	if l := cc.l2.probe(lineAddr, true); l != nil {
		ctr.L2Hit++
		s.fillL1I(core, lineAddr)
		return FetchResult{Done: now + int64(s.cfg.L2.LatencyCycles), L1Miss: true}
	}
	if kernel {
		ctr.L2IMissOS++
	} else {
		ctr.L2IMissUser++
	}
	done := s.accessShared(core, lineAddr, false, kernel, true, now)
	s.fillL2(core, lineAddr, flagInstr, now)
	s.fillL1I(core, lineAddr)
	return FetchResult{Done: done, L1Miss: true, OffCore: true}
}

// --- data access ---------------------------------------------------------

// DataResult describes a data access.
type DataResult struct {
	// Done is the completion time (load-to-use).
	Done int64
	// L1Miss reports a super-queue allocation (missed the L1-D).
	L1Miss bool
	// OffCore reports the request left the core (missed the L2).
	OffCore bool
}

// AccessData performs a load or store by core at time now.
func (s *System) AccessData(core int, addr uint64, write, kernel bool, now int64) DataResult {
	if s.checkEvery > 0 {
		defer s.maybeCheck()
	}
	lineAddr := addr >> LineShift
	cc := &s.cores[core]
	ctr := s.ctrs[core]
	ctr.L1DAccess++

	if l := cc.l1d.probe(lineAddr, true); l != nil {
		if l.flags&flagPrefetched != 0 {
			ctr.PrefUseful++
			l.flags &^= flagPrefetched
		}
		if write {
			if l.flags&flagExcl == 0 {
				s.upgradeOwnership(core, lineAddr, kernel)
				l.flags |= flagExcl
			}
			l.flags |= flagDirty
		}
		return DataResult{Done: now + int64(s.cfg.L1D.LatencyCycles)}
	}
	ctr.L1DMiss++

	// The streamers track load misses (demand reads); write-allocate
	// traffic from the store buffer does not train them.
	if s.cfg.DCUStreamer && !write {
		if target := cc.dcu.Observe(lineAddr); target != 0 {
			s.prefetchL1(core, target, kernel, now)
		}
	}

	ctr.L2DAccess++
	ctr.L2Access++
	if s.cfg.HWPrefetcher && !write {
		for _, p := range cc.stride.Observe(lineAddr) {
			s.prefetchL2(core, p, kernel, now)
		}
	}
	if l := cc.l2.probe(lineAddr, true); l != nil {
		ctr.L2Hit++
		if l.flags&flagPrefetched != 0 {
			ctr.PrefUseful++
			l.flags &^= flagPrefetched
		}
		fl := lineFlags(0)
		if write {
			s.upgradeOwnership(core, lineAddr, kernel)
			fl = flagDirty | flagExcl
		}
		s.fillL1D(core, lineAddr, fl, now)
		return DataResult{Done: now + int64(s.cfg.L2.LatencyCycles), L1Miss: true}
	}
	ctr.L2DMiss++
	if s.cfg.AdjacentLine {
		s.prefetchL2(core, prefetch.AdjacentLine(lineAddr), kernel, now)
	}

	done := s.accessShared(core, lineAddr, write, kernel, false, now)
	fl := lineFlags(0)
	if write {
		fl = flagDirty | flagExcl
	}
	s.fillL2(core, lineAddr, fl&flagDirty, now)
	s.fillL1D(core, lineAddr, fl, now)
	return DataResult{Done: done, L1Miss: true, OffCore: true}
}

// accessShared services an L2 miss from the LLC, a remote socket, or
// DRAM, maintaining the directory. It returns the completion time.
func (s *System) accessShared(core int, lineAddr uint64, write, kernel, instr bool, now int64) int64 {
	ctr := s.ctrs[core]
	llc := s.llcOf(core)
	ctr.LLCAccess++
	if instr {
		ctr.LLCInstrRefs++
	} else {
		ctr.LLCDataRefs++
		if kernel {
			ctr.LLCDataRefsOS++
		}
	}

	if l := llc.probe(lineAddr, true); l != nil {
		ctr.LLCHit++
		if kernel {
			ctr.LLCHitOS++
		} else {
			ctr.LLCHitUser++
		}
		llcLat := int64(s.cfg.LLC.LatencyCycles)
		if instr && s.cfg.LLCInstrLatencyCycles > 0 {
			llcLat = int64(s.cfg.LLCInstrLatencyCycles)
		}
		if l.flags&flagPrefetched != 0 {
			ctr.PrefUseful++
			l.flags &^= flagPrefetched
		}
		sharedRW := false
		if write && !instr {
			sharedRW = s.claimOwnership(core, lineAddr, l)
		} else if l.owner >= 0 && l.owner != int16(core) {
			// Any read — including an instruction fetch — of a line
			// another core holds Modified downgrades the owner; only
			// data references count as sharing events (Figure 6).
			sharedRW = !instr
			s.downgradeOwner(lineAddr, l)
		}
		if sharedRW {
			s.countSharedRW(core, lineAddr, kernel)
		}
		l.sharers.add(core)
		if write && !instr {
			l.owner = int16(core)
		}
		return now + llcLat
	}
	ctr.LLCMiss++
	if kernel {
		ctr.LLCMissOS++
	} else {
		ctr.LLCMissUser++
	}

	// Snoop the other sockets. The sharing test must consider every
	// remote holder — a dirty copy can coexist with clean replicas on
	// other sockets. A write gains chip-wide exclusivity by invalidating
	// every remote copy; a read downgrades the Modified owner, if any.
	// Latency scales with hop distance on the interconnect: a read is
	// serviced by the nearest holder, a write completes when the
	// farthest holder has acknowledged its invalidation.
	my := s.socketOf(core)
	remote, modified := false, false
	nearest, farthest := 0, 0
	for so := range s.llcs {
		if so == my {
			continue
		}
		rl := s.llcs[so].probe(lineAddr, false)
		if rl == nil {
			continue
		}
		h := s.hops[my][so]
		if !remote || h < nearest {
			nearest = h
		}
		if h > farthest {
			farthest = h
		}
		remote = true
		if rl.owner >= 0 || rl.flags&flagDirty != 0 {
			modified = true
		}
		if write {
			// Invalidate the remote copy and all its private copies.
			victim := *rl
			s.llcs[so].invalidate(lineAddr)
			s.invalidateSharers(victim.sharers, -1, lineAddr)
		} else if rl.owner >= 0 {
			s.downgradeOwner(lineAddr, rl)
		}
	}
	if remote {
		ctr.RemoteSocketHit++
		if modified && !instr {
			s.countSharedRW(core, lineAddr, kernel)
		}
		fl := lineFlags(0)
		if write {
			fl = flagDirty
		}
		if instr {
			fl |= flagInstr
		}
		nl := s.fillLLC(core, lineAddr, fl, now)
		nl.sharers = onlySharer(core)
		if write && !instr {
			nl.owner = int16(core)
		}
		routeHops := nearest
		if write {
			routeHops = farthest
		}
		return now + int64(s.cfg.RemoteHitCycles) + s.hopPenalty(routeHops)
	}

	// Off-chip.
	done := s.memRead(core, lineAddr, now)
	if kernel {
		ctr.OffchipReadOS += LineBytes
	} else {
		ctr.OffchipReadUser += LineBytes
	}
	fl := lineFlags(0)
	if write {
		fl = flagDirty
	}
	if instr {
		fl |= flagInstr
	}
	nl := s.fillLLC(core, lineAddr, fl, now)
	nl.sharers = onlySharer(core)
	if write && !instr {
		nl.owner = int16(core)
	}
	llcDone := now + int64(s.cfg.LLC.LatencyCycles)
	if done < llcDone {
		done = llcDone
	}
	return done
}

// prefetchLLC obtains lineAddr in core's socket LLC for a prefetch: a
// local hit, a remote-socket copy, or an off-chip fetch, registering
// core as a sharer. Like the demand path, a prefetch is a read: a
// Modified owner (local or remote) is downgraded, or the owner's
// retained write permission and the prefetched copy would go
// incoherent — exactly the divergence that left the original
// hand-copied snoop loops dormant-and-broken.
func (s *System) prefetchLLC(core int, lineAddr uint64, fl lineFlags, kernel bool, now int64) {
	llc := s.llcOf(core)
	if l := llc.probe(lineAddr, true); l != nil {
		if l.owner >= 0 && l.owner != int16(core) {
			s.downgradeOwner(lineAddr, l)
		}
		l.sharers.add(core)
		return
	}
	for so := range s.llcs {
		if so == s.socketOf(core) {
			continue
		}
		if rl := s.llcs[so].probe(lineAddr, false); rl != nil {
			if rl.owner >= 0 {
				s.downgradeOwner(lineAddr, rl)
			}
			s.ctrs[core].RemoteSocketHit++
			nl := s.fillLLC(core, lineAddr, fl, now)
			nl.sharers.add(core)
			return
		}
	}
	s.memRead(core, lineAddr, now)
	if kernel {
		s.ctrs[core].OffchipReadOS += LineBytes
	} else {
		s.ctrs[core].OffchipReadUser += LineBytes
	}
	nl := s.fillLLC(core, lineAddr, fl, now)
	nl.sharers.add(core)
}

// prefetchInstr fetches an instruction line into core's L1-I without
// blocking the demand fetch.
func (s *System) prefetchInstr(core int, lineAddr uint64, kernel bool, now int64) {
	cc := &s.cores[core]
	if cc.l1i.Contains(lineAddr) {
		return
	}
	s.ctrs[core].PrefIssued++
	if cc.l2.Contains(lineAddr) {
		s.fillL1I(core, lineAddr)
		return
	}
	s.prefetchLLC(core, lineAddr, flagInstr, kernel, now)
	s.fillL2(core, lineAddr, flagInstr, now)
	s.fillL1I(core, lineAddr)
}

// prefetchL2 fetches lineAddr into core's L2 (and LLC) without blocking
// the demand stream.
func (s *System) prefetchL2(core int, lineAddr uint64, kernel bool, now int64) {
	if s.cores[core].l2.Contains(lineAddr) {
		return
	}
	s.ctrs[core].PrefIssued++
	s.prefetchLLC(core, lineAddr, flagPrefetched, kernel, now)
	s.fillL2(core, lineAddr, flagPrefetched, now)
}

// prefetchL1 fetches lineAddr into core's L1-D (DCU streamer).
func (s *System) prefetchL1(core int, lineAddr uint64, kernel bool, now int64) {
	cc := &s.cores[core]
	if cc.l1d.Contains(lineAddr) {
		return
	}
	s.ctrs[core].PrefIssued++
	if cc.l2.Contains(lineAddr) {
		s.fillL1D(core, lineAddr, flagPrefetched, now)
		return
	}
	s.prefetchLLC(core, lineAddr, flagPrefetched, kernel, now)
	s.fillL1D(core, lineAddr, flagPrefetched, now)
}

// EnableDebugSharing makes the system histogram the lines that produce
// read-write sharing hits (diagnostics only). The histogram is per
// System — a package-level map here would be written concurrently by
// every simulation of a parallel experiment Runner, a data race.
func (s *System) EnableDebugSharing() {
	if s.debugSharing == nil {
		s.debugSharing = map[uint64]uint64{}
	}
}

// DebugSharing returns the sharing histogram (nil unless
// EnableDebugSharing was called). The map belongs to the System; it is
// safe to read once the simulation driving the System has finished.
func (s *System) DebugSharing() map[uint64]uint64 { return s.debugSharing }

// LLCUtilization reports valid-line share of socket's LLC (diagnostics).
func (s *System) LLCUtilization(socket int) float64 { return s.llcs[socket].Utilization() }
