package cache

import (
	"sync"
	"testing"
)

// sharingTraffic drives one System through a write/remote-read pattern
// that produces read-write sharing events on the given line.
func sharingTraffic(s *System, lineAddr uint64, rounds int) {
	addr := lineAddr << LineShift
	for i := 0; i < rounds; i++ {
		s.AccessData(0, addr, true, false, int64(4*i))    // core 0 modifies
		s.AccessData(2, addr, false, false, int64(4*i+1)) // socket-1 core reads
		s.AccessData(2, addr, true, true, int64(4*i+2))   // and writes back (OS mode)
		s.AccessData(0, addr, false, false, int64(4*i+3))
	}
}

// TestDebugSharingHistogram verifies the per-System histogram counts
// the lines behind read-write sharing hits.
func TestDebugSharingHistogram(t *testing.T) {
	s := NewSystem(testSystemConfig(2, 2))
	s.EnableDebugSharing()
	const line = uint64(0x1234)
	sharingTraffic(s, line, 8)
	h := s.DebugSharing()
	if h == nil {
		t.Fatal("EnableDebugSharing left the histogram nil")
	}
	if h[line] == 0 {
		t.Fatalf("histogram recorded no sharing events for line %#x: %v", line, h)
	}
	var ctr uint64
	for c := 0; c < s.Config().TotalCores(); c++ {
		ctr += s.Ctr(c).SharedRWHitUser + s.Ctr(c).SharedRWHitOS
	}
	var hist uint64
	for _, n := range h {
		hist += n
	}
	if hist != ctr {
		t.Fatalf("histogram total %d != sharing counters %d", hist, ctr)
	}
	// A fresh system histograms nothing until enabled.
	s2 := NewSystem(testSystemConfig(2, 2))
	sharingTraffic(s2, line, 1)
	if s2.DebugSharing() != nil {
		t.Fatal("histogram active without EnableDebugSharing")
	}
}

// TestDebugSharingParallelSystems runs many Systems concurrently with
// the histogram enabled — the parallel-Runner shape that made the old
// package-level DebugSharing map a data race. Run under -race (CI
// does), this test fails if the histogram ever becomes shared state
// again.
func TestDebugSharingParallelSystems(t *testing.T) {
	const workers = 8
	var wg sync.WaitGroup
	results := make([]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := NewSystem(testSystemConfig(2, 2))
			s.EnableDebugSharing()
			sharingTraffic(s, uint64(0x4000+w), 64)
			for _, n := range s.DebugSharing() {
				results[w] += n
			}
		}(w)
	}
	wg.Wait()
	for w, n := range results {
		if n == 0 {
			t.Fatalf("worker %d recorded no sharing events", w)
		}
		if n != results[0] {
			t.Fatalf("worker %d recorded %d events, worker 0 recorded %d — systems interfered", w, n, results[0])
		}
	}
}
