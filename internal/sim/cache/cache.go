// Package cache implements the on-chip memory system of the simulated
// server: private L1 instruction/data caches and a private unified L2
// per core, backed by an inclusive shared last-level cache (LLC) per
// socket with directory-based coherence, hardware prefetchers, and an
// off-chip DRAM model.
//
// The organisation mirrors Table 1 of the paper: 32KB split L1 I/D with
// 4-cycle latency, 256KB per-core L2 with 6-cycle (additional) latency,
// and a 12MB shared LLC with 29-cycle latency, with adjacent-line, HW
// (stride) and DCU streamer prefetchers that can be individually
// disabled like the BIOS knobs used for Figure 5.
package cache

// LineBytes is the cache line size.
const LineBytes = 64

// LineShift converts byte addresses to line addresses.
const LineShift = 6

// Config sizes one cache.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Assoc is the set associativity.
	Assoc int
	// LatencyCycles is the absolute load-to-use latency of a hit in this
	// cache (not incremental over the previous level).
	LatencyCycles int
}

// Sets returns the number of sets implied by the configuration.
// Non-power-of-two set counts are allowed (the X5670's 12MB LLC has
// 12288 sets across its slices); indexing uses modulo.
func (c Config) Sets() int {
	s := c.SizeBytes / (LineBytes * c.Assoc)
	if s < 1 {
		s = 1
	}
	return s
}

type lineFlags uint8

const (
	flagDirty lineFlags = 1 << iota
	flagPrefetched
	flagInstr
	// flagExcl marks a private-cache line held with write permission, so
	// repeated stores skip the directory lookup.
	flagExcl
)

// line is one cache line's bookkeeping. Directory fields (sharers,
// owner) are used only in LLC instances.
type line struct {
	tag     uint64 // line address + 1; 0 means invalid
	lru     uint64
	sharers sharerSet // global core ids with a private copy
	owner   int16     // global core id holding the line Modified, or -1
	flags   lineFlags
}

func (l *line) valid() bool { return l.tag != 0 }

// Cache is one set-associative cache with true-LRU replacement.
type Cache struct {
	cfg   Config //simlint:ok checkpointcov construction-time configuration; LoadState geometry-checks against it instead of restoring it
	sets  int    //simlint:ok checkpointcov derived from cfg at construction, geometry-checked by LoadState
	assoc int    //simlint:ok checkpointcov derived from cfg at construction, geometry-checked by LoadState
	lines []line
	tick  uint64
}

// New returns an empty cache.
func New(cfg Config) *Cache {
	sets := cfg.Sets()
	c := &Cache{cfg: cfg, sets: sets, assoc: cfg.Assoc}
	c.lines = make([]line, sets*cfg.Assoc)
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) setBase(lineAddr uint64) int {
	return int(lineAddr%uint64(c.sets)) * c.assoc
}

// probe returns the way holding lineAddr, or nil. On hit the LRU stamp
// is refreshed when touch is true.
func (c *Cache) probe(lineAddr uint64, touch bool) *line {
	base := c.setBase(lineAddr)
	tag := lineAddr + 1
	ways := c.lines[base : base+c.assoc]
	for i := range ways {
		if ways[i].tag == tag {
			if touch {
				c.tick++
				ways[i].lru = c.tick
			}
			return &ways[i]
		}
	}
	return nil
}

// Contains reports whether the cache holds lineAddr without touching LRU.
func (c *Cache) Contains(lineAddr uint64) bool { return c.probe(lineAddr, false) != nil }

// insert places lineAddr into the cache, evicting a way if the set is
// full. It returns the victim's state so the caller can handle
// writebacks and back-invalidation. If the line was already present it
// is reused.
//
// Victim-selection order (pinned by TestVictimSelectionOrder): invalid
// ways are always preferred over valid ones, taking the lowest-indexed
// invalid way regardless of LRU stamps — in particular, a way freed by
// invalidate (whose stamp resets to zero) is refilled by the next
// insert into its set. Only when every way is valid does true-LRU pick
// the smallest stamp.
func (c *Cache) insert(lineAddr uint64, fl lineFlags) (victim line, evicted bool, slot *line) {
	if l := c.probe(lineAddr, true); l != nil {
		l.flags |= fl
		return line{}, false, l
	}
	base := c.setBase(lineAddr)
	ways := c.lines[base : base+c.assoc]
	vi := 0
	for i := range ways {
		if !ways[i].valid() {
			vi = i
			break
		}
		if ways[i].lru < ways[vi].lru {
			vi = i
		}
	}
	v := ways[vi]
	c.tick++
	ways[vi] = line{tag: lineAddr + 1, lru: c.tick, flags: fl, owner: -1}
	return v, v.valid(), &ways[vi]
}

// invalidate removes lineAddr if present and returns its prior state.
func (c *Cache) invalidate(lineAddr uint64) (was line, ok bool) {
	if l := c.probe(lineAddr, false); l != nil {
		was = *l
		*l = line{owner: -1}
		return was, true
	}
	return line{}, false
}

// Utilization reports the fraction of ways holding valid lines, used by
// tests and capacity diagnostics.
func (c *Cache) Utilization() float64 {
	if len(c.lines) == 0 {
		return 0
	}
	n := 0
	for i := range c.lines {
		if c.lines[i].valid() {
			n++
		}
	}
	return float64(n) / float64(len(c.lines))
}

// FootprintLines reports the number of valid lines (tests).
func (c *Cache) FootprintLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid() {
			n++
		}
	}
	return n
}
