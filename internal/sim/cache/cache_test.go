package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigSets(t *testing.T) {
	c := Config{SizeBytes: 32 << 10, Assoc: 4}
	if got := c.Sets(); got != 128 {
		t.Errorf("32KB 4-way: sets = %d, want 128", got)
	}
	llc := Config{SizeBytes: 12 << 20, Assoc: 16}
	if got := llc.Sets(); got != 12288 {
		t.Errorf("12MB 16-way: sets = %d, want 12288 (non power of two)", got)
	}
}

func TestProbeInsertInvalidate(t *testing.T) {
	c := New(Config{SizeBytes: 4096, Assoc: 2}) // 32 sets
	if c.probe(100, true) != nil {
		t.Fatal("empty cache must miss")
	}
	_, ev, _ := c.insert(100, 0)
	if ev {
		t.Fatal("insert into empty set must not evict")
	}
	if c.probe(100, true) == nil {
		t.Fatal("inserted line must hit")
	}
	was, ok := c.invalidate(100)
	if !ok || was.tag != 101 {
		t.Fatalf("invalidate: ok=%v tag=%d", ok, was.tag)
	}
	if c.probe(100, false) != nil {
		t.Fatal("invalidated line must miss")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{SizeBytes: 2 * 64, Assoc: 2}) // 1 set, 2 ways
	c.insert(1, 0)
	c.insert(2, 0)
	c.probe(1, true) // make 1 MRU
	v, ev, _ := c.insert(3, 0)
	if !ev || v.tag != 2+1 {
		t.Fatalf("expected eviction of line 2, got evicted=%v tag=%d", ev, v.tag)
	}
	if c.probe(1, false) == nil || c.probe(3, false) == nil {
		t.Fatal("lines 1 and 3 must remain")
	}
}

func TestInsertExistingReuses(t *testing.T) {
	c := New(Config{SizeBytes: 2 * 64, Assoc: 2})
	c.insert(7, 0)
	_, ev, slot := c.insert(7, flagDirty)
	if ev {
		t.Fatal("reinsert must not evict")
	}
	if slot.flags&flagDirty == 0 {
		t.Fatal("reinsert must merge flags")
	}
	if c.FootprintLines() != 1 {
		t.Fatalf("footprint = %d, want 1", c.FootprintLines())
	}
}

// Property: a cache never holds more lines than its capacity and never
// holds duplicates.
func TestQuickCacheInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(Config{SizeBytes: 64 * 64, Assoc: 4}) // 16 sets x 4 ways
		seen := map[uint64]bool{}
		for i := 0; i < 2000; i++ {
			la := uint64(rng.Intn(500))
			c.insert(la, 0)
			seen[la] = true
		}
		if c.FootprintLines() > 64 {
			return false
		}
		// No duplicates: probing any line and invalidating it once must
		// remove it completely.
		for la := range seen {
			if c.probe(la, false) != nil {
				c.invalidate(la)
				if c.probe(la, false) != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilization(t *testing.T) {
	c := New(Config{SizeBytes: 4 * 64, Assoc: 2}) // 2 sets x 2 ways
	if c.Utilization() != 0 {
		t.Fatal("empty cache utilization must be 0")
	}
	c.insert(0, 0)
	c.insert(1, 0)
	c.insert(2, 0)
	c.insert(3, 0)
	if c.Utilization() != 1 {
		t.Fatalf("full cache utilization = %f", c.Utilization())
	}
}
