package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigSets(t *testing.T) {
	c := Config{SizeBytes: 32 << 10, Assoc: 4}
	if got := c.Sets(); got != 128 {
		t.Errorf("32KB 4-way: sets = %d, want 128", got)
	}
	llc := Config{SizeBytes: 12 << 20, Assoc: 16}
	if got := llc.Sets(); got != 12288 {
		t.Errorf("12MB 16-way: sets = %d, want 12288 (non power of two)", got)
	}
}

func TestProbeInsertInvalidate(t *testing.T) {
	c := New(Config{SizeBytes: 4096, Assoc: 2}) // 32 sets
	if c.probe(100, true) != nil {
		t.Fatal("empty cache must miss")
	}
	_, ev, _ := c.insert(100, 0)
	if ev {
		t.Fatal("insert into empty set must not evict")
	}
	if c.probe(100, true) == nil {
		t.Fatal("inserted line must hit")
	}
	was, ok := c.invalidate(100)
	if !ok || was.tag != 101 {
		t.Fatalf("invalidate: ok=%v tag=%d", ok, was.tag)
	}
	if c.probe(100, false) != nil {
		t.Fatal("invalidated line must miss")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{SizeBytes: 2 * 64, Assoc: 2}) // 1 set, 2 ways
	c.insert(1, 0)
	c.insert(2, 0)
	c.probe(1, true) // make 1 MRU
	v, ev, _ := c.insert(3, 0)
	if !ev || v.tag != 2+1 {
		t.Fatalf("expected eviction of line 2, got evicted=%v tag=%d", ev, v.tag)
	}
	if c.probe(1, false) == nil || c.probe(3, false) == nil {
		t.Fatal("lines 1 and 3 must remain")
	}
}

func TestInsertExistingReuses(t *testing.T) {
	c := New(Config{SizeBytes: 2 * 64, Assoc: 2})
	c.insert(7, 0)
	_, ev, slot := c.insert(7, flagDirty)
	if ev {
		t.Fatal("reinsert must not evict")
	}
	if slot.flags&flagDirty == 0 {
		t.Fatal("reinsert must merge flags")
	}
	if c.FootprintLines() != 1 {
		t.Fatalf("footprint = %d, want 1", c.FootprintLines())
	}
}

// Property: a cache never holds more lines than its capacity and never
// holds duplicates.
func TestQuickCacheInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(Config{SizeBytes: 64 * 64, Assoc: 4}) // 16 sets x 4 ways
		seen := map[uint64]bool{}
		for i := 0; i < 2000; i++ {
			la := uint64(rng.Intn(500))
			c.insert(la, 0)
			seen[la] = true
		}
		if c.FootprintLines() > 64 {
			return false
		}
		// No duplicates: probing any line and invalidating it once must
		// remove it completely.
		for la := range seen {
			if c.probe(la, false) != nil {
				c.invalidate(la)
				if c.probe(la, false) != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilization(t *testing.T) {
	c := New(Config{SizeBytes: 4 * 64, Assoc: 2}) // 2 sets x 2 ways
	if c.Utilization() != 0 {
		t.Fatal("empty cache utilization must be 0")
	}
	c.insert(0, 0)
	c.insert(1, 0)
	c.insert(2, 0)
	c.insert(3, 0)
	if c.Utilization() != 1 {
		t.Fatalf("full cache utilization = %f", c.Utilization())
	}
}

// TestVictimSelectionOrder pins insert's victim-selection semantics so
// refactors cannot silently change replacement behaviour: invalid ways
// are preferred over valid ones (lowest index first, ignoring LRU
// stamps), so a way freed by invalidate is the next victim of its set;
// only a fully-valid set falls back to true-LRU.
func TestVictimSelectionOrder(t *testing.T) {
	mk := func() *Cache {
		// One set, four ways: lines 0..3 fill ways 0..3 in order.
		c := New(Config{SizeBytes: 4 * 64, Assoc: 4})
		for la := uint64(0); la < 4; la++ {
			c.insert(la, 0)
		}
		return c
	}

	t.Run("invalidated way is reused first", func(t *testing.T) {
		c := mk()
		c.invalidate(1)
		// Way 0 (line 0) holds the oldest LRU stamp, but the freed way
		// must win.
		if v, evicted, _ := c.insert(10, 0); evicted {
			t.Fatalf("insert into a set with a free way evicted line %#x", v.tag-1)
		}
		for _, la := range []uint64{0, 2, 3, 10} {
			if !c.Contains(la) {
				t.Fatalf("line %#x lost", la)
			}
		}
	})

	t.Run("lowest-indexed invalid way wins", func(t *testing.T) {
		c := mk()
		c.invalidate(3) // later way freed first...
		c.invalidate(1) // ...then an earlier way
		c.insert(10, 0)
		c.insert(11, 0)
		// Way 1 must be filled before way 3 regardless of freeing order:
		// the scan stops at the first invalid way.
		if got := c.lines[1].tag - 1; got != 10 {
			t.Fatalf("way 1 holds line %#x, want 10", got)
		}
		if got := c.lines[3].tag - 1; got != 11 {
			t.Fatalf("way 3 holds line %#x, want 11", got)
		}
	})

	t.Run("full set falls back to true LRU", func(t *testing.T) {
		c := mk()
		c.probe(0, true) // refresh line 0: line 1 is now LRU
		v, evicted, _ := c.insert(10, 0)
		if !evicted || v.tag-1 != 1 {
			t.Fatalf("evicted %#x (evicted=%v), want LRU line 1", v.tag-1, evicted)
		}
	})
}
