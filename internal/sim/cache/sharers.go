package cache

import (
	"math/bits"

	"cloudsuite/internal/sim/checkpoint"
)

// sharerWords is the width of the directory's sharer vector in 64-bit
// words. Four words track up to 256 cores — the ceiling of the scale-up
// study's design space — without heap allocation per line.
const sharerWords = 4

// MaxCores is the largest core count the LLC directory can track.
// SystemConfig.Validate rejects grids beyond it.
const MaxCores = 64 * sharerWords

// sharerSet is the directory's sharer vector: the set of global core
// ids holding a private copy of a line. It replaces the former flat
// uint32 bitmask, which capped the machine at 32 cores. The zero value
// is the empty set; the struct is copied and compared by value.
type sharerSet struct {
	w [sharerWords]uint64
}

// onlySharer returns the set containing exactly core.
func onlySharer(core int) sharerSet {
	var s sharerSet
	s.add(core)
	return s
}

func (s *sharerSet) add(core int)    { s.w[core>>6] |= 1 << uint(core&63) }
func (s *sharerSet) remove(core int) { s.w[core>>6] &^= 1 << uint(core&63) }

func (s sharerSet) contains(core int) bool { return s.w[core>>6]&(1<<uint(core&63)) != 0 }

func (s sharerSet) empty() bool {
	for _, w := range s.w {
		if w != 0 {
			return false
		}
	}
	return true
}

// count returns the number of sharers.
func (s sharerSet) count() int {
	n := 0
	for _, w := range s.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// only reports whether the set is exactly {core} — the directory's
// exclusivity test for a Modified owner.
func (s sharerSet) only(core int) bool {
	for i, w := range s.w {
		want := uint64(0)
		if i == core>>6 {
			want = 1 << uint(core&63)
		}
		if w != want {
			return false
		}
	}
	return true
}

// next returns the smallest member >= from, or -1 when none remains.
// Iterate ascending with:
//
//	for c := s.next(0); c >= 0; c = s.next(c + 1)
func (s sharerSet) next(from int) int {
	if from < 0 {
		from = 0
	}
	for i := from >> 6; i < sharerWords; i++ {
		w := s.w[i]
		if i == from>>6 {
			w &^= (1 << uint(from&63)) - 1
		}
		if w != 0 {
			return i<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// save serializes the set sparsely: a presence mask of non-zero words
// followed by those words. Typical directory entries hold a handful of
// sharers, so most lines cost one byte plus one word.
func (s sharerSet) save(w *checkpoint.Writer) {
	var mask uint8
	for i, word := range s.w {
		if word != 0 {
			mask |= 1 << uint(i)
		}
	}
	w.U8(mask)
	for _, word := range s.w {
		if word != 0 {
			w.U64(word)
		}
	}
}

// loadSharerSet reads a set written by save.
func loadSharerSet(r *checkpoint.Reader) sharerSet {
	var s sharerSet
	mask := r.U8()
	for i := 0; i < sharerWords; i++ {
		if mask&(1<<uint(i)) != 0 {
			s.w[i] = r.U64()
		}
	}
	return s
}
