package cache

import "fmt"

// This file implements a debug-mode coherence invariant checker for the
// memory system. The multi-socket paths of the simulator are easy to
// leave dormant (the default machine runs one socket), so the checker
// makes their correctness mechanically testable: after any access the
// whole hierarchy must satisfy the structural invariants below, or the
// directory protocol has leaked an incoherent state.
//
// Invariants:
//
//  1. Inclusion — every valid line in a private L1-I/L1-D/L2 is present
//     in its socket's LLC.
//  2. Sharer registration — the socket LLC's sharers mask covers every
//     core that actually holds the line privately (the mask may be a
//     superset: private caches evict clean lines silently).
//  3. Socket-local sharers — an LLC's sharers mask names only cores of
//     its own socket; cross-socket presence is tracked by the other
//     socket's own LLC entry.
//  4. Owner validity — a directory owner is a core of the same socket,
//     is the *only* sharer (Modified is exclusive: every read path,
//     demand or prefetch, downgrades the owner before registering a
//     new sharer), and still holds the line in its L1-D or L2 (losing
//     the last private copy of a Modified line clears the owner as the
//     dirty data is absorbed).
//  5. Single owner chip-wide — a line owned Modified in one socket's
//     LLC exists in no other socket's LLC (read-only duplicates across
//     sockets are legal; modified duplicates never are).
//  6. Exclusive implies ownership — a private L1-D line holding write
//     permission (flagExcl) belongs to the core the socket directory
//     records as owner, so stores that skip the directory lookup are
//     always covered by a directory claim.

// EnableInvariantChecks makes the system run CheckInvariants after
// every n-th access (1 = every access), panicking on the first
// violation. n <= 0 disables checking. The scan is O(total cache
// lines); it is a debugging and testing aid, not a simulation feature.
func (s *System) EnableInvariantChecks(every int) { s.checkEvery = every }

func (s *System) maybeCheck() {
	s.accesses++
	if s.accesses%uint64(s.checkEvery) != 0 {
		return
	}
	if err := s.CheckInvariants(); err != nil {
		panic(err)
	}
}

// CheckInvariants verifies the coherence invariants over the entire
// hierarchy and returns the first violation found, or nil.
func (s *System) CheckInvariants() error {
	for c := range s.cores {
		cc := &s.cores[c]
		sock := s.socketOf(c)
		llc := s.llcs[sock]
		for _, pc := range []struct {
			name string
			c    *Cache
		}{{"L1-I", cc.l1i}, {"L1-D", cc.l1d}, {"L2", cc.l2}} {
			for i := range pc.c.lines {
				l := &pc.c.lines[i]
				if !l.valid() {
					continue
				}
				la := l.tag - 1
				ll := llc.probe(la, false)
				if ll == nil {
					return fmt.Errorf("cache: inclusion violated: core %d %s holds line %#x absent from socket %d LLC",
						c, pc.name, la, sock)
				}
				if !ll.sharers.contains(c) {
					return fmt.Errorf("cache: sharer set stale: core %d %s holds line %#x but socket %d LLC sharers=%v",
						c, pc.name, la, sock, ll.sharers.w)
				}
				if l.flags&flagExcl != 0 && ll.owner != int16(c) {
					return fmt.Errorf("cache: exclusive without ownership: core %d %s holds line %#x with write permission but socket %d LLC owner=%d",
						c, pc.name, la, sock, ll.owner)
				}
			}
		}
	}

	for so, llc := range s.llcs {
		// The cores of socket so occupy a contiguous global-id range.
		localLo := so * s.cfg.CoresPerSocket
		localHi := localLo + s.cfg.CoresPerSocket
		for i := range llc.lines {
			l := &llc.lines[i]
			if !l.valid() {
				continue
			}
			la := l.tag - 1
			for c := l.sharers.next(0); c >= 0; c = l.sharers.next(c + 1) {
				if c < localLo || c >= localHi {
					return fmt.Errorf("cache: socket %d LLC line %#x lists foreign sharer core %d (local cores %d-%d)",
						so, la, c, localLo, localHi-1)
				}
			}
			if l.owner < 0 {
				continue
			}
			o := int(l.owner)
			if o >= len(s.cores) || s.socketOf(o) != so {
				return fmt.Errorf("cache: socket %d LLC line %#x owned by foreign core %d", so, la, o)
			}
			if !l.sharers.only(o) {
				return fmt.Errorf("cache: socket %d LLC line %#x owned Modified by core %d but sharers=%v (must be exclusive)",
					so, la, o, l.sharers.w)
			}
			oc := &s.cores[o]
			if !oc.l1d.Contains(la) && !oc.l2.Contains(la) {
				return fmt.Errorf("cache: socket %d LLC line %#x owner %d holds no private copy", so, la, o)
			}
			for so2 := range s.llcs {
				if so2 != so && s.llcs[so2].Contains(la) {
					return fmt.Errorf("cache: line %#x owned Modified by core %d in socket %d but also present in socket %d LLC",
						la, o, so, so2)
				}
			}
		}
	}
	return nil
}
