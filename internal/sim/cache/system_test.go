package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cloudsuite/internal/sim/dram"
)

func testSystemConfig(sockets, cores int) SystemConfig {
	cfg := DefaultSystemConfig()
	cfg.Sockets = sockets
	cfg.CoresPerSocket = cores
	// Small caches keep tests fast and force interesting evictions.
	cfg.L1I = Config{SizeBytes: 1 << 10, Assoc: 2, LatencyCycles: 4}
	cfg.L1D = Config{SizeBytes: 1 << 10, Assoc: 2, LatencyCycles: 4}
	cfg.L2 = Config{SizeBytes: 4 << 10, Assoc: 4, LatencyCycles: 11}
	cfg.LLC = Config{SizeBytes: 64 << 10, Assoc: 8, LatencyCycles: 29}
	cfg.DRAM = dram.Config{Channels: 2, AccessCycles: 100, TransferCycles: 10}
	return cfg
}

func TestDataHitLatencies(t *testing.T) {
	s := NewSystem(testSystemConfig(1, 2))
	addr := uint64(0x1000_0000)
	r := s.AccessData(0, addr, false, false, 0)
	if !r.OffCore || !r.L1Miss {
		t.Fatalf("cold access must go off-core: %+v", r)
	}
	r2 := s.AccessData(0, addr, false, false, 1000)
	if r2.L1Miss || r2.OffCore {
		t.Fatalf("second access must hit L1: %+v", r2)
	}
	if got := r2.Done - 1000; got != int64(s.cfg.L1D.LatencyCycles) {
		t.Errorf("L1 hit latency = %d, want %d", got, s.cfg.L1D.LatencyCycles)
	}
}

func TestInstrFetchMissCounters(t *testing.T) {
	s := NewSystem(testSystemConfig(1, 1))
	pc := uint64(0x40_0000)
	fr := s.FetchInstr(0, pc, 0, false)
	if !fr.L1Miss || !fr.OffCore {
		t.Fatalf("cold fetch must miss everywhere: %+v", fr)
	}
	c := s.Ctr(0)
	if c.L1IMissUser != 1 || c.L2IMissUser != 1 {
		t.Errorf("miss counters: L1I=%d L2I=%d, want 1/1", c.L1IMissUser, c.L2IMissUser)
	}
	fr2 := s.FetchInstr(0, pc, 10, false)
	if fr2.L1Miss {
		t.Fatalf("warm fetch must hit L1-I: %+v", fr2)
	}
	// Kernel fetches attribute to OS counters.
	s.FetchInstr(0, pc+4096*16, 20, true)
	if c.L1IMissOS != 1 {
		t.Errorf("kernel fetch miss not attributed to OS: %d", c.L1IMissOS)
	}
}

func TestWriteThenRemoteReadCountsSharedRW(t *testing.T) {
	s := NewSystem(testSystemConfig(1, 2))
	addr := uint64(0x2000_0000)
	// Core 0 writes the line (becomes Modified owner).
	s.AccessData(0, addr, true, false, 0)
	// Core 1 reads it: its L2 misses, the LLC directory shows core 0 as
	// the modified owner -> read-write sharing event.
	s.AccessData(1, addr, false, false, 100)
	c1 := s.Ctr(1)
	if c1.SharedRWHitUser != 1 {
		t.Fatalf("SharedRWHitUser = %d, want 1", c1.SharedRWHitUser)
	}
	// A third read by core 1 hits its own L1 now; no new event.
	s.AccessData(1, addr, false, false, 200)
	if c1.SharedRWHitUser != 1 {
		t.Fatalf("extra sharing event counted: %d", c1.SharedRWHitUser)
	}
}

func TestReadOnlySharingIsNotCounted(t *testing.T) {
	s := NewSystem(testSystemConfig(1, 2))
	addr := uint64(0x2000_0000)
	s.AccessData(0, addr, false, false, 0)   // core 0 reads
	s.AccessData(1, addr, false, false, 100) // core 1 reads
	if got := s.Ctr(1).SharedRWHitUser; got != 0 {
		t.Fatalf("read-only sharing counted as read-write: %d", got)
	}
}

func TestWriteInvalidatesOtherCore(t *testing.T) {
	s := NewSystem(testSystemConfig(1, 2))
	addr := uint64(0x3000_0000)
	s.AccessData(0, addr, false, false, 0) // core 0 caches the line
	s.AccessData(1, addr, true, false, 50) // core 1 writes it
	// Core 0's next read must miss L1 (its copy was invalidated).
	r := s.AccessData(0, addr, false, false, 100)
	if !r.L1Miss {
		t.Fatal("core 0 copy should have been invalidated by core 1's write")
	}
	if got := s.Ctr(0).SharedRWHitUser; got != 1 {
		t.Fatalf("core 0 re-read of modified line: SharedRWHitUser = %d, want 1", got)
	}
}

func TestRemoteSocketHit(t *testing.T) {
	s := NewSystem(testSystemConfig(2, 1))
	addr := uint64(0x4000_0000)
	s.AccessData(0, addr, true, false, 0) // socket 0 writes
	// Core 1 lives on socket 1: its LLC misses, snoop finds socket 0.
	s.AccessData(1, addr, false, false, 100)
	c1 := s.Ctr(1)
	if c1.RemoteSocketHit != 1 {
		t.Fatalf("RemoteSocketHit = %d, want 1", c1.RemoteSocketHit)
	}
	if c1.SharedRWHitUser != 1 {
		t.Fatalf("remote modified read must count sharing: %d", c1.SharedRWHitUser)
	}
}

func TestInclusionBackInvalidation(t *testing.T) {
	cfg := testSystemConfig(1, 1)
	cfg.LLC = Config{SizeBytes: 8 * 64, Assoc: 2, LatencyCycles: 29} // 4 sets
	cfg.AdjacentLine, cfg.HWPrefetcher, cfg.DCUStreamer = false, false, false
	s := NewSystem(cfg)
	// Fill one LLC set with two lines, then force an eviction with a third.
	sets := uint64(cfg.LLC.Sets())
	base := uint64(0x5000_0000) >> LineShift
	base -= base % sets // align to set 0
	a0, a1, a2 := base<<LineShift, (base+sets)<<LineShift, (base+2*sets)<<LineShift
	s.AccessData(0, a0, false, false, 0)
	s.AccessData(0, a1, false, false, 10)
	s.AccessData(0, a2, false, false, 20) // evicts a0 from LLC
	// a0 must also have left the private caches (inclusion).
	r := s.AccessData(0, a0, false, false, 100)
	if !r.OffCore {
		t.Fatal("inclusion violated: evicted LLC line still in private cache")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	cfg := testSystemConfig(1, 1)
	cfg.LLC = Config{SizeBytes: 8 * 64, Assoc: 2, LatencyCycles: 29}
	cfg.AdjacentLine, cfg.HWPrefetcher, cfg.DCUStreamer = false, false, false
	s := NewSystem(cfg)
	sets := uint64(cfg.LLC.Sets())
	base := uint64(0x5000_0000) >> LineShift
	base -= base % sets
	a0, a1, a2 := base<<LineShift, (base+sets)<<LineShift, (base+2*sets)<<LineShift
	s.AccessData(0, a0, true, false, 0) // dirty
	s.AccessData(0, a1, false, false, 10)
	s.AccessData(0, a2, false, false, 20) // evicts dirty a0
	if got := s.Ctr(0).OffchipWriteback; got != LineBytes {
		t.Fatalf("OffchipWriteback = %d, want %d", got, LineBytes)
	}
	if s.DRAM().Writes() != 1 {
		t.Fatalf("DRAM writes = %d, want 1", s.DRAM().Writes())
	}
}

func TestAdjacentLinePrefetch(t *testing.T) {
	cfg := testSystemConfig(1, 1)
	cfg.AdjacentLine = true
	cfg.HWPrefetcher, cfg.DCUStreamer = false, false
	s := NewSystem(cfg)
	addr := uint64(0x6000_0000) // line-pair aligned
	s.AccessData(0, addr, false, false, 0)
	// The buddy line should now be an L2 hit (prefetched).
	r := s.AccessData(0, addr^LineBytes, false, false, 100)
	if r.OffCore {
		t.Fatal("adjacent line was not prefetched into L2")
	}
	if got := s.Ctr(0).PrefIssued; got == 0 {
		t.Fatal("no prefetch recorded")
	}
	if got := s.Ctr(0).PrefUseful; got != 1 {
		t.Fatalf("PrefUseful = %d, want 1", got)
	}
}

func TestStridePrefetcherCatchesStreams(t *testing.T) {
	cfg := testSystemConfig(1, 1)
	cfg.AdjacentLine, cfg.DCUStreamer = false, false
	cfg.HWPrefetcher = true
	s := NewSystem(cfg)
	base := uint64(0x7000_0000)
	offcore := 0
	for i := uint64(0); i < 30; i++ {
		r := s.AccessData(0, base+i*LineBytes, false, false, int64(i*50))
		if r.OffCore {
			offcore++
		}
	}
	// With a working stream prefetcher most of the 30 sequential lines
	// should be covered after the ramp-up.
	if offcore > 12 {
		t.Fatalf("stream prefetcher ineffective: %d/30 accesses went off-core", offcore)
	}
}

func TestPrefetchersCanBeDisabled(t *testing.T) {
	cfg := testSystemConfig(1, 1)
	cfg.AdjacentLine, cfg.HWPrefetcher, cfg.DCUStreamer = false, false, false
	s := NewSystem(cfg)
	base := uint64(0x7000_0000)
	for i := uint64(0); i < 30; i++ {
		s.AccessData(0, base+i*LineBytes, false, false, int64(i*50))
	}
	if got := s.Ctr(0).PrefIssued; got != 0 {
		t.Fatalf("prefetches issued while disabled: %d", got)
	}
}

// Property: the directory never reports an owner that is not also a
// sharer, and repeated random traffic never corrupts hit/miss accounting
// (hits+misses == accesses).
func TestQuickSystemAccounting(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSystem(testSystemConfig(2, 2))
		for i := 0; i < 3000; i++ {
			core := rng.Intn(4)
			addr := uint64(0x1000_0000) + uint64(rng.Intn(4096))*LineBytes
			s.AccessData(core, addr, rng.Intn(4) == 0, rng.Intn(8) == 0, int64(i*10))
		}
		var access, hit, miss uint64
		for c := 0; c < 4; c++ {
			ctr := s.Ctr(c)
			access += ctr.LLCAccess
			hit += ctr.LLCHit
			miss += ctr.LLCMiss
		}
		return access == hit+miss
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionedLLCInstructionLatency(t *testing.T) {
	cfg := testSystemConfig(1, 1)
	cfg.LLCInstrLatencyCycles = 9
	s := NewSystem(cfg)
	pc := uint64(0x40_0000)
	s.FetchInstr(0, pc, 0, false) // fill LLC (and private caches)
	// Evict from the private caches only by invalidating them directly.
	s.cores[0].l1i.invalidate(pc >> LineShift)
	s.cores[0].l2.invalidate(pc >> LineShift)
	fr := s.FetchInstr(0, pc, 1000, false)
	if got := fr.Done - 1000; got != 9 {
		t.Fatalf("instruction LLC hit latency = %d, want replicated 9", got)
	}
	// Data accesses keep the uniform latency.
	addr := uint64(0x5000_0000)
	s.AccessData(0, addr, false, false, 2000)
	s.cores[0].l1d.invalidate(addr >> LineShift)
	s.cores[0].l2.invalidate(addr >> LineShift)
	r := s.AccessData(0, addr, false, false, 3000)
	if got := r.Done - 3000; got != int64(cfg.LLC.LatencyCycles) {
		t.Fatalf("data LLC hit latency = %d, want %d", got, cfg.LLC.LatencyCycles)
	}
}

// Property: inclusion — any line present in a private cache must also
// be present in its socket's LLC, under arbitrary mixed traffic.
func TestQuickInclusionInvariant(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSystem(testSystemConfig(1, 2))
		for i := 0; i < 4000; i++ {
			core := rng.Intn(2)
			addr := uint64(0x1000_0000) + uint64(rng.Intn(2048))*LineBytes
			if rng.Intn(3) == 0 {
				s.FetchInstr(core, addr, int64(i*10), rng.Intn(6) == 0)
			} else {
				s.AccessData(core, addr, rng.Intn(4) == 0, rng.Intn(8) == 0, int64(i*10))
			}
		}
		for c := 0; c < 2; c++ {
			cc := &s.cores[c]
			for _, pc := range []*Cache{cc.l1i, cc.l1d, cc.l2} {
				for li := range pc.lines {
					if !pc.lines[li].valid() {
						continue
					}
					la := pc.lines[li].tag - 1
					if !s.llcs[0].Contains(la) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: the LLC directory's owner, when set, is always listed as a
// sharer of the line.
func TestQuickOwnerIsSharer(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSystem(testSystemConfig(1, 4))
		for i := 0; i < 4000; i++ {
			core := rng.Intn(4)
			addr := uint64(0x2000_0000) + uint64(rng.Intn(1024))*LineBytes
			s.AccessData(core, addr, rng.Intn(2) == 0, false, int64(i*10))
		}
		for li := range s.llcs[0].lines {
			l := &s.llcs[0].lines[li]
			if !l.valid() || l.owner < 0 {
				continue
			}
			if l.sharers&(1<<uint(l.owner)) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
