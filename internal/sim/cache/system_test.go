package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cloudsuite/internal/sim/dram"
)

func testSystemConfig(sockets, cores int) SystemConfig {
	cfg := DefaultSystemConfig()
	cfg.Sockets = sockets
	cfg.CoresPerSocket = cores
	// Small caches keep tests fast and force interesting evictions.
	cfg.L1I = Config{SizeBytes: 1 << 10, Assoc: 2, LatencyCycles: 4}
	cfg.L1D = Config{SizeBytes: 1 << 10, Assoc: 2, LatencyCycles: 4}
	cfg.L2 = Config{SizeBytes: 4 << 10, Assoc: 4, LatencyCycles: 11}
	cfg.LLC = Config{SizeBytes: 64 << 10, Assoc: 8, LatencyCycles: 29}
	cfg.DRAM = dram.Config{Channels: 2, AccessCycles: 100, TransferCycles: 10}
	return cfg
}

func TestDataHitLatencies(t *testing.T) {
	s := NewSystem(testSystemConfig(1, 2))
	addr := uint64(0x1000_0000)
	r := s.AccessData(0, addr, false, false, 0)
	if !r.OffCore || !r.L1Miss {
		t.Fatalf("cold access must go off-core: %+v", r)
	}
	r2 := s.AccessData(0, addr, false, false, 1000)
	if r2.L1Miss || r2.OffCore {
		t.Fatalf("second access must hit L1: %+v", r2)
	}
	if got := r2.Done - 1000; got != int64(s.cfg.L1D.LatencyCycles) {
		t.Errorf("L1 hit latency = %d, want %d", got, s.cfg.L1D.LatencyCycles)
	}
}

func TestInstrFetchMissCounters(t *testing.T) {
	s := NewSystem(testSystemConfig(1, 1))
	pc := uint64(0x40_0000)
	fr := s.FetchInstr(0, pc, 0, false)
	if !fr.L1Miss || !fr.OffCore {
		t.Fatalf("cold fetch must miss everywhere: %+v", fr)
	}
	c := s.Ctr(0)
	if c.L1IMissUser != 1 || c.L2IMissUser != 1 {
		t.Errorf("miss counters: L1I=%d L2I=%d, want 1/1", c.L1IMissUser, c.L2IMissUser)
	}
	fr2 := s.FetchInstr(0, pc, 10, false)
	if fr2.L1Miss {
		t.Fatalf("warm fetch must hit L1-I: %+v", fr2)
	}
	// Kernel fetches attribute to OS counters.
	s.FetchInstr(0, pc+4096*16, 20, true)
	if c.L1IMissOS != 1 {
		t.Errorf("kernel fetch miss not attributed to OS: %d", c.L1IMissOS)
	}
}

func TestWriteThenRemoteReadCountsSharedRW(t *testing.T) {
	s := NewSystem(testSystemConfig(1, 2))
	addr := uint64(0x2000_0000)
	// Core 0 writes the line (becomes Modified owner).
	s.AccessData(0, addr, true, false, 0)
	// Core 1 reads it: its L2 misses, the LLC directory shows core 0 as
	// the modified owner -> read-write sharing event.
	s.AccessData(1, addr, false, false, 100)
	c1 := s.Ctr(1)
	if c1.SharedRWHitUser != 1 {
		t.Fatalf("SharedRWHitUser = %d, want 1", c1.SharedRWHitUser)
	}
	// A third read by core 1 hits its own L1 now; no new event.
	s.AccessData(1, addr, false, false, 200)
	if c1.SharedRWHitUser != 1 {
		t.Fatalf("extra sharing event counted: %d", c1.SharedRWHitUser)
	}
}

func TestReadOnlySharingIsNotCounted(t *testing.T) {
	s := NewSystem(testSystemConfig(1, 2))
	addr := uint64(0x2000_0000)
	s.AccessData(0, addr, false, false, 0)   // core 0 reads
	s.AccessData(1, addr, false, false, 100) // core 1 reads
	if got := s.Ctr(1).SharedRWHitUser; got != 0 {
		t.Fatalf("read-only sharing counted as read-write: %d", got)
	}
}

func TestWriteInvalidatesOtherCore(t *testing.T) {
	s := NewSystem(testSystemConfig(1, 2))
	addr := uint64(0x3000_0000)
	s.AccessData(0, addr, false, false, 0) // core 0 caches the line
	s.AccessData(1, addr, true, false, 50) // core 1 writes it
	// Core 0's next read must miss L1 (its copy was invalidated).
	r := s.AccessData(0, addr, false, false, 100)
	if !r.L1Miss {
		t.Fatal("core 0 copy should have been invalidated by core 1's write")
	}
	if got := s.Ctr(0).SharedRWHitUser; got != 1 {
		t.Fatalf("core 0 re-read of modified line: SharedRWHitUser = %d, want 1", got)
	}
}

func TestRemoteSocketHit(t *testing.T) {
	cfg := testSystemConfig(2, 1)
	// Prefetchers off: the test pins the demand-path accounting (the
	// prefetch paths count their own remote hits, tested separately).
	cfg.AdjacentLine, cfg.HWPrefetcher, cfg.DCUStreamer = false, false, false
	s := NewSystem(cfg)
	addr := uint64(0x4000_0000)
	s.AccessData(0, addr, true, false, 0) // socket 0 writes
	// Core 1 lives on socket 1: its LLC misses, snoop finds socket 0.
	s.AccessData(1, addr, false, false, 100)
	c1 := s.Ctr(1)
	if c1.RemoteSocketHit != 1 {
		t.Fatalf("RemoteSocketHit = %d, want 1", c1.RemoteSocketHit)
	}
	if c1.SharedRWHitUser != 1 {
		t.Fatalf("remote modified read must count sharing: %d", c1.SharedRWHitUser)
	}
}

func TestInclusionBackInvalidation(t *testing.T) {
	cfg := testSystemConfig(1, 1)
	cfg.LLC = Config{SizeBytes: 8 * 64, Assoc: 2, LatencyCycles: 29} // 4 sets
	cfg.AdjacentLine, cfg.HWPrefetcher, cfg.DCUStreamer = false, false, false
	s := NewSystem(cfg)
	// Fill one LLC set with two lines, then force an eviction with a third.
	sets := uint64(cfg.LLC.Sets())
	base := uint64(0x5000_0000) >> LineShift
	base -= base % sets // align to set 0
	a0, a1, a2 := base<<LineShift, (base+sets)<<LineShift, (base+2*sets)<<LineShift
	s.AccessData(0, a0, false, false, 0)
	s.AccessData(0, a1, false, false, 10)
	s.AccessData(0, a2, false, false, 20) // evicts a0 from LLC
	// a0 must also have left the private caches (inclusion).
	r := s.AccessData(0, a0, false, false, 100)
	if !r.OffCore {
		t.Fatal("inclusion violated: evicted LLC line still in private cache")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	cfg := testSystemConfig(1, 1)
	cfg.LLC = Config{SizeBytes: 8 * 64, Assoc: 2, LatencyCycles: 29}
	cfg.AdjacentLine, cfg.HWPrefetcher, cfg.DCUStreamer = false, false, false
	s := NewSystem(cfg)
	sets := uint64(cfg.LLC.Sets())
	base := uint64(0x5000_0000) >> LineShift
	base -= base % sets
	a0, a1, a2 := base<<LineShift, (base+sets)<<LineShift, (base+2*sets)<<LineShift
	s.AccessData(0, a0, true, false, 0) // dirty
	s.AccessData(0, a1, false, false, 10)
	s.AccessData(0, a2, false, false, 20) // evicts dirty a0
	if got := s.Ctr(0).OffchipWriteback; got != LineBytes {
		t.Fatalf("OffchipWriteback = %d, want %d", got, LineBytes)
	}
	if s.DRAM().Writes() != 1 {
		t.Fatalf("DRAM writes = %d, want 1", s.DRAM().Writes())
	}
}

func TestAdjacentLinePrefetch(t *testing.T) {
	cfg := testSystemConfig(1, 1)
	cfg.AdjacentLine = true
	cfg.HWPrefetcher, cfg.DCUStreamer = false, false
	s := NewSystem(cfg)
	addr := uint64(0x6000_0000) // line-pair aligned
	s.AccessData(0, addr, false, false, 0)
	// The buddy line should now be an L2 hit (prefetched).
	r := s.AccessData(0, addr^LineBytes, false, false, 100)
	if r.OffCore {
		t.Fatal("adjacent line was not prefetched into L2")
	}
	if got := s.Ctr(0).PrefIssued; got == 0 {
		t.Fatal("no prefetch recorded")
	}
	if got := s.Ctr(0).PrefUseful; got != 1 {
		t.Fatalf("PrefUseful = %d, want 1", got)
	}
}

func TestStridePrefetcherCatchesStreams(t *testing.T) {
	cfg := testSystemConfig(1, 1)
	cfg.AdjacentLine, cfg.DCUStreamer = false, false
	cfg.HWPrefetcher = true
	s := NewSystem(cfg)
	base := uint64(0x7000_0000)
	offcore := 0
	for i := uint64(0); i < 30; i++ {
		r := s.AccessData(0, base+i*LineBytes, false, false, int64(i*50))
		if r.OffCore {
			offcore++
		}
	}
	// With a working stream prefetcher most of the 30 sequential lines
	// should be covered after the ramp-up.
	if offcore > 12 {
		t.Fatalf("stream prefetcher ineffective: %d/30 accesses went off-core", offcore)
	}
}

func TestPrefetchersCanBeDisabled(t *testing.T) {
	cfg := testSystemConfig(1, 1)
	cfg.AdjacentLine, cfg.HWPrefetcher, cfg.DCUStreamer = false, false, false
	s := NewSystem(cfg)
	base := uint64(0x7000_0000)
	for i := uint64(0); i < 30; i++ {
		s.AccessData(0, base+i*LineBytes, false, false, int64(i*50))
	}
	if got := s.Ctr(0).PrefIssued; got != 0 {
		t.Fatalf("prefetches issued while disabled: %d", got)
	}
}

// noPrefetchConfig returns a multi-socket test config with every
// prefetcher disabled, so tests observe demand traffic alone.
func noPrefetchConfig(sockets, cores int) SystemConfig {
	cfg := testSystemConfig(sockets, cores)
	cfg.AdjacentLine, cfg.HWPrefetcher, cfg.DCUStreamer = false, false, false
	cfg.IPrefetch = IPrefNone
	return cfg
}

// Remote instruction fetches must keep the instruction flag on the
// local LLC fill, exactly like the off-chip path.
func TestRemoteInstrFetchKeepsInstrFlag(t *testing.T) {
	s := NewSystem(noPrefetchConfig(2, 1))
	s.EnableInvariantChecks(1)
	pc := uint64(0x40_0000)
	s.FetchInstr(0, pc, 0, false) // socket 0 caches the line
	fr := s.FetchInstr(1, pc, 100, false)
	if !fr.OffCore {
		t.Fatalf("remote fetch should miss the core: %+v", fr)
	}
	if got := s.Ctr(1).RemoteSocketHit; got != 1 {
		t.Fatalf("RemoteSocketHit = %d, want 1", got)
	}
	l := s.llcs[1].probe(pc>>LineShift, false)
	if l == nil {
		t.Fatal("remote instruction fetch did not fill the local LLC")
	}
	if l.flags&flagInstr == 0 {
		t.Fatal("remote instruction fill dropped flagInstr")
	}
}

// A read serviced by a remote Modified line must demote the owner's
// private copies: the owner's next store has to re-claim exclusivity
// through the directory, invalidating the reader and producing the
// read-write sharing events the Figure-6 methodology counts.
func TestRemoteDowngradeDemotesOwnerPrivates(t *testing.T) {
	s := NewSystem(noPrefetchConfig(2, 1))
	s.EnableInvariantChecks(1)
	addr := uint64(0x2000_0000)
	line := addr >> LineShift
	s.AccessData(0, addr, true, false, 0)    // core 0 (socket 0) owns Modified
	s.AccessData(1, addr, false, false, 100) // core 1 (socket 1) reads: downgrade
	if l := s.cores[0].l1d.probe(line, false); l == nil || l.flags&flagExcl != 0 {
		t.Fatal("owner's L1-D copy kept write permission across a remote read")
	}
	// The owner writes again: without its stale flagExcl it must go
	// through the directory and invalidate the remote reader.
	s.AccessData(0, addr, true, false, 200)
	if s.llcs[1].Contains(line) {
		t.Fatal("re-claimed write left a stale copy in the remote LLC")
	}
	r := s.AccessData(1, addr, false, false, 300)
	if !r.OffCore {
		t.Fatal("reader's stale private copy survived the owner's write")
	}
	if got := s.Ctr(1).SharedRWHitUser; got != 2 {
		t.Fatalf("SharedRWHitUser = %d, want 2 (one per read of a remotely-modified line)", got)
	}
}

// Instruction prefetches must snoop the other sockets: fetching the
// line straight from memory would leave an incoherent duplicate of a
// remotely-modified line.
func TestPrefetchInstrSnoopsRemoteSocket(t *testing.T) {
	s := NewSystem(noPrefetchConfig(2, 1))
	s.EnableInvariantChecks(1)
	addr := uint64(0x2000_0000)
	line := addr >> LineShift
	s.AccessData(0, addr, true, false, 0) // socket 0 holds the line Modified
	s.prefetchInstr(1, line, false, 100)
	if got := s.Ctr(1).RemoteSocketHit; got != 1 {
		t.Fatalf("instruction prefetch RemoteSocketHit = %d, want 1", got)
	}
	if rl := s.llcs[0].probe(line, false); rl == nil || rl.owner >= 0 {
		t.Fatal("remote owner not downgraded by instruction prefetch")
	}
	if !s.llcs[1].Contains(line) {
		t.Fatal("instruction prefetch did not fill the local LLC")
	}
	if s.DRAM().Reads()+s.DRAMOf(1).Reads() != 1 {
		t.Fatal("prefetch serviced remotely must not also read DRAM")
	}
}

// L2 prefetches serviced by the other socket count as remote hits,
// like every other remotely-serviced request.
func TestPrefetchL2RemoteHitAccounting(t *testing.T) {
	s := NewSystem(noPrefetchConfig(2, 1))
	s.EnableInvariantChecks(1)
	addr := uint64(0x2000_0000)
	line := addr >> LineShift
	s.AccessData(0, addr, false, false, 0)
	s.prefetchL2(1, line, false, 100)
	if got := s.Ctr(1).RemoteSocketHit; got != 1 {
		t.Fatalf("L2 prefetch RemoteSocketHit = %d, want 1", got)
	}
	if !s.cores[1].l2.Contains(line) {
		t.Fatal("prefetch did not fill the requesting L2")
	}
}

// A write that hits the local LLC must still invalidate copies the
// other socket picked up earlier: exclusivity is chip-wide, not
// socket-wide.
func TestCrossSocketWriteHitInvalidatesRemoteCopies(t *testing.T) {
	s := NewSystem(noPrefetchConfig(2, 2))
	s.EnableInvariantChecks(1)
	addr := uint64(0x3000_0000)
	line := addr >> LineShift
	s.AccessData(0, addr, false, false, 0)   // socket 0 reads
	s.AccessData(2, addr, false, false, 100) // socket 1 reads (both LLCs share)
	if !s.llcs[0].Contains(line) || !s.llcs[1].Contains(line) {
		t.Fatal("read sharing should replicate the line in both LLCs")
	}
	s.AccessData(0, addr, true, false, 200) // local LLC hit, write
	if s.llcs[1].Contains(line) {
		t.Fatal("write hit in the local LLC left a stale remote copy")
	}
	r := s.AccessData(2, addr, false, false, 300)
	if !r.OffCore {
		t.Fatal("remote reader still had a private copy after the write")
	}
	if got := s.Ctr(2).SharedRWHitUser; got != 1 {
		t.Fatalf("re-read of the written line: SharedRWHitUser = %d, want 1", got)
	}
}

// Cross-socket write misses invalidate the remote holder entirely.
func TestCrossSocketWriteMissInvalidates(t *testing.T) {
	s := NewSystem(noPrefetchConfig(2, 1))
	s.EnableInvariantChecks(1)
	addr := uint64(0x3000_0000)
	line := addr >> LineShift
	s.AccessData(0, addr, true, false, 0)  // socket 0 Modified
	s.AccessData(1, addr, true, false, 50) // socket 1 write miss: steal
	if s.llcs[0].Contains(line) {
		t.Fatal("remote write did not invalidate the previous socket's copy")
	}
	if l := s.llcs[1].probe(line, false); l == nil || l.owner != 1 {
		t.Fatal("stealing write did not take ownership in its own LLC")
	}
	if got := s.Ctr(1).SharedRWHitUser; got != 1 {
		t.Fatalf("write steal of a modified line: SharedRWHitUser = %d, want 1", got)
	}
}

// Each socket owns a memory controller; lines interleave across them
// by page, and cross-socket fetches pay the QPI latency on top of the
// DRAM access.
func TestPerSocketDRAMRouting(t *testing.T) {
	cfg := noPrefetchConfig(2, 1)
	cfg.RemoteMemCycles = 70
	s := NewSystem(cfg)
	// One full page per socket: page 0 is socket 0's, page 1 socket 1's.
	page0 := uint64(0)
	page1 := uint64(4096)
	rl := s.AccessData(0, page0, false, false, 0)
	rr := s.AccessData(0, page1, false, false, 0)
	if s.DRAMOf(0).Reads() != 1 || s.DRAMOf(1).Reads() != 1 {
		t.Fatalf("reads routed %d/%d, want 1/1", s.DRAMOf(0).Reads(), s.DRAMOf(1).Reads())
	}
	if got := rr.Done - rl.Done; got != 70 {
		t.Fatalf("remote DRAM penalty = %d cycles, want 70", got)
	}
	c := s.Ctr(0)
	if c.DRAMReadLocal != 1 || c.DRAMReadRemote != 1 {
		t.Fatalf("local/remote read counts = %d/%d, want 1/1", c.DRAMReadLocal, c.DRAMReadRemote)
	}
}

// Property: the directory never reports an owner that is not also a
// sharer, and repeated random traffic never corrupts hit/miss accounting
// (hits+misses == accesses).
func TestQuickSystemAccounting(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSystem(testSystemConfig(2, 2))
		s.EnableInvariantChecks(3)
		for i := 0; i < 3000; i++ {
			core := rng.Intn(4)
			addr := uint64(0x1000_0000) + uint64(rng.Intn(4096))*LineBytes
			s.AccessData(core, addr, rng.Intn(4) == 0, rng.Intn(8) == 0, int64(i*10))
		}
		var access, hit, miss uint64
		for c := 0; c < 4; c++ {
			ctr := s.Ctr(c)
			access += ctr.LLCAccess
			hit += ctr.LLCHit
			miss += ctr.LLCMiss
		}
		return access == hit+miss
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionedLLCInstructionLatency(t *testing.T) {
	cfg := testSystemConfig(1, 1)
	cfg.LLCInstrLatencyCycles = 9
	s := NewSystem(cfg)
	pc := uint64(0x40_0000)
	s.FetchInstr(0, pc, 0, false) // fill LLC (and private caches)
	// Evict from the private caches only by invalidating them directly.
	s.cores[0].l1i.invalidate(pc >> LineShift)
	s.cores[0].l2.invalidate(pc >> LineShift)
	fr := s.FetchInstr(0, pc, 1000, false)
	if got := fr.Done - 1000; got != 9 {
		t.Fatalf("instruction LLC hit latency = %d, want replicated 9", got)
	}
	// Data accesses keep the uniform latency.
	addr := uint64(0x5000_0000)
	s.AccessData(0, addr, false, false, 2000)
	s.cores[0].l1d.invalidate(addr >> LineShift)
	s.cores[0].l2.invalidate(addr >> LineShift)
	r := s.AccessData(0, addr, false, false, 3000)
	if got := r.Done - 3000; got != int64(cfg.LLC.LatencyCycles) {
		t.Fatalf("data LLC hit latency = %d, want %d", got, cfg.LLC.LatencyCycles)
	}
}

// Property: inclusion — any line present in a private cache must also
// be present in its socket's LLC, under arbitrary mixed traffic.
func TestQuickInclusionInvariant(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSystem(testSystemConfig(1, 2))
		for i := 0; i < 4000; i++ {
			core := rng.Intn(2)
			addr := uint64(0x1000_0000) + uint64(rng.Intn(2048))*LineBytes
			if rng.Intn(3) == 0 {
				s.FetchInstr(core, addr, int64(i*10), rng.Intn(6) == 0)
			} else {
				s.AccessData(core, addr, rng.Intn(4) == 0, rng.Intn(8) == 0, int64(i*10))
			}
		}
		for c := 0; c < 2; c++ {
			cc := &s.cores[c]
			for _, pc := range []*Cache{cc.l1i, cc.l1d, cc.l2} {
				for li := range pc.lines {
					if !pc.lines[li].valid() {
						continue
					}
					la := pc.lines[li].tag - 1
					if !s.llcs[0].Contains(la) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: the LLC directory's owner, when set, is always listed as a
// sharer of the line.
func TestQuickOwnerIsSharer(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSystem(testSystemConfig(1, 4))
		for i := 0; i < 4000; i++ {
			core := rng.Intn(4)
			addr := uint64(0x2000_0000) + uint64(rng.Intn(1024))*LineBytes
			s.AccessData(core, addr, rng.Intn(2) == 0, false, int64(i*10))
		}
		for li := range s.llcs[0].lines {
			l := &s.llcs[0].lines[li]
			if !l.valid() || l.owner < 0 {
				continue
			}
			if !l.sharers.contains(int(l.owner)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// On a 3+ socket machine a dirty copy can coexist with clean replicas
// on other sockets; the sharing test must consider every remote holder,
// not just the first socket probed.
func TestThreeSocketSharingSeesDirtyReplica(t *testing.T) {
	s := NewSystem(noPrefetchConfig(3, 1))
	s.EnableInvariantChecks(1)
	addr := uint64(0x2000_0000)
	// Socket 1 writes, then reads back so the dirty (unowned after the
	// downgrade below) copy lives in LLC 1; socket 0 picks up a clean
	// replica.
	s.AccessData(1, addr, true, false, 0)
	s.AccessData(0, addr, false, false, 100) // downgrade: LLC1 dirty, LLC0 clean
	if got := s.Ctr(0).SharedRWHitUser; got != 1 {
		t.Fatalf("first remote read: SharedRWHitUser = %d, want 1", got)
	}
	// Socket 2 reads: the snoop finds the clean replica in LLC 0 first,
	// but the line is still dirty in LLC 1 — a sharing event.
	s.AccessData(2, addr, false, false, 200)
	if got := s.Ctr(2).SharedRWHitUser; got != 1 {
		t.Fatalf("read with clean+dirty replicas: SharedRWHitUser = %d, want 1", got)
	}
	if got := s.Ctr(2).RemoteSocketHit; got != 1 {
		t.Fatalf("RemoteSocketHit = %d, want 1 per access", got)
	}
}

// A prefetch that hits the local LLC on a line another core holds
// Modified is a read like any other: it must downgrade the owner, or
// the owner's retained write permission and the prefetched copy go
// incoherent and the subsequent sharing events are lost.
func TestPrefetchLocalHitDowngradesOwner(t *testing.T) {
	s := NewSystem(noPrefetchConfig(1, 2))
	s.EnableInvariantChecks(1)
	addr := uint64(0x2000_0000)
	line := addr >> LineShift
	s.AccessData(0, addr, true, false, 0) // core 0 owns Modified
	s.prefetchL2(1, line, false, 100)     // core 1 prefetches the line
	if l := s.llcs[0].probe(line, false); l == nil || l.owner >= 0 {
		t.Fatal("prefetch hit did not downgrade the Modified owner")
	}
	// The owner's next store goes through the directory and invalidates
	// the prefetched copy; core 1's re-read records the sharing event.
	s.AccessData(0, addr, true, false, 200)
	if s.cores[1].l2.Contains(line) {
		t.Fatal("owner's re-claimed write left a stale prefetched copy")
	}
	s.AccessData(1, addr, false, false, 300)
	if got := s.Ctr(1).SharedRWHitUser; got != 1 {
		t.Fatalf("SharedRWHitUser = %d, want 1", got)
	}
}

// An instruction fetch of a line another core holds Modified downgrades
// the owner (coherence) without counting a data-sharing event.
func TestInstrFetchDowngradesOwnerWithoutSharingCount(t *testing.T) {
	s := NewSystem(noPrefetchConfig(1, 2))
	s.EnableInvariantChecks(1)
	addr := uint64(0x2000_0000)
	line := addr >> LineShift
	s.AccessData(0, addr, true, false, 0) // core 0 owns Modified
	s.FetchInstr(1, addr, 100, false)     // core 1 fetches it as code
	if l := s.llcs[0].probe(line, false); l == nil || l.owner >= 0 {
		t.Fatal("instruction fetch did not downgrade the Modified owner")
	}
	if got := s.Ctr(1).SharedRWHitUser + s.Ctr(1).SharedRWHitOS; got != 0 {
		t.Fatalf("instruction fetch counted as data sharing: %d", got)
	}
}

// Write-after-remote-read ping-pong must count sharing on the write-hit
// path (claimOwnership) like it does on the write-miss snoop path: the
// dirty remote copy identifies the line as remotely modified even after
// the owner was downgraded.
func TestWriteHitAfterRemoteReadCountsSharing(t *testing.T) {
	s := NewSystem(noPrefetchConfig(2, 1))
	s.EnableInvariantChecks(1)
	addr := uint64(0x2000_0000)
	s.AccessData(0, addr, true, false, 0)    // core 0 (socket 0) owns Modified
	s.AccessData(1, addr, false, false, 100) // core 1 reads: downgrade, LLC0 dirty
	if got := s.Ctr(1).SharedRWHitUser; got != 1 {
		t.Fatalf("remote read: SharedRWHitUser = %d, want 1", got)
	}
	// Core 1 writes its (clean, still-private) copy: the L1-D hit claims
	// ownership and invalidates socket 0's dirty copy — a sharing event.
	s.AccessData(1, addr, true, false, 200)
	if got := s.Ctr(1).SharedRWHitUser; got != 2 {
		t.Fatalf("write hit on remotely-modified line: SharedRWHitUser = %d, want 2", got)
	}
	if s.llcs[0].Contains(addr >> LineShift) {
		t.Fatal("write hit left the stale dirty copy in the remote LLC")
	}
}
