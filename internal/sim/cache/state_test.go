package cache

import (
	"bytes"
	"math/rand"
	"testing"

	"cloudsuite/internal/sim/checkpoint"
)

// snapshotSystem serializes s and returns the container bytes.
func snapshotSystem(t *testing.T, s *System) []byte {
	t.Helper()
	w := checkpoint.NewWriter()
	s.SaveState(w)
	var buf bytes.Buffer
	if err := w.Snapshot("state-test").Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSystemStateRoundTrip64Cores proves the new sparse sharer-set
// encoding round-trips on a four-socket 64-core machine: warm a system
// past the old 32-core envelope, SaveState, LoadState into a fresh
// system, and SaveState again — the two snapshots must be byte-equal
// and the restored directory must satisfy every invariant.
func TestSystemStateRoundTrip64Cores(t *testing.T) {
	const sockets, cps = 4, 16
	cfg := testSystemConfig(sockets, cps)
	s := NewSystem(cfg)
	rng := rand.New(rand.NewSource(7))
	now := int64(0)
	for op := 0; op < 6000; op++ {
		core := rng.Intn(sockets * cps)
		addr := uint64(rng.Intn(256)) * 64 // hot pool: lots of sharing
		switch rng.Intn(3) {
		case 0:
			s.AccessData(core, addr, false, false, now)
		case 1:
			s.AccessData(core, addr, true, false, now)
		default:
			s.FetchInstr(core, addr, now, false)
		}
		now += 3
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("warmed system invalid before save: %v", err)
	}

	first := snapshotSystem(t, s)

	restored := NewSystem(cfg)
	snap, err := checkpoint.Decode(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadState(snap.Reader()); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if err := restored.CheckInvariants(); err != nil {
		t.Fatalf("restored system violates invariants: %v", err)
	}
	if second := snapshotSystem(t, restored); !bytes.Equal(first, second) {
		t.Fatal("save -> load -> save is not byte-identical at 4 sockets / 64 cores")
	}
}

// TestSystemLoadRejectsGeometryMismatch: a snapshot of one grid must not
// load into another.
func TestSystemLoadRejectsGeometryMismatch(t *testing.T) {
	s := NewSystem(testSystemConfig(4, 16))
	s.AccessData(40, 0x1000, true, false, 0)
	raw := snapshotSystem(t, s)
	snap, err := checkpoint.Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	other := NewSystem(testSystemConfig(2, 6))
	if err := other.LoadState(snap.Reader()); err == nil {
		t.Fatal("4x16 snapshot loaded into a 2x6 system")
	}
}
