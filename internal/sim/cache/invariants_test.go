package cache

import (
	"math/rand"
	"testing"

	"cloudsuite/internal/sim/topo"
	"cloudsuite/internal/trace"
	"cloudsuite/internal/workloads"
	"cloudsuite/internal/workloads/dataserving"
	"cloudsuite/internal/workloads/mapreduce"
	"cloudsuite/internal/workloads/satsolver"
	"cloudsuite/internal/workloads/streaming"
	"cloudsuite/internal/workloads/webfrontend"
	"cloudsuite/internal/workloads/websearch"
)

func TestCheckInvariantsCleanSystem(t *testing.T) {
	s := NewSystem(testSystemConfig(2, 2))
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("empty system violates invariants: %v", err)
	}
	s.AccessData(0, 0x1000, true, false, 0)
	s.AccessData(3, 0x1000, false, false, 100)
	s.FetchInstr(1, 0x40_0000, 200, false)
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("simple traffic violates invariants: %v", err)
	}
}

// The checker must actually detect corrupted states, or wiring it into
// tests proves nothing.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	line := uint64(0x1000) >> LineShift
	corrupt := []struct {
		name string
		prep func(s *System)
	}{
		{"inclusion", func(s *System) {
			s.AccessData(0, 0x1000, false, false, 0)
			s.llcs[0].invalidate(line) // private copies left dangling
		}},
		{"stale-sharers", func(s *System) {
			s.AccessData(0, 0x1000, false, false, 0)
			s.llcs[0].probe(line, false).sharers = sharerSet{}
		}},
		{"foreign-sharer", func(s *System) {
			s.AccessData(0, 0x1000, false, false, 0)
			s.llcs[0].probe(line, false).sharers.add(2) // socket-1 core
		}},
		{"owner-not-sharer", func(s *System) {
			s.AccessData(0, 0x1000, true, false, 0)
			s.llcs[0].probe(line, false).sharers = onlySharer(1)
			s.cores[1].l1d.insert(line, 0)
			s.cores[0].l1d.invalidate(line)
			s.cores[0].l2.invalidate(line)
		}},
		{"absent-owner", func(s *System) {
			s.AccessData(0, 0x1000, true, false, 0)
			s.cores[0].l1d.invalidate(line)
			s.cores[0].l2.invalidate(line)
		}},
		{"modified-duplicate", func(s *System) {
			s.AccessData(0, 0x1000, true, false, 0)
			s.llcs[1].insert(line, 0)
		}},
		{"exclusive-without-owner", func(s *System) {
			s.AccessData(0, 0x1000, true, false, 0)
			s.llcs[0].probe(line, false).owner = -1
		}},
	}
	for _, tc := range corrupt {
		s := NewSystem(noPrefetchConfig(2, 2))
		tc.prep(s)
		if err := s.CheckInvariants(); err == nil {
			t.Errorf("%s: corruption not detected", tc.name)
		}
	}
}

// The same corruption shapes must be caught above the old 32-core
// boundary, where the flat uint32 mask could not even represent the
// cores involved.
func TestCheckInvariantsDetectsCorruptionBeyond32Cores(t *testing.T) {
	line := uint64(0x1000) >> LineShift
	corrupt := []struct {
		name string
		prep func(s *System)
	}{
		{"stale-high-sharer", func(s *System) {
			s.AccessData(40, 0x1000, false, false, 0) // socket 2, core 40
			s.llcs[2].probe(line, false).sharers = sharerSet{}
		}},
		{"foreign-high-sharer", func(s *System) {
			s.AccessData(0, 0x1000, false, false, 0)
			s.llcs[0].probe(line, false).sharers.add(40)
		}},
		{"high-owner-not-exclusive", func(s *System) {
			s.AccessData(40, 0x1000, true, false, 0)
			s.llcs[2].probe(line, false).sharers.add(41)
		}},
		{"absent-high-owner", func(s *System) {
			s.AccessData(63, 0x1000, true, false, 0)
			s.cores[63].l1d.invalidate(line)
			s.cores[63].l2.invalidate(line)
		}},
	}
	for _, tc := range corrupt {
		s := NewSystem(noPrefetchConfig(4, 16))
		tc.prep(s)
		if err := s.CheckInvariants(); err == nil {
			t.Errorf("%s: corruption not detected", tc.name)
		}
	}
}

// TestInvariantsHoldOnRandomizedTopologies drives synthetic traffic
// with the checker armed on every access across the widened design
// space: one to four sockets, up to 64 cores, both interconnects. The
// address pool is small so lines collide across cores and sockets
// constantly — the densest possible sharing the directory must survive.
func TestInvariantsHoldOnRandomizedTopologies(t *testing.T) {
	grids := []struct{ sockets, cps int }{
		{1, 2}, {1, 16}, {2, 8}, {3, 4}, {4, 4}, {4, 16},
	}
	for _, kind := range []topo.Kind{topo.FullMesh, topo.Ring} {
		for _, g := range grids {
			cfg := testSystemConfig(g.sockets, g.cps)
			cfg.Interconnect = kind
			s := NewSystem(cfg)
			s.EnableInvariantChecks(1)
			cores := cfg.TotalCores()
			rng := rand.New(rand.NewSource(int64(cores)*7 + int64(kind)))
			for i := 0; i < 4000; i++ {
				core := rng.Intn(cores)
				addr := uint64(rng.Intn(48)) << LineShift
				switch rng.Intn(4) {
				case 0:
					s.AccessData(core, addr, true, rng.Intn(8) == 0, int64(i))
				case 1, 2:
					s.AccessData(core, addr, false, rng.Intn(8) == 0, int64(i))
				case 3:
					s.FetchInstr(core, addr|0x40_0000<<LineShift, int64(i), false)
				}
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("%s %dx%d: %v", kind, g.sockets, g.cps, err)
			}
		}
	}
}

// replayOnSystem streams per-thread workload traces into the memory
// system the way the engine's warm-up loop does: instruction fetches on
// line transitions plus every load and store, round-robin across
// threads so accesses to shared structures interleave.
func replayOnSystem(t *testing.T, s *System, gens []*trace.StepGen, perThread int) {
	t.Helper()
	type state struct {
		buf      []trace.Inst
		n, pos   int
		lastLine uint64
		done     int
	}
	sts := make([]*state, len(gens))
	for i := range sts {
		sts[i] = &state{buf: make([]trace.Inst, 256)}
	}
	now := int64(0)
	for active := true; active; {
		active = false
		for tid, g := range gens {
			st := sts[tid]
			if st.done >= perThread {
				continue
			}
			// One short burst per thread per round.
			for burst := 0; burst < 32 && st.done < perThread; burst++ {
				if st.pos == st.n {
					st.n = g.Next(st.buf)
					st.pos = 0
					if st.n == 0 {
						st.done = perThread
						break
					}
				}
				in := &st.buf[st.pos]
				st.pos++
				st.done++
				core := tid % len(s.cores)
				if line := in.PC >> LineShift; line != st.lastLine {
					s.FetchInstr(core, in.PC, now, in.Kernel)
					st.lastLine = line
				}
				if in.Op == trace.OpLoad || in.Op == trace.OpStore {
					s.AccessData(core, in.Addr, in.Op == trace.OpStore, in.Kernel, now)
				}
				now += 2
			}
			if st.done < perThread {
				active = true
			}
		}
	}
}

// A two-socket system must hold the coherence invariants across real
// traffic from every scale-out workload, so the multi-socket paths can
// never go dormant-and-broken again.
func TestInvariantsHoldOnScaleOutTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("workload trace replay is slow")
	}
	benches := []struct {
		name string
		mk   func() workloads.Workload
	}{
		{"Data Serving", func() workloads.Workload { return dataserving.New(dataserving.DefaultConfig()) }},
		{"MapReduce", func() workloads.Workload { return mapreduce.New(mapreduce.DefaultConfig()) }},
		{"Media Streaming", func() workloads.Workload { return streaming.New(streaming.DefaultConfig()) }},
		{"SAT Solver", func() workloads.Workload { return satsolver.New(satsolver.DefaultConfig()) }},
		{"Web Frontend", func() workloads.Workload { return webfrontend.New(webfrontend.DefaultConfig()) }},
		{"Web Search", func() workloads.Workload { return websearch.New(websearch.DefaultConfig()) }},
	}
	for _, b := range benches {
		b := b
		t.Run(b.name, func(t *testing.T) {
			s := NewSystem(testSystemConfig(2, 2))
			s.EnableInvariantChecks(5)
			gens := b.mk().Start(4, 1)
			defer func() {
				for _, g := range gens {
					g.Close()
				}
			}()
			replayOnSystem(t, s, gens, 8000)
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("%s: %v", b.name, err)
			}
			var remote uint64
			for c := range s.cores {
				remote += s.Ctr(c).RemoteSocketHit
			}
			if remote == 0 {
				t.Errorf("%s: a two-socket run with shared data saw no remote hits", b.name)
			}
		})
	}
}
