package cache

import (
	"fmt"

	"cloudsuite/internal/sim/checkpoint"
)

// This file serializes the memory system into warm-state checkpoints:
// every cache array with its directory fields (sharer sets, Modified
// owners), the per-core prefetcher state, the per-socket DRAM
// controllers, and the per-core performance-counter blocks. Together
// with the per-core TLB and branch-predictor state (saved by the
// engine) this is the complete machine-visible effect of functional
// warming, so a run restored from a snapshot is byte-identical to one
// that warmed from cold.

// SaveState serializes the cache's LRU clock and line array, including
// the directory fields used by LLC instances. The encoding is sparse —
// only valid ways are written, each prefixed by its array index — and
// hand-rolled: an LLC holds hundreds of thousands of ways, typically
// mostly empty at the warm boundary, and both a dense layout and a
// reflection-based encoder would dominate checkpoint size and restore
// cost (the payload is also content-hashed on every save and load).
func (c *Cache) SaveState(w *checkpoint.Writer) {
	w.Tag("cache")
	w.U64(c.tick)
	w.U32(uint32(len(c.lines)))
	valid := uint32(0)
	for i := range c.lines {
		if c.lines[i].valid() {
			valid++
		}
	}
	w.U32(valid)
	for i := range c.lines {
		l := &c.lines[i]
		if !l.valid() {
			continue
		}
		w.U32(uint32(i))
		w.U64(l.tag)
		w.U64(l.lru)
		l.sharers.save(w)
		w.U16(uint16(l.owner))
		w.U8(uint8(l.flags))
	}
}

// LoadState restores state saved by SaveState into a cache of identical
// geometry; a mismatch is reported through the reader. Ways absent from
// the snapshot reset to invalid (their residual fields are dead state:
// every read path checks validity first and insert overwrites a way
// wholesale).
func (c *Cache) LoadState(r *checkpoint.Reader) {
	r.Expect("cache")
	c.tick = r.U64()
	if n := int(r.U32()); r.Err() == nil && n != len(c.lines) {
		r.Failf("cache geometry mismatch: snapshot has %d ways, cache holds %d", n, len(c.lines))
		return
	}
	for i := range c.lines {
		c.lines[i] = line{}
	}
	valid := int(r.U32())
	if r.Err() == nil && valid > len(c.lines) {
		r.Failf("cache snapshot has %d valid ways, cache holds %d", valid, len(c.lines))
		return
	}
	for k := 0; k < valid; k++ {
		i := int(r.U32())
		if r.Err() != nil {
			return
		}
		if i >= len(c.lines) {
			r.Failf("cache snapshot way index %d out of range (%d ways)", i, len(c.lines))
			return
		}
		l := &c.lines[i]
		l.tag = r.U64()
		l.lru = r.U64()
		l.sharers = loadSharerSet(r)
		l.owner = int16(r.U16())
		l.flags = lineFlags(r.U8())
	}
}

// SaveState serializes the whole memory system: per-core private caches
// and prefetchers, per-socket LLCs and DRAM controllers, and the
// per-core counter blocks.
func (s *System) SaveState(w *checkpoint.Writer) {
	w.Tag("mem")
	w.U32(uint32(s.cfg.Sockets))
	w.U32(uint32(s.cfg.CoresPerSocket))
	w.U64(s.accesses)
	for i := range s.cores {
		cc := &s.cores[i]
		cc.l1i.SaveState(w)
		cc.l1d.SaveState(w)
		cc.l2.SaveState(w)
		cc.stride.SaveState(w)
		cc.dcu.SaveState(w)
		w.Bool(cc.streamI != nil)
		if cc.streamI != nil {
			cc.streamI.SaveState(w)
		}
		s.ctrs[i].SaveState(w)
	}
	for _, llc := range s.llcs {
		llc.SaveState(w)
	}
	for _, m := range s.mems {
		m.SaveState(w)
	}
}

// LoadState restores a memory system saved by SaveState into a system
// built from the identical configuration. It returns an error on any
// geometry or format mismatch, leaving partially-loaded state behind —
// callers must discard the system on error.
func (s *System) LoadState(r *checkpoint.Reader) error {
	r.Expect("mem")
	sockets, cps := int(r.U32()), int(r.U32())
	if r.Err() == nil && (sockets != s.cfg.Sockets || cps != s.cfg.CoresPerSocket) {
		return fmt.Errorf("cache: snapshot is for a %dx%d-core machine, system is %dx%d",
			sockets, cps, s.cfg.Sockets, s.cfg.CoresPerSocket)
	}
	s.accesses = r.U64()
	for i := range s.cores {
		cc := &s.cores[i]
		cc.l1i.LoadState(r)
		cc.l1d.LoadState(r)
		cc.l2.LoadState(r)
		cc.stride.LoadState(r)
		cc.dcu.LoadState(r)
		hasStream := r.Bool()
		if r.Err() == nil && hasStream != (cc.streamI != nil) {
			return fmt.Errorf("cache: snapshot stream-prefetcher presence (%v) does not match configuration (%v)",
				hasStream, cc.streamI != nil)
		}
		if cc.streamI != nil {
			cc.streamI.LoadState(r)
		}
		s.ctrs[i].LoadState(r)
	}
	for _, llc := range s.llcs {
		llc.LoadState(r)
	}
	for _, m := range s.mems {
		m.LoadState(r)
	}
	return r.Err()
}
