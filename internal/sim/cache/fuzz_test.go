package cache

import (
	"testing"

	"cloudsuite/internal/sim/topo"
)

// FuzzCoherence replays arbitrary access/prefetch/write sequences over
// a one- to four-socket memory system of up to 64 cores with the
// coherence invariant checker armed after every access. Any sequence that drives the
// directory protocol into an incoherent state (stale sharers, retained
// write permission, duplicate Modified copies, ...) panics inside
// maybeCheck and fails the fuzz run.
//
// The seed corpus encodes the six dormant two-socket coherence bugs
// fixed in PR 2 — each seed is the minimal traffic pattern that
// triggered one of them — so the fuzzer starts from known-dangerous
// shapes and mutates outward. CI runs the target for a short fixed
// budget on every push.

// Fuzz op encoding: one topology byte — sockets in bits 0-1 (1-4),
// cores-per-socket selector in bits 2-3 ({2,4,8,16}), interconnect in
// bit 4 (mesh/ring) — then 4-byte ops [kind+mode, core, addrLo,
// addrHi]. The grid reaches 4x16 = 64 cores, crossing the old 32-core
// ceiling.
const (
	fopRead = iota
	fopWrite
	fopIFetch
	fopPrefL1
	fopPrefL2
	fopPrefInstr
	fopCount
)

var fuzzCPS = [4]int{2, 4, 8, 16}

// fuzzOps builds one encoded input for a sockets x cps grid from
// (kind, core, line) triples.
func fuzzOps(sockets, cps byte, ops ...[3]uint16) []byte {
	sel := byte(0)
	for i, v := range fuzzCPS {
		if int(cps) == v {
			sel = byte(i)
		}
	}
	data := []byte{(sockets - 1) | sel<<2}
	for _, op := range ops {
		data = append(data, byte(op[0]), byte(op[1]), byte(op[2]&0xFF), byte(op[2]>>8))
	}
	return data
}

func FuzzCoherence(f *testing.F) {
	// The six PR-2 bug patterns, cores 0-1 on socket 0 and 2-3 on
	// socket 1 (two-socket seeds). Line indices are arbitrary but
	// shared within a seed so the cross-socket traffic collides.
	const l = 7

	// 1. Remote instruction fill dropping the instruction flag.
	f.Add(fuzzOps(2, 2, [3]uint16{fopIFetch, 0, l}, [3]uint16{fopIFetch, 2, l}, [3]uint16{fopIFetch, 0, l}))
	// 2. Instruction/L1 prefetches not snooping the remote socket.
	f.Add(fuzzOps(2, 2, [3]uint16{fopWrite, 0, l}, [3]uint16{fopPrefInstr, 2, l}, [3]uint16{fopWrite, 0, l}))
	f.Add(fuzzOps(2, 2, [3]uint16{fopWrite, 0, l}, [3]uint16{fopPrefL1, 2, l}, [3]uint16{fopWrite, 0, l}))
	// 3. Remote read downgrading the owner but leaving its private
	//    copies with write permission.
	f.Add(fuzzOps(2, 2, [3]uint16{fopWrite, 0, l}, [3]uint16{fopRead, 2, l}, [3]uint16{fopWrite, 0, l}))
	// 4. L2 prefetch hitting a remote modified copy.
	f.Add(fuzzOps(2, 2, [3]uint16{fopWrite, 0, l}, [3]uint16{fopPrefL2, 2, l}, [3]uint16{fopRead, 2, l}))
	// 5. Local LLC write-hit not invalidating remote-socket copies.
	f.Add(fuzzOps(2, 2, [3]uint16{fopRead, 2, l}, [3]uint16{fopWrite, 0, l}, [3]uint16{fopRead, 2, l}))
	// 6. L2 dirty-victim absorption dropping ownership while the L1-D
	//    kept write permission: dirty a line, storm the same L2 sets to
	//    evict it, then store to it again (the store must re-claim
	//    through the directory).
	evict := [][3]uint16{{fopWrite, 0, l}}
	for i := uint16(0); i < 40; i++ {
		evict = append(evict, [3]uint16{fopRead, 0, l + 64*(i+1)})
	}
	evict = append(evict, [3]uint16{fopWrite, 0, l}, [3]uint16{fopRead, 2, l})
	f.Add(fuzzOps(2, 2, evict...))
	// Single-socket shape with SMT-style same-core traffic.
	f.Add(fuzzOps(1, 2, [3]uint16{fopWrite, 0, l}, [3]uint16{fopRead, 1, l}, [3]uint16{fopWrite, 1, l}))
	// Beyond the old 32-core ceiling: a 4x16 grid with write traffic on
	// high core ids (socket 2's core 40, socket 3's core 63) contending
	// with socket 0 — sharer bits the flat uint32 mask could not hold.
	f.Add(fuzzOps(4, 16,
		[3]uint16{fopWrite, 40, l}, [3]uint16{fopRead, 0, l}, [3]uint16{fopWrite, 63, l},
		[3]uint16{fopIFetch, 63, l + 1}, [3]uint16{fopPrefL2, 40, l + 1}, [3]uint16{fopWrite, 0, l}))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			t.Skip()
		}
		sockets := 1 + int(data[0]&3)
		cfg := testSystemConfig(sockets, fuzzCPS[(data[0]>>2)&3])
		if data[0]&0x10 != 0 {
			cfg.Interconnect = topo.Ring
		}
		s := NewSystem(cfg)
		s.EnableInvariantChecks(1)
		cores := s.Config().TotalCores()
		now := int64(0)
		for i := 1; i+4 <= len(data) && now < 4096; i += 4 {
			kind := int(data[i] % fopCount)
			kernel := data[i]&0x80 != 0
			core := int(data[i+1]) % cores
			// Fold the 16-bit line index onto a span larger than the
			// test LLC so sequences can force evictions, with the low
			// lines hot so they collide across cores and sockets.
			line := uint64(data[i+2]) | uint64(data[i+3])<<8
			line %= 4096
			addr := (0x4000 + line) << LineShift
			now++
			switch kind {
			case fopRead:
				s.AccessData(core, addr, false, kernel, now)
			case fopWrite:
				s.AccessData(core, addr, true, kernel, now)
			case fopIFetch:
				s.FetchInstr(core, addr, now, kernel)
			case fopPrefL1:
				s.prefetchL1(core, 0x4000+line, kernel, now)
			case fopPrefL2:
				s.prefetchL2(core, 0x4000+line, kernel, now)
			case fopPrefInstr:
				s.prefetchInstr(core, 0x4000+line, kernel, now)
			}
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("final state incoherent: %v", err)
		}
	})
}
