package cache

import (
	"math/rand"
	"testing"

	"cloudsuite/internal/sim/checkpoint"
)

// refSet is the trivially-correct reference model the sharerSet is
// property-tested against.
type refSet map[int]bool

func (r refSet) next(from int) int {
	for c := from; c < MaxCores; c++ {
		if r[c] {
			return c
		}
	}
	return -1
}

func (r refSet) only(core int) bool { return len(r) == 1 && r[core] }

// checkAgainstRef asserts every observable of s matches the reference
// model, probing all cores plus full iteration order.
func checkAgainstRef(t *testing.T, s sharerSet, ref refSet, step string) {
	t.Helper()
	if got, want := s.count(), len(ref); got != want {
		t.Fatalf("%s: count = %d, want %d", step, got, want)
	}
	if got, want := s.empty(), len(ref) == 0; got != want {
		t.Fatalf("%s: empty = %v, want %v", step, got, want)
	}
	for c := 0; c < MaxCores; c++ {
		if got, want := s.contains(c), ref[c]; got != want {
			t.Fatalf("%s: contains(%d) = %v, want %v", step, c, got, want)
		}
		if got, want := s.only(c), ref.only(c); got != want {
			t.Fatalf("%s: only(%d) = %v, want %v", step, c, got, want)
		}
	}
	// Iteration must visit exactly the members, ascending.
	want := ref.next(0)
	for got := s.next(0); ; got = s.next(got + 1) {
		if got != want {
			t.Fatalf("%s: iteration yields %d, want %d", step, got, want)
		}
		if got < 0 {
			break
		}
		want = ref.next(got + 1)
	}
}

// TestSharerSetMatchesReference drives random add/remove sequences
// through the sharerSet and a map-based reference in lockstep. Core ids
// are drawn to hammer the 64-bit word boundaries (63/64, 127/128, ...)
// that the old uint32 mask never had.
func TestSharerSetMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Half the draws land on word-boundary cores, half anywhere.
	boundary := []int{0, 1, 31, 32, 62, 63, 64, 65, 126, 127, 128, 129, 191, 192, 254, 255}
	draw := func() int {
		if rng.Intn(2) == 0 {
			return boundary[rng.Intn(len(boundary))]
		}
		return rng.Intn(MaxCores)
	}
	for trial := 0; trial < 50; trial++ {
		var s sharerSet
		ref := refSet{}
		for op := 0; op < 200; op++ {
			c := draw()
			switch rng.Intn(3) {
			case 0:
				s.add(c)
				ref[c] = true
			case 1:
				s.remove(c)
				delete(ref, c)
			case 2:
				s = onlySharer(c)
				ref = refSet{c: true}
			}
			checkAgainstRef(t, s, ref, "trial")
		}
		// Serialization round-trip preserves the set exactly.
		w := checkpoint.NewWriter()
		s.save(w)
		r := w.Snapshot("sharer-test").Reader()
		got := loadSharerSet(r)
		if err := r.Err(); err != nil {
			t.Fatalf("trial %d: load: %v", trial, err)
		}
		if got != s {
			t.Fatalf("trial %d: round-trip %+v != %+v", trial, got, s)
		}
	}
}

// TestSharerSetWordEdges pins the cross-word cases directly: the old
// 32-core ceiling (core 32+) and every 64-bit word edge up to MaxCores.
func TestSharerSetWordEdges(t *testing.T) {
	var s sharerSet
	edges := []int{0, 31, 32, 63, 64, 127, 128, 191, 192, 255}
	for _, c := range edges {
		s.add(c)
	}
	if s.count() != len(edges) {
		t.Fatalf("count = %d, want %d", s.count(), len(edges))
	}
	i := 0
	for c := s.next(0); c >= 0; c = s.next(c + 1) {
		if c != edges[i] {
			t.Fatalf("iteration[%d] = %d, want %d", i, c, edges[i])
		}
		i++
	}
	if i != len(edges) {
		t.Fatalf("iteration stopped after %d members, want %d", i, len(edges))
	}
	// Removing a high core must not disturb its word neighbours.
	s.remove(64)
	if s.contains(64) || !s.contains(63) || !s.contains(127) {
		t.Fatal("remove(64) disturbed neighbouring members")
	}
	if only := onlySharer(255); !only.only(255) || only.count() != 1 {
		t.Fatal("onlySharer(255) is not exactly {255}")
	}
	if onlySharer(MaxCores-1).next(0) != MaxCores-1 {
		t.Fatal("next missed the last representable core")
	}
}
