// Package tlb models the two-level TLB hierarchy of the Xeon X5670:
// small first-level instruction and data TLBs backed by a shared
// second-level TLB, with a fixed-cost page walk on a second-level miss.
// TLB-walk cycles feed the "Memory cycles" bar of Figure 1, following
// the paper's accounting (Section 3.1).
package tlb

import "cloudsuite/internal/sim/checkpoint"

// Config sizes one TLB.
type Config struct {
	Entries int
	Assoc   int
}

// Result classifies a translation.
type Result uint8

// Translation outcomes.
const (
	HitL1 Result = iota
	HitL2
	Walk
)

// TLB is a set-associative translation buffer with LRU replacement.
type TLB struct {
	sets    int //simlint:ok checkpointcov construction-time geometry, checked by LoadState instead of restored
	assoc   int //simlint:ok checkpointcov construction-time geometry, checked by LoadState instead of restored
	tags    []uint64
	stamps  []uint64
	tick    uint64
	setMask uint64 //simlint:ok checkpointcov derived from sets at construction
}

// New returns an empty TLB.
func New(cfg Config) *TLB {
	if cfg.Assoc <= 0 {
		cfg.Assoc = 4
	}
	if cfg.Entries < cfg.Assoc {
		cfg.Entries = cfg.Assoc
	}
	sets := cfg.Entries / cfg.Assoc
	// Round sets down to a power of two for cheap indexing.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	sets = p
	return &TLB{
		sets:    sets,
		assoc:   cfg.Assoc,
		tags:    make([]uint64, sets*cfg.Assoc),
		stamps:  make([]uint64, sets*cfg.Assoc),
		setMask: uint64(sets - 1),
	}
}

// Lookup probes the TLB for the page containing addr (page number =
// addr>>12) and inserts it on miss. It reports whether the probe hit.
func (t *TLB) Lookup(addr uint64) bool {
	page := addr >> 12
	set := int(page&t.setMask) * t.assoc
	t.tick++
	victim, oldest := set, t.stamps[set]
	for w := set; w < set+t.assoc; w++ {
		if t.tags[w] == page+1 { // +1 so a zero tag is never valid
			t.stamps[w] = t.tick
			return true
		}
		if t.stamps[w] < oldest {
			victim, oldest = w, t.stamps[w]
		}
	}
	t.tags[victim] = page + 1
	t.stamps[victim] = t.tick
	return false
}

// SaveState serializes the TLB's warm contents (tags, LRU stamps, and
// the LRU clock) into a checkpoint.
func (t *TLB) SaveState(w *checkpoint.Writer) {
	w.Tag("tlb")
	w.U64(t.tick)
	w.U64s(t.tags)
	w.U64s(t.stamps)
}

// LoadState restores state saved by SaveState into a TLB of identical
// geometry; a mismatch is reported through the reader.
func (t *TLB) LoadState(r *checkpoint.Reader) {
	r.Expect("tlb")
	t.tick = r.U64()
	r.U64s(t.tags)
	r.U64s(t.stamps)
}

// Hierarchy bundles the first-level I/D TLBs with the shared second
// level, mirroring the measured machine.
type Hierarchy struct {
	ITLB *TLB
	DTLB *TLB
	STLB *TLB
	// WalkCycles is the fixed page-walk cost on a second-level miss.
	WalkCycles int //simlint:ok checkpointcov construction-time latency configuration, identical for equal configs
	// L2Cycles is the added cost of a first-level miss that hits the STLB.
	L2Cycles int //simlint:ok checkpointcov construction-time latency configuration, identical for equal configs
}

// NewHierarchy returns a Westmere-like TLB hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{
		ITLB:       New(Config{Entries: 128, Assoc: 4}),
		DTLB:       New(Config{Entries: 64, Assoc: 4}),
		STLB:       New(Config{Entries: 512, Assoc: 4}),
		WalkCycles: 30,
		L2Cycles:   7,
	}
}

// SaveState serializes all three TLBs of the hierarchy.
func (h *Hierarchy) SaveState(w *checkpoint.Writer) {
	h.ITLB.SaveState(w)
	h.DTLB.SaveState(w)
	h.STLB.SaveState(w)
}

// LoadState restores all three TLBs of the hierarchy.
func (h *Hierarchy) LoadState(r *checkpoint.Reader) {
	h.ITLB.LoadState(r)
	h.DTLB.LoadState(r)
	h.STLB.LoadState(r)
}

// TranslateI translates an instruction fetch and returns the added
// latency in cycles together with the outcome class.
func (h *Hierarchy) TranslateI(pc uint64) (int, Result) {
	if h.ITLB.Lookup(pc) {
		return 0, HitL1
	}
	if h.STLB.Lookup(pc) {
		return h.L2Cycles, HitL2
	}
	return h.L2Cycles + h.WalkCycles, Walk
}

// TranslateD translates a data access and returns the added latency in
// cycles together with the outcome class.
func (h *Hierarchy) TranslateD(addr uint64) (int, Result) {
	if h.DTLB.Lookup(addr) {
		return 0, HitL1
	}
	if h.STLB.Lookup(addr) {
		return h.L2Cycles, HitL2
	}
	return h.L2Cycles + h.WalkCycles, Walk
}
