package tlb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLookupHitAfterInsert(t *testing.T) {
	tb := New(Config{Entries: 64, Assoc: 4})
	addr := uint64(0x1234_5000)
	if tb.Lookup(addr) {
		t.Fatal("cold TLB must miss")
	}
	if !tb.Lookup(addr) {
		t.Fatal("second lookup must hit")
	}
	if !tb.Lookup(addr + 4095) {
		t.Fatal("same page must hit")
	}
	if tb.Lookup(addr + 4096) {
		t.Fatal("next page must miss")
	}
}

func TestLRUWithinSet(t *testing.T) {
	tb := New(Config{Entries: 2, Assoc: 2}) // one set, two ways
	p := func(i uint64) uint64 { return i * 4096 }
	tb.Lookup(p(1))
	tb.Lookup(p(2))
	tb.Lookup(p(1)) // refresh 1
	tb.Lookup(p(3)) // evicts 2
	if !tb.Lookup(p(1)) {
		t.Fatal("page 1 should have survived")
	}
	if tb.Lookup(p(2)) {
		t.Fatal("page 2 should have been evicted")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy()
	addr := uint64(0x7700_0000)
	lat, res := h.TranslateD(addr)
	if res != Walk || lat != h.L2Cycles+h.WalkCycles {
		t.Fatalf("cold translate: res=%v lat=%d", res, lat)
	}
	lat, res = h.TranslateD(addr)
	if res != HitL1 || lat != 0 {
		t.Fatalf("warm translate: res=%v lat=%d", res, lat)
	}
	// Instruction side is independent of data side at L1...
	lat, res = h.TranslateI(addr)
	if res == HitL1 {
		t.Fatal("ITLB should not have the page yet")
	}
	// ...but shares the STLB, so this was only an L2 hit, not a walk.
	if lat != h.L2Cycles {
		t.Fatalf("ITLB miss that hits STLB: lat=%d want %d", lat, h.L2Cycles)
	}
}

// Property: a TLB with N entries never claims more than N distinct
// resident pages (checked by counting hits over a fixed probe set).
func TestQuickCapacityBound(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := New(Config{Entries: 16, Assoc: 4})
		// Touch random pages.
		for i := 0; i < 500; i++ {
			tb.Lookup(uint64(rng.Intn(64)) * 4096)
		}
		// Count residents: a hit on first probe means resident. Probing
		// changes state, so count hits over one pass of all pages.
		hits := 0
		for p := uint64(0); p < 64; p++ {
			set := int(p & tb.setMask)
			resident := false
			for w := set * tb.assoc; w < (set+1)*tb.assoc; w++ {
				if tb.tags[w] == p+1 {
					resident = true
				}
			}
			if resident {
				hits++
			}
		}
		return hits <= 16
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
