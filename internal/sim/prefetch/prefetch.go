// Package prefetch implements the three hardware prefetchers of the
// measured machine, named as in the processor documentation and BIOS
// (Section 3 of the paper):
//
//   - the adjacent-line prefetcher, which pairs every L2 miss with a
//     fetch of its 128-byte buddy line;
//   - the "HW prefetcher", a per-core stride/stream prefetcher at the L2
//     that detects ascending or descending line streams within a 4KB
//     page and runs ahead of them;
//   - the DCU streamer, an L1-D next-line prefetcher.
//
// Figure 5 of the paper toggles exactly these units.
package prefetch

import "cloudsuite/internal/sim/checkpoint"

// AdjacentLine returns the buddy line of lineAddr within its aligned
// 128-byte pair.
func AdjacentLine(lineAddr uint64) uint64 { return lineAddr ^ 1 }

// Stride is the per-core L2 stream prefetcher ("HW prefetcher").
// It tracks up to Streams independent 4KB-page streams; when a stream
// sees Confidence consecutive accesses advancing in one direction, the
// prefetcher issues requests Degree lines ahead of the demand stream.
type Stride struct {
	streams []stream
	clock   uint64
	out     []uint64 //simlint:ok checkpointcov per-access scratch output, drained before the access returns
	// Degree is how many lines ahead of a confirmed stream to prefetch.
	Degree int //simlint:ok checkpointcov construction-time configuration, identical for equal configs
	// Confidence is the number of same-direction advances required
	// before a stream starts prefetching.
	Confidence int //simlint:ok checkpointcov construction-time configuration, identical for equal configs
}

type stream struct {
	page    uint64
	lastOff int32 // last line offset within page (0..63)
	dir     int32 // +1 ascending, -1 descending, 0 unknown
	conf    int32
	used    uint64 // LRU clock
	valid   bool
}

// NewStride returns a stream prefetcher with Westmere-like parameters.
func NewStride(streams int) *Stride {
	if streams <= 0 {
		streams = 16
	}
	return &Stride{streams: make([]stream, streams), Degree: 2, Confidence: 2}
}

// SaveState serializes the detector's stream table and LRU clock.
// Degree and Confidence are configuration, not warm state, and are not
// saved.
func (s *Stride) SaveState(w *checkpoint.Writer) {
	w.Tag("stride")
	w.U64(s.clock)
	w.U32(uint32(len(s.streams)))
	for i := range s.streams {
		st := &s.streams[i]
		w.U64(st.page)
		w.U32(uint32(st.lastOff))
		w.U32(uint32(st.dir))
		w.U32(uint32(st.conf))
		w.U64(st.used)
		w.Bool(st.valid)
	}
}

// LoadState restores state saved by SaveState into a detector with the
// same stream count; a mismatch is reported through the reader.
func (s *Stride) LoadState(r *checkpoint.Reader) {
	r.Expect("stride")
	s.clock = r.U64()
	if n := int(r.U32()); r.Err() == nil && n != len(s.streams) {
		r.Failf("stride detector has %d streams, snapshot has %d", len(s.streams), n)
		return
	}
	for i := range s.streams {
		st := &s.streams[i]
		st.page = r.U64()
		st.lastOff = int32(r.U32())
		st.dir = int32(r.U32())
		st.conf = int32(r.U32())
		st.used = r.U64()
		st.valid = r.Bool()
	}
}

// Observe feeds one demand line access to the detector and returns the
// lines to prefetch (possibly none). The returned slice is valid until
// the next call.
func (s *Stride) Observe(lineAddr uint64) []uint64 {
	const linesPerPage = 4096 / 64
	page := lineAddr / linesPerPage
	off := int32(lineAddr % linesPerPage)
	s.clock++

	var st *stream
	victim := 0
	for i := range s.streams {
		if s.streams[i].valid && s.streams[i].page == page {
			st = &s.streams[i]
			break
		}
		if !s.streams[i].valid {
			victim = i
		} else if s.streams[victim].valid && s.streams[i].used < s.streams[victim].used {
			victim = i
		}
	}
	if st == nil {
		s.streams[victim] = stream{page: page, lastOff: off, used: s.clock, valid: true}
		return nil
	}
	st.used = s.clock
	delta := off - st.lastOff
	st.lastOff = off
	var dir int32
	switch {
	case delta > 0 && delta <= 4:
		dir = 1
	case delta < 0 && delta >= -4:
		dir = -1
	default:
		st.conf = 0
		st.dir = 0
		return nil
	}
	if dir == st.dir {
		if st.conf < 8 {
			st.conf++
		}
	} else {
		st.dir = dir
		st.conf = 1
	}
	if int(st.conf) < s.Confidence {
		return nil
	}
	out := s.out[:0]
	for i := 1; i <= s.Degree; i++ {
		t := off + dir*int32(i)
		if t < 0 || t >= linesPerPage {
			break
		}
		out = append(out, page*linesPerPage+uint64(t))
	}
	s.out = out
	return out
}

// DCU is the L1-D streamer: after two consecutive ascending line
// accesses it prefetches the next line into the L1-D.
type DCU struct {
	lastLine uint64
	runs     int
}

// SaveState serializes the streamer's run detector.
func (d *DCU) SaveState(w *checkpoint.Writer) {
	w.Tag("dcu")
	w.U64(d.lastLine)
	w.I64(int64(d.runs))
}

// LoadState restores state saved by SaveState.
func (d *DCU) LoadState(r *checkpoint.Reader) {
	r.Expect("dcu")
	d.lastLine = r.U64()
	d.runs = int(r.I64())
}

// Observe feeds one L1-D demand access and returns the line to prefetch,
// or 0 if none. Line address 0 is never a valid prefetch target because
// the simulated address space starts well above it.
func (d *DCU) Observe(lineAddr uint64) uint64 {
	if lineAddr == d.lastLine+1 {
		d.runs++
	} else {
		d.runs = 0
	}
	d.lastLine = lineAddr
	if d.runs >= 1 {
		return lineAddr + 1
	}
	return 0
}
