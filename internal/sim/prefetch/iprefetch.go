package prefetch

import "cloudsuite/internal/sim/checkpoint"

// Instruction prefetchers. The paper finds the next-line instruction
// prefetchers of modern cores ineffective for scale-out workloads
// (Section 4.1: "complex non-sequential access patterns that are not
// captured by simple next-line prefetchers") and calls for predictors
// of those patterns. Two models are provided:
//
//   - NextLineI: the conventional front-end prefetcher, fetching the
//     sequentially next line on an I-miss;
//   - StreamI: a temporal-stream instruction prefetcher in the spirit
//     of the proactive instruction fetch literature the paper points
//     toward: it records the miss sequence and, on a miss that starts
//     a previously seen stream, replays the next several lines.
//
// The machine configuration selects which (if either) is active,
// making the paper's "implications" a measurable experiment.

// NextLineI is the conventional sequential instruction prefetcher.
type NextLineI struct{}

// OnMiss returns the lines to prefetch after a demand miss on lineAddr.
func (NextLineI) OnMiss(lineAddr uint64) []uint64 {
	return []uint64{lineAddr + 1}
}

// StreamI is a temporal-stream instruction prefetcher: a history table
// maps a miss line to the sequence of lines that followed it last time.
type StreamI struct {
	// history maps a line to the lines that followed its last miss.
	next map[uint64][streamIDepth]uint64
	// order lists the keys of next in first-insertion order (order[head:]
	// are live); the bounded history evicts the oldest entry, a
	// deterministic FIFO. A hash-map victim would tie the prefetcher's
	// behaviour — and therefore measurement results and checkpoint
	// contents — to Go's randomized map iteration order.
	head    int
	order   []uint64
	recent  [streamIDepth + 1]uint64
	filled  int
	maxEnts int
}

const streamIDepth = 4

// NewStreamI returns a stream prefetcher bounded to maxEntries history
// entries (8K entries approximates a ~64KB on-chip history store).
func NewStreamI(maxEntries int) *StreamI {
	if maxEntries <= 0 {
		maxEntries = 8192
	}
	return &StreamI{next: make(map[uint64][streamIDepth]uint64, maxEntries), maxEnts: maxEntries}
}

// record installs head -> succ in the bounded history, evicting the
// oldest entry when full.
func (s *StreamI) record(head uint64, succ [streamIDepth]uint64) {
	if _, exists := s.next[head]; !exists {
		if len(s.next) >= s.maxEnts {
			victim := s.order[s.head]
			delete(s.next, victim)
			s.head++
			// Amortized compaction keeps the dead prefix bounded.
			if s.head > len(s.order)/2 {
				s.order = append(s.order[:0], s.order[s.head:]...)
				s.head = 0
			}
		}
		s.order = append(s.order, head)
	}
	s.next[head] = succ
}

// OnMiss records the miss and returns the replay lines for lineAddr's
// stream, if one is known.
func (s *StreamI) OnMiss(lineAddr uint64) []uint64 {
	// Record: the oldest line in the shift register gains a successor
	// list consisting of the lines that followed it.
	if s.filled == len(s.recent) {
		head := s.recent[0]
		var succ [streamIDepth]uint64
		copy(succ[:], s.recent[1:])
		s.record(head, succ)
		copy(s.recent[:], s.recent[1:])
		s.recent[len(s.recent)-1] = lineAddr
	} else {
		s.recent[s.filled] = lineAddr
		s.filled++
	}

	if succ, ok := s.next[lineAddr]; ok {
		out := make([]uint64, 0, streamIDepth)
		for _, l := range succ {
			if l != 0 {
				out = append(out, l)
			}
		}
		return out
	}
	return nil
}

// SaveState serializes the recorded miss streams. The history table is
// written in insertion order (the live suffix of order), which both
// yields a canonical byte encoding — the content hash of two identical
// warm states matches — and lets LoadState reconstruct the FIFO
// eviction order exactly.
func (s *StreamI) SaveState(w *checkpoint.Writer) {
	w.Tag("streami")
	w.I64(int64(s.filled))
	for _, v := range s.recent {
		w.U64(v)
	}
	live := s.order[s.head:]
	w.U32(uint32(len(live)))
	for _, k := range live {
		w.U64(k)
		succ := s.next[k]
		for _, v := range succ {
			w.U64(v)
		}
	}
}

// LoadState restores state saved by SaveState, rebuilding the history
// table and its eviction order.
func (s *StreamI) LoadState(r *checkpoint.Reader) {
	r.Expect("streami")
	s.filled = int(r.I64())
	for i := range s.recent {
		s.recent[i] = r.U64()
	}
	n := int(r.U32())
	if n > s.maxEnts {
		r.Failf("stream-prefetcher history has %d entries, table holds %d", n, s.maxEnts)
		return
	}
	s.head = 0
	s.order = make([]uint64, 0, n)
	s.next = make(map[uint64][streamIDepth]uint64, n)
	for i := 0; i < n; i++ {
		k := r.U64()
		var succ [streamIDepth]uint64
		for j := range succ {
			succ[j] = r.U64()
		}
		if r.Err() != nil {
			return
		}
		s.order = append(s.order, k)
		s.next[k] = succ
	}
}
