package prefetch

// Instruction prefetchers. The paper finds the next-line instruction
// prefetchers of modern cores ineffective for scale-out workloads
// (Section 4.1: "complex non-sequential access patterns that are not
// captured by simple next-line prefetchers") and calls for predictors
// of those patterns. Two models are provided:
//
//   - NextLineI: the conventional front-end prefetcher, fetching the
//     sequentially next line on an I-miss;
//   - StreamI: a temporal-stream instruction prefetcher in the spirit
//     of the proactive instruction fetch literature the paper points
//     toward: it records the miss sequence and, on a miss that starts
//     a previously seen stream, replays the next several lines.
//
// The machine configuration selects which (if either) is active,
// making the paper's "implications" a measurable experiment.

// NextLineI is the conventional sequential instruction prefetcher.
type NextLineI struct{}

// OnMiss returns the lines to prefetch after a demand miss on lineAddr.
func (NextLineI) OnMiss(lineAddr uint64) []uint64 {
	return []uint64{lineAddr + 1}
}

// StreamI is a temporal-stream instruction prefetcher: a history table
// maps a miss line to the sequence of lines that followed it last time.
type StreamI struct {
	// history maps a line to the lines that followed its last miss.
	next    map[uint64][streamIDepth]uint64
	recent  [streamIDepth + 1]uint64
	filled  int
	maxEnts int
}

const streamIDepth = 4

// NewStreamI returns a stream prefetcher bounded to maxEntries history
// entries (8K entries approximates a ~64KB on-chip history store).
func NewStreamI(maxEntries int) *StreamI {
	if maxEntries <= 0 {
		maxEntries = 8192
	}
	return &StreamI{next: make(map[uint64][streamIDepth]uint64, maxEntries), maxEnts: maxEntries}
}

// OnMiss records the miss and returns the replay lines for lineAddr's
// stream, if one is known.
func (s *StreamI) OnMiss(lineAddr uint64) []uint64 {
	// Record: the oldest line in the shift register gains a successor
	// list consisting of the lines that followed it.
	if s.filled == len(s.recent) {
		head := s.recent[0]
		var succ [streamIDepth]uint64
		copy(succ[:], s.recent[1:])
		if len(s.next) >= s.maxEnts {
			// Bounded history: drop an arbitrary entry (hash-map victim),
			// approximating a finite associative history table.
			for k := range s.next {
				delete(s.next, k)
				break
			}
		}
		s.next[head] = succ
		copy(s.recent[:], s.recent[1:])
		s.recent[len(s.recent)-1] = lineAddr
	} else {
		s.recent[s.filled] = lineAddr
		s.filled++
	}

	if succ, ok := s.next[lineAddr]; ok {
		out := make([]uint64, 0, streamIDepth)
		for _, l := range succ {
			if l != 0 {
				out = append(out, l)
			}
		}
		return out
	}
	return nil
}
