package prefetch

import (
	"testing"
	"testing/quick"
)

func TestAdjacentLine(t *testing.T) {
	if AdjacentLine(0) != 1 || AdjacentLine(1) != 0 {
		t.Fatal("buddy pairing broken for pair 0/1")
	}
	if AdjacentLine(100) != 101 || AdjacentLine(101) != 100 {
		t.Fatal("buddy pairing broken for pair 100/101")
	}
}

// Property: AdjacentLine is an involution that stays within the aligned
// 128-byte pair.
func TestQuickAdjacentInvolution(t *testing.T) {
	check := func(line uint64) bool {
		b := AdjacentLine(line)
		return AdjacentLine(b) == line && b/2 == line/2 && b != line
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStrideDetectsAscendingStream(t *testing.T) {
	s := NewStride(16)
	base := uint64(1000 * 64) // line 64000, page-aligned region
	var prefetched []uint64
	for i := uint64(0); i < 8; i++ {
		prefetched = append(prefetched, s.Observe(base+i)...)
	}
	if len(prefetched) == 0 {
		t.Fatal("ascending stream produced no prefetches")
	}
	for _, p := range prefetched {
		if p <= base {
			t.Fatalf("prefetch %d behind the stream", p)
		}
	}
}

func TestStrideDetectsDescendingStream(t *testing.T) {
	s := NewStride(16)
	base := uint64(64128) // mid-page
	var prefetched []uint64
	for i := uint64(0); i < 8; i++ {
		prefetched = append(prefetched, s.Observe(base-i)...)
	}
	if len(prefetched) == 0 {
		t.Fatal("descending stream produced no prefetches")
	}
	for _, p := range prefetched {
		if p >= base {
			t.Fatalf("descending prefetch %d ahead of the stream", p)
		}
	}
}

func TestStrideIgnoresLargeJumps(t *testing.T) {
	s := NewStride(16)
	base := uint64(128 * 1024)
	total := 0
	// Jumps of 5+ lines within the page must never train the stream.
	for i := uint64(0); i < 12; i++ {
		total += len(s.Observe(base + i*5))
	}
	if total != 0 {
		t.Fatalf("jumpy pattern triggered %d prefetches", total)
	}
}

func TestStrideTracksMultipleStreams(t *testing.T) {
	s := NewStride(4)
	pageA, pageB := uint64(0), uint64(10*64)
	got := 0
	for i := uint64(0); i < 6; i++ {
		got += len(s.Observe(pageA + i))
		got += len(s.Observe(pageB + i))
	}
	if got < 4 {
		t.Fatalf("interleaved streams under-prefetched: %d", got)
	}
}

func TestStrideStopsAtPageBoundary(t *testing.T) {
	s := NewStride(16)
	const linesPerPage = 64
	// Train right up to the end of a page.
	for i := uint64(linesPerPage - 6); i < linesPerPage; i++ {
		for _, p := range s.Observe(i) {
			if p/linesPerPage != i/linesPerPage {
				t.Fatalf("prefetch %d crossed the page boundary", p)
			}
		}
	}
}

func TestDCUNextLine(t *testing.T) {
	var d DCU
	if d.Observe(100) != 0 {
		t.Fatal("single access must not prefetch")
	}
	if got := d.Observe(101); got != 102 {
		t.Fatalf("ascending pair should prefetch 102, got %d", got)
	}
	if d.Observe(500) != 0 {
		t.Fatal("jump must reset the streamer")
	}
}

func TestNextLineI(t *testing.T) {
	var n NextLineI
	got := n.OnMiss(100)
	if len(got) != 1 || got[0] != 101 {
		t.Fatalf("OnMiss(100) = %v", got)
	}
}

func TestStreamIReplaysRecordedStream(t *testing.T) {
	s := NewStreamI(64)
	// Teach it a repeating miss sequence.
	seq := []uint64{10, 20, 30, 40, 50, 60, 70, 80}
	for pass := 0; pass < 3; pass++ {
		for _, l := range seq {
			s.OnMiss(l)
		}
	}
	// A miss on the stream head must replay the followers.
	got := s.OnMiss(10)
	if len(got) == 0 {
		t.Fatal("known stream produced no replay")
	}
	want := map[uint64]bool{20: true, 30: true, 40: true, 50: true}
	for _, l := range got {
		if !want[l] {
			t.Fatalf("replayed unexpected line %d (got %v)", l, got)
		}
	}
}

func TestStreamIUnknownMissSilent(t *testing.T) {
	s := NewStreamI(64)
	if got := s.OnMiss(999); len(got) != 0 {
		t.Fatalf("cold miss replayed %v", got)
	}
}

func TestStreamIBoundedHistory(t *testing.T) {
	s := NewStreamI(16)
	for l := uint64(0); l < 10000; l++ {
		s.OnMiss(l)
	}
	if len(s.next) > 16 {
		t.Fatalf("history grew to %d entries, bound is 16", len(s.next))
	}
}
