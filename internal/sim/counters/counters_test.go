package counters

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomCounters fills every uint64 field with small random values.
func randomCounters(seed int64) Counters {
	rng := rand.New(rand.NewSource(seed))
	var c Counters
	v := reflect.ValueOf(&c).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetUint(uint64(rng.Intn(1000) + 1))
	}
	return c
}

// Property: Add then Sub round-trips every field.
func TestQuickAddSubRoundTrip(t *testing.T) {
	check := func(seedA, seedB int64) bool {
		a := randomCounters(seedA)
		b := randomCounters(seedB)
		sum := a
		sum.Add(&b)
		back := sum.Sub(&b)
		// DRAMChannels is documented as a configuration value, not a
		// delta; align it before comparing.
		back.DRAMChannels = a.DRAMChannels
		return back == a
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestAddCoversEveryField catches fields added to the struct but
// forgotten in Add: adding a block to a zero block must reproduce it.
func TestAddCoversEveryField(t *testing.T) {
	a := randomCounters(42)
	var zero Counters
	zero.Add(&a)
	if zero != a {
		t.Fatal("Add does not cover every field of Counters")
	}
}

func TestDerivedMetrics(t *testing.T) {
	c := Counters{
		Cycles: 1000, CommitUser: 800, CommitOS: 200,
		MLPSum: 300, MLPCycles: 100,
		L1IMissUser: 50, L2IMissUser: 10,
		StallCyclesUser: 400, StallCyclesOS: 100,
		MemCycles: 600,
		L2Access:  100, L2Hit: 80,
		LLCAccess: 50, LLCHit: 25,
		SharedRWHitUser: 5, SharedRWHitOS: 10, LLCDataRefs: 100,
		Branches: 100, Mispredicts: 7,
		DRAMBusyCycles: 300, DRAMTotalCycles: 1000, DRAMChannels: 3,
	}
	if got := c.IPC(); got != 1.0 {
		t.Errorf("IPC = %f", got)
	}
	if got := c.UserIPC(); got != 0.8 {
		t.Errorf("UserIPC = %f", got)
	}
	if got := c.MLP(); got != 3.0 {
		t.Errorf("MLP = %f", got)
	}
	if got := c.StallFrac(); got != 0.5 {
		t.Errorf("StallFrac = %f", got)
	}
	if got := c.MemCycleFrac(); got != 0.6 {
		t.Errorf("MemCycleFrac = %f", got)
	}
	if got := c.L1IMPKIUser(); got != 50 {
		t.Errorf("L1IMPKIUser = %f", got)
	}
	if got := c.L2HitRatio(); got != 0.8 {
		t.Errorf("L2HitRatio = %f", got)
	}
	if got := c.LLCHitRatio(); got != 0.5 {
		t.Errorf("LLCHitRatio = %f", got)
	}
	if got := c.SharedRWFracUser(); got != 0.05 {
		t.Errorf("SharedRWFracUser = %f", got)
	}
	if got := c.SharedRWFracOS(); got != 0.10 {
		t.Errorf("SharedRWFracOS = %f", got)
	}
	if got := c.MispredictRate(); got != 0.07 {
		t.Errorf("MispredictRate = %f", got)
	}
	if got := c.DRAMUtilization(); got != 0.1 {
		t.Errorf("DRAMUtilization = %f", got)
	}
}

func TestZeroValueIsSafe(t *testing.T) {
	var c Counters
	// Every derived metric must handle zero denominators.
	_ = c.IPC()
	_ = c.UserIPC()
	_ = c.StallFrac()
	_ = c.MemCycleFrac()
	_ = c.L1IMPKIUser()
	_ = c.L2HitRatio()
	_ = c.LLCHitRatio()
	_ = c.SharedRWFracUser()
	_ = c.MispredictRate()
	_ = c.DRAMUtilization()
	_ = c.OSCycleShare()
	if c.MLP() != 1 {
		t.Errorf("MLP of a miss-free block should be 1, got %f", c.MLP())
	}
}

func TestOffchipBytes(t *testing.T) {
	c := Counters{OffchipReadUser: 100, OffchipReadOS: 50, OffchipWriteback: 25}
	if c.OffchipBytes() != 175 {
		t.Errorf("OffchipBytes = %d", c.OffchipBytes())
	}
}
