// Package counters is the performance-monitoring layer of the simulator:
// the stand-in for the hardware performance counters (read through VTune
// in the paper) that the entire characterization methodology is built on.
//
// Counters are plain uint64 fields grouped in a Counters block. The
// simulator increments them inline; experiments snapshot blocks before
// and after the measurement window and work with deltas, mirroring how
// counter multiplexing tools operate. Derived metrics (IPC, MPKI, hit
// ratios, MLP, bandwidth utilisation) are methods so every experiment
// computes them the same way.
package counters

import "cloudsuite/internal/sim/checkpoint"

// Counters is one block of raw event counts. All counts are cumulative.
// The zero value is ready to use.
type Counters struct {
	// Cycles is the number of elapsed core clock cycles.
	Cycles uint64

	// CommitUser / CommitOS count committed instructions by mode.
	CommitUser uint64
	CommitOS   uint64

	// CommitCyclesUser/OS count cycles in which at least one instruction
	// committed, attributed to the mode of the oldest committing
	// instruction. StallCyclesUser/OS count cycles with no commit,
	// attributed to the mode of the instruction blocking the window head.
	CommitCyclesUser uint64
	CommitCyclesOS   uint64
	StallCyclesUser  uint64
	StallCyclesOS    uint64

	// MemCycles approximates cycles when commit could not proceed due to
	// long-latency memory activity: at least one off-core data request
	// outstanding, instruction-fetch stalled past the L1-I, or a TLB walk
	// in progress. This mirrors the paper's "Memory" bar (Section 3.1).
	MemCycles uint64

	// Memory-level parallelism, measured as super-queue (L1-D miss)
	// occupancy: MLPSum accumulates the number of outstanding L1-D misses
	// over the cycles when at least one is outstanding (MLPCycles).
	MLPSum    uint64
	MLPCycles uint64

	// Front-end.
	FetchL1IAccessUser uint64
	FetchL1IAccessOS   uint64
	L1IMissUser        uint64
	L1IMissOS          uint64
	L2IMissUser        uint64
	L2IMissOS          uint64
	ITLBMiss           uint64
	FetchStallCycles   uint64

	// Branches.
	Branches    uint64
	Mispredicts uint64

	// Data side.
	L1DAccess uint64
	L1DMiss   uint64
	L2DAccess uint64
	L2DMiss   uint64
	DTLBMiss  uint64
	STLBMiss  uint64

	// L2 unified view (instruction + data demand accesses).
	L2Access uint64
	L2Hit    uint64

	// LLC.
	LLCAccess     uint64
	LLCHit        uint64
	LLCDataRefs   uint64
	LLCInstrRefs  uint64
	LLCMiss       uint64
	LLCHitUser    uint64
	LLCHitOS      uint64
	LLCMissUser   uint64
	LLCMissOS     uint64
	LLCDataRefsOS uint64

	// Coherence: LLC data references that were serviced from a line in
	// Modified state owned by a different core ("read-write shared hit").
	SharedRWHitUser uint64
	SharedRWHitOS   uint64
	// RemoteSocketHit counts the subset serviced from the other socket.
	RemoteSocketHit uint64

	// Off-chip traffic in bytes, split by requesting mode, plus
	// writebacks (not attributable to a mode at eviction time).
	OffchipReadUser  uint64
	OffchipReadOS    uint64
	OffchipWriteback uint64

	// Prefetchers.
	PrefIssued   uint64
	PrefUseful   uint64
	PrefEvicted  uint64
	PrefDemanded uint64

	// DRAM channel busy cycles (summed over channels and sockets) and
	// cycle span, maintained by the memory controllers for bandwidth
	// utilisation. DRAMChannels counts channels across all sockets.
	DRAMBusyCycles  uint64
	DRAMTotalCycles uint64
	DRAMChannels    uint64

	// NUMA: DRAM line reads serviced by the requesting core's own
	// socket's memory controller vs the other socket's (QPI hop).
	DRAMReadLocal  uint64
	DRAMReadRemote uint64
}

// SaveState serializes the counter block into a checkpoint. The block
// is encoded as one fixed-size struct, so adding a counter field
// changes the encoded size and stale snapshots fail to load instead of
// misattributing events (bump checkpoint.Version on such changes).
func (c *Counters) SaveState(w *checkpoint.Writer) {
	w.Tag("ctrs")
	w.Struct(c)
}

// LoadState restores a counter block saved by SaveState.
func (c *Counters) LoadState(r *checkpoint.Reader) {
	r.Expect("ctrs")
	r.Struct(c)
}

// Add accumulates other into c field-by-field.
func (c *Counters) Add(o *Counters) {
	c.Cycles += o.Cycles
	c.CommitUser += o.CommitUser
	c.CommitOS += o.CommitOS
	c.CommitCyclesUser += o.CommitCyclesUser
	c.CommitCyclesOS += o.CommitCyclesOS
	c.StallCyclesUser += o.StallCyclesUser
	c.StallCyclesOS += o.StallCyclesOS
	c.MemCycles += o.MemCycles
	c.MLPSum += o.MLPSum
	c.MLPCycles += o.MLPCycles
	c.FetchL1IAccessUser += o.FetchL1IAccessUser
	c.FetchL1IAccessOS += o.FetchL1IAccessOS
	c.L1IMissUser += o.L1IMissUser
	c.L1IMissOS += o.L1IMissOS
	c.L2IMissUser += o.L2IMissUser
	c.L2IMissOS += o.L2IMissOS
	c.ITLBMiss += o.ITLBMiss
	c.FetchStallCycles += o.FetchStallCycles
	c.Branches += o.Branches
	c.Mispredicts += o.Mispredicts
	c.L1DAccess += o.L1DAccess
	c.L1DMiss += o.L1DMiss
	c.L2DAccess += o.L2DAccess
	c.L2DMiss += o.L2DMiss
	c.DTLBMiss += o.DTLBMiss
	c.STLBMiss += o.STLBMiss
	c.L2Access += o.L2Access
	c.L2Hit += o.L2Hit
	c.LLCAccess += o.LLCAccess
	c.LLCHit += o.LLCHit
	c.LLCDataRefs += o.LLCDataRefs
	c.LLCInstrRefs += o.LLCInstrRefs
	c.LLCMiss += o.LLCMiss
	c.LLCHitUser += o.LLCHitUser
	c.LLCHitOS += o.LLCHitOS
	c.LLCMissUser += o.LLCMissUser
	c.LLCMissOS += o.LLCMissOS
	c.LLCDataRefsOS += o.LLCDataRefsOS
	c.SharedRWHitUser += o.SharedRWHitUser
	c.SharedRWHitOS += o.SharedRWHitOS
	c.RemoteSocketHit += o.RemoteSocketHit
	c.OffchipReadUser += o.OffchipReadUser
	c.OffchipReadOS += o.OffchipReadOS
	c.OffchipWriteback += o.OffchipWriteback
	c.PrefIssued += o.PrefIssued
	c.PrefUseful += o.PrefUseful
	c.PrefEvicted += o.PrefEvicted
	c.PrefDemanded += o.PrefDemanded
	c.DRAMBusyCycles += o.DRAMBusyCycles
	c.DRAMTotalCycles += o.DRAMTotalCycles
	c.DRAMChannels += o.DRAMChannels
	c.DRAMReadLocal += o.DRAMReadLocal
	c.DRAMReadRemote += o.DRAMReadRemote
}

// Sub returns c - o field-by-field (the measurement-window delta).
func (c Counters) Sub(o *Counters) Counters {
	d := c
	d.Cycles -= o.Cycles
	d.CommitUser -= o.CommitUser
	d.CommitOS -= o.CommitOS
	d.CommitCyclesUser -= o.CommitCyclesUser
	d.CommitCyclesOS -= o.CommitCyclesOS
	d.StallCyclesUser -= o.StallCyclesUser
	d.StallCyclesOS -= o.StallCyclesOS
	d.MemCycles -= o.MemCycles
	d.MLPSum -= o.MLPSum
	d.MLPCycles -= o.MLPCycles
	d.FetchL1IAccessUser -= o.FetchL1IAccessUser
	d.FetchL1IAccessOS -= o.FetchL1IAccessOS
	d.L1IMissUser -= o.L1IMissUser
	d.L1IMissOS -= o.L1IMissOS
	d.L2IMissUser -= o.L2IMissUser
	d.L2IMissOS -= o.L2IMissOS
	d.ITLBMiss -= o.ITLBMiss
	d.FetchStallCycles -= o.FetchStallCycles
	d.Branches -= o.Branches
	d.Mispredicts -= o.Mispredicts
	d.L1DAccess -= o.L1DAccess
	d.L1DMiss -= o.L1DMiss
	d.L2DAccess -= o.L2DAccess
	d.L2DMiss -= o.L2DMiss
	d.DTLBMiss -= o.DTLBMiss
	d.STLBMiss -= o.STLBMiss
	d.L2Access -= o.L2Access
	d.L2Hit -= o.L2Hit
	d.LLCAccess -= o.LLCAccess
	d.LLCHit -= o.LLCHit
	d.LLCDataRefs -= o.LLCDataRefs
	d.LLCInstrRefs -= o.LLCInstrRefs
	d.LLCMiss -= o.LLCMiss
	d.LLCHitUser -= o.LLCHitUser
	d.LLCHitOS -= o.LLCHitOS
	d.LLCMissUser -= o.LLCMissUser
	d.LLCMissOS -= o.LLCMissOS
	d.LLCDataRefsOS -= o.LLCDataRefsOS
	d.SharedRWHitUser -= o.SharedRWHitUser
	d.SharedRWHitOS -= o.SharedRWHitOS
	d.RemoteSocketHit -= o.RemoteSocketHit
	d.OffchipReadUser -= o.OffchipReadUser
	d.OffchipReadOS -= o.OffchipReadOS
	d.OffchipWriteback -= o.OffchipWriteback
	d.PrefIssued -= o.PrefIssued
	d.PrefUseful -= o.PrefUseful
	d.PrefEvicted -= o.PrefEvicted
	d.PrefDemanded -= o.PrefDemanded
	d.DRAMBusyCycles -= o.DRAMBusyCycles
	d.DRAMTotalCycles -= o.DRAMTotalCycles
	// DRAMChannels is a configuration constant, not a delta.
	d.DRAMChannels = c.DRAMChannels
	d.DRAMReadLocal -= o.DRAMReadLocal
	d.DRAMReadRemote -= o.DRAMReadRemote
	return d
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Commits returns total committed instructions.
func (c *Counters) Commits() uint64 { return c.CommitUser + c.CommitOS }

// IPC returns committed instructions per cycle (all modes).
func (c *Counters) IPC() float64 { return ratio(c.Commits(), c.Cycles) }

// UserIPC returns user-mode instructions per cycle, the paper's
// throughput proxy for Figure 4.
func (c *Counters) UserIPC() float64 { return ratio(c.CommitUser, c.Cycles) }

// MLP returns the average number of outstanding L1-D misses over cycles
// with at least one outstanding (Figure 3, right). A workload that never
// misses has MLP 1 by convention (a single access at a time).
func (c *Counters) MLP() float64 {
	if c.MLPCycles == 0 {
		return 1
	}
	return ratio(c.MLPSum, c.MLPCycles)
}

// StallFrac returns the fraction of cycles with no commit.
func (c *Counters) StallFrac() float64 {
	return ratio(c.StallCyclesUser+c.StallCyclesOS, c.Cycles)
}

// MemCycleFrac returns the fraction of cycles covered by the Memory bar.
func (c *Counters) MemCycleFrac() float64 { return ratio(c.MemCycles, c.Cycles) }

// L1IMPKIUser returns user L1-I misses per kilo-instruction.
func (c *Counters) L1IMPKIUser() float64 {
	return 1000 * ratio(c.L1IMissUser, c.Commits())
}

// L1IMPKIOS returns OS L1-I misses per kilo-instruction.
func (c *Counters) L1IMPKIOS() float64 {
	return 1000 * ratio(c.L1IMissOS, c.Commits())
}

// L2IMPKIUser returns user L2 instruction misses per kilo-instruction.
func (c *Counters) L2IMPKIUser() float64 {
	return 1000 * ratio(c.L2IMissUser, c.Commits())
}

// L2IMPKIOS returns OS L2 instruction misses per kilo-instruction.
func (c *Counters) L2IMPKIOS() float64 {
	return 1000 * ratio(c.L2IMissOS, c.Commits())
}

// L2HitRatio returns demand hits over demand accesses at the L2.
func (c *Counters) L2HitRatio() float64 { return ratio(c.L2Hit, c.L2Access) }

// LLCHitRatio returns demand hits over accesses at the LLC.
func (c *Counters) LLCHitRatio() float64 { return ratio(c.LLCHit, c.LLCAccess) }

// SharedRWFracUser returns application read-write shared hits normalized
// to LLC data references (Figure 6).
func (c *Counters) SharedRWFracUser() float64 {
	return ratio(c.SharedRWHitUser, c.LLCDataRefs)
}

// SharedRWFracOS returns OS read-write shared hits normalized to LLC
// data references (Figure 6).
func (c *Counters) SharedRWFracOS() float64 {
	return ratio(c.SharedRWHitOS, c.LLCDataRefs)
}

// MispredictRate returns mispredicted branches over all branches.
func (c *Counters) MispredictRate() float64 { return ratio(c.Mispredicts, c.Branches) }

// DRAMUtilization returns busy-cycle share across all channels
// (Figure 7).
func (c *Counters) DRAMUtilization() float64 {
	if c.DRAMTotalCycles == 0 || c.DRAMChannels == 0 {
		return 0
	}
	return float64(c.DRAMBusyCycles) / (float64(c.DRAMTotalCycles) * float64(c.DRAMChannels))
}

// RemoteDRAMFrac returns the share of DRAM line reads serviced by a
// remote socket's memory controller (NUMA traffic crossing QPI).
func (c *Counters) RemoteDRAMFrac() float64 {
	return ratio(c.DRAMReadRemote, c.DRAMReadLocal+c.DRAMReadRemote)
}

// OffchipBytes returns total off-chip traffic in bytes.
func (c *Counters) OffchipBytes() uint64 {
	return c.OffchipReadUser + c.OffchipReadOS + c.OffchipWriteback
}

// OSCycleShare returns the fraction of attributed cycles spent in OS
// mode (committing or stalled on OS instructions).
func (c *Counters) OSCycleShare() float64 {
	return ratio(c.CommitCyclesOS+c.StallCyclesOS, c.Cycles)
}
