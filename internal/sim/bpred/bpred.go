// Package bpred models the branch direction predictor of an aggressive
// out-of-order core: a gshare direction predictor with a branch target
// buffer and a return-address stack is a reasonable stand-in for the
// Nehalem/Westmere-class front-end of the Xeon X5670.
package bpred

// Config sizes the predictor.
type Config struct {
	// GshareBits is log2 of the pattern history table size.
	GshareBits uint
	// BTBEntries is the number of direct-mapped BTB entries.
	BTBEntries int
	// HistoryBits is the global history length.
	HistoryBits uint
}

// DefaultConfig approximates a Westmere-class predictor.
func DefaultConfig() Config {
	return Config{GshareBits: 16, BTBEntries: 4096, HistoryBits: 14}
}

// Predictor is a gshare + BTB branch predictor. It is not safe for
// concurrent use; each hardware context owns one.
type Predictor struct {
	cfg     Config
	pht     []uint8 // 2-bit saturating counters
	phtMask uint64
	history uint64
	histMsk uint64
	btbTag  []uint64
	btbTgt  []uint64
	btbMask uint64
}

// New returns a predictor with all counters weakly not-taken.
func New(cfg Config) *Predictor {
	if cfg.GshareBits == 0 {
		cfg = DefaultConfig()
	}
	n := 1 << cfg.GshareBits
	b := nextPow2(cfg.BTBEntries)
	p := &Predictor{
		cfg:     cfg,
		pht:     make([]uint8, n),
		phtMask: uint64(n - 1),
		histMsk: (1 << cfg.HistoryBits) - 1,
		btbTag:  make([]uint64, b),
		btbTgt:  make([]uint64, b),
		btbMask: uint64(b - 1),
	}
	for i := range p.pht {
		p.pht[i] = 1 // weakly not-taken
	}
	return p
}

func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func (p *Predictor) index(pc uint64) uint64 {
	return ((pc >> 2) ^ p.history) & p.phtMask
}

// Lookup predicts the direction and target for the branch at pc.
// A predicted-taken branch with a BTB miss counts as a misprediction in
// Predict, because the front-end cannot redirect without a target.
func (p *Predictor) Lookup(pc uint64) (taken bool, target uint64, targetValid bool) {
	ctr := p.pht[p.index(pc)]
	taken = ctr >= 2
	slot := (pc >> 2) & p.btbMask
	if p.btbTag[slot] == pc {
		return taken, p.btbTgt[slot], true
	}
	return taken, 0, false
}

// Predict runs a full predict-and-train step for a resolved branch and
// reports whether the front-end would have mispredicted it.
func (p *Predictor) Predict(pc uint64, taken bool, target uint64) (mispredict bool) {
	predTaken, predTarget, tgtValid := p.Lookup(pc)
	mispredict = predTaken != taken || (taken && (!tgtValid || predTarget != target))
	p.Update(pc, taken, target)
	return mispredict
}

// Update trains the predictor with the resolved outcome.
func (p *Predictor) Update(pc uint64, taken bool, target uint64) {
	idx := p.index(pc)
	ctr := p.pht[idx]
	if taken {
		if ctr < 3 {
			p.pht[idx] = ctr + 1
		}
	} else if ctr > 0 {
		p.pht[idx] = ctr - 1
	}
	p.history = ((p.history << 1) | b2u(taken)) & p.histMsk
	if taken {
		slot := (pc >> 2) & p.btbMask
		p.btbTag[slot] = pc
		p.btbTgt[slot] = target
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
