// Package bpred models the branch direction predictor of an aggressive
// out-of-order core: a gshare direction predictor with a branch target
// buffer and a return-address stack is a reasonable stand-in for the
// Nehalem/Westmere-class front-end of the Xeon X5670.
package bpred

import "cloudsuite/internal/sim/checkpoint"

// Config sizes the predictor.
type Config struct {
	// GshareBits is log2 of the pattern history table size.
	GshareBits uint
	// BTBEntries is the number of direct-mapped BTB entries.
	BTBEntries int
	// HistoryBits is the global history length.
	HistoryBits uint
}

// DefaultConfig approximates a Westmere-class predictor.
func DefaultConfig() Config {
	return Config{GshareBits: 16, BTBEntries: 4096, HistoryBits: 14}
}

// Predictor is a gshare + BTB branch predictor. It is not safe for
// concurrent use; each hardware context owns one.
type Predictor struct {
	cfg     Config  //simlint:ok checkpointcov construction-time configuration; LoadState geometry-checks table sizes instead of restoring it
	pht     []uint8 // 2-bit saturating counters
	phtMask uint64  //simlint:ok checkpointcov derived from cfg.GshareBits at construction
	history uint64
	histMsk uint64 //simlint:ok checkpointcov derived from cfg.HistoryBits at construction
	btbTag  []uint64
	btbTgt  []uint64
	btbMask uint64 //simlint:ok checkpointcov derived from cfg.BTBEntries at construction
}

// New returns a predictor with all counters weakly not-taken.
func New(cfg Config) *Predictor {
	if cfg.GshareBits == 0 {
		cfg = DefaultConfig()
	}
	n := 1 << cfg.GshareBits
	b := nextPow2(cfg.BTBEntries)
	p := &Predictor{
		cfg:     cfg,
		pht:     make([]uint8, n),
		phtMask: uint64(n - 1),
		histMsk: (1 << cfg.HistoryBits) - 1,
		btbTag:  make([]uint64, b),
		btbTgt:  make([]uint64, b),
		btbMask: uint64(b - 1),
	}
	for i := range p.pht {
		p.pht[i] = 1 // weakly not-taken
	}
	return p
}

func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// SaveState serializes the predictor's trained state: pattern history
// table, global history register, and BTB contents. Both tables are
// sparse-encoded against their reset values (PHT counters at weakly
// not-taken, BTB slots empty): warming trains a small fraction of the
// 64K-entry PHT, and dense tables would dominate snapshot size.
func (p *Predictor) SaveState(w *checkpoint.Writer) {
	w.Tag("bpred")
	w.U64(p.history)
	w.U32(uint32(len(p.pht)))
	trained := uint32(0)
	for _, v := range p.pht {
		if v != 1 {
			trained++
		}
	}
	w.U32(trained)
	for i, v := range p.pht {
		if v != 1 {
			w.U32(uint32(i))
			w.U8(v)
		}
	}
	w.U32(uint32(len(p.btbTag)))
	filled := uint32(0)
	for _, t := range p.btbTag {
		if t != 0 {
			filled++
		}
	}
	w.U32(filled)
	for i, t := range p.btbTag {
		if t != 0 {
			w.U32(uint32(i))
			w.U64(t)
			w.U64(p.btbTgt[i])
		}
	}
}

// LoadState restores state saved by SaveState into a predictor of
// identical configuration; a mismatch is reported through the reader.
func (p *Predictor) LoadState(r *checkpoint.Reader) {
	r.Expect("bpred")
	p.history = r.U64()
	if n := int(r.U32()); r.Err() == nil && n != len(p.pht) {
		r.Failf("bpred PHT size mismatch: snapshot has %d entries, predictor has %d", n, len(p.pht))
		return
	}
	for i := range p.pht {
		p.pht[i] = 1
	}
	trained := int(r.U32())
	for k := 0; k < trained; k++ {
		i := int(r.U32())
		if r.Err() != nil {
			return
		}
		if i >= len(p.pht) {
			r.Failf("bpred PHT index %d out of range (%d entries)", i, len(p.pht))
			return
		}
		p.pht[i] = r.U8()
	}
	if n := int(r.U32()); r.Err() == nil && n != len(p.btbTag) {
		r.Failf("bpred BTB size mismatch: snapshot has %d entries, predictor has %d", n, len(p.btbTag))
		return
	}
	for i := range p.btbTag {
		p.btbTag[i] = 0
		p.btbTgt[i] = 0
	}
	filled := int(r.U32())
	for k := 0; k < filled; k++ {
		i := int(r.U32())
		if r.Err() != nil {
			return
		}
		if i >= len(p.btbTag) {
			r.Failf("bpred BTB index %d out of range (%d entries)", i, len(p.btbTag))
			return
		}
		p.btbTag[i] = r.U64()
		p.btbTgt[i] = r.U64()
	}
}

func (p *Predictor) index(pc uint64) uint64 {
	return ((pc >> 2) ^ p.history) & p.phtMask
}

// Lookup predicts the direction and target for the branch at pc.
// A predicted-taken branch with a BTB miss counts as a misprediction in
// Predict, because the front-end cannot redirect without a target.
func (p *Predictor) Lookup(pc uint64) (taken bool, target uint64, targetValid bool) {
	ctr := p.pht[p.index(pc)]
	taken = ctr >= 2
	slot := (pc >> 2) & p.btbMask
	if p.btbTag[slot] == pc {
		return taken, p.btbTgt[slot], true
	}
	return taken, 0, false
}

// Predict runs a full predict-and-train step for a resolved branch and
// reports whether the front-end would have mispredicted it.
func (p *Predictor) Predict(pc uint64, taken bool, target uint64) (mispredict bool) {
	predTaken, predTarget, tgtValid := p.Lookup(pc)
	mispredict = predTaken != taken || (taken && (!tgtValid || predTarget != target))
	p.Update(pc, taken, target)
	return mispredict
}

// Update trains the predictor with the resolved outcome.
func (p *Predictor) Update(pc uint64, taken bool, target uint64) {
	idx := p.index(pc)
	ctr := p.pht[idx]
	if taken {
		if ctr < 3 {
			p.pht[idx] = ctr + 1
		}
	} else if ctr > 0 {
		p.pht[idx] = ctr - 1
	}
	p.history = ((p.history << 1) | b2u(taken)) & p.histMsk
	if taken {
		slot := (pc >> 2) & p.btbMask
		p.btbTag[slot] = pc
		p.btbTgt[slot] = target
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
