package bpred

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLearnsBiasedBranch(t *testing.T) {
	p := New(DefaultConfig())
	pc, tgt := uint64(0x400100), uint64(0x400200)
	miss := 0
	for i := 0; i < 1000; i++ {
		if p.Predict(pc, true, tgt) {
			miss++
		}
	}
	// Allow for history warm-up (~history length + counter training).
	if miss > 20 {
		t.Fatalf("always-taken branch mispredicted %d/1000 times", miss)
	}
}

func TestLearnsAlternatingPattern(t *testing.T) {
	p := New(DefaultConfig())
	pc, tgt := uint64(0x400100), uint64(0x400200)
	miss := 0
	for i := 0; i < 2000; i++ {
		if p.Predict(pc, i%2 == 0, tgt) {
			miss++
		}
	}
	// Global history makes a strict alternation learnable.
	if frac := float64(miss) / 2000; frac > 0.2 {
		t.Fatalf("alternating branch mispredict rate %.2f, want < 0.2", frac)
	}
}

func TestRandomBranchMispredictsOften(t *testing.T) {
	p := New(DefaultConfig())
	rng := rand.New(rand.NewSource(7))
	pc, tgt := uint64(0x400100), uint64(0x400200)
	miss := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if p.Predict(pc, rng.Intn(2) == 0, tgt) {
			miss++
		}
	}
	frac := float64(miss) / n
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("random branch mispredict rate %.2f, want ~0.5", frac)
	}
}

func TestBTBMissOnNewTakenBranch(t *testing.T) {
	p := New(DefaultConfig())
	// Warm the direction predictor toward taken at this index without
	// populating the BTB slot for the probe PC.
	pc := uint64(0x400100)
	p.Update(pc, true, 0x400200)
	p.Update(pc, true, 0x400200)
	probe := pc + uint64(p.btbMask+1)*4 // same BTB slot, different tag
	_, _, valid := p.Lookup(probe)
	if valid {
		t.Fatal("BTB should miss for a PC it never saw taken")
	}
}

// Property: predictor state stays bounded (counters within [0,3]).
func TestQuickCounterBounds(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New(Config{GshareBits: 8, BTBEntries: 64, HistoryBits: 8})
		for i := 0; i < 5000; i++ {
			pc := uint64(rng.Intn(512)) * 4
			p.Predict(pc, rng.Intn(2) == 0, pc+64)
		}
		for _, c := range p.pht {
			if c > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
