package core

import (
	"fmt"
)

// This file implements the paper's evaluation: one driver per figure.
// Each driver runs the required configurations and returns plain row
// structs that the report package renders and the benchmark harness
// prints. DESIGN.md section 3 maps each driver to its figure.

// BreakdownRow is one bar of Figure 1: the commit-time execution
// breakdown plus the overlapped memory-cycles bar.
type BreakdownRow struct {
	Label string
	// Fractions of total cycles.
	CommittingUser float64
	CommittingOS   float64
	StalledUser    float64
	StalledOS      float64
	// Memory is plotted side-by-side (it overlaps commit cycles).
	Memory float64
}

// Figure1 measures the execution-time breakdown of the given entries.
func Figure1(entries []Entry, o Options) ([]BreakdownRow, error) {
	rows := make([]BreakdownRow, 0, len(entries))
	for _, e := range entries {
		r, err := MeasureEntry(e, o)
		if err != nil {
			return nil, err
		}
		cu, _, _ := r.Stat(func(m *Measurement) float64 {
			return float64(m.CommitCyclesUser) / float64(m.Cycles)
		})
		co, _, _ := r.Stat(func(m *Measurement) float64 {
			return float64(m.CommitCyclesOS) / float64(m.Cycles)
		})
		su, _, _ := r.Stat(func(m *Measurement) float64 {
			return float64(m.StallCyclesUser) / float64(m.Cycles)
		})
		so, _, _ := r.Stat(func(m *Measurement) float64 {
			return float64(m.StallCyclesOS) / float64(m.Cycles)
		})
		mem, _, _ := r.Stat(func(m *Measurement) float64 { return m.MemCycleFrac() })
		rows = append(rows, BreakdownRow{
			Label: e.Label, CommittingUser: cu, CommittingOS: co,
			StalledUser: su, StalledOS: so, Memory: mem,
		})
	}
	return rows, nil
}

// InstrMissRow is one bar group of Figure 2: L1-I and L2 instruction
// misses per kilo-instruction, split into application and OS.
type InstrMissRow struct {
	Label  string
	L1IApp float64
	L1IOS  float64
	L2IApp float64
	L2IOS  float64
	ShowOS bool
}

// Figure2 measures instruction-cache miss rates.
func Figure2(entries []Entry, o Options) ([]InstrMissRow, error) {
	rows := make([]InstrMissRow, 0, len(entries))
	for _, e := range entries {
		r, err := MeasureEntry(e, o)
		if err != nil {
			return nil, err
		}
		l1a, _, _ := r.Stat(func(m *Measurement) float64 { return m.L1IMPKIUser() })
		l1o, _, _ := r.Stat(func(m *Measurement) float64 { return m.L1IMPKIOS() })
		l2a, _, _ := r.Stat(func(m *Measurement) float64 { return m.L2IMPKIUser() })
		l2o, _, _ := r.Stat(func(m *Measurement) float64 { return m.L2IMPKIOS() })
		rows = append(rows, InstrMissRow{
			Label: e.Label, L1IApp: l1a, L1IOS: l1o, L2IApp: l2a, L2IOS: l2o,
			ShowOS: e.ShowOS,
		})
	}
	return rows, nil
}

// IPCMLPRow is one bar group of Figure 3: IPC and MLP with and without
// SMT, with min/max range over group members.
type IPCMLPRow struct {
	Label                  string
	IPCBase, IPCSMT        float64
	IPCLo, IPCHi           float64
	MLPBase, MLPSMT        float64
	MLPLo, MLPHi           float64
	SMTSpeedup             float64
	MLPGainFromSMT         float64
	MembersCounted         int
	BaseCyclesPerInstr4Wid float64
}

// Figure3 measures IPC and MLP for baseline and SMT configurations.
func Figure3(entries []Entry, o Options) ([]IPCMLPRow, error) {
	rows := make([]IPCMLPRow, 0, len(entries))
	for _, e := range entries {
		base, err := MeasureEntry(e, o)
		if err != nil {
			return nil, err
		}
		oSMT := o
		oSMT.SMT = true
		smt, err := MeasureEntry(e, oSMT)
		if err != nil {
			return nil, err
		}
		ipc, ipcLo, ipcHi := base.Stat(func(m *Measurement) float64 { return m.IPC() })
		mlp, mlpLo, mlpHi := base.Stat(func(m *Measurement) float64 { return m.MLP() })
		ipcS, _, _ := smt.Stat(func(m *Measurement) float64 { return m.IPC() })
		mlpS, _, _ := smt.Stat(func(m *Measurement) float64 { return m.MLP() })
		row := IPCMLPRow{
			Label:   e.Label,
			IPCBase: ipc, IPCSMT: ipcS, IPCLo: ipcLo, IPCHi: ipcHi,
			MLPBase: mlp, MLPSMT: mlpS, MLPLo: mlpLo, MLPHi: mlpHi,
			MembersCounted: len(e.Members),
		}
		if ipc > 0 {
			row.SMTSpeedup = ipcS / ipc
		}
		if mlp > 0 {
			row.MLPGainFromSMT = mlpS / mlp
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// LLCPoint is one point of Figure 4: user-IPC at an effective LLC
// capacity, normalized to the full-capacity baseline.
type LLCPoint struct {
	CacheMB    int
	Normalized float64
}

// LLCSeries is one curve of Figure 4.
type LLCSeries struct {
	Label  string
	Points []LLCPoint
}

// Figure4 sweeps effective LLC capacity using cache-polluting threads
// (Section 3.1's methodology) and reports user-IPC normalized to the
// unpolluted baseline for each entry group.
func Figure4(groups map[string][]Entry, capacitiesMB []int, o Options) ([]LLCSeries, error) {
	llcMB := XeonX5670().Mem.LLC.SizeBytes >> 20
	var out []LLCSeries
	for label, entries := range groups {
		series := LLCSeries{Label: label}
		// Baseline at full capacity (no polluters).
		baseline, err := averageUserIPC(entries, o)
		if err != nil {
			return nil, err
		}
		for _, mb := range capacitiesMB {
			opt := o
			if mb < llcMB {
				opt.PolluteBytes = uint64(llcMB-mb) << 20
			}
			v, err := averageUserIPC(entries, opt)
			if err != nil {
				return nil, err
			}
			norm := 0.0
			if baseline > 0 {
				norm = v / baseline
			}
			series.Points = append(series.Points, LLCPoint{CacheMB: mb, Normalized: norm})
		}
		out = append(out, series)
	}
	return out, nil
}

func averageUserIPC(entries []Entry, o Options) (float64, error) {
	var sum float64
	var n int
	for _, e := range entries {
		r, err := MeasureEntry(e, o)
		if err != nil {
			return 0, err
		}
		v, _, _ := r.Stat(func(m *Measurement) float64 { return m.UserIPC() })
		sum += v
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("core: empty entry group")
	}
	return sum / float64(n), nil
}

// Figure4Groups returns the paper's three curves: the scale-out
// average, the traditional server average, and SPECint mcf.
func Figure4Groups() map[string][]Entry {
	all := FigureEntries()
	groups := map[string][]Entry{
		"Scale-out": all[:6],
	}
	var server []Entry
	for _, e := range all {
		switch e.Label {
		case "SPECweb09", "TPC-C", "TPC-E", "Web Backend":
			server = append(server, e)
		}
	}
	groups["Server"] = server
	mcf, ok := FindBench("SPECint (mcf)")
	if !ok {
		panic("core: mcf bench missing")
	}
	groups["SPECint (mcf)"] = []Entry{{Label: "SPECint (mcf)", Members: []Bench{mcf}}}
	return groups
}

// PrefetchRow is one bar group of Figure 5: L2 hit ratios with all
// prefetchers on, with the adjacent-line prefetcher disabled, and with
// the HW (stride) prefetcher disabled.
type PrefetchRow struct {
	Label            string
	Baseline         float64
	AdjacentDisabled float64
	HWDisabled       float64
}

// Figure5 measures L2 hit-ratio sensitivity to the prefetchers.
func Figure5(entries []Entry, o Options) ([]PrefetchRow, error) {
	mk := func(adj, hw bool) *Machine {
		m := XeonX5670()
		m.Mem.AdjacentLine = adj
		m.Mem.HWPrefetcher = hw
		return &m
	}
	configs := []*Machine{mk(true, true), mk(false, true), mk(true, false)}
	rows := make([]PrefetchRow, 0, len(entries))
	for _, e := range entries {
		var vals [3]float64
		for i, m := range configs {
			opt := o
			opt.Machine = m
			r, err := MeasureEntry(e, opt)
			if err != nil {
				return nil, err
			}
			vals[i], _, _ = r.Stat(func(m *Measurement) float64 { return m.L2HitRatio() })
		}
		rows = append(rows, PrefetchRow{
			Label: e.Label, Baseline: vals[0],
			AdjacentDisabled: vals[1], HWDisabled: vals[2],
		})
	}
	return rows, nil
}

// SharingRow is one bar of Figure 6: the fraction of LLC data
// references that hit a block most recently modified by a remote core.
type SharingRow struct {
	Label string
	App   float64
	OS    float64
}

// Figure6 measures read-write sharing with threads split across two
// sockets (Section 3.1's configuration).
func Figure6(entries []Entry, o Options) ([]SharingRow, error) {
	opt := o
	opt.SplitSockets = true
	rows := make([]SharingRow, 0, len(entries))
	for _, e := range entries {
		r, err := MeasureEntry(e, opt)
		if err != nil {
			return nil, err
		}
		app, _, _ := r.Stat(func(m *Measurement) float64 { return m.SharedRWFracUser() })
		osv, _, _ := r.Stat(func(m *Measurement) float64 { return m.SharedRWFracOS() })
		rows = append(rows, SharingRow{Label: e.Label, App: app, OS: osv})
	}
	return rows, nil
}

// BandwidthRow is one bar of Figure 7: off-chip bandwidth utilisation
// split into application and OS shares.
type BandwidthRow struct {
	Label string
	App   float64
	OS    float64
}

// Figure7 measures off-chip bandwidth utilisation.
func Figure7(entries []Entry, o Options) ([]BandwidthRow, error) {
	rows := make([]BandwidthRow, 0, len(entries))
	for _, e := range entries {
		r, err := MeasureEntry(e, o)
		if err != nil {
			return nil, err
		}
		// Split each member's utilisation by the mode of its off-chip
		// read traffic (writebacks charged proportionally), then average.
		app, _, _ := r.Stat(func(m *Measurement) float64 {
			reads := m.OffchipReadUser + m.OffchipReadOS
			if reads == 0 {
				return 0
			}
			return m.DRAMUtilization() * float64(m.OffchipReadUser) / float64(reads)
		})
		osu, _, _ := r.Stat(func(m *Measurement) float64 {
			reads := m.OffchipReadUser + m.OffchipReadOS
			if reads == 0 {
				return 0
			}
			return m.DRAMUtilization() * float64(m.OffchipReadOS) / float64(reads)
		})
		rows = append(rows, BandwidthRow{Label: e.Label, App: app, OS: osu})
	}
	return rows, nil
}
