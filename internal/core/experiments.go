package core

import (
	"fmt"
	"sort"
)

// This file implements the paper's evaluation: one driver per figure.
// Each driver enumerates its full measurement matrix up front, submits
// it to a Runner (worker pool + memoization cache, see runner.go), and
// folds the results into plain row structs that the report package
// renders and the benchmark harness prints. Output ordering is
// deterministic and independent of the worker count. DESIGN.md
// section 3 maps each driver to its figure.
//
// The package-level Figure functions are serial conveniences: each runs
// its driver on a fresh single-worker Runner. Callers that regenerate
// several figures should share one Runner so configurations common to
// multiple figures (the baseline entries appear in Figures 1, 2, 3 and
// 7) are measured once.

// BreakdownRow is one bar of Figure 1: the commit-time execution
// breakdown plus the overlapped memory-cycles bar.
type BreakdownRow struct {
	Label string
	// Fractions of total cycles.
	CommittingUser float64
	CommittingOS   float64
	StalledUser    float64
	StalledOS      float64
	// Memory is plotted side-by-side (it overlaps commit cycles).
	Memory float64
	// MemoryCI is the 95% confidence interval of the Memory bar (zero
	// width when sampling is off).
	MemoryCI Estimate
}

// Figure1 measures the execution-time breakdown of the given entries
// serially; see (*Runner).Figure1.
func Figure1(entries []Entry, o Options) ([]BreakdownRow, error) {
	return NewRunner(1).Figure1(entries, o)
}

// Figure1 measures the execution-time breakdown of the given entries.
func (r *Runner) Figure1(entries []Entry, o Options) ([]BreakdownRow, error) {
	results, err := r.measureEntrySets(entrySets(entries, o))
	if err != nil {
		return nil, err
	}
	rows := make([]BreakdownRow, 0, len(entries))
	for i, e := range entries {
		res := results[i]
		cu, _, _ := res.MeanMinMax(func(m *Measurement) float64 {
			return float64(m.CommitCyclesUser) / float64(m.Cycles)
		})
		co, _, _ := res.MeanMinMax(func(m *Measurement) float64 {
			return float64(m.CommitCyclesOS) / float64(m.Cycles)
		})
		su, _, _ := res.MeanMinMax(func(m *Measurement) float64 {
			return float64(m.StallCyclesUser) / float64(m.Cycles)
		})
		so, _, _ := res.MeanMinMax(func(m *Measurement) float64 {
			return float64(m.StallCyclesOS) / float64(m.Cycles)
		})
		mem, _, _ := res.MeanMinMax(func(m *Measurement) float64 { return m.MemCycleFrac() })
		rows = append(rows, BreakdownRow{
			Label: e.Label, CommittingUser: cu, CommittingOS: co,
			StalledUser: su, StalledOS: so, Memory: mem,
			MemoryCI: res.CI(func(m *Measurement) float64 { return m.MemCycleFrac() }),
		})
	}
	return rows, nil
}

// entrySets pairs every entry with the same options.
func entrySets(entries []Entry, o Options) []entrySet {
	sets := make([]entrySet, len(entries))
	for i, e := range entries {
		sets[i] = entrySet{e: e, o: o}
	}
	return sets
}

// InstrMissRow is one bar group of Figure 2: L1-I and L2 instruction
// misses per kilo-instruction, split into application and OS.
type InstrMissRow struct {
	Label  string
	L1IApp float64
	L1IOS  float64
	L2IApp float64
	L2IOS  float64
	ShowOS bool
}

// Figure2 measures instruction-cache miss rates serially; see
// (*Runner).Figure2.
func Figure2(entries []Entry, o Options) ([]InstrMissRow, error) {
	return NewRunner(1).Figure2(entries, o)
}

// Figure2 measures instruction-cache miss rates.
func (r *Runner) Figure2(entries []Entry, o Options) ([]InstrMissRow, error) {
	results, err := r.measureEntrySets(entrySets(entries, o))
	if err != nil {
		return nil, err
	}
	rows := make([]InstrMissRow, 0, len(entries))
	for i, e := range entries {
		res := results[i]
		l1a, _, _ := res.MeanMinMax(func(m *Measurement) float64 { return m.L1IMPKIUser() })
		l1o, _, _ := res.MeanMinMax(func(m *Measurement) float64 { return m.L1IMPKIOS() })
		l2a, _, _ := res.MeanMinMax(func(m *Measurement) float64 { return m.L2IMPKIUser() })
		l2o, _, _ := res.MeanMinMax(func(m *Measurement) float64 { return m.L2IMPKIOS() })
		rows = append(rows, InstrMissRow{
			Label: e.Label, L1IApp: l1a, L1IOS: l1o, L2IApp: l2a, L2IOS: l2o,
			ShowOS: e.ShowOS,
		})
	}
	return rows, nil
}

// IPCMLPRow is one bar group of Figure 3: IPC and MLP with and without
// SMT, with min/max range over group members.
type IPCMLPRow struct {
	Label                  string
	IPCBase, IPCSMT        float64
	IPCLo, IPCHi           float64
	MLPBase, MLPSMT        float64
	MLPLo, MLPHi           float64
	SMTSpeedup             float64
	MLPGainFromSMT         float64
	MembersCounted         int
	BaseCyclesPerInstr4Wid float64
	// IPCCI and MLPCI are the baseline configuration's 95% confidence
	// intervals (zero width when sampling is off). The Lo/Hi pairs above
	// are member min/max spreads, not statistical intervals.
	IPCCI, MLPCI Estimate
}

// Figure3 measures IPC and MLP for baseline and SMT configurations
// serially; see (*Runner).Figure3.
func Figure3(entries []Entry, o Options) ([]IPCMLPRow, error) {
	return NewRunner(1).Figure3(entries, o)
}

// Figure3 measures IPC and MLP for baseline and SMT configurations.
// Both configurations of every entry go into a single submission, so
// the worker pool sees the whole matrix at once.
func (r *Runner) Figure3(entries []Entry, o Options) ([]IPCMLPRow, error) {
	oSMT := o
	oSMT.SMT = true
	sets := append(entrySets(entries, o), entrySets(entries, oSMT)...)
	results, err := r.measureEntrySets(sets)
	if err != nil {
		return nil, err
	}
	rows := make([]IPCMLPRow, 0, len(entries))
	for i, e := range entries {
		base, smt := results[i], results[len(entries)+i]
		ipc, ipcLo, ipcHi := base.MeanMinMax(func(m *Measurement) float64 { return m.IPC() })
		mlp, mlpLo, mlpHi := base.MeanMinMax(func(m *Measurement) float64 { return m.MLP() })
		ipcS, _, _ := smt.MeanMinMax(func(m *Measurement) float64 { return m.IPC() })
		mlpS, _, _ := smt.MeanMinMax(func(m *Measurement) float64 { return m.MLP() })
		row := IPCMLPRow{
			Label:   e.Label,
			IPCBase: ipc, IPCSMT: ipcS, IPCLo: ipcLo, IPCHi: ipcHi,
			MLPBase: mlp, MLPSMT: mlpS, MLPLo: mlpLo, MLPHi: mlpHi,
			MembersCounted: len(e.Members),
			IPCCI:          base.CI(func(m *Measurement) float64 { return m.IPC() }),
			MLPCI:          base.CI(func(m *Measurement) float64 { return m.MLP() }),
		}
		if ipc > 0 {
			row.SMTSpeedup = ipcS / ipc
		}
		if mlp > 0 {
			row.MLPGainFromSMT = mlpS / mlp
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// LLCPoint is one point of Figure 4: user-IPC at an effective LLC
// capacity, normalized to the full-capacity baseline.
type LLCPoint struct {
	CacheMB    int
	Normalized float64
}

// LLCSeries is one curve of Figure 4.
type LLCSeries struct {
	Label  string
	Points []LLCPoint
}

// Figure4 sweeps effective LLC capacity serially; see
// (*Runner).Figure4.
func Figure4(groups map[string][]Entry, capacitiesMB []int, o Options) ([]LLCSeries, error) {
	return NewRunner(1).Figure4(groups, capacitiesMB, o)
}

// Figure4 sweeps effective LLC capacity using cache-polluting threads
// (Section 3.1's methodology) and reports user-IPC normalized to the
// unpolluted baseline for each entry group. Series are returned in
// sorted label order, so output does not depend on map iteration.
func (r *Runner) Figure4(groups map[string][]Entry, capacitiesMB []int, o Options) ([]LLCSeries, error) {
	llcMB := XeonX5670().Mem.LLC.SizeBytes >> 20
	labels := make([]string, 0, len(groups))
	for label := range groups {
		labels = append(labels, label)
	}
	sort.Strings(labels)

	// Enumerate the whole sweep: for each group, the unpolluted baseline
	// followed by one configuration per capacity point.
	var sets []entrySet
	for _, label := range labels {
		sets = append(sets, entrySets(groups[label], o)...)
		for _, mb := range capacitiesMB {
			opt := o
			if mb < llcMB {
				opt.PolluteBytes = uint64(llcMB-mb) << 20
			}
			sets = append(sets, entrySets(groups[label], opt)...)
		}
	}
	results, err := r.measureEntrySets(sets)
	if err != nil {
		return nil, err
	}

	var out []LLCSeries
	pos := 0
	take := func(n int) []*EntryResult {
		group := results[pos : pos+n]
		pos += n
		return group
	}
	for _, label := range labels {
		n := len(groups[label])
		series := LLCSeries{Label: label}
		baseline, err := averageUserIPC(take(n))
		if err != nil {
			return nil, err
		}
		for _, mb := range capacitiesMB {
			v, err := averageUserIPC(take(n))
			if err != nil {
				return nil, err
			}
			norm := 0.0
			if baseline > 0 {
				norm = v / baseline
			}
			series.Points = append(series.Points, LLCPoint{CacheMB: mb, Normalized: norm})
		}
		out = append(out, series)
	}
	return out, nil
}

// averageUserIPC averages the per-entry mean user-IPC of a group.
func averageUserIPC(results []*EntryResult) (float64, error) {
	if len(results) == 0 {
		return 0, fmt.Errorf("core: empty entry group")
	}
	var sum float64
	for _, res := range results {
		v, _, _ := res.MeanMinMax(func(m *Measurement) float64 { return m.UserIPC() })
		sum += v
	}
	return sum / float64(len(results)), nil
}

// Figure4Groups returns the paper's three curves: the scale-out
// average, the traditional server average, and SPECint mcf.
func Figure4Groups() map[string][]Entry {
	all := FigureEntries()
	groups := map[string][]Entry{
		"Scale-out": all[:6],
	}
	var server []Entry
	for _, e := range all {
		switch e.Label {
		case "SPECweb09", "TPC-C", "TPC-E", "Web Backend":
			server = append(server, e)
		}
	}
	groups["Server"] = server
	mcf, ok := FindBench("SPECint (mcf)")
	if !ok {
		panic("core: mcf bench missing")
	}
	groups["SPECint (mcf)"] = []Entry{{Label: "SPECint (mcf)", Members: []Bench{mcf}}}
	return groups
}

// PrefetchRow is one bar group of Figure 5: L2 hit ratios with all
// prefetchers on, with the adjacent-line prefetcher disabled, and with
// the HW (stride) prefetcher disabled.
type PrefetchRow struct {
	Label            string
	Baseline         float64
	AdjacentDisabled float64
	HWDisabled       float64
}

// Figure5 measures L2 hit-ratio prefetcher sensitivity serially; see
// (*Runner).Figure5.
func Figure5(entries []Entry, o Options) ([]PrefetchRow, error) {
	return NewRunner(1).Figure5(entries, o)
}

// Figure5 measures L2 hit-ratio sensitivity to the prefetchers.
func (r *Runner) Figure5(entries []Entry, o Options) ([]PrefetchRow, error) {
	mk := func(adj, hw bool) *Machine {
		m := XeonX5670()
		m.Mem.AdjacentLine = adj
		m.Mem.HWPrefetcher = hw
		return &m
	}
	configs := []*Machine{mk(true, true), mk(false, true), mk(true, false)}
	var sets []entrySet
	for _, m := range configs {
		opt := o
		opt.Machine = m
		sets = append(sets, entrySets(entries, opt)...)
	}
	results, err := r.measureEntrySets(sets)
	if err != nil {
		return nil, err
	}
	rows := make([]PrefetchRow, 0, len(entries))
	for i, e := range entries {
		var vals [3]float64
		for c := range configs {
			vals[c], _, _ = results[c*len(entries)+i].MeanMinMax(func(m *Measurement) float64 { return m.L2HitRatio() })
		}
		rows = append(rows, PrefetchRow{
			Label: e.Label, Baseline: vals[0],
			AdjacentDisabled: vals[1], HWDisabled: vals[2],
		})
	}
	return rows, nil
}

// SharingRow is one bar of Figure 6: the fraction of LLC data
// references that hit a block most recently modified by a remote core.
type SharingRow struct {
	Label string
	App   float64
	OS    float64
}

// Figure6 measures read-write sharing serially; see (*Runner).Figure6.
func Figure6(entries []Entry, o Options) ([]SharingRow, error) {
	return NewRunner(1).Figure6(entries, o)
}

// Figure6 measures read-write sharing with threads split across two
// sockets (Section 3.1's configuration).
func (r *Runner) Figure6(entries []Entry, o Options) ([]SharingRow, error) {
	opt := o
	opt.SplitSockets = true
	results, err := r.measureEntrySets(entrySets(entries, opt))
	if err != nil {
		return nil, err
	}
	rows := make([]SharingRow, 0, len(entries))
	for i, e := range entries {
		res := results[i]
		app, _, _ := res.MeanMinMax(func(m *Measurement) float64 { return m.SharedRWFracUser() })
		osv, _, _ := res.MeanMinMax(func(m *Measurement) float64 { return m.SharedRWFracOS() })
		rows = append(rows, SharingRow{Label: e.Label, App: app, OS: osv})
	}
	return rows, nil
}

// BandwidthRow is one bar of Figure 7: off-chip bandwidth utilisation
// split into application and OS shares.
type BandwidthRow struct {
	Label string
	App   float64
	OS    float64
	// TotalCI is the 95% confidence interval of the total utilisation
	// (zero width when sampling is off).
	TotalCI Estimate
}

// Figure7 measures off-chip bandwidth utilisation serially; see
// (*Runner).Figure7.
func Figure7(entries []Entry, o Options) ([]BandwidthRow, error) {
	return NewRunner(1).Figure7(entries, o)
}

// Figure7 measures off-chip bandwidth utilisation.
func (r *Runner) Figure7(entries []Entry, o Options) ([]BandwidthRow, error) {
	results, err := r.measureEntrySets(entrySets(entries, o))
	if err != nil {
		return nil, err
	}
	rows := make([]BandwidthRow, 0, len(entries))
	for i, e := range entries {
		res := results[i]
		// Split each member's utilisation by the mode of its off-chip
		// read traffic (writebacks charged proportionally), then average.
		app, _, _ := res.MeanMinMax(func(m *Measurement) float64 {
			reads := m.OffchipReadUser + m.OffchipReadOS
			if reads == 0 {
				return 0
			}
			return m.DRAMUtilization() * float64(m.OffchipReadUser) / float64(reads)
		})
		osu, _, _ := res.MeanMinMax(func(m *Measurement) float64 {
			reads := m.OffchipReadUser + m.OffchipReadOS
			if reads == 0 {
				return 0
			}
			return m.DRAMUtilization() * float64(m.OffchipReadOS) / float64(reads)
		})
		rows = append(rows, BandwidthRow{
			Label: e.Label, App: app, OS: osu,
			TotalCI: res.CI(func(m *Measurement) float64 { return m.DRAMUtilization() }),
		})
	}
	return rows, nil
}
