package core

import (
	"cloudsuite/internal/sim/cache"
	"cloudsuite/internal/sim/dram"
	"cloudsuite/internal/sim/engine"
	"cloudsuite/internal/sim/power"
)

// This file implements the paper's *implications* as measurable
// experiments — the architectural directions Sections 4.1-4.4 and the
// conclusion argue for:
//
//   - a scale-out-optimized processor: modest two-wide out-of-order
//     cores with SMT, a two-level cache hierarchy with a small LLC,
//     and scaled-back off-chip bandwidth, trading the saved area for
//     more cores (Section 6);
//   - instruction prefetchers that capture the complex miss patterns
//     next-line prefetching cannot (Section 4.1).

// ScaleOutProcessor returns the processor the paper's implications
// describe. Core aggressiveness is halved (2-wide, small window), the
// L2 is removed in favour of a flat two-level hierarchy, the LLC is
// sized to the instruction working set plus supporting structures
// (4MB), one DDR3 channel is dropped, and the front-end gets a
// stream-based instruction prefetcher. The saved area hosts twelve
// SMT-2 cores instead of six.
func ScaleOutProcessor() Machine {
	return Machine{
		Name: "Scale-out optimized CMP",
		Core: engine.CoreConfig{
			Width: 2, ROB: 48, RS: 16, LoadQ: 24, StoreQ: 16,
			MSHRs: 10, MispredictPenalty: 10,
			ALULatency: 1, MulLatency: 3, FPLatency: 4,
		},
		Mem: cache.SystemConfig{
			Sockets:        1,
			CoresPerSocket: 12,
			L1I:            cache.Config{SizeBytes: 32 << 10, Assoc: 4, LatencyCycles: 3},
			L1D:            cache.Config{SizeBytes: 32 << 10, Assoc: 8, LatencyCycles: 3},
			// The "L2" is a thin bypass: same capacity as L1 victims need,
			// modelled as a small second level with near-L1 latency so the
			// hierarchy behaves as the flat two-level design the paper
			// suggests.
			L2:           cache.Config{SizeBytes: 64 << 10, Assoc: 8, LatencyCycles: 5},
			LLC:          cache.Config{SizeBytes: 4 << 20, Assoc: 16, LatencyCycles: 17},
			AdjacentLine: false,
			HWPrefetcher: true,
			DCUStreamer:  true,
			IPrefetch:    cache.IPrefStream,
			// Partitioned LLC: instruction blocks replicated near the
			// requesting cores (Section 4.1's implication).
			LLCInstrLatencyCycles: 9,
			RemoteHitCycles:       110,
			DRAM:                  dram.Config{Channels: 2, AccessCycles: 190, TransferCycles: 18},
		},
	}
}

// AreaUnits is a coarse die-area proxy used to compare chip designs:
// a 4-wide OoO core with its private caches costs ~4 units, a 2-wide
// core ~1.5 (out-of-order structures scale super-linearly with width),
// and the LLC ~1 unit per megabyte — consistent with the paper's
// observation that cores and LLC each occupy about half the die.
func AreaUnits(m Machine) float64 {
	perCore := 1.5
	if m.Core.Width >= 4 {
		perCore = 4
	}
	return perCore*float64(m.Mem.CoresPerSocket) + float64(m.Mem.LLC.SizeBytes>>20)
}

// ImplicationRow compares one workload on the conventional and the
// scale-out-optimized designs.
type ImplicationRow struct {
	Label string
	// ConvIPC / OptIPC are per-core IPC on each design (the optimized
	// design runs two hardware threads per core).
	ConvIPC float64
	OptIPC  float64
	// ChipThroughput fields scale per-core IPC by core count: the
	// whole-chip instruction throughput proxy.
	ConvChipThroughput float64
	OptChipThroughput  float64
	// Density fields divide chip throughput by the area proxy: the
	// paper's computational-density argument.
	ConvDensity float64
	OptDensity  float64
	// Per-operation energy (picojoules per instruction) on each design:
	// the paper's energy-efficiency argument, from the event-based
	// power model.
	ConvPJPerInstr float64
	OptPJPerInstr  float64
}

// Implications measures entries on the conventional and optimized
// designs serially; see (*Runner).Implications.
func Implications(entries []Entry, o Options) ([]ImplicationRow, error) {
	return NewRunner(1).Implications(entries, o)
}

// Implications measures entries on the Table-1 machine and on the
// scale-out-optimized design, comparing chip-level computational
// density (Section 6: "improved computational density and power
// efficiency").
func (r *Runner) Implications(entries []Entry, o Options) ([]ImplicationRow, error) {
	conv := XeonX5670()
	opt := ScaleOutProcessor()
	convArea := AreaUnits(conv)
	optArea := AreaUnits(opt)

	oc := o
	oc.Machine = &conv
	oo := o
	oo.Machine = &opt
	oo.SMT = true // the optimized design relies on multi-threading
	sets := append(entrySets(entries, oc), entrySets(entries, oo)...)
	results, err := r.measureEntrySets(sets)
	if err != nil {
		return nil, err
	}

	rows := make([]ImplicationRow, 0, len(entries))
	for i, e := range entries {
		rc, ro := results[i], results[len(entries)+i]
		cIPC, _, _ := rc.MeanMinMax(func(m *Measurement) float64 { return m.IPC() })
		oIPC, _, _ := ro.MeanMinMax(func(m *Measurement) float64 { return m.IPC() })
		cPJ, _, _ := rc.MeanMinMax(func(m *Measurement) float64 {
			pp := power.ConventionalParams(conv.Mem.CoresPerSocket, conv.Mem.LLC.SizeBytes>>20)
			return power.Estimate(pp, &m.Counters, o.Cores).PJPerInstruction()
		})
		oPJ, _, _ := ro.MeanMinMax(func(m *Measurement) float64 {
			pp := power.ModestParams(opt.Mem.CoresPerSocket, opt.Mem.LLC.SizeBytes>>20)
			return power.Estimate(pp, &m.Counters, o.Cores).PJPerInstruction()
		})
		row := ImplicationRow{
			Label:              e.Label,
			ConvIPC:            cIPC,
			OptIPC:             oIPC,
			ConvChipThroughput: cIPC * float64(conv.Mem.CoresPerSocket),
			OptChipThroughput:  oIPC * float64(opt.Mem.CoresPerSocket),
		}
		row.ConvDensity = row.ConvChipThroughput / convArea
		row.OptDensity = row.OptChipThroughput / optArea
		row.ConvPJPerInstr = cPJ
		row.OptPJPerInstr = oPJ
		rows = append(rows, row)
	}
	return rows, nil
}

// IPrefRow compares instruction-prefetch designs for one workload.
type IPrefRow struct {
	Label string
	// L1-I misses per kilo-instruction under each front-end.
	MPKINone, MPKINextLine, MPKIStream float64
	// IPC under each front-end.
	IPCNone, IPCNextLine, IPCStream float64
}

// InstructionPrefetchStudy compares instruction-prefetch front-ends
// serially; see (*Runner).InstructionPrefetchStudy.
func InstructionPrefetchStudy(entries []Entry, o Options) ([]IPrefRow, error) {
	return NewRunner(1).InstructionPrefetchStudy(entries, o)
}

// InstructionPrefetchStudy measures entries with no instruction
// prefetcher, the conventional next-line prefetcher, and the
// stream-based prefetcher the paper's Section 4.1 implications call
// for.
func (r *Runner) InstructionPrefetchStudy(entries []Entry, o Options) ([]IPrefRow, error) {
	mk := func(mode cache.IPrefMode) *Machine {
		m := XeonX5670()
		m.Mem.IPrefetch = mode
		return &m
	}
	configs := []*Machine{mk(cache.IPrefNone), mk(cache.IPrefNextLine), mk(cache.IPrefStream)}
	var sets []entrySet
	for _, m := range configs {
		opt := o
		opt.Machine = m
		sets = append(sets, entrySets(entries, opt)...)
	}
	results, err := r.measureEntrySets(sets)
	if err != nil {
		return nil, err
	}
	rows := make([]IPrefRow, 0, len(entries))
	for i, e := range entries {
		var mpki, ipc [3]float64
		for c := range configs {
			res := results[c*len(entries)+i]
			mpki[c], _, _ = res.MeanMinMax(func(m *Measurement) float64 { return m.L1IMPKIUser() + m.L1IMPKIOS() })
			ipc[c], _, _ = res.MeanMinMax(func(m *Measurement) float64 { return m.IPC() })
		}
		rows = append(rows, IPrefRow{
			Label:    e.Label,
			MPKINone: mpki[0], MPKINextLine: mpki[1], MPKIStream: mpki[2],
			IPCNone: ipc[0], IPCNextLine: ipc[1], IPCStream: ipc[2],
		})
	}
	return rows, nil
}
