package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"cloudsuite/internal/sim/checkpoint"
)

// This file is the differential test harness of the warm-state
// checkpoint subsystem: it proves, byte-for-byte, that
//
//	restore(save(warm)) + measure == warm + measure
//
// across every scale-out workload, one and two sockets, contiguous and
// sampled measurement — the equivalence that licenses forking parameter
// sweeps from a shared warm image. The comparison is on the serialized
// measurement (the same JSON the CLIs emit rows from), so any drift in
// any counter fails the harness.

// diffOptions returns reduced-budget options for the differential
// matrix so the full workload x sockets x mode sweep stays fast.
func diffOptions(sockets int, sampled bool) Options {
	o := Options{
		Cores:        4,
		Sockets:      sockets,
		WarmupInsts:  40_000,
		MeasureInsts: 8_000,
		Seed:         1,
	}
	if sampled {
		o.Sampling = Sampling{Intervals: 4}
	}
	return o
}

// mustJSON serializes a measurement for byte comparison.
func mustJSON(t *testing.T, m *Measurement) string {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestCheckpointDifferentialHarness(t *testing.T) {
	for _, b := range ScaleOut() {
		for _, sockets := range []int{1, 2} {
			for _, sampled := range []bool{false, true} {
				o := diffOptions(sockets, sampled)

				cold, err := MeasureBench(b, o)
				if err != nil {
					t.Fatalf("%s sockets=%d sampled=%v: cold: %v", b.Name, sockets, sampled, err)
				}
				want := mustJSON(t, cold)

				store, err := NewCheckpointStore("")
				if err != nil {
					t.Fatal(err)
				}
				o.Checkpoints = store

				// Warm run: saves the image at the warm->measure boundary.
				saved, err := MeasureBench(b, o)
				if err != nil {
					t.Fatalf("%s sockets=%d sampled=%v: warm: %v", b.Name, sockets, sampled, err)
				}
				if got := mustJSON(t, saved); got != want {
					t.Fatalf("%s sockets=%d sampled=%v: taking a checkpoint changed the measurement\ncold = %s\nwarm = %s",
						b.Name, sockets, sampled, want, got)
				}

				// Restored run: forks from the image.
				restored, err := MeasureBench(b, o)
				if err != nil {
					t.Fatalf("%s sockets=%d sampled=%v: restore: %v", b.Name, sockets, sampled, err)
				}
				if got := mustJSON(t, restored); got != want {
					t.Fatalf("%s sockets=%d sampled=%v: restored measurement differs from cold\ncold     = %s\nrestored = %s",
						b.Name, sockets, sampled, want, got)
				}

				s := store.Stats()
				if s.Saves != 1 || s.MemoryHits != 1 {
					t.Fatalf("%s sockets=%d sampled=%v: store stats %+v, want 1 save and 1 memory hit",
						b.Name, sockets, sampled, s)
				}
			}
		}
	}
}

// TestCheckpointCrossKnobFork is the sweep scenario the subsystem
// exists for: configurations that differ only in measurement-side knobs
// (sampling schedule, measured budget) share one warm image, and each
// fork is byte-identical to its own cold run.
func TestCheckpointCrossKnobFork(t *testing.T) {
	b, _ := FindBench("Web Search")
	contiguous := diffOptions(1, false)
	sampled := diffOptions(1, true)
	longer := contiguous
	longer.MeasureInsts = 12_000

	coldSampled, err := MeasureBench(b, sampled)
	if err != nil {
		t.Fatal(err)
	}
	coldLonger, err := MeasureBench(b, longer)
	if err != nil {
		t.Fatal(err)
	}

	store, err := NewCheckpointStore("")
	if err != nil {
		t.Fatal(err)
	}
	contiguous.Checkpoints = store
	sampled.Checkpoints = store
	longer.Checkpoints = store

	if _, err := MeasureBench(b, contiguous); err != nil {
		t.Fatal(err)
	}
	gotSampled, err := MeasureBench(b, sampled)
	if err != nil {
		t.Fatal(err)
	}
	gotLonger, err := MeasureBench(b, longer)
	if err != nil {
		t.Fatal(err)
	}

	if mustJSON(t, gotSampled) != mustJSON(t, coldSampled) {
		t.Fatal("sampled run forked from a contiguous run's warm image differs from its cold run")
	}
	if mustJSON(t, gotLonger) != mustJSON(t, coldLonger) {
		t.Fatal("longer-budget run forked from a shared warm image differs from its cold run")
	}
	s := store.Stats()
	if s.Saves != 1 {
		t.Fatalf("three measurement-side variants saved %d warm images, want 1 shared", s.Saves)
	}
	if s.MemoryHits != 2 {
		t.Fatalf("store stats %+v, want 2 memory hits", s)
	}
}

// TestCheckpointWarmVisibleKnobsGetDistinctImages: options that change
// warm-visible state must not share an image.
func TestCheckpointWarmVisibleKnobsGetDistinctImages(t *testing.T) {
	base := canonicalize(diffOptions(1, false))

	variant := func(mut func(*Options)) canonicalOptions {
		o := diffOptions(1, false)
		mut(&o)
		return canonicalize(o)
	}

	baseKey := checkpointKey("Web Search", base)
	if k := checkpointKey("Data Serving", base); k == baseKey {
		t.Fatal("different benchmarks share a checkpoint key")
	}
	distinct := map[string]func(*Options){
		"seed":    func(o *Options) { o.Seed = 2 },
		"smt":     func(o *Options) { o.SMT = true },
		"sockets": func(o *Options) { o.Sockets = 2 },
		"pollute": func(o *Options) { o.PolluteBytes = 6 << 20 },
		"warmup":  func(o *Options) { o.WarmupInsts = 50_000 },
		"cores":   func(o *Options) { o.Cores = 2 },
		"machine": func(o *Options) { m := XeonX5670(); m.Mem.LLC.SizeBytes = 6 << 20; o.Machine = &m },
	}
	for name, mut := range distinct {
		if k := checkpointKey("Web Search", variant(mut)); k == baseKey {
			t.Fatalf("warm-visible option %q does not change the checkpoint key", name)
		}
	}
	same := map[string]func(*Options){
		"measure":  func(o *Options) { o.MeasureInsts = 64_000 },
		"sampling": func(o *Options) { o.Sampling = Sampling{Intervals: 4} },
	}
	for name, mut := range same {
		if k := checkpointKey("Web Search", variant(mut)); k != baseKey {
			t.Fatalf("measurement-side option %q changes the checkpoint key", name)
		}
	}
}

func TestCheckpointDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	b, _ := FindBench("Data Serving")
	o := diffOptions(1, false)

	cold, err := MeasureBench(b, o)
	if err != nil {
		t.Fatal(err)
	}

	store1, err := NewCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	o.Checkpoints = store1
	if _, err := MeasureBench(b, o); err != nil {
		t.Fatal(err)
	}
	if s := store1.Stats(); s.Saves != 1 {
		t.Fatalf("first process saved %d images, want 1", s.Saves)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(files) != 1 {
		t.Fatalf("checkpoint dir holds %d images (%v), want 1", len(files), err)
	}

	// A fresh store on the same directory models a new process.
	store2, err := NewCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	o.Checkpoints = store2
	restored, err := MeasureBench(b, o)
	if err != nil {
		t.Fatal(err)
	}
	if s := store2.Stats(); s.DiskHits != 1 || s.Saves != 0 {
		t.Fatalf("second process stats %+v, want 1 disk hit and no saves", s)
	}
	if mustJSON(t, restored) != mustJSON(t, cold) {
		t.Fatal("measurement restored from disk differs from cold run")
	}
}

// TestCheckpointCorruptImageFallsBackToColdWarming: a corrupted on-disk
// image must be detected (content hash) and the measurement must
// proceed — and still produce the cold-run bytes.
func TestCheckpointCorruptImageFallsBackToColdWarming(t *testing.T) {
	dir := t.TempDir()
	b, _ := FindBench("Web Search")
	o := diffOptions(1, false)

	cold, err := MeasureBench(b, o)
	if err != nil {
		t.Fatal(err)
	}

	store1, err := NewCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	o.Checkpoints = store1
	if _, err := MeasureBench(b, o); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if len(files) != 1 {
		t.Fatalf("want 1 image, have %d", len(files))
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(files[0], raw, 0o600); err != nil {
		t.Fatal(err)
	}

	store2, err := NewCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	o.Checkpoints = store2
	m, err := MeasureBench(b, o)
	if err != nil {
		t.Fatalf("corrupt image must not fail the measurement: %v", err)
	}
	if mustJSON(t, m) != mustJSON(t, cold) {
		t.Fatal("measurement after corrupt-image fallback differs from cold run")
	}
	if s := store2.Stats(); s.Failures == 0 || s.Saves != 1 {
		t.Fatalf("stats %+v, want the corruption counted and a fresh image saved", s)
	}
}

// TestCheckpointMismatchedImageRetriesCold covers the last line of
// defense: an image that decodes cleanly under the right key but does
// not match the run's configuration (here: forged under a different
// warm budget) must be dropped and the measurement retried from cold.
func TestCheckpointMismatchedImageRetriesCold(t *testing.T) {
	b, _ := FindBench("Web Search")
	o := diffOptions(1, false)

	cold, err := MeasureBench(b, o)
	if err != nil {
		t.Fatal(err)
	}

	// Capture a genuine snapshot under a different warm budget...
	forged := diffOptions(1, false)
	forged.WarmupInsts = 20_000
	fstore, err := NewCheckpointStore("")
	if err != nil {
		t.Fatal(err)
	}
	forged.Checkpoints = fstore
	if _, err := MeasureBench(b, forged); err != nil {
		t.Fatal(err)
	}
	var snap *checkpoint.Snapshot
	for _, cell := range fstore.cells {
		snap = cell.snap
	}
	if snap == nil {
		t.Fatal("no snapshot captured")
	}

	// ...and plant it in a fresh store under o's key.
	store, err := NewCheckpointStore("")
	if err != nil {
		t.Fatal(err)
	}
	key := checkpointKey("Web Search", canonicalize(o))
	cell := &ckptCell{done: make(chan struct{}), snap: snap}
	close(cell.done)
	store.cells[key] = cell

	o.Checkpoints = store
	m, err := MeasureBench(b, o)
	if err != nil {
		t.Fatalf("mismatched image must fall back to cold warming: %v", err)
	}
	if mustJSON(t, m) != mustJSON(t, cold) {
		t.Fatal("fallback measurement differs from cold run")
	}
	if s := store.Stats(); s.Failures == 0 {
		t.Fatalf("stats %+v, want the restore failure counted", s)
	}
}

// TestCheckpointSingleflight: concurrent measurements sharing a warm
// key produce exactly one warm image; the waiter forks from it mid-run.
func TestCheckpointSingleflight(t *testing.T) {
	store, err := NewCheckpointStore("")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := FindBench("Media Streaming")
	r := NewRunner(2)
	r.SetCheckpoints(store)

	oA := diffOptions(1, false)
	oB := diffOptions(1, false)
	oB.MeasureInsts = 12_000 // distinct memo key, same warm key

	ms, err := r.MeasureAll([]MeasureRequest{
		{Bench: b, Options: oA},
		{Bench: b, Options: oB},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0] == nil || ms[1] == nil {
		t.Fatal("missing results")
	}
	s := store.Stats()
	if s.Saves != 1 {
		t.Fatalf("concurrent runs saved %d images, want 1", s.Saves)
	}
	if s.MemoryHits != 1 {
		t.Fatalf("stats %+v, want exactly 1 memory hit", s)
	}

	// And the forked results match their cold counterparts.
	coldB, err := MeasureBench(b, Options{
		Cores: 4, WarmupInsts: 40_000, MeasureInsts: 12_000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, ms[1]) != mustJSON(t, coldB) {
		t.Fatal("singleflight fork differs from cold run")
	}
}

// TestCheckpointStoreConcurrentAcquire hammers the store from many
// goroutines (run under -race in CI) to verify the singleflight
// resolves exactly once per key with no data races.
func TestCheckpointStoreConcurrentAcquire(t *testing.T) {
	store, err := NewCheckpointStore("")
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	produced := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			snap, commit := store.acquire("shared-key")
			if commit != nil {
				w := checkpoint.NewWriter()
				w.U64(42)
				commit(w.Snapshot("shared-key"))
				mu.Lock()
				produced++
				mu.Unlock()
				return
			}
			if snap == nil {
				t.Error("acquire returned neither snapshot nor commit")
			}
		}()
	}
	wg.Wait()
	if produced != 1 {
		t.Fatalf("%d producers resolved the key, want exactly 1", produced)
	}
	if s := store.Stats(); s.Requests != n {
		t.Fatalf("stats %+v, want %d requests", s, n)
	}
}

// TestCheckpointOldVersionImageRetriesCold: a stale-format image on disk
// (e.g. a v1 snapshot with the flat uint32 sharer mask, from before the
// scalable-directory refactor) must be rejected at decode time and the
// measurement must re-warm from cold, producing the cold-run bytes.
func TestCheckpointOldVersionImageRetriesCold(t *testing.T) {
	dir := t.TempDir()
	b, _ := FindBench("Web Search")
	o := diffOptions(1, false)

	cold, err := MeasureBench(b, o)
	if err != nil {
		t.Fatal(err)
	}

	store1, err := NewCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	o.Checkpoints = store1
	if _, err := MeasureBench(b, o); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if len(files) != 1 {
		t.Fatalf("want 1 image, have %d", len(files))
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// The format version is the uint32 after the 8-byte magic. Rewind it
	// to 1, simulating an image from the pre-refactor format.
	raw[8], raw[9], raw[10], raw[11] = 1, 0, 0, 0
	if err := os.WriteFile(files[0], raw, 0o600); err != nil {
		t.Fatal(err)
	}

	store2, err := NewCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	o.Checkpoints = store2
	m, err := MeasureBench(b, o)
	if err != nil {
		t.Fatalf("old-version image must not fail the measurement: %v", err)
	}
	if mustJSON(t, m) != mustJSON(t, cold) {
		t.Fatal("measurement after version-rejection fallback differs from cold run")
	}
	if s := store2.Stats(); s.Failures == 0 || s.Saves != 1 {
		t.Fatalf("stats %+v, want the stale version counted and a fresh image saved", s)
	}
}
