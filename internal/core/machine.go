// Package core is the heart of the reproduction: the CloudSuite
// benchmark suite, the measured-machine model, and the measurement
// methodology of "Clearing the Clouds" (Ferdman et al., ASPLOS 2012).
//
// It ties the substrates together: workload models produce instruction
// streams; the engine executes them on a Table-1 machine model; the
// experiment drivers reproduce every figure of the paper's evaluation —
// execution-time breakdowns (Figure 1), instruction-cache behaviour
// (Figure 2), IPC/MLP with and without SMT (Figure 3), LLC capacity
// sensitivity via cache-polluting threads (Figure 4), prefetcher
// ablations (Figure 5), read-write sharing across sockets (Figure 6),
// and off-chip bandwidth utilisation (Figure 7).
package core

import (
	"strconv"

	"cloudsuite/internal/sim/cache"
	"cloudsuite/internal/sim/dram"
	"cloudsuite/internal/sim/engine"
)

// Machine bundles the core and memory-system configuration of a
// simulated server.
type Machine struct {
	// Name identifies the configuration in reports.
	Name string
	Core engine.CoreConfig
	Mem  cache.SystemConfig
}

// XeonX5670 returns the measured machine of Table 1: a 32nm Xeon X5670
// with six 4-wide out-of-order cores (128-entry ROB, 48/32 load/store
// buffers, 36 reservation stations), 32KB split L1s (4-cycle), 256KB
// per-core L2 (6 additional cycles), a 12MB shared LLC (29-cycle), and
// three DDR3 channels delivering up to 32GB/s. All prefetchers
// (adjacent-line, HW prefetcher, DCU streamer) are enabled.
func XeonX5670() Machine {
	return Machine{
		Name: "Intel Xeon X5670",
		Core: engine.CoreConfig{
			Width: 4, ROB: 128, RS: 36, LoadQ: 48, StoreQ: 32,
			MSHRs: 16, MispredictPenalty: 14,
			ALULatency: 1, MulLatency: 3, FPLatency: 4,
		},
		Mem: cache.SystemConfig{
			Sockets:        1,
			CoresPerSocket: 6,
			L1I:            cache.Config{SizeBytes: 32 << 10, Assoc: 4, LatencyCycles: 4},
			L1D:            cache.Config{SizeBytes: 32 << 10, Assoc: 8, LatencyCycles: 4},
			L2:             cache.Config{SizeBytes: 256 << 10, Assoc: 8, LatencyCycles: 11},
			LLC:            cache.Config{SizeBytes: 12 << 20, Assoc: 16, LatencyCycles: 29},
			AdjacentLine:   true,
			HWPrefetcher:   true,
			DCUStreamer:    true,

			RemoteHitCycles: 110,
			RemoteMemCycles: 90,
			HopCycles:       70,
			DRAM:            dram.Config{Channels: 3, AccessCycles: 190, TransferCycles: 18},
		},
	}
}

// MultiSocket returns the Table-1 machine scaled to n sockets. Each
// socket keeps its own LLC and its own three-channel memory controller
// (pages interleave across sockets), so aggregate cache capacity and
// bandwidth scale with the socket count, like the NUMA blades the
// paper measures on.
func MultiSocket(n int) Machine {
	m := XeonX5670()
	if n < 1 {
		n = 1
	}
	m.Mem.Sockets = n
	if n > 1 {
		m.Name = itoa(n) + "x Intel Xeon X5670"
	}
	return m
}

// TwoSocket returns the dual-socket PowerEdge M1000e blade
// configuration used for the read-write sharing measurement
// (Section 3.1: cores split across two physical processors so accesses
// to actively shared blocks appear as hits in the remote cache).
func TwoSocket() Machine { return MultiSocket(2) }

// ScaledMachine returns the Table-1 machine scaled to a sockets x
// coresPerSocket grid — the scale-up study's design space past the
// measured box. coresPerSocket <= 0 keeps the Table-1 six, making
// ScaledMachine(n, 0) identical to MultiSocket(n), so sweeps that mix
// both spellings share memoized measurements. Per-core cache capacity
// is held constant (each added core brings its own L1s and L2); socket
// resources (LLC, memory channels) are per-socket as in MultiSocket.
func ScaledMachine(sockets, coresPerSocket int) Machine {
	m := MultiSocket(sockets)
	if coresPerSocket > 0 && coresPerSocket != m.Mem.CoresPerSocket {
		m.Mem.CoresPerSocket = coresPerSocket
		m.Name = itoa(m.Mem.Sockets) + "x" + itoa(coresPerSocket) + "-core scaled Xeon X5670"
	}
	return m
}

// TableRow is one row of the Table-1 parameter listing.
type TableRow struct {
	Parameter string
	Value     string
}

// Table1 returns the architectural-parameter table for m, mirroring
// Table 1 of the paper.
func Table1(m Machine) []TableRow {
	return []TableRow{
		{"Processor", m.Name + ", 2.93GHz (simulated)"},
		{"CMP width", itoa(m.Mem.CoresPerSocket) + " OoO cores"},
		{"Core width", itoa(m.Core.Width) + "-wide issue and retire"},
		{"Reorder buffer", itoa(m.Core.ROB) + " entries"},
		{"Load/Store buffer", itoa(m.Core.LoadQ) + "/" + itoa(m.Core.StoreQ) + " entries"},
		{"Reservation stations", itoa(m.Core.RS) + " entries"},
		{"L1 cache", kb(m.Mem.L1I.SizeBytes) + ", split I/D, " + itoa(m.Mem.L1I.LatencyCycles) + "-cycle access latency"},
		{"L2 cache", kb(m.Mem.L2.SizeBytes) + " per core, " + itoa(m.Mem.L2.LatencyCycles-m.Mem.L1D.LatencyCycles) + "-cycle access latency"},
		{"LLC (L3 cache)", mb(m.Mem.LLC.SizeBytes) + ", " + itoa(m.Mem.LLC.LatencyCycles) + "-cycle access latency"},
		{"Memory", itoa(m.Mem.DRAM.Channels) + " DDR3 channels, up to 32GB/s"},
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

func kb(bytes int) string { return itoa(bytes>>10) + "KB" }
func mb(bytes int) string { return itoa(bytes>>20) + "MB" }
