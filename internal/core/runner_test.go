package core

import (
	"reflect"
	"sync"
	"testing"
)

// TestMeasureIsBitReproducible pins the determinism contract the Runner
// is built on: the same (benchmark, options) measures to the exact same
// counters, because trace generation runs in lockstep with the
// simulator's deterministic pull order.
func TestMeasureIsBitReproducible(t *testing.T) {
	b, _ := FindBench("Data Serving")
	o := fastOptions()
	a, err := MeasureBench(b, o)
	if err != nil {
		t.Fatal(err)
	}
	c, err := MeasureBench(b, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("two runs of the same configuration differ:\n%+v\n%+v", a, c)
	}
}

// TestRunnerDeterministicAcrossWorkerCounts is the tentpole regression:
// the same seed produces identical aggregated figure rows whether the
// Runner uses one worker or eight, with fresh caches on both sides.
// Run under -race this also exercises the pool for data races.
func TestRunnerDeterministicAcrossWorkerCounts(t *testing.T) {
	entries := FigureEntries()[:3]
	o := fastOptions()
	serialRows, err := NewRunner(1).Figure1(entries, o)
	if err != nil {
		t.Fatal(err)
	}
	parallelRows, err := NewRunner(8).Figure1(entries, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialRows, parallelRows) {
		t.Fatalf("worker count changed results:\nserial:   %+v\nparallel: %+v", serialRows, parallelRows)
	}
}

// TestSerialAndParallelFigure1Identical checks the package-level serial
// driver against a parallel Runner for several figures' row types.
func TestSerialAndParallelFigure1Identical(t *testing.T) {
	entries := ScaleOutEntries()[:2]
	o := fastOptions()
	serial, err := Figure1(entries, o)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(4)
	parallel, err := r.Figure1(entries, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("serial and parallel Figure1 differ:\n%+v\n%+v", serial, parallel)
	}
	// Figure 2 on the same runner reuses Figure 1's measurements: same
	// entries, same options, different aggregation.
	before := r.Stats()
	if _, err := r.Figure2(entries, o); err != nil {
		t.Fatal(err)
	}
	after := r.Stats()
	if after.Runs != before.Runs {
		t.Fatalf("Figure2 re-simulated cached configurations: %d -> %d runs", before.Runs, after.Runs)
	}
	if after.CacheHits <= before.CacheHits {
		t.Fatalf("Figure2 did not hit the cache: %+v -> %+v", before, after)
	}
}

// TestRunnerCacheHitAccounting checks the stats contract:
// Requests == Runs + CacheHits, duplicates within one batch single-
// flight, and repeated batches are served entirely from the cache.
func TestRunnerCacheHitAccounting(t *testing.T) {
	ws, _ := FindBench("Web Search")
	sat, _ := FindBench("SAT Solver")
	o := fastOptions()
	reqs := []MeasureRequest{
		{Bench: ws, Options: o},
		{Bench: ws, Options: o},
		{Bench: sat, Options: o},
		{Bench: ws, Options: o},
	}
	r := NewRunner(4)
	ms, err := r.MeasureAll(reqs)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.Requests != 4 || s.Runs != 2 || s.CacheHits != 2 {
		t.Fatalf("stats after first batch = %+v, want 4 requests, 2 runs, 2 hits", s)
	}
	if !reflect.DeepEqual(ms[0], ms[1]) || !reflect.DeepEqual(ms[0], ms[3]) {
		t.Fatal("duplicate requests returned different measurements")
	}
	if ms[2].BenchName != "SAT Solver" || ms[0].BenchName != "Web Search" {
		t.Fatalf("results out of request order: %q, %q", ms[0].BenchName, ms[2].BenchName)
	}

	if _, err := r.MeasureAll(reqs); err != nil {
		t.Fatal(err)
	}
	s = r.Stats()
	if s.Requests != 8 || s.Runs != 2 || s.CacheHits != 6 {
		t.Fatalf("stats after second batch = %+v, want 8 requests, 2 runs, 6 hits", s)
	}
}

// TestRunnerCanonicalizesOptions checks that requests spelled with
// implicit defaults share a cache slot with their explicit form.
func TestRunnerCanonicalizesOptions(t *testing.T) {
	b, _ := FindBench("SAT Solver")
	implicit := Options{Seed: 1, WarmupInsts: 40_000, MeasureInsts: 15_000} // Cores defaults to 4
	explicit := implicit
	explicit.Cores = 4
	m := XeonX5670()
	explicit.Machine = &m // the default machine, spelled out

	r := NewRunner(2)
	if _, err := r.MeasureAll([]MeasureRequest{
		{Bench: b, Options: implicit},
		{Bench: b, Options: explicit},
	}); err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); s.Runs != 1 || s.CacheHits != 1 {
		t.Fatalf("equivalent options did not share a cache slot: %+v", s)
	}
}

// TestRunnerErrorPropagation checks that a failing configuration
// surfaces its error and is accounted.
func TestRunnerErrorPropagation(t *testing.T) {
	b, _ := FindBench("Web Search")
	bad := fastOptions()
	bad.Cores = 6 // whole socket: no spare cores for polluters
	bad.PolluteBytes = 4 << 20
	r := NewRunner(2)
	if _, err := r.MeasureAll([]MeasureRequest{{Bench: b, Options: bad}}); err == nil {
		t.Fatal("expected error for polluters without spare cores")
	}
	if s := r.Stats(); s.Errors != 1 {
		t.Fatalf("error not accounted: %+v", s)
	}
	// The failure is memoized like any result: retrying does not rerun.
	if _, err := r.MeasureAll([]MeasureRequest{{Bench: b, Options: bad}}); err == nil {
		t.Fatal("cached failure lost")
	}
	if s := r.Stats(); s.Runs != 1 {
		t.Fatalf("failed configuration was re-simulated: %+v", s)
	}
}

// TestRunnerProgressEvents checks the progress callback: every request
// reports, Done reaches Total, and cache hits are flagged.
func TestRunnerProgressEvents(t *testing.T) {
	ws, _ := FindBench("Web Search")
	o := fastOptions()
	var mu sync.Mutex
	var events []ProgressEvent
	r := NewRunner(4)
	r.SetProgress(func(ev ProgressEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	reqs := []MeasureRequest{{Bench: ws, Options: o}, {Bench: ws, Options: o}}
	if _, err := r.MeasureAll(reqs); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d progress events, want 2", len(events))
	}
	sawCached := false
	for i, ev := range events {
		if ev.Total != 2 || ev.Bench != "Web Search" {
			t.Fatalf("bad event %+v", ev)
		}
		// Emission is serialized: Done arrives strictly in order, so the
		// final event is delivered last.
		if ev.Done != i+1 {
			t.Fatalf("event %d has Done=%d; emission not ordered: %+v", i, ev.Done, events)
		}
		if ev.Cached {
			sawCached = true
		}
	}
	if !sawCached {
		t.Fatal("duplicate request not reported as cached")
	}
}

// TestRunnerValidateMatchesSerial checks the batched Validate against
// the serial package-level one.
func TestRunnerValidateMatchesSerial(t *testing.T) {
	o := fastOptions()
	serial, err := Validate(o)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewRunner(6).Validate(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("Validate differs between serial and parallel runs:\n%+v\n%+v", serial, parallel)
	}
}

// TestRunnerFigure4SortedSeries pins the deterministic series order of
// the Figure-4 driver (sorted labels, independent of map iteration).
func TestRunnerFigure4SortedSeries(t *testing.T) {
	mcf, _ := FindBench("SPECint (mcf)")
	sat, _ := FindBench("SAT Solver")
	groups := map[string][]Entry{
		"zeta":  {{Label: "SAT Solver", Members: []Bench{sat}}},
		"alpha": {{Label: "SPECint (mcf)", Members: []Bench{mcf}}},
	}
	series, err := NewRunner(4).Figure4(groups, []int{8}, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].Label != "alpha" || series[1].Label != "zeta" {
		t.Fatalf("series not in sorted label order: %+v", series)
	}
}

// TestRunnerSharedAcrossGoroutines checks the Runner-wide bound and
// cache under the documented concurrent use: two goroutines submit
// overlapping batches to one single-slot Runner; everything completes
// (the simulation semaphore cannot deadlock against cache waits) and
// shared keys still simulate exactly once.
func TestRunnerSharedAcrossGoroutines(t *testing.T) {
	ws, _ := FindBench("Web Search")
	sat, _ := FindBench("SAT Solver")
	o := fastOptions()
	r := NewRunner(1)

	var wg sync.WaitGroup
	out := make([][]*Measurement, 2)
	errs := make([]error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out[g], errs[g] = r.MeasureAll([]MeasureRequest{
				{Bench: ws, Options: o},
				{Bench: sat, Options: o},
			})
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if !reflect.DeepEqual(out[0], out[1]) {
		t.Fatal("concurrent callers saw different results for identical batches")
	}
	if s := r.Stats(); s.Requests != 4 || s.Runs != 2 || s.CacheHits != 2 {
		t.Fatalf("stats = %+v, want 4 requests, 2 runs, 2 hits", s)
	}
}
