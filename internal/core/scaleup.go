package core

// This file implements the NUMA scale-up study: the paper's core
// argument is that scale-out workloads mismatch scale-up server
// hardware, so the study sweeps the workload across core counts and
// socket counts of the Table-1 machine and reports how chip throughput,
// memory-level parallelism, off-chip bandwidth, and cross-socket
// traffic scale. It is the measured counterpart of the mismatch
// argument: if the workloads scaled up well, doubling sockets would
// double throughput without inflating remote traffic.

// ScalePoint is one configuration of the scale-up sweep: Cores workload
// cores spread over Sockets sockets of the Table-1 machine.
// CoresPerSocket widens each socket past the Table-1 six (0 keeps the
// measured chip), letting the sweep reach the scaled grids the
// directory refactor unlocked.
type ScalePoint struct {
	Sockets        int
	Cores          int
	CoresPerSocket int
}

// ScaleUpPoints returns the default sweep: 1-6 cores on one socket,
// 2-12 cores split across two sockets, then the scaled four-socket
// 16-core-per-chip grids up to the full 64-core machine.
func ScaleUpPoints() []ScalePoint {
	return []ScalePoint{
		{1, 1, 0}, {1, 2, 0}, {1, 4, 0}, {1, 6, 0},
		{2, 2, 0}, {2, 4, 0}, {2, 6, 0}, {2, 8, 0}, {2, 10, 0}, {2, 12, 0},
		{4, 16, 16}, {4, 32, 16}, {4, 48, 16}, {4, 64, 16},
	}
}

// ScaleUpCell is one measured configuration of a workload's scaling
// curve.
type ScaleUpCell struct {
	Sockets int
	Cores   int
	// ChipIPC is committed instructions per wall-clock cycle summed over
	// all workload cores: the chip-throughput proxy.
	ChipIPC float64
	// Speedup normalizes ChipIPC to the row's first cell.
	Speedup float64
	// MLP is the average memory-level parallelism per core.
	MLP float64
	// BWUtil is off-chip bandwidth utilisation over all channels of all
	// sockets.
	BWUtil float64
	// RemoteHitPKI is remote-socket cache hits per kilo-instruction.
	RemoteHitPKI float64
	// RemoteDRAMFrac is the share of DRAM reads crossing QPI to the
	// other socket's memory controller.
	RemoteDRAMFrac float64
}

// ScaleUpRow is one workload's scaling curve across the sweep points.
type ScaleUpRow struct {
	Label string
	Cells []ScaleUpCell
}

// ScaleUpStudy runs the scale-up sweep serially; see
// (*Runner).ScaleUpStudy.
func ScaleUpStudy(entries []Entry, points []ScalePoint, o Options) ([]ScaleUpRow, error) {
	return NewRunner(1).ScaleUpStudy(entries, points, o)
}

// ScaleUpStudy measures every entry at every sweep point. The whole
// matrix is enumerated up front and submitted as one batch, so the
// worker pool sees all the parallelism at once.
func (r *Runner) ScaleUpStudy(entries []Entry, points []ScalePoint, o Options) ([]ScaleUpRow, error) {
	var sets []entrySet
	for _, p := range points {
		opt := o
		opt.Cores = p.Cores
		opt.Sockets = p.Sockets
		opt.CoresPerSocket = p.CoresPerSocket
		opt.SplitSockets = p.Sockets > 1
		sets = append(sets, entrySets(entries, opt)...)
	}
	results, err := r.measureEntrySets(sets)
	if err != nil {
		return nil, err
	}
	rows := make([]ScaleUpRow, 0, len(entries))
	for i, e := range entries {
		row := ScaleUpRow{Label: e.Label}
		for pi, p := range points {
			res := results[pi*len(entries)+i]
			chip, _, _ := res.MeanMinMax(func(m *Measurement) float64 {
				if m.WindowCycles == 0 {
					return 0
				}
				return float64(m.Commits()) / float64(m.WindowCycles)
			})
			mlp, _, _ := res.MeanMinMax(func(m *Measurement) float64 { return m.MLP() })
			bw, _, _ := res.MeanMinMax(func(m *Measurement) float64 { return m.DRAMUtilization() })
			rh, _, _ := res.MeanMinMax(func(m *Measurement) float64 {
				return 1000 * float64(m.RemoteSocketHit) / float64(m.Commits())
			})
			rd, _, _ := res.MeanMinMax(func(m *Measurement) float64 { return m.RemoteDRAMFrac() })
			cell := ScaleUpCell{
				Sockets: p.Sockets, Cores: p.Cores,
				ChipIPC: chip, MLP: mlp, BWUtil: bw,
				RemoteHitPKI: rh, RemoteDRAMFrac: rd,
			}
			if len(row.Cells) == 0 {
				cell.Speedup = 1
			} else if base := row.Cells[0].ChipIPC; base > 0 {
				cell.Speedup = chip / base
			}
			row.Cells = append(row.Cells, cell)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
