package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// This file is the differential wall around the scalable-directory
// refactor: golden measurement JSON captured from the pre-refactor tree
// (flat uint32 sharer mask, fixed two-socket QPI) is committed under
// testdata/, and every configuration that fits the old 32-core envelope
// must keep producing those exact bytes. The matrix covers all six
// scale-out workloads x {1,2} sockets x {contiguous,sampled}, plus
// every <=32-core configuration variant the claim check (validate.go)
// exercises: SMT, LLC polluters, and split-socket placement.
//
// Regenerate (only when an intentional model change invalidates the
// baseline — never to paper over a diff):
//
//	go test ./internal/core -run TestSharerDifferentialGolden -update-sharer-golden

var updateSharerGolden = flag.Bool("update-sharer-golden", false,
	"rewrite testdata/sharer_golden.json from the current tree")

const sharerGoldenPath = "testdata/sharer_golden.json"

// sharerDiffMatrix enumerates every golden configuration by a stable
// name. The names are the comparison keys, so additions are fine but
// renames invalidate the baseline.
func sharerDiffMatrix() map[string]MeasureRequest {
	reqs := make(map[string]MeasureRequest)
	add := func(name, bench string, o Options) {
		b, ok := FindBench(bench)
		if !ok {
			panic("sharer_diff_test: unknown bench " + bench)
		}
		reqs[name] = MeasureRequest{Bench: b, Options: o}
	}

	// The PR-5 harness matrix: scale-out workloads over one and two
	// sockets, contiguous and sampled measurement.
	for _, b := range ScaleOut() {
		for _, sockets := range []int{1, 2} {
			for _, sampled := range []bool{false, true} {
				name := b.Name + "/sockets=1/contiguous"
				if sockets == 2 {
					name = b.Name + "/sockets=2/contiguous"
				}
				if sampled {
					name = name[:len(name)-len("contiguous")] + "sampled"
				}
				add(name, b.Name, diffOptions(sockets, sampled))
			}
		}
	}

	// The claim-check variants (validate.go) at differential budgets:
	// these walk the SMT, polluter, and split-socket paths through the
	// directory that the plain matrix does not.
	o := diffOptions(1, false)
	oSMT := o
	oSMT.SMT = true
	oPol6 := o
	oPol6.PolluteBytes = 6 << 20
	oSplit := o
	oSplit.SplitSockets = true
	add("claim/PARSEC (blackscholes)", "PARSEC (blackscholes)", o)
	add("claim/SPECint (bitops)", "SPECint (bitops)", o)
	add("claim/TPC-C/split", "TPC-C", oSplit)
	add("claim/Data Serving/smt", "Data Serving", oSMT)
	add("claim/Web Search/pollute6MB", "Web Search", oPol6)
	add("claim/MapReduce/split", "MapReduce", oSplit)
	return reqs
}

// TestSharerDifferentialGolden proves the refactored sharer
// representation and topology model are byte-identical to the seed
// behavior on every configuration inside the old envelope.
func TestSharerDifferentialGolden(t *testing.T) {
	matrix := sharerDiffMatrix()
	got := make(map[string]json.RawMessage, len(matrix))
	names := make([]string, 0, len(matrix))
	for name := range matrix {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		req := matrix[name]
		m, err := MeasureBench(req.Bench, req.Options)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got[name] = b
	}

	if *updateSharerGolden {
		out, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(sharerGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(sharerGoldenPath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden measurements to %s", len(got), sharerGoldenPath)
		return
	}

	raw, err := os.ReadFile(sharerGoldenPath)
	if err != nil {
		t.Fatalf("missing golden baseline (run with -update-sharer-golden on a known-good tree): %v", err)
	}
	var want map[string]json.RawMessage
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	// The golden file stores each measurement indented; compact before
	// comparing so the equality is on JSON values, not whitespace.
	compact := func(r json.RawMessage) string {
		var buf bytes.Buffer
		if err := json.Compact(&buf, r); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	for _, name := range names {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: configuration missing from the golden baseline", name)
			continue
		}
		if compact(got[name]) != compact(w) {
			t.Errorf("%s: measurement drifted from the pre-refactor baseline\nwant = %s\ngot  = %s",
				name, w, got[name])
		}
	}
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("%s: golden configuration no longer produced by the matrix", name)
		}
	}
}
