package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"cloudsuite/internal/obs"
	"cloudsuite/internal/sim/checkpoint"
)

// This file implements the warm-state checkpoint cache: parameter
// sweeps over the same warmed workload fork from one warm image instead
// of re-executing functional warming per configuration (checkpointed
// sampling à la SMARTS/TurboSMARTS live-points). The cache is keyed on
// the warm-relevant subset of the canonicalized options — everything
// that shapes machine state at the warm->measure boundary (benchmark,
// machine, placement, polluters, warm budget, seed) and nothing that
// only shapes the measurement afterwards (measured budget, sampling
// schedule). Configurations that differ only in measurement-side knobs
// therefore share one image; any warm-visible difference yields a
// distinct key. Restored runs are byte-identical to cold runs — the
// differential harness in checkpoint_test.go proves it — so the store,
// like the Runner's memoization cache, changes wall-clock time, never
// results.

// CheckpointStats counts the store's activity.
type CheckpointStats struct {
	// Requests is the number of measurements that consulted the store.
	Requests int64
	// MemoryHits counts requests served by an image already resolved in
	// this process (including waiting on an in-flight warm run).
	MemoryHits int64
	// DiskHits counts images loaded from the checkpoint directory.
	DiskHits int64
	// Saves counts warm images captured by this process.
	Saves int64
	// Failures counts snapshot load/store/restore problems (corrupt
	// files, write errors, mismatched images). A failed image is
	// dropped so subsequent runs warm from cold; benchmark entry points
	// (MeasureBench and everything above it) additionally retry the
	// affected measurement themselves, so failures surface there as
	// wall-clock cost, never as errors or result changes.
	Failures int64
}

// ckptCell is one warm image, possibly still being computed. The first
// requester warms the machine and commits the snapshot at the
// warm->measure boundary; concurrent requesters for the same key wait
// on done and then fork from the image (mid-run singleflight: the cell
// resolves when the producer's warming finishes, not when its whole
// measurement does).
type ckptCell struct {
	done chan struct{}
	snap *checkpoint.Snapshot
}

// CheckpointStore caches warm-state snapshots in memory and, when a
// directory is configured, on disk, so warm images persist across
// processes. All methods are safe for concurrent use.
type CheckpointStore struct {
	dir string

	mu    sync.Mutex
	cells map[string]*ckptCell
	stats CheckpointStats
	met   ckptMetrics
}

// ckptMetrics holds the store's pre-resolved metric handles. All fields
// are nil until SetObserver arms them; nil handles no-op.
type ckptMetrics struct {
	memHits   *obs.Counter
	diskHits  *obs.Counter
	saves     *obs.Counter
	failures  *obs.Counter
	saveBytes *obs.Counter   // serialized image bytes written to disk or memory
	loadBytes *obs.Counter   // serialized image bytes loaded from disk
	saveWall  *obs.Histogram // disk-write wall time per image
	loadWall  *obs.Histogram // disk-load (read + hash verify) wall time per image
}

// SetObserver arms the store with observability sinks: hit/save/failure
// counters, image byte volumes, and disk I/O wall-time histograms land
// in the observer's registry. A pure observer — it never changes which
// image a run forks from. Safe on a nil store; pass nil to disarm.
func (s *CheckpointStore) SetObserver(o *obs.Observer) {
	if s == nil {
		return
	}
	reg := o.Registry()
	s.mu.Lock()
	s.met = ckptMetrics{
		memHits:   reg.Counter("ckpt.hits.memory"),
		diskHits:  reg.Counter("ckpt.hits.disk"),
		saves:     reg.Counter("ckpt.saves"),
		failures:  reg.Counter("ckpt.failures"),
		saveBytes: reg.Counter("ckpt.save_bytes"),
		loadBytes: reg.Counter("ckpt.load_bytes"),
		saveWall:  reg.Histogram("ckpt.save_wall"),
		loadWall:  reg.Histogram("ckpt.load_wall"),
	}
	s.mu.Unlock()
}

// NewCheckpointStore returns a store backed by dir; an empty dir keeps
// images in memory only. The directory is created if missing.
func NewCheckpointStore(dir string) (*CheckpointStore, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("core: creating checkpoint dir: %w", err)
		}
	}
	return &CheckpointStore{dir: dir, cells: map[string]*ckptCell{}}, nil
}

// Dir returns the backing directory ("" for memory-only).
func (s *CheckpointStore) Dir() string { return s.dir }

// Stats returns a snapshot of the store's counters.
func (s *CheckpointStore) Stats() CheckpointStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *CheckpointStore) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".ckpt")
}

// acquire resolves key to either an existing warm image (snap != nil)
// or a commit obligation: the caller must warm the machine itself and
// invoke commit exactly once — with the snapshot taken at the
// warm->measure boundary, or with nil if the run failed before reaching
// it (which releases any waiters to warm on their own).
func (s *CheckpointStore) acquire(key string) (snap *checkpoint.Snapshot, commit func(*checkpoint.Snapshot)) {
	for {
		s.mu.Lock()
		s.stats.Requests++
		if cell, ok := s.cells[key]; ok {
			s.mu.Unlock()
			<-cell.done
			if cell.snap != nil {
				s.mu.Lock()
				s.stats.MemoryHits++
				met := s.met
				s.mu.Unlock()
				met.memHits.Inc()
				return cell.snap, nil
			}
			// The producer failed before the warm boundary and removed
			// the cell; race for the key again.
			continue
		}
		cell := &ckptCell{done: make(chan struct{})}
		s.cells[key] = cell
		s.mu.Unlock()
		// Disk probing happens outside the lock — the files are
		// multi-MB and content-hashed on load, and holding the
		// store-wide mutex across that would serialize unrelated
		// acquires. The in-flight cell already parks other requesters
		// for this key.
		if s.dir != "" {
			loadStart := obs.Now()
			if loaded := s.tryDisk(key); loaded != nil {
				s.mu.Lock()
				cell.snap = loaded
				s.stats.DiskHits++
				met := s.met
				s.mu.Unlock()
				met.diskHits.Inc()
				met.loadBytes.Add(int64(loaded.Size()))
				met.loadWall.Observe(int64(obs.Since(loadStart)))
				close(cell.done)
				return loaded, nil
			}
		}
		return nil, func(snap *checkpoint.Snapshot) { s.commit(key, cell, snap) }
	}
}

// recordFailure counts one snapshot load/store/restore problem in both
// the store's stats and, when armed, the observer's registry.
func (s *CheckpointStore) recordFailure() {
	s.mu.Lock()
	s.stats.Failures++
	met := s.met
	s.mu.Unlock()
	met.failures.Inc()
}

// tryDisk loads and verifies an on-disk image for key. Missing files
// are ordinary misses; corrupt or mismatched files (bad magic, content
// hash, unsupported format version, foreign key) count as failures and
// are deleted — an image that failed verification once will fail it on
// every later probe, so leaving it would re-pay the multi-MB read and
// hash on every process until a fresh save happened to overwrite it.
func (s *CheckpointStore) tryDisk(key string) *checkpoint.Snapshot {
	snap, err := checkpoint.LoadFile(s.path(key))
	if err != nil {
		if !os.IsNotExist(err) {
			s.recordFailure()
			os.Remove(s.path(key))
		}
		return nil
	}
	if snap.Key() != key {
		// A hash collision or a foreign file; never restore from it.
		s.recordFailure()
		os.Remove(s.path(key))
		return nil
	}
	return snap
}

// commit resolves an in-flight cell with the produced snapshot (nil =
// the producer failed before the warm boundary). The map delete is
// guarded by cell identity: an invalidation may already have replaced
// this cell with a newer producer's, which must not be evicted.
func (s *CheckpointStore) commit(key string, cell *ckptCell, snap *checkpoint.Snapshot) {
	s.mu.Lock()
	if snap == nil {
		if s.cells[key] == cell {
			delete(s.cells, key)
		}
		s.mu.Unlock()
		close(cell.done)
		return
	}
	cell.snap = snap
	s.stats.Saves++
	met := s.met
	s.mu.Unlock()
	close(cell.done)
	met.saves.Inc()
	met.saveBytes.Add(int64(snap.Size()))
	if s.dir != "" {
		saveStart := obs.Now()
		err := snap.SaveFile(s.path(key))
		met.saveWall.Observe(int64(obs.Since(saveStart)))
		if err != nil {
			s.recordFailure()
		}
	}
}

// invalidate drops a cached image that failed to restore, so later
// requests re-warm instead of retrying the same bad snapshot. Both the
// cell eviction and the file removal are conditional on still holding
// the offending image, so a fresh replacement from a concurrent
// producer survives — guaranteed within this process (mutex-guarded),
// best-effort across processes (the hash check and the remove are not
// atomic; the worst outcome of losing that race is one redundant
// re-warm, never a wrong result).
func (s *CheckpointStore) invalidate(key string, bad *checkpoint.Snapshot) {
	s.mu.Lock()
	s.stats.Failures++
	met := s.met
	if cell, ok := s.cells[key]; ok && cell.snap == bad {
		delete(s.cells, key)
	}
	s.mu.Unlock()
	met.failures.Inc()
	if s.dir == "" {
		return
	}
	if onDisk, err := checkpoint.LoadFile(s.path(key)); err == nil && onDisk.Hash() == bad.Hash() {
		os.Remove(s.path(key))
	}
}

// checkpointKey names the warm-relevant configuration of a measurement:
// the benchmark stream identity plus every canonical option that shapes
// machine state at the warm->measure boundary. Measurement-side knobs
// (measured budget, sampling schedule) are deliberately absent — runs
// differing only in those fork from the same image. The format version
// is part of the key so stale on-disk layouts miss instead of failing.
func checkpointKey(bench string, c canonicalOptions) string {
	return fmt.Sprintf("v%d|bench=%s|machine=%+v|cores=%d|smt=%t|split=%t|pollute=%d|warmup=%d|seed=%d",
		checkpoint.Version, bench, c.machine, c.cores, c.smt, c.splitSockets,
		c.polluteBytes, c.warmupInsts, c.seed)
}
