package core

import (
	"errors"
	"fmt"

	"cloudsuite/internal/obs"
	"cloudsuite/internal/rng"
	"cloudsuite/internal/sim/cache"
	"cloudsuite/internal/sim/checkpoint"
	"cloudsuite/internal/sim/counters"
	"cloudsuite/internal/sim/engine"
	"cloudsuite/internal/sim/sample"
	"cloudsuite/internal/trace"
	"cloudsuite/internal/workloads"
)

// Sampling configures SMARTS-style interval sampling for a measurement:
// N short timed intervals spread across a longer execution, each
// preceded by functional warming, instead of one contiguous window.
// The zero value keeps the contiguous methodology. Zero fields of an
// enabled spec resolve to defaults derived from MeasureInsts (see
// sample.Spec.Normalize): by default the schedule covers the same
// effective horizon as the contiguous window while measuring a fifth
// of it. TargetRelErr > 0 additionally stops spawning intervals once
// the 95% CI of IPC is within that relative error.
type Sampling = sample.Spec

// Estimate is a sampled metric statistic: mean, standard error, and
// 95% confidence interval (see Measurement.CI and EntryResult.CI).
type Estimate = sample.Estimate

// DefaultSampling returns an enabled sampling spec with the default
// interval count; the per-interval budgets resolve against MeasureInsts
// at canonicalization.
func DefaultSampling() Sampling { return Sampling{Intervals: sample.DefaultIntervals} }

// Options configures one measurement, mirroring the paper's methodology
// (Section 3.1): four cores dedicated to the workload, a ramp-up period
// excluded from measurement, and optional SMT, socket-splitting, and
// cache-polluter variations.
type Options struct {
	// Machine is the simulated server (default: XeonX5670, or TwoSocket
	// when SplitSockets is set).
	Machine *Machine
	// Cores is the number of cores running the workload (paper: 4).
	Cores int
	// SMT runs two workload threads per core.
	SMT bool
	// SplitSockets places half the workload cores on each socket, the
	// configuration used to expose read-write sharing (Figure 6).
	SplitSockets bool
	// Sockets spreads the workload over a multi-socket machine: values
	// >= 2 select the n-socket Table-1 machine (unless Machine is set)
	// and imply SplitSockets placement. 0 or 1 leaves the default
	// single-socket configuration. The NUMA scale-up study sweeps this.
	Sockets int
	// CoresPerSocket, when positive, overrides the Table-1 six-core
	// socket (unless Machine is set), selecting the scaled machine the
	// paper's implications argue for: many smaller cores per socket.
	// Combined with Sockets it spans grids up to 4-8 sockets and
	// 64-256 cores, past the old 32-core ceiling.
	CoresPerSocket int
	// PolluteBytes, when non-zero, dedicates two extra cores to
	// cache-polluting threads that occupy the given amount of LLC
	// (Figure 4's capacity sensitivity methodology).
	PolluteBytes uint64
	// WarmupInsts is the per-thread functional warm-up (ramp-up).
	WarmupInsts int64
	// MeasureInsts is the per-thread measured instruction budget: the
	// contiguous window length, or — when Sampling is enabled — the
	// effective horizon the interval schedule's defaults are derived
	// from.
	MeasureInsts int64
	// Sampling, when enabled, replaces the contiguous window with
	// interval sampling: per-interval counter vectors land in
	// Measurement.Samples, and CI reports confidence intervals.
	Sampling Sampling
	// Seed controls the request streams and datasets. Runs with the same
	// seed are bit-identical: workload threads interleave over shared
	// structures in lockstep with the simulator's deterministic pull
	// order (see internal/trace), so a configuration measures to exactly
	// one result regardless of wall-clock scheduling — the property the
	// Runner's memoization cache and the parallel figure drivers rely
	// on.
	Seed int64
	// Checkpoints, when non-nil, routes the measurement through the
	// warm-state checkpoint store: the run forks from a cached warm
	// image when one exists for this configuration's warm-relevant
	// options, and contributes its own image otherwise (see
	// CheckpointStore). Restored runs are byte-identical to cold runs,
	// so this field is deliberately excluded from the Runner's
	// memoization key — it changes wall-clock time, never results.
	//simlint:ok memokey restored runs are byte-identical to cold runs (differential-tested), so this changes wall-clock only
	Checkpoints *CheckpointStore
	// InvariantChecks, when positive, arms the coherence invariant
	// checker on every n-th memory access (1 = every access); a
	// violation panics. The checker is a pure observer — it can veto a
	// run but never change its counters — so, like Checkpoints, this
	// field is excluded from the memoization key.
	//simlint:ok memokey pure observer: can veto a run by panicking but never changes its counters
	InvariantChecks int
	// Obs, when non-nil, observes the measurement: per-phase wall-time
	// attribution into the observer's registry plus one trace track for
	// the run (see internal/obs). Armed runs are byte-identical to
	// unarmed ones — the differential tests in obs_test.go gate it — so
	// this field is excluded from the memoization key: it changes what
	// is recorded about a run, never the run.
	//simlint:ok memokey pure observer (armed runs byte-identical to unarmed, differential-tested); records wall time, never results
	Obs *obs.Observer
}

// DefaultOptions returns the paper's baseline measurement setup scaled
// to simulation budgets: 4 cores, no SMT, warm-up plus a measured
// window per thread.
func DefaultOptions() Options {
	return Options{
		Cores:        4,
		WarmupInsts:  400_000,
		MeasureInsts: 120_000,
		Seed:         1,
	}
}

// Measurement is the outcome of one run: the counter deltas of the
// measurement window plus derived context.
type Measurement struct {
	// Counters is the summed counter block over the workload cores; its
	// Cycles field is the core-cycle total (window length x cores). In
	// sampled mode it is the sum over the measurement intervals.
	counters.Counters
	// WindowCycles is the measured window length in wall-clock cycles
	// (summed over intervals in sampled mode).
	WindowCycles int64
	// BenchName records the workload.
	BenchName string
	// Samples holds the per-interval counter deltas of a sampled run,
	// aggregated over the workload cores exactly like the top-level
	// Counters (nil for contiguous measurements).
	Samples []IntervalSample

	// warmSource records how the run reached its warm state ("cold" or
	// "checkpoint-fork"). Unexported — and therefore JSON-invisible — on
	// purpose: restored runs are byte-identical to cold runs, and the CI
	// checkpointing job diffs their serialized figures to prove it.
	warmSource string
}

// WarmSource reports how the run reached its warm state: "cold" or
// "checkpoint-fork". Provenance only — the result is identical either
// way — so it feeds progress reporting and metrics, never figures.
func (m *Measurement) WarmSource() string { return m.warmSource }

// IntervalSample is one measurement interval of a sampled run.
type IntervalSample struct {
	// Counters is the interval's counter delta over the workload cores.
	counters.Counters
	// WindowCycles is the interval's length in wall-clock cycles.
	WindowCycles int64
}

// Sampled reports whether the measurement used interval sampling.
func (m *Measurement) Sampled() bool { return len(m.Samples) > 0 }

// asMeasurement views one interval as a standalone Measurement so the
// same metric closures serve aggregates and intervals alike.
func (s *IntervalSample) asMeasurement(bench string) *Measurement {
	return &Measurement{Counters: s.Counters, WindowCycles: s.WindowCycles, BenchName: bench}
}

// CI returns the sample statistics of metric f across the measurement
// intervals: mean, standard error, and 95% confidence interval. For a
// contiguous measurement (or a single interval) it degenerates to a
// zero-width point estimate of the aggregate value.
func (m *Measurement) CI(f func(*Measurement) float64) Estimate {
	if len(m.Samples) < 2 {
		return sample.Point(f(m))
	}
	vals := make([]float64, len(m.Samples))
	for i := range m.Samples {
		vals[i] = f(m.Samples[i].asMeasurement(m.BenchName))
	}
	return sample.FromSamples(vals)
}

// Measure runs one workload instance under the given options.
//
// Option defaulting goes through canonicalize (runner.go), the same
// resolution the Runner's memoization cache keys on: two Options with
// equal canonical forms measure identically by construction.
func Measure(w workloads.Workload, o Options) (*Measurement, error) {
	c := canonicalize(o)
	if err := c.validate(); err != nil {
		return nil, err
	}
	// Run observation (no-op when disarmed): opened before workload
	// startup so setup time is attributed, finished on every exit path.
	ro := o.Obs.StartRun(w.Name(), c.label())
	defer ro.Finish()
	machine := &c.machine

	if c.cores > machine.Mem.TotalCores() ||
		(!c.splitSockets && c.cores > machine.Mem.CoresPerSocket) {
		return nil, fmt.Errorf("core: %d workload cores exceed the %s capacity (%d sockets x %d cores)",
			c.cores, machine.Name, machine.Mem.Sockets, machine.Mem.CoresPerSocket)
	}

	// Thread placement.
	nThreads := c.cores
	if c.smt {
		nThreads *= 2
	}
	coreOf := make([]int, nThreads)
	for i := range coreOf {
		coreOf[i] = placeCore(i%c.cores, c.cores, c.splitSockets, machine.Mem)
	}

	gens := w.Start(nThreads, c.seed)
	defer func() {
		for _, g := range gens {
			g.Close()
		}
	}()
	threads := make([]engine.Thread, 0, nThreads+2)
	for i, g := range gens {
		threads = append(threads, engine.Thread{Gen: g, Core: coreOf[i], Measured: true})
	}

	// Cache polluters: dedicated cores traverse arrays sized to occupy
	// PolluteBytes of LLC, shrinking the capacity available to the
	// workload (Section 3.1). Every socket the workload runs on gets
	// polluted — a multi-socket run has one LLC per socket.
	var polluters []*trace.StepGen
	if c.polluteBytes > 0 {
		pcores, err := polluterCores(coreOf, machine.Mem)
		if err != nil {
			return nil, err
		}
		per := c.polluteBytes / uint64(len(pcores))
		for i, pc := range pcores {
			g := startPolluter(per, uint64(i), c.seed+1000+int64(i))
			polluters = append(polluters, g)
			threads = append(threads, engine.Thread{Gen: g, Core: pc, Measured: false})
		}
		defer func() {
			for _, g := range polluters {
				g.Close()
			}
		}()
	}

	cfg := engine.RunConfig{
		Core:                 machine.Core,
		Mem:                  machine.Mem,
		WarmupInsts:          c.warmupInsts,
		MeasureInsts:         c.measureInsts,
		MaxCycles:            c.measureInsts * int64(nThreads) * 40,
		CheckInvariantsEvery: o.InvariantChecks,
		Obs:                  ro,
	}
	// Live-point capability: a workload that can serialize its shared
	// structures upgrades checkpoints to the live flavor (pure-load
	// restore, no warmup replay) — provided every thread generator is
	// also serializable, which the engine verifies at save time.
	if st, ok := w.(workloads.Stateful); ok {
		cfg.SaveShared = st.SaveShared
		cfg.LoadShared = st.LoadShared
	}
	if c.sampling.Enabled() {
		// Sampled mode: N timed intervals of IntervalInsts each, every
		// interval preceded by WarmInsts of functional warming. The
		// engine's per-window budget and safety net scale to the
		// interval.
		cfg.MeasureInsts = c.sampling.IntervalInsts
		cfg.MaxCycles = c.sampling.IntervalInsts * int64(nThreads) * 40
		cfg.Intervals = c.sampling.Intervals
		// The warming budget splits into functional warming plus a
		// detailed-warming tail (timed execution, counters frozen) so
		// windows open on steady-state pipeline occupancy; the per-
		// interval horizon stays WarmInsts + IntervalInsts.
		cfg.IntervalWarmInsts = c.sampling.FunctionalWarmInsts()
		cfg.DetailWarmInsts = c.sampling.DetailWarmInsts()
		if c.sampling.TargetRelErr > 0 {
			// Adaptive stopping on the target metric (IPC over the
			// workload cores): deterministic, so the interval count a
			// configuration settles on is a pure function of the options.
			target := c.sampling.TargetRelErr
			cfg.StopSampling = func(done []engine.IntervalResult) bool {
				vals := make([]float64, len(done))
				for i := range done {
					agg := aggregateCores(done[i].PerCore, coreOf)
					vals[i] = agg.IPC()
				}
				return sample.Stop(vals, target)
			}
		}
	}
	// Warm-state checkpointing: fork from a cached warm image when one
	// exists for this configuration's warm key, or capture one at the
	// warm->measure boundary for later runs (and for concurrent runs
	// waiting on this warm-up — the store is a mid-run singleflight).
	var ckptKey string
	warmSource := "cold"
	if o.Checkpoints != nil {
		ckptKey = checkpointKey(w.Name(), c)
		snap, commit := o.Checkpoints.acquire(ckptKey)
		if snap != nil {
			cfg.Restore = snap
			warmSource = "checkpoint-fork"
		} else {
			cfg.CheckpointKey = ckptKey
			committed := false
			cfg.Checkpoint = func(s *checkpoint.Snapshot) {
				committed = true
				commit(s)
			}
			// A run that errors before the warm boundary still owes the
			// store a resolution, or waiters would block forever.
			defer func() {
				if !committed {
					commit(nil)
				}
			}()
		}
	}
	ro.SetSource(warmSource)
	res, err := engine.Run(cfg, threads)
	if err != nil {
		if cfg.Restore != nil {
			// Drop the bad image so later requests warm cold instead of
			// retrying it, and tag the error: this run cannot retry
			// itself (its generators are already consumed), but
			// MeasureBench re-measures a fresh instance on this tag.
			o.Checkpoints.invalidate(ckptKey, cfg.Restore)
			return nil, &restoreError{key: ckptKey, err: err}
		}
		return nil, err
	}
	// Aggregate over the workload cores only: polluter cores are part of
	// the machine but not of the measurement (Section 3.1 measures the
	// cores under test).
	total := aggregateCores(res.PerCore, coreOf)
	// DRAM busy/span are chip-wide.
	total.DRAMBusyCycles = res.Total.DRAMBusyCycles
	total.DRAMTotalCycles = res.Total.DRAMTotalCycles
	total.DRAMChannels = res.Total.DRAMChannels
	m := &Measurement{Counters: total, WindowCycles: res.Cycles, BenchName: w.Name(), warmSource: warmSource}
	for _, iv := range res.Intervals {
		agg := aggregateCores(iv.PerCore, coreOf)
		agg.DRAMBusyCycles = iv.DRAMBusyCycles
		agg.DRAMTotalCycles = uint64(iv.Cycles)
		agg.DRAMChannels = res.Total.DRAMChannels
		m.Samples = append(m.Samples, IntervalSample{Counters: agg, WindowCycles: iv.Cycles})
	}
	return m, nil
}

// aggregateCores sums the counter blocks of the distinct workload cores
// in coreOf.
func aggregateCores(perCore []*counters.Counters, coreOf []int) counters.Counters {
	var total counters.Counters
	seen := map[int]bool{}
	for _, c := range coreOf {
		if seen[c] {
			continue
		}
		seen[c] = true
		if pc := perCore[c]; pc != nil {
			total.Add(pc)
		}
	}
	return total
}

// placeCore maps workload-core index cid (0..n-1) to a global core id.
// Single-socket placement uses socket 0's cores in order; split
// placement spreads the n cores over the machine's sockets in
// contiguous even blocks (the first block on socket 0), the
// configuration the paper uses to expose read-write sharing as
// remote-cache hits (Section 3.1).
func placeCore(cid, n int, split bool, mem cache.SystemConfig) int {
	if !split || mem.Sockets < 2 {
		return cid
	}
	per := (n + mem.Sockets - 1) / mem.Sockets
	return (cid/per)*mem.CoresPerSocket + cid%per
}

// polluterCores picks the cores the cache polluters run on: two spare
// cores on a single-socket run (the paper's configuration), or one
// spare core on each socket the workload occupies, so every LLC under
// test is polluted.
func polluterCores(coreOf []int, mem cache.SystemConfig) ([]int, error) {
	used := make(map[int]bool, len(coreOf))
	sockets := map[int]bool{}
	for _, c := range coreOf {
		used[c] = true
		sockets[c/mem.CoresPerSocket] = true
	}
	perSocket := 1
	if len(sockets) == 1 {
		perSocket = 2
	}
	var out []int
	for so := 0; so < mem.Sockets; so++ {
		if !sockets[so] {
			continue
		}
		found := 0
		for local := 0; local < mem.CoresPerSocket && found < perSocket; local++ {
			id := so*mem.CoresPerSocket + local
			if !used[id] {
				out = append(out, id)
				found++
			}
		}
		if found < perSocket {
			return nil, fmt.Errorf("core: no spare cores for polluters on socket %d (%d workload cores on a %d-core socket)",
				so, len(used), mem.CoresPerSocket)
		}
	}
	return out, nil
}

// polluterProg is one cache-polluter thread: it traverses a private
// array in a pseudo-random sequence sized so that accesses miss the
// upper-level caches but hit (and therefore occupy) the LLC. It is
// Stateful, so polluted configurations stay live-point capable.
type polluterProg struct {
	fn    *trace.Func //simlint:ok checkpointcov construction-time code layout
	rnd   *rng.Rand
	lines uint64 //simlint:ok checkpointcov derived from PolluteBytes
	base  uint64 //simlint:ok checkpointcov derived from polluter id
}

func (p *polluterProg) Init(e *trace.Emitter) { e.Call(p.fn) }

func (p *polluterProg) Step(e *trace.Emitter) bool {
	for it := 0; it < 64; it++ {
		// Independent random loads maximise occupancy pressure.
		for k := 0; k < 16; k++ {
			e.Load(p.base+(uint64(p.rnd.Int63n(int64(p.lines))))*64, 8, trace.NoVal, false)
		}
		e.ALUIndep(2)
	}
	return true
}

func (p *polluterProg) SaveState(w *checkpoint.Writer) {
	w.Tag("polluter")
	p.rnd.SaveState(w)
}

func (p *polluterProg) LoadState(rd *checkpoint.Reader) {
	rd.Expect("polluter")
	p.rnd.LoadState(rd)
}

// startPolluter builds one polluter thread's generator.
func startPolluter(bytes uint64, id uint64, seed int64) *trace.StepGen {
	cfg := trace.EmitterConfig{Seed: seed, BlockLen: 8, BranchEntropy: 0}
	layout := trace.NewCodeLayout(0x10_0000+id*0x1_0000, 0x1_0000)
	lines := bytes / 64
	if lines == 0 {
		lines = 1
	}
	return trace.NewStepGen(cfg, &polluterProg{
		fn:    layout.Func("polluter", 64),
		rnd:   rng.New(seed),
		lines: lines,
		base:  uint64(0x20_0000_0000) + id*0x10_0000_0000,
	})
}

// restoreError marks a measurement that failed while starting from a
// cached warm image (as opposed to failing on its own terms).
type restoreError struct {
	key string
	err error
}

func (e *restoreError) Error() string {
	return fmt.Sprintf("core: restoring warm checkpoint: %v", e.err)
}

func (e *restoreError) Unwrap() error { return e.err }

// MeasureBench creates a fresh instance of b and measures it. If a
// cached warm image fails to restore (a corrupt or incompatible
// snapshot that slipped past the integrity checks), Measure has
// already dropped the image; the measurement is retried on a fresh
// instance and warms from cold — determinism guarantees the same
// result either way. (Direct Measure callers surface the restore error
// instead: a consumed workload instance cannot be re-run, but their
// own retry warms cold because the image is gone.)
func MeasureBench(b Bench, o Options) (*Measurement, error) {
	m, err := Measure(b.New(), o)
	if rerr := (*restoreError)(nil); errors.As(err, &rerr) && o.Checkpoints != nil {
		m, err = Measure(b.New(), o)
	}
	if err != nil {
		return nil, fmt.Errorf("core: measuring %s: %w", b.Name, err)
	}
	m.BenchName = b.Name
	return m, nil
}

// EntryResult aggregates an Entry's members: mean plus min/max of a
// metric extracted per member (Figure 3's range bars).
type EntryResult struct {
	Label        string
	Measurements []*Measurement
}

// MeasureEntry measures every member of e.
func MeasureEntry(e Entry, o Options) (*EntryResult, error) {
	r := &EntryResult{Label: e.Label}
	for _, b := range e.Members {
		m, err := MeasureBench(b, o)
		if err != nil {
			return nil, err
		}
		r.Measurements = append(r.Measurements, m)
	}
	return r, nil
}

// MeanMinMax extracts f per member and returns the mean plus the
// minimum and maximum member values — the spread across an entry's
// members (Figure 3's range bars), NOT a confidence interval. For
// statistical intervals over a sampled run use CI.
func (r *EntryResult) MeanMinMax(f func(*Measurement) float64) (mean, min, max float64) {
	if len(r.Measurements) == 0 {
		return 0, 0, 0
	}
	min, max = f(r.Measurements[0]), f(r.Measurements[0])
	var sum float64
	for _, m := range r.Measurements {
		v := f(m)
		sum += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return sum / float64(len(r.Measurements)), min, max
}

// CI returns the entry-level 95% confidence interval of metric f: each
// member contributes its per-interval sample statistics, combined in
// quadrature across the independently-measured members. Contiguous
// members degrade to zero-width point estimates, so the result is a
// plain mean when sampling is off.
func (r *EntryResult) CI(f func(*Measurement) float64) Estimate {
	ests := make([]sample.Estimate, 0, len(r.Measurements))
	for _, m := range r.Measurements {
		ests = append(ests, m.CI(f))
	}
	return sample.Combine(ests)
}
