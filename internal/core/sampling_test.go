package core

import (
	"reflect"
	"strings"
	"testing"
)

// Reduced budgets keep the sampling tests fast; the schedule shapes
// match the defaults (8 intervals over the contiguous horizon).
func samplingTestOptions() Options {
	o := DefaultOptions()
	o.Cores = 2
	// Warming must cover a useful fraction of the largest workload's
	// working set (Data Serving: 128MB) or the contiguous window sits on
	// a cold-miss transient the sampled schedule averages away.
	o.WarmupInsts = 200_000
	o.MeasureInsts = 40_000
	return o
}

// TestSamplingDeterminismSerialVsParallel: with sampling enabled,
// serial and parallel runners must produce identical measurements —
// including the per-interval vectors — for a mixed request batch.
func TestSamplingDeterminismSerialVsParallel(t *testing.T) {
	o := samplingTestOptions()
	o.Sampling = Sampling{Intervals: 6}
	oAdaptive := o
	oAdaptive.Sampling.TargetRelErr = 0.10
	var reqs []MeasureRequest
	for _, name := range []string{"Web Search", "Data Serving", "Media Streaming"} {
		b, ok := FindBench(name)
		if !ok {
			t.Fatalf("bench %q missing", name)
		}
		reqs = append(reqs, MeasureRequest{Bench: b, Options: o})
		reqs = append(reqs, MeasureRequest{Bench: b, Options: oAdaptive})
	}
	serial, err := NewRunner(1).MeasureAll(reqs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewRunner(8).MeasureAll(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("request %d (%s): serial and parallel measurements diverge", i, reqs[i].Bench.Name)
		}
		if len(serial[i].Samples) == 0 {
			t.Errorf("request %d (%s): sampled run carries no interval vector", i, reqs[i].Bench.Name)
		}
	}
}

// TestMemoKeyIncludesSampling: sampling options are part of the cache
// key — distinct schedules simulate separately, identical ones share.
func TestMemoKeyIncludesSampling(t *testing.T) {
	o := samplingTestOptions()
	b, _ := FindBench("SAT Solver")
	r := NewRunner(1)
	oA := o
	oA.Sampling = Sampling{Intervals: 4}
	oB := o
	oB.Sampling = Sampling{Intervals: 6}
	for _, opt := range []Options{o, oA, oB, oA} {
		if _, err := r.MeasureBench(b, opt); err != nil {
			t.Fatal(err)
		}
	}
	s := r.Stats()
	if s.Runs != 3 || s.CacheHits != 1 {
		t.Fatalf("runs/hits = %d/%d, want 3/1 (contiguous, 4-interval, 6-interval, repeat)", s.Runs, s.CacheHits)
	}
}

// TestSamplingSpellingsShareCacheSlot: a spec written with defaults and
// its fully-resolved spelling canonicalize to the same key.
func TestSamplingSpellingsShareCacheSlot(t *testing.T) {
	o := samplingTestOptions()
	short := o
	short.Sampling = Sampling{Intervals: 8}
	long := o
	long.Sampling = short.Sampling.Normalize(o.MeasureInsts)
	if canonicalize(short) != canonicalize(long) {
		t.Fatalf("default and resolved spellings key differently:\n%+v\n%+v",
			canonicalize(short).sampling, canonicalize(long).sampling)
	}
	b, _ := FindBench("MapReduce")
	r := NewRunner(1)
	if _, err := r.MeasureBench(b, short); err != nil {
		t.Fatal(err)
	}
	if _, err := r.MeasureBench(b, long); err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); s.Runs != 1 || s.CacheHits != 1 {
		t.Fatalf("runs/hits = %d/%d, want 1/1", s.Runs, s.CacheHits)
	}
}

// TestContiguousMeanInsideSampledCI: the statistical contract — for two
// workloads the contiguous measurement's IPC lies inside the sampled
// 95% CI, while the sampled run measures a fraction of the
// instructions. (Runs are deterministic per seed, so this is a pinned
// regression, not a flaky statistical assertion.)
func TestContiguousMeanInsideSampledCI(t *testing.T) {
	o := samplingTestOptions()
	os := o
	os.Sampling = Sampling{Intervals: 8}
	for _, name := range []string{"Web Search", "Data Serving"} {
		b, ok := FindBench(name)
		if !ok {
			t.Fatalf("bench %q missing", name)
		}
		contig, err := MeasureBench(b, o)
		if err != nil {
			t.Fatal(err)
		}
		sampled, err := MeasureBench(b, os)
		if err != nil {
			t.Fatal(err)
		}
		ci := sampled.CI(func(m *Measurement) float64 { return m.IPC() })
		if !ci.Contains(contig.IPC()) {
			t.Errorf("%s: contiguous IPC %.4f outside sampled 95%% CI [%.4f, %.4f]",
				name, contig.IPC(), ci.Lo(), ci.Hi())
		}
		if sampled.Commits() > contig.Commits()/3 {
			t.Errorf("%s: sampled run measured %d insts vs contiguous %d — insufficient reduction",
				name, sampled.Commits(), contig.Commits())
		}
		// The aggregate equals the interval sum: no measured work is
		// dropped or double-counted.
		var cyc int64
		var commits uint64
		for _, s := range sampled.Samples {
			cyc += s.WindowCycles
			commits += s.Commits()
		}
		if cyc != sampled.WindowCycles || commits != sampled.Commits() {
			t.Errorf("%s: interval sums (%d cycles, %d commits) disagree with aggregate (%d, %d)",
				name, cyc, commits, sampled.WindowCycles, sampled.Commits())
		}
	}
}

// TestCINarrowsWithIntervalCount: quadrupling the interval count at a
// fixed per-interval budget must shrink the CI roughly like 1/sqrt(N).
func TestCINarrowsWithIntervalCount(t *testing.T) {
	o := samplingTestOptions()
	b, _ := FindBench("Web Search")
	half := func(n int) float64 {
		opt := o
		opt.Sampling = Sampling{Intervals: n, IntervalInsts: 1_000, WarmInsts: 4_000}
		m, err := MeasureBench(b, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.Samples) != n {
			t.Fatalf("measured %d intervals, want %d", len(m.Samples), n)
		}
		return m.CI(func(m *Measurement) float64 { return m.IPC() }).Half
	}
	h4, h16 := half(4), half(16)
	// Ideal contraction is sqrt(4/16) x t-ratio ~ 0.34; allow generous
	// slack for the realized per-interval variance differing across the
	// longer horizon.
	if h16 >= h4*0.75 {
		t.Errorf("CI half-width did not contract ~1/sqrt(N): %.4f (N=4) -> %.4f (N=16)", h4, h16)
	}
}

// TestAdaptiveSamplingStopsEarly: a loose target stops well before the
// interval cap, a zero target runs the full schedule.
func TestAdaptiveSamplingStopsEarly(t *testing.T) {
	o := samplingTestOptions()
	b, _ := FindBench("MapReduce")
	fixed := o
	fixed.Sampling = Sampling{Intervals: 16}
	mf, err := MeasureBench(b, fixed)
	if err != nil {
		t.Fatal(err)
	}
	if len(mf.Samples) != 16 {
		t.Fatalf("fixed schedule ran %d intervals, want 16", len(mf.Samples))
	}
	adaptive := fixed
	adaptive.Sampling.TargetRelErr = 0.25
	ma, err := MeasureBench(b, adaptive)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(ma.Samples); n >= 16 || n < 4 {
		t.Fatalf("adaptive run measured %d intervals, want early stop in [4, 16)", n)
	}
	ci := ma.CI(func(m *Measurement) float64 { return m.IPC() })
	if ci.RelErr() > 0.25 {
		t.Errorf("adaptive run stopped at relerr %.3f > target 0.25", ci.RelErr())
	}
}

// TestMeasureBudgetGuards: non-positive budgets and malformed sampling
// specs error out clearly instead of hanging the engine.
func TestMeasureBudgetGuards(t *testing.T) {
	b, _ := FindBench("Web Search")
	cases := []struct {
		name string
		mut  func(*Options)
		frag string
	}{
		{"negative warmup", func(o *Options) { o.WarmupInsts = -1 }, "WarmupInsts"},
		{"negative measure", func(o *Options) { o.MeasureInsts = -5 }, "MeasureInsts"},
		{"negative intervals", func(o *Options) { o.Sampling = Sampling{Intervals: -2} }, "Sampling"},
		{"negative interval insts", func(o *Options) { o.Sampling = Sampling{Intervals: 4, IntervalInsts: -1} }, "Sampling"},
		{"negative warm insts", func(o *Options) { o.Sampling = Sampling{Intervals: 4, WarmInsts: -1} }, "Sampling"},
		{"negative relerr", func(o *Options) { o.Sampling = Sampling{TargetRelErr: -0.1} }, "Sampling"},
	}
	for _, tc := range cases {
		o := samplingTestOptions()
		tc.mut(&o)
		_, err := MeasureBench(b, o)
		if err == nil {
			t.Errorf("%s: accepted, want error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.frag)
		}
	}
}

// TestEntryResultCI: entry-level CIs combine member estimates; the
// contiguous degenerate case is a zero-width mean.
func TestEntryResultCI(t *testing.T) {
	mk := func(vals ...float64) *Measurement {
		m := &Measurement{}
		for _, v := range vals {
			var s IntervalSample
			s.CommitUser = uint64(v * 1000)
			s.Cycles = 1000
			m.Samples = append(m.Samples, s)
			m.CommitUser += s.CommitUser
			m.Cycles += s.Cycles
		}
		return m
	}
	ipc := func(m *Measurement) float64 { return m.IPC() }
	r := &EntryResult{Measurements: []*Measurement{
		mk(1.0, 1.2, 0.8, 1.0),
		mk(2.0, 2.2, 1.8, 2.0),
	}}
	ci := r.CI(ipc)
	if ci.Mean < 1.45 || ci.Mean > 1.55 {
		t.Errorf("combined mean %.3f, want ~1.5", ci.Mean)
	}
	if ci.Half <= 0 {
		t.Error("combined CI has no width")
	}
	// Contiguous member: point estimate.
	single := &EntryResult{Measurements: []*Measurement{{}}}
	single.Measurements[0].CommitUser = 1500
	single.Measurements[0].Cycles = 1000
	p := single.CI(ipc)
	if p.Half != 0 || p.Mean != 1.5 {
		t.Errorf("contiguous member gave %+v, want zero-width 1.5", p)
	}
}
