package core

import (
	"os"
	"path/filepath"
	"testing"

	"cloudsuite/internal/sim/checkpoint"
	"cloudsuite/internal/trace"
	"cloudsuite/internal/workloads"
)

// saveAll serializes a workload's complete generator half — shared
// structures plus every thread generator — the way a live image does.
func saveAll(t *testing.T, st workloads.Stateful, gens []*trace.StepGen) *checkpoint.Snapshot {
	t.Helper()
	w := checkpoint.NewWriter()
	st.SaveShared(w)
	for _, g := range gens {
		if !g.CanSave() {
			t.Fatal("generator reports CanSave() == false")
		}
		g.SaveState(w)
	}
	return w.Snapshot("roundtrip")
}

// TestWorkloadStateRoundTrip: for every scale-out workload,
// save -> load-into-fresh-instance -> save must reproduce the state
// bytes exactly. This is the workload-local contract behind pure-load
// restore: if a field were dropped or restored approximately, the
// second save would differ.
func TestWorkloadStateRoundTrip(t *testing.T) {
	const threads, seed = 4, 7
	for _, b := range ScaleOut() {
		w := b.New()
		st, ok := w.(workloads.Stateful)
		if !ok {
			t.Errorf("%s: scale-out workload is not live-point capable", b.Name)
			continue
		}
		gens := w.Start(threads, seed)
		// Advance each thread unevenly so the saved state is past the
		// initial conditions and differs per thread.
		buf := make([]trace.Inst, 1024)
		for i, g := range gens {
			for drained := 0; drained < 10_000+3_000*i; {
				n := g.Next(buf)
				if n == 0 {
					t.Fatalf("%s: thread %d stream ended during draining", b.Name, i)
				}
				drained += n
			}
		}
		first := saveAll(t, st, gens)

		// A fresh instance, never advanced, absorbs the saved state...
		w2 := b.New()
		st2 := w2.(workloads.Stateful)
		gens2 := w2.Start(threads, seed)
		rd := first.Reader()
		st2.LoadShared(rd)
		for _, g := range gens2 {
			g.LoadState(rd)
		}
		if err := rd.Err(); err != nil {
			t.Fatalf("%s: loading saved state: %v", b.Name, err)
		}

		// ...and must serialize to the identical bytes.
		second := saveAll(t, st2, gens2)
		if first.Hash() != second.Hash() {
			t.Errorf("%s: save -> load -> save changed the state bytes", b.Name)
		}
		for _, g := range append(gens, gens2...) {
			g.Close()
		}
	}
}

// TestCheckpointReplayFlavorDifferential: the traditional-benchmark
// proxies do not serialize their generator state, so their images use
// the replay flavor — restore fast-forwards fresh generators through
// the warm pull sequence. That path must stay byte-identical to cold
// runs too.
func TestCheckpointReplayFlavorDifferential(t *testing.T) {
	for _, name := range []string{"SPECint (mcf)", "TPC-C"} {
		b, ok := FindBench(name)
		if !ok {
			t.Fatalf("bench %q missing", name)
		}
		if _, live := b.New().(workloads.Stateful); live {
			t.Fatalf("%s: expected a replay-flavor (non-Stateful) workload", name)
		}
		o := diffOptions(1, false)

		cold, err := MeasureBench(b, o)
		if err != nil {
			t.Fatal(err)
		}
		store, err := NewCheckpointStore("")
		if err != nil {
			t.Fatal(err)
		}
		o.Checkpoints = store
		if _, err := MeasureBench(b, o); err != nil {
			t.Fatal(err)
		}
		forked, err := MeasureBench(b, o)
		if err != nil {
			t.Fatal(err)
		}
		if mustJSON(t, forked) != mustJSON(t, cold) {
			t.Fatalf("%s: replay-flavor fork differs from cold run", name)
		}
		if s := store.Stats(); s.Saves != 1 || s.MemoryHits != 1 {
			t.Fatalf("%s: store stats %+v, want 1 save and 1 memory hit", name, s)
		}
	}
}

// TestCheckpointBadImageDeletedFromDisk: an on-disk image that fails
// verification — corrupted payload or stale format version — must be
// deleted by the probe, not left to fail the same multi-MB read and
// hash on every future process.
func TestCheckpointBadImageDeletedFromDisk(t *testing.T) {
	corrupt := func(raw []byte) { raw[len(raw)-1] ^= 0xFF }
	staleVersion := func(raw []byte) {
		// The format version is the uint32 after the 8-byte magic.
		raw[8], raw[9], raw[10], raw[11] = 2, 0, 0, 0
	}
	for name, mangle := range map[string]func([]byte){
		"corrupt-payload": corrupt,
		"stale-version":   staleVersion,
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			store, err := NewCheckpointStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			w := checkpoint.NewWriter()
			w.U64(42)
			if err := w.Snapshot("some-key").SaveFile(store.path("some-key")); err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(store.path("some-key"))
			if err != nil {
				t.Fatal(err)
			}
			mangle(raw)
			if err := os.WriteFile(store.path("some-key"), raw, 0o600); err != nil {
				t.Fatal(err)
			}

			snap, commit := store.acquire("some-key")
			if snap != nil {
				t.Fatal("acquire returned a snapshot from an unverifiable image")
			}
			commit(nil)
			if files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt")); len(files) != 0 {
				t.Fatalf("bad image left on disk: %v", files)
			}
			if s := store.Stats(); s.Failures != 1 {
				t.Fatalf("stats %+v, want the bad image counted as a failure", s)
			}
		})
	}
}
