package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"cloudsuite/internal/obs"
	"cloudsuite/internal/sim/sample"
)

// This file implements the experiment-orchestration layer: a Runner
// that fans measurement requests out across a worker pool and memoizes
// results, so the figure drivers and Validate stop re-running identical
// configurations. Runs are bit-reproducible per seed (the trace layer
// generates instruction streams in lockstep with the simulator), so a
// parallel Runner produces byte-identical figure tables to a serial
// one: the worker count and the cache change wall-clock time, never
// results.

// MeasureRequest names one measurement: a benchmark under options.
type MeasureRequest struct {
	Bench   Bench
	Options Options
}

// ProgressEvent reports one completed measurement of a MeasureAll
// submission.
type ProgressEvent struct {
	// Bench is the benchmark that finished.
	Bench string
	// Done and Total count completed vs submitted requests of the
	// current MeasureAll call.
	Done, Total int
	// Cached marks requests satisfied from the memoization cache (or by
	// waiting on an identical in-flight run) rather than by a fresh
	// simulation.
	Cached bool
	// Source says where the result came from: "memo" (cache or in-flight
	// duplicate), "checkpoint-fork" (fresh run restored from a warm
	// image), or "cold" (fresh run warmed from scratch). Empty when the
	// request errored before its source was established.
	Source string
	// Duration is the request's wall-clock resolution time: simulation
	// time for fresh runs, wait time for memoized ones. Observer-side
	// provenance only (stamped through internal/obs) — it never feeds
	// back into scheduling or results.
	Duration time.Duration
	// Err is the measurement error, if any.
	Err error
}

// ProgressFunc consumes progress events. Calls are serialized across
// the whole Runner, and within one MeasureAll submission Done values
// arrive in strictly increasing order, so a callback may render
// in-place progress lines without tearing.
type ProgressFunc func(ProgressEvent)

// RunnerStats counts the runner's activity.
type RunnerStats struct {
	// Requests is the number of measurements requested.
	Requests int64
	// Runs is the number of simulations actually executed.
	Runs int64
	// CacheHits is the number of requests satisfied without a fresh
	// simulation; Requests == Runs + CacheHits.
	CacheHits int64
	// Errors is the number of executed runs that failed.
	Errors int64
	// MeasuredInsts is the total instruction count committed inside
	// timed measurement windows across executed runs — the
	// counter-bearing work interval sampling reduces (cache hits
	// measure nothing new). Detailed-warming instructions of sampled
	// runs execute under full timing but are not counted here, so
	// wall-clock cost shrinks less than this metric does.
	MeasuredInsts int64
}

// measureKey identifies a measurement up to result equality: the
// benchmark name plus the canonicalized options (defaults resolved, the
// machine resolved to a value). Two requests with equal keys produce
// bit-identical Measurements, which is what licenses memoization.
//
// Benchmarks are identified by name: a custom Bench must use a name
// distinct from any differently-configured benchmark measured through
// the same Runner.
type measureKey struct {
	bench string
	opt   canonicalOptions
}

// canonicalOptions is Options with Measure's defaulting applied and the
// machine held by value, so it is comparable and collision-free.
type canonicalOptions struct {
	machine      Machine
	cores        int
	smt          bool
	splitSockets bool
	polluteBytes uint64
	warmupInsts  int64
	measureInsts int64
	sampling     sample.Spec
	seed         int64
}

// canonicalize is the single defaulting resolution: Measure consumes
// the canonical form directly, so requests spelled differently but
// measured identically share a cache slot by construction — the cache
// key and the measurement semantics cannot drift apart.
func canonicalize(o Options) canonicalOptions {
	c := canonicalOptions{
		cores:        o.Cores,
		smt:          o.SMT,
		splitSockets: o.SplitSockets || o.Sockets >= 2,
		polluteBytes: o.PolluteBytes,
		warmupInsts:  o.WarmupInsts,
		measureInsts: o.MeasureInsts,
		seed:         o.Seed,
	}
	if c.cores <= 0 {
		c.cores = 4
	}
	if c.warmupInsts == 0 {
		c.warmupInsts = DefaultOptions().WarmupInsts
	}
	if c.measureInsts == 0 {
		c.measureInsts = DefaultOptions().MeasureInsts
	}
	// Sampling defaults derive from the resolved contiguous budget, so
	// two spellings of the same schedule share a cache slot. An invalid
	// spec is kept verbatim: it gets its own key and Measure rejects it,
	// rather than colliding with the contiguous configuration.
	if o.Sampling.Validate() == nil {
		c.sampling = o.Sampling.Normalize(c.measureInsts)
	} else {
		c.sampling = o.Sampling
	}
	switch {
	case o.Machine != nil:
		c.machine = *o.Machine
	case o.CoresPerSocket > 0:
		sockets := o.Sockets
		if sockets < 1 {
			sockets = 1
		}
		c.machine = ScaledMachine(sockets, o.CoresPerSocket)
	case o.Sockets >= 2:
		c.machine = MultiSocket(o.Sockets)
	case o.SplitSockets:
		c.machine = TwoSocket()
	default:
		c.machine = XeonX5670()
	}
	return c
}

// label renders the canonical configuration as a short human-readable
// string: the "config" argument of the run-level trace span. Purely
// descriptive — the memoization key stays canonicalOptions itself.
func (c *canonicalOptions) label() string {
	s := fmt.Sprintf("machine=%s cores=%d smt=%t split=%t pollute=%d warm=%d measure=%d seed=%d",
		c.machine.Name, c.cores, c.smt, c.splitSockets,
		c.polluteBytes, c.warmupInsts, c.measureInsts, c.seed)
	if c.sampling.Enabled() {
		s += fmt.Sprintf(" intervals=%d", c.sampling.Intervals)
	}
	return s
}

// validate guards the canonical form against budgets the engine cannot
// schedule (the defaulting above only fills zeros, so negatives and
// malformed sampling specs survive to here and must be rejected with a
// clear error instead of hanging the timed loop or dividing by zero
// downstream).
func (c *canonicalOptions) validate() error {
	if c.warmupInsts < 0 {
		return fmt.Errorf("core: WarmupInsts %d must be >= 0", c.warmupInsts)
	}
	if c.measureInsts <= 0 {
		return fmt.Errorf("core: MeasureInsts %d must be positive", c.measureInsts)
	}
	if err := c.sampling.Validate(); err != nil {
		return fmt.Errorf("core: invalid Sampling: %w", err)
	}
	return nil
}

// cacheCell is one memoized measurement. The first requester computes
// it; concurrent requesters for the same key wait on done (a
// single-flight, so identical configurations never run twice).
type cacheCell struct {
	done chan struct{}
	m    *Measurement
	err  error
}

// Runner orchestrates measurements: a worker pool bounded by a
// configurable width plus a memoization cache keyed on (bench,
// canonicalized options). One Runner can be shared by many experiment
// drivers — cmd/figures submits all selected figures through a single
// Runner so baseline configurations measured by several figures run
// once. All methods are safe for concurrent use, and the width bounds
// the Runner as a whole: concurrent MeasureAll calls share the same
// simulation slots rather than multiplying them.
type Runner struct {
	workers  int
	slots    chan struct{} // Runner-wide semaphore on executing simulations
	progress ProgressFunc
	progMu   sync.Mutex // serializes progress emission Runner-wide

	mu    sync.Mutex
	cache map[measureKey]*cacheCell
	ckpts *CheckpointStore
	ob    *obs.Observer
	met   runnerMetrics

	// statsMu guards stats alone, so Stats() snapshots are consistent
	// without contending on the cache lock, and every transition happens
	// in one critical section: any snapshot satisfies
	// Requests == Runs + CacheHits exactly (the -race hammer test in
	// obs_test.go holds the Runner to this).
	statsMu sync.Mutex
	stats   RunnerStats
}

// runnerMetrics holds the Runner's pre-resolved metric handles. All
// fields are nil when no observer is installed; nil handles no-op, so
// recording sites carry no arming branches.
type runnerMetrics struct {
	requests    *obs.Counter
	memoHits    *obs.Counter
	runsCold    *obs.Counter
	runsFork    *obs.Counter
	errors      *obs.Counter
	measureWall *obs.Histogram // fresh-run simulation wall time
	queueWait   *obs.Histogram // submission -> worker-pickup latency
}

func resolveRunnerMetrics(o *obs.Observer) runnerMetrics {
	reg := o.Registry()
	return runnerMetrics{
		requests:    reg.Counter("runner.requests"),
		memoHits:    reg.Counter("runner.memo_hits"),
		runsCold:    reg.Counter("runner.runs.cold"),
		runsFork:    reg.Counter("runner.runs.checkpoint_fork"),
		errors:      reg.Counter("runner.errors"),
		measureWall: reg.Histogram("runner.measure_wall"),
		queueWait:   reg.Histogram("runner.queue_wait"),
	}
}

// runResult describes how one request was satisfied, for progress
// reporting: provenance and wall-clock cost, never results.
type runResult struct {
	cached bool
	source string
	dur    time.Duration
}

// NewRunner returns a Runner with the given worker-pool width.
// workers <= 0 selects GOMAXPROCS.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		workers: workers,
		slots:   make(chan struct{}, workers),
		cache:   map[measureKey]*cacheCell{},
	}
}

// Workers reports the worker-pool width.
func (r *Runner) Workers() int { return r.workers }

// SetProgress installs a progress callback. Pass nil to disable.
func (r *Runner) SetProgress(f ProgressFunc) {
	r.mu.Lock()
	r.progress = f
	r.mu.Unlock()
}

// SetCheckpoints routes the Runner's measurements through a warm-state
// checkpoint store: configurations that differ only in measurement-side
// knobs fork from one warm image, and (with a disk-backed store) warm
// images persist across processes. Requests whose Options already carry
// a store keep it. Pass nil to disable. Restored runs are byte-
// identical to cold ones, so the store never changes results — only
// wall-clock time.
func (r *Runner) SetCheckpoints(cs *CheckpointStore) {
	r.mu.Lock()
	r.ckpts = cs
	ob := r.ob
	r.mu.Unlock()
	if ob != nil {
		cs.SetObserver(ob)
	}
}

// Checkpoints returns the store installed by SetCheckpoints, if any.
func (r *Runner) Checkpoints() *CheckpointStore {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ckpts
}

// SetObserver arms the Runner with an observability sink: per-request
// counters and wall-time histograms land in the observer's registry,
// and the observer propagates to measurements (Options.Obs) and to the
// checkpoint store, if one is installed. Observation is a pure
// observer — armed runs produce byte-identical results to unarmed ones
// (differential-tested). Pass nil to disarm.
func (r *Runner) SetObserver(o *obs.Observer) {
	r.mu.Lock()
	r.ob = o
	r.met = resolveRunnerMetrics(o)
	cs := r.ckpts
	r.mu.Unlock()
	cs.SetObserver(o)
}

// Observer returns the observer installed by SetObserver, if any.
func (r *Runner) Observer() *obs.Observer {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ob
}

// Stats returns a snapshot of the runner's counters. Every counter
// transition is a single critical section, so any snapshot is
// internally consistent: Requests == Runs + CacheHits holds exactly,
// even while MeasureAll is in flight.
func (r *Runner) Stats() RunnerStats {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.stats
}

func (r *Runner) emit(ev ProgressEvent) {
	r.mu.Lock()
	f := r.progress
	r.mu.Unlock()
	if f != nil {
		f(ev)
	}
}

// MeasureAll measures every request, fanning them out across the worker
// pool, and returns results in request order: results[i] belongs to
// reqs[i]. Duplicate requests (and requests matching earlier cached
// runs) are satisfied from the memoization cache. On error the first
// failure in request order is returned; because measurements are
// deterministic, which error that is does not depend on scheduling.
func (r *Runner) MeasureAll(reqs []MeasureRequest) ([]*Measurement, error) {
	n := len(reqs)
	results := make([]*Measurement, n)
	errs := make([]error, n)

	// Progress is reported under the Runner-wide progMu, which also
	// owns this call's counter: callbacks never run concurrently (even
	// from concurrent MeasureAll calls on a shared Runner) and within
	// this submission Done never goes backwards, so the final event is
	// the last one this submission delivers.
	var doneCount int
	report := func(req MeasureRequest, rr runResult, err error) {
		r.progMu.Lock()
		doneCount++
		r.emit(ProgressEvent{
			Bench: req.Bench.Name, Done: doneCount, Total: n,
			Cached: rr.cached, Source: rr.source, Duration: rr.dur, Err: err,
		})
		r.progMu.Unlock()
	}

	// Dispatch only the first occurrence of each key to the pool: a
	// duplicate would park its worker on the identical in-flight run
	// instead of picking up distinct queued work. Duplicates resolve
	// against the cache once the unique set has completed.
	seen := map[measureKey]bool{}
	var uniq, dups []int
	for i, req := range reqs {
		k := measureKey{bench: req.Bench.Name, opt: canonicalize(req.Options)}
		if seen[k] {
			dups = append(dups, i)
		} else {
			seen[k] = true
			uniq = append(uniq, i)
		}
	}

	// Queue-wait latency: every unique request stamps the submission
	// boundary; the histogram records how long it sat before a worker
	// picked it up (observer-side wall clock through internal/obs).
	r.mu.Lock()
	met := r.met
	r.mu.Unlock()
	submitted := obs.Now()

	workers := r.workers
	if workers > len(uniq) {
		workers = len(uniq)
	}
	if workers <= 1 {
		for _, i := range uniq {
			met.queueWait.Observe(int64(obs.Since(submitted)))
			m, rr, err := r.measureOne(reqs[i])
			results[i], errs[i] = m, err
			report(reqs[i], rr, err)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					met.queueWait.Observe(int64(obs.Since(submitted)))
					req := reqs[i]
					m, rr, err := r.measureOne(req)
					results[i], errs[i] = m, err
					report(req, rr, err)
				}
			}()
		}
		for _, i := range uniq {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, i := range dups {
		m, rr, err := r.measureOne(reqs[i])
		results[i], errs[i] = m, err
		report(reqs[i], rr, err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// measureOne resolves one request against the cache, running the
// simulation if this is the first request for its key. It reports how
// the result was obtained (cache vs fresh, warm source, wall time).
func (r *Runner) measureOne(req MeasureRequest) (*Measurement, runResult, error) {
	start := obs.Now()
	key := measureKey{bench: req.Bench.Name, opt: canonicalize(req.Options)}
	r.mu.Lock()
	met := r.met
	ob := r.ob
	cell, ok := r.cache[key]
	if ok {
		r.mu.Unlock()
		r.statsMu.Lock()
		r.stats.Requests++
		r.stats.CacheHits++
		r.statsMu.Unlock()
		met.requests.Inc()
		met.memoHits.Inc()
		<-cell.done
		rr := runResult{cached: true, source: "memo", dur: obs.Since(start)}
		if cell.err != nil {
			return nil, rr, cell.err
		}
		m := *cell.m // copy so callers cannot corrupt the cache
		return &m, rr, nil
	}
	cell = &cacheCell{done: make(chan struct{})}
	r.cache[key] = cell
	ckpts := r.ckpts
	r.mu.Unlock()
	r.statsMu.Lock()
	r.stats.Requests++
	r.stats.Runs++
	r.statsMu.Unlock()
	met.requests.Inc()

	opts := req.Options
	if opts.Checkpoints == nil {
		opts.Checkpoints = ckpts
	}
	if opts.Obs == nil {
		opts.Obs = ob
	}

	// A slot is held only while the simulation executes — never while
	// waiting on another cell — so the Runner-wide bound cannot
	// deadlock. (A run may park briefly on the checkpoint store while a
	// sibling finishes warming the shared image; the warmer holds its
	// own slot and resolves the wait at its warm boundary, never the
	// other way around, so that wait cannot cycle either.)
	r.slots <- struct{}{}
	runStart := obs.Now()
	cell.m, cell.err = MeasureBench(req.Bench, opts)
	met.measureWall.Observe(int64(obs.Since(runStart)))
	<-r.slots
	r.statsMu.Lock()
	if cell.err != nil {
		r.stats.Errors++
	} else {
		r.stats.MeasuredInsts += int64(cell.m.Commits())
	}
	r.statsMu.Unlock()
	rr := runResult{}
	if cell.err != nil {
		met.errors.Inc()
	} else {
		rr.source = cell.m.WarmSource()
		if rr.source == "checkpoint-fork" {
			met.runsFork.Inc()
		} else {
			met.runsCold.Inc()
		}
	}
	close(cell.done)
	rr.dur = obs.Since(start)
	if cell.err != nil {
		return nil, rr, cell.err
	}
	m := *cell.m
	return &m, rr, nil
}

// MeasureBench measures one benchmark through the runner's cache.
func (r *Runner) MeasureBench(b Bench, o Options) (*Measurement, error) {
	m, _, err := r.measureOne(MeasureRequest{Bench: b, Options: o})
	return m, err
}

// MeasureEntry measures every member of e through the worker pool.
func (r *Runner) MeasureEntry(e Entry, o Options) (*EntryResult, error) {
	res, err := r.measureEntrySets([]entrySet{{e: e, o: o}})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// entrySet is one (entry, options) pair of a driver's enumeration.
type entrySet struct {
	e Entry
	o Options
}

// measureEntrySets enumerates every member measurement of every set,
// submits them as one MeasureAll batch, and reassembles per-set
// EntryResults in set order. This is the substrate the figure drivers
// stand on: they enumerate their full request matrix up front so the
// worker pool sees all the parallelism at once.
func (r *Runner) measureEntrySets(sets []entrySet) ([]*EntryResult, error) {
	var reqs []MeasureRequest
	for _, s := range sets {
		for _, b := range s.e.Members {
			reqs = append(reqs, MeasureRequest{Bench: b, Options: s.o})
		}
	}
	ms, err := r.MeasureAll(reqs)
	if err != nil {
		return nil, err
	}
	out := make([]*EntryResult, len(sets))
	pos := 0
	for i, s := range sets {
		er := &EntryResult{Label: s.e.Label}
		for range s.e.Members {
			er.Measurements = append(er.Measurements, ms[pos])
			pos++
		}
		out[i] = er
	}
	return out, nil
}
