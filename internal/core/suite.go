package core

import (
	"cloudsuite/internal/workloads"
	"cloudsuite/internal/workloads/dataserving"
	"cloudsuite/internal/workloads/mapreduce"
	"cloudsuite/internal/workloads/satsolver"
	"cloudsuite/internal/workloads/streaming"
	"cloudsuite/internal/workloads/traditional"
	"cloudsuite/internal/workloads/webfrontend"
	"cloudsuite/internal/workloads/websearch"
)

// Bench is one benchmark of the suite: a named factory for workload
// instances. A fresh instance is created per measurement so runs do not
// share warmed state.
type Bench struct {
	// Name is the benchmark's display name.
	Name string
	// Class is the workload class.
	Class workloads.Class
	// New creates a fresh workload instance.
	New func() workloads.Workload
}

// Entry is one bar position in the paper's figures: either a single
// benchmark (the scale-out and server workloads) or a group reported as
// an average with min/max range bars (PARSEC and SPECint cpu/mem).
type Entry struct {
	// Label is the bar label.
	Label string
	// Class drives figure grouping/ordering.
	Class workloads.Class
	// Members are the benchmarks aggregated under this label.
	Members []Bench
	// ShowOS marks entries whose OS component the paper reports
	// separately (Figure 2's OS bars).
	ShowOS bool
}

// ScaleOut returns the six CloudSuite scale-out benchmarks.
func ScaleOut() []Bench {
	return []Bench{
		{Name: "Data Serving", Class: workloads.ScaleOut, New: func() workloads.Workload { return dataserving.New(dataserving.DefaultConfig()) }},
		{Name: "MapReduce", Class: workloads.ScaleOut, New: func() workloads.Workload { return mapreduce.New(mapreduce.DefaultConfig()) }},
		{Name: "Media Streaming", Class: workloads.ScaleOut, New: func() workloads.Workload { return streaming.New(streaming.DefaultConfig()) }},
		{Name: "SAT Solver", Class: workloads.ScaleOut, New: func() workloads.Workload { return satsolver.New(satsolver.DefaultConfig()) }},
		{Name: "Web Frontend", Class: workloads.ScaleOut, New: func() workloads.Workload { return webfrontend.New(webfrontend.DefaultConfig()) }},
		{Name: "Web Search", Class: workloads.ScaleOut, New: func() workloads.Workload { return websearch.New(websearch.DefaultConfig()) }},
	}
}

// Traditional returns the comparison benchmarks: PARSEC and SPECint
// members plus the traditional server workloads.
func Traditional() []Bench {
	var out []Bench
	mk := func(w func() workloads.Workload, name string, class workloads.Class) {
		out = append(out, Bench{Name: name, Class: class, New: w})
	}
	mk(traditional.NewPARSECBlackscholes, "PARSEC (blackscholes)", workloads.Parallel)
	mk(traditional.NewPARSECSwaptions, "PARSEC (swaptions)", workloads.Parallel)
	mk(traditional.NewPARSECCanneal, "PARSEC (canneal)", workloads.Parallel)
	mk(traditional.NewPARSECStreamcluster, "PARSEC (streamcluster)", workloads.Parallel)
	mk(traditional.NewSPECintBitops, "SPECint (bitops)", workloads.Desktop)
	mk(traditional.NewSPECintCompile, "SPECint (compile)", workloads.Desktop)
	mk(traditional.NewSPECintDP, "SPECint (dp)", workloads.Desktop)
	mk(traditional.NewSPECintMCF, "SPECint (mcf)", workloads.Desktop)
	mk(traditional.NewSPECintEvents, "SPECint (events)", workloads.Desktop)
	mk(traditional.NewSPECintStream, "SPECint (stream)", workloads.Desktop)
	mk(traditional.NewSPECweb, "SPECweb09", workloads.Server)
	mk(traditional.NewTPCC, "TPC-C", workloads.Server)
	mk(traditional.NewTPCE, "TPC-E", workloads.Server)
	mk(traditional.NewWebBackend, "Web Backend", workloads.Server)
	return out
}

// AllBenches returns every benchmark in the suite.
func AllBenches() []Bench { return append(ScaleOut(), Traditional()...) }

// FindBench returns the benchmark with the given name, or false.
func FindBench(name string) (Bench, bool) {
	for _, b := range AllBenches() {
		if b.Name == name {
			return b, true
		}
	}
	return Bench{}, false
}

func group(label string, class workloads.Class, showOS bool, names ...string) Entry {
	e := Entry{Label: label, Class: class, ShowOS: showOS}
	for _, n := range names {
		b, ok := FindBench(n)
		if !ok {
			panic("core: unknown bench " + n)
		}
		e.Members = append(e.Members, b)
	}
	return e
}

// FigureEntries returns the bar positions of the paper's figures:
// the six scale-out workloads, then the traditional benchmarks with
// PARSEC and SPECint folded into cpu/mem group averages.
func FigureEntries() []Entry {
	return []Entry{
		group("Data Serving", workloads.ScaleOut, true, "Data Serving"),
		group("MapReduce", workloads.ScaleOut, true, "MapReduce"),
		group("Media Streaming", workloads.ScaleOut, true, "Media Streaming"),
		group("SAT Solver", workloads.ScaleOut, false, "SAT Solver"),
		group("Web Frontend", workloads.ScaleOut, true, "Web Frontend"),
		group("Web Search", workloads.ScaleOut, true, "Web Search"),
		group("PARSEC (cpu)", workloads.Parallel, false, "PARSEC (blackscholes)", "PARSEC (swaptions)"),
		group("PARSEC (mem)", workloads.Parallel, false, "PARSEC (canneal)", "PARSEC (streamcluster)"),
		group("SPECint (cpu)", workloads.Desktop, false, "SPECint (bitops)", "SPECint (compile)", "SPECint (dp)"),
		group("SPECint (mem)", workloads.Desktop, false, "SPECint (mcf)", "SPECint (events)", "SPECint (stream)"),
		group("SPECweb09", workloads.Server, true, "SPECweb09"),
		group("TPC-C", workloads.Server, true, "TPC-C"),
		group("TPC-E", workloads.Server, true, "TPC-E"),
		group("Web Backend", workloads.Server, true, "Web Backend"),
	}
}

// ScaleOutEntries returns just the scale-out bar positions.
func ScaleOutEntries() []Entry { return FigureEntries()[:6] }
