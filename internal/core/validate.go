package core

import "fmt"

// Claim is one of the paper's qualitative findings, checked against
// fresh measurements. Claims are the reproduction contract: absolute
// counter values depend on dataset scaling, but these directional
// statements must hold for the reproduction to be meaningful.
type Claim struct {
	// ID names the claim (section reference).
	ID string
	// Statement is the paper's finding in one sentence.
	Statement string
	// Holds reports whether the measurement supports the claim.
	Holds bool
	// Detail carries the measured numbers behind the verdict.
	Detail string
}

// Validate measures a minimal set of workloads serially and checks the
// paper's headline claims; see (*Runner).Validate.
func Validate(o Options) ([]Claim, error) {
	return NewRunner(1).Validate(o)
}

// Validate measures a minimal set of workloads and checks the paper's
// headline claims. It is the programmatic counterpart of the
// integration test suite, usable from tools and CI. The full
// measurement set is enumerated up front and submitted as one batch,
// so the runner's pool and cache apply (several configurations are
// shared with the figure drivers).
func (r *Runner) Validate(o Options) ([]Claim, error) {
	var claims []Claim
	add := func(id, statement string, holds bool, detail string, args ...any) {
		claims = append(claims, Claim{
			ID: id, Statement: statement, Holds: holds,
			Detail: fmt.Sprintf(detail, args...),
		})
	}

	// The configuration variants the claims compare.
	oSMT := o
	oSMT.SMT = true
	oPol := o
	if o.Cores < 4 {
		oPol.Cores = 4
	}
	oPol6 := oPol
	oPol6.PolluteBytes = 6 << 20
	oSplit := o
	oSplit.SplitSockets = true

	reqs, err := requestsFor([]namedOptions{
		{"Web Search", o},
		{"Data Serving", o},
		{"Media Streaming", o},
		{"PARSEC (blackscholes)", o},
		{"SPECint (bitops)", o},
		{"Data Serving", oSMT},
		{"Web Search", oPol},
		{"Web Search", oPol6},
		{"MapReduce", oSplit},
		{"TPC-C", oSplit},
	})
	if err != nil {
		return nil, err
	}
	ms0, err := r.MeasureAll(reqs)
	if err != nil {
		return nil, err
	}
	ws, ds, ms, bs, bit := ms0[0], ms0[1], ms0[2], ms0[3], ms0[4]
	dsSMT, wsBase, wsPol := ms0[5], ms0[6], ms0[7]
	mr, tpcc := ms0[8], ms0[9]

	// Section 4 / Figure 1.
	add("S4-stalls",
		"Scale-out workloads stall the majority of cycles, mostly on memory",
		ws.StallFrac() > 0.45 && ws.MemCycleFrac() > 0.4 && bs.StallFrac() < 0.5,
		"Web Search stall %.0f%% mem %.0f%%; blackscholes stall %.0f%%",
		100*ws.StallFrac(), 100*ws.MemCycleFrac(), 100*bs.StallFrac())

	// Section 4.1 / Figure 2.
	add("S4.1-icache",
		"Scale-out instruction working sets far exceed the L1-I, unlike desktop/parallel code",
		ws.L1IMPKIUser() > 10 && bs.L1IMPKIUser() < 2,
		"Web Search L1-I MPKI %.1f vs blackscholes %.1f",
		ws.L1IMPKIUser(), bs.L1IMPKIUser())

	// Section 4.2 / Figure 3.
	add("S4.2-ilp",
		"Scale-out IPC is modest on a 4-wide core; cpu-intensive suites reach high IPC",
		ws.IPC() < 1.6 && bit.IPC() > 1.8,
		"Web Search IPC %.2f vs SPECint bitops %.2f", ws.IPC(), bit.IPC())
	add("S4.2-mlp",
		"Scale-out MLP is low despite 48-entry load queues",
		ds.MLP() < 3.2 && ws.MLP() < 3.2,
		"Data Serving MLP %.2f, Web Search MLP %.2f", ds.MLP(), ws.MLP())

	add("S4.2-smt",
		"SMT yields large gains for independent-request scale-out workloads",
		dsSMT.IPC() > ds.IPC()*1.25,
		"Data Serving IPC %.2f -> %.2f with SMT", ds.IPC(), dsSMT.IPC())

	// Section 4.3 / Figure 4.
	retention := wsPol.UserIPC() / wsBase.UserIPC()
	add("S4.3-llc",
		"Scale-out performance is insensitive to LLC capacity above a few megabytes",
		retention > 0.75,
		"Web Search retains %.0f%% of user-IPC at 6MB effective LLC", 100*retention)

	// Section 4.4 / Figures 6 and 7.
	add("S4.4-sharing",
		"Scale-out applications share almost no read-write data; OLTP shares actively",
		mr.SharedRWFracUser() < 0.01 && tpcc.SharedRWFracUser() > mr.SharedRWFracUser(),
		"MapReduce app sharing %.2f%% vs TPC-C %.2f%%",
		100*mr.SharedRWFracUser(), 100*tpcc.SharedRWFracUser())
	add("S4.4-bandwidth",
		"Off-chip bandwidth is over-provisioned; Media Streaming is among the heaviest scale-out consumers",
		ms.DRAMUtilization() >= 0.85*ws.DRAMUtilization() &&
			ms.DRAMUtilization() >= 0.85*ds.DRAMUtilization() && ds.DRAMUtilization() < 0.4,
		"Streaming %.0f%%, Web Search %.0f%%, Data Serving %.0f%% utilization",
		100*ms.DRAMUtilization(), 100*ws.DRAMUtilization(), 100*ds.DRAMUtilization())

	return claims, nil
}

// namedOptions pairs a registered benchmark name with options.
type namedOptions struct {
	name string
	o    Options
}

// requestsFor resolves benchmark names into measurement requests.
func requestsFor(specs []namedOptions) ([]MeasureRequest, error) {
	reqs := make([]MeasureRequest, len(specs))
	for i, s := range specs {
		b, ok := FindBench(s.name)
		if !ok {
			return nil, fmt.Errorf("core: bench %q not registered", s.name)
		}
		reqs[i] = MeasureRequest{Bench: b, Options: s.o}
	}
	return reqs, nil
}

// AllHold reports whether every claim holds.
func AllHold(claims []Claim) bool {
	for _, c := range claims {
		if !c.Holds {
			return false
		}
	}
	return true
}
