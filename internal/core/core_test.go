package core

import (
	"strings"
	"testing"

	"cloudsuite/internal/workloads"
)

// fastOptions returns a small-budget configuration for tests.
func fastOptions() Options {
	return Options{Cores: 2, WarmupInsts: 40_000, MeasureInsts: 15_000, Seed: 1}
}

func TestXeonX5670MatchesTable1(t *testing.T) {
	m := XeonX5670()
	if m.Core.Width != 4 || m.Core.ROB != 128 || m.Core.RS != 36 {
		t.Errorf("core config deviates from Table 1: %+v", m.Core)
	}
	if m.Core.LoadQ != 48 || m.Core.StoreQ != 32 {
		t.Errorf("LSQ deviates from Table 1: %d/%d", m.Core.LoadQ, m.Core.StoreQ)
	}
	if m.Mem.L1I.SizeBytes != 32<<10 || m.Mem.L2.SizeBytes != 256<<10 || m.Mem.LLC.SizeBytes != 12<<20 {
		t.Errorf("cache sizes deviate from Table 1")
	}
	if m.Mem.LLC.LatencyCycles != 29 {
		t.Errorf("LLC latency %d, want 29", m.Mem.LLC.LatencyCycles)
	}
	if m.Mem.DRAM.Channels != 3 {
		t.Errorf("DRAM channels %d, want 3", m.Mem.DRAM.Channels)
	}
	if m.Mem.CoresPerSocket != 6 {
		t.Errorf("cores per socket %d, want 6", m.Mem.CoresPerSocket)
	}
}

func TestTable1Rendering(t *testing.T) {
	rows := Table1(XeonX5670())
	if len(rows) != 10 {
		t.Fatalf("Table 1 has %d rows, want 10", len(rows))
	}
	joined := ""
	for _, r := range rows {
		joined += r.Parameter + "=" + r.Value + ";"
	}
	for _, want := range []string{"128 entries", "48/32 entries", "36 entries", "12MB", "32KB", "256KB"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestTwoSocketConfig(t *testing.T) {
	m := TwoSocket()
	if m.Mem.Sockets != 2 {
		t.Fatalf("sockets = %d", m.Mem.Sockets)
	}
}

func TestSuiteComposition(t *testing.T) {
	so := ScaleOut()
	if len(so) != 6 {
		t.Fatalf("scale-out suite has %d members, want 6", len(so))
	}
	names := map[string]bool{}
	for _, b := range AllBenches() {
		if names[b.Name] {
			t.Errorf("duplicate bench %q", b.Name)
		}
		names[b.Name] = true
	}
	for _, want := range []string{"Data Serving", "MapReduce", "Media Streaming",
		"SAT Solver", "Web Frontend", "Web Search", "SPECweb09", "TPC-C", "TPC-E", "Web Backend"} {
		if !names[want] {
			t.Errorf("suite missing %q", want)
		}
	}
}

func TestFigureEntriesCoverAllClasses(t *testing.T) {
	entries := FigureEntries()
	if len(entries) != 14 {
		t.Fatalf("figure entries = %d, want 14", len(entries))
	}
	classes := map[workloads.Class]bool{}
	for _, e := range entries {
		classes[e.Class] = true
		if len(e.Members) == 0 {
			t.Errorf("entry %q has no members", e.Label)
		}
	}
	for _, c := range []workloads.Class{workloads.ScaleOut, workloads.Desktop, workloads.Parallel, workloads.Server} {
		if !classes[c] {
			t.Errorf("no entry of class %v", c)
		}
	}
}

func TestFindBench(t *testing.T) {
	if _, ok := FindBench("Web Search"); !ok {
		t.Fatal("Web Search not found")
	}
	if _, ok := FindBench("nope"); ok {
		t.Fatal("nonexistent bench found")
	}
}

func TestMeasureProducesPlausibleCounters(t *testing.T) {
	b, _ := FindBench("Web Search")
	m, err := MeasureBench(b, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.Commits() < 25_000 {
		t.Fatalf("committed only %d instructions", m.Commits())
	}
	if ipc := m.IPC(); ipc <= 0.05 || ipc > 4 {
		t.Fatalf("IPC %f out of range", ipc)
	}
	if m.StallFrac() <= 0 || m.StallFrac() >= 1 {
		t.Fatalf("stall fraction %f out of range", m.StallFrac())
	}
	if m.CommitOS == 0 {
		t.Fatal("no OS instructions measured for a network workload")
	}
}

func TestMeasureIsStableAcrossRuns(t *testing.T) {
	// Workload threads run as concurrent goroutines sharing real data
	// structures, so traces are not bit-identical across runs (neither
	// were the paper's hardware measurements). Instruction budgets are
	// exact and cycle counts must agree within a small tolerance.
	b, _ := FindBench("Data Serving")
	o := fastOptions()
	a, err := MeasureBench(b, o)
	if err != nil {
		t.Fatal(err)
	}
	c, err := MeasureBench(b, o)
	if err != nil {
		t.Fatal(err)
	}
	// Commit totals can overshoot the per-thread budget by up to a few
	// commit groups depending on interleaving; they must agree closely.
	cr := float64(a.Commits()) / float64(c.Commits())
	if cr < 0.99 || cr > 1.01 {
		t.Fatalf("commit totals differ: %d vs %d", a.Commits(), c.Commits())
	}
	ratio := float64(a.Cycles) / float64(c.Cycles)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("cycle counts unstable: %d vs %d", a.Cycles, c.Cycles)
	}
}

func TestSMTOptionRunsTwoThreadsPerCore(t *testing.T) {
	b, _ := FindBench("SAT Solver")
	o := fastOptions()
	base, err := MeasureBench(b, o)
	if err != nil {
		t.Fatal(err)
	}
	o.SMT = true
	smt, err := MeasureBench(b, o)
	if err != nil {
		t.Fatal(err)
	}
	if smt.IPC() <= base.IPC() {
		t.Fatalf("SMT gave no IPC benefit: %.2f vs %.2f", smt.IPC(), base.IPC())
	}
}

func TestPolluterReducesUserIPCOfCacheSensitiveWorkload(t *testing.T) {
	b, _ := FindBench("SPECint (mcf)")
	o := fastOptions()
	base, err := MeasureBench(b, o)
	if err != nil {
		t.Fatal(err)
	}
	o.PolluteBytes = 8 << 20 // take 8MB of the 12MB LLC
	pol, err := MeasureBench(b, o)
	if err != nil {
		t.Fatal(err)
	}
	if pol.UserIPC() >= base.UserIPC() {
		t.Fatalf("polluters did not hurt mcf: %.3f vs %.3f", pol.UserIPC(), base.UserIPC())
	}
}

func TestSplitSocketsExposesRemoteHits(t *testing.T) {
	b, _ := FindBench("TPC-C")
	o := fastOptions()
	o.Cores = 2
	o.SplitSockets = true
	m, err := MeasureBench(b, o)
	if err != nil {
		t.Fatal(err)
	}
	if m.RemoteSocketHit == 0 {
		t.Fatal("no remote-socket hits in a split-socket OLTP run")
	}
	if m.SharedRWHitUser == 0 {
		t.Fatal("no application read-write sharing for TPC-C")
	}
}

func TestPollutersRequireSpareCores(t *testing.T) {
	b, _ := FindBench("Web Search")
	o := fastOptions()
	o.Cores = 6 // uses the whole socket
	o.PolluteBytes = 4 << 20
	if _, err := MeasureBench(b, o); err == nil {
		t.Fatal("expected error when no spare cores exist for polluters")
	}
}

func TestEntryStat(t *testing.T) {
	r := &EntryResult{Measurements: []*Measurement{
		{BenchName: "a"}, {BenchName: "b"}, {BenchName: "c"},
	}}
	vals := map[string]float64{"a": 1, "b": 3, "c": 2}
	mean, lo, hi := r.MeanMinMax(func(m *Measurement) float64 { return vals[m.BenchName] })
	if mean != 2 || lo != 1 || hi != 3 {
		t.Fatalf("stat = %f/%f/%f", mean, lo, hi)
	}
}

func TestScaleOutProcessorConfig(t *testing.T) {
	m := ScaleOutProcessor()
	x := XeonX5670()
	if m.Core.Width >= x.Core.Width {
		t.Error("optimized core should be narrower")
	}
	if m.Mem.LLC.SizeBytes >= x.Mem.LLC.SizeBytes {
		t.Error("optimized LLC should be smaller")
	}
	if m.Mem.CoresPerSocket <= x.Mem.CoresPerSocket {
		t.Error("optimized chip should host more cores")
	}
	if m.Mem.DRAM.Channels >= x.Mem.DRAM.Channels {
		t.Error("optimized chip should scale back memory channels")
	}
	if AreaUnits(m) > AreaUnits(x)*1.2 {
		t.Errorf("optimized chip area %.1f should not exceed conventional %.1f",
			AreaUnits(m), AreaUnits(x))
	}
}

func TestImplicationsDensityGain(t *testing.T) {
	// The headline implication: the scale-out-optimized design delivers
	// higher computational density on a scale-out workload.
	e := ScaleOutEntries()[5] // Web Search
	o := fastOptions()
	rows, err := Implications([]Entry{e}, o)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.OptDensity <= r.ConvDensity {
		t.Fatalf("density did not improve: conv %.3f vs opt %.3f", r.ConvDensity, r.OptDensity)
	}
	if r.OptChipThroughput <= r.ConvChipThroughput {
		t.Fatalf("chip throughput did not improve: %.2f vs %.2f",
			r.ConvChipThroughput, r.OptChipThroughput)
	}
}

func TestInstructionPrefetchStudyDirections(t *testing.T) {
	// Stream prefetching must beat no prefetching for an I-bound
	// scale-out workload; next-line sits in between (Section 4.1).
	e := ScaleOutEntries()[0] // Data Serving
	o := fastOptions()
	rows, err := InstructionPrefetchStudy([]Entry{e}, o)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.MPKIStream >= r.MPKINone {
		t.Fatalf("stream prefetcher did not reduce I-misses: %.1f vs %.1f",
			r.MPKIStream, r.MPKINone)
	}
	if r.MPKINextLine >= r.MPKINone {
		t.Fatalf("next-line prefetcher did not reduce I-misses: %.1f vs %.1f",
			r.MPKINextLine, r.MPKINone)
	}
	if r.IPCStream <= r.IPCNone {
		t.Fatalf("stream prefetcher did not help IPC: %.2f vs %.2f", r.IPCStream, r.IPCNone)
	}
}

func TestValidateClaimsHold(t *testing.T) {
	o := fastOptions()
	claims, err := Validate(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) < 7 {
		t.Fatalf("only %d claims checked", len(claims))
	}
	for _, c := range claims {
		if !c.Holds {
			t.Errorf("claim %s fails: %s (%s)", c.ID, c.Statement, c.Detail)
		}
	}
	if !AllHold(claims) {
		t.Error("AllHold disagrees with individual verdicts")
	}
}

func TestImplicationsEnergyEfficiency(t *testing.T) {
	// The optimized design must also win on the paper's per-operation
	// energy metric, not just density.
	e := ScaleOutEntries()[0] // Data Serving
	rows, err := Implications([]Entry{e}, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.ConvPJPerInstr <= 0 || r.OptPJPerInstr <= 0 {
		t.Fatalf("energy metrics missing: %+v", r)
	}
	if r.OptPJPerInstr >= r.ConvPJPerInstr {
		t.Fatalf("optimized design spends more energy per op: %.1f vs %.1f pJ",
			r.OptPJPerInstr, r.ConvPJPerInstr)
	}
}
