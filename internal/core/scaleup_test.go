package core

import "testing"

func TestSocketsOptionCanonicalization(t *testing.T) {
	// Sockets: 2 and SplitSockets: true are the same measurement and
	// must share a memoization cache slot.
	a := canonicalize(Options{Sockets: 2, Cores: 4})
	b := canonicalize(Options{SplitSockets: true, Cores: 4})
	if a != b {
		t.Fatalf("canonical forms differ:\n%+v\n%+v", a, b)
	}
	if a.machine.Mem.Sockets != 2 || !a.splitSockets {
		t.Fatalf("Sockets: 2 not canonicalized to a split two-socket run: %+v", a)
	}
}

func TestPlaceCoreSpreadsSocketsEvenly(t *testing.T) {
	mem := TwoSocket().Mem
	// 4 cores over 2 sockets: the first block on socket 0, the second on
	// socket 1 (the Figure-6 placement).
	want := []int{0, 1, 6, 7}
	for cid, w := range want {
		if got := placeCore(cid, 4, true, mem); got != w {
			t.Errorf("placeCore(%d, 4) = %d, want %d", cid, got, w)
		}
	}
	// 12 cores fill both sockets completely.
	seen := map[int]bool{}
	for cid := 0; cid < 12; cid++ {
		g := placeCore(cid, 12, true, mem)
		if g < 0 || g >= 12 || seen[g] {
			t.Fatalf("placeCore(%d, 12) = %d: out of range or duplicate", cid, g)
		}
		seen[g] = true
	}
	// Without split placement the socket-0 cores are used in order.
	if got := placeCore(3, 4, false, mem); got != 3 {
		t.Errorf("unsplit placeCore(3, 4) = %d, want 3", got)
	}
}

func TestMeasureRejectsOversubscribedCores(t *testing.T) {
	o := fastOptions()
	o.Cores = 8 // exceeds one 6-core socket
	b, _ := FindBench("Web Search")
	if _, err := MeasureBench(b, o); err == nil {
		t.Fatal("8 cores on a single socket must be rejected")
	}
	o.Sockets = 2 // 8 cores fit a two-socket machine
	if _, err := MeasureBench(b, o); err != nil {
		t.Fatalf("8 cores over two sockets rejected: %v", err)
	}
}

func TestScaleUpStudy(t *testing.T) {
	o := fastOptions()
	entries := ScaleOutEntries()[:2]
	points := []ScalePoint{{Sockets: 1, Cores: 1}, {Sockets: 1, Cores: 2}, {Sockets: 2, Cores: 2}}
	rows, err := NewRunner(0).ScaleUpStudy(entries, points, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(entries) {
		t.Fatalf("rows = %d, want %d", len(rows), len(entries))
	}
	for _, r := range rows {
		if len(r.Cells) != len(points) {
			t.Fatalf("%s: cells = %d, want %d", r.Label, len(r.Cells), len(points))
		}
		base, two, split := r.Cells[0], r.Cells[1], r.Cells[2]
		if base.Speedup != 1 {
			t.Errorf("%s: baseline speedup = %f, want 1", r.Label, base.Speedup)
		}
		if base.ChipIPC <= 0 || two.ChipIPC <= base.ChipIPC {
			t.Errorf("%s: 2 cores (%.3f) should out-commit 1 core (%.3f)",
				r.Label, two.ChipIPC, base.ChipIPC)
		}
		if base.RemoteHitPKI != 0 || base.RemoteDRAMFrac != 0 {
			t.Errorf("%s: single-socket run shows remote traffic: %+v", r.Label, base)
		}
		if split.RemoteDRAMFrac <= 0 {
			t.Errorf("%s: interleaved pages must produce remote DRAM reads on 2 sockets", r.Label)
		}
	}
	// The sweep is one batch: a second run is fully cached.
	r2 := NewRunner(0)
	if _, err := r2.ScaleUpStudy(entries, points, o); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.ScaleUpStudy(entries, points, o); err != nil {
		t.Fatal(err)
	}
	s := r2.Stats()
	if s.CacheHits != s.Requests/2 {
		t.Errorf("second sweep not cached: %+v", s)
	}
}

func TestTwoSocketDoublesChannels(t *testing.T) {
	o := fastOptions()
	o.Sockets = 2
	b, _ := FindBench("Data Serving")
	m, err := MeasureBench(b, o)
	if err != nil {
		t.Fatal(err)
	}
	if m.DRAMChannels != 6 {
		t.Fatalf("two-socket DRAM channels = %d, want 6", m.DRAMChannels)
	}
	if m.RemoteSocketHit == 0 {
		t.Error("split run shows no remote socket hits")
	}
}

func TestPollutersCoverEverySocket(t *testing.T) {
	mem := TwoSocket().Mem
	// Split 4-core run (ids 0,1,6,7): one polluter per socket.
	coreOf := []int{0, 1, 6, 7}
	pcores, err := polluterCores(coreOf, mem)
	if err != nil {
		t.Fatal(err)
	}
	if len(pcores) != 2 || pcores[0]/6 != 0 || pcores[1]/6 != 1 {
		t.Fatalf("polluters %v should cover both sockets", pcores)
	}
	// Single-socket run keeps the paper's placement: the next two ids.
	pcores, err = polluterCores([]int{0, 1, 2, 3}, XeonX5670().Mem)
	if err != nil {
		t.Fatal(err)
	}
	if len(pcores) != 2 || pcores[0] != 4 || pcores[1] != 5 {
		t.Fatalf("single-socket polluters = %v, want [4 5]", pcores)
	}
	// An 8-core two-socket run has spare cores for polluters.
	o := fastOptions()
	o.Cores, o.Sockets, o.PolluteBytes = 8, 2, 4<<20
	b, _ := FindBench("Web Search")
	if _, err := MeasureBench(b, o); err != nil {
		t.Fatalf("8-core 2-socket polluted run rejected: %v", err)
	}
}
