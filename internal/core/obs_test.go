package core

import (
	"sync"
	"testing"

	"cloudsuite/internal/obs"
)

// This file gates the observer contract of the observability layer:
// arming metrics, tracing, and phase attribution must leave every
// measurement byte-identical — the same differential standard the
// checkpoint harness (checkpoint_test.go) holds warm images to. The
// comparison is on the serialized measurement, so any counter an
// observer perturbs fails the harness.

// obsReqs builds one request per scale-out workload.
func obsReqs(o Options) []MeasureRequest {
	benches := ScaleOut()
	reqs := make([]MeasureRequest, len(benches))
	for i, b := range benches {
		reqs[i] = MeasureRequest{Bench: b, Options: o}
	}
	return reqs
}

// measureJSON runs reqs through r and serializes each result.
func measureJSON(t *testing.T, r *Runner, reqs []MeasureRequest) []string {
	t.Helper()
	ms, err := r.MeasureAll(reqs)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = mustJSON(t, m)
	}
	return out
}

func compareJSON(t *testing.T, mode string, want, got []string) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: measurement %d differs from unarmed baseline\nunarmed = %s\narmed   = %s",
				mode, i, want[i], got[i])
		}
	}
}

// TestObsArmedVsUnarmedByteIdentity is the pure-observer gate: every
// scale-out workload, measured serial, parallel, sampled, and restored
// from a warm checkpoint, produces byte-identical results with the
// observability layer armed.
func TestObsArmedVsUnarmedByteIdentity(t *testing.T) {
	contiguous := diffOptions(1, false)
	sampled := diffOptions(1, true)

	// Unarmed baselines (serial; worker count never changes results).
	wantContig := measureJSON(t, NewRunner(1), obsReqs(contiguous))
	wantSampled := measureJSON(t, NewRunner(1), obsReqs(sampled))

	// Armed, serial.
	serial := NewRunner(1)
	serial.SetObserver(obs.New())
	compareJSON(t, "armed serial", wantContig, measureJSON(t, serial, obsReqs(contiguous)))

	// Armed, parallel.
	par := NewRunner(4)
	par.SetObserver(obs.New())
	compareJSON(t, "armed parallel", wantContig, measureJSON(t, par, obsReqs(contiguous)))

	// Armed, sampled.
	samp := NewRunner(2)
	samp.SetObserver(obs.New())
	compareJSON(t, "armed sampled", wantSampled, measureJSON(t, samp, obsReqs(sampled)))

	// Armed, restored from checkpoint: one armed runner populates the
	// store (cold runs, compared too), a second armed runner forks every
	// run from the cached warm images.
	store, err := NewCheckpointStore("")
	if err != nil {
		t.Fatal(err)
	}
	warm := NewRunner(2)
	warm.SetObserver(obs.New())
	warm.SetCheckpoints(store)
	compareJSON(t, "armed checkpoint-save", wantContig, measureJSON(t, warm, obsReqs(contiguous)))
	restored := NewRunner(2)
	obGot := obs.New()
	restored.SetObserver(obGot)
	restored.SetCheckpoints(store)
	compareJSON(t, "armed checkpoint-fork", wantContig, measureJSON(t, restored, obsReqs(contiguous)))

	// The restored sweep must actually have exercised the fork path and
	// recorded it: warm-source metrics and restore phases are non-zero.
	s := obGot.Registry().Snapshot()
	n := int64(len(ScaleOut()))
	if got := s.Counters["runner.runs.checkpoint_fork"]; got != n {
		t.Fatalf("runner.runs.checkpoint_fork = %d, want %d", got, n)
	}
	if s.Histograms["engine.phase.ckpt_restore"].SumNS == 0 {
		t.Fatal("armed restored runs recorded no ckpt_restore time")
	}
	// The scale-out workloads are all live-point capable, so their forks
	// restore by a pure load: no generator replay may be attributed.
	if seg := s.Histograms["engine.phase.ckpt_replay"]; seg.Count != 0 {
		t.Fatalf("live-image forks attributed %d ckpt_replay segments (%dns); pure-load restore must not replay",
			seg.Count, seg.SumNS)
	}
	if s.Counters["ckpt.hits.memory"] != n {
		t.Fatalf("ckpt.hits.memory = %d, want %d", s.Counters["ckpt.hits.memory"], n)
	}

	// The plain armed sweep recorded a sane accounting: every request
	// was a cold fresh run and phase time was attributed.
	s = par.Observer().Registry().Snapshot()
	if got := s.Counters["runner.requests"]; got != n {
		t.Fatalf("runner.requests = %d, want %d", got, n)
	}
	if got := s.Counters["runner.runs.cold"]; got != n {
		t.Fatalf("runner.runs.cold = %d, want %d", got, n)
	}
	totalNS, _ := s.PhaseBreakdown()
	if totalNS <= 0 {
		t.Fatal("armed sweep attributed no phase time")
	}
	wall := s.Histograms["runner.measure_wall"]
	if wall.Count != n || wall.SumNS < totalNS {
		t.Fatalf("runner.measure_wall count=%d sum=%dns must cover the %dns phase total",
			wall.Count, wall.SumNS, totalNS)
	}
}

// TestObsProgressProvenance checks the extended progress events: fresh
// runs report their warm source and duration, memoized requests report
// "memo".
func TestObsProgressProvenance(t *testing.T) {
	b, _ := FindBench("Web Search")
	o := diffOptions(1, false)
	r := NewRunner(1)
	var events []ProgressEvent
	r.SetProgress(func(ev ProgressEvent) { events = append(events, ev) })
	reqs := []MeasureRequest{
		{Bench: b, Options: o},
		{Bench: b, Options: o}, // duplicate: memo hit
	}
	if _, err := r.MeasureAll(reqs); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d progress events, want 2", len(events))
	}
	if events[0].Source != "cold" || events[0].Cached {
		t.Fatalf("fresh run event = %+v, want source cold", events[0])
	}
	if events[1].Source != "memo" || !events[1].Cached {
		t.Fatalf("duplicate event = %+v, want source memo", events[1])
	}
	for i, ev := range events {
		if ev.Duration <= 0 {
			t.Fatalf("event %d has no duration: %+v", i, ev)
		}
	}
}

// TestRunnerStatsConsistentUnderLoad hammers Stats() while a parallel
// MeasureAll with duplicates is in flight: every snapshot must satisfy
// Requests == Runs + CacheHits exactly and never go backwards. (The
// invariant is only guaranteed because every stats transition is a
// single critical section; meaningful under -race, which CI uses.)
func TestRunnerStatsConsistentUnderLoad(t *testing.T) {
	o := diffOptions(1, false)
	o.WarmupInsts, o.MeasureInsts = 10_000, 2_000
	var reqs []MeasureRequest
	for i := 0; i < 3; i++ { // duplicates drive the CacheHits path
		for _, b := range ScaleOut() {
			reqs = append(reqs, MeasureRequest{Bench: b, Options: o})
		}
	}
	r := NewRunner(4)
	r.SetObserver(obs.New()) // metric recording under the same load

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev RunnerStats
		for {
			s := r.Stats()
			if s.Requests != s.Runs+s.CacheHits {
				t.Errorf("torn stats snapshot: Requests=%d != Runs=%d + CacheHits=%d",
					s.Requests, s.Runs, s.CacheHits)
				return
			}
			if s.Requests < prev.Requests || s.Runs < prev.Runs ||
				s.CacheHits < prev.CacheHits || s.MeasuredInsts < prev.MeasuredInsts {
				t.Errorf("stats went backwards: %+v after %+v", s, prev)
				return
			}
			prev = s
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	_, err := r.MeasureAll(reqs)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	uniq := int64(len(ScaleOut()))
	if s.Requests != int64(len(reqs)) || s.Runs != uniq || s.CacheHits != int64(len(reqs))-uniq {
		t.Fatalf("final stats %+v, want %d requests = %d runs + %d hits",
			s, len(reqs), uniq, int64(len(reqs))-uniq)
	}
}
