package websearch

import (
	"testing"

	"cloudsuite/internal/trace"
)

func smallConfig() Config {
	return Config{
		Terms: 4096, Docs: 8192, PostingsBytes: 1 << 20,
		TermsPerQuery: 3, TopK: 10, FrameworkInsts: 600,
	}
}

func drain(t *testing.T, g *trace.StepGen, n int) []trace.Inst {
	t.Helper()
	out := make([]trace.Inst, n)
	got := 0
	for got < n {
		k := g.Next(out[got:])
		if k == 0 {
			break
		}
		got += k
	}
	return out[:got]
}

func TestMetadata(t *testing.T) {
	n := New(smallConfig())
	if n.Name() != "Web Search" {
		t.Errorf("name = %q", n.Name())
	}
}

func TestPostingLayoutCoversBudget(t *testing.T) {
	n := New(smallConfig())
	var total uint64
	seen := map[uint64]bool{}
	for tm := uint64(0); tm < n.cfg.Terms; tm++ {
		if n.postLen[tm] == 0 {
			t.Fatalf("term %d has empty postings", tm)
		}
		if !seen[n.postOff[tm]] {
			seen[n.postOff[tm]] = true
			total += n.postLen[tm] * 4
		}
		if end := n.postOff[tm] + n.postLen[tm]*4; end > n.cfg.PostingsBytes {
			t.Fatalf("term %d postings overflow the region: end=%d", tm, end)
		}
	}
	if total > n.cfg.PostingsBytes {
		t.Fatalf("postings exceed budget: %d > %d", total, n.cfg.PostingsBytes)
	}
}

func TestPostingLengthsAreSkewed(t *testing.T) {
	n := New(smallConfig())
	if n.postLen[0] <= n.postLen[n.cfg.Terms-1]*4 {
		t.Fatalf("no head/tail skew: head=%d tail=%d", n.postLen[0], n.postLen[n.cfg.Terms-1])
	}
}

func TestQueryLoopTouchesIndex(t *testing.T) {
	n := New(smallConfig())
	gens := n.Start(1, 2)
	defer gens[0].Close()
	insts := drain(t, gens[0], 120000)

	postLo, postHi := n.postings, n.postings+n.cfg.PostingsBytes
	metaLo, metaHi := n.docMeta.Base, n.docMeta.Base+n.docMeta.Bytes()
	var postingLoads, metaLoads, fpOps, kernel int
	for _, in := range insts {
		switch {
		case in.Op == trace.OpLoad && in.Addr >= postLo && in.Addr < postHi:
			postingLoads++
		case in.Op == trace.OpLoad && in.Addr >= metaLo && in.Addr < metaHi:
			metaLoads++
		}
		if in.Op == trace.OpFP {
			fpOps++
		}
		if in.Kernel {
			kernel++
		}
	}
	if postingLoads == 0 {
		t.Error("queries never scanned postings")
	}
	if metaLoads == 0 {
		t.Error("queries never fetched document metadata")
	}
	if fpOps == 0 {
		t.Error("no scoring floating-point work")
	}
	if kernel == 0 {
		t.Error("no OS activity for a network service")
	}
}

func TestPostingsScanIsMostlySequential(t *testing.T) {
	cfg := smallConfig()
	cfg.TermsPerQuery = 1 // single-term queries: one postings cursor
	n := New(cfg)
	gens := n.Start(1, 6)
	defer gens[0].Close()
	insts := drain(t, gens[0], 120000)
	postLo, postHi := n.postings, n.postings+n.cfg.PostingsBytes
	var last uint64
	seq, jumps := 0, 0
	for _, in := range insts {
		if in.Op != trace.OpLoad || in.Addr < postLo || in.Addr >= postHi {
			continue
		}
		if last != 0 {
			d := int64(in.Addr) - int64(last)
			if d >= 0 && d <= 64 {
				seq++
			} else {
				jumps++
			}
		}
		last = in.Addr
	}
	if seq == 0 || jumps == 0 {
		t.Fatalf("scan pattern degenerate: seq=%d jumps=%d", seq, jumps)
	}
	if float64(seq)/float64(seq+jumps) < 0.4 {
		t.Fatalf("postings scan not sequential enough: %d/%d", seq, seq+jumps)
	}
}
