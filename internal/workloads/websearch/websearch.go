// Package websearch models the Web Search workload: an index serving
// node (ISN) of a distributed search engine (Section 3.2: Nutch
// 1.2/Lucene 3.0.1 with a 2GB index over crawled content, sized to stay
// memory-resident; clients tuned for maximum request rate under a 0.5s
// 90th-percentile latency target).
//
// The node owns an inverted index: a vocabulary hash table pointing at
// delta-encoded posting lists. A query draws Zipfian terms, walks each
// term's postings with skip-pointer-accelerated sequential scans,
// intersects them, scores candidates with a BM25-style floating-point
// kernel, maintains a top-k heap, and serializes the best documents.
// Requests are handled by a single thread each and never communicate,
// exactly as the paper describes ISNs. A JVM garbage-collection quantum
// provides the small application-level sharing the paper attributes to
// the parallel collector.
package websearch

import (
	"sync/atomic"

	"cloudsuite/internal/addrspace"
	"cloudsuite/internal/oskern"
	"cloudsuite/internal/rng"
	"cloudsuite/internal/sim/checkpoint"
	"cloudsuite/internal/trace"
	"cloudsuite/internal/workloads"
)

// Config scales the workload.
type Config struct {
	// Terms is the vocabulary size.
	Terms uint64
	// Docs is the number of indexed documents.
	Docs uint64
	// PostingsBytes is the total posting-list storage.
	PostingsBytes uint64
	// TermsPerQuery is the mean query length.
	TermsPerQuery int
	// TopK is the result-heap size.
	TopK int
	// FrameworkInsts is the per-query Lucene/JVM overhead.
	FrameworkInsts int
}

// DefaultConfig scales the 2GB index to 64MB of postings over 256K
// documents.
func DefaultConfig() Config {
	return Config{
		Terms: 256 << 10, Docs: 256 << 10, PostingsBytes: 64 << 20,
		TermsPerQuery: 3, TopK: 10, FrameworkInsts: 5200,
	}
}

// Node is the Web Search workload instance.
type Node struct {
	cfg  Config
	kern *oskern.Kernel
	heap *addrspace.Heap
	bank *workloads.CodeBank

	fnParse   *trace.Func
	fnLookup  *trace.Func
	fnScan    *trace.Func
	fnScore   *trace.Func
	fnHeap    *trace.Func
	fnDocMeta *trace.Func
	fnSerial  *trace.Func
	fnGC      *trace.Func

	vocab    addrspace.Array // term dictionary (hash table)
	postings uint64          // flat postings region
	postOff  []uint64        // per-term offset
	postLen  []uint64        // per-term length in docs
	docMeta  addrspace.Array // per-doc metadata
	norms    addrspace.Array // per-doc length norms (scored sequentially)
	headers  addrspace.Array // object headers for the GC quantum
	gcCur    atomic.Uint64
}

// New builds the index.
func New(cfg Config) *Node {
	if cfg.Terms == 0 {
		cfg = DefaultConfig()
	}
	code := trace.NewCodeLayout(addrspace.UserCodeBase, addrspace.UserCodeSize)
	n := &Node{cfg: cfg, kern: oskern.New(oskern.DefaultConfig()), heap: addrspace.NewUserHeap()}
	n.bank = workloads.NewCodeBank(code, "lucene", 160, 900)
	n.fnParse = code.Func("query_parse", 550)
	n.fnLookup = code.Func("term_lookup", 320)
	n.fnScan = code.Func("postings_scan", 700)
	n.fnScore = code.Func("bm25_score", 420)
	n.fnHeap = code.Func("topk_heap", 300)
	n.fnDocMeta = code.Func("doc_fetch", 380)
	n.fnSerial = code.Func("result_serialize", 760)
	n.fnGC = code.Func("gc_mark_quantum", 600)

	n.vocab = addrspace.NewArray(n.heap, cfg.Terms, 32)
	n.postings = n.heap.AllocLines(cfg.PostingsBytes)
	n.docMeta = addrspace.NewArray(n.heap, cfg.Docs, 64)
	n.norms = addrspace.NewArray(n.heap, cfg.Docs, 4)
	n.headers = addrspace.NewArray(n.heap, cfg.Docs, 16)

	// Zipfian posting-list lengths: few huge lists, many short ones,
	// packed consecutively like a real segment file.
	n.postOff = make([]uint64, cfg.Terms)
	n.postLen = make([]uint64, cfg.Terms)
	r := rng.New(7)
	off := uint64(0)
	budget := cfg.PostingsBytes
	for t := uint64(0); t < cfg.Terms; t++ {
		// Rank-based length: list length ~ C / rank.
		l := cfg.PostingsBytes / 24 / (t + 16)
		if l < 8 {
			l = 8 + uint64(r.Intn(8))
		}
		bytes := l * 4
		if bytes > budget {
			bytes = budget
			l = bytes / 4
		}
		n.postOff[t] = off
		n.postLen[t] = l
		off += bytes
		budget -= bytes
		if budget == 0 {
			// Remaining terms reuse earlier lists (like shared segments).
			for u := t + 1; u < cfg.Terms; u++ {
				src := u % (t + 1)
				n.postOff[u] = n.postOff[src]
				n.postLen[u] = n.postLen[src]
			}
			break
		}
	}
	return n
}

// Name implements workloads.Workload.
func (n *Node) Name() string { return "Web Search" }

// Class implements workloads.Workload.
func (n *Node) Class() workloads.Class { return workloads.ScaleOut }

// Start implements workloads.Workload.
func (n *Node) Start(threads int, seed int64) []*trace.StepGen {
	gens := make([]*trace.StepGen, threads)
	for i := 0; i < threads; i++ {
		cfg := workloads.EmitterConfigFor(seed+int64(i)*15731, 0.06)
		gens[i] = trace.NewStepGen(cfg, n.newThread(i, seed+int64(i)))
	}
	return gens
}

// SaveShared serializes the node's shared mutable state. The index
// itself is immutable after construction; only the kernel, the heap
// cursor and the GC cursor move.
func (n *Node) SaveShared(w *checkpoint.Writer) {
	w.Tag("websearch.shared")
	n.kern.SaveState(w)
	n.heap.SaveState(w)
	w.U64(n.gcCur.Load())
}

// LoadShared restores state written by SaveShared.
func (n *Node) LoadShared(rd *checkpoint.Reader) {
	rd.Expect("websearch.shared")
	n.kern.LoadState(rd)
	n.heap.LoadState(rd)
	n.gcCur.Store(rd.U64())
}

// qthread is one index-serving thread; each Step emits one query.
type qthread struct {
	n        *Node           //simlint:ok checkpointcov shared node, checkpointed via SaveShared
	tid      int             //simlint:ok checkpointcov construction-time identity
	rnd      *rng.Rand       // query lengths + term draws
	zipfTerm *workloads.Zipf //simlint:ok checkpointcov immutable params; draw state lives in rnd
	conn     *oskern.Conn
	stack    uint64 //simlint:ok checkpointcov construction-time address
	reqBuf   uint64 //simlint:ok checkpointcov construction-time address
	respBuf  uint64 //simlint:ok checkpointcov construction-time address
	heapAddr uint64 //simlint:ok checkpointcov construction-time address
	queries  uint64
}

func (n *Node) newThread(tid int, seed int64) *qthread {
	r := rng.New(seed)
	return &qthread{
		n: n, tid: tid, rnd: r,
		zipfTerm: workloads.NewZipf(r, 1.01, n.cfg.Terms),
		conn:     n.kern.OpenConnOn(tid),
		stack:    workloads.StackOf(tid),
		reqBuf:   n.heap.AllocLines(4096),
		respBuf:  n.heap.AllocLines(16 << 10),
		heapAddr: n.heap.AllocLines(uint64(n.cfg.TopK) * 16),
	}
}

// SaveState serializes the thread's resumable state.
func (t *qthread) SaveState(w *checkpoint.Writer) {
	w.Tag("websearch.thread")
	t.rnd.SaveState(w)
	t.conn.SaveState(w)
	w.U64(t.queries)
}

// LoadState restores state written by SaveState.
func (t *qthread) LoadState(rd *checkpoint.Reader) {
	rd.Expect("websearch.thread")
	t.rnd.LoadState(rd)
	t.conn.LoadState(rd)
	t.queries = rd.U64()
}

// Step emits one query.
func (th *qthread) Step(e *trace.Emitter) bool {
	n, tid := th.n, th.tid
	rnd, zipfTerm, conn := th.rnd, th.zipfTerm, th.conn
	stack, reqBuf, respBuf, heapAddr := th.stack, th.reqBuf, th.respBuf, th.heapAddr
	queries := int(th.queries)

	{
		n.kern.Recv(e, conn, reqBuf, 256)
		e.InFunc(n.fnParse, func() { workloads.GenericWork(e, 220, stack, 3) })
		n.bank.Exec(e, uint64(queries)*0x9e3779b9+uint64(tid), 20, n.cfg.FrameworkInsts, stack, 3)

		nTerms := 1 + rnd.Intn(n.cfg.TermsPerQuery*2-1)
		var shortest uint64 = 1 << 62
		terms := make([]uint64, nTerms)
		for t := range terms {
			terms[t] = zipfTerm.Next() % n.cfg.Terms
			e.InFunc(n.fnLookup, func() {
				h := e.Load(n.vocab.At(terms[t]), 32, trace.NoVal, false)
				e.ALUChain(4, h)
			})
			if n.postLen[terms[t]] < shortest {
				shortest = n.postLen[terms[t]]
			}
		}

		// Intersect: drive from the shortest list; skip through the
		// others. Scans are sequential with skips (semi-sequential), the
		// scoring is FP-heavy, candidates are mutually independent.
		candidates := int(shortest)
		if candidates > 64 {
			candidates = 64
		}
		var score trace.Val = trace.NoVal
		e.InFunc(n.fnScan, func() {
			for c := 0; c < candidates; c++ {
				var docv trace.Val = trace.NoVal
				for _, t := range terms {
					// Postings advance sequentially (delta-decoded 4-byte
					// entries); skip pointers jump ahead occasionally.
					pos := (uint64(c) * 4) % (n.postLen[t] * 4)
					if c%16 == 15 {
						pos = ((uint64(c) * 256) % (n.postLen[t] * 4)) &^ 3
					}
					docv = e.Load(n.postings+n.postOff[t]+pos, 4, trace.NoVal, false)
					docv = e.ALUChain(4, docv) // delta decode + compare
				}
				match := c%3 == 0
				e.Branch(match, docv)
				if !match {
					continue
				}
				doc := (uint64(c)*2654435761 + terms[0]) % n.cfg.Docs
				e.InFunc(n.fnScore, func() {
					nv := e.Load(n.norms.At(doc), 4, docv, false)
					s := e.FP(nv, docv)
					s = e.FPChain(6, s)
					score = e.FP(score, s)
					workloads.GenericWork(e, 30, heapAddr, 3)
				})
				if c%4 == 0 {
					e.InFunc(n.fnHeap, func() {
						h := e.Load(heapAddr, 16, score, false)
						e.Store(heapAddr+uint64(c%n.cfg.TopK)*16, 16, h, trace.NoVal)
						e.ALUChain(3, h)
					})
				}
			}
		})

		// Fetch metadata of the winners and serialize.
		for k := 0; k < n.cfg.TopK/2; k++ {
			doc := (uint64(queries)*31 + uint64(k)*2654435761) % n.cfg.Docs
			e.InFunc(n.fnDocMeta, func() {
				m := e.Load(n.docMeta.At(doc), 64, trace.NoVal, true)
				e.ALUChain(3, m)
				h := e.Load(n.headers.At(doc), 8, m, true)
				e.ALU(h, trace.NoVal)
			})
		}
		e.InFunc(n.fnSerial, func() {
			for b := uint64(0); b < 4<<10; b += 64 {
				e.Store(respBuf+b, 64, trace.NoVal, trace.NoVal)
			}
			workloads.GenericWork(e, 420, stack, 3)
		})
		n.kern.Send(e, conn, respBuf, 4<<10)
	}

	th.queries++
	if th.queries%48 == 0 {
		n.gcQuantum(e)
	}
	if th.queries%200 == 0 {
		n.kern.SchedTick(e, tid)
	}
	return true
}

// gcQuantum marks a chunk of shared object headers (parallel collector).
func (n *Node) gcQuantum(e *trace.Emitter) {
	e.InFunc(n.fnGC, func() {
		const chunk = 64
		start := n.gcCur.Add(chunk) % n.cfg.Docs
		for i := uint64(0); i < chunk; i++ {
			idx := (start + i) % n.cfg.Docs
			v := e.Load(n.headers.At(idx), 8, trace.NoVal, false)
			if i%4 == 0 {
				e.Store(n.headers.At(idx), 8, v, trace.NoVal)
			}
		}
	})
}
