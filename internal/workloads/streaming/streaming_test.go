package streaming

import (
	"testing"

	"cloudsuite/internal/trace"
)

func smallConfig() Config {
	return Config{
		LibraryBytes: 4 << 20, Files: 8, ClientsPerThread: 20,
		ChunkBytes: 2 * 1460, FrameworkInsts: 300,
	}
}

func drain(t *testing.T, g *trace.StepGen, n int) []trace.Inst {
	t.Helper()
	out := make([]trace.Inst, n)
	got := 0
	for got < n {
		k := g.Next(out[got:])
		if k == 0 {
			break
		}
		got += k
	}
	return out[:got]
}

func TestMetadata(t *testing.T) {
	s := New(smallConfig())
	if s.Name() != "Media Streaming" {
		t.Errorf("name = %q", s.Name())
	}
	if len(s.fileBase) != 8 {
		t.Fatalf("files = %d", len(s.fileBase))
	}
}

func TestStreamingIsOSHeavy(t *testing.T) {
	s := New(smallConfig())
	gens := s.Start(1, 13)
	defer gens[0].Close()
	insts := drain(t, gens[0], 80000)
	kernel := 0
	for _, in := range insts {
		if in.Kernel {
			kernel++
		}
	}
	frac := float64(kernel) / float64(len(insts))
	// Packet sending dominates: the paper shows Media Streaming with the
	// largest OS share of the scale-out suite.
	if frac < 0.25 {
		t.Fatalf("OS share %.2f too low for a streaming server", frac)
	}
}

func TestMediaIsStreamedWithoutReuse(t *testing.T) {
	s := New(smallConfig())
	gens := s.Start(1, 13)
	defer gens[0].Close()
	insts := drain(t, gens[0], 200000)
	libLo, libHi := s.library, s.library+s.cfg.LibraryBytes
	seen := map[uint64]int{}
	for _, in := range insts {
		if in.Op == trace.OpLoad && in.Addr >= libLo && in.Addr < libHi {
			seen[in.Addr>>6]++
		}
	}
	if len(seen) == 0 {
		t.Fatal("no media loads")
	}
	reused := 0
	for _, n := range seen {
		if n > 1 {
			reused++
		}
	}
	if frac := float64(reused) / float64(len(seen)); frac > 0.3 {
		t.Fatalf("media lines reused too often (%.2f): should stream", frac)
	}
}

func TestSessionsAdvanceIndependently(t *testing.T) {
	s := New(smallConfig())
	gens := s.Start(2, 3)
	defer func() {
		for _, g := range gens {
			g.Close()
		}
	}()
	// Both threads must emit; their session state regions are private.
	for i, g := range gens {
		if got := len(drain(t, g, 20000)); got != 20000 {
			t.Fatalf("thread %d produced %d insts", i, got)
		}
	}
}

func TestGlobalCountersAreShared(t *testing.T) {
	s := New(smallConfig())
	gens := s.Start(2, 9)
	defer func() {
		for _, g := range gens {
			g.Close()
		}
	}()
	writers := 0
	for _, g := range gens {
		wrote := false
		for _, in := range drain(t, g, 300000) {
			if in.Op == trace.OpStore && in.Addr >= s.statsAddr && in.Addr < s.statsAddr+256 {
				wrote = true
			}
		}
		if wrote {
			writers++
		}
	}
	// The paper calls out the global packet counters: multiple threads
	// write the same statistics object.
	if writers < 2 {
		t.Fatalf("only %d threads wrote the global counters", writers)
	}
}
