// Package streaming models the Media Streaming workload: a Darwin
// Streaming Server-like media server feeding many concurrent clients
// (Section 3.2: Darwin 6.0.3 serving videos of varying duration under a
// Faban client driver, low bit-rate streams to stress the CPU rather
// than the network).
//
// Each server thread round-robins over hundreds of client sessions.
// Per tick it advances the client's cursor through its media file,
// packetises the next chunk into RTP packets, and sends each packet
// through the OS network model. The salient properties the paper
// observes all emerge here: the media library far exceeds the LLC and
// is streamed without reuse (no LLC benefit, highest off-chip bandwidth
// of the suite), hundreds of interleaved streams defeat the L2 stream
// prefetchers (prefetches pollute the L2, Figure 5), and the global
// sent-packet counters produce application-level read-write sharing
// (Section 4.4 calls these out explicitly).
package streaming

import (
	"sync/atomic"

	"cloudsuite/internal/addrspace"
	"cloudsuite/internal/oskern"
	"cloudsuite/internal/rng"
	"cloudsuite/internal/sim/checkpoint"
	"cloudsuite/internal/trace"
	"cloudsuite/internal/workloads"
)

// Config scales the workload.
type Config struct {
	// LibraryBytes is the total size of the in-memory media library.
	LibraryBytes uint64
	// Files is the number of distinct media files.
	Files int
	// ClientsPerThread is the number of concurrent sessions per server
	// thread.
	ClientsPerThread int
	// ChunkBytes is the media read per client tick (several packets).
	ChunkBytes int
	// FrameworkInsts is the per-tick server overhead.
	FrameworkInsts int
}

// DefaultConfig returns a 96MB library (8x LLC) of 48 files with 400
// clients per thread.
func DefaultConfig() Config {
	return Config{
		LibraryBytes: 96 << 20, Files: 48, ClientsPerThread: 400,
		ChunkBytes: 4 * 1460, FrameworkInsts: 1500,
	}
}

// Server is the Media Streaming workload instance.
type Server struct {
	cfg  Config
	kern *oskern.Kernel
	heap *addrspace.Heap
	bank *workloads.CodeBank

	fnTick      *trace.Func
	fnPacketize *trace.Func
	fnRTPHeader *trace.Func
	fnRateCtl   *trace.Func

	library   uint64 // base of the media region
	fileBase  []uint64
	fileSize  []uint64
	statsAddr uint64 // global packet counters (shared, read-write)
	sessSeq   atomic.Uint64
}

// New builds the server and its media library.
func New(cfg Config) *Server {
	if cfg.LibraryBytes == 0 {
		cfg = DefaultConfig()
	}
	code := trace.NewCodeLayout(addrspace.UserCodeBase, addrspace.UserCodeSize)
	s := &Server{cfg: cfg, kern: oskern.New(oskern.DefaultConfig()), heap: addrspace.NewUserHeap()}
	s.bank = workloads.NewCodeBank(code, "darwin", 110, 800)
	s.fnTick = code.Func("session_tick", 600)
	s.fnPacketize = code.Func("packetize", 450)
	s.fnRTPHeader = code.Func("rtp_header", 200)
	s.fnRateCtl = code.Func("rate_control", 350)

	s.library = s.heap.AllocLines(cfg.LibraryBytes)
	per := cfg.LibraryBytes / uint64(cfg.Files)
	for i := 0; i < cfg.Files; i++ {
		s.fileBase = append(s.fileBase, s.library+uint64(i)*per)
		s.fileSize = append(s.fileSize, per)
	}
	s.statsAddr = s.heap.AllocLines(256)
	return s
}

// Name implements workloads.Workload.
func (s *Server) Name() string { return "Media Streaming" }

// Class implements workloads.Workload.
func (s *Server) Class() workloads.Class { return workloads.ScaleOut }

// Start implements workloads.Workload.
func (s *Server) Start(n int, seed int64) []*trace.StepGen {
	gens := make([]*trace.StepGen, n)
	for i := 0; i < n; i++ {
		cfg := workloads.EmitterConfigFor(seed+int64(i)*31337, 0.07)
		gens[i] = trace.NewStepGen(cfg, s.newThread(i, seed+int64(i)))
	}
	return gens
}

// SaveShared serializes the server's shared mutable state: the kernel
// and heap cursors and the global session/packet sequence.
func (s *Server) SaveShared(w *checkpoint.Writer) {
	w.Tag("streaming.shared")
	s.kern.SaveState(w)
	s.heap.SaveState(w)
	w.U64(s.sessSeq.Load())
}

// LoadShared restores state written by SaveShared.
func (s *Server) LoadShared(rd *checkpoint.Reader) {
	rd.Expect("streaming.shared")
	s.kern.LoadState(rd)
	s.heap.LoadState(rd)
	s.sessSeq.Store(rd.U64())
}

type session struct {
	file   int
	offset uint64
	state  uint64 //simlint:ok checkpointcov session struct address, construction-time allocation
	conn   *oskern.Conn
}

// SaveState serializes the session's cursor through its media file.
func (ss *session) SaveState(w *checkpoint.Writer) {
	w.U32(uint32(ss.file))
	w.U64(ss.offset)
	ss.conn.SaveState(w)
}

// LoadState restores state written by SaveState.
func (ss *session) LoadState(rd *checkpoint.Reader) {
	ss.file = int(rd.U32())
	ss.offset = rd.U64()
	ss.conn.LoadState(rd)
}

// sthread is one server thread round-robining over its client sessions;
// each Step is one session tick.
type sthread struct {
	s        *Server   //simlint:ok checkpointcov shared server, checkpointed via SaveShared
	tid      int       //simlint:ok checkpointcov construction-time identity
	rnd      *rng.Rand // session placement + reseeks
	stack    uint64    //simlint:ok checkpointcov construction-time address
	pktBuf   uint64    //simlint:ok checkpointcov construction-time address
	sessions []session
	cur      int
}

func (s *Server) newThread(tid int, seed int64) *sthread {
	r := rng.New(seed)
	th := &sthread{
		s: s, tid: tid, rnd: r,
		stack:  workloads.StackOf(tid),
		pktBuf: s.heap.AllocLines(16 << 10),
	}
	th.sessions = make([]session, s.cfg.ClientsPerThread)
	for i := range th.sessions {
		th.sessions[i] = session{
			file:   r.Intn(len(s.fileBase)),
			offset: uint64(r.Int63n(int64(s.fileSize[0]))) &^ 63,
			state:  s.heap.AllocLines(512),
			conn:   s.kern.OpenConnOn(tid),
		}
	}
	return th
}

// SaveState serializes the thread's resumable state.
func (th *sthread) SaveState(w *checkpoint.Writer) {
	w.Tag("streaming.thread")
	th.rnd.SaveState(w)
	w.U32(uint32(th.cur))
	w.U32(uint32(len(th.sessions)))
	for i := range th.sessions {
		th.sessions[i].SaveState(w)
	}
}

// LoadState restores state written by SaveState.
func (th *sthread) LoadState(rd *checkpoint.Reader) {
	rd.Expect("streaming.thread")
	th.rnd.LoadState(rd)
	th.cur = int(rd.U32())
	n := int(rd.U32())
	if rd.Err() != nil {
		return
	}
	if n != len(th.sessions) {
		rd.Failf("streaming: snapshot has %d sessions, thread has %d", n, len(th.sessions))
		return
	}
	for i := range th.sessions {
		th.sessions[i].LoadState(rd)
	}
}

// Step emits one session tick.
func (th *sthread) Step(e *trace.Emitter) bool {
	s, tid, rnd := th.s, th.tid, th.rnd
	stack, pktBuf := th.stack, th.pktBuf
	sessions := th.sessions

	{
		sess := &sessions[th.cur]
		cur := (th.cur + 1) % len(sessions)
		th.cur = cur

		e.InFunc(s.fnTick, func() {
			st := e.Load(sess.state, 8, trace.NoVal, false)
			workloads.GenericWork(e, 140, sess.state, 3)
			e.Store(sess.state+16, 8, st, trace.NoVal)
		})
		s.bank.Exec(e, sess.state*2654435761+uint64(cur), 14, s.cfg.FrameworkInsts, stack, 3)

		// Rate control decides the burst; occasionally a client seeks or
		// a new client replaces a finished one.
		e.InFunc(s.fnRateCtl, func() {
			v := e.Load(sess.state+64, 8, trace.NoVal, false)
			e.FPChain(6, v)
		})
		if rnd.Intn(512) == 0 {
			sess.file = rnd.Intn(len(s.fileBase))
			sess.offset = uint64(rnd.Int63n(int64(s.fileSize[sess.file]))) &^ 63
		}

		// Packetise the next chunk: stream the media bytes (no reuse),
		// prepend RTP headers, and send each packet via the kernel.
		// Hinted container files interleave hint, audio and video tracks,
		// so one packet's samples come from several short runs at
		// different file offsets — the jumpy pattern that defeats the L2
		// stream prefetchers and turns their fetches into pollution
		// (Figure 5 shows Media Streaming improving when they are off).
		nPkts := (s.cfg.ChunkBytes + 1459) / 1460
		for p := 0; p < nPkts; p++ {
			base := s.fileBase[sess.file] + sess.offset
			fileSpan := s.fileSize[sess.file]
			e.InFunc(s.fnPacketize, func() {
				var hdr trace.Val = trace.NoVal
				written := uint64(0)
				// Hint-track read guides the gather.
				hintOff := (sess.offset / 4) &^ 63
				hdr = e.Load(base+hintOff%fileSpan, 64, hdr, true)
				hdr = e.ALUChain(4, hdr)
				// Samples are gathered one line at a time with in-page
				// jumps over the other tracks' data: too short for the
				// stream detector to lock on, and the adjacent-line
				// buddy is usually another track's data — hardware
				// prefetches around this pattern only pollute the L2
				// (Figure 5 shows streaming improving when they're off).
				// The demux walks two tracks concurrently (audio and
				// video): within each track the next sample's location
				// comes from the previous sample's length field, so two
				// serial chains run side by side (MLP ~2, matching the
				// measured server's modest parallelism).
				chains := [2]trace.Val{hdr, hdr}
				for run := uint64(0); run < 22; run++ {
					runBase := base + (sess.offset+run*5*64)%(fileSpan-256)
					runBase &^= 63
					c := run % 2
					ld := e.Load(runBase, 64, chains[c], true)
					chains[c] = e.ALUChain(3, ld)
					e.Store(pktBuf+64+written%1460, 64, ld, trace.NoVal)
					written += 64
				}
			})
			e.InFunc(s.fnRTPHeader, func() {
				v := e.Load(sess.state+128, 8, trace.NoVal, false)
				v = e.ALUChain(10, v)
				workloads.GenericWork(e, 700, sess.state, 3)
				e.Store(pktBuf, 64, v, trace.NoVal)
				// Global packet counters: the shared-object bottleneck the
				// paper describes (per-thread statistics would avoid it).
				if p == 0 && s.sessSeq.Load()%4 == 0 {
					g := e.Load(s.statsAddr, 8, trace.NoVal, false)
					e.Store(s.statsAddr, 8, g, trace.NoVal)
				}
			})
			s.kern.Send(e, sess.conn, pktBuf, 1460)
			// Advance past the whole interleaved region this packet's
			// samples came from (the other tracks' bytes are not
			// revisited by this session).
			sess.offset += 22 * 5 * 64
			if sess.offset+1460 >= s.fileSize[sess.file] {
				sess.offset = 0
			}
		}

		if s.sessSeq.Add(1)%256 == 0 {
			s.kern.SchedTick(e, tid)
		}
	}
	return true
}
