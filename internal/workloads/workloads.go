// Package workloads defines the workload model interface and shared
// building blocks used by the CloudSuite workload implementations and
// the traditional comparison benchmarks.
//
// A workload is a real algorithm (a key-value store, a SAT solver, an
// inverted-index search node, ...) whose data structures live at
// simulated addresses (internal/addrspace) and whose execution emits a
// dynamic instruction stream (internal/trace) including its operating-
// system activity (internal/oskern). The micro-architectural behaviour
// the paper measures — instruction working sets, dependence-limited ILP
// and MLP, data working sets, sharing, bandwidth — emerges from the
// algorithms and layouts rather than from per-counter dials.
package workloads

import (
	"cloudsuite/internal/addrspace"
	"cloudsuite/internal/rng"
	"cloudsuite/internal/sim/checkpoint"
	"cloudsuite/internal/trace"
)

// Class groups workloads the way the paper's figures do.
type Class int

// Workload classes.
const (
	// ScaleOut is a CloudSuite scale-out workload.
	ScaleOut Class = iota
	// Desktop is a SPEC CINT2006-style workload.
	Desktop
	// Parallel is a PARSEC-style workload.
	Parallel
	// Server is a traditional server workload (SPECweb09, TPC-C, TPC-E,
	// Web Backend).
	Server
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ScaleOut:
		return "scale-out"
	case Desktop:
		return "desktop"
	case Parallel:
		return "parallel"
	case Server:
		return "server"
	default:
		return "class?"
	}
}

// Workload is one benchmark: a factory for per-thread instruction
// streams over a shared simulated dataset.
type Workload interface {
	// Name is the display name used in figures and tables.
	Name() string
	// Class is the workload's figure grouping.
	Class() Class
	// Start launches n software threads and returns their generators.
	// The caller owns closing them. Threads are step-driven programs
	// (trace.Program); construction must be deterministic in (n, seed)
	// because a checkpoint restore re-runs Start before loading state.
	Start(n int, seed int64) []*trace.StepGen
}

// Stateful is implemented by workloads whose shared structures (beyond
// the per-thread state the generators serialize) can be checkpointed:
// heaps, memtables, kernel cursors. A workload that is Stateful and
// whose threads all support SaveState is eligible for live-point
// (pure-load) warm images.
type Stateful interface {
	// SaveShared serializes shared mutable state.
	SaveShared(w *checkpoint.Writer)
	// LoadShared restores state written by SaveShared onto a freshly
	// constructed instance. Callers check the reader's Err.
	LoadShared(rd *checkpoint.Reader)
}

// defaultEmitter returns the conventional emitter configuration used by
// the scale-out workloads: moderately predictable branches.
func defaultEmitter(seed int64) trace.EmitterConfig {
	return trace.EmitterConfig{Seed: seed, BlockLen: 6, BranchEntropy: 0.04}
}

// EmitterConfigFor returns the standard emitter configuration with the
// given seed and branch entropy.
func EmitterConfigFor(seed int64, entropy float64) trace.EmitterConfig {
	cfg := defaultEmitter(seed)
	cfg.BranchEntropy = entropy
	return cfg
}

// CodeBank models the broad instruction footprint of a layered software
// stack (application framework, language runtime, libraries). It holds
// many medium-sized functions; requests execute request-dependent
// subsets, which is what defeats the L1-I and the next-line prefetcher
// for the scale-out workloads (Section 4.1).
type CodeBank struct {
	Funcs []*trace.Func
}

// NewCodeBank carves nFuncs functions of instsPerFunc static
// instructions each out of layout.
func NewCodeBank(layout *trace.CodeLayout, name string, nFuncs, instsPerFunc int) *CodeBank {
	b := &CodeBank{Funcs: make([]*trace.Func, nFuncs)}
	for i := range b.Funcs {
		b.Funcs[i] = layout.Func(name, instsPerFunc)
	}
	return b
}

// FootprintBytes reports the static code footprint of the bank.
func (b *CodeBank) FootprintBytes() uint64 {
	var t uint64
	for _, f := range b.Funcs {
		t += f.Size * trace.InstBytes
	}
	return t
}

// Exec runs dynInsts instructions of framework code spread over calls
// into pathLen bank functions chosen by the request-specific selector
// seed. hot is a data address repeatedly touched (a request context
// structure); ilp sets the dependence chain length of the compute
// (lower = more ILP).
func (b *CodeBank) Exec(e *trace.Emitter, sel uint64, pathLen, dynInsts int, hot uint64, ilp int) {
	if pathLen <= 0 || dynInsts <= 0 {
		return
	}
	perFunc := dynInsts / pathLen
	if perFunc < 8 {
		perFunc = 8
	}
	x := sel
	for i := 0; i < pathLen; i++ {
		// xorshift over the selector picks a request-dependent call path.
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		f := b.Funcs[x%uint64(len(b.Funcs))]
		e.InFunc(f, func() {
			GenericWork(e, perFunc, hot, ilp)
		})
	}
}

// GenericWork emits n instructions of typical integer application code:
// short dependent ALU chains interleaved with stack/context loads and
// occasional stores, at roughly a 20% load / 8% store mix.
func GenericWork(e *trace.Emitter, n int, hot uint64, ilp int) trace.Val {
	if ilp < 1 {
		ilp = 1
	}
	v := trace.NoVal
	emitted := 0
	slot := uint64(0)
	for emitted < n {
		v = e.ALUChain(ilp, v)
		emitted += ilp
		ld := e.Load(hot+(slot%8)*64, 8, trace.NoVal, false)
		emitted++
		slot++
		if slot%4 == 0 {
			e.Store(hot+(slot%8)*64, 8, ld, trace.NoVal)
			emitted++
		}
		if slot%6 == 0 {
			v = e.ALU(v, ld)
			emitted++
		}
	}
	return v
}

// Zipf draws keys with the skew the YCSB client uses (Section 3.2).
// The sampler's parameters are immutable; all mutable draw state lives
// in the underlying rng.Rand, which the owner checkpoints.
type Zipf struct {
	z *rng.Zipf
}

// NewZipf returns a Zipfian sampler over [0, n) with exponent theta
// (YCSB uses 0.99). A degenerate key space (n < 2) yields a sampler
// that always draws key 0: the imax parameter (n-1) would underflow to
// a ~2^64 key range for n == 0.
func NewZipf(r *rng.Rand, theta float64, n uint64) *Zipf {
	if n < 2 {
		return &Zipf{}
	}
	if theta <= 1.0 {
		// The sampler requires s > 1; YCSB's 0.99 skew corresponds
		// closely to s just above 1 for the ranges we use.
		theta = 1.001
	}
	return &Zipf{z: rng.NewZipf(r, theta, n-1)}
}

// Next draws the next key.
func (z *Zipf) Next() uint64 {
	if z.z == nil {
		return 0
	}
	return z.z.Next()
}

// StackOf returns a thread's stack base region for hot context data.
func StackOf(tid int) uint64 { return addrspace.StackFor(tid) - 4096 }
