// Package webfrontend models the Web Frontend workload: an Nginx + PHP
// frontend serving the Olio social-event-calendar application
// (Section 3.2: Nginx 1.0.10, PHP 5.3.5 with the APC opcode cache,
// Cloudstone dataset, Faban client driver).
//
// Each thread executes dynamic requests through a real bytecode
// interpreter: page scripts are arrays of opcodes held in an APC-like
// cache; the dispatch loop walks each script, jumping through a large
// bank of opcode-handler functions — the classic interpreter structure
// whose code footprint and indirect control flow give the workload its
// large instruction working set. Handlers manipulate a PHP-style value
// heap (short pointer chains — the lowest MLP of the suite, Figure 3),
// template strings, and per-user session state; a few opcodes issue
// backend queries over the network. Requests are stateless and
// independent, per the paper's description.
package webfrontend

import (
	"cloudsuite/internal/addrspace"
	"cloudsuite/internal/oskern"
	"cloudsuite/internal/rng"
	"cloudsuite/internal/sim/checkpoint"
	"cloudsuite/internal/trace"
	"cloudsuite/internal/workloads"
)

// Config scales the workload.
type Config struct {
	// Scripts is the number of distinct page scripts in the APC cache.
	Scripts int
	// OpcodesPerScript is the mean script length.
	OpcodesPerScript int
	// Handlers is the number of opcode handler routines (the
	// interpreter's dispatch surface).
	Handlers int
	// ValueHeapBytes sizes the PHP value heap.
	ValueHeapBytes uint64
	// Sessions is the number of user sessions.
	Sessions uint64
}

// DefaultConfig returns a frontend with ~1MB of interpreter+handler
// text, 64 page scripts, and a 64MB value heap.
func DefaultConfig() Config {
	return Config{
		Scripts: 64, OpcodesPerScript: 2600, Handlers: 300,
		ValueHeapBytes: 64 << 20, Sessions: 4 << 10,
	}
}

type opcode struct {
	handler int
	kind    uint8 // 0 value op, 1 string op, 2 session op, 3 backend op, 4 branch
	arg     uint64
}

// Frontend is the Web Frontend workload instance.
type Frontend struct {
	cfg  Config
	kern *oskern.Kernel
	heap *addrspace.Heap

	handlers  []*trace.Func // opcode handlers (the interpreter surface)
	fnAccept  *trace.Func
	fnParse   *trace.Func
	fnDisp    *trace.Func
	fnTmpl    *trace.Func
	fnRespond *trace.Func
	nginxBank *workloads.CodeBank

	scripts   [][]opcode
	scriptArr []addrspace.Array // simulated opcode arrays (APC cache)
	valueHeap uint64
	sessions  addrspace.Array
	templates addrspace.Array
}

// New builds the frontend.
func New(cfg Config) *Frontend {
	if cfg.Scripts == 0 {
		cfg = DefaultConfig()
	}
	code := trace.NewCodeLayout(addrspace.UserCodeBase, addrspace.UserCodeSize)
	f := &Frontend{cfg: cfg, kern: oskern.New(oskern.DefaultConfig()), heap: addrspace.NewUserHeap()}
	f.nginxBank = workloads.NewCodeBank(code, "nginx_php_runtime", 120, 850)
	f.fnAccept = code.Func("http_accept", 500)
	f.fnParse = code.Func("http_parse", 700)
	f.fnDisp = code.Func("zend_dispatch", 260)
	f.fnTmpl = code.Func("template_render", 650)
	f.fnRespond = code.Func("http_respond", 550)
	f.handlers = make([]*trace.Func, cfg.Handlers)
	for i := range f.handlers {
		// Handlers vary in size like real opcode implementations.
		f.handlers[i] = code.Func("zend_handler", 120+(i*37)%360)
	}

	r := rng.New(42)
	f.scripts = make([][]opcode, cfg.Scripts)
	f.scriptArr = make([]addrspace.Array, cfg.Scripts)
	for sIdx := range f.scripts {
		n := cfg.OpcodesPerScript/2 + r.Intn(cfg.OpcodesPerScript)
		ops := make([]opcode, n)
		for i := range ops {
			k := uint8(0)
			switch r := r.Intn(1000); {
			case r < 580:
				k = 0 // value ops
			case r < 800:
				k = 1 // string ops
			case r < 900:
				k = 2 // session ops
			case r < 908:
				k = 3 // backend query (a handful per page)
			default:
				k = 4 // script-level branch
			}
			ops[i] = opcode{handler: r.Intn(cfg.Handlers), kind: k, arg: r.Uint64()}
		}
		f.scripts[sIdx] = ops
		f.scriptArr[sIdx] = addrspace.NewArray(f.heap, uint64(n), 16)
	}
	f.valueHeap = f.heap.AllocLines(cfg.ValueHeapBytes)
	f.sessions = addrspace.NewArray(f.heap, cfg.Sessions, 512)
	f.templates = addrspace.NewArray(f.heap, 128, 8<<10)
	return f
}

// Name implements workloads.Workload.
func (f *Frontend) Name() string { return "Web Frontend" }

// Class implements workloads.Workload.
func (f *Frontend) Class() workloads.Class { return workloads.ScaleOut }

// Start implements workloads.Workload.
func (f *Frontend) Start(n int, seed int64) []*trace.StepGen {
	gens := make([]*trace.StepGen, n)
	for i := 0; i < n; i++ {
		cfg := workloads.EmitterConfigFor(seed+int64(i)*7561, 0.08)
		gens[i] = trace.NewStepGen(cfg, f.newThread(i, seed+int64(i)))
	}
	return gens
}

// SaveShared serializes the frontend's shared mutable state. Requests
// are stateless; only the kernel and heap cursors move at run time.
func (f *Frontend) SaveShared(w *checkpoint.Writer) {
	w.Tag("webfrontend.shared")
	f.kern.SaveState(w)
	f.heap.SaveState(w)
}

// LoadShared restores state written by SaveShared.
func (f *Frontend) LoadShared(rd *checkpoint.Reader) {
	rd.Expect("webfrontend.shared")
	f.kern.LoadState(rd)
	f.heap.LoadState(rd)
}

// wthread is one worker thread; each Step serves one request.
type wthread struct {
	f          *Frontend //simlint:ok checkpointcov shared frontend, checkpointed via SaveShared
	tid        int       //simlint:ok checkpointcov construction-time identity
	rnd        *rng.Rand // request selectors + session draws
	conn       *oskern.Conn
	backend    *oskern.Conn
	stack      uint64          //simlint:ok checkpointcov construction-time address
	reqBuf     uint64          //simlint:ok checkpointcov construction-time address
	respBuf    uint64          //simlint:ok checkpointcov construction-time address
	hotPool    uint64          //simlint:ok checkpointcov construction-time address
	zipfScript *workloads.Zipf //simlint:ok checkpointcov immutable params; draw state lives in rnd
}

func (f *Frontend) newThread(tid int, seed int64) *wthread {
	r := rng.New(seed)
	return &wthread{
		f: f, tid: tid, rnd: r,
		conn:    f.kern.OpenConnOn(tid),
		backend: f.kern.OpenConnOn(tid),
		stack:   workloads.StackOf(tid),
		reqBuf:  f.heap.AllocLines(8 << 10),
		respBuf: f.heap.AllocLines(64 << 10),
		// Most zvals of a request live in a hot per-request arena; only a
		// fraction reach into the cold shared value heap.
		hotPool:    f.heap.AllocLines(64 << 10),
		zipfScript: workloads.NewZipf(r, 1.1, uint64(f.cfg.Scripts)),
	}
}

// SaveState serializes the thread's resumable state.
func (t *wthread) SaveState(w *checkpoint.Writer) {
	w.Tag("webfrontend.thread")
	t.rnd.SaveState(w)
	t.conn.SaveState(w)
	t.backend.SaveState(w)
}

// LoadState restores state written by SaveState.
func (t *wthread) LoadState(rd *checkpoint.Reader) {
	rd.Expect("webfrontend.thread")
	t.rnd.LoadState(rd)
	t.conn.LoadState(rd)
	t.backend.LoadState(rd)
}

// Step serves one request.
func (t *wthread) Step(e *trace.Emitter) bool {
	f, rnd := t.f, t.rnd
	conn, backend := t.conn, t.backend
	stack, reqBuf, respBuf, hotPool := t.stack, t.reqBuf, t.respBuf, t.hotPool
	zipfScript := t.zipfScript

	{
		f.kern.Poll(e, conn)
		f.kern.Recv(e, conn, reqBuf, 512)
		e.InFunc(f.fnAccept, func() { workloads.GenericWork(e, 180, stack, 3) })
		e.InFunc(f.fnParse, func() {
			for b := uint64(0); b < 512; b += 64 {
				ld := e.Load(reqBuf+b, 64, trace.NoVal, false)
				e.ALUChain(3, ld)
			}
		})
		f.nginxBank.Exec(e, rnd.Uint64(), 14, 1400, stack, 3)

		sIdx := int(zipfScript.Next()) % f.cfg.Scripts
		session := f.sessions.At(uint64(rnd.Int63n(int64(f.cfg.Sessions))))
		f.interpret(e, sIdx, session, hotPool, respBuf, backend, stack)

		e.InFunc(f.fnRespond, func() {
			var v trace.Val = trace.NoVal
			for b := uint64(0); b < 8<<10; b += 64 {
				ld := e.Load(respBuf+b, 64, trace.NoVal, false)
				v = e.ALU(v, ld)
			}
			workloads.GenericWork(e, 160, stack, 3)
		})
		f.kern.Send(e, conn, respBuf, 12<<10)
	}
	return true
}

// interpret executes one page script through the opcode dispatch loop.
func (f *Frontend) interpret(e *trace.Emitter, sIdx int, session, hotPool, respBuf uint64, backend *oskern.Conn, stack uint64) {
	script := f.scripts[sIdx]
	arr := f.scriptArr[sIdx]
	heapMask := f.cfg.ValueHeapBytes - 1
	respOff := uint64(0)

	pc := 0
	steps := 0
	maxSteps := len(script) * 2
	var last trace.Val = trace.NoVal
	for pc < len(script) && steps < maxSteps {
		op := script[pc]
		steps++
		// Dispatch: load the opcode record and jump through the handler
		// table (the indirect branch of the interpreter loop).
		e.InFunc(f.fnDisp, func() {
			last = e.Load(arr.At(uint64(pc)), 16, last, true)
			last = e.ALUChain(2, last)
		})
		h := f.handlers[op.handler]
		e.InFunc(h, func() {
			switch op.kind {
			case 0: // value op: short pointer chain through zvals
				a1 := hotPool + (op.arg & (64<<10 - 1) &^ 15)
				if op.arg%19 == 0 {
					// A minority of zvals reach the cold shared heap.
					a1 = f.valueHeap + (op.arg & heapMask &^ 15)
				}
				v := e.Load(a1, 16, last, true)
				a2 := hotPool + ((op.arg * 2654435761) & (64<<10 - 1) &^ 15)
				v = e.Load(a2, 16, v, true) // zval -> payload chase
				v = e.ALUChain(3, v)
				if op.arg%3 == 0 {
					e.Store(a1, 16, v, trace.NoVal)
				}
				last = v
			case 1: // string op: copy a template fragment to the response
				t := f.templates.At(op.arg % f.templates.Len)
				frag := 128 + op.arg%512
				for b := uint64(0); b < frag; b += 64 {
					v := e.Load(t+b, 64, trace.NoVal, false)
					e.Store(respBuf+(respOff+b)%(64<<10), 64, v, trace.NoVal)
				}
				respOff += frag
			case 2: // session op
				v := e.Load(session, 16, last, true)
				v = e.ALUChain(4, v)
				e.Store(session+64, 16, v, trace.NoVal)
				last = v
			case 3: // backend query: small request, medium reply
				f.kern.Send(e, backend, respBuf, 96)
				f.kern.Recv(e, backend, respBuf+(respOff%(32<<10)), 1024)
			case 4: // script-level control flow
				taken := op.arg%5 < 2
				e.Branch(taken, last)
				if taken {
					pc += int(op.arg % 7)
				}
			}
			workloads.GenericWork(e, 24, stack, 2)
		})
		pc++
	}
	e.InFunc(f.fnTmpl, func() { workloads.GenericWork(e, 500, stack, 3) })
}
