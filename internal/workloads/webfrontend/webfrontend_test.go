package webfrontend

import (
	"testing"

	"cloudsuite/internal/trace"
)

func smallConfig() Config {
	return Config{
		Scripts: 8, OpcodesPerScript: 300, Handlers: 40,
		ValueHeapBytes: 1 << 20, Sessions: 256,
	}
}

func drain(t *testing.T, g *trace.StepGen, n int) []trace.Inst {
	t.Helper()
	out := make([]trace.Inst, n)
	got := 0
	for got < n {
		k := g.Next(out[got:])
		if k == 0 {
			break
		}
		got += k
	}
	return out[:got]
}

func TestMetadata(t *testing.T) {
	f := New(smallConfig())
	if f.Name() != "Web Frontend" {
		t.Errorf("name = %q", f.Name())
	}
	if len(f.scripts) != 8 {
		t.Fatalf("scripts = %d", len(f.scripts))
	}
	for i, sc := range f.scripts {
		if len(sc) == 0 {
			t.Fatalf("script %d empty", i)
		}
	}
}

func TestInterpreterVisitsManyHandlers(t *testing.T) {
	f := New(smallConfig())
	gens := f.Start(1, 5)
	defer gens[0].Close()
	insts := drain(t, gens[0], 120000)
	visited := map[int]bool{}
	for _, in := range insts {
		for h, fn := range f.handlers {
			if in.PC >= fn.Entry && in.PC < fn.Entry+fn.Size*trace.InstBytes {
				visited[h] = true
			}
		}
	}
	if len(visited) < len(f.handlers)/2 {
		t.Fatalf("only %d/%d handlers executed", len(visited), len(f.handlers))
	}
}

func TestValueOpsChasePointers(t *testing.T) {
	f := New(smallConfig())
	gens := f.Start(1, 5)
	defer gens[0].Close()
	chases := 0
	for _, in := range drain(t, gens[0], 80000) {
		if in.AcquiresDep && !in.Kernel {
			chases++
		}
	}
	if chases == 0 {
		t.Fatal("zval manipulation produced no pointer chasing")
	}
}

func TestResponseSentThroughOS(t *testing.T) {
	f := New(smallConfig())
	gens := f.Start(1, 5)
	defer gens[0].Close()
	kernel := 0
	insts := drain(t, gens[0], 80000)
	for _, in := range insts {
		if in.Kernel {
			kernel++
		}
	}
	if kernel == 0 {
		t.Fatal("requests never traversed the network stack")
	}
}

func TestRequestsAreStatelessAcrossThreads(t *testing.T) {
	f := New(smallConfig())
	gens := f.Start(2, 5)
	defer func() {
		for _, g := range gens {
			g.Close()
		}
	}()
	// Threads serve independent requests: user-mode stores must land in
	// mostly disjoint line sets (sessions are the sanctioned overlap).
	sets := make([]map[uint64]bool, 2)
	for i, g := range gens {
		sets[i] = map[uint64]bool{}
		for _, in := range drain(t, g, 80000) {
			if !in.Kernel && in.Op == trace.OpStore {
				sets[i][in.Addr>>6] = true
			}
		}
	}
	shared := 0
	for l := range sets[0] {
		if sets[1][l] {
			shared++
		}
	}
	if frac := float64(shared) / float64(len(sets[0])+1); frac > 0.10 {
		t.Fatalf("threads share %.1f%% of written lines", 100*frac)
	}
}
