package workloads

import (
	"cloudsuite/internal/rng"
	"math"
	"testing"
	"testing/quick"

	"cloudsuite/internal/trace"
)

func TestClassString(t *testing.T) {
	for _, c := range []Class{ScaleOut, Desktop, Parallel, Server} {
		if c.String() == "class?" {
			t.Errorf("class %d has no name", c)
		}
	}
	if Class(99).String() != "class?" {
		t.Error("unknown class should stringify to class?")
	}
}

func TestCodeBankFootprint(t *testing.T) {
	layout := trace.NewCodeLayout(0x400000, 64<<20)
	b := NewCodeBank(layout, "fw", 100, 900)
	if len(b.Funcs) != 100 {
		t.Fatalf("funcs = %d", len(b.Funcs))
	}
	want := uint64(100 * 900 * trace.InstBytes)
	if b.FootprintBytes() != want {
		t.Fatalf("footprint = %d, want %d", b.FootprintBytes(), want)
	}
}

func drain(t *testing.T, g *trace.StepGen, n int) []trace.Inst {
	t.Helper()
	out := make([]trace.Inst, n)
	got := 0
	for got < n {
		k := g.Next(out[got:])
		if k == 0 {
			break
		}
		got += k
	}
	return out[:got]
}

func TestCodeBankExecEmitsVariedPCs(t *testing.T) {
	layout := trace.NewCodeLayout(0x400000, 64<<20)
	b := NewCodeBank(layout, "fw", 64, 500)
	main := layout.Func("main", 64)
	req := uint64(0)
	g := trace.NewStepGen(trace.EmitterConfig{Seed: 3}, trace.ProgFunc(func(e *trace.Emitter) bool {
		if req == 0 {
			e.Call(main)
		}
		b.Exec(e, req*2654435761+1, 12, 2000, 0x10000000, 3)
		req++
		return true
	}))
	defer g.Close()
	insts := drain(t, g, 60000)
	lines := map[uint64]bool{}
	for _, in := range insts {
		lines[in.PC>>6] = true
	}
	// Varied request paths must touch far more code than the L1-I holds
	// (the 32KB L1-I is 512 lines).
	if len(lines) < 600 {
		t.Fatalf("code footprint too small: %d lines", len(lines))
	}
}

func TestGenericWorkMix(t *testing.T) {
	layout := trace.NewCodeLayout(0x400000, 1<<20)
	fn := layout.Func("w", 512)
	started := false
	g := trace.NewStepGen(trace.EmitterConfig{Seed: 5}, trace.ProgFunc(func(e *trace.Emitter) bool {
		if !started {
			e.Call(fn)
			started = true
		}
		GenericWork(e, 1000, 0x2000_0000, 3)
		return true
	}))
	defer g.Close()
	insts := drain(t, g, 20000)
	var loads, stores, branches int
	for _, in := range insts {
		switch in.Op {
		case trace.OpLoad:
			loads++
		case trace.OpStore:
			stores++
		case trace.OpBranch:
			branches++
		}
	}
	lf := float64(loads) / float64(len(insts))
	sf := float64(stores) / float64(len(insts))
	if lf < 0.10 || lf > 0.35 {
		t.Errorf("load fraction %.2f outside typical integer-code range", lf)
	}
	if sf < 0.02 || sf > 0.15 {
		t.Errorf("store fraction %.2f outside typical range", sf)
	}
	if branches == 0 {
		t.Error("no branches emitted")
	}
}

func TestZipfIsSkewed(t *testing.T) {
	r := rng.New(11)
	z := NewZipf(r, 0.99, 10000)
	counts := map[uint64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// The most popular key must take a disproportionate share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/n < 0.05 {
		t.Fatalf("top key share %.4f: distribution not skewed", float64(max)/n)
	}
	if len(counts) < 100 {
		t.Fatalf("only %d distinct keys drawn", len(counts))
	}
}

// Property: Zipf samples stay within the configured range.
func TestQuickZipfRange(t *testing.T) {
	check := func(seed int64, n uint32) bool {
		max := uint64(n%10000) + 2
		r := rng.New(seed)
		z := NewZipf(r, 0.99, max)
		for i := 0; i < 200; i++ {
			if z.Next() >= max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// A degenerate key space must not underflow rand.NewZipf's imax: every
// draw stays at key 0.
func TestZipfDegenerateKeySpace(t *testing.T) {
	for _, n := range []uint64{0, 1} {
		r := rng.New(1)
		z := NewZipf(r, 0.99, n)
		for i := 0; i < 100; i++ {
			if got := z.Next(); got != 0 {
				t.Fatalf("NewZipf(n=%d).Next() = %d, want 0", n, got)
			}
		}
	}
}

func TestStacksDistinctPerThread(t *testing.T) {
	a, b := StackOf(0), StackOf(1)
	if a == b {
		t.Fatal("thread stacks must differ")
	}
	if math.Abs(float64(a)-float64(b)) < 4096 {
		t.Fatal("thread stacks too close")
	}
}
