// Package satsolver models the SAT Solver workload: the constraint-
// solving core of the Cloud9/Klee symbolic-execution service
// (Section 3.2: one Klee instance per core solving queries produced by
// symbolically executing coreutils; no steady state, so the paper
// replays recorded input traces for repeatability).
//
// Each thread runs a real DPLL solver with two-watched-literal unit
// propagation over its own randomly generated 3-SAT formula near the
// satisfiability phase transition. Watch-list traversal issues bursts
// of independent clause loads — the highest memory-level parallelism of
// the scale-out suite (Figure 3) — while decision heuristics and
// conflict handling produce data-dependent branches that resist
// prediction. Instances are fully independent, like the paper's
// worker-queue model with no inter-worker communication.
package satsolver

import (
	"cloudsuite/internal/addrspace"
	"cloudsuite/internal/oskern"
	"cloudsuite/internal/rng"
	"cloudsuite/internal/sim/checkpoint"
	"cloudsuite/internal/trace"
	"cloudsuite/internal/workloads"
)

// Config scales the workload.
type Config struct {
	// Vars is the number of boolean variables per instance.
	Vars int
	// ClauseRatio is clauses-per-variable (4.26 is the 3-SAT phase
	// transition where instances are hardest).
	ClauseRatio float64
	// RestartConflicts bounds a run before the solver restarts with new
	// polarity hints (keeps the workload in perpetual motion).
	RestartConflicts int
	// FrameworkInsts is the per-decision symbolic-execution engine
	// overhead (the Klee interpreter around the solver).
	FrameworkInsts int
}

// DefaultConfig returns instances with ~48MB of clause database and
// watch lists per thread.
func DefaultConfig() Config {
	return Config{Vars: 48_000, ClauseRatio: 4.26, RestartConflicts: 3000, FrameworkInsts: 3200}
}

// Solver is the SAT Solver workload instance.
type Solver struct {
	cfg  Config
	kern *oskern.Kernel
	heap *addrspace.Heap
	bank *workloads.CodeBank

	fnDecide  *trace.Func
	fnProp    *trace.Func
	fnClause  *trace.Func
	fnConf    *trace.Func
	fnRestart *trace.Func
	fnMain    *trace.Func
}

// New builds the workload.
func New(cfg Config) *Solver {
	if cfg.Vars == 0 {
		cfg = DefaultConfig()
	}
	code := trace.NewCodeLayout(addrspace.UserCodeBase, addrspace.UserCodeSize)
	s := &Solver{cfg: cfg, kern: oskern.New(oskern.DefaultConfig()), heap: addrspace.NewUserHeap()}
	s.bank = workloads.NewCodeBank(code, "klee", 64, 650)
	s.fnDecide = code.Func("decide", 380)
	s.fnProp = code.Func("propagate", 900)
	s.fnClause = code.Func("clause_visit", 240)
	s.fnConf = code.Func("backtrack", 520)
	s.fnRestart = code.Func("restart", 260)
	s.fnMain = code.Func("solver_main", 400)
	return s
}

// Name implements workloads.Workload.
func (s *Solver) Name() string { return "SAT Solver" }

// Class implements workloads.Workload.
func (s *Solver) Class() workloads.Class { return workloads.ScaleOut }

// Start implements workloads.Workload: one independent solver instance
// per thread, as in the paper's one-process-per-core setup.
func (s *Solver) Start(n int, seed int64) []*trace.StepGen {
	gens := make([]*trace.StepGen, n)
	for i := 0; i < n; i++ {
		cfg := workloads.EmitterConfigFor(seed+int64(i)*52711, 0.11)
		gens[i] = trace.NewStepGen(cfg, s.newThread(i, seed+int64(i)))
	}
	return gens
}

// SaveShared serializes the workload's shared mutable state. Instances
// are fully independent; only the kernel and heap cursors move.
func (s *Solver) SaveShared(w *checkpoint.Writer) {
	w.Tag("satsolver.shared")
	s.kern.SaveState(w)
	s.heap.SaveState(w)
}

// LoadShared restores state written by SaveShared.
func (s *Solver) LoadShared(rd *checkpoint.Reader) {
	rd.Expect("satsolver.shared")
	s.kern.LoadState(rd)
	s.heap.LoadState(rd)
}

// instance is one thread's formula and solver state; Go slices hold the
// logic, the addrspace arrays give every structure a simulated address.
type instance struct {
	nVars    int
	clauses  [][3]int32 // literals: var<<1 | sign
	watches  [][]int32  // per literal: clause indices
	assign   []int8     // 0 unassigned, +1 true, -1 false
	level    []int32
	trail    []int32
	trailLim []int

	clauseArr addrspace.Array // simulated clause DB
	watchArr  addrspace.Array // simulated watch-list headers
	watchElts addrspace.Array // simulated watch-list element pool
	assignArr addrspace.Array
	actArr    addrspace.Array
	trailArr  addrspace.Array
}

func (s *Solver) newInstance(r *rng.Rand) *instance {
	n := s.cfg.Vars
	m := int(float64(n) * s.cfg.ClauseRatio)
	in := &instance{
		nVars:   n,
		clauses: make([][3]int32, m),
		watches: make([][]int32, 2*n),
		assign:  make([]int8, n),
		level:   make([]int32, n),
	}
	for i := 0; i < m; i++ {
		var c [3]int32
		for k := 0; k < 3; k++ {
			v := int32(r.Intn(n))
			c[k] = v<<1 | int32(r.Intn(2))
		}
		in.clauses[i] = c
		// Watch the first two literals.
		in.watches[c[0]] = append(in.watches[c[0]], int32(i))
		in.watches[c[1]] = append(in.watches[c[1]], int32(i))
	}
	in.clauseArr = addrspace.NewArray(s.heap, uint64(m), 16)
	in.watchArr = addrspace.NewArray(s.heap, uint64(2*n), 16)
	in.watchElts = addrspace.NewArray(s.heap, uint64(3*m), 8)
	in.assignArr = addrspace.NewArray(s.heap, uint64(n), 1)
	in.actArr = addrspace.NewArray(s.heap, uint64(n), 8)
	in.trailArr = addrspace.NewArray(s.heap, uint64(n), 4)
	return in
}

func neg(lit int32) int32 { return lit ^ 1 }

// value returns the truth value of lit under the current assignment.
func (in *instance) value(lit int32) int8 {
	v := in.assign[lit>>1]
	if v == 0 {
		return 0
	}
	if (lit&1 == 1) == (v == -1) {
		return 1
	}
	return -1
}

func (in *instance) assignLit(lit int32, lvl int32) {
	v := int8(1)
	if lit&1 == 1 {
		v = -1
	}
	in.assign[lit>>1] = v
	in.level[lit>>1] = lvl
	in.trail = append(in.trail, lit)
}

// sthread is one thread's DPLL solver run as a resumable state machine:
// each Step is one decision (plus its propagation and any conflict
// handling) or one restart, mirroring the phases of the original
// restart loop.
type sthread struct {
	s              *Solver //simlint:ok checkpointcov shared workload, checkpointed via SaveShared
	tid            int     //simlint:ok checkpointcov construction-time identity
	rnd            *rng.Rand
	stack          uint64 //simlint:ok checkpointcov construction-time address
	in             *instance
	decisions      uint64
	conflicts      uint64
	restartPending bool
}

func (s *Solver) newThread(tid int, seed int64) *sthread {
	r := rng.New(seed)
	return &sthread{
		s: s, tid: tid, rnd: r,
		stack: workloads.StackOf(tid),
		in:    s.newInstance(r),
	}
}

// Init pushes the solver's main frame.
func (t *sthread) Init(e *trace.Emitter) { e.Call(t.s.fnMain) }

// Step advances the solver: a pending restart unwinds the trail,
// otherwise one decision is made and propagated.
func (t *sthread) Step(e *trace.Emitter) bool {
	s, in, rnd, tid, stack := t.s, t.in, t.rnd, t.tid, t.stack

	if t.restartPending {
		e.InFunc(s.fnRestart, func() {
			// Unwind everything and decay activities.
			for len(in.trail) > 0 {
				lit := in.trail[len(in.trail)-1]
				in.trail = in.trail[:len(in.trail)-1]
				in.assign[lit>>1] = 0
			}
			in.trailLim = in.trailLim[:0]
			var v trace.Val = trace.NoVal
			for i := 0; i < 64; i++ {
				a := e.Load(in.actArr.At(uint64(rnd.Intn(in.nVars))), 8, trace.NoVal, false)
				v = e.FP(v, a)
				e.Store(in.actArr.At(uint64(rnd.Intn(in.nVars))), 8, v, trace.NoVal)
			}
		})
		s.kern.SchedTick(e, tid)
		t.restartPending = false
		t.conflicts = 0
		return true
	}

	// Symbolic-execution engine work between solver queries; the
	// engine path varies per query (state interpretation).
	t.decisions++
	s.bank.Exec(e, t.decisions*2654435761+uint64(tid)*977, 8, s.cfg.FrameworkInsts, stack, 3)
	if t.decisions%48 == 0 {
		s.kern.SchedTick(e, tid)
	}

	// Decide: sample candidate variables and their activities.
	var pick int32 = -1
	e.InFunc(s.fnDecide, func() {
		var v trace.Val = trace.NoVal
		for k := 0; k < 16; k++ {
			cand := int32(rnd.Intn(in.nVars))
			a := e.Load(in.actArr.At(uint64(cand)), 8, trace.NoVal, false)
			v = e.FP(v, a)
			if in.assign[cand] == 0 && pick < 0 {
				pick = cand
			}
			e.Branch(in.assign[cand] == 0, v)
		}
	})
	if pick < 0 {
		t.restartPending = true // "SAT": restart with fresh polarity hints
		return true
	}
	lvl := int32(len(in.trailLim) + 1)
	in.trailLim = append(in.trailLim, len(in.trail))
	lit := pick<<1 | int32(rnd.Intn(2))
	in.assignLit(lit, lvl)
	e.Store(in.assignArr.At(uint64(pick)), 1, trace.NoVal, trace.NoVal)
	e.Store(in.trailArr.At(uint64(len(in.trail)-1)%in.trailArr.Len), 4, trace.NoVal, trace.NoVal)

	if !s.propagate(e, in, lvl) {
		t.conflicts++
		s.backtrack(e, in)
	}
	if t.conflicts >= uint64(s.cfg.RestartConflicts) {
		t.restartPending = true
	}
	return true
}

// SaveState serializes the thread's resumable state, including the full
// solver instance: watch-list mutations and clause literal swaps make
// the formula itself run-time state.
func (t *sthread) SaveState(w *checkpoint.Writer) {
	w.Tag("satsolver.thread")
	t.rnd.SaveState(w)
	w.U64(t.decisions)
	w.U64(t.conflicts)
	w.Bool(t.restartPending)
	in := t.in
	w.U32(uint32(in.nVars))
	w.U32(uint32(len(in.clauses)))
	w.Struct(in.clauses)
	for _, wl := range in.watches {
		w.U32(uint32(len(wl)))
		if len(wl) > 0 {
			w.Struct(wl)
		}
	}
	w.Struct(in.assign)
	w.Struct(in.level)
	w.U32(uint32(len(in.trail)))
	if len(in.trail) > 0 {
		w.Struct(in.trail)
	}
	w.U32(uint32(len(in.trailLim)))
	for _, l := range in.trailLim {
		w.I64(int64(l))
	}
}

// LoadState restores state written by SaveState.
func (t *sthread) LoadState(rd *checkpoint.Reader) {
	rd.Expect("satsolver.thread")
	t.rnd.LoadState(rd)
	t.decisions = rd.U64()
	t.conflicts = rd.U64()
	t.restartPending = rd.Bool()
	in := t.in
	nVars := int(rd.U32())
	m := int(rd.U32())
	if rd.Err() != nil {
		return
	}
	if nVars != in.nVars || m != len(in.clauses) {
		rd.Failf("satsolver: snapshot formula %dv/%dc, instance %dv/%dc",
			nVars, m, in.nVars, len(in.clauses))
		return
	}
	rd.Struct(in.clauses)
	for i := range in.watches {
		n := int(rd.U32())
		if rd.Err() != nil {
			return
		}
		wl := in.watches[i][:0]
		if cap(wl) < n {
			wl = make([]int32, n)
		} else {
			wl = wl[:n]
		}
		if n > 0 {
			rd.Struct(wl)
		}
		in.watches[i] = wl
	}
	rd.Struct(in.assign)
	rd.Struct(in.level)
	nt := int(rd.U32())
	if rd.Err() != nil {
		return
	}
	in.trail = in.trail[:0]
	for i := 0; i < nt; i++ {
		in.trail = append(in.trail, 0)
	}
	if nt > 0 {
		rd.Struct(in.trail)
	}
	nl := int(rd.U32())
	if rd.Err() != nil {
		return
	}
	in.trailLim = in.trailLim[:0]
	for i := 0; i < nl; i++ {
		in.trailLim = append(in.trailLim, int(rd.I64()))
	}
}

// propagate runs two-watched-literal unit propagation from the current
// trail position; it returns false on conflict.
func (s *Solver) propagate(e *trace.Emitter, in *instance, lvl int32) bool {
	qhead := len(in.trail) - 1
	ok := true
	visited := 0
	e.InFunc(s.fnProp, func() {
		for qhead < len(in.trail) && ok {
			lit := in.trail[qhead]
			qhead++
			false_ := neg(lit)
			wl := in.watches[false_]
			// Watch-list header load, then the element scan: these clause
			// index loads are mutually independent (the MLP source).
			hv := e.Load(in.watchArr.At(uint64(false_)), 8, trace.NoVal, false)
			_ = hv
			keep := wl[:0]
			stopped := -1
			for wi := 0; wi < len(wl); wi++ {
				ci := wl[wi]
				// Periodically the Klee engine interleaves its own work
				// (query caching, state bookkeeping) with propagation.
				if visited++; visited%8 == 0 {
					s.bank.Exec(e, uint64(ci)*48271+uint64(visited), 3, 300, in.trailArr.Base, 3)
				}
				e.Load(in.watchElts.At((uint64(false_)*8+uint64(wi))%in.watchElts.Len), 8, trace.NoVal, false)
				cv := e.Load(in.clauseArr.At(uint64(ci)), 16, trace.NoVal, false)
				e.Load(in.actArr.At(uint64(ci)%in.actArr.Len), 8, trace.NoVal, false)
				cv = e.ALUChain(5, cv)
				e.ALUIndep(6)
				c := &in.clauses[ci]
				// Ensure c[1] is the false literal.
				if c[0] == false_ {
					c[0], c[1] = c[1], c[0]
				}
				status := int8(-2) // -2: find new watch
				if in.value(c[0]) == 1 {
					status = 1 // satisfied
				}
				e.Branch(status == 1, cv)
				if status == 1 {
					keep = append(keep, ci)
					continue
				}
				if in.value(c[2]) != -1 {
					// New watch found: move the watcher.
					c[1], c[2] = c[2], c[1]
					in.watches[c[1]] = append(in.watches[c[1]], ci)
					e.Store(in.watchArr.At(uint64(c[1])), 8, cv, trace.NoVal)
					continue
				}
				keep = append(keep, ci)
				switch in.value(c[0]) {
				case 0:
					// Unit: imply c[0].
					in.assignLit(c[0], lvl)
					e.Store(in.assignArr.At(uint64(c[0]>>1)), 1, cv, trace.NoVal)
					e.Store(in.trailArr.At(uint64(len(in.trail)-1)%in.trailArr.Len), 4, trace.NoVal, trace.NoVal)
				case -1:
					// Conflict.
					ok = false
					e.InFunc(s.fnClause, func() {
						v := e.Load(in.clauseArr.At(uint64(ci)), 16, trace.NoVal, false)
						e.ALUChain(6, v)
					})
				}
				if !ok {
					stopped = wi
					break
				}
			}
			// Keep the unprocessed tail when the scan bailed out early.
			if stopped >= 0 {
				keep = append(keep, wl[stopped+1:]...)
			}
			in.watches[false_] = keep
		}
	})
	return ok
}

// backtrack pops the last decision level, bumping activities of the
// conflicting assignments.
func (s *Solver) backtrack(e *trace.Emitter, in *instance) {
	e.InFunc(s.fnConf, func() {
		if len(in.trailLim) == 0 {
			return
		}
		limit := in.trailLim[len(in.trailLim)-1]
		in.trailLim = in.trailLim[:len(in.trailLim)-1]
		var v trace.Val = trace.NoVal
		for len(in.trail) > limit {
			lit := in.trail[len(in.trail)-1]
			in.trail = in.trail[:len(in.trail)-1]
			in.assign[lit>>1] = 0
			// Trail unwind: stores to the assignment and activity arrays.
			e.Store(in.assignArr.At(uint64(lit>>1)), 1, trace.NoVal, trace.NoVal)
			a := e.Load(in.actArr.At(uint64(lit>>1)), 8, trace.NoVal, false)
			v = e.FP(v, a)
			e.Store(in.actArr.At(uint64(lit>>1)), 8, v, trace.NoVal)
		}
	})
}
