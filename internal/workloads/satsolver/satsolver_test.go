package satsolver

import (
	"cloudsuite/internal/rng"
	"testing"
	"testing/quick"

	"cloudsuite/internal/trace"
)

func smallConfig() Config {
	return Config{Vars: 400, ClauseRatio: 4.26, RestartConflicts: 50, FrameworkInsts: 300}
}

func drain(t *testing.T, g *trace.StepGen, n int) []trace.Inst {
	t.Helper()
	out := make([]trace.Inst, n)
	got := 0
	for got < n {
		k := g.Next(out[got:])
		if k == 0 {
			break
		}
		got += k
	}
	return out[:got]
}

func TestMetadata(t *testing.T) {
	s := New(smallConfig())
	if s.Name() != "SAT Solver" {
		t.Errorf("name = %q", s.Name())
	}
}

func TestSolverEmitsForever(t *testing.T) {
	s := New(smallConfig())
	gens := s.Start(2, 3)
	defer func() {
		for _, g := range gens {
			g.Close()
		}
	}()
	for i, g := range gens {
		if got := len(drain(t, g, 50000)); got != 50000 {
			t.Fatalf("thread %d stopped after %d insts (solver must restart forever)", i, got)
		}
	}
}

// TestWatchInvariant checks the two-watched-literal discipline: every
// clause is watched by exactly two slots across all watch lists.
func TestWatchInvariant(t *testing.T) {
	s := New(smallConfig())
	r := rng.New(5)
	in := s.newInstance(r)
	counts := make(map[int32]int)
	for _, wl := range in.watches {
		for _, ci := range wl {
			counts[ci]++
		}
	}
	for ci, n := range counts {
		if n != 2 {
			t.Fatalf("clause %d watched %d times, want 2", ci, n)
		}
	}
	if len(counts) != len(in.clauses) {
		t.Fatalf("%d clauses watched, want %d", len(counts), len(in.clauses))
	}
}

// TestPropagationSoundness: after a successful propagate, no clause may
// be fully falsified, and watch counts must be preserved.
func TestPropagationSoundness(t *testing.T) {
	s := New(Config{Vars: 200, ClauseRatio: 3.0, RestartConflicts: 10, FrameworkInsts: 100})
	layout := trace.NewCodeLayout(0x400000, 1<<20)
	main := layout.Func("m", 64)
	g := trace.NewStepGen(trace.EmitterConfig{Seed: 1}, trace.ProgFunc(func(e *trace.Emitter) bool {
		e.Call(main)
		r := rng.New(3)
		in := s.newInstance(r)
		for step := 0; step < 200; step++ {
			var pick int32 = -1
			for v := int32(0); v < int32(in.nVars); v++ {
				if in.assign[v] == 0 {
					pick = v
					break
				}
			}
			if pick < 0 {
				break
			}
			lvl := int32(len(in.trailLim) + 1)
			in.trailLim = append(in.trailLim, len(in.trail))
			in.assignLit(pick<<1, lvl)
			if s.propagate(e, in, lvl) {
				// No conflict reported: no clause may be fully false.
				for ci, c := range in.clauses {
					f := 0
					for _, lit := range c {
						if in.value(lit) == -1 {
							f++
						}
					}
					if f == 3 {
						panic("clause " + string(rune(ci)) + " fully falsified without conflict")
					}
				}
			} else {
				s.backtrack(e, in)
			}
		}
		// Watch discipline must survive propagation.
		counts := make(map[int32]int)
		for _, wl := range in.watches {
			for _, ci := range wl {
				counts[ci]++
			}
		}
		for _, n := range counts {
			if n != 2 {
				panic("watch discipline broken")
			}
		}
		return false
	}))
	defer g.Close()
	// Drain to completion; panics inside the goroutine would surface.
	for {
		out := make([]trace.Inst, 8192)
		if g.Next(out) == 0 {
			break
		}
	}
}

func TestBacktrackRestoresAssignments(t *testing.T) {
	s := New(smallConfig())
	layout := trace.NewCodeLayout(0x400000, 1<<20)
	main := layout.Func("m", 64)
	g := trace.NewStepGen(trace.EmitterConfig{Seed: 1}, trace.ProgFunc(func(e *trace.Emitter) bool {
		e.Call(main)
		r := rng.New(4)
		in := s.newInstance(r)
		before := len(in.trail)
		lvl := int32(1)
		in.trailLim = append(in.trailLim, len(in.trail))
		in.assignLit(6<<1, lvl)
		s.propagate(e, in, lvl)
		s.backtrack(e, in)
		if len(in.trail) != before {
			panic("backtrack did not restore the trail")
		}
		for v := 0; v < in.nVars; v++ {
			if in.assign[v] != 0 {
				panic("backtrack left assignments behind")
			}
		}
		return false
	}))
	defer g.Close()
	for {
		out := make([]trace.Inst, 8192)
		if g.Next(out) == 0 {
			break
		}
	}
}

// Property: literal encoding round-trips.
func TestQuickLiteralEncoding(t *testing.T) {
	check := func(v uint16, sign bool) bool {
		lit := int32(v) << 1
		if sign {
			lit |= 1
		}
		if lit>>1 != int32(v) {
			return false
		}
		return neg(neg(lit)) == lit && neg(lit) != lit
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValueSemantics(t *testing.T) {
	s := New(smallConfig())
	r := rng.New(8)
	in := s.newInstance(r)
	in.assign[5] = 1 // var 5 = true
	if in.value(5<<1) != 1 {
		t.Error("positive literal of a true var must be satisfied")
	}
	if in.value(5<<1|1) != -1 {
		t.Error("negative literal of a true var must be falsified")
	}
	if in.value(6<<1) != 0 {
		t.Error("unassigned literal must be unknown")
	}
}
