// Package traditional implements the comparison benchmarks the paper
// characterizes alongside CloudSuite (Section 3.3): desktop (SPEC
// CINT2006), parallel (PARSEC 2.1), enterprise web (SPECweb09), and
// database server (TPC-C, TPC-E, Web Backend) workloads.
//
// The SPEC and PARSEC entries are proxy kernels: small programs with
// the structural properties that place each suite where the paper's
// figures put it — tiny instruction working sets, high ILP for the
// cpu-bound group, abundant and independent memory-level parallelism
// for the memory-bound group. The database workloads are built on a
// real B+tree engine with lock-mediated sharing. Fidelity notes per
// workload are in DESIGN.md.
//
// These proxies intentionally do not implement the checkpoint Stateful
// interfaces: they exercise the engine's replay-flavor warm images
// (v2-compatible fast-forward restore), keeping that fallback path
// honest while the scale-out workloads use live-point (pure-load)
// images.
package traditional

import (
	"cloudsuite/internal/addrspace"
	"cloudsuite/internal/oskern"
	"cloudsuite/internal/rng"
	"cloudsuite/internal/trace"
	"cloudsuite/internal/workloads"
)

// kernelWorkload adapts per-thread step programs to the Workload
// interface.
type kernelWorkload struct {
	name    string
	class   workloads.Class
	entropy float64
	// main, when set, is the top-level function frame the thread loop
	// runs in (emissions between explicit InFunc calls belong to it).
	main *trace.Func
	// prog builds one thread's step program. Construction runs at Start
	// time in thread order, so shared-heap allocation order is
	// deterministic in (n, seed).
	prog func(tid int, seed int64) trace.Program
}

// Name implements workloads.Workload.
func (k *kernelWorkload) Name() string { return k.name }

// Class implements workloads.Workload.
func (k *kernelWorkload) Class() workloads.Class { return k.class }

// mainProg pushes the workload's top-level frame before the wrapped
// program's first step.
type mainProg struct {
	main *trace.Func
	p    trace.Program
}

// Init implements trace.Initer.
func (m *mainProg) Init(e *trace.Emitter) {
	if m.main != nil {
		e.Call(m.main)
	}
}

// Step implements trace.Program.
func (m *mainProg) Step(e *trace.Emitter) bool { return m.p.Step(e) }

// Start implements workloads.Workload.
func (k *kernelWorkload) Start(n int, seed int64) []*trace.StepGen {
	gens := make([]*trace.StepGen, n)
	for i := 0; i < n; i++ {
		cfg := workloads.EmitterConfigFor(seed+int64(i)*6151, k.entropy)
		gens[i] = trace.NewStepGen(cfg, &mainProg{main: k.main, p: k.prog(i, seed+int64(i))})
	}
	return gens
}

// ---------------------------------------------------------------------
// SPEC CINT2006 proxies. The paper splits the suite into cpu-intensive
// and memory-intensive halves and reports group averages with min/max
// range bars (Figure 3).
// ---------------------------------------------------------------------

// NewSPECintBitops models the cpu-bound, high-ILP end of SPECint
// (crafty/h264-like): bit manipulation over small lookup tables with
// abundant independent work and a tiny instruction footprint.
func NewSPECintBitops() workloads.Workload {
	heap := addrspace.NewUserHeap()
	code := trace.NewCodeLayout(addrspace.UserCodeBase, addrspace.UserCodeSize)
	fnMain := code.Func("bitops_kernel", 900)
	return &kernelWorkload{
		name: "SPECint (bitops)", class: workloads.Desktop, entropy: 0.03,
		main: fnMain,
		prog: func(tid int, seed int64) trace.Program {
			r := rng.New(seed)
			tables := addrspace.NewArray(heap, 4096, 8) // 32KB, L1-resident, per copy
			return trace.ProgFunc(func(e *trace.Emitter) bool {
				// Independent ALU bursts with occasional table lookups.
				for it := 0; it < 64; it++ {
					e.ALUIndep(24)
					v := e.Load(tables.At(uint64(r.Intn(4096))), 8, trace.NoVal, false)
					e.ALU(v, trace.NoVal)
					e.ALUIndep(12)
					e.Branch(r.Intn(8) == 0, v)
				}
				return true
			})
		},
	}
}

// NewSPECintCompile models the gcc-like middle of the cpu group: a
// larger code footprint, pointer-light data structures, branchy logic.
func NewSPECintCompile() workloads.Workload {
	heap := addrspace.NewUserHeap()
	code := trace.NewCodeLayout(addrspace.UserCodeBase, addrspace.UserCodeSize)
	bank := workloads.NewCodeBank(code, "compile_passes", 48, 700)
	return &kernelWorkload{
		name: "SPECint (compile)", class: workloads.Desktop, entropy: 0.10,
		main: code.Func("compile_main", 300),
		prog: func(tid int, seed int64) trace.Program {
			r := rng.New(seed)
			ir := addrspace.NewArray(heap, 32<<10, 48) // 1.5MB of IR nodes per copy
			stack := workloads.StackOf(tid)
			unit := 0
			return trace.ProgFunc(func(e *trace.Emitter) bool {
				bank.Exec(e, uint64(unit)*2654435761, 10, 3400, stack, 2)
				// Walk a chain of IR nodes with short dependence chains.
				idx := uint64(r.Intn(32 << 10))
				var v trace.Val = trace.NoVal
				for n := 0; n < 16; n++ {
					v = e.Load(ir.At(idx), 16, v, true)
					v = e.ALUChain(2, v)
					idx = (idx*1103515245 + 12345) % (32 << 10)
					e.Branch(n%5 == 0, v)
				}
				unit++
				return true
			})
		},
	}
}

// NewSPECintDP models the hmmer-like dynamic-programming member of the
// cpu group: dense sequential array sweeps with high ILP.
func NewSPECintDP() workloads.Workload {
	heap := addrspace.NewUserHeap()
	code := trace.NewCodeLayout(addrspace.UserCodeBase, addrspace.UserCodeSize)
	fn := code.Func("viterbi_kernel", 600)
	return &kernelWorkload{
		name: "SPECint (dp)", class: workloads.Desktop, entropy: 0.02,
		main: fn,
		prog: func(tid int, seed int64) trace.Program {
			row := addrspace.NewArray(heap, 3, 256<<10) // per-copy DP rows
			r := 0
			return trace.ProgFunc(func(e *trace.Emitter) bool {
				// One row sweep per step.
				src, dst := row.At(uint64(r%3)), row.At(uint64((r+1)%3))
				for off := uint64(0); off < 256<<10; off += 64 {
					a := e.Load(src+off, 64, trace.NoVal, false)
					b := e.ALUChain(2, a)
					c := e.ALU(a, trace.NoVal)
					e.Store(dst+off, 64, b, c)
					e.ALUIndep(4)
				}
				r++
				return true
			})
		},
	}
}

// NewSPECintMCF models 429.mcf: the memory-intensive min-cost-flow
// pointer chaser whose multi-megabyte reused working set makes it the
// paper's example of an LLC-sensitive application (Figure 4).
func NewSPECintMCF() workloads.Workload {
	heap := addrspace.NewUserHeap()
	code := trace.NewCodeLayout(addrspace.UserCodeBase, addrspace.UserCodeSize)
	fnScan := code.Func("arc_scan", 500)
	fnPivot := code.Func("pivot_update", 400)
	const nArcs = 96 << 10 // 96K arcs x 64B = 6MB per copy: 24MB over 4 copies
	const nNodes = 24 << 10
	return &kernelWorkload{
		name: "SPECint (mcf)", class: workloads.Desktop, entropy: 0.12,
		prog: func(tid int, seed int64) trace.Program {
			r := rng.New(seed)
			arcs := addrspace.NewArray(heap, nArcs, 64)
			nodes := addrspace.NewArray(heap, nNodes, 64)
			return trace.ProgFunc(func(e *trace.Emitter) bool {
				// Price-out pass: sequential over arcs, random node
				// dereferences; arc iterations are independent (MLP).
				e.InFunc(fnScan, func() {
					for a := 0; a < 512; a++ {
						arc := uint64(r.Intn(nArcs))
						av := e.Load(arcs.At(arc), 64, trace.NoVal, false)
						tail := e.Load(nodes.At((arc*2654435761)%nNodes), 8, av, true)
						head := e.Load(nodes.At((arc*40503)%nNodes), 8, av, true)
						c := e.ALU(tail, head)
						e.Branch(a%6 == 0, c)
					}
				})
				e.InFunc(fnPivot, func() {
					// Basis update: dependent walk up the spanning tree.
					n := uint64(r.Intn(nNodes))
					var v trace.Val = trace.NoVal
					for d := 0; d < 24; d++ {
						v = e.Load(nodes.At(n), 8, v, true)
						n = (n*48271 + 1) % nNodes
						e.Store(nodes.At(n), 8, v, trace.NoVal)
					}
				})
				return true
			})
		},
	}
}

// NewSPECintEvents models omnetpp-like discrete-event simulation:
// dependent heap and object-graph chases with modest parallelism.
func NewSPECintEvents() workloads.Workload {
	heap := addrspace.NewUserHeap()
	code := trace.NewCodeLayout(addrspace.UserCodeBase, addrspace.UserCodeSize)
	fn := code.Func("event_loop", 800)
	const nObjs = 160 << 10 // ~7.5MB object graph per copy
	return &kernelWorkload{
		name: "SPECint (events)", class: workloads.Desktop, entropy: 0.15,
		main: fn,
		prog: func(tid int, seed int64) trace.Program {
			r := rng.New(seed)
			objs := addrspace.NewArray(heap, nObjs, 48)
			cur := uint64(r.Intn(nObjs))
			var v trace.Val = trace.NoVal
			return trace.ProgFunc(func(e *trace.Emitter) bool {
				for it := 0; it < 128; it++ {
					// Pop event: heap root chase, then module graph walk.
					v = e.Load(objs.At(cur), 16, v, true)
					v = e.ALUChain(4, v)
					cur = (cur*6364136223846793005 + 1442695040888963407) % nObjs
					v = e.Load(objs.At(cur), 16, v, true)
					e.Store(objs.At(cur), 8, v, trace.NoVal)
					e.Branch(cur%3 == 0, v)
				}
				return true
			})
		},
	}
}

// NewSPECintStream models libquantum-like streaming: long unit-stride
// sweeps over a large array with trivial compute — prefetch-friendly
// and bandwidth-hungry.
func NewSPECintStream() workloads.Workload {
	heap := addrspace.NewUserHeap()
	code := trace.NewCodeLayout(addrspace.UserCodeBase, addrspace.UserCodeSize)
	fn := code.Func("gate_sweep", 300)
	const regBytes = 16 << 20
	const chunk = 4096 * 64 // one step covers 4096 lines of the sweep
	return &kernelWorkload{
		name: "SPECint (stream)", class: workloads.Desktop, entropy: 0.01,
		main: fn,
		prog: func(tid int, seed int64) trace.Program {
			reg := heap.AllocLines(regBytes)
			off := uint64(0)
			return trace.ProgFunc(func(e *trace.Emitter) bool {
				for end := off + chunk; off < end; off += 64 {
					v := e.Load(reg+off%regBytes, 64, trace.NoVal, false)
					v = e.ALU(v, trace.NoVal)
					e.Store(reg+off%regBytes, 64, v, trace.NoVal)
				}
				return true
			})
		},
	}
}

// SPECintCPU returns the cpu-intensive SPECint group members.
func SPECintCPU() []workloads.Workload {
	return []workloads.Workload{NewSPECintBitops(), NewSPECintCompile(), NewSPECintDP()}
}

// SPECintMem returns the memory-intensive SPECint group members.
func SPECintMem() []workloads.Workload {
	return []workloads.Workload{NewSPECintMCF(), NewSPECintEvents(), NewSPECintStream()}
}

// ---------------------------------------------------------------------
// PARSEC 2.1 proxies.
// ---------------------------------------------------------------------

// NewPARSECBlackscholes models the cpu-bound option-pricing kernel:
// floating-point dense compute over a small per-thread slice.
func NewPARSECBlackscholes() workloads.Workload {
	heap := addrspace.NewUserHeap()
	code := trace.NewCodeLayout(addrspace.UserCodeBase, addrspace.UserCodeSize)
	fn := code.Func("bs_kernel", 700)
	opts := addrspace.NewArray(heap, 64<<10, 64) // 4MB of options
	return &kernelWorkload{
		name: "PARSEC (blackscholes)", class: workloads.Parallel, entropy: 0.01,
		main: fn,
		prog: func(tid int, seed int64) trace.Program {
			// Each thread owns a contiguous slice of the options array
			// (the benchmark's static partitioning: no write sharing).
			base := uint64(tid) * (opts.Len / 8)
			return trace.ProgFunc(func(e *trace.Emitter) bool {
				for i := uint64(0); i < 2048; i++ {
					o := e.Load(opts.At((base+i)%opts.Len), 64, trace.NoVal, false)
					// CNDF evaluation: a few dependent FP chains, but
					// independent across options.
					a := e.FPChain(3, o)
					b := e.FPChain(3, o)
					c := e.FP(a, b)
					e.Store(opts.At((base+i)%opts.Len), 8, c, trace.NoVal)
					e.ALUIndep(6)
				}
				return true
			})
		},
	}
}

// NewPARSECSwaptions models swaptions: Monte-Carlo simulation with
// heavy independent FP work on L1-resident state.
func NewPARSECSwaptions() workloads.Workload {
	heap := addrspace.NewUserHeap()
	code := trace.NewCodeLayout(addrspace.UserCodeBase, addrspace.UserCodeSize)
	fn := code.Func("hjm_path", 900)
	state := addrspace.NewArray(heap, 4096, 64) // per-thread sim state slices
	return &kernelWorkload{
		name: "PARSEC (swaptions)", class: workloads.Parallel, entropy: 0.02,
		main: fn,
		prog: func(tid int, seed int64) trace.Program {
			base := uint64(tid) * 512
			return trace.ProgFunc(func(e *trace.Emitter) bool {
				var acc trace.Val = trace.NoVal
				for s := uint64(0); s < 256; s++ {
					v := e.Load(state.At((base+s)%state.Len), 64, trace.NoVal, false)
					p := e.FP(v, trace.NoVal)
					q := e.FP(v, trace.NoVal)
					acc = e.FP(p, q)
					e.ALUIndep(4)
				}
				e.Store(state.At(base), 8, acc, trace.NoVal)
				return true
			})
		},
	}
}

// NewPARSECCanneal models the memory-bound canneal kernel: random
// element swaps across a multi-hundred-megabyte netlist, with abundant
// independent loads (the high-MLP end of Figure 3's range bars).
func NewPARSECCanneal() workloads.Workload {
	heap := addrspace.NewUserHeap()
	code := trace.NewCodeLayout(addrspace.UserCodeBase, addrspace.UserCodeSize)
	fn := code.Func("anneal_step", 650)
	const nElems = 3 << 20 // 3M x 32B = 96MB netlist
	elems := addrspace.NewArray(heap, nElems, 32)
	return &kernelWorkload{
		name: "PARSEC (canneal)", class: workloads.Parallel, entropy: 0.10,
		main: fn,
		prog: func(tid int, seed int64) trace.Program {
			r := rng.New(seed)
			return trace.ProgFunc(func(e *trace.Emitter) bool {
				for it := 0; it < 32; it++ {
					// Pick two random elements and their neighbours: a burst
					// of independent loads, then the cost computation and a
					// biased accept decision.
					var cost trace.Val = trace.NoVal
					for k := 0; k < 4; k++ {
						v := e.Load(elems.At(uint64(r.Intn(nElems))), 32, trace.NoVal, false)
						cost = e.FP(cost, v)
					}
					cost = e.FPChain(4, cost)
					workloads.GenericWork(e, 120, elems.At(uint64(tid)*64), 2)
					take := r.Float64() < 0.85
					e.Branch(take, cost)
					if take {
						e.Store(elems.At(uint64(r.Intn(nElems))), 8, cost, trace.NoVal)
						e.Store(elems.At(uint64(r.Intn(nElems))), 8, cost, trace.NoVal)
					}
					e.ALUIndep(8)
				}
				return true
			})
		},
	}
}

// NewPARSECStreamcluster models streamcluster: streaming FP distance
// computations over large point arrays — sequential, prefetchable,
// bandwidth-intensive.
func NewPARSECStreamcluster() workloads.Workload {
	heap := addrspace.NewUserHeap()
	code := trace.NewCodeLayout(addrspace.UserCodeBase, addrspace.UserCodeSize)
	fn := code.Func("pgain", 800)
	const ptsBytes = 64 << 20
	const chunk = 4096 * 64 // one step covers 4096 lines of the sweep
	pts := heap.AllocLines(ptsBytes)
	centers := addrspace.NewArray(heap, 128, 512)
	return &kernelWorkload{
		name: "PARSEC (streamcluster)", class: workloads.Parallel, entropy: 0.02,
		main: fn,
		prog: func(tid int, seed int64) trace.Program {
			off := uint64(0)
			c := uint64(0)
			return trace.ProgFunc(func(e *trace.Emitter) bool {
				for end := off + chunk; off < end; off += 64 {
					p := e.Load(pts+off%ptsBytes, 64, trace.NoVal, false)
					ctr := e.Load(centers.At(c%centers.Len), 64, trace.NoVal, false)
					d := e.FP(p, ctr)
					d = e.FPChain(2, d)
					e.Branch(off%512 == 0, d)
				}
				if off%ptsBytes == 0 {
					c++
				}
				return true
			})
		},
	}
}

// PARSECCPU returns the cpu-intensive PARSEC group members.
func PARSECCPU() []workloads.Workload {
	return []workloads.Workload{NewPARSECBlackscholes(), NewPARSECSwaptions()}
}

// PARSECMem returns the memory-intensive PARSEC group members.
func PARSECMem() []workloads.Workload {
	return []workloads.Workload{NewPARSECCanneal(), NewPARSECStreamcluster()}
}

// ---------------------------------------------------------------------
// Traditional server workloads.
// ---------------------------------------------------------------------

// NewSPECweb models SPECweb09 e-banking: a traditional web server
// dominated by static file serving and a small set of dynamic scripts,
// with heavy OS involvement (Section 4: "the traditional web workload
// is dominated by serving static files", more OS time than Web
// Frontend).
func NewSPECweb() workloads.Workload {
	heap := addrspace.NewUserHeap()
	code := trace.NewCodeLayout(addrspace.UserCodeBase, addrspace.UserCodeSize)
	kern := oskern.New(oskern.Config{NICs: 2, PageCacheMB: 64, ExtraCodeKB: 96})
	bank := workloads.NewCodeBank(code, "httpd_php", 90, 800)
	fnParse := code.Func("http_parse", 600)
	fnBank := code.Func("ebanking_script", 2200)
	sessions := addrspace.NewArray(heap, 8<<10, 512)
	return &kernelWorkload{
		name: "SPECweb09", class: workloads.Server, entropy: 0.08,
		main: code.Func("event_loop_main", 300),
		prog: func(tid int, seed int64) trace.Program {
			r := rng.New(seed)
			conn := kern.OpenConnOn(tid)
			stack := workloads.StackOf(tid)
			buf := heap.AllocLines(128 << 10)
			reqs := 0
			return trace.ProgFunc(func(e *trace.Emitter) bool {
				kern.Poll(e, conn)
				kern.Recv(e, conn, buf, 400)
				e.InFunc(fnParse, func() { workloads.GenericWork(e, 260, stack, 3) })
				if r.Intn(10) < 5 {
					// Static file: read through the page cache and send.
					size := 1<<10 + r.Intn(7<<10)
					bank.Exec(e, r.Uint64(), 6, 1200, stack, 3)
					kern.FileRead(e, uint64(r.Intn(2048)), uint64(r.Intn(1<<20)), buf, size)
					kern.Send(e, conn, buf, size)
				} else {
					// Small dynamic script touching the session.
					e.InFunc(fnBank, func() {
						s := sessions.At(uint64(r.Intn(8 << 10)))
						v := e.Load(s, 16, trace.NoVal, true)
						workloads.GenericWork(e, 900, s, 2)
						e.Store(s+64, 16, v, trace.NoVal)
					})
					bank.Exec(e, r.Uint64(), 10, 1600, stack, 3)
					kern.Send(e, conn, buf, 8<<10)
				}
				reqs++
				if reqs%64 == 0 {
					kern.SchedTick(e, tid)
				}
				return true
			})
		},
	}
}

// dbEngine carries the shared state of one OLTP database model.
type dbEngine struct {
	kern     *oskern.Kernel
	bank     *workloads.CodeBank
	fnParse  *trace.Func
	fnPlan   *trace.Func
	fnLock   *trace.Func
	fnLog    *trace.Func
	fnCommit *trace.Func

	items     *bptree
	stock     *bptree
	customers *bptree
	districts addrspace.Array // hot, contended rows
	locks     addrspace.Array // lock words (read-write shared)
	hotMeta   addrspace.Array // hot shared metadata (LAST_TRADE-like)
	log       uint64
}

func newDBEngine(heap *addrspace.Heap, code *trace.CodeLayout, rows uint64, rowBytes uint64, extraOSKB int) *dbEngine {
	d := &dbEngine{
		kern: oskern.New(oskern.Config{NICs: 2, PageCacheMB: 32, ExtraCodeKB: extraOSKB}),
		bank: workloads.NewCodeBank(code, "dbms", 200, 1000),
	}
	d.fnParse = code.Func("sql_parse", 1100)
	d.fnPlan = code.Func("query_plan", 900)
	d.fnLock = code.Func("lock_manager", 520)
	d.fnLog = code.Func("wal_append", 380)
	d.fnCommit = code.Func("commit", 460)
	d.items = newBPTree(heap, rows/4, 96)
	d.stock = newBPTree(heap, rows, rowBytes)
	d.customers = newBPTree(heap, rows/2, 640)
	d.districts = addrspace.NewArray(heap, 64, 128)
	d.locks = addrspace.NewArray(heap, 512, 64)
	d.hotMeta = addrspace.NewArray(heap, 192, 64)
	d.log = heap.AllocLines(16 << 20)
	return d
}

// acquire emits a lock acquisition on a shared lock word, occasionally
// escalating into the kernel futex path (contention).
func (d *dbEngine) acquire(e *trace.Emitter, lockIdx uint64, r *rng.Rand, contention float64) trace.Val {
	var v trace.Val
	e.InFunc(d.fnLock, func() {
		addr := d.locks.At(lockIdx % d.locks.Len)
		v = e.Load(addr, 8, trace.NoVal, false)
		e.Store(addr, 8, v, trace.NoVal) // CAS
		e.ALUChain(4, v)
		if r.Float64() < contention {
			d.kern.Futex(e, addr)
		}
	})
	return v
}

// NewTPCC models TPC-C on a commercial DBMS (Section 3.3: 40
// warehouses, 32 zero-think-time clients): short transactions of
// dependent B+tree probes against hot, contended districts and a large
// stock table, with intensive row-level write sharing — the workload
// the paper singles out for spending over 80% of cycles stalled on
// dependent memory accesses and for the highest read-write sharing.
func NewTPCC() workloads.Workload {
	heap := addrspace.NewUserHeap()
	code := trace.NewCodeLayout(addrspace.UserCodeBase, addrspace.UserCodeSize)
	d := newDBEngine(heap, code, 512<<10, 192, 192) // 512K stock rows (~96MB)
	return &kernelWorkload{
		name: "TPC-C", class: workloads.Server, entropy: 0.10,
		main: code.Func("worker_loop", 400),
		prog: func(tid int, seed int64) trace.Program {
			r := rng.New(seed)
			conn := d.kern.OpenConnOn(tid)
			stack := workloads.StackOf(tid)
			buf := heap.AllocLines(8 << 10)
			tx := 0
			return trace.ProgFunc(func(e *trace.Emitter) bool {
				d.kern.Recv(e, conn, buf, 256)
				e.InFunc(d.fnParse, func() { workloads.GenericWork(e, 420, stack, 2) })
				d.bank.Exec(e, uint64(tx)*2654435761+uint64(tid), 26, 5200, stack, 2)

				// New-order: lock the district (hot, contended), probe
				// customer, then a handful of items with stock updates.
				dist := uint64(r.Intn(64))
				lv := d.acquire(e, dist, r, 0.45)
				dv := e.Load(d.districts.At(dist), 64, lv, true)
				e.Store(d.districts.At(dist), 8, dv, trace.NoVal) // next-o-id++
				ov := e.Load(d.hotMeta.At(dist%192), 8, dv, false)
				e.Store(d.hotMeta.At(dist%192), 8, ov, trace.NoVal)

				rowAddrC, cv := d.customers.probe(e, uint64(r.Int63()), dv)
				cv = d.customers.readRow(e, rowAddrC, 192, cv)
				items := 4 + r.Intn(5)
				v := cv
				for i := 0; i < items; i++ {
					var rowAddr uint64
					rowAddr, v = d.items.probe(e, uint64(r.Int63()), v)
					v = d.items.readRow(e, rowAddr, 64, v)
					rowAddr, v = d.stock.probe(e, uint64(r.Int63()), v)
					d.stock.writeRow(e, rowAddr, 64, v)
				}
				// WAL append and commit.
				e.InFunc(d.fnLog, func() {
					pos := (uint64(tx)*512 + uint64(tid)*64) % (16 << 20)
					for off := uint64(0); off < 512; off += 64 {
						e.Store(d.log+(pos+off)%(16<<20), 64, v, trace.NoVal)
					}
				})
				e.InFunc(d.fnCommit, func() { workloads.GenericWork(e, 220, stack, 2) })
				d.kern.Send(e, conn, buf, 512)
				tx++
				if tx%80 == 0 {
					d.kern.SchedTick(e, tid)
				}
				return true
			})
		},
	}
}

// NewTPCE models TPC-E (Section 3.3: 5000 customers, 52GB database):
// more complex schemas and queries than TPC-C — more compute between
// probes, read-heavier mix, less lock contention. The paper finds
// scale-out workloads most similar to this class.
func NewTPCE() workloads.Workload {
	heap := addrspace.NewUserHeap()
	code := trace.NewCodeLayout(addrspace.UserCodeBase, addrspace.UserCodeSize)
	d := newDBEngine(heap, code, 640<<10, 256, 256) // wider rows (~160MB)
	return &kernelWorkload{
		name: "TPC-E", class: workloads.Server, entropy: 0.08,
		main: code.Func("worker_loop", 400),
		prog: func(tid int, seed int64) trace.Program {
			r := rng.New(seed)
			conn := d.kern.OpenConnOn(tid)
			stack := workloads.StackOf(tid)
			buf := heap.AllocLines(8 << 10)
			tx := 0
			return trace.ProgFunc(func(e *trace.Emitter) bool {
				d.kern.Recv(e, conn, buf, 384)
				e.InFunc(d.fnParse, func() { workloads.GenericWork(e, 600, stack, 2) })
				e.InFunc(d.fnPlan, func() { workloads.GenericWork(e, 700, stack, 2) })
				d.bank.Exec(e, uint64(tx)*40503+uint64(tid), 26, 3600, stack, 2)

				write := r.Intn(10) < 2
				if write {
					d.acquire(e, uint64(r.Intn(512)), r, 0.10)
				}
				// LAST_TRADE-style hot table: every transaction reads the
				// current quotes; the market-feed side updates them. This
				// is the actively-shared structure behind TPC-E's
				// read-write sharing (Section 4.4).
				for i := 0; i < 3; i++ {
					q := e.Load(d.hotMeta.At(uint64(r.Intn(96))), 8, trace.NoVal, false)
					e.ALUChain(3, q)
					if r.Intn(2) == 0 {
						e.Store(d.hotMeta.At(uint64(r.Intn(96))), 8, q, trace.NoVal)
					}
				}
				probes := 6 + r.Intn(6)
				var v trace.Val = trace.NoVal
				for i := 0; i < probes; i++ {
					var rowAddr uint64
					rowAddr, v = d.stock.probe(e, uint64(r.Int63()), v)
					v = d.stock.readRow(e, rowAddr, 256, v)
					// Financial computation between probes (FP-heavy).
					v = e.FPChain(6, v)
					workloads.GenericWork(e, 180, stack, 2)
					if write && i == 0 {
						d.stock.writeRow(e, rowAddr, 128, v)
					}
				}
				e.InFunc(d.fnCommit, func() { workloads.GenericWork(e, 260, stack, 2) })
				d.kern.Send(e, conn, buf, 2<<10)
				tx++
				if tx%80 == 0 {
					d.kern.SchedTick(e, tid)
				}
				return true
			})
		},
	}
}

// NewWebBackend models the Web Backend workload: the MySQL database
// behind the Web Frontend benchmark (Section 3.3: MySQL 5.5.9 with a
// 2GB buffer pool) — OLTP with a web-query mix: read-dominated point
// queries, some scans, moderate write sharing.
func NewWebBackend() workloads.Workload {
	heap := addrspace.NewUserHeap()
	code := trace.NewCodeLayout(addrspace.UserCodeBase, addrspace.UserCodeSize)
	d := newDBEngine(heap, code, 448<<10, 160, 128)
	return &kernelWorkload{
		name: "Web Backend", class: workloads.Server, entropy: 0.09,
		main: code.Func("worker_loop", 400),
		prog: func(tid int, seed int64) trace.Program {
			r := rng.New(seed)
			conn := d.kern.OpenConnOn(tid)
			stack := workloads.StackOf(tid)
			buf := heap.AllocLines(8 << 10)
			q := 0
			return trace.ProgFunc(func(e *trace.Emitter) bool {
				d.kern.Recv(e, conn, buf, 256)
				e.InFunc(d.fnParse, func() { workloads.GenericWork(e, 500, stack, 2) })
				d.bank.Exec(e, uint64(q)*69621+uint64(tid), 18, 2200, stack, 2)

				// InnoDB-style shared metadata: auto-increment counters and
				// table statistics touched on every query.
				mv := e.Load(d.hotMeta.At(uint64(r.Intn(32))), 8, trace.NoVal, false)
				if r.Intn(4) == 0 {
					e.Store(d.hotMeta.At(uint64(r.Intn(32))), 8, mv, trace.NoVal)
				}
				switch r.Intn(10) {
				case 0, 1: // write: update a row under lock, bump counters
					d.acquire(e, uint64(r.Intn(512)), r, 0.15)
					e.Store(d.hotMeta.At(uint64(r.Intn(64))), 8, mv, trace.NoVal)
					rowAddr, v := d.customers.probe(e, uint64(r.Int63()), trace.NoVal)
					d.customers.writeRow(e, rowAddr, 192, v)
					e.InFunc(d.fnLog, func() {
						pos := uint64(q*256+tid*64) % (16 << 20)
						for off := uint64(0); off < 256; off += 64 {
							e.Store(d.log+(pos+off)%(16<<20), 64, v, trace.NoVal)
						}
					})
				case 2: // short range scan
					rowAddr, v := d.stock.probe(e, uint64(r.Int63()), trace.NoVal)
					for sr := uint64(0); sr < 24; sr++ {
						v = d.stock.readRow(e, rowAddr+(sr*160)%(448<<10*160), 160, v)
					}
				default: // point query
					rowAddr, v := d.customers.probe(e, uint64(r.Int63()), trace.NoVal)
					d.customers.readRow(e, rowAddr, 640, v)
				}
				e.InFunc(d.fnCommit, func() { workloads.GenericWork(e, 180, stack, 2) })
				d.kern.Send(e, conn, buf, 1<<10)
				q++
				if q%80 == 0 {
					d.kern.SchedTick(e, tid)
				}
				return true
			})
		},
	}
}
