package traditional

import (
	"cloudsuite/internal/addrspace"
	"cloudsuite/internal/trace"
)

// bptree is an in-memory B+tree index over a table's rows, the core
// access structure of the database workload models (TPC-C, TPC-E, Web
// Backend). The tree is built once over a contiguous key space; probes
// emit the level-by-level pointer chase the real index would incur —
// the dependent memory accesses the paper identifies as the defining
// property of traditional transaction processing (Section 4,
// "TPC-C ... spends over 80% of the time stalled due to dependent
// memory accesses").
type bptree struct {
	levels []addrspace.Array // levels[0] is the root level, last is leaves
	fanout uint64
	keys   uint64
	rows   addrspace.Array // the table rows themselves
	// desc models buffer-pool page descriptors: every page access pins
	// and unpins its descriptor (a write), making descriptors the
	// actively-shared structures of the database engine — a key source
	// of the read-write sharing the paper measures for OLTP.
	desc addrspace.Array
}

// newBPTree builds an index over n keys with the given row size.
// Fanout 64 with 1KB inner nodes approximates a commercial engine's
// index; 3-4 levels cover the scaled tables.
func newBPTree(heap *addrspace.Heap, n uint64, rowBytes uint64) *bptree {
	t := &bptree{fanout: 64, keys: n}
	t.rows = addrspace.NewArray(heap, n, rowBytes)
	// Build levels bottom-up: leaves have one entry per key group.
	count := (n + t.fanout - 1) / t.fanout
	var lvls []addrspace.Array
	for {
		lvls = append([]addrspace.Array{addrspace.NewArray(heap, count+1, 1024)}, lvls...)
		if count <= 1 {
			break
		}
		count = (count + t.fanout - 1) / t.fanout
	}
	t.levels = lvls
	t.desc = addrspace.NewArray(heap, 128, 64)
	return t
}

// depth returns the number of levels (root to leaf).
func (t *bptree) depth() int { return len(t.levels) }

// probe emits the root-to-leaf traversal for key and returns the row
// address and the final dependence value. Each level's node load depends
// on the previous level's pointer (a true pointer chase), plus an
// intra-node binary search of ~log2(fanout) dependent key loads.
func (t *bptree) probe(e *trace.Emitter, key uint64, dep trace.Val) (uint64, trace.Val) {
	key %= t.keys
	v := dep
	group := key
	// Pin the leaf page's buffer descriptor (read-modify-write).
	dsc := t.desc.At((key * 2654435761) % t.desc.Len)
	dv := e.Load(dsc, 8, dep, false)
	if key%3 == 0 {
		e.Store(dsc, 8, dv, trace.NoVal)
	}
	for l := 0; l < len(t.levels); l++ {
		// Which node of this level holds the key.
		shift := len(t.levels) - 1 - l
		idx := group
		for s := 0; s < shift; s++ {
			idx /= t.fanout
		}
		node := t.levels[l].At(idx % t.levels[l].Len)
		v = e.Load(node, 16, v, true) // node header: chained on parent
		// Binary search inside the node: dependent key comparisons.
		for probe := 0; probe < 3; probe++ {
			v = e.Load(node+uint64(64+probe*160), 8, v, true)
			v = e.ALUChain(2, v)
		}
	}
	return t.rows.At(key), v
}

// readRow emits the row fetch after a probe.
func (t *bptree) readRow(e *trace.Emitter, rowAddr uint64, rowBytes uint64, dep trace.Val) trace.Val {
	v := dep
	for off := uint64(0); off < rowBytes; off += 64 {
		v = e.Load(rowAddr+off, 64, v, false)
	}
	return v
}

// writeRow emits an in-place row update (the read-modify-write of an
// OLTP update statement).
func (t *bptree) writeRow(e *trace.Emitter, rowAddr uint64, bytes uint64, dep trace.Val) {
	for off := uint64(0); off < bytes; off += 64 {
		v := e.Load(rowAddr+off, 64, dep, false)
		e.Store(rowAddr+off, 64, v, trace.NoVal)
	}
}
