package traditional

import (
	"testing"

	"cloudsuite/internal/addrspace"
	"cloudsuite/internal/trace"
	"cloudsuite/internal/workloads"
)

func drain(t *testing.T, g *trace.StepGen, n int) []trace.Inst {
	t.Helper()
	out := make([]trace.Inst, n)
	got := 0
	for got < n {
		k := g.Next(out[got:])
		if k == 0 {
			break
		}
		got += k
	}
	return out[:got]
}

func stats(insts []trace.Inst) (loads, stores, fp, kernel, chases int) {
	for _, in := range insts {
		switch in.Op {
		case trace.OpLoad:
			loads++
		case trace.OpStore:
			stores++
		case trace.OpFP:
			fp++
		}
		if in.Kernel {
			kernel++
		}
		if in.AcquiresDep {
			chases++
		}
	}
	return
}

func run(t *testing.T, w workloads.Workload, n int) []trace.Inst {
	t.Helper()
	gens := w.Start(1, 17)
	defer func() {
		for _, g := range gens {
			g.Close()
		}
	}()
	insts := drain(t, gens[0], n)
	if len(insts) != n {
		t.Fatalf("%s produced only %d insts", w.Name(), len(insts))
	}
	return insts
}

func TestSuiteFactories(t *testing.T) {
	all := []workloads.Workload{
		NewSPECintBitops(), NewSPECintCompile(), NewSPECintDP(),
		NewSPECintMCF(), NewSPECintEvents(), NewSPECintStream(),
		NewPARSECBlackscholes(), NewPARSECSwaptions(),
		NewPARSECCanneal(), NewPARSECStreamcluster(),
		NewSPECweb(), NewTPCC(), NewTPCE(), NewWebBackend(),
	}
	seen := map[string]bool{}
	for _, w := range all {
		if w.Name() == "" || seen[w.Name()] {
			t.Fatalf("bad or duplicate name %q", w.Name())
		}
		seen[w.Name()] = true
	}
}

func TestGroupHelpers(t *testing.T) {
	if len(SPECintCPU()) != 3 || len(SPECintMem()) != 3 {
		t.Fatal("SPECint groups must have three members each")
	}
	if len(PARSECCPU()) != 2 || len(PARSECMem()) != 2 {
		t.Fatal("PARSEC groups must have two members each")
	}
}

func TestDesktopKernelsHaveNoOSActivity(t *testing.T) {
	for _, w := range []workloads.Workload{NewSPECintBitops(), NewPARSECBlackscholes()} {
		_, _, _, kernel, _ := stats(run(t, w, 30000))
		if kernel != 0 {
			t.Errorf("%s emitted %d kernel insts; SPEC/PARSEC are user-only", w.Name(), kernel)
		}
	}
}

func TestPARSECIsFloatingPointHeavy(t *testing.T) {
	_, _, fp, _, _ := stats(run(t, NewPARSECBlackscholes(), 30000))
	if float64(fp)/30000 < 0.05 {
		t.Fatalf("blackscholes FP share too low: %d/30000", fp)
	}
}

func TestMCFChasesPointers(t *testing.T) {
	_, _, _, _, chases := stats(run(t, NewSPECintMCF(), 30000))
	if chases == 0 {
		t.Fatal("mcf must chase pointers")
	}
}

func TestOLTPUsesLocksAndLog(t *testing.T) {
	insts := run(t, NewTPCC(), 250000)
	_, stores, _, kernel, chases := stats(insts)
	if stores == 0 || chases == 0 {
		t.Fatalf("TPC-C missing stores (%d) or index chases (%d)", stores, chases)
	}
	if kernel == 0 {
		t.Fatal("TPC-C never entered the OS (network/futex)")
	}
}

func TestTPCEIsReadDominated(t *testing.T) {
	insts := run(t, NewTPCE(), 200000)
	loads, stores, fp, _, _ := stats(insts)
	if loads < stores*3 {
		t.Fatalf("TPC-E not read-dominated: %d loads vs %d stores", loads, stores)
	}
	if fp == 0 {
		t.Fatal("TPC-E financial computation missing")
	}
}

func TestSPECwebServesFiles(t *testing.T) {
	insts := run(t, NewSPECweb(), 120000)
	_, _, _, kernel, _ := stats(insts)
	frac := float64(kernel) / float64(len(insts))
	if frac < 0.3 {
		t.Fatalf("SPECweb OS share %.2f; static file serving is OS-heavy", frac)
	}
}

// --- B+tree substrate --------------------------------------------------

func collectTree(t *testing.T, body func(e *trace.Emitter, tr *bptree)) []trace.Inst {
	t.Helper()
	heap := addrspace.NewHeap("t", 0x4000_0000, 1<<30)
	layout := trace.NewCodeLayout(0x40_0000, 1<<20)
	main := layout.Func("m", 64)
	tr := newBPTree(heap, 100_000, 128)
	g := trace.NewStepGen(trace.EmitterConfig{Seed: 2}, trace.ProgFunc(func(e *trace.Emitter) bool {
		e.Call(main)
		body(e, tr)
		return false
	}))
	defer g.Close()
	out := make([]trace.Inst, 1<<16)
	n := 0
	for {
		k := g.Next(out[n:])
		if k == 0 {
			break
		}
		n += k
		if n == len(out) {
			break
		}
	}
	return out[:n]
}

func TestBPTreeDepth(t *testing.T) {
	heap := addrspace.NewHeap("t", 0x4000_0000, 1<<30)
	small := newBPTree(heap, 100, 64)
	big := newBPTree(heap, 1_000_000, 64)
	if small.depth() >= big.depth() {
		t.Fatalf("depths not monotone: %d vs %d", small.depth(), big.depth())
	}
	if big.depth() < 3 {
		t.Fatalf("1M-key tree too shallow: %d levels", big.depth())
	}
}

func TestBPTreeProbeEmitsChainedLevels(t *testing.T) {
	insts := collectTree(t, func(e *trace.Emitter, tr *bptree) {
		tr.probe(e, 12345, trace.NoVal)
	})
	chased := 0
	for _, in := range insts {
		if in.AcquiresDep {
			chased++
		}
	}
	// A 100K-key tree has at least 3 levels, each a chained load.
	if chased < 3 {
		t.Fatalf("probe chased only %d levels", chased)
	}
}

func TestBPTreeRowsDistinct(t *testing.T) {
	heap := addrspace.NewHeap("t", 0x4000_0000, 1<<30)
	tr := newBPTree(heap, 1000, 128)
	seen := map[uint64]bool{}
	layout := trace.NewCodeLayout(0x40_0000, 1<<20)
	main := layout.Func("m", 64)
	g := trace.NewStepGen(trace.EmitterConfig{Seed: 2}, trace.ProgFunc(func(e *trace.Emitter) bool {
		e.Call(main)
		for k := uint64(0); k < 1000; k++ {
			addr, _ := tr.probe(e, k, trace.NoVal)
			if seen[addr] {
				panic("duplicate row address")
			}
			seen[addr] = true
		}
		return false
	}))
	defer g.Close()
	out := make([]trace.Inst, 8192)
	for g.Next(out) != 0 {
	}
}
